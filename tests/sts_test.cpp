#include <gtest/gtest.h>

#include <map>

#include "src/core/sts.h"
#include "src/routing/tree.h"

namespace essat::core {
namespace {

using util::Time;

struct RecordingSink final : query::ExpectedTimeSink {
  std::map<net::QueryId, Time> next_send;
  std::map<std::pair<net::QueryId, net::NodeId>, Time> next_recv;
  void update_next_send(net::QueryId q, Time t) override { next_send[q] = t; }
  void update_next_receive(net::QueryId q, net::NodeId c, Time t) override {
    next_recv[{q, c}] = t;
  }
  void erase_child(net::QueryId q, net::NodeId c) override { next_recv.erase({q, c}); }
  void erase_query(net::QueryId q) override { next_send.erase(q); }
};

// Chain 0-1-2-3-4: M = 4; node 2 has rank 2 and child 3 (rank 1).
struct StsFixture : ::testing::Test {
  StsFixture()
      : topo{net::Topology::line(5, 100.0, 125.0)},
        tree{routing::build_bfs_tree(topo, 0, 1000.0)} {
    q.id = 0;
    q.period = Time::seconds(1);
    q.phase = Time::seconds(10);
  }

  StsShaper make(StsParams params = {}, net::NodeId self = 2) {
    StsShaper s{params};
    s.set_context(query::ShaperContext{&tree, self, &sink});
    return s;
  }

  net::Topology topo;
  routing::Tree tree;
  RecordingSink sink;
  query::Query q;
};

TEST_F(StsFixture, LocalDeadlineIsDOverM) {
  auto s = make();
  // Default D = P; M = 4 -> l = 250 ms.
  EXPECT_EQ(s.local_deadline(q), Time::milliseconds(250));
  auto s2 = make(StsParams{.deadline = Time::milliseconds(800)});
  EXPECT_EQ(s2.local_deadline(q), Time::milliseconds(200));
}

TEST_F(StsFixture, SendFormulaUsesOwnRank) {
  auto s = make();
  // s(k) = φ + kP + l*d with d = 2, l = 250 ms.
  EXPECT_EQ(s.expected_send(q, 0), Time::seconds(10) + Time::milliseconds(500));
  EXPECT_EQ(s.expected_send(q, 2), Time::seconds(12) + Time::milliseconds(500));
}

TEST_F(StsFixture, ReceiveFormulaUsesChildRank) {
  auto s = make();
  // r(k,c) equals the child's expected send time (§4.1): child 3 has rank 1.
  EXPECT_EQ(s.expected_receive(q, 0, 3), Time::seconds(10) + Time::milliseconds(250));
}

TEST_F(StsFixture, LeafSendsAtEpochStart) {
  auto s = make({}, /*self=*/4);  // rank 0
  EXPECT_EQ(s.expected_send(q, 3), Time::seconds(13));
}

TEST_F(StsFixture, EarlyReportBufferedUntilExpectedSend) {
  auto s = make();
  s.register_query(q);
  // Ready well before s(0): buffered ("it is buffered until that time").
  const auto plan = s.plan_send(q, 0, Time::seconds(10) + Time::milliseconds(100));
  EXPECT_EQ(plan.send_at, Time::seconds(10) + Time::milliseconds(500));
  EXPECT_FALSE(plan.phase_update.has_value());
}

TEST_F(StsFixture, LateReportSentImmediately) {
  auto s = make();
  s.register_query(q);
  const Time late = Time::seconds(10) + Time::milliseconds(700);
  const auto plan = s.plan_send(q, 0, late);
  EXPECT_EQ(plan.send_at, late);
}

TEST_F(StsFixture, RegisterPushesRankBasedTimes) {
  auto s = make();
  s.register_query(q);
  EXPECT_EQ(sink.next_send[0], Time::seconds(10) + Time::milliseconds(500));
  EXPECT_EQ((sink.next_recv[std::make_pair<net::QueryId, net::NodeId>(0, 3)]), Time::seconds(10) + Time::milliseconds(250));
}

TEST_F(StsFixture, ZeroDeadlineDegeneratesToNts) {
  // "In the special case when l = 0, STS behaves like NTS" (§4.2.2).
  auto s = make(StsParams{.deadline = Time::zero()});
  EXPECT_EQ(s.expected_send(q, 0), Time::seconds(10));
  EXPECT_EQ(s.expected_receive(q, 0, 3), Time::seconds(10));
}

TEST_F(StsFixture, DeadlineNeverBeforeExpectedSend) {
  auto s = make();
  EXPECT_GE(s.aggregation_deadline(q, 0), s.expected_send(q, 0));
}

TEST_F(StsFixture, DeadlineIncludesLossFloor) {
  auto s = make(StsParams{.deadline = std::nullopt, .t_to = Time::milliseconds(10), .loss_floor_periods = 1.0});
  // Floor s(k) + P dominates the paper cutoff s(k) + l - t_TO here.
  EXPECT_EQ(s.aggregation_deadline(q, 0), s.expected_send(q, 0) + q.period);
}

TEST_F(StsFixture, RankChangeRepushesSchedule) {
  auto s = make();
  s.register_query(q);
  // Simulate a repair that moves node 3 (and its subtree) under node 1,
  // turning node 2 into a leaf.
  tree.change_parent(3, 1);
  tree.recompute_ranks();
  ASSERT_EQ(tree.rank(2), 0);
  s.on_rank_changed(q);
  // s now uses rank 0: φ + kP.
  EXPECT_EQ(sink.next_send[0], Time::seconds(10));
}

TEST_F(StsFixture, SendProgressPersistsAcrossEpochs) {
  auto s = make();
  s.register_query(q);
  s.on_report_sent(q, 0, s.expected_send(q, 0));
  EXPECT_EQ(sink.next_send[0], s.expected_send(q, 1));
  s.on_report_received(q, 0, 3, std::nullopt);
  EXPECT_EQ((sink.next_recv[std::make_pair<net::QueryId, net::NodeId>(0, 3)]), s.expected_receive(q, 1, 3));
}

TEST_F(StsFixture, PaperCutoffUsedWhenFloorDisabled) {
  auto s = make(StsParams{.deadline = std::nullopt, .t_to = Time::milliseconds(10), .loss_floor_periods = 0.0});
  // Deadline = s(k) + l - t_TO = s(k) + 240 ms.
  EXPECT_EQ(s.aggregation_deadline(q, 0),
            s.expected_send(q, 0) + Time::milliseconds(240));
}

}  // namespace
}  // namespace essat::core
