// Unit tests for the hot-path containers behind the city-scale sparse
// state: the open-addressed FlatMap (per-link stats, MAC dup table) and
// the power-of-two RingQueue (MAC send queue).
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/util/flat_map.h"
#include "src/util/ring_queue.h"
#include "src/util/rng.h"

namespace essat::util {
namespace {

TEST(FlatMap, StartsEmptyWithNoHeap) {
  FlatMap<std::uint64_t, int> m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.size(), 0u);
  EXPECT_EQ(m.capacity_bytes(), 0u);
  EXPECT_EQ(m.find(42), nullptr);
}

TEST(FlatMap, BracketDefaultConstructsOnFirstAccess) {
  FlatMap<std::uint64_t, int> m;
  EXPECT_EQ(m[7], 0);
  m[7] = 3;
  EXPECT_EQ(m[7], 3);
  EXPECT_EQ(m.size(), 1u);
  ASSERT_NE(m.find(7), nullptr);
  EXPECT_EQ(*m.find(7), 3);
  EXPECT_EQ(m.find(8), nullptr);
}

TEST(FlatMap, MatchesStdMapUnderRandomChurn) {
  FlatMap<std::uint32_t, std::uint64_t> m;
  std::map<std::uint32_t, std::uint64_t> ref;
  Rng rng{1234};
  // Enough keys to force several grows through the 7/8 load ceiling;
  // repeated keys exercise the found-existing probe path.
  for (int i = 0; i < 20000; ++i) {
    const auto key = static_cast<std::uint32_t>(rng.uniform_int(0, 4999));
    m[key] += key + 1;
    ref[key] += key + 1;
  }
  EXPECT_EQ(m.size(), ref.size());
  for (const auto& [k, v] : ref) {
    ASSERT_NE(m.find(k), nullptr) << "lost key " << k;
    EXPECT_EQ(*m.find(k), v) << "wrong value for key " << k;
  }
  // for_each visits every pair exactly once.
  std::map<std::uint32_t, std::uint64_t> seen;
  m.for_each([&seen](std::uint32_t k, std::uint64_t v) { seen[k] = v; });
  EXPECT_EQ(seen, ref);
}

TEST(FlatMap, AdjacentPackedKeysAllResolve) {
  // The channel packs (src,dst) as src<<32|dst: consecutive destinations
  // differ only in low bits. The multiplicative scatter must still keep
  // them distinct and findable.
  FlatMap<std::uint64_t, int> m;
  const std::uint64_t src = std::uint64_t{17} << 32;
  for (std::uint64_t d = 0; d < 512; ++d) m[src | d] = static_cast<int>(d);
  EXPECT_EQ(m.size(), 512u);
  for (std::uint64_t d = 0; d < 512; ++d) {
    ASSERT_NE(m.find(src | d), nullptr);
    EXPECT_EQ(*m.find(src | d), static_cast<int>(d));
  }
}

TEST(FlatMap, CapacityBytesGrowsGeometrically) {
  FlatMap<std::uint32_t, std::uint32_t> m;
  m[1];
  const std::size_t first = m.capacity_bytes();
  EXPECT_GT(first, 0u);
  for (std::uint32_t k = 2; k <= 1000; ++k) m[k];
  // Power-of-two doubling: capacity is a power-of-two multiple of the
  // initial table, and the load stays at or below 7/8.
  EXPECT_GE(m.capacity_bytes(), 1000 * sizeof(std::uint32_t) * 2);
  EXPECT_EQ(m.capacity_bytes() % first, 0u);
}

TEST(RingQueue, FifoOrderAcrossGrowth) {
  RingQueue<int> q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.capacity(), 0u);  // lazy: no heap until first push
  for (int i = 0; i < 100; ++i) q.push_back(i);
  EXPECT_EQ(q.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(q.pop_front(), i);
  EXPECT_TRUE(q.empty());
}

TEST(RingQueue, WrapsWithoutGrowing) {
  RingQueue<int> q;
  for (int i = 0; i < 4; ++i) q.push_back(i);
  const std::size_t cap = q.capacity();
  // Drive head around the ring many times at constant occupancy.
  for (int i = 4; i < 1000; ++i) {
    EXPECT_EQ(q.pop_front(), i - 4);
    q.push_back(i);
  }
  EXPECT_EQ(q.capacity(), cap) << "steady-state churn must not grow the ring";
  EXPECT_EQ(q.front(), 996);
  EXPECT_EQ(q.back(), 999);
}

TEST(RingQueue, IndexingCountsFromTheFront) {
  RingQueue<int> q;
  for (int i = 0; i < 6; ++i) q.push_back(10 * i);
  q.pop_front();
  q.pop_front();
  for (std::size_t i = 0; i < q.size(); ++i) {
    EXPECT_EQ(q[i], 10 * static_cast<int>(i + 2));
  }
}

TEST(RingQueue, TakeAtPreservesRelativeOrder) {
  // Pull from every position of a 5-element queue, wrapped and unwrapped.
  for (std::size_t victim = 0; victim < 5; ++victim) {
    RingQueue<int> q;
    for (int i = 0; i < 3; ++i) q.push_back(-1);  // rotate the head
    for (int i = 0; i < 3; ++i) (void)q.pop_front();
    for (int i = 0; i < 5; ++i) q.push_back(i);
    EXPECT_EQ(q.take_at(victim), static_cast<int>(victim));
    std::vector<int> rest;
    while (!q.empty()) rest.push_back(q.pop_front());
    std::vector<int> expected;
    for (int i = 0; i < 5; ++i) {
      if (i != static_cast<int>(victim)) expected.push_back(i);
    }
    EXPECT_EQ(rest, expected) << "victim index " << victim;
  }
}

TEST(RingQueue, MoveOnlyElements) {
  RingQueue<std::unique_ptr<std::string>> q;
  for (int i = 0; i < 10; ++i) {
    q.push_back(std::make_unique<std::string>(std::to_string(i)));
  }
  auto taken = q.take_at(4);
  EXPECT_EQ(*taken, "4");
  EXPECT_EQ(*q.pop_front(), "0");
  EXPECT_EQ(*q.back(), "9");
}

}  // namespace
}  // namespace essat::util
