// The core Safe Sleep guarantee (§4.1): "no energy or delay penalties are
// incurred by turning the node off". Verified end-to-end: the same
// query workload on the same topology must deliver with (near-)identical
// latency whether Safe Sleep is running or the radios stay always on.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "src/core/safe_sleep.h"
#include "src/core/sts.h"
#include "src/net/channel.h"
#include "src/query/query_agent.h"

namespace essat::core {
namespace {

using util::Time;

struct StackResult {
  std::map<std::int64_t, Time> root_arrival;   // epoch -> last arrival
  std::map<std::int64_t, int> contributions;
  double leaf_duty = 1.0;
  std::uint64_t send_failures = 0;
};

// Chain 0(root)-1-2-3-4, STS shapers, one 1 Hz query.
StackResult run_chain(bool with_safe_sleep, Time t_be) {
  sim::Simulator sim;
  net::Topology topo = net::Topology::line(5, 100.0, 125.0);
  routing::Tree tree = routing::build_bfs_tree(topo, 0, 10000.0);
  net::Channel channel{sim, topo};

  energy::RadioParams rp;
  rp.t_off_on = t_be / 2;
  rp.t_on_off = t_be / 2;

  std::vector<std::unique_ptr<energy::Radio>> radios;
  std::vector<std::unique_ptr<mac::CsmaMac>> macs;
  std::vector<std::unique_ptr<StsShaper>> shapers;
  std::vector<std::unique_ptr<SafeSleep>> sleepers;
  std::vector<std::unique_ptr<query::QueryAgent>> agents;
  for (std::size_t i = 0; i < 5; ++i) {
    radios.push_back(std::make_unique<energy::Radio>(sim, rp));
    macs.push_back(std::make_unique<mac::CsmaMac>(sim, channel, *radios.back(),
                                                  static_cast<net::NodeId>(i),
                                                  mac::MacParams{}, util::Rng{100 + i}));
    shapers.push_back(std::make_unique<StsShaper>());
    if (with_safe_sleep) {
      sleepers.push_back(std::make_unique<SafeSleep>(
          sim, *radios.back(), *macs.back(), SafeSleepParams{t_be, true}));
      sleepers.back()->set_setup_end(Time::milliseconds(500));
    } else {
      sleepers.push_back(nullptr);
    }
    shapers.back()->set_context(query::ShaperContext{
        &tree, static_cast<net::NodeId>(i),
        sleepers.back() ? sleepers.back().get() : nullptr});
    agents.push_back(std::make_unique<query::QueryAgent>(
        sim, *macs.back(), tree, static_cast<net::NodeId>(i), *shapers.back()));
    macs.back()->set_rx_handler(
        [&agents, i](const net::Packet& p) { agents[i]->handle_packet(p); });
  }

  StackResult out;
  agents[0]->set_root_arrival_hook(
      [&](const query::Query&, std::int64_t k, Time t, int c) {
        auto [it, inserted] = out.root_arrival.try_emplace(k, t);
        if (!inserted) it->second = std::max(it->second, t);
        out.contributions[k] += c;
      });

  query::Query q;
  q.id = 0;
  q.period = Time::seconds(1);
  q.phase = Time::seconds(1);
  for (auto& a : agents) a->register_query(q);

  radios[4]->begin_measurement();
  sim.run_until(Time::seconds(20));
  out.leaf_duty = radios[4]->duty_cycle();
  for (const auto& a : agents) out.send_failures += a->stats().send_failures;
  return out;
}

class PenaltySweep : public ::testing::TestWithParam<double> {};

INSTANTIATE_TEST_SUITE_P(TbeMs, PenaltySweep, ::testing::Values(1.0, 2.5, 10.0));

TEST_P(PenaltySweep, NoDelayPenaltyFromSleeping) {
  const Time t_be = Time::from_milliseconds(GetParam());
  const StackResult awake = run_chain(false, t_be);
  const StackResult sleeping = run_chain(true, t_be);

  ASSERT_GE(sleeping.root_arrival.size(), 15u);
  ASSERT_EQ(sleeping.root_arrival.size(), awake.root_arrival.size());
  for (const auto& [k, t] : sleeping.root_arrival) {
    const Time t_awake = awake.root_arrival.at(k);
    // Identical schedules modulo sub-millisecond MAC jitter: sleeping must
    // not delay any epoch perceptibly.
    EXPECT_LT((t - t_awake).to_seconds(), 5e-3) << "epoch " << k;
  }
}

TEST_P(PenaltySweep, NoDeliveryPenaltyFromSleeping) {
  const Time t_be = Time::from_milliseconds(GetParam());
  const StackResult sleeping = run_chain(true, t_be);
  EXPECT_EQ(sleeping.send_failures, 0u);
  for (const auto& [k, c] : sleeping.contributions) {
    EXPECT_EQ(c, 4) << "epoch " << k;  // all four non-root readings
  }
}

TEST_P(PenaltySweep, SleepingActuallySavesEnergy) {
  const Time t_be = Time::from_milliseconds(GetParam());
  const StackResult awake = run_chain(false, t_be);
  const StackResult sleeping = run_chain(true, t_be);
  EXPECT_NEAR(awake.leaf_duty, 1.0, 1e-6);
  // A leaf with a 1 Hz query is busy a few milliseconds per second.
  EXPECT_LT(sleeping.leaf_duty, 0.10);
}

TEST(SafeSleepTiming, ParentWakesExactlyForChildSend) {
  // White-box timing: with STS, the parent's radio must complete its
  // OFF->ON transition no later than the child's expected send time.
  const StackResult sleeping = run_chain(true, Time::from_milliseconds(2.5));
  // Covered implicitly by zero failures + full delivery above; this test
  // pins the schedule: first epoch's aggregate reaches the root within one
  // local deadline of the root's expected reception.
  ASSERT_FALSE(sleeping.root_arrival.empty());
  const Time first = sleeping.root_arrival.begin()->second;
  // Chain M = 4, D = P = 1 s, l = 250 ms: root's child (rank 3) sends at
  // φ + 3l = 1.75 s; arrival within a few ms after that.
  EXPECT_GT(first, Time::from_seconds(1.75));
  EXPECT_LT(first, Time::from_seconds(1.80));
}

}  // namespace
}  // namespace essat::core
