#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "src/core/essat_stack.h"
#include "src/core/nts.h"
#include "src/harness/scenario.h"
#include "src/harness/stack_registry.h"

namespace essat::harness {
namespace {

using util::Time;

ScenarioConfig smoke_config(ProtocolKey protocol) {
  ScenarioConfig c;
  c.protocol = std::move(protocol);
  c.deployment.num_nodes = 10;
  c.deployment.area_m = 200.0;
  c.deployment.range_m = 125.0;
  c.deployment.max_tree_dist_m = 200.0;
  c.workload.base_rate_hz = 1.0;
  c.workload.query_start_window = Time::seconds(2);
  c.setup_duration = Time::seconds(2);
  c.measure_duration = Time::seconds(8);
  c.latency_grace = Time::seconds(2);
  c.seed = 9;
  return c;
}

TEST(StackRegistry, BuiltinsAreRegistered) {
  const auto names = StackRegistry::instance().names();
  for (const char* expected :
       {"DTS-SS", "NTS-SS", "PSM", "SPAN", "STS-SS", "SYNC"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << "missing " << expected;
  }
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  EXPECT_TRUE(StackRegistry::instance().contains("DTS-SS"));
  EXPECT_FALSE(StackRegistry::instance().contains("NOT-A-PROTOCOL"));
}

// Every registered policy must assemble and run a 10-node smoke scenario:
// the registry round-trip from name to working per-node stack.
TEST(StackRegistry, EveryRegisteredPolicyRunsSmokeScenario) {
  for (const std::string& name : StackRegistry::instance().names()) {
    SCOPED_TRACE(name);
    const RunMetrics m = run_scenario(smoke_config(name));
    EXPECT_GT(m.tree_members, 3);
    EXPECT_GT(m.reports_sent, 0u);
    EXPECT_GT(m.avg_duty_cycle, 0.0);
    EXPECT_LE(m.avg_duty_cycle, 1.0);
  }
}

TEST(StackRegistry, UnknownPolicyFailsLoudly) {
  EXPECT_THROW(run_scenario(smoke_config("NO-SUCH-POLICY")),
               std::invalid_argument);
  try {
    StackRegistry::instance().create("NO-SUCH-POLICY", ScenarioConfig{});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    // The error lists the registered names so typos are self-diagnosing.
    EXPECT_NE(std::string(e.what()).find("DTS-SS"), std::string::npos);
  }
}

TEST(StackRegistry, DuplicateRegistrationThrows) {
  // Force built-in registration first (each test runs in its own process).
  ASSERT_TRUE(StackRegistry::instance().contains("DTS-SS"));
  EXPECT_THROW(StackRegistry::instance().add(
                   "DTS-SS", [](const ScenarioConfig&)
                       -> std::unique_ptr<PowerManager> { return nullptr; }),
               std::invalid_argument);
  EXPECT_THROW(StackRegistry::instance().add("", nullptr),
               std::invalid_argument);
}

// Adding a policy touches zero harness code: register a factory under a
// new name and sweep it by key like any built-in.
TEST(StackRegistry, CustomPolicyPlugsIn) {
  if (!StackRegistry::instance().contains("TEST-NTS")) {
    StackRegistry::instance().add("TEST-NTS", [](const ScenarioConfig&) {
      return std::make_unique<core::EssatPowerManager>(
          [](const ScenarioConfig&) {
            return std::make_unique<core::NtsShaper>();
          });
    });
  }
  const RunMetrics custom = run_scenario(smoke_config("TEST-NTS"));
  const RunMetrics builtin = run_scenario(smoke_config("NTS-SS"));
  EXPECT_GT(custom.reports_sent, 0u);
  // Same wiring under a different key: identical simulation.
  EXPECT_EQ(custom.reports_sent, builtin.reports_sent);
  EXPECT_DOUBLE_EQ(custom.avg_duty_cycle, builtin.avg_duty_cycle);
}

TEST(ProtocolName, FailsLoudlyOnUnknownEnum) {
  EXPECT_STREQ(protocol_name(Protocol::kNtsSs), "NTS-SS");
  EXPECT_THROW(protocol_name(static_cast<Protocol>(99)), std::invalid_argument);
}

TEST(ProtocolKey, ConvertsFromEnumAndString) {
  ScenarioConfig c;
  EXPECT_EQ(c.protocol, ProtocolKey{"DTS-SS"});  // default
  c.protocol = Protocol::kPsm;
  EXPECT_EQ(c.protocol.name, "PSM");
  c.protocol = "SPAN";
  EXPECT_EQ(c.protocol, Protocol::kSpan);
  EXPECT_NE(c.protocol, Protocol::kSync);
}

}  // namespace
}  // namespace essat::harness
