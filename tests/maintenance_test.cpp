#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/core/maintenance.h"
#include "src/core/sts.h"
#include "src/net/channel.h"

namespace essat::core {
namespace {

using util::Time;

// Diamond + tail: 0 root; 1,2 under 0; 3 under 1 (also adjacent to 2);
// 4 under 3. STS shapers so rank changes matter.
struct MaintRig {
  MaintRig()
      : topo{{{0, 0}, {100, 0}, {0, 100}, {100, 100}, {200, 100}}, 125.0},
        tree{5},
        channel{sim, topo},
        repair{topo, tree},
        maintenance{repair, MaintenanceParams{.parent_failure_threshold = 2,
                                              .child_miss_threshold = 3}} {
    tree.set_root(0);
    tree.add_node(1, 0);
    tree.add_node(2, 0);
    tree.add_node(3, 1);
    tree.add_node(4, 3);
    tree.recompute_ranks();
    for (std::size_t i = 0; i < 5; ++i) {
      radios.push_back(std::make_unique<energy::Radio>(sim, energy::RadioParams{}));
      macs.push_back(std::make_unique<mac::CsmaMac>(sim, channel, *radios.back(),
                                                    static_cast<net::NodeId>(i),
                                                    mac::MacParams{}, util::Rng{11 + i}));
      shapers.push_back(std::make_unique<StsShaper>());
      shapers.back()->set_context(
          query::ShaperContext{&tree, static_cast<net::NodeId>(i), nullptr});
      agents.push_back(std::make_unique<query::QueryAgent>(
          sim, *macs.back(), tree, static_cast<net::NodeId>(i), *shapers.back()));
      macs.back()->set_rx_handler(
          [this, i](const net::Packet& p) { agents[i]->handle_packet(p); });
      maintenance.attach_agent(static_cast<net::NodeId>(i), agents.back().get());
    }
    maintenance.set_alive_predicate(
        [this](net::NodeId n) { return !radios[static_cast<std::size_t>(n)]->failed(); });
    repair.set_hooks(maintenance.make_repair_hooks());
  }

  sim::Simulator sim;
  net::Topology topo;
  routing::Tree tree;
  net::Channel channel;
  routing::RepairService repair;
  MaintenanceService maintenance;
  std::vector<std::unique_ptr<energy::Radio>> radios;
  std::vector<std::unique_ptr<mac::CsmaMac>> macs;
  std::vector<std::unique_ptr<query::TrafficShaper>> shapers;
  std::vector<std::unique_ptr<query::QueryAgent>> agents;
};

TEST(Maintenance, ConsecutiveSendFailuresTriggerReparent) {
  MaintRig rig;
  // Node 3's parent 1 died.
  rig.radios[1]->fail();
  rig.maintenance.note_send_failure(3, 1);
  EXPECT_EQ(rig.tree.parent(3), 1);  // below threshold: nothing yet
  rig.maintenance.note_send_failure(3, 1);
  EXPECT_EQ(rig.tree.parent(3), 2);  // threshold 2 reached: reparented
  EXPECT_EQ(rig.maintenance.reparents(), 1u);
  // Ranks were recomputed: 2 now carries the 3-4 tail.
  EXPECT_EQ(rig.tree.rank(2), 2);
}

TEST(Maintenance, SendSuccessResetsFailureCounter) {
  MaintRig rig;
  rig.radios[1]->fail();
  rig.maintenance.note_send_failure(3, 1);
  rig.maintenance.note_send_success(3);
  rig.maintenance.note_send_failure(3, 1);
  EXPECT_EQ(rig.tree.parent(3), 1);  // streak broken: still below threshold
  EXPECT_EQ(rig.maintenance.reparents(), 0u);
}

TEST(Maintenance, ConsecutiveChildMissesRemoveChild) {
  MaintRig rig;
  rig.radios[3]->fail();
  rig.maintenance.note_child_miss(1, 3);
  rig.maintenance.note_child_miss(1, 3);
  EXPECT_TRUE(rig.tree.is_member(3));
  rig.maintenance.note_child_miss(1, 3);  // threshold 3
  EXPECT_FALSE(rig.tree.is_member(3));
  EXPECT_EQ(rig.maintenance.child_removals(), 1u);
  // Orphan 4 had no alternative neighbor: stranded (3 was its only link).
  EXPECT_FALSE(rig.tree.is_member(4));
}

TEST(Maintenance, ChildHeardResetsMissCounter) {
  MaintRig rig;
  rig.maintenance.note_child_miss(1, 3);
  rig.maintenance.note_child_miss(1, 3);
  rig.maintenance.note_child_heard(1, 3);
  rig.maintenance.note_child_miss(1, 3);
  EXPECT_TRUE(rig.tree.is_member(3));
}

TEST(Maintenance, EndToEndFailureRecovery) {
  MaintRig rig;
  query::Query q;
  q.id = 0;
  q.period = Time::seconds(1);
  q.phase = Time::seconds(1);
  for (auto& a : rig.agents) a->register_query(q);

  int root_contribs_late = 0;
  rig.agents[0]->set_root_arrival_hook(
      [&](const query::Query&, std::int64_t k, Time, int c) {
        if (k >= 8) root_contribs_late += c;
      });

  // Kill node 1 at t = 2.5 s; node 3 must detect the dead parent via MAC
  // failures and re-attach under node 2, restoring full delivery.
  rig.sim.schedule_at(Time::from_seconds(2.5), [&] {
    rig.radios[1]->fail();
    rig.agents[1]->halt();
  });
  rig.sim.run_until(Time::from_seconds(11.5));
  EXPECT_EQ(rig.tree.parent(3), 2);
  // Epochs 8 and 9: nodes 2,3,4 all contribute again (node 1 is gone).
  EXPECT_GE(root_contribs_late, 6);
}

}  // namespace
}  // namespace essat::core
