// Steady-state allocation tests for the simulation hot path: after
// warm-up, event push/pop, timer re-arms, and broadcast delivery must not
// touch the heap at all. A counting global operator new/delete is the
// tracking hook; counting is scoped so gtest's own bookkeeping stays out
// of the numbers.
#include <gtest/gtest.h>

#include "bench/alloc_hook.h"
#include "src/essat.h"

namespace essat {
namespace {

using CountScope = bench_alloc::AllocationCounter;
using util::Time;

// A capture the size the simulator actually schedules (five words — wider
// than libstdc++'s std::function SBO, the case that used to allocate).
struct WideCapture {
  void* a = nullptr;
  void* b = nullptr;
  void* c = nullptr;
  std::uint64_t k = 0;
  std::uint64_t j = 0;
};

TEST(SteadyStateAlloc, EventPushPopIsAllocationFree) {
  sim::EventQueue q;
  q.reserve(256);
  WideCapture w;
  std::uint64_t sink = 0;
  // Warm-up: populate slots, bucket capacity, and the overflow list.
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 128; ++i) {
      w.k = static_cast<std::uint64_t>(i);
      q.push(Time::microseconds(137 * i), [w, &sink] { sink += w.k; });
    }
    while (!q.empty()) q.pop().second();
  }
  {
    CountScope scope;
    for (int i = 0; i < 128; ++i) {
      w.k = static_cast<std::uint64_t>(i);
      q.push(Time::microseconds(137 * i), [w, &sink] { sink += w.k; });
    }
    while (!q.empty()) q.pop().second();
    EXPECT_EQ(scope.count(), 0u) << "event push/pop allocated after warm-up";
  }
  EXPECT_GT(sink, 0u);
}

TEST(SteadyStateAlloc, TimerRearmIsAllocationFree) {
  sim::Simulator sim;
  sim.reserve_events(16);
  sim::Timer t{sim};
  int fired = 0;
  // Warm-up one arm/fire cycle plus re-arms.
  t.arm_in(Time::microseconds(5), [&fired] { ++fired; });
  t.arm_in(Time::microseconds(7), [&fired] { ++fired; });
  sim.run();
  {
    CountScope scope;
    t.arm_in(Time::microseconds(5), [&fired] { ++fired; });
    t.arm_in(Time::microseconds(9), [&fired] { ++fired; });  // rearm fast path
    t.arm_in(Time::microseconds(3), [&fired] { ++fired; });  // rearm earlier
    sim.run();
    EXPECT_EQ(scope.count(), 0u) << "timer re-arm allocated after warm-up";
  }
  EXPECT_EQ(fired, 2);
}

TEST(SteadyStateAlloc, BroadcastDeliveryIsAllocationFree) {
  sim::Simulator sim;
  sim.reserve_events(64);
  const net::Topology topo = net::Topology::line(3, 100.0, 125.0);
  net::Channel ch{sim, topo};
  struct Counting : net::ChannelListener {
    int delivered = 0;
    void on_rx_complete(const net::Packet&, bool ok) override {
      if (ok) ++delivered;
    }
    void on_channel_activity() override {}
  } listener;
  int& delivered = listener.delivered;
  for (net::NodeId n = 0; n < 3; ++n) {
    ch.attach(n, &listener);
    ch.set_listening(n, true);
  }
  net::AtimDestinations dests{1, 2};
  auto broadcast = [&](int rounds) {
    for (int i = 0; i < rounds; ++i) {
      sim.schedule_in(Time::microseconds(1 + 700 * i), [&ch, &dests] {
        ch.start_tx(0, net::make_atim_packet(0, dests),
                    Time::microseconds(400));
      });
    }
    sim.run();
  };
  broadcast(8);  // warm-up: packet pool, event slots, bucket capacity
  const int before = delivered;
  {
    CountScope scope;
    broadcast(8);
    EXPECT_EQ(scope.count(), 0u) << "broadcast delivery allocated after warm-up";
  }
  EXPECT_GT(delivered, before);
}

// Epoch rollover across a full 4-node aggregation chain: after the first
// few epochs populate the pools (epoch records, MAC rings, packet blocks,
// event slots), each further epoch — generate, aggregate hop by hop,
// deliver at the root, open the next — must be allocation-free. This is
// the query agent's steady state; the legacy per-epoch std::map/std::set
// records paid four-plus allocations per epoch here.
TEST(SteadyStateAlloc, EpochRolloverIsAllocationFree) {
  sim::Simulator sim;
  sim.reserve_events(256);
  const net::Topology topo = net::Topology::line(4, 100.0, 125.0);
  const routing::Tree tree = routing::build_bfs_tree(topo, 0, 10000.0);
  net::Channel ch{sim, topo};
  // Zero contention window: the chain's transmissions are staggered by the
  // shaper, so backoff only adds rng jitter that would smear the per-epoch
  // event cluster across different wheel buckets each epoch and defeat the
  // bucket-capacity warm-up.
  mac::MacParams mp;
  mp.cw_min = 0;
  mp.cw_max = 0;
  mp.initial_data_cw = 0;
  std::vector<std::unique_ptr<energy::Radio>> radios;
  std::vector<std::unique_ptr<mac::CsmaMac>> macs;
  std::vector<std::unique_ptr<core::NtsShaper>> shapers;
  std::vector<std::unique_ptr<query::QueryAgent>> agents;
  for (std::size_t i = 0; i < 4; ++i) {
    const auto id = static_cast<net::NodeId>(i);
    radios.push_back(std::make_unique<energy::Radio>(sim, energy::RadioParams{}));
    macs.push_back(std::make_unique<mac::CsmaMac>(
        sim, ch, *radios.back(), id, mp, util::Rng{50 + i}));
    shapers.push_back(std::make_unique<core::NtsShaper>());
    shapers.back()->set_context(query::ShaperContext{&tree, id, nullptr});
    agents.push_back(std::make_unique<query::QueryAgent>(
        sim, *macs.back(), tree, id, *shapers.back(),
        query::QueryAgentParams{.t_comp = Time::milliseconds(2)}));
    macs.back()->set_rx_handler(
        [&agents, i](const net::Packet& p) { agents[i]->handle_packet(p); });
  }
  int root_arrivals = 0;
  agents[0]->set_root_arrival_hook(
      [&root_arrivals](const query::Query&, std::int64_t, Time, int) {
        ++root_arrivals;
      });
  // Period a multiple of the calendar wheel's epoch (1024 buckets of
  // 2^14 ns): every epoch's deterministic timer cluster (sends, deadlines)
  // then lands in the same wheel buckets the warm-up epochs already grew,
  // so the assertion checks the true steady state instead of racing bucket
  // capacities against slot drift.
  const Time period = Time::nanoseconds((std::int64_t{1} << 24) * 60);
  query::Query q;
  q.id = 0;
  q.period = period;
  q.phase = period;
  for (auto& a : agents) a->register_query(q);

  sim.run_until(period * 5);  // warm-up: several full epochs
  const int before = root_arrivals;
  {
    CountScope scope;
    sim.run_until(period * 10);
    EXPECT_EQ(scope.count(), 0u) << "epoch rollover allocated after warm-up";
  }
  EXPECT_GE(root_arrivals - before, 4);  // epochs really rolled in the window
}

// MAC queue churn: bursts that stack frames behind a busy medium and then
// drain to empty, repeated. The legacy std::deque returned its chunk on
// every drain and re-bought it on the next burst; the ring must keep its
// high-water storage, making fill/drain cycles allocation-free.
TEST(SteadyStateAlloc, MacQueueChurnIsAllocationFree) {
  sim::Simulator sim;
  sim.reserve_events(256);
  const net::Topology topo = net::Topology::line(2, 100.0, 125.0);
  net::Channel ch{sim, topo};
  energy::Radio r0{sim, energy::RadioParams{}};
  energy::Radio r1{sim, energy::RadioParams{}};
  // Single sender, so backoff never resolves contention here — zero the
  // contention window to keep each burst's event times identical modulo
  // the wheel epoch (see the spacing note below).
  mac::MacParams mp;
  mp.cw_min = 0;
  mp.cw_max = 0;
  mp.initial_data_cw = 0;
  mac::CsmaMac m0{sim, ch, r0, 0, mp, util::Rng{7}};
  mac::CsmaMac m1{sim, ch, r1, 1, mp, util::Rng{8}};
  int received = 0;
  m1.set_rx_handler([&received](const net::Packet&) { ++received; });

  // Burst spacing = one full wheel epoch (1024 buckets of 2^14 ns), so
  // every burst's event cluster reuses the wheel buckets the warm-up
  // bursts grew; see EpochRolloverIsAllocationFree.
  const Time spacing = Time::nanoseconds(std::int64_t{1} << 24);
  int round = 0;  // bursts at absolute times round*spacing: always aligned
  auto burst = [&](int rounds) {
    for (int i = 0; i < rounds; ++i) {
      sim.schedule_at(spacing * round++, [&m0] {
        // Six frames at once: the queue stacks up behind the in-flight
        // head, then drains to empty before the next burst.
        for (int j = 0; j < 6; ++j) {
          net::DataHeader h;
          h.query = 1;
          m0.send(net::make_data_packet(0, 1, h));
        }
      });
    }
    sim.run();
  };
  burst(4);  // warm-up: ring high water, ACK/backoff timers, packet pool
  const int before = received;
  {
    CountScope scope;
    burst(4);
    EXPECT_EQ(scope.count(), 0u) << "queue fill/drain allocated after warm-up";
  }
  EXPECT_GT(received, before);
}

// The packet pool recycles its control blocks: a long tx sequence keeps a
// bounded pool instead of allocating per frame.
TEST(SteadyStateAlloc, PacketPoolRecyclesBlocks) {
  net::PacketPool pool;
  {
    net::PacketRef a = pool.acquire(net::Packet{});
    net::PacketRef b = pool.acquire(net::Packet{});
  }
  EXPECT_EQ(pool.recycled_blocks(), 2u);
  {
    CountScope scope;
    for (int i = 0; i < 100; ++i) {
      net::PacketRef r = pool.acquire(net::Packet{});
    }
    EXPECT_EQ(scope.count(), 0u) << "pool acquire allocated with free blocks";
  }
  EXPECT_EQ(pool.recycled_blocks(), 2u);
}

}  // namespace
}  // namespace essat
