// Steady-state allocation tests for the simulation hot path: after
// warm-up, event push/pop, timer re-arms, and broadcast delivery must not
// touch the heap at all. A counting global operator new/delete is the
// tracking hook; counting is scoped so gtest's own bookkeeping stays out
// of the numbers.
#include <gtest/gtest.h>

#include "bench/alloc_hook.h"
#include "src/essat.h"

namespace essat {
namespace {

using CountScope = bench_alloc::AllocationCounter;
using util::Time;

// A capture the size the simulator actually schedules (five words — wider
// than libstdc++'s std::function SBO, the case that used to allocate).
struct WideCapture {
  void* a = nullptr;
  void* b = nullptr;
  void* c = nullptr;
  std::uint64_t k = 0;
  std::uint64_t j = 0;
};

TEST(SteadyStateAlloc, EventPushPopIsAllocationFree) {
  sim::EventQueue q;
  q.reserve(256);
  WideCapture w;
  std::uint64_t sink = 0;
  // Warm-up: populate slots, bucket capacity, and the overflow list.
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 128; ++i) {
      w.k = static_cast<std::uint64_t>(i);
      q.push(Time::microseconds(137 * i), [w, &sink] { sink += w.k; });
    }
    while (!q.empty()) q.pop().second();
  }
  {
    CountScope scope;
    for (int i = 0; i < 128; ++i) {
      w.k = static_cast<std::uint64_t>(i);
      q.push(Time::microseconds(137 * i), [w, &sink] { sink += w.k; });
    }
    while (!q.empty()) q.pop().second();
    EXPECT_EQ(scope.count(), 0u) << "event push/pop allocated after warm-up";
  }
  EXPECT_GT(sink, 0u);
}

TEST(SteadyStateAlloc, TimerRearmIsAllocationFree) {
  sim::Simulator sim;
  sim.reserve_events(16);
  sim::Timer t{sim};
  int fired = 0;
  // Warm-up one arm/fire cycle plus re-arms.
  t.arm_in(Time::microseconds(5), [&fired] { ++fired; });
  t.arm_in(Time::microseconds(7), [&fired] { ++fired; });
  sim.run();
  {
    CountScope scope;
    t.arm_in(Time::microseconds(5), [&fired] { ++fired; });
    t.arm_in(Time::microseconds(9), [&fired] { ++fired; });  // rearm fast path
    t.arm_in(Time::microseconds(3), [&fired] { ++fired; });  // rearm earlier
    sim.run();
    EXPECT_EQ(scope.count(), 0u) << "timer re-arm allocated after warm-up";
  }
  EXPECT_EQ(fired, 2);
}

TEST(SteadyStateAlloc, BroadcastDeliveryIsAllocationFree) {
  sim::Simulator sim;
  sim.reserve_events(64);
  const net::Topology topo = net::Topology::line(3, 100.0, 125.0);
  net::Channel ch{sim, topo};
  int delivered = 0;
  for (net::NodeId n = 0; n < 3; ++n) {
    ch.attach(n, net::Channel::Attachment{
                     [] { return true; },
                     [&delivered](const net::Packet&, bool ok) {
                       if (ok) ++delivered;
                     },
                     nullptr,
                 });
  }
  net::AtimDestinations dests{1, 2};
  auto broadcast = [&](int rounds) {
    for (int i = 0; i < rounds; ++i) {
      sim.schedule_in(Time::microseconds(1 + 700 * i), [&ch, &dests] {
        ch.start_tx(0, net::make_atim_packet(0, dests),
                    Time::microseconds(400));
      });
    }
    sim.run();
  };
  broadcast(8);  // warm-up: packet pool, event slots, bucket capacity
  const int before = delivered;
  {
    CountScope scope;
    broadcast(8);
    EXPECT_EQ(scope.count(), 0u) << "broadcast delivery allocated after warm-up";
  }
  EXPECT_GT(delivered, before);
}

// The packet pool recycles its control blocks: a long tx sequence keeps a
// bounded pool instead of allocating per frame.
TEST(SteadyStateAlloc, PacketPoolRecyclesBlocks) {
  net::PacketPool pool;
  {
    net::PacketRef a = pool.acquire(net::Packet{});
    net::PacketRef b = pool.acquire(net::Packet{});
  }
  EXPECT_EQ(pool.recycled_blocks(), 2u);
  {
    CountScope scope;
    for (int i = 0; i < 100; ++i) {
      net::PacketRef r = pool.acquire(net::Packet{});
    }
    EXPECT_EQ(scope.count(), 0u) << "pool acquire allocated with free blocks";
  }
  EXPECT_EQ(pool.recycled_blocks(), 2u);
}

}  // namespace
}  // namespace essat
