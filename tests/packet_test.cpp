#include <gtest/gtest.h>

#include "src/net/packet.h"

namespace essat::net {
namespace {

TEST(Packet, DataPacketUsesPaperSize) {
  const Packet p = make_data_packet(1, 2, DataHeader{});
  EXPECT_EQ(p.size_bytes, 52);  // §5: 52-byte data reports
  EXPECT_EQ(p.type, PacketType::kData);
  EXPECT_EQ(p.link_src, 1);
  EXPECT_EQ(p.link_dst, 2);
  EXPECT_FALSE(p.is_broadcast());
}

TEST(Packet, DataHeaderRoundTrip) {
  DataHeader h;
  h.query = 3;
  h.epoch = 17;
  h.origin = 9;
  h.contributions = 4;
  h.phase_update = util::Time::seconds(12);
  const Packet p = make_data_packet(9, 2, h);
  EXPECT_EQ(p.data().query, 3);
  EXPECT_EQ(p.data().epoch, 17);
  EXPECT_EQ(p.data().contributions, 4);
  ASSERT_TRUE(p.data().phase_update.has_value());
  EXPECT_EQ(*p.data().phase_update, util::Time::seconds(12));
  EXPECT_FALSE(p.data().pass_through);
}

TEST(Packet, SetupIsBroadcast) {
  const Packet p = make_setup_packet(4, 0, 2);
  EXPECT_TRUE(p.is_broadcast());
  EXPECT_EQ(p.setup().level, 2);
  EXPECT_EQ(p.setup().root, 0);
  EXPECT_EQ(p.size_bytes, Packet::kControlBytes);
}

TEST(Packet, JoinIsUnicastToParent) {
  const Packet p = make_join_packet(5, 2);
  EXPECT_EQ(p.link_dst, 2);
  EXPECT_EQ(p.type, PacketType::kJoin);
}

TEST(Packet, RankPacket) {
  const Packet p = make_rank_packet(5, 2, 3);
  EXPECT_EQ(p.rank().rank, 3);
  EXPECT_EQ(p.link_dst, 2);
}

TEST(Packet, AtimListsDestinations) {
  const Packet p = make_atim_packet(1, {2, 3, 4});
  EXPECT_TRUE(p.is_broadcast());
  EXPECT_EQ(p.atim().destinations, (AtimDestinations{2, 3, 4}));
}

// The common ATIM case (a handful of pending neighbors) must stay within
// the header's inline storage: a spill would re-introduce a heap
// allocation per Packet copy on the zero-copy delivery path.
TEST(Packet, AtimInlineStorageCoversCommonCase) {
  AtimDestinations dests;
  for (NodeId d = 0; d < static_cast<NodeId>(AtimDestinations::inline_capacity());
       ++d) {
    dests.push_back(d);
  }
  const Packet p = make_atim_packet(1, dests);
  EXPECT_EQ(p.atim().destinations.size(), AtimDestinations::inline_capacity());
  EXPECT_EQ(p.atim().destinations.capacity(), AtimDestinations::inline_capacity());
  // Past the inline capacity the list spills but stays correct.
  AtimDestinations big;
  for (NodeId d = 0; d < 20; ++d) big.push_back(d);
  const Packet q = make_atim_packet(1, big);
  EXPECT_EQ(q.atim().destinations.size(), 20u);
  EXPECT_EQ(q.atim().destinations[19], 19);
}

TEST(Packet, PhaseRequest) {
  const Packet p = make_phase_request_packet(2, 5, 7);
  EXPECT_EQ(p.type, PacketType::kPhaseRequest);
  EXPECT_EQ(p.phase_request().query, 7);
  EXPECT_EQ(p.link_dst, 5);
}

TEST(Packet, TypeNames) {
  EXPECT_STREQ(packet_type_name(PacketType::kData), "DATA");
  EXPECT_STREQ(packet_type_name(PacketType::kAck), "ACK");
  EXPECT_STREQ(packet_type_name(PacketType::kSetup), "SETUP");
  EXPECT_STREQ(packet_type_name(PacketType::kAtim), "ATIM");
}

}  // namespace
}  // namespace essat::net
