// Acceptance checks for the time-varying-topology / routing-policy
// redesign:
//  * Static mobility + the min-hop policy are byte-identical to the legacy
//    hardwired code paths (the "legacy" RoutingSpec sentinel) across a full
//    protocol x topology x rate grid — the same pattern as the PR 3
//    UnitDisc channel equivalence test.
//  * Random-waypoint runs are bit-identical for any worker count.
//  * ETX parent selection measurably improves delivery over min-hop on a
//    gray-zone shadowing channel.
#include <gtest/gtest.h>

#include "src/exp/sweep.h"
#include "src/exp/sweep_runner.h"
#include "src/net/link_model.h"
#include "src/net/mobility.h"

namespace essat::exp {
namespace {

using util::Time;

harness::ScenarioConfig small_base() {
  harness::ScenarioConfig c;
  c.deployment.num_nodes = 12;
  c.deployment.area_m = 250.0;
  c.deployment.range_m = 125.0;
  c.deployment.max_tree_dist_m = 250.0;
  c.workload.base_rate_hz = 1.0;
  c.workload.query_start_window = Time::seconds(1);
  c.setup_duration = Time::seconds(2);
  c.measure_duration = Time::seconds(4);
  c.latency_grace = Time::seconds(1);
  c.seed = 7;
  return c;
}

void expect_runs_identical(const harness::RunMetrics& a,
                           const harness::RunMetrics& b) {
  EXPECT_EQ(a.avg_duty_cycle, b.avg_duty_cycle);  // exact, not NEAR
  EXPECT_EQ(a.avg_latency_s, b.avg_latency_s);
  EXPECT_EQ(a.p95_latency_s, b.p95_latency_s);
  EXPECT_EQ(a.max_latency_s, b.max_latency_s);
  EXPECT_EQ(a.delivery_ratio, b.delivery_ratio);
  EXPECT_EQ(a.epochs_measured, b.epochs_measured);
  EXPECT_EQ(a.reports_sent, b.reports_sent);
  EXPECT_EQ(a.mac_transmissions, b.mac_transmissions);
  EXPECT_EQ(a.mac_send_failures, b.mac_send_failures);
  EXPECT_EQ(a.mac_retx_no_ack, b.mac_retx_no_ack);
  EXPECT_EQ(a.mac_cca_busy_defers, b.mac_cca_busy_defers);
  EXPECT_EQ(a.channel_collisions, b.channel_collisions);
  EXPECT_EQ(a.channel_delivered, b.channel_delivered);
  EXPECT_EQ(a.phase_updates, b.phase_updates);
  EXPECT_EQ(a.tree_members, b.tree_members);
  EXPECT_EQ(a.max_rank, b.max_rank);
}

// The redesign's backward-compatibility contract: the default config
// (static mobility, min-hop policy, every selection site on the new
// policy/grid code) reproduces the legacy hardwired paths bit for bit.
TEST(MobilityRoutingMatrix, StaticMinHopIdenticalToLegacyOnFullGrid) {
  auto run_grid = [](const std::string& policy) {
    harness::ScenarioConfig base = small_base();
    base.routing.policy = policy;
    SweepSpec spec(base);
    spec.runs(1)
        .axis_protocol({harness::Protocol::kDtsSs, harness::Protocol::kPsm})
        .axis_topology({net::TopologyKind::kUniform, net::TopologyKind::kGrid,
                        net::TopologyKind::kClustered,
                        net::TopologyKind::kCorridor})
        .axis_rate({1.0, 2.0});
    SweepRunner::Options opts;
    opts.jobs = 4;
    return SweepRunner(opts).run(spec);
  };
  const auto legacy = run_grid("legacy");
  const auto min_hop = run_grid("min-hop");
  ASSERT_EQ(legacy.size(), 16u);
  ASSERT_EQ(min_hop.size(), 16u);
  for (std::size_t p = 0; p < legacy.size(); ++p) {
    SCOPED_TRACE(legacy[p].point.labels[0] + " / " + legacy[p].point.labels[1] +
                 " / " + legacy[p].point.labels[2]);
    expect_runs_identical(legacy[p].metrics.last_run,
                          min_hop[p].metrics.last_run);
  }
}

// Same contract through the distributed setup protocol (the flood now
// advertises costs and consults the policy).
TEST(MobilityRoutingMatrix, StaticMinHopIdenticalToLegacyDistributedSetup) {
  auto run = [](const std::string& policy) {
    harness::ScenarioConfig c = small_base();
    c.use_distributed_setup = true;
    c.setup_duration = Time::seconds(4);
    c.routing.policy = policy;
    return harness::run_scenario(c);
  };
  expect_runs_identical(run("legacy"), run("min-hop"));
}

// Installing an explicit StaticMobility model — epoch ticks, position
// re-sampling, grid neighbor rebuilds and all — must change nothing either.
TEST(MobilityRoutingMatrix, ExplicitStaticModelIdenticalToNoModel) {
  harness::ScenarioConfig c = small_base();
  const harness::RunMetrics baseline = harness::run_scenario(c);

  // kWaypoints with no traces: every node holds its initial position, but
  // the whole time-varying machinery runs (ticks, rebuilds).
  c.mobility.kind = net::MobilityKind::kWaypoints;
  c.mobility.epoch_s = 1.0;
  const harness::RunMetrics ticked = harness::run_scenario(c);
  expect_runs_identical(baseline, ticked);
}

// Determinism: random-waypoint mobility + shadowing loss + maintenance,
// bit-identical across worker counts (the acceptance criterion for forked
// per-trial mobility streams).
TEST(MobilityRoutingMatrix, RandomWaypointDeterministicAcrossJobCounts) {
  auto run_grid = [](int jobs) {
    harness::ScenarioConfig base = small_base();
    base.channel_model.kind = net::LinkModelKind::kLogNormalShadowing;
    base.enable_maintenance = true;
    base.mobility.kind = net::MobilityKind::kRandomWaypoint;
    base.mobility.waypoint.speed_min_mps = 1.0;
    base.mobility.waypoint.speed_max_mps = 3.0;
    base.mobility.waypoint.pause_s = 2.0;
    base.mobility.epoch_s = 1.0;
    std::vector<routing::RoutingSpec> routing(2);
    routing[0].policy = "min-hop";
    routing[1].policy = "etx";
    SweepSpec spec(base);
    spec.runs(2)
        .axis_protocol({harness::Protocol::kDtsSs, harness::Protocol::kNtsSs})
        .axis_routing(routing);
    SweepRunner::Options opts;
    opts.jobs = jobs;
    return SweepRunner(opts).run(spec);
  };
  const auto serial = run_grid(1);
  const auto parallel = run_grid(8);
  ASSERT_EQ(serial.size(), 4u);
  ASSERT_EQ(parallel.size(), 4u);
  EXPECT_EQ(serial[0].point.labels,
            (std::vector<std::string>{"DTS-SS", "min-hop"}));
  EXPECT_EQ(serial[1].point.labels, (std::vector<std::string>{"DTS-SS", "etx"}));
  for (std::size_t p = 0; p < serial.size(); ++p) {
    SCOPED_TRACE(serial[p].point.labels[0] + " / " + serial[p].point.labels[1]);
    expect_runs_identical(serial[p].metrics.last_run,
                          parallel[p].metrics.last_run);
    EXPECT_EQ(serial[p].metrics.delivery_ratio.mean(),
              parallel[p].metrics.delivery_ratio.mean());
    // The run actually exercised the lossy mobile world.
    EXPECT_GT(serial[p].metrics.last_run.channel_dropped_by_model, 0u);
    EXPECT_GT(serial[p].metrics.last_run.reports_sent, 0u);
  }
}

// Mobility must actually change the world relative to a static run.
TEST(MobilityRoutingMatrix, WaypointMobilityChangesOutcomes) {
  harness::ScenarioConfig c = small_base();
  c.measure_duration = Time::seconds(8);
  const harness::RunMetrics fixed = harness::run_scenario(c);
  c.mobility.kind = net::MobilityKind::kRandomWaypoint;
  c.mobility.waypoint.speed_min_mps = 2.0;
  c.mobility.waypoint.speed_max_mps = 5.0;
  c.mobility.waypoint.pause_s = 0.0;
  c.mobility.epoch_s = 1.0;
  const harness::RunMetrics moving = harness::run_scenario(c);
  EXPECT_NE(fixed.avg_duty_cycle, moving.avg_duty_cycle);
}

// The acceptance criterion: over a gray-zone shadowing channel, ETX parent
// selection delivers measurably more than min-hop. Averaged over several
// seeds on a deployment sparse enough that min-hop must take long marginal
// links.
TEST(MobilityRoutingMatrix, EtxImprovesDeliveryOnGrayZoneShadowing) {
  auto run_point = [](const std::string& policy) {
    harness::ScenarioConfig base = small_base();
    base.deployment.num_nodes = 20;
    base.deployment.area_m = 320.0;
    base.deployment.max_tree_dist_m = 320.0;
    base.measure_duration = Time::seconds(10);
    base.channel_model.kind = net::LinkModelKind::kLogNormalShadowing;
    // Harsh gray zone: the margin at range is negative, so links near the
    // disc edge sit well below 50% PRR while short links stay reliable.
    base.channel_model.shadowing.range_margin_db = -3.0;
    base.channel_model.shadowing.gray_zone_width_db = 3.0;
    base.channel_model.shadowing.shadowing_sigma_db = 4.0;
    base.routing.policy = policy;
    SweepSpec spec(base);
    spec.runs(5);
    SweepRunner::Options opts;
    opts.jobs = 4;
    return SweepRunner(opts).run(spec)[0].metrics;
  };
  const auto min_hop = run_point("min-hop");
  const auto etx = run_point("etx");
  // Measurable, not marginal: ETX routes around the gray zone.
  EXPECT_GT(etx.delivery_ratio.mean(), min_hop.delivery_ratio.mean() + 0.02)
      << "etx " << etx.delivery_ratio.mean() << " vs min-hop "
      << min_hop.delivery_ratio.mean();
  // And it spends fewer no-ACK retransmissions doing it.
  EXPECT_LT(etx.retx_no_ack.mean(), min_hop.retx_no_ack.mean());
}

// Axis helpers label the grid correctly.
TEST(MobilityRoutingMatrix, AxisMobilityAndRoutingLabels) {
  std::vector<net::MobilitySpec> mobility(2);
  mobility[1].kind = net::MobilityKind::kRandomWaypoint;
  mobility[1].waypoint.speed_max_mps = 2.0;
  std::vector<routing::RoutingSpec> routing(2);
  routing[1].policy = "etx";

  SweepSpec spec(small_base());
  spec.runs(1).axis_mobility(mobility).axis_routing(routing);
  EXPECT_EQ(spec.axis_names(),
            (std::vector<std::string>{"mobility", "routing"}));
  const auto points = spec.points();
  ASSERT_EQ(points.size(), 4u);
  EXPECT_EQ(points[0].labels, (std::vector<std::string>{"static", "min-hop"}));
  EXPECT_EQ(points[3].labels,
            (std::vector<std::string>{"waypoint@2mps", "etx"}));
  EXPECT_EQ(points[3].config.mobility.kind, net::MobilityKind::kRandomWaypoint);
  EXPECT_EQ(points[3].config.routing.policy, "etx");
}

}  // namespace
}  // namespace essat::exp
