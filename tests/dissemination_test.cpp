// Tests for the §3 extension: periodic data dissemination down the routing
// tree with STS-style level pacing and Safe Sleep integration.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "src/core/dissemination.h"
#include "src/core/safe_sleep.h"
#include "src/net/channel.h"

namespace essat::core {
namespace {

using util::Time;

// Chain 0(root) - 1 - 2 - 3 with dissemination agents, optional Safe Sleep.
struct DissemRig {
  explicit DissemRig(bool with_safe_sleep = false,
                     DisseminationParams params = {})
      : topo{net::Topology::line(4, 100.0, 125.0)},
        tree{routing::build_bfs_tree(topo, 0, 10000.0)},
        channel{sim, topo} {
    for (std::size_t i = 0; i < 4; ++i) {
      radios.push_back(std::make_unique<energy::Radio>(sim, energy::RadioParams{}));
      macs.push_back(std::make_unique<mac::CsmaMac>(sim, channel, *radios.back(),
                                                    static_cast<net::NodeId>(i),
                                                    mac::MacParams{}, util::Rng{81 + i}));
      if (with_safe_sleep) {
        sleepers.push_back(std::make_unique<SafeSleep>(
            sim, *radios.back(), *macs.back(), SafeSleepParams{}));
        sleepers.back()->set_setup_end(Time::milliseconds(500));
      } else {
        sleepers.push_back(nullptr);
      }
      agents.push_back(std::make_unique<DisseminationAgent>(
          sim, *macs.back(), tree, static_cast<net::NodeId>(i), params,
          sleepers.back() ? sleepers.back().get() : nullptr));
      macs.back()->set_rx_handler(
          [this, i](const net::Packet& p) { agents[i]->handle_packet(p); });
    }
  }

  void register_everywhere(const DisseminationTask& t) {
    for (auto& a : agents) a->register_task(t);
  }

  sim::Simulator sim;
  net::Topology topo;
  routing::Tree tree;
  net::Channel channel;
  std::vector<std::unique_ptr<energy::Radio>> radios;
  std::vector<std::unique_ptr<mac::CsmaMac>> macs;
  std::vector<std::unique_ptr<SafeSleep>> sleepers;
  std::vector<std::unique_ptr<DisseminationAgent>> agents;
};

DisseminationTask task_1hz() {
  DisseminationTask t;
  t.id = 0;
  t.period = Time::seconds(1);
  t.phase = Time::seconds(1);
  return t;
}

TEST(Dissemination, ReachesEveryNodeEveryRound) {
  DissemRig rig;
  rig.register_everywhere(task_1hz());
  rig.sim.run_until(Time::from_seconds(6.5));
  EXPECT_EQ(rig.agents[0]->stats().generated, 6u);
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_EQ(rig.agents[i]->stats().received, 6u) << "node " << i;
    EXPECT_EQ(rig.agents[i]->stats().missed_rounds, 0u) << "node " << i;
  }
  // Interior nodes forwarded one copy per child; the leaf forwards nothing.
  EXPECT_EQ(rig.agents[1]->stats().forwarded, 6u);
  EXPECT_EQ(rig.agents[3]->stats().forwarded, 0u);
}

TEST(Dissemination, LevelPacingBuffersForwards) {
  DisseminationParams params;
  params.level_slice = Time::milliseconds(50);
  DissemRig rig{false, params};
  std::map<net::NodeId, Time> arrival;
  for (std::size_t i = 1; i < 4; ++i) {
    rig.agents[i]->set_delivery_hook(
        [&arrival, i](const DisseminationTask&, std::int64_t k, Time t) {
          if (k == 0) arrival[static_cast<net::NodeId>(i)] = t;
        });
  }
  rig.register_everywhere(task_1hz());
  rig.sim.run_until(Time::seconds(2));
  // Node at level v receives just after φ + l*(v-1).
  EXPECT_GE(arrival[1], Time::seconds(1));
  EXPECT_LT(arrival[1], Time::from_seconds(1.010));
  EXPECT_GE(arrival[2], Time::from_seconds(1.050));
  EXPECT_LT(arrival[2], Time::from_seconds(1.060));
  EXPECT_GE(arrival[3], Time::from_seconds(1.100));
  EXPECT_LT(arrival[3], Time::from_seconds(1.110));
}

TEST(Dissemination, ExpectedTimesFollowLevelFormula) {
  DisseminationParams params;
  params.level_slice = Time::milliseconds(20);
  DissemRig rig{false, params};
  const auto t = task_1hz();
  // Node 2 is at level 2: r(k) = φ + kP + l, s(k) = φ + kP + 2l.
  EXPECT_EQ(rig.agents[2]->expected_receive(t, 0),
            Time::seconds(1) + Time::milliseconds(20));
  EXPECT_EQ(rig.agents[2]->expected_send(t, 3),
            Time::seconds(4) + Time::milliseconds(40));
}

TEST(Dissemination, MissedRoundTimesOutAndRecovers) {
  DissemRig rig;
  rig.register_everywhere(task_1hz());
  // Kill the root after two rounds; downstream nodes must not hang.
  rig.sim.schedule_at(Time::from_seconds(2.5), [&] { rig.radios[0]->fail(); });
  rig.sim.run_until(Time::from_seconds(6.5));
  EXPECT_EQ(rig.agents[1]->stats().received, 2u);
  EXPECT_GE(rig.agents[1]->stats().missed_rounds, 3u);
  // The schedule kept advancing: next_epoch tracked the wall clock.
  EXPECT_EQ(rig.agents[1]->stats().received + rig.agents[1]->stats().missed_rounds,
            6u);
}

TEST(Dissemination, WithSafeSleepStillDeliversAndSleeps) {
  DisseminationParams params;
  params.level_slice = Time::milliseconds(20);
  DissemRig rig{true, params};
  rig.register_everywhere(task_1hz());
  rig.radios[3]->begin_measurement();
  rig.sim.run_until(Time::from_seconds(10.5));
  // Rounds at t = 1..10 s: ten of them.
  EXPECT_EQ(rig.agents[3]->stats().received, 10u);
  EXPECT_EQ(rig.agents[3]->stats().missed_rounds, 0u);
  // The leaf wakes ~once a second for a few ms.
  EXPECT_LT(rig.radios[3]->duty_cycle(), 0.1);
}

TEST(Dissemination, UnknownTaskIgnored) {
  DissemRig rig;
  net::DisseminationHeader h;
  h.task = 99;
  h.epoch = 0;
  rig.agents[1]->handle_packet(net::make_dissemination_packet(0, 1, h));
  EXPECT_EQ(rig.agents[1]->stats().received, 0u);
}

TEST(Dissemination, NonMemberDoesNotParticipate) {
  DissemRig rig;
  // A fresh agent on a node outside the tree (simulate via empty tree).
  routing::Tree empty{4};
  empty.set_root(0);
  DisseminationAgent outsider{rig.sim, *rig.macs[2], empty, 2};
  outsider.register_task(task_1hz());
  rig.sim.run_until(Time::seconds(3));
  EXPECT_EQ(outsider.stats().missed_rounds, 0u);
  EXPECT_EQ(outsider.stats().forwarded, 0u);
}

}  // namespace
}  // namespace essat::core
