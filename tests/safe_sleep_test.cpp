#include <gtest/gtest.h>

#include <memory>

#include "src/core/safe_sleep.h"
#include "src/net/channel.h"

namespace essat::core {
namespace {

using energy::RadioState;
using util::Time;

// Minimal stack: one node with a real radio and MAC on a 2-node channel.
struct SsRig {
  explicit SsRig(Time t_be = Time::from_milliseconds(2.5), bool enabled = true)
      : topo{net::Topology::line(2, 100.0, 125.0)}, channel{sim, topo} {
    energy::RadioParams rp;
    rp.t_off_on = t_be / 2;
    rp.t_on_off = t_be / 2;
    radio = std::make_unique<energy::Radio>(sim, rp);
    mac = std::make_unique<mac::CsmaMac>(sim, channel, *radio, 0, mac::MacParams{},
                                         util::Rng{1});
    ss = std::make_unique<SafeSleep>(sim, *radio, *mac,
                                     SafeSleepParams{t_be, enabled});
  }

  sim::Simulator sim;
  net::Topology topo;
  net::Channel channel;
  std::unique_ptr<energy::Radio> radio;
  std::unique_ptr<mac::CsmaMac> mac;
  std::unique_ptr<SafeSleep> ss;
};

TEST(SafeSleep, SleepsWhenNextExpectationIsFar) {
  SsRig rig;
  rig.ss->update_next_send(0, Time::seconds(10));
  EXPECT_EQ(rig.radio->state(), RadioState::kTurningOff);
  rig.sim.run_until(Time::seconds(1));
  EXPECT_EQ(rig.radio->state(), RadioState::kOff);
  EXPECT_EQ(rig.ss->sleeps_initiated(), 1u);
}

TEST(SafeSleep, WakesExactlyAtExpectation) {
  // "the node sleeps until t_wakeup - t_OFF->ON such that there is enough
  // time to wake up" — the radio must be ON at exactly t_wakeup.
  SsRig rig;
  rig.ss->update_next_send(0, Time::seconds(10));
  rig.sim.run_until(Time::seconds(10) - Time::nanoseconds(1));
  EXPECT_NE(rig.radio->state(), RadioState::kOn);
  rig.sim.run_until(Time::seconds(10));
  EXPECT_EQ(rig.radio->state(), RadioState::kOn);
}

TEST(SafeSleep, NoSleepWithinBreakEvenTime) {
  // t_sleep <= t_BE: "SS puts the node to sleep only if the node ... remains
  // free for longer than the break-even time".
  SsRig rig{Time::from_milliseconds(10)};
  rig.sim.run_until(Time::seconds(1));
  rig.ss->update_next_send(0, rig.sim.now() + Time::from_milliseconds(8));
  EXPECT_EQ(rig.radio->state(), RadioState::kOn);
  EXPECT_EQ(rig.ss->sleeps_skipped_short(), 1u);
  EXPECT_EQ(rig.ss->sleeps_initiated(), 0u);
}

TEST(SafeSleep, StaysAwakeWhileExpectationOverdue) {
  SsRig rig;
  rig.ss->update_next_receive(0, 1, Time::seconds(1));
  rig.sim.run_until(Time::seconds(1));          // wakes for the reception
  rig.sim.run_until(Time::seconds(5));          // report never arrives
  // The node keeps listening "from the time the data report is expected
  // until the data report arrives" (§4.1).
  EXPECT_EQ(rig.radio->state(), RadioState::kOn);
}

TEST(SafeSleep, WakeupIsMinAcrossQueriesAndChildren) {
  SsRig rig;
  rig.ss->update_next_send(0, Time::seconds(30));
  rig.ss->update_next_receive(0, 1, Time::seconds(20));
  rig.ss->update_next_receive(1, 1, Time::seconds(15));
  EXPECT_EQ(rig.ss->next_wakeup(), Time::seconds(15));
  rig.sim.run_until(Time::seconds(14));
  EXPECT_EQ(rig.radio->state(), RadioState::kOff);
  rig.sim.run_until(Time::seconds(15));
  EXPECT_EQ(rig.radio->state(), RadioState::kOn);
}

TEST(SafeSleep, EarlierExpectationWhileAsleepPullsWakeForward) {
  SsRig rig;
  rig.ss->update_next_send(0, Time::seconds(100));
  rig.sim.run_until(Time::seconds(1));
  ASSERT_EQ(rig.radio->state(), RadioState::kOff);
  // A newly registered query expects activity at t=5.
  rig.ss->update_next_send(1, Time::seconds(5));
  rig.sim.run_until(Time::seconds(5));
  EXPECT_EQ(rig.radio->state(), RadioState::kOn);
}

TEST(SafeSleep, SleepsForeverWithNoExpectations) {
  SsRig rig;
  rig.ss->update_next_send(0, Time::seconds(5));
  rig.sim.run_until(Time::seconds(5) + Time::milliseconds(1));
  ASSERT_EQ(rig.radio->state(), RadioState::kOn);
  rig.ss->erase_query(0);
  rig.sim.run_until(Time::seconds(20));
  EXPECT_EQ(rig.radio->state(), RadioState::kOff);
  EXPECT_EQ(rig.ss->next_wakeup(), Time::max());
}

TEST(SafeSleep, EraseChildDropsExpectation) {
  SsRig rig;
  rig.ss->update_next_receive(0, 1, Time::seconds(5));
  rig.ss->update_next_send(0, Time::seconds(50));
  rig.ss->erase_child(0, 1);
  EXPECT_EQ(rig.ss->next_wakeup(), Time::seconds(50));
}

TEST(SafeSleep, EraseQueryDropsAllItsChildren) {
  SsRig rig;
  rig.ss->update_next_receive(0, 1, Time::seconds(5));
  rig.ss->update_next_receive(0, 2, Time::seconds(6));
  rig.ss->update_next_receive(1, 1, Time::seconds(7));
  rig.ss->erase_query(0);
  EXPECT_EQ(rig.ss->next_wakeup(), Time::seconds(7));
}

TEST(SafeSleep, DisabledKeepsRadioOn) {
  SsRig rig{Time::from_milliseconds(2.5), /*enabled=*/false};
  rig.ss->update_next_send(0, Time::seconds(100));
  rig.sim.run_until(Time::seconds(10));
  EXPECT_EQ(rig.radio->state(), RadioState::kOn);  // SPAN backbone behavior
}

TEST(SafeSleep, StaysOnDuringSetupSlot) {
  // "During the setup slot, all nodes keep their radio on even if SS does
  // not expect any data reports" (§4.1).
  SsRig rig;
  rig.ss->set_setup_end(Time::seconds(5));
  rig.ss->update_next_send(0, Time::seconds(100));
  rig.sim.run_until(Time::seconds(4));
  EXPECT_EQ(rig.radio->state(), RadioState::kOn);
  rig.sim.run_until(Time::seconds(6));
  EXPECT_EQ(rig.radio->state(), RadioState::kOff);
}

TEST(SafeSleep, DoesNotSleepWhileMacBusy) {
  SsRig rig;
  // Queue a frame toward node 1 whose radio never answers — MAC stays busy
  // through its retries; SS must not power down mid-operation.
  net::DataHeader h;
  rig.mac->send(net::make_data_packet(0, 1, h));
  rig.ss->update_next_send(0, Time::seconds(100));
  EXPECT_EQ(rig.radio->state(), RadioState::kOn);
  rig.sim.run_until(Time::seconds(99));
  // After the MAC drained (send failed, no receiver), SS slept.
  EXPECT_EQ(rig.radio->state(), RadioState::kOff);
}

TEST(SafeSleep, ZeroBreakEvenSleepsThroughAnyGap) {
  SsRig rig{Time::zero()};
  rig.sim.run_until(Time::seconds(1));
  rig.ss->update_next_send(0, rig.sim.now() + Time::microseconds(500));
  // t_sleep > t_BE = 0: sleeps even for half a millisecond.
  EXPECT_EQ(rig.ss->sleeps_initiated(), 1u);
  rig.sim.run_until(rig.sim.now() + Time::milliseconds(1));
  EXPECT_EQ(rig.radio->state(), RadioState::kOn);
  ASSERT_EQ(rig.radio->sleep_intervals_s().size(), 1u);
  EXPECT_NEAR(rig.radio->sleep_intervals_s()[0], 500e-6, 1e-9);
}

TEST(SafeSleep, SupersededWakeupGoesBackToSleep) {
  SsRig rig;
  rig.ss->update_next_send(0, Time::seconds(10));
  // While asleep, the expectation moves out to t=14 (e.g. the query's
  // schedule advanced via a timeout path).
  rig.sim.run_until(Time::seconds(2));
  rig.ss->update_next_send(0, Time::seconds(14));
  rig.sim.run_until(Time::seconds(11));
  // Woke at 10 for the stale expectation, re-checked, and slept again.
  EXPECT_EQ(rig.radio->state(), RadioState::kOff);
  rig.sim.run_until(Time::seconds(14));
  EXPECT_EQ(rig.radio->state(), RadioState::kOn);
  EXPECT_EQ(rig.ss->sleeps_initiated(), 2u);
}

}  // namespace
}  // namespace essat::core
