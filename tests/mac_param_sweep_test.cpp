// Parameterized MAC sweeps: retry accounting, contention-window scaling and
// airtime arithmetic must hold for any parameter combination a user
// configures (the library exposes MacParams through ScenarioConfig).
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "src/mac/csma.h"
#include "src/net/channel.h"

namespace essat::mac {
namespace {

using util::Time;

class AttemptSweep : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(MaxAttempts, AttemptSweep, ::testing::Values(1, 2, 5, 8));

TEST_P(AttemptSweep, FailureUsesExactlyMaxAttempts) {
  sim::Simulator sim;
  net::Topology topo = net::Topology::line(2, 100.0, 125.0);
  net::Channel channel{sim, topo};
  MacParams params;
  params.max_attempts = GetParam();
  energy::Radio r0{sim, energy::RadioParams{}};
  energy::Radio r1{sim, energy::RadioParams{}};
  CsmaMac m0{sim, channel, r0, 0, params, util::Rng{1}};
  CsmaMac m1{sim, channel, r1, 1, params, util::Rng{2}};
  r1.turn_off();
  sim.run_until(Time::milliseconds(10));

  bool failed = false;
  net::DataHeader h;
  m0.send(net::make_data_packet(0, 1, h), [&](bool ok) { failed = !ok; });
  sim.run_until(Time::seconds(5));
  EXPECT_TRUE(failed);
  EXPECT_EQ(m0.stats().transmissions, static_cast<std::uint64_t>(GetParam()));
  EXPECT_EQ(m0.stats().retries, static_cast<std::uint64_t>(GetParam() - 1));
}

class BandwidthSweep : public ::testing::TestWithParam<double> {};

INSTANTIATE_TEST_SUITE_P(Bps, BandwidthSweep,
                         ::testing::Values(250e3, 1e6, 2e6, 11e6));

TEST_P(BandwidthSweep, TxDurationScalesInversely) {
  MacParams p;
  p.bandwidth_bps = GetParam();
  const Time body = p.tx_duration(52) - p.phy_overhead;
  // Durations are rounded to whole nanoseconds.
  EXPECT_NEAR(body.to_seconds(), 52.0 * 8.0 / GetParam(), 1e-9);
  EXPECT_GT(p.ack_timeout(), p.ack_duration());
}

class CwSweep : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(InitialCw, CwSweep, ::testing::Values(15, 31, 127, 255));

TEST_P(CwSweep, SingleSenderLatencyBoundedByWindow) {
  sim::Simulator sim;
  net::Topology topo = net::Topology::line(2, 100.0, 125.0);
  net::Channel channel{sim, topo};
  MacParams params;
  params.initial_data_cw = GetParam();
  energy::Radio r0{sim, energy::RadioParams{}};
  energy::Radio r1{sim, energy::RadioParams{}};
  CsmaMac m0{sim, channel, r0, 0, params, util::Rng{3}};
  CsmaMac m1{sim, channel, r1, 1, params, util::Rng{4}};
  Time delivered = Time::zero();
  m1.set_rx_handler([&](const net::Packet&) { delivered = sim.now(); });
  net::DataHeader h;
  m0.send(net::make_data_packet(0, 1, h));
  sim.run_until(Time::seconds(1));
  // Idle channel: DIFS + at most cw slots + frame airtime.
  const Time bound = params.difs + params.slot * GetParam() +
                     params.tx_duration(52) + Time::microseconds(10);
  EXPECT_GT(delivered, Time::zero());
  EXPECT_LE(delivered, bound);
}

// Contender-count sweep: delivery must stay lossless as the domain fills.
class ContenderSweep : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Senders, ContenderSweep, ::testing::Values(2, 4, 8, 12));

TEST_P(ContenderSweep, SimultaneousSendersAllDeliver) {
  const int n = GetParam();
  sim::Simulator sim;
  // Everyone within one collision domain.
  std::vector<net::Position> pos;
  for (int i = 0; i <= n; ++i) {
    pos.push_back({static_cast<double>(i % 4) * 20.0,
                   static_cast<double>(i / 4) * 20.0});
  }
  net::Topology topo{pos, 125.0};
  net::Channel channel{sim, topo};
  std::vector<std::unique_ptr<energy::Radio>> radios;
  std::vector<std::unique_ptr<CsmaMac>> macs;
  for (int i = 0; i <= n; ++i) {
    radios.push_back(std::make_unique<energy::Radio>(sim, energy::RadioParams{}));
    macs.push_back(std::make_unique<CsmaMac>(sim, channel, *radios.back(),
                                             static_cast<net::NodeId>(i),
                                             MacParams{}, util::Rng{static_cast<std::uint64_t>(17 + i)}));
  }
  int received = 0;
  macs[0]->set_rx_handler([&](const net::Packet&) { ++received; });
  for (int i = 1; i <= n; ++i) {
    net::DataHeader h;
    macs[static_cast<std::size_t>(i)]->send(net::make_data_packet(i, 0, h));
  }
  sim.run_until(Time::seconds(10));
  EXPECT_EQ(received, n);
}

}  // namespace
}  // namespace essat::mac
