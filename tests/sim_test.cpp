#include <gtest/gtest.h>

#include <vector>

#include "src/sim/event_queue.h"
#include "src/sim/simulator.h"
#include "src/sim/timer.h"
#include "src/util/rng.h"

namespace essat::sim {
namespace {

using util::Time;

TEST(EventQueue, OrdersByTime) {
  EventQueue q;
  std::vector<int> fired;
  q.push(Time::seconds(3), [&] { fired.push_back(3); });
  q.push(Time::seconds(1), [&] { fired.push_back(1); });
  q.push(Time::seconds(2), [&] { fired.push_back(2); });
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameTimestampFifo) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    q.push(Time::seconds(1), [&fired, i] { fired.push_back(i); });
  }
  while (!q.empty()) q.pop().second();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, CancelSuppressesEvent) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.push(Time::seconds(1), [&] { fired = true; });
  q.push(Time::seconds(2), [] {});
  q.cancel(id);
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.next_time(), Time::seconds(2));
  while (!q.empty()) q.pop().second();
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelUnknownIdIsNoop) {
  EventQueue q;
  q.push(Time::seconds(1), [] {});
  q.cancel(999999);
  q.cancel(kInvalidEventId);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, EmptyAfterAllCancelled) {
  EventQueue q;
  const EventId a = q.push(Time::seconds(1), [] {});
  const EventId b = q.push(Time::seconds(2), [] {});
  q.cancel(a);
  q.cancel(b);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

// The slot-indexed queue recycles slots through a free list with a
// generation counter: a handle from a fired/cancelled event must never
// cancel the event that later reuses its slot.
TEST(EventQueue, StaleHandleCannotCancelRecycledSlot) {
  EventQueue q;
  const EventId a = q.push(Time::seconds(1), [] {});
  q.pop().second();            // slot of `a` is released...
  bool fired = false;
  q.push(Time::seconds(2), [&] { fired = true; });  // ...and likely reused
  q.cancel(a);                 // stale handle: must be a no-op
  EXPECT_EQ(q.size(), 1u);
  while (!q.empty()) q.pop().second();
  EXPECT_TRUE(fired);
}

TEST(EventQueue, CancelChurnKeepsOrderAndCount) {
  EventQueue q;
  std::vector<EventId> ids;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(q.push(Time::milliseconds((i * 37) % 500), [] {}));
  }
  for (std::size_t i = 0; i < ids.size(); i += 2) q.cancel(ids[i]);
  EXPECT_EQ(q.size(), 500u);
  Time last = Time::min();
  std::size_t popped = 0;
  while (!q.empty()) {
    auto [t, cb] = q.pop();
    EXPECT_GE(t, last);
    last = t;
    ++popped;
  }
  EXPECT_EQ(popped, 500u);
  // Double-cancel and cancel-after-fire are no-ops.
  for (EventId id : ids) q.cancel(id);
  EXPECT_EQ(q.size(), 0u);
}

// rearm() must behave exactly like cancel+push with the same callback: the
// retimed event keeps its id, fires at the new time, and takes a fresh
// same-timestamp FIFO position.
TEST(EventQueue, RearmRetimesWithoutNewId) {
  EventQueue q;
  std::vector<int> fired;
  const EventId id = q.push(Time::seconds(1), [&] { fired.push_back(1); });
  EXPECT_TRUE(q.rearm(id, Time::seconds(3)));
  q.push(Time::seconds(2), [&] { fired.push_back(2); });
  EXPECT_EQ(q.size(), 2u);
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(fired, (std::vector<int>{2, 1}));
}

TEST(EventQueue, RearmKeepsSameTimestampFifoOrder) {
  // a is re-armed to the same time as b AFTER b was pushed: like
  // cancel+push, a must now fire after b.
  EventQueue q;
  std::vector<int> fired;
  const EventId a = q.push(Time::seconds(1), [&] { fired.push_back(1); });
  q.push(Time::seconds(1), [&] { fired.push_back(2); });
  EXPECT_TRUE(q.rearm(a, Time::seconds(1)));
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(fired, (std::vector<int>{2, 1}));
}

TEST(EventQueue, RearmedEventCanStillBeCancelled) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.push(Time::seconds(1), [&] { fired = true; });
  EXPECT_TRUE(q.rearm(id, Time::seconds(5)));
  q.cancel(id);  // the original id stays valid across rearms
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, RearmStaleIdIsRejected) {
  EventQueue q;
  const EventId id = q.push(Time::seconds(1), [] {});
  q.pop().second();
  EXPECT_FALSE(q.rearm(id, Time::seconds(2)));  // already fired
  EXPECT_FALSE(q.rearm(kInvalidEventId, Time::seconds(2)));
  const EventId c = q.push(Time::seconds(1), [] {});
  q.cancel(c);
  EXPECT_FALSE(q.rearm(c, Time::seconds(2)));  // cancelled
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, ManyRearmsLeaveNoResidue) {
  EventQueue q;
  int fired = 0;
  const EventId id = q.push(Time::seconds(1), [&] { ++fired; });
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(q.rearm(id, Time::milliseconds(900 + i)));
  }
  EXPECT_EQ(q.size(), 1u);
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, PeakLiveTracksHighWaterMark) {
  EventQueue q;
  for (int i = 0; i < 10; ++i) q.push(Time::seconds(i + 1), [] {});
  while (!q.empty()) q.pop().second();
  q.push(Time::seconds(1), [] {});
  EXPECT_EQ(q.peak_live(), 10u);
}

TEST(EventQueue, ReserveDoesNotDisturbBehavior) {
  EventQueue q;
  q.reserve(1024);
  std::vector<int> fired;
  for (int i = 0; i < 100; ++i) {
    q.push(Time::milliseconds((i * 37) % 50), [&fired, i] { fired.push_back(i); });
  }
  std::size_t popped = 0;
  Time last = Time::min();
  while (!q.empty()) {
    auto [t, cb] = q.pop();
    EXPECT_GE(t, last);
    last = t;
    cb();
    ++popped;
  }
  EXPECT_EQ(popped, 100u);
}

// Randomized A/B against a reference model (sorted (time, seq) list with
// the same cancel/rearm semantics): the calendar-wheel queue must pop the
// exact same sequence for arbitrary interleavings of push, cancel, rearm,
// and pop across bucket and epoch boundaries.
TEST(EventQueue, MatchesReferenceModelOnRandomOps) {
  struct RefEvent {
    std::int64_t time_ns;
    std::uint64_t seq;
    int tag;
  };
  util::Rng rng{1234};
  for (int trial = 0; trial < 20; ++trial) {
    EventQueue q;
    std::vector<RefEvent> ref;  // live reference events
    std::vector<std::pair<EventId, int>> handles;
    std::uint64_t ref_seq = 0;
    std::vector<int> got, want;
    int next_tag = 0;
    std::int64_t now_ns = 0;

    auto ref_pop_min = [&]() -> int {
      std::size_t best = 0;
      for (std::size_t i = 1; i < ref.size(); ++i) {
        if (ref[i].time_ns < ref[best].time_ns ||
            (ref[i].time_ns == ref[best].time_ns &&
             ref[i].seq < ref[best].seq)) {
          best = i;
        }
      }
      const RefEvent e = ref[best];
      ref.erase(ref.begin() + static_cast<std::ptrdiff_t>(best));
      return e.tag;
    };

    for (int op = 0; op < 400; ++op) {
      const int kind = static_cast<int>(rng.uniform_int(0, 9));
      if (kind <= 4 || ref.empty()) {
        // Push at a time spread across buckets and epochs (0..200 ms),
        // never in the past.
        const std::int64_t t =
            now_ns + rng.uniform_int(0, 200'000'000);
        const int tag = next_tag++;
        const EventId id =
            q.push(Time::nanoseconds(t), [tag, &got] { got.push_back(tag); });
        ref.push_back(RefEvent{t, ref_seq++, tag});
        handles.emplace_back(id, tag);
      } else if (kind <= 6) {
        // Cancel a random (possibly stale) handle.
        const auto& [id, tag] =
            handles[static_cast<std::size_t>(rng.uniform_int(
                0, static_cast<std::int64_t>(handles.size()) - 1))];
        q.cancel(id);
        for (std::size_t i = 0; i < ref.size(); ++i) {
          if (ref[i].tag == tag) {
            ref.erase(ref.begin() + static_cast<std::ptrdiff_t>(i));
            break;
          }
        }
      } else if (kind == 7) {
        // Rearm a random handle; mirrors cancel+push with a fresh seq.
        const auto& [id, tag] =
            handles[static_cast<std::size_t>(rng.uniform_int(
                0, static_cast<std::int64_t>(handles.size()) - 1))];
        const std::int64_t t =
            now_ns + rng.uniform_int(0, 200'000'000);
        if (q.rearm(id, Time::nanoseconds(t))) {
          for (auto& e : ref) {
            if (e.tag == tag) {
              e.time_ns = t;
              e.seq = ref_seq;
              break;
            }
          }
          ++ref_seq;
        }
      } else {
        // Pop one event; virtual time advances to it.
        ASSERT_FALSE(q.empty());
        auto [t, cb] = q.pop();
        now_ns = t.ns();
        cb();
        want.push_back(ref_pop_min());
      }
    }
    while (!q.empty()) {
      q.pop().second();
      want.push_back(ref_pop_min());
    }
    EXPECT_TRUE(ref.empty());
    EXPECT_EQ(got, want) << "trial " << trial;
  }
}

TEST(Simulator, NowAdvancesWithEvents) {
  Simulator sim;
  EXPECT_EQ(sim.now(), Time::zero());
  std::vector<Time> seen;
  sim.schedule_at(Time::seconds(5), [&] { seen.push_back(sim.now()); });
  sim.schedule_at(Time::seconds(2), [&] { seen.push_back(sim.now()); });
  sim.run();
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], Time::seconds(2));
  EXPECT_EQ(seen[1], Time::seconds(5));
  EXPECT_EQ(sim.now(), Time::seconds(5));
}

TEST(Simulator, ScheduleInIsRelative) {
  Simulator sim;
  Time fired_at = Time::zero();
  sim.schedule_at(Time::seconds(1), [&] {
    sim.schedule_in(Time::seconds(2), [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired_at, Time::seconds(3));
}

TEST(Simulator, PastSchedulesClampToNow) {
  Simulator sim;
  Time fired_at = Time::min();
  sim.schedule_at(Time::seconds(5), [&] {
    sim.schedule_at(Time::seconds(1), [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired_at, Time::seconds(5));
}

TEST(Simulator, RunUntilStopsAtBoundaryInclusive) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(Time::seconds(1), [&] { ++fired; });
  sim.schedule_at(Time::seconds(2), [&] { ++fired; });
  sim.schedule_at(Time::seconds(3), [&] { ++fired; });
  sim.run_until(Time::seconds(2));
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), Time::seconds(2));
  EXPECT_EQ(sim.pending_events(), 1u);
}

TEST(Simulator, RunUntilAdvancesClockWhenIdle) {
  Simulator sim;
  sim.run_until(Time::seconds(10));
  EXPECT_EQ(sim.now(), Time::seconds(10));
}

TEST(Simulator, StopHaltsRun) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(Time::seconds(1), [&] {
    ++fired;
    sim.stop();
  });
  sim.schedule_at(Time::seconds(2), [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.pending_events(), 1u);
}

TEST(Simulator, CancelScheduledEvent) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule_at(Time::seconds(1), [&] { fired = true; });
  sim.cancel(id);
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, ExecutedEventsCounter) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.schedule_at(Time::seconds(i + 1), [] {});
  sim.run();
  EXPECT_EQ(sim.executed_events(), 7u);
}

TEST(Simulator, StressManyEventsKeepOrder) {
  Simulator sim;
  Time last = Time::min();
  bool ordered = true;
  for (int i = 0; i < 10000; ++i) {
    const Time t = Time::milliseconds((i * 7919) % 10000);
    sim.schedule_at(t, [&, t] {
      if (sim.now() < last) ordered = false;
      last = sim.now();
    });
  }
  sim.run();
  EXPECT_TRUE(ordered);
  EXPECT_EQ(sim.executed_events(), 10000u);
}

TEST(Timer, FiresAtArmedTime) {
  Simulator sim;
  Timer timer{sim};
  Time fired_at = Time::min();
  timer.arm_at(Time::seconds(2), [&] { fired_at = sim.now(); });
  EXPECT_TRUE(timer.armed());
  EXPECT_EQ(timer.fire_time(), Time::seconds(2));
  sim.run();
  EXPECT_EQ(fired_at, Time::seconds(2));
  EXPECT_FALSE(timer.armed());
}

TEST(Timer, RearmCancelsPrevious) {
  Simulator sim;
  Timer timer{sim};
  int fired = 0;
  timer.arm_at(Time::seconds(1), [&] { fired = 1; });
  timer.arm_at(Time::seconds(2), [&] { fired = 2; });
  sim.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.executed_events(), 1u);
}

TEST(Timer, CancelPreventsFire) {
  Simulator sim;
  Timer timer{sim};
  bool fired = false;
  timer.arm_at(Time::seconds(1), [&] { fired = true; });
  timer.cancel();
  EXPECT_FALSE(timer.armed());
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Timer, DestructionCancels) {
  Simulator sim;
  bool fired = false;
  {
    Timer timer{sim};
    timer.arm_at(Time::seconds(1), [&] { fired = true; });
  }
  sim.run();
  EXPECT_FALSE(fired);
}

// Arming with a stale (past) fire time clamps to now(): the callback runs
// at the current virtual time, never "before" events already executed. In
// debug builds the same call additionally trips an assert to surface the
// buggy caller (see the death test below).
TEST(Timer, PastArmClampsToNow) {
  Simulator sim;
  Timer timer{sim};
  Time fired_at = Time::min();
  sim.schedule_at(Time::seconds(5), [&] {
    // Arming exactly at now() is legal in every build mode.
    timer.arm_at(sim.now(), [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired_at, Time::seconds(5));
}

TEST(TimerDeathTest, ArmStrictlyInPastAssertsInDebug) {
  EXPECT_DEBUG_DEATH(
      {
        Simulator sim;
        Timer timer{sim};
        sim.schedule_at(Time::seconds(5), [] {});
        sim.run();
        timer.arm_at(Time::seconds(1), [] {});  // 4 s in the past
        sim.run();
      },
      "Timer armed in the past");
}

TEST(Simulator, RearmClampsToNow) {
  // A Timer re-armed from inside an event with a stale target must fire at
  // now(), not violate the clock's monotonicity.
  Simulator sim;
  Timer timer{sim};
  Time fired_at = Time::min();
  timer.arm_at(Time::seconds(10), [&] { fired_at = sim.now(); });
  sim.schedule_at(Time::seconds(3), [&] {
    // Retime the pending arm to "now" (the earliest legal target).
    timer.arm_at(sim.now(), [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired_at, Time::seconds(3));
}

TEST(Timer, ArmInsideCallback) {
  Simulator sim;
  Timer timer{sim};
  std::vector<Time> fires;
  timer.arm_in(Time::seconds(1), [&] {
    fires.push_back(sim.now());
    timer.arm_in(Time::seconds(1), [&] { fires.push_back(sim.now()); });
  });
  sim.run();
  ASSERT_EQ(fires.size(), 2u);
  EXPECT_EQ(fires[1], Time::seconds(2));
}

}  // namespace
}  // namespace essat::sim
