#include <gtest/gtest.h>

#include <vector>

#include "src/sim/event_queue.h"
#include "src/sim/simulator.h"
#include "src/sim/timer.h"

namespace essat::sim {
namespace {

using util::Time;

TEST(EventQueue, OrdersByTime) {
  EventQueue q;
  std::vector<int> fired;
  q.push(Time::seconds(3), [&] { fired.push_back(3); });
  q.push(Time::seconds(1), [&] { fired.push_back(1); });
  q.push(Time::seconds(2), [&] { fired.push_back(2); });
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameTimestampFifo) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    q.push(Time::seconds(1), [&fired, i] { fired.push_back(i); });
  }
  while (!q.empty()) q.pop().second();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, CancelSuppressesEvent) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.push(Time::seconds(1), [&] { fired = true; });
  q.push(Time::seconds(2), [] {});
  q.cancel(id);
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.next_time(), Time::seconds(2));
  while (!q.empty()) q.pop().second();
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelUnknownIdIsNoop) {
  EventQueue q;
  q.push(Time::seconds(1), [] {});
  q.cancel(999999);
  q.cancel(kInvalidEventId);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, EmptyAfterAllCancelled) {
  EventQueue q;
  const EventId a = q.push(Time::seconds(1), [] {});
  const EventId b = q.push(Time::seconds(2), [] {});
  q.cancel(a);
  q.cancel(b);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

// The slot-indexed queue recycles slots through a free list with a
// generation counter: a handle from a fired/cancelled event must never
// cancel the event that later reuses its slot.
TEST(EventQueue, StaleHandleCannotCancelRecycledSlot) {
  EventQueue q;
  const EventId a = q.push(Time::seconds(1), [] {});
  q.pop().second();            // slot of `a` is released...
  bool fired = false;
  q.push(Time::seconds(2), [&] { fired = true; });  // ...and likely reused
  q.cancel(a);                 // stale handle: must be a no-op
  EXPECT_EQ(q.size(), 1u);
  while (!q.empty()) q.pop().second();
  EXPECT_TRUE(fired);
}

TEST(EventQueue, CancelChurnKeepsOrderAndCount) {
  EventQueue q;
  std::vector<EventId> ids;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(q.push(Time::milliseconds((i * 37) % 500), [] {}));
  }
  for (std::size_t i = 0; i < ids.size(); i += 2) q.cancel(ids[i]);
  EXPECT_EQ(q.size(), 500u);
  Time last = Time::min();
  std::size_t popped = 0;
  while (!q.empty()) {
    auto [t, cb] = q.pop();
    EXPECT_GE(t, last);
    last = t;
    ++popped;
  }
  EXPECT_EQ(popped, 500u);
  // Double-cancel and cancel-after-fire are no-ops.
  for (EventId id : ids) q.cancel(id);
  EXPECT_EQ(q.size(), 0u);
}

TEST(Simulator, NowAdvancesWithEvents) {
  Simulator sim;
  EXPECT_EQ(sim.now(), Time::zero());
  std::vector<Time> seen;
  sim.schedule_at(Time::seconds(5), [&] { seen.push_back(sim.now()); });
  sim.schedule_at(Time::seconds(2), [&] { seen.push_back(sim.now()); });
  sim.run();
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], Time::seconds(2));
  EXPECT_EQ(seen[1], Time::seconds(5));
  EXPECT_EQ(sim.now(), Time::seconds(5));
}

TEST(Simulator, ScheduleInIsRelative) {
  Simulator sim;
  Time fired_at = Time::zero();
  sim.schedule_at(Time::seconds(1), [&] {
    sim.schedule_in(Time::seconds(2), [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired_at, Time::seconds(3));
}

TEST(Simulator, PastSchedulesClampToNow) {
  Simulator sim;
  Time fired_at = Time::min();
  sim.schedule_at(Time::seconds(5), [&] {
    sim.schedule_at(Time::seconds(1), [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired_at, Time::seconds(5));
}

TEST(Simulator, RunUntilStopsAtBoundaryInclusive) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(Time::seconds(1), [&] { ++fired; });
  sim.schedule_at(Time::seconds(2), [&] { ++fired; });
  sim.schedule_at(Time::seconds(3), [&] { ++fired; });
  sim.run_until(Time::seconds(2));
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), Time::seconds(2));
  EXPECT_EQ(sim.pending_events(), 1u);
}

TEST(Simulator, RunUntilAdvancesClockWhenIdle) {
  Simulator sim;
  sim.run_until(Time::seconds(10));
  EXPECT_EQ(sim.now(), Time::seconds(10));
}

TEST(Simulator, StopHaltsRun) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(Time::seconds(1), [&] {
    ++fired;
    sim.stop();
  });
  sim.schedule_at(Time::seconds(2), [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.pending_events(), 1u);
}

TEST(Simulator, CancelScheduledEvent) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule_at(Time::seconds(1), [&] { fired = true; });
  sim.cancel(id);
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, ExecutedEventsCounter) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.schedule_at(Time::seconds(i + 1), [] {});
  sim.run();
  EXPECT_EQ(sim.executed_events(), 7u);
}

TEST(Simulator, StressManyEventsKeepOrder) {
  Simulator sim;
  Time last = Time::min();
  bool ordered = true;
  for (int i = 0; i < 10000; ++i) {
    const Time t = Time::milliseconds((i * 7919) % 10000);
    sim.schedule_at(t, [&, t] {
      if (sim.now() < last) ordered = false;
      last = sim.now();
    });
  }
  sim.run();
  EXPECT_TRUE(ordered);
  EXPECT_EQ(sim.executed_events(), 10000u);
}

TEST(Timer, FiresAtArmedTime) {
  Simulator sim;
  Timer timer{sim};
  Time fired_at = Time::min();
  timer.arm_at(Time::seconds(2), [&] { fired_at = sim.now(); });
  EXPECT_TRUE(timer.armed());
  EXPECT_EQ(timer.fire_time(), Time::seconds(2));
  sim.run();
  EXPECT_EQ(fired_at, Time::seconds(2));
  EXPECT_FALSE(timer.armed());
}

TEST(Timer, RearmCancelsPrevious) {
  Simulator sim;
  Timer timer{sim};
  int fired = 0;
  timer.arm_at(Time::seconds(1), [&] { fired = 1; });
  timer.arm_at(Time::seconds(2), [&] { fired = 2; });
  sim.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.executed_events(), 1u);
}

TEST(Timer, CancelPreventsFire) {
  Simulator sim;
  Timer timer{sim};
  bool fired = false;
  timer.arm_at(Time::seconds(1), [&] { fired = true; });
  timer.cancel();
  EXPECT_FALSE(timer.armed());
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Timer, DestructionCancels) {
  Simulator sim;
  bool fired = false;
  {
    Timer timer{sim};
    timer.arm_at(Time::seconds(1), [&] { fired = true; });
  }
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Timer, ArmInsideCallback) {
  Simulator sim;
  Timer timer{sim};
  std::vector<Time> fires;
  timer.arm_in(Time::seconds(1), [&] {
    fires.push_back(sim.now());
    timer.arm_in(Time::seconds(1), [&] { fires.push_back(sim.now()); });
  });
  sim.run();
  ASSERT_EQ(fires.size(), 2u);
  EXPECT_EQ(fires[1], Time::seconds(2));
}

}  // namespace
}  // namespace essat::sim
