// Acceptance checks for the fault-injection axis (src/fault):
//  * scheduled churn kills and restarts nodes, with downtime and death
//    counts surfacing in RunMetrics;
//  * stochastic churn, battery depletion and clock drift are deterministic
//    (same config -> bit-identical RunMetrics) and respect the root
//    exemption;
//  * fault schedules are byte-identical across ESSAT_JOBS values (the
//    engine pre-draws everything from per-node forked streams);
//  * SINR capture with the threshold at +inf reproduces the legacy
//    no-capture channel byte for byte;
//  * sinks emit the fault columns as zeros when faults are disabled.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "src/exp/sinks.h"
#include "src/exp/sweep.h"
#include "src/exp/sweep_runner.h"
#include "src/fault/fault_spec.h"
#include "src/harness/scenario.h"
#include "src/snap/metrics_codec.h"

namespace essat {
namespace {

using util::Time;

harness::ScenarioConfig small_base() {
  harness::ScenarioConfig c;
  c.deployment.num_nodes = 12;
  c.deployment.area_m = 250.0;
  c.deployment.range_m = 125.0;
  c.deployment.max_tree_dist_m = 250.0;
  c.workload.base_rate_hz = 1.0;
  c.workload.query_start_window = Time::seconds(1);
  c.setup_duration = Time::seconds(2);   // setup ends at t=2s
  c.measure_duration = Time::seconds(4); // window [5s, 9s)
  c.latency_grace = Time::seconds(1);
  c.seed = 7;
  return c;
}

std::vector<std::uint8_t> fingerprint(const harness::RunMetrics& m) {
  return snap::run_metrics_to_bytes(m);
}

// ------------------------------------------------------------ FaultSpec

TEST(FaultSpec, DefaultIsDisabledAndLabelledNone) {
  const fault::FaultSpec spec;
  EXPECT_FALSE(spec.enabled());
  EXPECT_FALSE(spec.churn.enabled());
  EXPECT_FALSE(spec.battery.enabled());
  EXPECT_FALSE(spec.drift.enabled());
  EXPECT_EQ(spec.label(), "none");
}

TEST(FaultSpec, LabelNamesEachEnabledAxis) {
  fault::FaultSpec spec;
  spec.churn.scheduled.push_back({net::NodeId{3}, Time::seconds(1), Time::seconds(2)});
  EXPECT_EQ(spec.label(), "churn-sched1");
  spec.churn.node_fraction = 0.1;
  spec.battery.budget_mj = 500.0;
  spec.drift.skew_sigma_ppm = 50.0;
  EXPECT_EQ(spec.label(), "churn-sched1+churn0.1+batt500mJ+drift50ppm");
}

// ------------------------------------------------------------ churn

TEST(FaultChurn, ScheduledOutageCountsDeathAndDowntime) {
  harness::ScenarioConfig c = small_base();
  // Crash node 3 at setup_end + 2.5s = 4.5s, restart at 6.5s: the outage
  // overlaps the [5s, 9s) measurement window for exactly 1.5 node-seconds.
  c.faults.churn.scheduled.push_back(
      {net::NodeId{3}, Time::from_milliseconds(2500), Time::seconds(2)});
  const harness::RunMetrics m = harness::run_scenario(c);
  EXPECT_EQ(m.node_deaths, 1u);
  EXPECT_DOUBLE_EQ(m.downtime_s, 1.5);
  EXPECT_GT(m.delivery_ratio, 0.0);
}

TEST(FaultChurn, PermanentDeathAccruesDowntimeToWindowEnd) {
  harness::ScenarioConfig c = small_base();
  // down_for <= 0 is a permanent death before the window opens: the outage
  // is clipped to the full 4 s measurement window.
  c.faults.churn.scheduled.push_back(
      {net::NodeId{3}, Time::from_milliseconds(500), Time::zero()});
  const harness::RunMetrics m = harness::run_scenario(c);
  EXPECT_EQ(m.node_deaths, 1u);
  EXPECT_DOUBLE_EQ(m.downtime_s, 4.0);
  EXPECT_GT(m.delivery_ratio, 0.0);  // survivors keep reporting
}

TEST(FaultChurn, RootEntriesAreIgnored) {
  harness::ScenarioConfig c = small_base();
  // Schedule a permanent death for every node: the root (the sink is
  // mains-powered) must be exempted, so exactly 11 of 12 die.
  for (int n = 0; n < c.deployment.num_nodes; ++n) {
    c.faults.churn.scheduled.push_back(
        {net::NodeId{n}, Time::from_milliseconds(500), Time::zero()});
  }
  const harness::RunMetrics m = harness::run_scenario(c);
  EXPECT_EQ(m.node_deaths, 11u);
  EXPECT_DOUBLE_EQ(m.downtime_s, 44.0);
}

TEST(FaultChurn, StochasticChurnIsDeterministicAndSparesRoot) {
  harness::ScenarioConfig c = small_base();
  c.faults.churn.node_fraction = 1.0;  // every non-root node crashes once
  c.faults.churn.mean_downtime_s = 1.0;
  const harness::RunMetrics a = harness::run_scenario(c);
  const harness::RunMetrics b = harness::run_scenario(c);
  EXPECT_EQ(fingerprint(a), fingerprint(b));
  EXPECT_EQ(a.node_deaths, 11u);  // 12 nodes minus the root
  EXPECT_GT(a.downtime_s, 0.0);
}

// ------------------------------------------------------------ battery

TEST(FaultBattery, TinyBudgetKillsEveryNonRootNodePermanently) {
  harness::ScenarioConfig c = small_base();
  // 1 mJ dies at the very first poll (idle listen is ~24 mW): every
  // non-root node is dead before the window opens, and battery death is
  // permanent, so downtime is 11 nodes x the full 4 s window.
  c.faults.battery.budget_mj = 1.0;
  const harness::RunMetrics m = harness::run_scenario(c);
  EXPECT_EQ(m.node_deaths, 11u);
  EXPECT_DOUBLE_EQ(m.downtime_s, 44.0);
  const harness::RunMetrics again = harness::run_scenario(c);
  EXPECT_EQ(fingerprint(m), fingerprint(again));
}

// ------------------------------------------------------------ drift

TEST(FaultDrift, DriftedClocksStillDeliverDeterministically) {
  harness::ScenarioConfig c = small_base();
  c.faults.drift.skew_sigma_ppm = 50.0;
  c.faults.drift.max_offset_ms = 2.0;
  const harness::RunMetrics a = harness::run_scenario(c);
  const harness::RunMetrics b = harness::run_scenario(c);
  EXPECT_EQ(fingerprint(a), fingerprint(b));
  EXPECT_EQ(a.node_deaths, 0u);
  EXPECT_DOUBLE_EQ(a.downtime_s, 0.0);
  EXPECT_GT(a.delivery_ratio, 0.0);
}

// ------------------------------------------------------------ SINR

TEST(FaultSinr, InfiniteCaptureThresholdMatchesNoCaptureByteForByte) {
  // The documented limit: capture_threshold_db -> +inf with min_snr_db at
  // its -inf default means every overlap collides and no frame is below
  // the noise floor — byte-identical to capture_distance_ratio <= 0.
  harness::ScenarioConfig legacy = small_base();
  legacy.workload.base_rate_hz = 4.0;  // enough traffic to collide
  legacy.channel_params.capture_distance_ratio = 0.0;
  harness::ScenarioConfig sinr = legacy;
  sinr.channel_params.sinr.enabled = true;
  sinr.channel_params.sinr.capture_threshold_db = 1.0e12;
  EXPECT_EQ(fingerprint(harness::run_scenario(legacy)),
            fingerprint(harness::run_scenario(sinr)));
}

// ------------------------------------------------------------ sweeps

std::string run_churn_sweep_csv(int jobs) {
  fault::FaultSpec none;
  fault::FaultSpec churn;
  churn.churn.node_fraction = 0.3;
  churn.churn.mean_downtime_s = 1.0;

  exp::SweepSpec spec(small_base());
  spec.runs(2)
      .axis_protocol({harness::Protocol::kDtsSs, harness::Protocol::kNtsSs})
      .axis_faults({none, churn});

  std::ostringstream os;
  exp::CsvSink sink(os);
  exp::SweepRunner::Options opts;
  opts.jobs = jobs;
  exp::SweepRunner(opts).run(spec, {&sink});
  return os.str();
}

TEST(FaultSweep, ChurnScheduleByteIdenticalAcrossJobs) {
  const std::string serial = run_churn_sweep_csv(1);
  const std::string parallel = run_churn_sweep_csv(8);
  EXPECT_EQ(serial, parallel);
  EXPECT_NE(serial.find("churn0.3"), std::string::npos);
}

TEST(FaultSweep, SinkEmitsFaultColumnsAsZerosWhenDisabled) {
  exp::SweepSpec spec(small_base());  // no fault axis, faults disabled
  spec.runs(1);
  std::ostringstream os;
  exp::CsvSink sink(os);
  exp::SweepRunner::Options opts;
  opts.jobs = 1;
  exp::SweepRunner(opts).run(spec, {&sink});

  const std::string csv = os.str();
  const auto split = [](const std::string& s, char sep) {
    std::vector<std::string> out;
    std::string cur;
    for (char ch : s) {
      if (ch == sep) {
        out.push_back(cur);
        cur.clear();
      } else {
        cur += ch;
      }
    }
    out.push_back(cur);
    return out;
  };
  const auto lines = split(csv, '\n');
  ASSERT_GE(lines.size(), 2u);
  const auto header = split(lines[0], ',');
  const auto row = split(lines[1], ',');
  ASSERT_EQ(header.size(), row.size());
  bool saw_deaths = false, saw_downtime = false, saw_delivery = false;
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == "node_deaths") {
      saw_deaths = true;
      EXPECT_EQ(std::strtod(row[i].c_str(), nullptr), 0.0);
    } else if (header[i] == "downtime_s") {
      saw_downtime = true;
      EXPECT_EQ(std::strtod(row[i].c_str(), nullptr), 0.0);
    } else if (header[i] == "delivery_during_fault") {
      saw_delivery = true;
      EXPECT_EQ(std::strtod(row[i].c_str(), nullptr), 0.0);
    }
  }
  EXPECT_TRUE(saw_deaths);
  EXPECT_TRUE(saw_downtime);
  EXPECT_TRUE(saw_delivery);
}

}  // namespace
}  // namespace essat
