// Parameterized property sweeps over seeds, rates, and protocols: the
// paper's analytical claims (Eq. 1-3, Safe Sleep's no-penalty guarantee,
// DTS monotonicity) checked as invariants rather than point examples.
#include <gtest/gtest.h>

#include <memory>

#include "src/core/dts.h"
#include "src/core/sts.h"
#include "src/harness/scenario.h"
#include "src/net/channel.h"

namespace essat {
namespace {

using harness::Protocol;
using harness::RunMetrics;
using harness::ScenarioConfig;
using util::Time;

// ---------------------------------------------------------------------------
// Scenario-level properties, swept over seeds.

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep, ::testing::Values(1, 2, 3, 4, 5));

ScenarioConfig sweep_config(Protocol p, std::uint64_t seed) {
  ScenarioConfig c;
  c.protocol = p;
  c.deployment.num_nodes = 50;
  c.workload.base_rate_hz = 1.5;
  c.measure_duration = Time::seconds(25);
  c.seed = seed;
  return c;
}

TEST_P(SeedSweep, SafeSleepNeverBreaksDelivery) {
  // The "safe" guarantee: sleeping must not lose data. Across seeds, ESSAT
  // delivery stays near-perfect and MAC failures negligible.
  for (Protocol p : {Protocol::kNtsSs, Protocol::kStsSs, Protocol::kDtsSs}) {
    const RunMetrics m = run_scenario(sweep_config(p, GetParam()));
    EXPECT_GT(m.delivery_ratio, 0.9)
        << harness::protocol_name(p) << " seed " << GetParam();
  }
}

TEST_P(SeedSweep, ShapedDutyNeverExceedsUnshaped) {
  const RunMetrics nts = run_scenario(sweep_config(Protocol::kNtsSs, GetParam()));
  const RunMetrics dts = run_scenario(sweep_config(Protocol::kDtsSs, GetParam()));
  EXPECT_LT(dts.avg_duty_cycle, nts.avg_duty_cycle * 1.05) << GetParam();
}

TEST_P(SeedSweep, DutyCyclesAreFractions) {
  const RunMetrics m = run_scenario(sweep_config(Protocol::kStsSs, GetParam()));
  for (const auto& d : m.per_node) {
    EXPECT_GE(d.duty_cycle, 0.0);
    EXPECT_LE(d.duty_cycle, 1.0);
  }
}

// ---------------------------------------------------------------------------
// Rate sweep: duty cycle grows with the base rate (Fig. 3's trend).

class RateSweep : public ::testing::TestWithParam<double> {};

INSTANTIATE_TEST_SUITE_P(Rates, RateSweep, ::testing::Values(0.5, 1.0, 2.0));

TEST_P(RateSweep, DtsOverheadStaysBelowOneBit) {
  ScenarioConfig c = sweep_config(Protocol::kDtsSs, 3);
  c.workload.base_rate_hz = GetParam();
  // Phase shifts cluster in the convergence transient; measure long enough
  // that steady state dominates, as the paper's 200 s runs do.
  c.measure_duration = Time::seconds(120);
  const RunMetrics m = run_scenario(c);
  EXPECT_LT(m.phase_update_bits_per_report, 1.0) << GetParam() << " Hz";
}

TEST_P(RateSweep, LatencyWellBelowBaselineBuffering) {
  ScenarioConfig c = sweep_config(Protocol::kDtsSs, 3);
  c.workload.base_rate_hz = GetParam();
  const RunMetrics m = run_scenario(c);
  // DTS-SS latency stays below one base period plus the shaper's slack —
  // far below SYNC/PSM multi-interval buffering at any tested rate.
  EXPECT_LT(m.avg_latency_s, 1.0 / GetParam() + 0.5);
}

// ---------------------------------------------------------------------------
// STS analytical properties (Eq. 2/3) on exact trees, swept over deadlines.

class StsDeadlineSweep : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(DeadlinesMs, StsDeadlineSweep,
                         ::testing::Values(100, 200, 400, 800));

TEST_P(StsDeadlineSweep, ScheduleIsRankMonotone) {
  // On any tree, STS send times strictly follow rank order within an epoch:
  // a node transmits after every node of lower rank.
  const auto topo = net::Topology::line(6, 100.0, 125.0);
  const auto tree = routing::build_bfs_tree(topo, 0, 10000.0);
  query::Query q;
  q.id = 0;
  q.period = Time::seconds(1);
  q.phase = Time::seconds(5);
  core::StsShaper shaper{
      core::StsParams{.deadline = Time::milliseconds(GetParam())}};
  Time prev = Time::min();
  for (net::NodeId n = 5; n >= 1; --n) {  // ranks 0..4 in this chain
    core::StsShaper s{core::StsParams{.deadline = Time::milliseconds(GetParam())}};
    s.set_context(query::ShaperContext{&tree, n, nullptr});
    const Time send = s.expected_send(q, 0);
    EXPECT_GT(send, prev);
    prev = send;
  }
}

TEST_P(StsDeadlineSweep, RootReceptionWithinDeadline) {
  // Eq. 2 with l >= T_agg: query latency ~ M * l = D. The root's last
  // child send time is at most φ + l*(M-1) < φ + D.
  const auto topo = net::Topology::line(6, 100.0, 125.0);
  const auto tree = routing::build_bfs_tree(topo, 0, 10000.0);
  query::Query q;
  q.id = 0;
  q.period = Time::seconds(1);
  q.phase = Time::seconds(5);
  core::StsShaper s{core::StsParams{.deadline = Time::milliseconds(GetParam())}};
  s.set_context(query::ShaperContext{&tree, 0, nullptr});
  EXPECT_LT(s.expected_receive(q, 0, 1) - q.phase, Time::milliseconds(GetParam()));
}

// ---------------------------------------------------------------------------
// DTS phase algebra, swept over random lateness sequences.

class DtsLatenessSweep : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(LatenessSeeds, DtsLatenessSweep,
                         ::testing::Values(11, 22, 33, 44));

TEST_P(DtsLatenessSweep, ExpectedSendNeverDecreases) {
  // Phase shifts only postpone: s(k+1) >= s(k) + ... is monotone in k
  // whatever the lateness pattern.
  const auto topo = net::Topology::line(2, 100.0, 125.0);
  const auto tree = routing::build_bfs_tree(topo, 0, 10000.0);
  core::DtsShaper shaper;
  shaper.set_context(query::ShaperContext{&tree, 1, nullptr});
  query::Query q;
  q.id = 0;
  q.period = Time::seconds(1);
  q.phase = Time::zero();
  shaper.register_query(q);
  util::Rng rng{GetParam()};
  Time prev_send = Time::min();
  for (std::int64_t k = 0; k < 50; ++k) {
    const Time ready =
        q.epoch_start(k) + Time::from_milliseconds(rng.uniform(0.0, 400.0));
    const auto plan = shaper.plan_send(q, k, ready);
    EXPECT_GT(plan.send_at, prev_send);
    EXPECT_GE(plan.send_at, shaper.expected_send(q, k));
    shaper.on_report_sent(q, k, plan.send_at);
    prev_send = plan.send_at;
  }
}

TEST_P(DtsLatenessSweep, AdvertisementExactlyWhenShifted) {
  const auto topo = net::Topology::line(2, 100.0, 125.0);
  const auto tree = routing::build_bfs_tree(topo, 0, 10000.0);
  core::DtsShaper shaper;
  shaper.set_context(query::ShaperContext{&tree, 1, nullptr});
  query::Query q;
  q.id = 0;
  q.period = Time::seconds(1);
  q.phase = Time::zero();
  shaper.register_query(q);
  util::Rng rng{GetParam()};
  for (std::int64_t k = 0; k < 50; ++k) {
    const bool late = rng.bernoulli(0.3);
    const Time s_k = shaper.expected_send(q, k);
    const Time ready = late ? s_k + Time::milliseconds(50) : s_k - Time::milliseconds(50);
    const auto plan = shaper.plan_send(q, k, ready);
    EXPECT_EQ(plan.phase_update.has_value(), late) << "epoch " << k;
    shaper.on_report_sent(q, k, plan.send_at);
  }
}

// ---------------------------------------------------------------------------
// Break-even-time sweep (Fig. 9's mechanism): a larger T_BE can only raise
// the duty cycle — short gaps stop being worth sleeping through.

class TbeSweep : public ::testing::TestWithParam<double> {};

INSTANTIATE_TEST_SUITE_P(TbeMs, TbeSweep, ::testing::Values(0.0, 2.5, 10.0));

TEST_P(TbeSweep, DutyBoundedByAlwaysOn) {
  ScenarioConfig c = sweep_config(Protocol::kDtsSs, 7);
  c.t_be = Time::from_milliseconds(GetParam());
  const RunMetrics m = run_scenario(c);
  EXPECT_GT(m.avg_duty_cycle, 0.0);
  EXPECT_LT(m.avg_duty_cycle, 1.0);
}

TEST(TbeMonotonicity, LargerTbeNeverSavesEnergy) {
  ScenarioConfig c = sweep_config(Protocol::kDtsSs, 9);
  c.t_be = Time::zero();
  const double duty0 = run_scenario(c).avg_duty_cycle;
  c.t_be = Time::from_milliseconds(10.0);
  const double duty10 = run_scenario(c).avg_duty_cycle;
  c.t_be = Time::from_milliseconds(40.0);
  const double duty40 = run_scenario(c).avg_duty_cycle;
  EXPECT_LE(duty0, duty10 * 1.02);
  EXPECT_LE(duty10, duty40 * 1.02);
}

}  // namespace
}  // namespace essat
