#include <gtest/gtest.h>

#include <cmath>

#include "src/util/stats.h"

namespace essat::util {
namespace {

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.ci_halfwidth(), 0.0);
}

TEST(RunningStat, KnownValues) {
  RunningStat s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 denominator: 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, SingleValue) {
  RunningStat s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(RunningStat, MergeMatchesSequential) {
  RunningStat all, a, b;
  for (int i = 0; i < 50; ++i) {
    const double v = std::sin(i) * 10.0;
    all.add(v);
    (i % 2 == 0 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStat, MergeWithEmpty) {
  RunningStat a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  RunningStat b;
  b.merge(a);
  EXPECT_DOUBLE_EQ(b.mean(), mean);
  EXPECT_EQ(b.count(), 2u);
}

TEST(TCritical, KnownEntries) {
  EXPECT_NEAR(t_critical(2, 0.90), 6.314, 1e-3);   // df = 1
  EXPECT_NEAR(t_critical(6, 0.95), 2.571, 1e-3);   // df = 5
  EXPECT_NEAR(t_critical(5, 0.90), 2.132, 1e-3);   // df = 4 (paper's 5 runs)
  EXPECT_NEAR(t_critical(31, 0.99), 2.750, 1e-3);  // df = 30
  EXPECT_NEAR(t_critical(1000, 0.95), 1.960, 1e-3);
  EXPECT_NEAR(t_critical(1000, 0.90), 1.645, 1e-3);
  EXPECT_DOUBLE_EQ(t_critical(1, 0.90), 0.0);
}

TEST(CiHalfwidth, FiveRuns) {
  RunningStat s;
  for (double v : {10.0, 11.0, 9.0, 10.5, 9.5}) s.add(v);
  const double expected = 2.132 * s.stddev() / std::sqrt(5.0);
  EXPECT_NEAR(s.ci_halfwidth(0.90), expected, 1e-9);
}

TEST(Percentile, EmptyAndSingle) {
  EXPECT_DOUBLE_EQ(percentile({}, 50.0), 0.0);
  EXPECT_DOUBLE_EQ(percentile({7.0}, 95.0), 7.0);
}

TEST(Percentile, Interpolates) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 2.5);
  EXPECT_DOUBLE_EQ(percentile(v, 25.0), 1.75);
}

TEST(Percentile, UnsortedInput) {
  EXPECT_DOUBLE_EQ(percentile({4.0, 1.0, 3.0, 2.0}, 50.0), 2.5);
}

TEST(Percentile, ClampsOutOfRange) {
  const std::vector<double> v{1.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile(v, -5.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 150.0), 2.0);
}

}  // namespace
}  // namespace essat::util
