// Acceptance check for the pluggable-stack refactor: a protocol x
// deployment grid flows through SweepSpec/SweepRunner with no per-protocol
// or per-topology branching anywhere — the harness resolves both axes from
// their declarative specs (StackRegistry keys, DeploymentSpec kinds).
#include <gtest/gtest.h>

#include "src/exp/sweep.h"
#include "src/exp/sweep_runner.h"

namespace essat::exp {
namespace {

using util::Time;

harness::ScenarioConfig small_base() {
  harness::ScenarioConfig c;
  c.deployment.num_nodes = 12;
  c.deployment.area_m = 250.0;
  c.deployment.range_m = 125.0;
  c.deployment.max_tree_dist_m = 250.0;
  c.workload.base_rate_hz = 1.0;
  c.workload.query_start_window = Time::seconds(1);
  c.setup_duration = Time::seconds(2);
  c.measure_duration = Time::seconds(4);
  c.latency_grace = Time::seconds(1);
  c.seed = 7;
  return c;
}

TEST(SweepMatrix, ProtocolTimesTopologyGridRunsEndToEnd) {
  SweepSpec spec(small_base());
  spec.runs(1)
      .axis_protocol({harness::Protocol::kDtsSs, harness::Protocol::kPsm})
      .axis_topology({net::TopologyKind::kUniform, net::TopologyKind::kGrid,
                      net::TopologyKind::kClustered});
  ASSERT_EQ(spec.num_points(), 6u);

  SweepRunner::Options opts;
  opts.jobs = 2;
  const auto results = SweepRunner(opts).run(spec);
  ASSERT_EQ(results.size(), 6u);

  for (const auto& r : results) {
    SCOPED_TRACE(r.point.labels[0] + " / " + r.point.labels[1]);
    EXPECT_GT(r.metrics.duty_cycle.mean(), 0.0);
    EXPECT_GT(r.metrics.last_run.tree_members, 3);
    EXPECT_GT(r.metrics.last_run.reports_sent, 0u);
  }
  // Row-major labels: protocol is the slow axis, topology the fast one.
  EXPECT_EQ(results[0].point.labels,
            (std::vector<std::string>{"DTS-SS", "uniform"}));
  EXPECT_EQ(results[1].point.labels,
            (std::vector<std::string>{"DTS-SS", "grid"}));
  EXPECT_EQ(results[5].point.labels,
            (std::vector<std::string>{"PSM", "clustered"}));
  // The deployment axis actually changed the simulated world (duty cycle
  // is continuous, so distinct geometries cannot coincide).
  EXPECT_NE(results[0].metrics.last_run.avg_duty_cycle,
            results[1].metrics.last_run.avg_duty_cycle);
}

// Custom DeploymentSpec axis: full specs (not just kinds) are sweepable.
TEST(SweepMatrix, CustomDeploymentAxisAppliesWholeSpec) {
  net::DeploymentSpec corridor;
  corridor.kind = net::TopologyKind::kCorridor;
  corridor.num_nodes = 20;
  corridor.area_m = 600.0;
  corridor.corridor_width_m = 50.0;
  corridor.max_tree_dist_m = 600.0;
  net::DeploymentSpec uniform;
  uniform.num_nodes = 12;
  uniform.area_m = 250.0;
  uniform.max_tree_dist_m = 250.0;

  SweepSpec spec(small_base());
  spec.runs(1).axis_topology({uniform, corridor});
  const auto points = spec.points();
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].labels[0], "uniform");
  EXPECT_EQ(points[1].labels[0], "corridor");
  EXPECT_EQ(points[1].config.deployment.num_nodes, 20);
  EXPECT_DOUBLE_EQ(points[1].config.deployment.area_m, 600.0);
}

}  // namespace
}  // namespace essat::exp
