// Acceptance check for the pluggable-stack refactor: a protocol x
// deployment grid flows through SweepSpec/SweepRunner with no per-protocol
// or per-topology branching anywhere — the harness resolves both axes from
// their declarative specs (StackRegistry keys, DeploymentSpec kinds).
#include <gtest/gtest.h>

#include "src/exp/sweep.h"
#include "src/exp/sweep_runner.h"
#include "src/net/link_model.h"

namespace essat::exp {
namespace {

using util::Time;

harness::ScenarioConfig small_base() {
  harness::ScenarioConfig c;
  c.deployment.num_nodes = 12;
  c.deployment.area_m = 250.0;
  c.deployment.range_m = 125.0;
  c.deployment.max_tree_dist_m = 250.0;
  c.workload.base_rate_hz = 1.0;
  c.workload.query_start_window = Time::seconds(1);
  c.setup_duration = Time::seconds(2);
  c.measure_duration = Time::seconds(4);
  c.latency_grace = Time::seconds(1);
  c.seed = 7;
  return c;
}

TEST(SweepMatrix, ProtocolTimesTopologyGridRunsEndToEnd) {
  SweepSpec spec(small_base());
  spec.runs(1)
      .axis_protocol({harness::Protocol::kDtsSs, harness::Protocol::kPsm})
      .axis_topology({net::TopologyKind::kUniform, net::TopologyKind::kGrid,
                      net::TopologyKind::kClustered});
  ASSERT_EQ(spec.num_points(), 6u);

  SweepRunner::Options opts;
  opts.jobs = 2;
  const auto results = SweepRunner(opts).run(spec);
  ASSERT_EQ(results.size(), 6u);

  for (const auto& r : results) {
    SCOPED_TRACE(r.point.labels[0] + " / " + r.point.labels[1]);
    EXPECT_GT(r.metrics.duty_cycle.mean(), 0.0);
    EXPECT_GT(r.metrics.last_run.tree_members, 3);
    EXPECT_GT(r.metrics.last_run.reports_sent, 0u);
  }
  // Row-major labels: protocol is the slow axis, topology the fast one.
  EXPECT_EQ(results[0].point.labels,
            (std::vector<std::string>{"DTS-SS", "uniform"}));
  EXPECT_EQ(results[1].point.labels,
            (std::vector<std::string>{"DTS-SS", "grid"}));
  EXPECT_EQ(results[5].point.labels,
            (std::vector<std::string>{"PSM", "clustered"}));
  // The deployment axis actually changed the simulated world (duty cycle
  // is continuous, so distinct geometries cannot coincide).
  EXPECT_NE(results[0].metrics.last_run.avg_duty_cycle,
            results[1].metrics.last_run.avg_duty_cycle);
}

// Acceptance for the LinkModel layer: with the UnitDisc model installed
// (hook layer active on every arrival) the full protocol x topology x rate
// scenario-matrix grid is byte-identical to the legacy no-model channel.
TEST(ChannelModelMatrix, UnitDiscIdenticalToLegacyChannelOnFullGrid) {
  auto run_grid = [](net::LinkModelKind kind) {
    harness::ScenarioConfig base = small_base();
    base.channel_model.kind = kind;
    SweepSpec spec(base);
    spec.runs(1)
        .axis_protocol({harness::Protocol::kDtsSs, harness::Protocol::kPsm})
        .axis_topology({net::TopologyKind::kUniform, net::TopologyKind::kGrid,
                        net::TopologyKind::kClustered,
                        net::TopologyKind::kCorridor})
        .axis_rate({1.0, 2.0});
    SweepRunner::Options opts;
    opts.jobs = 4;
    return SweepRunner(opts).run(spec);
  };
  const auto legacy = run_grid(net::LinkModelKind::kNone);
  const auto unit = run_grid(net::LinkModelKind::kUnitDisc);
  ASSERT_EQ(legacy.size(), 16u);
  ASSERT_EQ(unit.size(), 16u);
  for (std::size_t p = 0; p < legacy.size(); ++p) {
    SCOPED_TRACE(legacy[p].point.labels[0] + " / " + legacy[p].point.labels[1] +
                 " / " + legacy[p].point.labels[2]);
    const harness::RunMetrics& a = legacy[p].metrics.last_run;
    const harness::RunMetrics& b = unit[p].metrics.last_run;
    EXPECT_EQ(a.avg_duty_cycle, b.avg_duty_cycle);  // exact, not NEAR
    EXPECT_EQ(a.avg_latency_s, b.avg_latency_s);
    EXPECT_EQ(a.p95_latency_s, b.p95_latency_s);
    EXPECT_EQ(a.max_latency_s, b.max_latency_s);
    EXPECT_EQ(a.delivery_ratio, b.delivery_ratio);
    EXPECT_EQ(a.epochs_measured, b.epochs_measured);
    EXPECT_EQ(a.reports_sent, b.reports_sent);
    EXPECT_EQ(a.mac_transmissions, b.mac_transmissions);
    EXPECT_EQ(a.mac_send_failures, b.mac_send_failures);
    EXPECT_EQ(a.channel_collisions, b.channel_collisions);
    EXPECT_EQ(a.channel_delivered, b.channel_delivered);
    EXPECT_EQ(a.phase_updates, b.phase_updates);
    EXPECT_EQ(a.channel_dropped_by_model, 0u);
    EXPECT_EQ(b.channel_dropped_by_model, 0u);
  }
}

// Loss determinism: the same seed and LinkModel produce bit-identical
// delivered()/dropped_by_model() whether the sweep runs on 1 worker or 8.
TEST(ChannelModelMatrix, LossyChannelsDeterministicAcrossJobCounts) {
  auto run_grid = [](int jobs) {
    std::vector<net::ChannelModelSpec> models(3);
    models[0].kind = net::LinkModelKind::kLogNormalShadowing;
    models[1].kind = net::LinkModelKind::kGilbertElliott;
    models[1].gilbert_base = net::LinkModelKind::kLogNormalShadowing;
    models[2].kind = net::LinkModelKind::kUnitDisc;
    models[2].prr_scale = 0.9;
    SweepSpec spec(small_base());
    spec.runs(2)
        .axis_protocol({harness::Protocol::kDtsSs, harness::Protocol::kPsm})
        .axis_channel(models);
    SweepRunner::Options opts;
    opts.jobs = jobs;
    return SweepRunner(opts).run(spec);
  };
  const auto serial = run_grid(1);
  const auto parallel = run_grid(8);
  ASSERT_EQ(serial.size(), 6u);
  ASSERT_EQ(parallel.size(), 6u);
  EXPECT_EQ(serial[0].point.labels,
            (std::vector<std::string>{"DTS-SS", "shadowing"}));
  EXPECT_EQ(serial[2].point.labels,
            (std::vector<std::string>{"DTS-SS", "unit-disc@0.9"}));
  for (std::size_t p = 0; p < serial.size(); ++p) {
    SCOPED_TRACE(serial[p].point.labels[0] + " / " + serial[p].point.labels[1]);
    const harness::RunMetrics& a = serial[p].metrics.last_run;
    const harness::RunMetrics& b = parallel[p].metrics.last_run;
    EXPECT_EQ(a.channel_delivered, b.channel_delivered);
    EXPECT_EQ(a.channel_dropped_by_model, b.channel_dropped_by_model);
    EXPECT_EQ(a.avg_duty_cycle, b.avg_duty_cycle);
    EXPECT_EQ(a.avg_latency_s, b.avg_latency_s);
    EXPECT_EQ(serial[p].metrics.channel_dropped.mean(),
              parallel[p].metrics.channel_dropped.mean());
    // The lossy models actually lost frames, and the stack survived.
    EXPECT_GT(a.channel_dropped_by_model, 0u);
    EXPECT_GT(a.reports_sent, 0u);
  }
}

// Custom DeploymentSpec axis: full specs (not just kinds) are sweepable.
TEST(SweepMatrix, CustomDeploymentAxisAppliesWholeSpec) {
  net::DeploymentSpec corridor;
  corridor.kind = net::TopologyKind::kCorridor;
  corridor.num_nodes = 20;
  corridor.area_m = 600.0;
  corridor.corridor_width_m = 50.0;
  corridor.max_tree_dist_m = 600.0;
  net::DeploymentSpec uniform;
  uniform.num_nodes = 12;
  uniform.area_m = 250.0;
  uniform.max_tree_dist_m = 250.0;

  SweepSpec spec(small_base());
  spec.runs(1).axis_topology({uniform, corridor});
  const auto points = spec.points();
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].labels[0], "uniform");
  EXPECT_EQ(points[1].labels[0], "corridor");
  EXPECT_EQ(points[1].config.deployment.num_nodes, 20);
  EXPECT_DOUBLE_EQ(points[1].config.deployment.area_m, 600.0);
}

}  // namespace
}  // namespace essat::exp
