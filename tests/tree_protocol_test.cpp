#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <vector>

#include "src/net/channel.h"
#include "src/routing/tree_protocol.h"

namespace essat::routing {
namespace {

using util::Time;

// Runs the distributed flooding setup on a given topology and returns the
// assembled tree.
struct SetupRig {
  SetupRig(net::Topology t, net::NodeId root, TreeSetupParams params = {})
      : topo{std::move(t)}, channel{sim, topo},
        protocol{sim, topo, root, params, util::Rng{42}} {
    for (std::size_t i = 0; i < topo.num_nodes(); ++i) {
      radios.push_back(std::make_unique<energy::Radio>(sim, energy::RadioParams{}));
      macs.push_back(std::make_unique<mac::CsmaMac>(sim, channel, *radios.back(),
                                                    static_cast<net::NodeId>(i),
                                                    mac::MacParams{}, util::Rng{7 + i}));
      protocol.attach_mac(static_cast<net::NodeId>(i), macs.back().get());
      macs.back()->set_rx_handler([this, i](const net::Packet& p) {
        protocol.handle_packet(static_cast<net::NodeId>(i), p);
      });
    }
  }

  Tree run() {
    std::optional<Tree> result;
    protocol.start([&](Tree t) { result = std::move(t); });
    sim.run_until(Time::seconds(10));
    return std::move(result).value();
  }

  sim::Simulator sim;
  net::Topology topo;
  net::Channel channel;
  TreeSetupProtocol protocol;
  std::vector<std::unique_ptr<energy::Radio>> radios;
  std::vector<std::unique_ptr<mac::CsmaMac>> macs;
};

TEST(TreeSetupProtocol, BuildsChainTree) {
  SetupRig rig{net::Topology::line(5, 100.0, 125.0), 0,
               TreeSetupParams{.max_dist_from_root = 10000.0}};
  const Tree t = rig.run();
  EXPECT_EQ(t.root(), 0);
  EXPECT_EQ(t.member_count(), 5u);
  for (net::NodeId n = 1; n < 5; ++n) {
    EXPECT_EQ(t.parent(n), n - 1);
    EXPECT_EQ(t.level(n), n);
  }
  EXPECT_EQ(t.max_rank(), 4);
}

TEST(TreeSetupProtocol, MinHopLevelsOnRandomTopology) {
  util::Rng rng{3};
  auto topo = net::Topology::uniform_random(40, 400.0, 125.0, rng);
  if (!topo.connected()) GTEST_SKIP() << "disconnected sample";
  const net::NodeId root = topo.nearest({200, 200});
  SetupRig rig{topo, root, TreeSetupParams{.max_dist_from_root = 10000.0}};
  const Tree protocol_tree = rig.run();
  const Tree bfs = build_bfs_tree(rig.topo, root, 10000.0);
  EXPECT_EQ(protocol_tree.member_count(), bfs.member_count());
  // Flooding yields min-hop levels, matching BFS ("selects the node with
  // the lowest level as its parent").
  for (net::NodeId n : bfs.members()) {
    EXPECT_EQ(protocol_tree.level(n), bfs.level(n)) << "node " << n;
  }
}

TEST(TreeSetupProtocol, RespectsDistanceLimit) {
  SetupRig rig{net::Topology::line(6, 100.0, 125.0), 0,
               TreeSetupParams{.max_dist_from_root = 300.0}};
  const Tree t = rig.run();
  EXPECT_TRUE(t.is_member(3));
  EXPECT_FALSE(t.is_member(4));  // 400 m from the root
  EXPECT_FALSE(t.is_member(5));
}

TEST(TreeSetupProtocol, JoinsReachParents) {
  SetupRig rig{net::Topology::line(4, 100.0, 125.0), 0,
               TreeSetupParams{.max_dist_from_root = 10000.0}};
  rig.run();
  // Every non-root member unicasts one JOIN.
  EXPECT_EQ(rig.protocol.joins_received(), 3u);
}

TEST(TreeSetupProtocol, ParentChoicesExposedForInspection) {
  SetupRig rig{net::Topology::line(3, 100.0, 125.0), 0,
               TreeSetupParams{.max_dist_from_root = 10000.0}};
  rig.run();
  EXPECT_EQ(rig.protocol.chosen_parent(1), 0);
  EXPECT_EQ(rig.protocol.chosen_level(2), 2);
}

}  // namespace
}  // namespace essat::routing
