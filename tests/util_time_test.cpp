#include <gtest/gtest.h>

#include "src/util/time.h"

namespace essat::util {
namespace {

using namespace time_literals;

TEST(Time, DefaultIsZero) {
  EXPECT_EQ(Time{}.ns(), 0);
  EXPECT_TRUE(Time{}.is_zero());
}

TEST(Time, NamedConstructors) {
  EXPECT_EQ(Time::nanoseconds(7).ns(), 7);
  EXPECT_EQ(Time::microseconds(3).ns(), 3'000);
  EXPECT_EQ(Time::milliseconds(2).ns(), 2'000'000);
  EXPECT_EQ(Time::seconds(1).ns(), 1'000'000'000);
}

TEST(Time, FromSecondsRoundsToNearestNanosecond) {
  EXPECT_EQ(Time::from_seconds(1.5).ns(), 1'500'000'000);
  EXPECT_EQ(Time::from_seconds(1e-9).ns(), 1);
  EXPECT_EQ(Time::from_seconds(0.49e-9).ns(), 0);
  EXPECT_EQ(Time::from_seconds(-1.0).ns(), -1'000'000'000);
}

TEST(Time, FromMilliseconds) {
  EXPECT_EQ(Time::from_milliseconds(2.5).ns(), 2'500'000);
}

TEST(Time, ToSecondsRoundTrip) {
  const Time t = Time::from_seconds(123.456789);
  EXPECT_NEAR(t.to_seconds(), 123.456789, 1e-9);
  EXPECT_NEAR(t.to_milliseconds(), 123456.789, 1e-6);
}

TEST(Time, Arithmetic) {
  const Time a = Time::seconds(3);
  const Time b = Time::seconds(1);
  EXPECT_EQ((a + b).ns(), 4'000'000'000);
  EXPECT_EQ((a - b).ns(), 2'000'000'000);
  EXPECT_EQ((-b).ns(), -1'000'000'000);
  EXPECT_EQ((b * 5).ns(), 5'000'000'000);
  EXPECT_EQ((5 * b).ns(), 5'000'000'000);
  EXPECT_EQ((a / 3).ns(), 1'000'000'000);
}

TEST(Time, ScalarMultiplyDouble) {
  EXPECT_EQ((Time::seconds(2) * 0.25).ns(), 500'000'000);
}

TEST(Time, DurationRatio) {
  EXPECT_DOUBLE_EQ(Time::seconds(1) / Time::seconds(4), 0.25);
}

TEST(Time, CompoundAssignment) {
  Time t = Time::seconds(1);
  t += Time::seconds(2);
  EXPECT_EQ(t, Time::seconds(3));
  t -= Time::seconds(4);
  EXPECT_EQ(t, -Time::seconds(1));
  EXPECT_TRUE(t.is_negative());
}

TEST(Time, Comparisons) {
  const Time a = Time::milliseconds(1);
  const Time b = Time::milliseconds(2);
  EXPECT_LT(a, b);
  EXPECT_LE(a, a);
  EXPECT_GT(b, a);
  EXPECT_GE(b, b);
  EXPECT_NE(a, b);
  EXPECT_EQ(a, Time::microseconds(1000));
}

TEST(Time, MinMaxSentinels) {
  EXPECT_LT(Time::min(), Time::seconds(-1'000'000));
  EXPECT_GT(Time::max(), Time::seconds(1'000'000));
}

TEST(Time, Literals) {
  EXPECT_EQ(2_sec, Time::seconds(2));
  EXPECT_EQ(1.5_sec, Time::from_seconds(1.5));
  EXPECT_EQ(20_ms, Time::milliseconds(20));
  EXPECT_EQ(2.5_ms, Time::from_milliseconds(2.5));
  EXPECT_EQ(50_us, Time::microseconds(50));
  EXPECT_EQ(7_ns, Time::nanoseconds(7));
}

TEST(Time, ToStringPicksUnit) {
  EXPECT_EQ(Time::zero().to_string(), "0s");
  EXPECT_EQ(Time::seconds(2).to_string(), "2s");
  EXPECT_EQ(Time::milliseconds(5).to_string(), "5ms");
  EXPECT_EQ(Time::microseconds(12).to_string(), "12us");
}

}  // namespace
}  // namespace essat::util
