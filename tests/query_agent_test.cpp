#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "src/core/dts.h"
#include "src/core/nts.h"
#include "src/core/safe_sleep.h"
#include "src/net/channel.h"
#include "src/query/query_agent.h"

namespace essat::query {
namespace {

using util::Time;

// Full mini-stack on a 4-node chain 0(root) - 1 - 2 - 3(leaf): real radios,
// MACs, channel; a pluggable shaper per node; no Safe Sleep by default so
// the agent's behavior is observed in isolation.
struct AgentRig {
  enum class Shaper { kNts, kDts };

  explicit AgentRig(Shaper kind = Shaper::kNts, bool with_safe_sleep = false)
      : topo{net::Topology::line(4, 100.0, 125.0)},
        tree{routing::build_bfs_tree(topo, 0, 10000.0)},
        channel{sim, topo} {
    for (std::size_t i = 0; i < 4; ++i) {
      radios.push_back(std::make_unique<energy::Radio>(sim, energy::RadioParams{}));
      macs.push_back(std::make_unique<mac::CsmaMac>(sim, channel, *radios.back(),
                                                    static_cast<net::NodeId>(i),
                                                    mac::MacParams{}, util::Rng{50 + i}));
      if (kind == Shaper::kNts) {
        shapers.push_back(std::make_unique<core::NtsShaper>());
      } else {
        shapers.push_back(std::make_unique<core::DtsShaper>());
      }
      if (with_safe_sleep) {
        sleepers.push_back(std::make_unique<core::SafeSleep>(
            sim, *radios.back(), *macs.back(), core::SafeSleepParams{}));
      } else {
        sleepers.push_back(nullptr);
      }
      shapers.back()->set_context(ShaperContext{
          &tree, static_cast<net::NodeId>(i),
          sleepers.back() ? sleepers.back().get() : nullptr});
      agents.push_back(std::make_unique<QueryAgent>(
          sim, *macs.back(), tree, static_cast<net::NodeId>(i), *shapers.back(),
          QueryAgentParams{.t_comp = Time::milliseconds(2)}));
      macs.back()->set_rx_handler(
          [this, i](const net::Packet& p) { agents[i]->handle_packet(p); });
    }
    agents[0]->set_root_arrival_hook(
        [this](const Query& q, std::int64_t k, Time t, int c) {
          arrivals.push_back({q.id, k, t, c});
        });
  }

  void register_everywhere(const Query& q) {
    for (auto& a : agents) a->register_query(q);
  }

  struct Arrival {
    net::QueryId query;
    std::int64_t epoch;
    Time at;
    int contributions;
  };

  sim::Simulator sim;
  net::Topology topo;
  routing::Tree tree;
  net::Channel channel;
  std::vector<std::unique_ptr<energy::Radio>> radios;
  std::vector<std::unique_ptr<mac::CsmaMac>> macs;
  std::vector<std::unique_ptr<TrafficShaper>> shapers;
  std::vector<std::unique_ptr<core::SafeSleep>> sleepers;
  std::vector<std::unique_ptr<QueryAgent>> agents;
  std::vector<Arrival> arrivals;
};

Query one_second_query(Time phase = Time::seconds(1)) {
  Query q;
  q.id = 0;
  q.period = Time::seconds(1);
  q.phase = phase;
  return q;
}

TEST(QueryAgent, EndToEndAggregationReachesRoot) {
  AgentRig rig;
  rig.register_everywhere(one_second_query());
  rig.sim.run_until(Time::seconds(5));
  ASSERT_GE(rig.arrivals.size(), 3u);
  // Each root arrival is one aggregate covering all three non-root members.
  for (const auto& a : rig.arrivals) {
    EXPECT_EQ(a.contributions, 3);
  }
  // Epochs in order, no gaps at the front.
  EXPECT_EQ(rig.arrivals[0].epoch, 0);
  EXPECT_EQ(rig.arrivals[1].epoch, 1);
}

TEST(QueryAgent, LeafGeneratesEveryPeriod) {
  AgentRig rig;
  rig.register_everywhere(one_second_query());
  rig.sim.run_until(Time::from_seconds(6.5));
  // Leaf (node 3) sent epochs 0..5 -> 6 reports.
  EXPECT_EQ(rig.agents[3]->stats().reports_sent, 6u);
  EXPECT_TRUE(rig.agents[3]->is_leaf());
}

TEST(QueryAgent, AggregateLatencyIsBounded) {
  AgentRig rig;
  rig.register_everywhere(one_second_query());
  rig.sim.run_until(Time::seconds(5));
  // NTS with an idle channel: per-hop cost is ~t_comp + one frame; the
  // 3-hop aggregate must arrive well within 10% of the period.
  for (const auto& a : rig.arrivals) {
    const Time epoch_start = Time::seconds(1) + Time::seconds(1) * a.epoch;
    EXPECT_LT((a.at - epoch_start).to_seconds(), 0.1);
  }
}

TEST(QueryAgent, RootDoesNotTransmit) {
  AgentRig rig;
  rig.register_everywhere(one_second_query());
  rig.sim.run_until(Time::seconds(5));
  EXPECT_EQ(rig.agents[0]->stats().reports_sent, 0u);
}

TEST(QueryAgent, DeadlineProducesPartialAggregate) {
  AgentRig rig;
  rig.register_everywhere(one_second_query());
  // Kill the leaf before its first report.
  rig.radios[3]->fail();
  rig.agents[3]->halt();
  rig.sim.run_until(Time::seconds(5));
  ASSERT_GE(rig.arrivals.size(), 2u);
  // Node 2 times out on its child each epoch and sends partial aggregates.
  for (const auto& a : rig.arrivals) EXPECT_EQ(a.contributions, 2);
  EXPECT_GE(rig.agents[2]->stats().partial_finalizes, 2u);
  EXPECT_GE(rig.agents[2]->stats().child_timeouts, 2u);
}

TEST(QueryAgent, ChildMissHookFires) {
  AgentRig rig;
  std::vector<net::NodeId> missed;
  rig.agents[2]->set_child_miss_hook(
      [&](net::NodeId c, std::int64_t) { missed.push_back(c); });
  rig.radios[3]->fail();
  rig.agents[3]->halt();
  rig.register_everywhere(one_second_query());
  rig.sim.run_until(Time::seconds(4));
  ASSERT_GE(missed.size(), 2u);
  EXPECT_EQ(missed[0], 3);
}

TEST(QueryAgent, SendResultHookSeesFailures) {
  AgentRig rig;
  int failures = 0, successes = 0;
  rig.agents[3]->set_send_result_hook([&](net::NodeId parent, bool ok) {
    EXPECT_EQ(parent, 2);
    ok ? ++successes : ++failures;
  });
  // Parent of the leaf is dead: every send fails.
  rig.radios[2]->fail();
  rig.agents[2]->halt();
  rig.register_everywhere(one_second_query());
  rig.sim.run_until(Time::seconds(4));
  EXPECT_GE(failures, 2);
  EXPECT_EQ(successes, 0);
}

TEST(QueryAgent, MultipleQueriesRunConcurrently) {
  AgentRig rig;
  Query q1 = one_second_query();
  Query q2;
  q2.id = 1;
  q2.period = Time::seconds(2);
  q2.phase = Time::from_seconds(1.5);
  rig.register_everywhere(q1);
  rig.register_everywhere(q2);
  rig.sim.run_until(Time::seconds(6));
  int q1_arrivals = 0, q2_arrivals = 0;
  for (const auto& a : rig.arrivals) (a.query == 0 ? q1_arrivals : q2_arrivals)++;
  EXPECT_GE(q1_arrivals, 4);
  EXPECT_GE(q2_arrivals, 2);
}

TEST(QueryAgent, DuplicateRegistrationIgnored) {
  AgentRig rig;
  const Query q = one_second_query();
  rig.agents[3]->register_query(q);
  rig.agents[3]->register_query(q);
  rig.register_everywhere(q);
  rig.sim.run_until(Time::from_seconds(2.5));
  // Two epochs, one report each despite the double registration.
  EXPECT_EQ(rig.agents[3]->stats().reports_sent, 2u);
}

TEST(QueryAgent, HaltStopsAllActivity) {
  AgentRig rig;
  rig.register_everywhere(one_second_query());
  rig.sim.run_until(Time::from_seconds(2.5));
  const auto sent_before = rig.agents[3]->stats().reports_sent;
  rig.agents[3]->halt();
  rig.sim.run_until(Time::seconds(6));
  EXPECT_EQ(rig.agents[3]->stats().reports_sent, sent_before);
}

TEST(QueryAgent, ChildRemovedUnblocksPendingEpoch) {
  AgentRig rig;
  rig.radios[3]->fail();
  rig.agents[3]->halt();
  rig.register_everywhere(one_second_query());
  // Before the epoch-0 deadline, the repair layer removes the dead child.
  rig.sim.run_until(Time::from_seconds(1.05));
  rig.tree.remove_node(3);
  rig.tree.recompute_ranks();
  rig.agents[2]->child_removed(3);
  rig.sim.run_until(Time::from_seconds(1.5));
  // Epoch 0 finalized (as complete) without waiting for the deadline.
  ASSERT_GE(rig.arrivals.size(), 1u);
  EXPECT_EQ(rig.arrivals[0].contributions, 2);
  EXPECT_EQ(rig.agents[2]->stats().partial_finalizes, 0u);
}

TEST(QueryAgent, DtsPhaseUpdatesFlowThroughNetwork) {
  AgentRig rig{AgentRig::Shaper::kDts};
  rig.register_everywhere(one_second_query());
  rig.sim.run_until(Time::seconds(6));
  // Interior nodes are initially late (s(0) = φ but aggregation takes
  // T_collect + T_comp), so phase shifts + advertisements must occur.
  auto* dts1 = dynamic_cast<core::DtsShaper*>(rig.shapers[1].get());
  auto* dts2 = dynamic_cast<core::DtsShaper*>(rig.shapers[2].get());
  ASSERT_NE(dts1, nullptr);
  EXPECT_GE(dts1->phase_shifts() + dts2->phase_shifts(), 1u);
  // And the system still delivers complete aggregates after convergence.
  ASSERT_GE(rig.arrivals.size(), 3u);
  EXPECT_EQ(rig.arrivals.back().contributions, 3);
}

TEST(QueryAgent, DtsConvergesToSilence) {
  AgentRig rig{AgentRig::Shaper::kDts};
  rig.register_everywhere(one_second_query());
  rig.sim.run_until(Time::seconds(10));
  auto* dts2 = dynamic_cast<core::DtsShaper*>(rig.shapers[2].get());
  const auto updates_mid = dts2->phase_updates_sent();
  rig.sim.run_until(Time::seconds(20));
  // After convergence no further phase updates are needed: "its
  // communication overhead is small" (§4.2.3).
  EXPECT_LE(dts2->phase_updates_sent() - updates_mid, 2u);
}

TEST(QueryAgent, EndToEndWithSafeSleepStillDelivers) {
  AgentRig rig{AgentRig::Shaper::kDts, /*with_safe_sleep=*/true};
  for (auto& s : rig.sleepers) s->set_setup_end(Time::milliseconds(500));
  rig.register_everywhere(one_second_query());
  rig.sim.run_until(Time::seconds(10));
  // Sleep scheduling must not break delivery (the "safe" in Safe Sleep).
  std::map<std::int64_t, int> contribs;
  for (const auto& a : rig.arrivals) contribs[a.epoch] += a.contributions;
  int complete = 0;
  for (const auto& [k, c] : contribs) complete += (c >= 3);
  EXPECT_GE(complete, 7);
  // And the leaf actually slept between epochs.
  EXPECT_LT(rig.radios[3]->duty_cycle(), 0.9);
}

}  // namespace
}  // namespace essat::query
