#include <gtest/gtest.h>

#include <map>

#include "src/core/nts.h"
#include "src/routing/tree.h"

namespace essat::core {
namespace {

using util::Time;

struct RecordingSink final : query::ExpectedTimeSink {
  std::map<net::QueryId, Time> next_send;
  std::map<std::pair<net::QueryId, net::NodeId>, Time> next_recv;
  int erased_children = 0;
  int erased_queries = 0;

  void update_next_send(net::QueryId q, Time t) override { next_send[q] = t; }
  void update_next_receive(net::QueryId q, net::NodeId c, Time t) override {
    next_recv[{q, c}] = t;
  }
  void erase_child(net::QueryId q, net::NodeId c) override {
    next_recv.erase({q, c});
    ++erased_children;
  }
  void erase_query(net::QueryId q) override {
    next_send.erase(q);
    ++erased_queries;
  }
};

// Chain 0-1-2-3-4: node 2 has child 3, rank 2, in a tree of max rank 4.
struct NtsFixture : ::testing::Test {
  NtsFixture()
      : topo{net::Topology::line(5, 100.0, 125.0)},
        tree{routing::build_bfs_tree(topo, 0, 1000.0)} {
    shaper.set_context(query::ShaperContext{&tree, 2, &sink});
    q.id = 0;
    q.period = Time::seconds(1);
    q.phase = Time::seconds(10);
  }

  net::Topology topo;
  routing::Tree tree;
  RecordingSink sink;
  NtsShaper shaper;
  query::Query q;
};

TEST_F(NtsFixture, RegisterPushesPhaseAsInitialTimes) {
  shaper.register_query(q);
  EXPECT_EQ(sink.next_send[0], Time::seconds(10));  // s(0) = φ
  EXPECT_EQ((sink.next_recv[std::make_pair<net::QueryId, net::NodeId>(0, 3)]), Time::seconds(10));
}

TEST_F(NtsFixture, ExpectedTimesAreEpochStarts) {
  // s(k) = r(k) = φ + kP for every node (§4.2.1).
  EXPECT_EQ(shaper.expected_send(q, 3), Time::seconds(13));
  EXPECT_EQ(shaper.expected_receive(q, 7, 3), Time::seconds(17));
}

TEST_F(NtsFixture, PlanSendIsImmediate) {
  shaper.register_query(q);
  // NTS sends "immediately after it has received and aggregated".
  const auto plan = shaper.plan_send(q, 0, Time::seconds(10) + Time::milliseconds(37));
  EXPECT_EQ(plan.send_at, Time::seconds(10) + Time::milliseconds(37));
  EXPECT_FALSE(plan.phase_update.has_value());
}

TEST_F(NtsFixture, OnSentAdvancesNextSend) {
  shaper.register_query(q);
  shaper.on_report_sent(q, 0, Time::seconds(10));
  EXPECT_EQ(sink.next_send[0], Time::seconds(11));
  shaper.on_report_sent(q, 1, Time::seconds(11));
  EXPECT_EQ(sink.next_send[0], Time::seconds(12));
}

TEST_F(NtsFixture, OnReceivedAdvancesChild) {
  shaper.register_query(q);
  shaper.on_report_received(q, 0, 3, std::nullopt);
  EXPECT_EQ((sink.next_recv[std::make_pair<net::QueryId, net::NodeId>(0, 3)]), Time::seconds(11));
}

TEST_F(NtsFixture, TimeoutAdvancesChildToo) {
  shaper.register_query(q);
  shaper.on_child_timeout(q, 0, 3);
  EXPECT_EQ((sink.next_recv[std::make_pair<net::QueryId, net::NodeId>(0, 3)]), Time::seconds(11));
  // A late reception afterwards must not move the expectation backwards.
  shaper.on_report_received(q, 0, 3, std::nullopt);
  EXPECT_EQ((sink.next_recv[std::make_pair<net::QueryId, net::NodeId>(0, 3)]), Time::seconds(11));
}

TEST_F(NtsFixture, DeadlineFollowsRankFormula) {
  // t_TO(d) = (d+1) * D/M with D = P (§4.3): node 2 has rank 2, M = 4.
  const Time expected = q.epoch_start(5) + (q.period * 3) / 4;
  EXPECT_EQ(shaper.aggregation_deadline(q, 5), expected);
}

TEST_F(NtsFixture, FullPeriodDeadlineVariant) {
  NtsShaper baseline{NtsParams{.full_period_deadline = true, .deadline_periods = 2.0}};
  baseline.set_context(query::ShaperContext{&tree, 2, nullptr});
  EXPECT_EQ(baseline.aggregation_deadline(q, 0), q.epoch_start(0) + q.period * 2);
}

TEST_F(NtsFixture, ChildRemovalErasesSinkEntry) {
  shaper.register_query(q);
  ASSERT_EQ((sink.next_recv.count(std::make_pair<net::QueryId, net::NodeId>(0, 3))), 1u);
  shaper.on_child_removed(q, 3);
  EXPECT_EQ((sink.next_recv.count(std::make_pair<net::QueryId, net::NodeId>(0, 3))), 0u);
  EXPECT_EQ(sink.erased_children, 1);
}

TEST_F(NtsFixture, ChildAddedStartsAtSendProgress) {
  shaper.register_query(q);
  shaper.on_report_sent(q, 0, Time::seconds(10));
  shaper.on_report_sent(q, 1, Time::seconds(11));
  shaper.on_child_added(q, 1);  // pretend node 1 became our child
  // New child expected at our current epoch (2), i.e. φ + 2P.
  EXPECT_EQ((sink.next_recv[std::make_pair<net::QueryId, net::NodeId>(0, 1)]), Time::seconds(12));
}

TEST_F(NtsFixture, RankChangeIsHarmlessForNts) {
  // NTS times are independent of rank (§4.3: "NTS-SS does not require an
  // update since all nodes share the expected send and reception times").
  shaper.register_query(q);
  const auto send_before = sink.next_send[0];
  shaper.on_rank_changed(q);
  EXPECT_EQ(sink.next_send[0], send_before);
}

TEST_F(NtsFixture, NoPhaseMachinery) {
  EXPECT_FALSE(shaper.wants_phase_request_on_loss());
  EXPECT_EQ(shaper.phase_updates_sent(), 0u);
}

TEST_F(NtsFixture, MultipleQueriesTrackedIndependently) {
  query::Query q2 = q;
  q2.id = 1;
  q2.phase = Time::seconds(20);
  q2.period = Time::seconds(3);
  shaper.register_query(q);
  shaper.register_query(q2);
  shaper.on_report_sent(q, 0, Time::seconds(10));
  EXPECT_EQ(sink.next_send[0], Time::seconds(11));
  EXPECT_EQ(sink.next_send[1], Time::seconds(20));  // untouched
}

}  // namespace
}  // namespace essat::core
