#include <gtest/gtest.h>

#include <utility>

#include "src/util/small_vector.h"

namespace essat::util {
namespace {

using Vec = SmallVector<int, 4>;

TEST(SmallVector, StartsEmptyInline) {
  Vec v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0u);
  EXPECT_EQ(v.capacity(), 4u);
}

TEST(SmallVector, PushBackWithinInlineCapacity) {
  Vec v;
  for (int i = 0; i < 4; ++i) v.push_back(i);
  EXPECT_EQ(v.size(), 4u);
  EXPECT_EQ(v.capacity(), 4u);  // still inline
  for (int i = 0; i < 4; ++i) EXPECT_EQ(v[static_cast<std::size_t>(i)], i);
}

TEST(SmallVector, SpillsToHeapPastInlineCapacity) {
  Vec v;
  for (int i = 0; i < 20; ++i) v.push_back(i);
  EXPECT_EQ(v.size(), 20u);
  EXPECT_GT(v.capacity(), 4u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(v[static_cast<std::size_t>(i)], i);
}

TEST(SmallVector, InitializerListAndEquality) {
  const Vec a{1, 2, 3};
  const Vec b{1, 2, 3};
  const Vec c{1, 2, 4};
  const Vec d{1, 2};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(a, d);
}

TEST(SmallVector, CopyInlineAndSpilled) {
  Vec small{1, 2};
  Vec big;
  for (int i = 0; i < 10; ++i) big.push_back(i);
  Vec small_copy = small;
  Vec big_copy = big;
  EXPECT_EQ(small_copy, small);
  EXPECT_EQ(big_copy, big);
  small.push_back(3);  // copies are independent
  EXPECT_EQ(small_copy.size(), 2u);
  Vec reassigned{9};
  reassigned = big;
  EXPECT_EQ(reassigned, big);
}

TEST(SmallVector, MoveStealsHeapAndCopiesInline) {
  Vec big;
  for (int i = 0; i < 10; ++i) big.push_back(i);
  const int* heap_data = big.data();
  Vec stolen = std::move(big);
  EXPECT_EQ(stolen.data(), heap_data);  // spilled storage changed hands
  EXPECT_EQ(stolen.size(), 10u);
  EXPECT_TRUE(big.empty());  // NOLINT: moved-from is specified empty

  Vec small{1, 2, 3};
  Vec moved = std::move(small);
  EXPECT_EQ(moved, (Vec{1, 2, 3}));
  EXPECT_TRUE(small.empty());  // NOLINT
}

TEST(SmallVector, ClearKeepsCapacity) {
  Vec v;
  for (int i = 0; i < 10; ++i) v.push_back(i);
  const std::size_t cap = v.capacity();
  v.clear();
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.capacity(), cap);
  v.push_back(7);
  EXPECT_EQ(v.back(), 7);
}

TEST(SmallVector, IteratorConstructionFromRange) {
  const int raw[] = {5, 6, 7, 8, 9, 10};
  const SmallVector<int, 4> v(raw, raw + 6);
  EXPECT_EQ(v.size(), 6u);
  EXPECT_EQ(v[0], 5);
  EXPECT_EQ(v[5], 10);
}

TEST(SmallVector, PopBack) {
  Vec v{1, 2, 3};
  v.pop_back();
  EXPECT_EQ(v, (Vec{1, 2}));
}

}  // namespace
}  // namespace essat::util
