// End-to-end behavioral checks on the paper-scale scenario: every protocol
// must deliver, and the paper's qualitative orderings must hold.
#include <gtest/gtest.h>

#include "src/harness/scenario.h"

namespace essat::harness {
namespace {

using util::Time;

ScenarioConfig paper_config(Protocol p, double rate_hz = 2.0,
                            std::uint64_t seed = 42) {
  ScenarioConfig c;
  c.protocol = p;
  c.workload.base_rate_hz = rate_hz;
  c.measure_duration = Time::seconds(40);
  c.seed = seed;
  return c;
}

TEST(Integration, AllProtocolsDeliver) {
  for (Protocol p : {Protocol::kNtsSs, Protocol::kStsSs, Protocol::kDtsSs,
                     Protocol::kPsm, Protocol::kSpan}) {
    const RunMetrics m = run_scenario(paper_config(p));
    EXPECT_GT(m.delivery_ratio, 0.80) << protocol_name(p);
    EXPECT_GT(m.epochs_measured, 50u) << protocol_name(p);
  }
  // SYNC is heavily backlogged at this rate (the paper's own observation);
  // it must still deliver a majority of readings.
  const RunMetrics sync = run_scenario(paper_config(Protocol::kSync));
  EXPECT_GT(sync.delivery_ratio, 0.5);
}

TEST(Integration, EssatLosesAlmostNothing) {
  // With Safe Sleep's no-penalty guarantee and the shapers' matched
  // schedules, MAC-level send failures must be a negligible fraction.
  for (Protocol p : {Protocol::kNtsSs, Protocol::kStsSs, Protocol::kDtsSs}) {
    const RunMetrics m = run_scenario(paper_config(p));
    EXPECT_LT(static_cast<double>(m.mac_send_failures) /
                  static_cast<double>(m.reports_sent),
              0.01)
        << protocol_name(p);
  }
}

TEST(Integration, ShapersSaveEnergyOverNts) {
  // §5.1: "NTS-SS performs the worst among the ESSAT protocols."
  const RunMetrics nts = run_scenario(paper_config(Protocol::kNtsSs));
  const RunMetrics sts = run_scenario(paper_config(Protocol::kStsSs));
  const RunMetrics dts = run_scenario(paper_config(Protocol::kDtsSs));
  EXPECT_LT(sts.avg_duty_cycle, nts.avg_duty_cycle);
  EXPECT_LT(dts.avg_duty_cycle, nts.avg_duty_cycle);
}

TEST(Integration, EssatBeatsBaselinesOnDutyCycle) {
  // §5.1: "All ESSAT protocols have lower duty cycles than PSM" and "SPAN
  // has the highest duty cycle".
  const RunMetrics dts = run_scenario(paper_config(Protocol::kDtsSs));
  const RunMetrics psm = run_scenario(paper_config(Protocol::kPsm));
  const RunMetrics span = run_scenario(paper_config(Protocol::kSpan));
  EXPECT_LT(dts.avg_duty_cycle, psm.avg_duty_cycle);
  EXPECT_LT(dts.avg_duty_cycle, span.avg_duty_cycle);
  EXPECT_LT(psm.avg_duty_cycle, span.avg_duty_cycle);
}

TEST(Integration, EssatBeatsPsmAndSyncOnLatency) {
  // Abstract: "query latencies 36-98% lower than PSM and SYNC".
  const RunMetrics dts = run_scenario(paper_config(Protocol::kDtsSs));
  const RunMetrics psm = run_scenario(paper_config(Protocol::kPsm));
  const RunMetrics sync = run_scenario(paper_config(Protocol::kSync));
  EXPECT_LT(dts.avg_latency_s, psm.avg_latency_s);
  EXPECT_LT(dts.avg_latency_s, sync.avg_latency_s);
}

TEST(Integration, NtsDutyGrowsWithRankOthersFlat) {
  // Fig. 5: NTS duty cycle increases linearly with rank; STS/DTS stay flat.
  const RunMetrics nts = run_scenario(paper_config(Protocol::kNtsSs, 2.0));
  ASSERT_GE(nts.duty_by_rank.size(), 3u);
  const auto& d = nts.duty_by_rank;
  // Monotone growth from leaves toward the root (excluding the always-on
  // root itself which has rank == max_rank).
  EXPECT_GT(d[d.size() - 2], d[0] * 1.5);
  const RunMetrics dts = run_scenario(paper_config(Protocol::kDtsSs, 2.0));
  const auto& e = dts.duty_by_rank;
  // DTS: mid-rank duty within a factor ~2.5 of leaf duty, not linear blowup.
  EXPECT_LT(e[e.size() - 2], e[0] * 4.0);
}

TEST(Integration, DtsOverheadBelowOneBitPerReport) {
  // §4.2.3: "the overhead due to piggybacked phase updates is less than one
  // bit per data report for all tested query rates".
  for (double rate : {1.0, 2.0}) {
    const RunMetrics m = run_scenario(paper_config(Protocol::kDtsSs, rate));
    EXPECT_LT(m.phase_update_bits_per_report, 1.0) << rate << " Hz";
  }
}

TEST(Integration, OnlyDtsSendsPhaseUpdates) {
  const RunMetrics nts = run_scenario(paper_config(Protocol::kNtsSs));
  const RunMetrics sts = run_scenario(paper_config(Protocol::kStsSs));
  const RunMetrics dts = run_scenario(paper_config(Protocol::kDtsSs));
  EXPECT_EQ(nts.phase_updates, 0u);
  EXPECT_EQ(sts.phase_updates, 0u);
  EXPECT_GT(dts.phase_updates, 0u);
}

TEST(Integration, SleepIntervalsRecordedForEssat) {
  auto c = paper_config(Protocol::kDtsSs);
  c.t_be = Time::zero();  // Fig. 8 setting
  const RunMetrics m = run_scenario(c);
  EXPECT_GT(m.sleep_intervals, 1000u);
  EXPECT_GT(m.sleep_hist.total(), 0u);
}

TEST(Integration, SyncDutyIsConfiguredTwentyPercent) {
  const RunMetrics m = run_scenario(paper_config(Protocol::kSync));
  EXPECT_NEAR(m.avg_duty_cycle, 0.20, 0.05);
}

TEST(Integration, MaintenanceRecoversFromMidRunFailure) {
  auto c = paper_config(Protocol::kDtsSs);
  c.enable_maintenance = true;
  // Kill a handful of nodes early in the measurement window.
  c.failures = {{5, Time::seconds(20)}, {11, Time::seconds(22)}};
  const RunMetrics m = run_scenario(c);
  // The network keeps running and delivers the bulk of readings.
  EXPECT_GT(m.delivery_ratio, 0.7);
  EXPECT_GT(m.epochs_measured, 50u);
}

}  // namespace
}  // namespace essat::harness
