#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/mac/csma.h"
#include "src/net/channel.h"
#include "src/sim/simulator.h"

namespace essat::mac {
namespace {

using util::Time;

// Small harness: N nodes on a line (100 m spacing, 125 m range), one MAC and
// always-capable radio per node.
struct MacRig {
  explicit MacRig(std::size_t n, MacParams params = {})
      : topo{net::Topology::line(n, 100.0, 125.0)}, channel{sim, topo} {
    for (std::size_t i = 0; i < n; ++i) {
      radios.push_back(std::make_unique<energy::Radio>(sim, energy::RadioParams{}));
      macs.push_back(std::make_unique<CsmaMac>(sim, channel, *radios.back(),
                                               static_cast<net::NodeId>(i), params,
                                               util::Rng{100 + i}));
    }
  }

  sim::Simulator sim;
  net::Topology topo;
  net::Channel channel;
  std::vector<std::unique_ptr<energy::Radio>> radios;
  std::vector<std::unique_ptr<CsmaMac>> macs;
};

net::Packet data(net::NodeId dst) {
  net::DataHeader h;
  h.query = 0;
  h.epoch = 0;
  return net::make_data_packet(net::kNoNode, dst, h);
}

TEST(CsmaMac, UnicastDeliveredAndAcked) {
  MacRig rig{2};
  std::vector<net::Packet> received;
  rig.macs[1]->set_rx_handler([&](const net::Packet& p) { received.push_back(p); });
  bool success = false;
  rig.macs[0]->send(data(1), [&](bool ok) { success = ok; });
  rig.sim.run_until(Time::milliseconds(100));
  ASSERT_EQ(received.size(), 1u);
  EXPECT_TRUE(success);
  EXPECT_EQ(rig.macs[0]->stats().frames_sent, 1u);
  EXPECT_EQ(rig.macs[1]->stats().acks_sent, 1u);
  EXPECT_TRUE(rig.macs[0]->idle());
}

TEST(CsmaMac, BroadcastDeliveredWithoutAck) {
  MacRig rig{3};
  int heard = 0;
  rig.macs[0]->set_rx_handler([&](const net::Packet&) { ++heard; });
  rig.macs[2]->set_rx_handler([&](const net::Packet&) { ++heard; });
  bool done = false;
  rig.macs[1]->send(net::make_setup_packet(1, 1, 0), [&](bool ok) { done = ok; });
  rig.sim.run_until(Time::milliseconds(100));
  EXPECT_EQ(heard, 2);
  EXPECT_TRUE(done);
  EXPECT_EQ(rig.macs[0]->stats().acks_sent, 0u);
  EXPECT_EQ(rig.macs[2]->stats().acks_sent, 0u);
}

TEST(CsmaMac, FailsAfterMaxAttemptsWhenReceiverOff) {
  MacParams params;
  params.max_attempts = 4;
  MacRig rig{2, params};
  rig.radios[1]->turn_off();
  rig.sim.run_until(Time::milliseconds(5));
  bool failed = false;
  rig.macs[0]->send(data(1), [&](bool ok) { failed = !ok; });
  rig.sim.run_until(Time::seconds(2));
  EXPECT_TRUE(failed);
  EXPECT_EQ(rig.macs[0]->stats().transmissions, 4u);
  EXPECT_EQ(rig.macs[0]->stats().frames_failed, 1u);
  EXPECT_EQ(rig.macs[0]->stats().retries, 3u);
}

TEST(CsmaMac, RetryAttributionNoAck) {
  // A sleeping receiver never ACKs: every retry is a no-ACK retransmission
  // (in this MAC, `retries` counts nothing else), and with nobody else
  // transmitting the carrier is never busy.
  MacParams params;
  params.max_attempts = 4;
  MacRig rig{2, params};
  rig.radios[1]->turn_off();
  rig.sim.run_until(Time::milliseconds(5));
  rig.macs[0]->send(data(1));
  rig.sim.run_until(Time::seconds(2));
  EXPECT_EQ(rig.macs[0]->stats().retries, 3u);
  EXPECT_EQ(rig.macs[0]->stats().cca_busy_defers, 0u);
}

TEST(CsmaMac, RetryAttributionCcaBusy) {
  // Two mutually-in-range senders firing at the same instants: whoever
  // loses the backoff draw carrier-senses the winner's transmission and
  // freezes — a CCA-busy defer, not a retransmission.
  MacRig rig{2};
  int delivered = 0;
  rig.macs[0]->set_rx_handler([&](const net::Packet&) { ++delivered; });
  rig.macs[1]->set_rx_handler([&](const net::Packet&) { ++delivered; });
  for (int burst = 0; burst < 10; ++burst) {
    rig.sim.schedule_at(Time::milliseconds(burst * 10), [&] {
      rig.macs[0]->send(data(1));
      rig.macs[1]->send(data(0));
    });
  }
  rig.sim.run_until(Time::seconds(2));
  EXPECT_EQ(delivered, 20);
  EXPECT_GT(rig.macs[0]->stats().cca_busy_defers +
                rig.macs[1]->stats().cca_busy_defers,
            0u);
}

TEST(CsmaMac, RetrySucceedsWhenReceiverWakes) {
  MacRig rig{2};
  rig.radios[1]->turn_off();
  rig.sim.run_until(Time::milliseconds(5));
  int received = 0;
  rig.macs[1]->set_rx_handler([&](const net::Packet&) { ++received; });
  bool success = false;
  rig.macs[0]->send(data(1), [&](bool ok) { success = ok; });
  // Wake the receiver while the sender is mid-retries.
  rig.sim.schedule_at(Time::milliseconds(8), [&] { rig.radios[1]->turn_on(); });
  rig.sim.run_until(Time::seconds(2));
  EXPECT_TRUE(success);
  EXPECT_EQ(received, 1);
  EXPECT_GE(rig.macs[0]->stats().retries, 1u);
}

TEST(CsmaMac, SenderPausesWhileOwnRadioOff) {
  MacRig rig{2};
  rig.radios[0]->turn_off();
  rig.sim.run_until(Time::milliseconds(5));
  int received = 0;
  rig.macs[1]->set_rx_handler([&](const net::Packet&) { ++received; });
  bool success = false;
  rig.macs[0]->send(data(1), [&](bool ok) { success = ok; });
  rig.sim.run_until(Time::milliseconds(50));
  EXPECT_EQ(received, 0);  // queued, not failed
  EXPECT_FALSE(rig.macs[0]->idle());
  rig.radios[0]->turn_on();
  rig.sim.run_until(Time::milliseconds(100));
  EXPECT_TRUE(success);
  EXPECT_EQ(received, 1);
}

TEST(CsmaMac, DuplicateRetransmissionsSuppressed) {
  // Force a lost ACK scenario: receiver 1 gets the frame; we drop its first
  // ACK by turning node 0's listening off around the ACK time is hard to
  // orchestrate — instead verify the dedup path directly via two sends with
  // the same payload but distinct mac_seq, which must BOTH deliver, and a
  // forced duplicate via stats.
  MacRig rig{2};
  int received = 0;
  rig.macs[1]->set_rx_handler([&](const net::Packet&) { ++received; });
  rig.macs[0]->send(data(1));
  rig.macs[0]->send(data(1));
  rig.sim.run_until(Time::milliseconds(100));
  EXPECT_EQ(received, 2);  // distinct frames are not duplicates
  EXPECT_EQ(rig.macs[1]->stats().duplicates, 0u);
}

TEST(CsmaMac, QueueDrainsInOrder) {
  MacRig rig{2};
  std::vector<std::int64_t> epochs;
  rig.macs[1]->set_rx_handler(
      [&](const net::Packet& p) { epochs.push_back(p.data().epoch); });
  for (int k = 0; k < 5; ++k) {
    net::DataHeader h;
    h.epoch = k;
    rig.macs[0]->send(net::make_data_packet(0, 1, h));
  }
  rig.sim.run_until(Time::seconds(1));
  EXPECT_EQ(epochs, (std::vector<std::int64_t>{0, 1, 2, 3, 4}));
}

TEST(CsmaMac, TxFilterBlocksAndKickResumes) {
  MacRig rig{2};
  int received = 0;
  rig.macs[1]->set_rx_handler([&](const net::Packet&) { ++received; });
  bool open = false;
  rig.macs[0]->set_tx_filter([&](const net::Packet&) { return open; });
  rig.macs[0]->send(data(1));
  rig.sim.run_until(Time::milliseconds(50));
  EXPECT_EQ(received, 0);
  EXPECT_FALSE(rig.macs[0]->idle());
  open = true;
  rig.macs[0]->kick();
  rig.sim.run_until(Time::milliseconds(100));
  EXPECT_EQ(received, 1);
}

TEST(CsmaMac, TxFilterSkipsToAdmissiblePacket) {
  MacRig rig{3};
  // Node 1 reaches both 0 and 2.
  std::vector<net::NodeId> delivered;
  rig.macs[0]->set_rx_handler([&](const net::Packet&) { delivered.push_back(0); });
  rig.macs[2]->set_rx_handler([&](const net::Packet&) { delivered.push_back(2); });
  rig.macs[1]->set_tx_filter(
      [](const net::Packet& p) { return p.link_dst == 2; });
  rig.macs[1]->send(data(0));  // blocked
  rig.macs[1]->send(data(2));  // admissible
  rig.sim.run_until(Time::milliseconds(100));
  EXPECT_EQ(delivered, (std::vector<net::NodeId>{2}));
}

TEST(CsmaMac, PendingDestinationsListsQueuedUnicasts) {
  MacRig rig{3};
  rig.macs[1]->set_tx_filter([](const net::Packet&) { return false; });
  rig.macs[1]->send(data(0));
  rig.macs[1]->send(data(2));
  rig.macs[1]->send(data(2));  // duplicate destination
  const auto dests = rig.macs[1]->pending_destinations();
  EXPECT_EQ(dests.size(), 2u);
  EXPECT_TRUE(rig.macs[1]->has_pending());
}

TEST(CsmaMac, IdleCallbackFiresOnDrain) {
  MacRig rig{2};
  int idle_calls = 0;
  rig.macs[0]->set_idle_callback([&] { ++idle_calls; });
  rig.macs[0]->send(data(1));
  rig.sim.run_until(Time::seconds(1));
  EXPECT_GE(idle_calls, 1);
  EXPECT_TRUE(rig.macs[0]->idle());
}

TEST(CsmaMac, IdleWaitsForPendingAck) {
  // Receiver's idle() must be false between accepting a frame and finishing
  // the ACK — Safe Sleep relies on this to not kill its own ACK.
  MacRig rig{2};
  bool acked_while_idle = false;
  rig.macs[1]->set_rx_handler([&](const net::Packet&) {
    // At delivery time the ACK is still pending.
    acked_while_idle = rig.macs[1]->idle();
  });
  rig.macs[0]->send(data(1));
  rig.sim.run_until(Time::seconds(1));
  EXPECT_FALSE(acked_while_idle);
  EXPECT_TRUE(rig.macs[1]->idle());
}

TEST(CsmaMac, HiddenTerminalsEventuallyResolve) {
  // Nodes 0 and 2 are hidden from each other; both bombard node 1.
  MacRig rig{3};
  int received = 0;
  rig.macs[1]->set_rx_handler([&](const net::Packet&) { ++received; });
  int successes = 0;
  for (int i = 0; i < 5; ++i) {
    rig.macs[0]->send(data(1), [&](bool ok) { successes += ok; });
    rig.macs[2]->send(data(1), [&](bool ok) { successes += ok; });
  }
  rig.sim.run_until(Time::seconds(5));
  EXPECT_EQ(received, 10);
  EXPECT_EQ(successes, 10);
}

TEST(CsmaMac, ContendersSerializeWithoutLoss) {
  // Five senders in mutual range all transmit to node 0 simultaneously.
  MacParams params;
  MacRig rig{6, params};
  // Re-rig on a dense topology: everyone within range of everyone.
  sim::Simulator sim;
  net::Topology topo = net::Topology::grid(3, 40.0, 125.0);  // one collision domain
  net::Channel channel{sim, topo};
  std::vector<std::unique_ptr<energy::Radio>> radios;
  std::vector<std::unique_ptr<CsmaMac>> macs;
  for (std::size_t i = 0; i < 9; ++i) {
    radios.push_back(std::make_unique<energy::Radio>(sim, energy::RadioParams{}));
    macs.push_back(std::make_unique<CsmaMac>(sim, channel, *radios.back(),
                                             static_cast<net::NodeId>(i), params,
                                             util::Rng{7 + i}));
  }
  int received = 0;
  macs[0]->set_rx_handler([&](const net::Packet&) { ++received; });
  for (std::size_t i = 1; i < 9; ++i) macs[i]->send(data(0));
  sim.run_until(Time::seconds(5));
  EXPECT_EQ(received, 8);
}

TEST(CsmaMac, StatsCountTransmissions) {
  MacRig rig{2};
  rig.macs[0]->send(data(1));
  rig.sim.run_until(Time::seconds(1));
  EXPECT_EQ(rig.macs[0]->stats().transmissions, 1u);
  EXPECT_EQ(rig.macs[0]->stats().frames_sent, 1u);
  EXPECT_EQ(rig.macs[1]->stats().frames_received, 1u);
}

TEST(MacParams, Durations) {
  MacParams p;
  // 52 bytes at 1 Mbps = 416 us + 192 us PHY = 608 us.
  EXPECT_EQ(p.tx_duration(52), Time::microseconds(608));
  // ACK: 14 bytes = 112 us + 192 us = 304 us.
  EXPECT_EQ(p.ack_duration(), Time::microseconds(304));
  EXPECT_GT(p.ack_timeout(), p.sifs + p.ack_duration());
  EXPECT_GT(p.eifs(), p.difs);
}

}  // namespace
}  // namespace essat::mac
