#include <gtest/gtest.h>

#include <tuple>
#include <utility>
#include <vector>

#include "src/net/channel.h"
#include "src/sim/simulator.h"

namespace essat::net {
namespace {

using util::Time;

// Three nodes on a line: 0 -- 1 -- 2, with 0 and 2 hidden from each other.
Topology line_topo() { return Topology::line(3, 100.0, 125.0); }

struct Listener : ChannelListener {
  std::vector<std::pair<Packet, bool>> received;
  int notifications = 0;

  void on_rx_complete(const Packet& p, bool ok) override {
    received.emplace_back(p, ok);
  }
  void on_channel_activity() override { ++notifications; }

  // Attach + mark listening, the canonical bring-up a MAC performs.
  void listen_on(Channel& ch, NodeId node) {
    ch.attach(node, this);
    ch.set_listening(node, true);
  }
};

Packet test_packet(NodeId src, NodeId dst) {
  DataHeader h;
  h.query = 1;
  return make_data_packet(src, dst, h);
}

TEST(Channel, DeliversToInRangeListener) {
  sim::Simulator sim;
  Topology topo = line_topo();
  Channel ch{sim, topo};
  Listener l1, l2;
  l1.listen_on(ch, 1);
  l2.listen_on(ch, 2);

  ch.start_tx(0, test_packet(0, 1), Time::microseconds(500));
  sim.run();

  ASSERT_EQ(l1.received.size(), 1u);
  EXPECT_TRUE(l1.received[0].second);
  EXPECT_EQ(l1.received[0].first.link_src, 0);
  // Node 2 is out of range of node 0: hears nothing.
  EXPECT_TRUE(l2.received.empty());
  EXPECT_EQ(ch.delivered(), 1u);
}

TEST(Channel, NoDeliveryWhenNotListeningAtStart) {
  sim::Simulator sim;
  Topology topo = line_topo();
  Channel ch{sim, topo};
  Listener l1;
  ch.attach(1, &l1);  // attached but never marked listening

  ch.start_tx(0, test_packet(0, 1), Time::microseconds(500));
  sim.run();
  EXPECT_TRUE(l1.received.empty());
}

TEST(Channel, ListenerMustStayOnForWholeFrame) {
  sim::Simulator sim;
  Topology topo = line_topo();
  Channel ch{sim, topo};
  Listener l1;
  l1.listen_on(ch, 1);

  ch.start_tx(0, test_packet(0, 1), Time::microseconds(500));
  // Radio drops mid-frame.
  sim.schedule_at(Time::microseconds(200), [&] { ch.set_listening(1, false); });
  sim.run();
  ASSERT_EQ(l1.received.size(), 1u);
  EXPECT_FALSE(l1.received[0].second);  // reception abandoned
  EXPECT_EQ(ch.delivered(), 0u);
}

TEST(Channel, HiddenTerminalCollisionCorruptsBoth) {
  sim::Simulator sim;
  Topology topo = line_topo();  // 0 and 2 both reach 1, not each other
  Channel ch{sim, topo};
  Listener l1;
  l1.listen_on(ch, 1);

  ch.start_tx(0, test_packet(0, 1), Time::microseconds(500));
  sim.schedule_at(Time::microseconds(100), [&] {
    ch.start_tx(2, test_packet(2, 1), Time::microseconds(500));
  });
  sim.run();

  // Equidistant senders: no capture; the first reception is corrupted.
  ASSERT_EQ(l1.received.size(), 1u);
  EXPECT_FALSE(l1.received[0].second);
  EXPECT_GE(ch.collisions(), 1u);
}

TEST(Channel, CaptureKeepsMuchStrongerFrame) {
  sim::Simulator sim;
  // Node 1 at 10 m from sender 0 and 120 m from sender 2: distance ratio 12
  // >> 1.78, so node 1 captures 0's frame.
  Topology topo{{{0, 0}, {10, 0}, {130, 0}}, 125.0};
  Channel ch{sim, topo};
  Listener l1;
  l1.listen_on(ch, 1);

  ch.start_tx(0, test_packet(0, 1), Time::microseconds(500));
  sim.schedule_at(Time::microseconds(100), [&] {
    ch.start_tx(2, test_packet(2, 1), Time::microseconds(500));
  });
  sim.run();

  ASSERT_GE(l1.received.size(), 1u);
  EXPECT_TRUE(l1.received[0].second);
  EXPECT_EQ(l1.received[0].first.link_src, 0);
}

TEST(Channel, CaptureDisabledMeansAllOverlapsCollide) {
  sim::Simulator sim;
  Topology topo{{{0, 0}, {10, 0}, {130, 0}}, 125.0};
  ChannelParams params;
  params.capture_distance_ratio = 0.0;
  Channel ch{sim, topo, params};
  Listener l1;
  l1.listen_on(ch, 1);

  ch.start_tx(0, test_packet(0, 1), Time::microseconds(500));
  sim.schedule_at(Time::microseconds(100), [&] {
    ch.start_tx(2, test_packet(2, 1), Time::microseconds(500));
  });
  sim.run();
  ASSERT_EQ(l1.received.size(), 1u);
  EXPECT_FALSE(l1.received[0].second);
}

TEST(Channel, SenderCannotHearWhileTransmitting) {
  sim::Simulator sim;
  Topology topo = line_topo();
  Channel ch{sim, topo};
  Listener l0, l1;
  l0.listen_on(ch, 0);
  l1.listen_on(ch, 1);

  ch.start_tx(0, test_packet(0, 1), Time::microseconds(500));
  sim.schedule_at(Time::microseconds(50), [&] {
    ch.start_tx(1, test_packet(1, 0), Time::microseconds(500));
  });
  sim.run();
  // Node 0 was transmitting when 1's frame started arriving: no delivery.
  for (const auto& [p, ok] : l0.received) EXPECT_FALSE(ok);
  // Node 1 started transmitting mid-reception: its reception is corrupted.
  for (const auto& [p, ok] : l1.received) EXPECT_FALSE(ok);
}

TEST(Channel, CarrierSenseTracksArrivals) {
  sim::Simulator sim;
  Topology topo = line_topo();
  Channel ch{sim, topo};
  Listener l1;
  l1.listen_on(ch, 1);

  EXPECT_FALSE(ch.busy(1));
  ch.start_tx(0, test_packet(0, 1), Time::microseconds(500));
  // Busy at the sender immediately; at the receiver after propagation.
  EXPECT_TRUE(ch.busy(0));
  sim.run_until(Time::microseconds(10));
  EXPECT_TRUE(ch.busy(1));
  EXPECT_FALSE(ch.busy(2));  // node 2 neighbors 1, not the sender 0
  sim.run_until(Time::milliseconds(2));
  EXPECT_FALSE(ch.busy(0));
  EXPECT_FALSE(ch.busy(1));
}

TEST(Channel, ActivityNotificationsFire) {
  sim::Simulator sim;
  Topology topo = line_topo();
  Channel ch{sim, topo};
  Listener l1;
  l1.listen_on(ch, 1);
  ch.start_tx(0, test_packet(0, 1), Time::microseconds(500));
  sim.run();
  EXPECT_GE(l1.notifications, 2);  // at least arrival start + end
}

// Batched arrival events (one begin + one end per transmission) must be
// observably identical to the legacy per-neighbor scheduling, including
// under collisions: same deliveries, same collision count, at every node.
TEST(Channel, BatchedArrivalsMatchLegacyScheduling) {
  auto run_mode = [](bool batch) {
    util::Rng rng{99};
    const Topology topo = Topology::uniform_random(12, 260.0, 125.0, rng);
    sim::Simulator sim;
    ChannelParams params;
    params.batch_arrivals = batch;
    Channel ch{sim, topo, params};
    std::vector<Listener> listeners(12);
    for (NodeId n = 0; n < 12; ++n) {
      listeners[static_cast<std::size_t>(n)].listen_on(ch, n);
    }
    // Overlapping transmissions from several senders, including exact ties.
    for (int i = 0; i < 8; ++i) {
      const NodeId src = static_cast<NodeId>(i);
      sim.schedule_at(Time::microseconds(40 * (i / 2)), [&ch, src] {
        ch.start_tx(src, test_packet(src, kNoNode), Time::microseconds(120));
      });
    }
    sim.run();
    std::vector<std::vector<std::pair<NodeId, bool>>> seen;
    for (const auto& l : listeners) {
      std::vector<std::pair<NodeId, bool>> per_node;
      for (const auto& [p, ok] : l.received) per_node.emplace_back(p.link_src, ok);
      seen.push_back(std::move(per_node));
    }
    return std::make_tuple(ch.delivered(), ch.collisions(), seen);
  };
  EXPECT_EQ(run_mode(true), run_mode(false));
}

TEST(Channel, BackToBackFramesBothDeliver) {
  sim::Simulator sim;
  Topology topo = line_topo();
  Channel ch{sim, topo};
  Listener l1;
  l1.listen_on(ch, 1);

  ch.start_tx(0, test_packet(0, 1), Time::microseconds(200));
  sim.schedule_at(Time::microseconds(300), [&] {
    ch.start_tx(0, test_packet(0, 1), Time::microseconds(200));
  });
  sim.run();
  ASSERT_EQ(l1.received.size(), 2u);
  EXPECT_TRUE(l1.received[0].second);
  EXPECT_TRUE(l1.received[1].second);
}

}  // namespace
}  // namespace essat::net
