// Acceptance checks for the city-scale sparse-state refactor: the sparse
// per-link statistics (open-addressed (src,dst) map in the channel) and
// the sparse MAC duplicate table must be *bit-identical* in behavior to
// the legacy dense arrays — same RunMetrics, field for field, on every
// point of a protocol x topology x rate grid. Both storage thresholds are
// forced per run: 0 = always sparse, SIZE_MAX = always dense.
//
// The grid deliberately runs ETX routing over a shadowing channel: ETX
// reads the per-link statistics to pick parents, so a single transposed
// or lost (src,dst) counter changes tree shape and every downstream
// metric; lossy links force retransmissions, so the duplicate table takes
// real hits (a retry of a delivered frame must be suppressed identically
// under both layouts).
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>

#include "src/exp/sweep.h"
#include "src/exp/sweep_runner.h"
#include "src/net/link_model.h"

namespace essat::exp {
namespace {

using util::Time;

harness::ScenarioConfig lossy_etx_base() {
  harness::ScenarioConfig c;
  c.deployment.num_nodes = 12;
  c.deployment.area_m = 250.0;
  c.deployment.range_m = 125.0;
  c.deployment.max_tree_dist_m = 250.0;
  c.workload.base_rate_hz = 1.0;
  c.workload.query_start_window = Time::seconds(1);
  c.setup_duration = Time::seconds(2);
  c.measure_duration = Time::seconds(4);
  c.latency_grace = Time::seconds(1);
  // Gray-zone links + link-quality routing: exercises both sparse
  // structures on their hot paths (see file comment).
  c.channel_model.kind = net::LinkModelKind::kLogNormalShadowing;
  c.routing.policy = "etx";
  c.seed = 11;
  return c;
}

void force_storage(harness::ScenarioConfig& c, std::size_t threshold) {
  c.channel_params.dense_link_stats_below = threshold;
  c.mac_params.dense_dup_table_below = threshold;
}

void expect_runs_identical(const harness::RunMetrics& a,
                           const harness::RunMetrics& b) {
  EXPECT_EQ(a.avg_duty_cycle, b.avg_duty_cycle);  // exact, not NEAR
  EXPECT_EQ(a.avg_latency_s, b.avg_latency_s);
  EXPECT_EQ(a.p95_latency_s, b.p95_latency_s);
  EXPECT_EQ(a.max_latency_s, b.max_latency_s);
  EXPECT_EQ(a.delivery_ratio, b.delivery_ratio);
  EXPECT_EQ(a.epochs_measured, b.epochs_measured);
  EXPECT_EQ(a.reports_sent, b.reports_sent);
  EXPECT_EQ(a.mac_transmissions, b.mac_transmissions);
  EXPECT_EQ(a.mac_send_failures, b.mac_send_failures);
  EXPECT_EQ(a.mac_retx_no_ack, b.mac_retx_no_ack);
  EXPECT_EQ(a.mac_cca_busy_defers, b.mac_cca_busy_defers);
  EXPECT_EQ(a.channel_collisions, b.channel_collisions);
  EXPECT_EQ(a.channel_delivered, b.channel_delivered);
  EXPECT_EQ(a.phase_updates, b.phase_updates);
  EXPECT_EQ(a.tree_members, b.tree_members);
  EXPECT_EQ(a.max_rank, b.max_rank);
}

TEST(SparseDenseEquivalence, IdenticalMetricsOnFullGrid) {
  auto run_grid = [](std::size_t threshold) {
    harness::ScenarioConfig base = lossy_etx_base();
    force_storage(base, threshold);
    SweepSpec spec(base);
    spec.runs(1)
        .axis_protocol({harness::Protocol::kDtsSs, harness::Protocol::kPsm})
        .axis_topology({net::TopologyKind::kUniform, net::TopologyKind::kGrid,
                        net::TopologyKind::kClustered,
                        net::TopologyKind::kCorridor})
        .axis_rate({1.0, 2.0});
    SweepRunner::Options opts;
    opts.jobs = 4;
    return SweepRunner(opts).run(spec);
  };
  const auto sparse = run_grid(0);
  const auto dense = run_grid(SIZE_MAX);
  ASSERT_EQ(sparse.size(), 16u);
  ASSERT_EQ(dense.size(), 16u);
  for (std::size_t p = 0; p < sparse.size(); ++p) {
    SCOPED_TRACE(sparse[p].point.labels[0] + " / " + sparse[p].point.labels[1] +
                 " / " + sparse[p].point.labels[2]);
    expect_runs_identical(sparse[p].metrics.last_run,
                          dense[p].metrics.last_run);
  }
}

// The default threshold (1024) must itself be equivalent to both forced
// modes on a default-sized run — i.e. the threshold only selects storage,
// never behavior. Uses maintenance + failures so dup-table state is also
// read on the repair path.
TEST(SparseDenseEquivalence, DefaultThresholdMatchesForcedModes) {
  auto run_one = [](std::size_t threshold) {
    harness::ScenarioConfig c = lossy_etx_base();
    force_storage(c, threshold);
    c.enable_maintenance = true;
    c.failures = {{3, Time::seconds(1)}};
    return harness::run_scenario(c);
  };
  const harness::RunMetrics sparse = run_one(0);
  const harness::RunMetrics dflt = run_one(1024);
  const harness::RunMetrics dense = run_one(SIZE_MAX);
  expect_runs_identical(sparse, dflt);
  expect_runs_identical(dflt, dense);
}

}  // namespace
}  // namespace essat::exp
