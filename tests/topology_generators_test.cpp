#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "src/net/topology.h"
#include "src/routing/tree.h"

namespace essat::net {
namespace {

void expect_symmetric(const Topology& t) {
  for (NodeId a = 0; a < static_cast<NodeId>(t.num_nodes()); ++a) {
    for (NodeId b : t.neighbors(a)) {
      const auto& back = t.neighbors(b);
      EXPECT_NE(std::find(back.begin(), back.end(), a), back.end())
          << "asymmetric edge " << a << " -> " << b;
    }
  }
}

void expect_in_box(const Topology& t, double max_x, double max_y) {
  for (NodeId n = 0; n < static_cast<NodeId>(t.num_nodes()); ++n) {
    EXPECT_GE(t.position(n).x, 0.0);
    EXPECT_LE(t.position(n).x, max_x);
    EXPECT_GE(t.position(n).y, 0.0);
    EXPECT_LE(t.position(n).y, max_y);
  }
}

TEST(TopologyGenerators, GridAreaExactCountSpanAndConnectivity) {
  // 10 nodes -> 4 columns x 3 rows over 200 m: 66.7 m columns, 100 m rows,
  // both within the 125 m range.
  const Topology t = Topology::grid_area(10, 200.0, 125.0);
  EXPECT_EQ(t.num_nodes(), 10u);
  expect_in_box(t, 200.0, 200.0);
  expect_symmetric(t);
  EXPECT_TRUE(t.connected());
}

TEST(TopologyGenerators, GridAreaPerfectSquareMatchesGrid) {
  // 9 nodes over 200 m: a 3x3 lattice with 100 m spacing.
  const Topology t = Topology::grid_area(9, 200.0, 125.0);
  EXPECT_EQ(t.num_nodes(), 9u);
  EXPECT_EQ(t.neighbors(4).size(), 4u);  // centre: 4 axis neighbors
  EXPECT_DOUBLE_EQ(t.position(8).x, 200.0);
  EXPECT_DOUBLE_EQ(t.position(8).y, 200.0);
}

TEST(TopologyGenerators, ClusteredStaysInAreaSymmetricDeterministic) {
  util::Rng a{17};
  util::Rng b{17};
  const Topology ta = Topology::clustered(60, 500.0, 125.0, 4, 40.0, a);
  const Topology tb = Topology::clustered(60, 500.0, 125.0, 4, 40.0, b);
  EXPECT_EQ(ta.num_nodes(), 60u);
  expect_in_box(ta, 500.0, 500.0);
  expect_symmetric(ta);
  for (NodeId n = 0; n < 60; ++n) EXPECT_EQ(ta.position(n), tb.position(n));
}

TEST(TopologyGenerators, ClusteredIsConnectedUnderDefaultKnobs) {
  // The default ring layout (centres at radius area/4, sigma 40) must
  // bridge adjacent clusters for paper-scale densities; checked across a
  // handful of seeds since the generators are deterministic per seed.
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    util::Rng rng{seed};
    const Topology t = Topology::clustered(80, 500.0, 125.0, 4, 40.0, rng);
    EXPECT_TRUE(t.connected()) << "seed " << seed;
  }
}

TEST(TopologyGenerators, CorridorShapeAndDepth) {
  util::Rng rng{23};
  const Topology t = Topology::corridor(60, 1000.0, 50.0, 125.0, rng);
  EXPECT_EQ(t.num_nodes(), 60u);
  expect_in_box(t, 1000.0, 50.0);
  expect_symmetric(t);
  EXPECT_TRUE(t.connected());
  // The elongated shape must produce a deeper tree than a square area.
  const NodeId root = t.nearest(Position{500.0, 25.0});
  const routing::Tree tree = routing::build_bfs_tree(t, root, 1e9);
  EXPECT_GE(tree.max_rank(), 3);
}

TEST(TopologyGenerators, DeploymentSpecBuildsEveryKindDeterministically) {
  for (TopologyKind kind :
       {TopologyKind::kUniform, TopologyKind::kGrid, TopologyKind::kLine,
        TopologyKind::kClustered, TopologyKind::kCorridor}) {
    SCOPED_TRACE(topology_kind_name(kind));
    DeploymentSpec spec;
    spec.kind = kind;
    spec.num_nodes = 24;
    util::Rng a{5};
    util::Rng b{5};
    const Topology ta = spec.build(a);
    const Topology tb = spec.build(b);
    ASSERT_EQ(ta.num_nodes(), 24u);
    for (NodeId n = 0; n < 24; ++n) EXPECT_EQ(ta.position(n), tb.position(n));
    // The root point is inside the deployed region and nearest() resolves.
    EXPECT_NE(ta.nearest(spec.centre()), kNoNode);
  }
}

TEST(TopologyGenerators, LineSpecSpansTheArea) {
  DeploymentSpec spec;
  spec.kind = TopologyKind::kLine;
  spec.num_nodes = 11;
  spec.area_m = 500.0;
  util::Rng rng{1};
  const Topology t = spec.build(rng);
  EXPECT_DOUBLE_EQ(t.position(0).x, 0.0);
  EXPECT_DOUBLE_EQ(t.position(10).x, 500.0);
  EXPECT_TRUE(t.connected());  // 50 m spacing << 125 m range
}

TEST(TopologyKindNames, RoundTripAndFailLoudly) {
  for (TopologyKind kind :
       {TopologyKind::kUniform, TopologyKind::kGrid, TopologyKind::kLine,
        TopologyKind::kClustered, TopologyKind::kCorridor}) {
    EXPECT_EQ(topology_kind_from_name(topology_kind_name(kind)), kind);
  }
  EXPECT_THROW(topology_kind_from_name("moebius"), std::invalid_argument);
  EXPECT_THROW(topology_kind_name(static_cast<TopologyKind>(99)),
               std::invalid_argument);
}

}  // namespace
}  // namespace essat::net
