#include <gtest/gtest.h>

#include "src/net/topology.h"

namespace essat::net {
namespace {

TEST(Position, Distance) {
  EXPECT_DOUBLE_EQ(distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(distance({1, 1}, {1, 1}), 0.0);
}

TEST(Topology, RejectsNonPositiveRange) {
  EXPECT_THROW(Topology({{0, 0}}, 0.0), std::invalid_argument);
  EXPECT_THROW(Topology({{0, 0}}, -5.0), std::invalid_argument);
}

TEST(Topology, NeighborsWithinRange) {
  Topology t{{{0, 0}, {100, 0}, {300, 0}}, 125.0};
  EXPECT_TRUE(t.in_range(0, 1));
  EXPECT_FALSE(t.in_range(0, 2));
  EXPECT_FALSE(t.in_range(1, 2));  // 200 m apart
  EXPECT_EQ(t.neighbors(0).size(), 1u);
  EXPECT_EQ(t.neighbors(0)[0], 1);
  EXPECT_TRUE(t.neighbors(2).empty());
}

TEST(Topology, NeighborsSymmetric) {
  util::Rng rng{7};
  const Topology t = Topology::uniform_random(40, 500.0, 125.0, rng);
  for (NodeId a = 0; a < 40; ++a) {
    for (NodeId b : t.neighbors(a)) {
      const auto& back = t.neighbors(b);
      EXPECT_NE(std::find(back.begin(), back.end(), a), back.end());
    }
  }
}

TEST(Topology, RangeBoundaryIsInclusive) {
  Topology t{{{0, 0}, {125, 0}}, 125.0};
  EXPECT_TRUE(t.in_range(0, 1));
}

TEST(Topology, NodeNotInRangeOfItself) {
  Topology t{{{0, 0}, {10, 0}}, 125.0};
  EXPECT_FALSE(t.in_range(0, 0));
}

TEST(Topology, UniformRandomStaysInArea) {
  util::Rng rng{3};
  const Topology t = Topology::uniform_random(80, 500.0, 125.0, rng);
  EXPECT_EQ(t.num_nodes(), 80u);
  for (NodeId n = 0; n < 80; ++n) {
    EXPECT_GE(t.position(n).x, 0.0);
    EXPECT_LT(t.position(n).x, 500.0);
    EXPECT_GE(t.position(n).y, 0.0);
    EXPECT_LT(t.position(n).y, 500.0);
  }
}

TEST(Topology, UniformRandomDeterministicPerSeed) {
  util::Rng a{11};
  util::Rng b{11};
  const Topology ta = Topology::uniform_random(20, 500.0, 125.0, a);
  const Topology tb = Topology::uniform_random(20, 500.0, 125.0, b);
  for (NodeId n = 0; n < 20; ++n) EXPECT_EQ(ta.position(n), tb.position(n));
}

TEST(Topology, LinePlacement) {
  const Topology t = Topology::line(5, 100.0, 125.0);
  EXPECT_EQ(t.num_nodes(), 5u);
  EXPECT_DOUBLE_EQ(t.position(3).x, 300.0);
  // Chain connectivity only: each interior node has exactly 2 neighbors.
  EXPECT_EQ(t.neighbors(0).size(), 1u);
  EXPECT_EQ(t.neighbors(2).size(), 2u);
}

TEST(Topology, GridPlacement) {
  const Topology t = Topology::grid(3, 100.0, 125.0);
  EXPECT_EQ(t.num_nodes(), 9u);
  // Centre of a 3x3 grid with 100 m spacing and 125 m range: 4 axis
  // neighbors (diagonals are ~141 m away).
  EXPECT_EQ(t.neighbors(4).size(), 4u);
}

TEST(Topology, NearestFindsClosestNode) {
  Topology t{{{0, 0}, {250, 250}, {499, 499}}, 125.0};
  EXPECT_EQ(t.nearest({240, 260}), 1);
  EXPECT_EQ(t.nearest({0, 10}), 0);
}

TEST(Topology, ConnectedDetection) {
  EXPECT_TRUE(Topology::line(5, 100.0, 125.0).connected());
  Topology split{{{0, 0}, {100, 0}, {400, 0}, {500, 0}}, 125.0};
  EXPECT_FALSE(split.connected());
  EXPECT_TRUE(Topology({{7, 7}}, 125.0).connected());
}

}  // namespace
}  // namespace essat::net
