#include <gtest/gtest.h>

#include <map>

#include "src/core/dts.h"
#include "src/routing/tree.h"

namespace essat::core {
namespace {

using util::Time;

struct RecordingSink final : query::ExpectedTimeSink {
  std::map<net::QueryId, Time> next_send;
  std::map<std::pair<net::QueryId, net::NodeId>, Time> next_recv;
  void update_next_send(net::QueryId q, Time t) override { next_send[q] = t; }
  void update_next_receive(net::QueryId q, net::NodeId c, Time t) override {
    next_recv[{q, c}] = t;
  }
  void erase_child(net::QueryId q, net::NodeId c) override { next_recv.erase({q, c}); }
  void erase_query(net::QueryId q) override { next_send.erase(q); }
};

// Chain 0-1-2-3-4; node 2 (child 3) is the unit under test.
struct DtsFixture : ::testing::Test {
  DtsFixture()
      : topo{net::Topology::line(5, 100.0, 125.0)},
        tree{routing::build_bfs_tree(topo, 0, 1000.0)},
        shaper{DtsParams{.t_to = Time::milliseconds(50)}} {
    shaper.set_context(query::ShaperContext{&tree, 2, &sink});
    q.id = 0;
    q.period = Time::seconds(1);
    q.phase = Time::seconds(10);
    shaper.register_query(q);
  }

  net::Topology topo;
  routing::Tree tree;
  RecordingSink sink;
  DtsShaper shaper;
  query::Query q;
};

TEST_F(DtsFixture, InitialTimesEqualPhase) {
  // s(0) = r(0) = φ (§4.2.3).
  EXPECT_EQ(sink.next_send[0], Time::seconds(10));
  EXPECT_EQ((sink.next_recv[std::make_pair<net::QueryId, net::NodeId>(0, 3)]), Time::seconds(10));
  EXPECT_EQ(shaper.expected_send(q, 0), Time::seconds(10));
  EXPECT_EQ(shaper.expected_send(q, 2), Time::seconds(12));
}

TEST_F(DtsFixture, OnTimeSendKeepsPhaseAndStaysSilent) {
  const auto plan = shaper.plan_send(q, 0, Time::seconds(9));
  EXPECT_EQ(plan.send_at, Time::seconds(10));  // buffered to s(0)
  EXPECT_FALSE(plan.phase_update.has_value()); // no shift, no traffic
  shaper.on_report_sent(q, 0, plan.send_at);
  EXPECT_EQ(sink.next_send[0], Time::seconds(11));  // s(1) = s(0) + P
  EXPECT_EQ(shaper.phase_shifts(), 0u);
}

TEST_F(DtsFixture, LateSendShiftsPhaseAndAdvertises) {
  const Time late = Time::seconds(10) + Time::milliseconds(80);
  const auto plan = shaper.plan_send(q, 0, late);
  EXPECT_EQ(plan.send_at, late);  // sent immediately
  ASSERT_TRUE(plan.phase_update.has_value());
  EXPECT_EQ(*plan.phase_update, late + q.period);  // s(k+1) = t + P
  shaper.on_report_sent(q, 0, plan.send_at);
  EXPECT_EQ(shaper.expected_send(q, 1), late + q.period);
  EXPECT_EQ(shaper.phase_shifts(), 1u);
  EXPECT_EQ(shaper.phase_updates_sent(), 1u);
}

TEST_F(DtsFixture, PhaseShiftsOnlyDelayNeverAdvance) {
  // Shift at epoch 0; epoch 1 ready early: still sent at the shifted s(1).
  const Time late = Time::seconds(10) + Time::milliseconds(200);
  shaper.on_report_sent(q, 0, late);
  const auto plan = shaper.plan_send(q, 1, Time::seconds(11));
  EXPECT_EQ(plan.send_at, late + q.period);
  EXPECT_FALSE(plan.phase_update.has_value());
}

TEST_F(DtsFixture, ReceiveWithoutUpdateAdvancesByPeriod) {
  shaper.on_report_received(q, 0, 3, std::nullopt);
  EXPECT_EQ((sink.next_recv[std::make_pair<net::QueryId, net::NodeId>(0, 3)]), Time::seconds(11));  // r(1) = r(0) + P
}

TEST_F(DtsFixture, ReceiveWithUpdateAdoptsChildPhase) {
  const Time advertised = Time::seconds(11) + Time::milliseconds(150);
  shaper.on_report_received(q, 0, 3, advertised);
  EXPECT_EQ((sink.next_recv[std::make_pair<net::QueryId, net::NodeId>(0, 3)]), advertised);
  EXPECT_EQ(shaper.expected_receive(q, 1, 3), advertised);
  EXPECT_EQ(shaper.expected_receive(q, 2, 3), advertised + q.period);
}

TEST_F(DtsFixture, TimeoutAdvancesReceiveExpectation) {
  shaper.on_child_timeout(q, 0, 3);
  EXPECT_EQ((sink.next_recv[std::make_pair<net::QueryId, net::NodeId>(0, 3)]), Time::seconds(11));
  // Duplicate timeout for the same epoch is a no-op.
  shaper.on_child_timeout(q, 0, 3);
  EXPECT_EQ((sink.next_recv[std::make_pair<net::QueryId, net::NodeId>(0, 3)]), Time::seconds(11));
}

TEST_F(DtsFixture, LateReportAfterTimeoutStillAppliesUpdate) {
  // Deadline fired for epoch 0 (r advanced to epoch 1), then the late
  // epoch-0 report arrives carrying the child's s(1): adopt it.
  shaper.on_child_timeout(q, 0, 3);
  const Time advertised = Time::seconds(11) + Time::milliseconds(300);
  shaper.on_report_received(q, 0, 3, advertised);
  EXPECT_EQ((sink.next_recv[std::make_pair<net::QueryId, net::NodeId>(0, 3)]), advertised);
}

TEST_F(DtsFixture, StaleDuplicateIgnored) {
  shaper.on_report_received(q, 1, 3, std::nullopt);  // jump to epoch 2
  const Time r2 = (sink.next_recv[std::make_pair<net::QueryId, net::NodeId>(0, 3)]);
  shaper.on_report_received(q, 0, 3, std::nullopt);  // stale epoch 0
  EXPECT_EQ((sink.next_recv[std::make_pair<net::QueryId, net::NodeId>(0, 3)]), r2);
}

TEST_F(DtsFixture, EpochGapExtrapolatesByWholePeriods) {
  // Child silent through epochs 0-2 (timeouts), then delivers epoch 3.
  shaper.on_child_timeout(q, 0, 3);
  shaper.on_child_timeout(q, 1, 3);
  shaper.on_child_timeout(q, 2, 3);
  EXPECT_EQ((sink.next_recv[std::make_pair<net::QueryId, net::NodeId>(0, 3)]), Time::seconds(13));
  shaper.on_report_received(q, 3, 3, std::nullopt);
  EXPECT_EQ((sink.next_recv[std::make_pair<net::QueryId, net::NodeId>(0, 3)]), Time::seconds(14));
}

TEST_F(DtsFixture, DeadlineIsMaxChildExpectationPlusTto) {
  // Single child: deadline = r(k,c) + t_TO.
  EXPECT_EQ(shaper.aggregation_deadline(q, 0),
            Time::seconds(10) + Time::milliseconds(50));
  const Time advertised = Time::seconds(11) + Time::milliseconds(400);
  shaper.on_report_received(q, 0, 3, advertised);
  EXPECT_EQ(shaper.aggregation_deadline(q, 1), advertised + Time::milliseconds(50));
}

TEST_F(DtsFixture, PhaseRequestForcesAdvertisement) {
  // §4.3: "the receiver requests a phase update from the sender. The sender
  // then piggybacks the expected send time in the next data report."
  shaper.on_phase_request(q.id);
  const auto plan = shaper.plan_send(q, 0, Time::seconds(9));  // on time!
  ASSERT_TRUE(plan.phase_update.has_value());
  EXPECT_EQ(*plan.phase_update, Time::seconds(10) + q.period);
}

TEST_F(DtsFixture, ParentChangeForcesAdvertisement) {
  // §4.3: one phase update on the first report to the new parent.
  shaper.on_parent_changed(q);
  const auto plan = shaper.plan_send(q, 0, Time::seconds(9));
  EXPECT_TRUE(plan.phase_update.has_value());
  shaper.on_report_sent(q, 0, plan.send_at);
  // Subsequent on-time sends are silent again.
  const auto plan2 = shaper.plan_send(q, 1, Time::seconds(10));
  EXPECT_FALSE(plan2.phase_update.has_value());
}

TEST_F(DtsFixture, WantsPhaseRequestOnLoss) {
  EXPECT_TRUE(shaper.wants_phase_request_on_loss());
}

TEST_F(DtsFixture, ChildAddedExpectsAtOwnPace) {
  // After our own phase drifted, a newly attached child is expected at our
  // send pace until its first advertised report.
  shaper.on_report_sent(q, 0, Time::seconds(10) + Time::milliseconds(500));
  shaper.on_child_added(q, 1);
  EXPECT_EQ((sink.next_recv[std::make_pair<net::QueryId, net::NodeId>(0, 1)]), Time::seconds(11) + Time::milliseconds(500));
}

TEST_F(DtsFixture, ChildRemovedDropsState) {
  shaper.on_child_removed(q, 3);
  EXPECT_EQ((sink.next_recv.count(std::make_pair<net::QueryId, net::NodeId>(0, 3))), 0u);
  // Further events about the removed child are ignored.
  shaper.on_report_received(q, 5, 3, Time::seconds(20));
  EXPECT_EQ((sink.next_recv.count(std::make_pair<net::QueryId, net::NodeId>(0, 3))), 0u);
}

TEST_F(DtsFixture, UnknownChildReceptionIgnored) {
  shaper.on_report_received(q, 0, 99, Time::seconds(42));
  EXPECT_EQ((sink.next_recv.count(std::make_pair<net::QueryId, net::NodeId>(0, 99))), 0u);
}

}  // namespace
}  // namespace essat::core
