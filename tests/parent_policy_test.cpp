#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "src/net/channel.h"
#include "src/net/link_model.h"
#include "src/routing/link_estimator.h"
#include "src/routing/parent_policy.h"
#include "src/routing/repair.h"
#include "src/routing/tree.h"
#include "src/sim/simulator.h"

namespace essat::routing {
namespace {

using util::Time;

// ------------------------------------------------------------- registry

TEST(ParentPolicyRegistry, BuiltinsRegisteredAndListed) {
  auto& reg = ParentPolicyRegistry::instance();
  EXPECT_TRUE(reg.contains("min-hop"));
  EXPECT_TRUE(reg.contains("etx"));
  const auto names = reg.names();
  EXPECT_NE(std::find(names.begin(), names.end(), "min-hop"), names.end());
}

TEST(ParentPolicyRegistry, UnknownKeyFailsLoudlyListingKnown) {
  try {
    ParentPolicyRegistry::instance().create("steiner", PolicyContext{});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("steiner"), std::string::npos);
    EXPECT_NE(msg.find("min-hop"), std::string::npos);
  }
}

TEST(ParentPolicyRegistry, DuplicateRegistrationThrows) {
  EXPECT_THROW(ParentPolicyRegistry::instance().add(
                   "min-hop", [](const PolicyContext&) {
                     return std::unique_ptr<ParentPolicy>{};
                   }),
               std::invalid_argument);
}

TEST(ParentPolicyRegistry, EtxRequiresEstimator) {
  EXPECT_THROW(ParentPolicyRegistry::instance().create("etx", PolicyContext{}),
               std::invalid_argument);
}

TEST(RoutingSpec, BuildsPolicyOrLegacySentinel) {
  RoutingSpec spec;
  EXPECT_EQ(spec.label(), "min-hop");
  auto min_hop = spec.build(PolicyContext{});
  ASSERT_NE(min_hop, nullptr);
  EXPECT_STREQ(min_hop->name(), "min-hop");

  spec.policy = "legacy";
  EXPECT_EQ(spec.build(PolicyContext{}), nullptr);
}

// -------------------------------------------- central build equivalence

TEST(PolicyTree, MinHopIdenticalToBfsOnRandomTopologies) {
  MinHopPolicy min_hop;
  util::Rng rng{21};
  for (int trial = 0; trial < 12; ++trial) {
    const net::Topology topo =
        net::Topology::uniform_random(40 + trial * 10, 400.0, 125.0, rng);
    const net::NodeId root = topo.nearest(net::Position{200.0, 200.0});
    const Tree bfs = build_bfs_tree(topo, root, 300.0);
    const Tree policy = build_policy_tree(topo, root, 300.0, &min_hop);
    ASSERT_EQ(policy.member_count(), bfs.member_count()) << "trial " << trial;
    for (net::NodeId n : bfs.members()) {
      EXPECT_EQ(policy.is_member(n), bfs.is_member(n));
      EXPECT_EQ(policy.parent(n), bfs.parent(n)) << "node " << n;
      EXPECT_EQ(policy.level(n), bfs.level(n)) << "node " << n;
      EXPECT_EQ(policy.rank(n), bfs.rank(n)) << "node " << n;
      EXPECT_EQ(policy.children(n), bfs.children(n)) << "node " << n;
    }
  }
}

TEST(PolicyTree, NullPolicyDelegatesToBfs) {
  const net::Topology topo = net::Topology::line(5, 100.0, 125.0);
  const Tree a = build_policy_tree(topo, 0, 10000.0, nullptr);
  const Tree b = build_bfs_tree(topo, 0, 10000.0);
  EXPECT_EQ(a.member_count(), b.member_count());
  for (net::NodeId n : b.members()) EXPECT_EQ(a.parent(n), b.parent(n));
}

// ------------------------------------------------------- link estimator

// A scriptable model with a fixed expected PRR per link.
class FixedPrr : public net::LinkModel {
 public:
  explicit FixedPrr(double prr) : prr_{prr} {}
  bool deliver(net::NodeId, net::NodeId, double) override { return true; }
  const char* name() const override { return "fixed"; }
  double expected_prr(net::NodeId, net::NodeId, double) const override {
    return prr_;
  }

 private:
  double prr_;
};

TEST(LinkEstimator, NoModelMeansLosslessPrior) {
  const net::Topology topo = net::Topology::line(2, 100.0, 125.0);
  sim::Simulator sim;
  net::Channel ch{sim, topo};
  const LinkEstimator est{ch, topo};
  EXPECT_DOUBLE_EQ(est.prr(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(est.etx(0, 1), 1.0);
}

TEST(LinkEstimator, UsesModelPriorBeforeTraffic) {
  const net::Topology topo = net::Topology::line(2, 100.0, 125.0);
  sim::Simulator sim;
  net::Channel ch{sim, topo};
  ch.set_link_model(std::make_unique<FixedPrr>(0.5));
  const LinkEstimator est{ch, topo};
  EXPECT_DOUBLE_EQ(est.prr(0, 1), 0.5);
  EXPECT_DOUBLE_EQ(est.etx(0, 1), 4.0);  // 1 / (0.5 * 0.5)
}

TEST(LinkEstimator, ObservedLossesPullEstimateBelowPrior) {
  // Model claims PRR 1 but drops everything on 0 -> 1: after enough frames
  // the observed statistics dominate the (wrong) prior.
  class DropForward : public net::LinkModel {
   public:
    bool deliver(net::NodeId src, net::NodeId dst, double) override {
      return !(src == 0 && dst == 1);
    }
    const char* name() const override { return "drop-fwd"; }
  };
  const net::Topology topo = net::Topology::line(2, 100.0, 125.0);
  sim::Simulator sim;
  net::Channel ch{sim, topo};
  ch.set_link_model(std::make_unique<DropForward>());
  for (int i = 0; i < 100; ++i) {
    sim.schedule_at(Time::milliseconds(2 * i), [&ch] {
      ch.start_tx(0, net::make_data_packet(0, 1, net::DataHeader{}),
                  Time::microseconds(400));
    });
  }
  sim.run();
  EXPECT_EQ(ch.frames_on(0, 1), 100u);
  EXPECT_EQ(ch.dropped_by_model(0, 1), 100u);

  EtxParams params;
  params.prior_weight = 8.0;
  params.min_prr = 0.05;
  const LinkEstimator est{ch, topo, params};
  // (8 * 1 + 0) / (8 + 100) ~= 0.074.
  EXPECT_NEAR(est.prr(0, 1), 8.0 / 108.0, 1e-12);
  EXPECT_DOUBLE_EQ(est.prr(1, 0), 1.0);  // reverse direction saw no frames
}

TEST(LinkEstimator, MinPrrFloorsEtx) {
  const net::Topology topo = net::Topology::line(2, 100.0, 125.0);
  sim::Simulator sim;
  net::Channel ch{sim, topo};
  ch.set_link_model(std::make_unique<FixedPrr>(0.0));
  EtxParams params;
  params.min_prr = 0.1;
  const LinkEstimator est{ch, topo, params};
  EXPECT_DOUBLE_EQ(est.prr(0, 1), 0.1);
  EXPECT_DOUBLE_EQ(est.etx(0, 1), 100.0);
}

// --------------------------------------------------- expected_prr priors

TEST(ExpectedPrr, UnitDiscAndScaledAndGilbert) {
  net::UnitDiscModel unit;
  EXPECT_DOUBLE_EQ(unit.expected_prr(0, 1, 50.0), 1.0);

  net::PrrScaledModel scaled{std::make_unique<net::UnitDiscModel>(), 0.8,
                             util::Rng{1}};
  EXPECT_DOUBLE_EQ(scaled.expected_prr(0, 1, 50.0), 0.8);

  net::GilbertElliottParams gp;
  gp.p_good_to_bad = 0.1;
  gp.p_bad_to_good = 0.3;
  gp.prr_good = 1.0;
  gp.prr_bad = 0.2;
  net::GilbertElliottModel ge{gp, nullptr, util::Rng{1}};
  // Stationary bad = 0.1 / 0.4 = 0.25; expected = 0.75 * 1 + 0.25 * 0.2.
  EXPECT_NEAR(ge.expected_prr(0, 1, 50.0), 0.8, 1e-12);

  net::ShadowingParams sp;
  sp.shadowing_sigma_db = 0.0;
  net::LogNormalShadowingModel shadow{sp, 125.0, util::Rng{1}};
  EXPECT_DOUBLE_EQ(shadow.expected_prr(0, 1, 60.0), shadow.link_prr(0, 1, 60.0));
}

// ------------------------------------------------------------ etx policy

// Three nodes on a line: 0 (root) -- 1 -- 2, all mutually in range, but the
// long 0<->2 link has terrible PRR. Min-hop attaches 2 directly to the
// root; ETX detours through 1.
struct GrayZoneWorld {
  GrayZoneWorld()
      : topo{{net::Position{0.0, 0.0}, net::Position{60.0, 0.0},
              net::Position{120.0, 0.0}},
             125.0},
        channel{sim, topo} {
    auto model = std::make_unique<DistancePrr>();
    channel.set_link_model(std::move(model));
  }

  // PRR 1 for hops <= 65 m, 0.2 beyond.
  class DistancePrr : public net::LinkModel {
   public:
    bool deliver(net::NodeId, net::NodeId, double d) override { return d <= 65.0; }
    const char* name() const override { return "distance-prr"; }
    double expected_prr(net::NodeId, net::NodeId, double d) const override {
      return d <= 65.0 ? 1.0 : 0.2;
    }
  };

  sim::Simulator sim;
  net::Topology topo;
  net::Channel channel;
};

TEST(EtxPolicy, RoutesAroundGrayZoneLink) {
  GrayZoneWorld w;
  const LinkEstimator est{w.channel, w.topo};
  EtxPolicy etx{est, EtxParams{}};
  MinHopPolicy min_hop;

  const Tree greedy = build_policy_tree(w.topo, 0, 10000.0, &min_hop);
  EXPECT_EQ(greedy.parent(2), 0);  // one marginal hop
  EXPECT_EQ(greedy.level(2), 1);

  const Tree careful = build_policy_tree(w.topo, 0, 10000.0, &etx);
  EXPECT_EQ(careful.parent(2), 1);  // two reliable hops
  EXPECT_EQ(careful.parent(1), 0);
  EXPECT_EQ(careful.level(2), 2);
  // Path cost through 1: 2 good hops = 2; direct: 1 / 0.04 = 25.
  EXPECT_NEAR(etx.path_cost(careful, 2), 2.0, 1e-9);
}

TEST(EtxPolicy, RepairPrefersReliableParent) {
  GrayZoneWorld w;
  const LinkEstimator est{w.channel, w.topo};
  EtxPolicy etx{est, EtxParams{}};

  // Tree where 2 hangs off the root directly; declare that link broken.
  Tree tree{3};
  tree.set_root(0);
  tree.add_node(1, 0);
  tree.add_node(2, 0);
  tree.recompute_ranks();

  RepairService repair{w.topo, tree};
  repair.set_policy(&etx);
  ASSERT_TRUE(repair.reparent(2, nullptr));
  EXPECT_EQ(tree.parent(2), 1);  // not the gray-zone root link
  EXPECT_EQ(tree.level(2), 2);
}

TEST(EtxPolicy, RepairWithoutPolicyKeepsLegacyLowestLevel) {
  GrayZoneWorld w;
  Tree tree{3};
  tree.set_root(0);
  tree.add_node(1, 0);
  tree.add_node(2, 0);
  tree.recompute_ranks();

  RepairService repair{w.topo, tree};  // no policy installed
  ASSERT_TRUE(repair.reparent(2, nullptr));
  // Legacy rule: lowest level wins; the only candidate excluding the old
  // parent is node 1 either way — but level/limits go through the legacy
  // comparison path.
  EXPECT_EQ(tree.parent(2), 1);
}

TEST(EtxPolicy, LinkCostIsCapped) {
  GrayZoneWorld w;
  EtxParams ep;
  ep.min_prr = 0.01;
  const LinkEstimator est{w.channel, w.topo, ep};
  EtxParams params;
  params.max_link_etx = 16.0;
  EtxPolicy etx{est, params};
  // Raw ETX of the long link would be 25; the cap clamps it.
  EXPECT_DOUBLE_EQ(etx.link_cost(2, 0), 16.0);
}

}  // namespace
}  // namespace essat::routing
