#include <gtest/gtest.h>

#include "src/routing/tree.h"

namespace essat::routing {
namespace {

// Chain: 0 - 1 - 2 - 3 - 4 (100 m spacing, 125 m range).
net::Topology chain() { return net::Topology::line(5, 100.0, 125.0); }

TEST(Tree, BfsChainLevelsAndRanks) {
  const Tree t = build_bfs_tree(chain(), 0, 1000.0);
  EXPECT_EQ(t.root(), 0);
  for (net::NodeId n = 0; n < 5; ++n) {
    EXPECT_TRUE(t.is_member(n));
    EXPECT_EQ(t.level(n), n);
  }
  // Rank = max hop count to any descendant; on a chain rank(n) = 4 - n.
  for (net::NodeId n = 0; n < 5; ++n) EXPECT_EQ(t.rank(n), 4 - n);
  EXPECT_EQ(t.max_rank(), 4);
  EXPECT_TRUE(t.is_leaf(4));
  EXPECT_FALSE(t.is_leaf(0));
}

TEST(Tree, BfsRespectsDistanceLimit) {
  // 300 m from node 0 excludes nodes at 400 m.
  const Tree t = build_bfs_tree(chain(), 0, 300.0);
  EXPECT_TRUE(t.is_member(3));   // at 300 m exactly
  EXPECT_FALSE(t.is_member(4));  // at 400 m
  EXPECT_EQ(t.member_count(), 4u);
}

TEST(Tree, BfsMinHopLevels) {
  // Star-ish: root 0 in the middle of a grid; levels must equal hop counts.
  const net::Topology topo = net::Topology::grid(5, 100.0, 125.0);
  const net::NodeId root = topo.nearest({200.0, 200.0});
  const Tree t = build_bfs_tree(topo, root, 10000.0);
  for (net::NodeId n : t.members()) {
    if (n == root) continue;
    EXPECT_EQ(t.level(n), t.level(t.parent(n)) + 1);
    EXPECT_TRUE(topo.in_range(n, t.parent(n)));
  }
  // Corner of the 5x5 grid is 4 axis-hops from the centre.
  EXPECT_EQ(t.level(0), 4);
}

TEST(Tree, ParentChildConsistency) {
  const Tree t = build_bfs_tree(chain(), 0, 1000.0);
  for (net::NodeId n : t.members()) {
    for (net::NodeId c : t.children(n)) {
      EXPECT_EQ(t.parent(c), n);
    }
  }
  EXPECT_EQ(t.parent(0), net::kNoNode);
}

TEST(Tree, AddNodeValidation) {
  Tree t{4};
  t.set_root(0);
  t.add_node(1, 0);
  EXPECT_THROW(t.add_node(2, 3), std::logic_error);  // parent not a member
  EXPECT_THROW(t.add_node(1, 0), std::logic_error);  // already a member
  EXPECT_EQ(t.level(1), 1);
}

TEST(Tree, SetRootTwiceThrows) {
  Tree t{2};
  t.set_root(0);
  EXPECT_THROW(t.set_root(1), std::logic_error);
}

TEST(Tree, InSubtree) {
  const Tree t = build_bfs_tree(chain(), 0, 1000.0);
  EXPECT_TRUE(t.in_subtree(1, 3));
  EXPECT_TRUE(t.in_subtree(2, 2));
  EXPECT_FALSE(t.in_subtree(3, 1));
}

TEST(Tree, ChangeParentRelevelsSubtree) {
  // Y topology: 0 at origin; 1 and 2 both adjacent to 0; 3 under 1 but also
  // adjacent to 2.
  net::Topology topo{{{0, 0}, {100, 0}, {0, 100}, {100, 100}}, 125.0};
  Tree t{4};
  t.set_root(0);
  t.add_node(1, 0);
  t.add_node(2, 0);
  t.add_node(3, 1);
  t.recompute_ranks();
  EXPECT_EQ(t.rank(1), 1);
  EXPECT_EQ(t.rank(2), 0);

  t.change_parent(3, 2);
  t.recompute_ranks();
  EXPECT_EQ(t.parent(3), 2);
  EXPECT_EQ(t.level(3), 2);
  EXPECT_EQ(t.rank(1), 0);  // lost its only child
  EXPECT_EQ(t.rank(2), 1);
  EXPECT_TRUE(t.is_leaf(1));
}

TEST(Tree, ChangeParentRejectsDescendant) {
  Tree t{3};
  t.set_root(0);
  t.add_node(1, 0);
  t.add_node(2, 1);
  EXPECT_THROW(t.change_parent(1, 2), std::logic_error);  // 2 is below 1
}

TEST(Tree, RemoveNodeOrphansSubtree) {
  const net::Topology topo = chain();
  Tree t = build_bfs_tree(topo, 0, 1000.0);
  const auto orphans = t.remove_node(2);
  EXPECT_EQ(orphans, (std::vector<net::NodeId>{3, 4}));
  EXPECT_FALSE(t.is_member(2));
  EXPECT_FALSE(t.is_member(3));
  EXPECT_FALSE(t.is_member(4));
  EXPECT_TRUE(t.is_leaf(1));
  t.recompute_ranks();
  EXPECT_EQ(t.max_rank(), 1);
}

TEST(Tree, RemoveRootThrows) {
  Tree t = build_bfs_tree(chain(), 0, 1000.0);
  EXPECT_THROW(t.remove_node(0), std::logic_error);
}

TEST(Tree, MembersListsExactlyMembers) {
  const Tree t = build_bfs_tree(chain(), 0, 300.0);
  const auto m = t.members();
  EXPECT_EQ(m, (std::vector<net::NodeId>{0, 1, 2, 3}));
}

TEST(Tree, RanksAfterRecomputeMatchDefinition) {
  util::Rng rng{17};
  const auto topo = net::Topology::uniform_random(60, 500.0, 125.0, rng);
  const net::NodeId root = topo.nearest({250, 250});
  Tree t = build_bfs_tree(topo, root, 300.0);
  // Verify rank(n) == 1 + max(rank(children)) with leaves at 0.
  for (net::NodeId n : t.members()) {
    int expect = 0;
    for (net::NodeId c : t.children(n)) expect = std::max(expect, t.rank(c) + 1);
    EXPECT_EQ(t.rank(n), expect);
  }
  EXPECT_EQ(t.max_rank(), t.rank(root));
}

}  // namespace
}  // namespace essat::routing
