#include <gtest/gtest.h>

#include "src/energy/duty_cycle.h"
#include "src/energy/radio.h"
#include "src/sim/simulator.h"

namespace essat::energy {
namespace {

using util::Time;

RadioParams fast_params() {
  RadioParams p;
  p.t_off_on = Time::from_milliseconds(1.25);
  p.t_on_off = Time::from_milliseconds(1.25);
  return p;
}

TEST(Radio, StartsOn) {
  sim::Simulator sim;
  Radio r{sim, fast_params()};
  EXPECT_EQ(r.state(), RadioState::kOn);
  EXPECT_TRUE(r.is_on());
}

TEST(Radio, TurnOffTakesTransitionTime) {
  sim::Simulator sim;
  Radio r{sim, fast_params()};
  r.turn_off();
  EXPECT_EQ(r.state(), RadioState::kTurningOff);
  sim.run_until(Time::from_milliseconds(1.0));
  EXPECT_EQ(r.state(), RadioState::kTurningOff);
  sim.run_until(Time::from_milliseconds(1.25));
  EXPECT_EQ(r.state(), RadioState::kOff);
}

TEST(Radio, TurnOnTakesTransitionTime) {
  sim::Simulator sim;
  Radio r{sim, fast_params()};
  r.turn_off();
  sim.run_until(Time::from_milliseconds(2.0));
  r.turn_on();
  EXPECT_EQ(r.state(), RadioState::kTurningOn);
  sim.run_until(Time::from_milliseconds(3.25));
  EXPECT_EQ(r.state(), RadioState::kOn);
}

TEST(Radio, TurnOnWhileTurningOffQueues) {
  sim::Simulator sim;
  Radio r{sim, fast_params()};
  r.turn_off();
  r.turn_on();  // queued behind the OFF transition
  EXPECT_EQ(r.state(), RadioState::kTurningOff);
  sim.run_until(Time::from_milliseconds(1.25));
  EXPECT_EQ(r.state(), RadioState::kTurningOn);
  sim.run_until(Time::from_milliseconds(2.5));
  EXPECT_EQ(r.state(), RadioState::kOn);
}

TEST(Radio, TurnOffIgnoredUnlessOn) {
  sim::Simulator sim;
  Radio r{sim, fast_params()};
  r.turn_off();
  sim.run_until(Time::from_milliseconds(2.0));
  ASSERT_EQ(r.state(), RadioState::kOff);
  r.turn_off();  // no-op
  EXPECT_EQ(r.state(), RadioState::kOff);
}

// Regression: turn_off() during kTurningOn used to be silently dropped,
// leaving the radio stuck ON forever when a power manager decided to sleep
// mid-turn-on (and inflating the measured duty cycle).
TEST(Radio, TurnOffWhileTurningOnQueues) {
  sim::Simulator sim;
  Radio r{sim, fast_params()};
  r.turn_off();
  sim.run_until(Time::from_milliseconds(2.0));
  ASSERT_EQ(r.state(), RadioState::kOff);
  r.turn_on();
  r.turn_off();  // queued behind the ON transition
  EXPECT_EQ(r.state(), RadioState::kTurningOn);
  // The in-flight transition completes at 3.25 ms, then the latched
  // turn-off starts immediately and completes one t_on_off later.
  sim.run_until(Time::from_milliseconds(3.25));
  EXPECT_EQ(r.state(), RadioState::kTurningOff);
  sim.run_until(Time::from_milliseconds(4.5));
  EXPECT_EQ(r.state(), RadioState::kOff);
}

TEST(Radio, TurnOnWhileTurningOnCancelsQueuedTurnOff) {
  sim::Simulator sim;
  Radio r{sim, fast_params()};
  r.turn_off();
  sim.run_until(Time::from_milliseconds(2.0));
  r.turn_on();
  r.turn_off();  // latched...
  r.turn_on();   // ...then cancelled: the latest intent wins
  sim.run_until(Time::from_milliseconds(10.0));
  EXPECT_EQ(r.state(), RadioState::kOn);
}

TEST(Radio, TurnOffWhileTurningOffCancelsQueuedTurnOn) {
  sim::Simulator sim;
  Radio r{sim, fast_params()};
  r.turn_off();
  r.turn_on();   // latched...
  r.turn_off();  // ...then cancelled: the latest intent wins
  sim.run_until(Time::from_milliseconds(10.0));
  EXPECT_EQ(r.state(), RadioState::kOff);
}

TEST(Radio, FailDuringTurnOnTransitionKillsPendingIntents) {
  sim::Simulator sim;
  Radio r{sim, fast_params()};
  r.turn_off();
  sim.run_until(Time::from_milliseconds(2.0));
  r.turn_on();
  r.turn_off();  // pending_off_ latched
  sim.schedule_at(Time::from_milliseconds(2.5), [&] { r.fail(); });
  sim.run_until(Time::from_milliseconds(10.0));
  EXPECT_TRUE(r.failed());
  EXPECT_EQ(r.state(), RadioState::kOff);
  r.turn_on();
  sim.run_until(Time::from_milliseconds(20.0));
  EXPECT_EQ(r.state(), RadioState::kOff);
}

TEST(Radio, FailDuringTurnOffTransitionKillsPendingIntents) {
  sim::Simulator sim;
  Radio r{sim, fast_params()};
  r.turn_off();
  r.turn_on();  // pending_on_ latched
  sim.schedule_at(Time::from_milliseconds(0.5), [&] { r.fail(); });
  sim.run_until(Time::from_milliseconds(10.0));
  EXPECT_TRUE(r.failed());
  EXPECT_EQ(r.state(), RadioState::kOff);
  // The cancelled transition timer must not fire, and the latched turn-on
  // must not resurrect a dead radio.
  r.turn_on();
  sim.run_until(Time::from_milliseconds(20.0));
  EXPECT_EQ(r.state(), RadioState::kOff);
}

TEST(Radio, RedundantTurnOnIsNoop) {
  sim::Simulator sim;
  Radio r{sim, fast_params()};
  r.turn_on();
  EXPECT_EQ(r.state(), RadioState::kOn);
}

TEST(Radio, ObserversSeeStateChanges) {
  sim::Simulator sim;
  Radio r{sim, fast_params()};
  std::vector<RadioState> seen;
  r.add_state_observer([&](RadioState s) { seen.push_back(s); });
  r.turn_off();
  sim.run_until(Time::from_milliseconds(2.0));
  r.turn_on();
  sim.run();
  ASSERT_EQ(seen.size(), 4u);
  EXPECT_EQ(seen[0], RadioState::kTurningOff);
  EXPECT_EQ(seen[1], RadioState::kOff);
  EXPECT_EQ(seen[2], RadioState::kTurningOn);
  EXPECT_EQ(seen[3], RadioState::kOn);
}

TEST(Radio, DutyCycleCountsTransitionsAsActive) {
  sim::Simulator sim;
  Radio r{sim, fast_params()};
  r.begin_measurement();
  // ON for 10 ms, then off; OFF period lasts until wake at 50 ms.
  sim.schedule_at(Time::milliseconds(10), [&] { r.turn_off(); });
  sim.schedule_at(Time::milliseconds(50), [&] { r.turn_on(); });
  sim.run_until(Time::milliseconds(100));
  // Active: [0,10) ON + [10,11.25) turning off + [50,51.25) turning on +
  // [51.25,100) ON = 10 + 1.25 + 1.25 + 48.75 = 61.25 ms of 100 ms.
  EXPECT_NEAR(r.duty_cycle(), 0.6125, 1e-9);
  EXPECT_NEAR(r.active_time().to_seconds(), 0.06125, 1e-12);
  EXPECT_NEAR(r.off_time().to_seconds(), 0.03875, 1e-12);
}

TEST(Radio, SleepIntervalsRecorded) {
  sim::Simulator sim;
  Radio r{sim, fast_params()};
  r.begin_measurement();
  sim.schedule_at(Time::milliseconds(10), [&] { r.turn_off(); });
  sim.schedule_at(Time::milliseconds(50), [&] { r.turn_on(); });
  sim.schedule_at(Time::milliseconds(80), [&] { r.turn_off(); });
  sim.schedule_at(Time::milliseconds(95), [&] { r.turn_on(); });
  sim.run_until(Time::milliseconds(200));
  // OFF intervals: [11.25, 50) = 38.75 ms and [81.25, 95) = 13.75 ms.
  ASSERT_EQ(r.sleep_intervals_s().size(), 2u);
  EXPECT_NEAR(r.sleep_intervals_s()[0], 0.03875, 1e-12);
  EXPECT_NEAR(r.sleep_intervals_s()[1], 0.01375, 1e-12);
}

TEST(Radio, MeasurementWindowResetsAccounting) {
  sim::Simulator sim;
  Radio r{sim, fast_params()};
  sim.schedule_at(Time::milliseconds(10), [&] { r.turn_off(); });
  sim.schedule_at(Time::milliseconds(100), [&] { r.begin_measurement(); });
  sim.run_until(Time::milliseconds(150));
  // Whole window spent OFF.
  EXPECT_NEAR(r.duty_cycle(), 0.0, 1e-9);
  EXPECT_TRUE(r.sleep_intervals_s().empty());  // interval began pre-window
  sim.schedule_at(Time::milliseconds(160), [&] { r.turn_on(); });
  sim.run_until(Time::milliseconds(200));
  // The straddling OFF interval counts from the window start (100 ms).
  ASSERT_EQ(r.sleep_intervals_s().size(), 1u);
  EXPECT_NEAR(r.sleep_intervals_s()[0], 0.060, 1e-9);
}

TEST(Radio, ZeroTransitionTimes) {
  sim::Simulator sim;
  RadioParams p;
  p.t_off_on = Time::zero();
  p.t_on_off = Time::zero();
  Radio r{sim, p};
  EXPECT_EQ(p.break_even(), Time::zero());
  r.begin_measurement();
  r.turn_off();
  sim.run_until(Time::milliseconds(1));  // zero-delay transition event fires
  EXPECT_EQ(r.state(), RadioState::kOff);
  r.turn_on();
  sim.run_until(Time::milliseconds(2));
  EXPECT_EQ(r.state(), RadioState::kOn);
  ASSERT_EQ(r.sleep_intervals_s().size(), 1u);
  EXPECT_NEAR(r.sleep_intervals_s()[0], 1e-3, 1e-9);
}

TEST(Radio, FailForcesOffPermanently) {
  sim::Simulator sim;
  Radio r{sim, fast_params()};
  r.fail();
  EXPECT_TRUE(r.failed());
  EXPECT_EQ(r.state(), RadioState::kOff);
  r.turn_on();
  sim.run_until(Time::seconds(1));
  EXPECT_EQ(r.state(), RadioState::kOff);
}

TEST(Radio, EnergyAccumulatesByState) {
  sim::Simulator sim;
  RadioParams p = fast_params();
  p.p_idle_mw = 10.0;
  p.p_off_mw = 0.0;
  p.p_transition_mw = 10.0;
  sim::Simulator s2;
  Radio r{s2, p};
  r.begin_measurement();
  s2.schedule_at(Time::seconds(1), [&] { r.turn_off(); });
  s2.run_until(Time::seconds(2));
  // 1 s idle @10 mW + 1.25 ms transition @10 mW, rest off @0.
  EXPECT_NEAR(r.energy_mj(), 10.0 * 1.0 + 10.0 * 0.00125, 1e-6);
}

TEST(Radio, TxRxPowerHints) {
  sim::Simulator sim;
  RadioParams p = fast_params();
  p.p_idle_mw = 10.0;
  p.p_tx_mw = 40.0;
  Radio r{sim, p};
  r.begin_measurement();
  sim.schedule_at(Time::seconds(1), [&] { r.note_tx(true); });
  sim.schedule_at(Time::seconds(2), [&] { r.note_tx(false); });
  sim.run_until(Time::seconds(3));
  EXPECT_NEAR(r.energy_mj(), 10.0 + 40.0 + 10.0, 1e-6);
}

TEST(RadioParams, BreakEvenIsSumOfTransitions) {
  RadioParams p;
  p.t_off_on = Time::from_milliseconds(1.25);
  p.t_on_off = Time::from_milliseconds(1.25);
  EXPECT_EQ(p.break_even(), Time::from_milliseconds(2.5));
}

TEST(DutyCycleSummary, AveragesRadios) {
  sim::Simulator sim;
  Radio a{sim, fast_params()};
  Radio b{sim, fast_params()};
  a.begin_measurement();
  b.begin_measurement();
  sim.schedule_at(Time::milliseconds(0), [&] { b.turn_off(); });
  sim.run_until(Time::seconds(1));
  const auto summary = summarize_duty_cycles({&a, &b});
  EXPECT_NEAR(summary.average, (1.0 + 0.00125) / 2.0, 1e-6);
  EXPECT_NEAR(summary.max, 1.0, 1e-9);
}

TEST(DutyCycleByGroup, GroupsCorrectly) {
  sim::Simulator sim;
  Radio a{sim, fast_params()};
  Radio b{sim, fast_params()};
  Radio c{sim, fast_params()};
  a.begin_measurement();
  b.begin_measurement();
  c.begin_measurement();
  c.turn_off();
  sim.run_until(Time::seconds(10));
  const auto by_group = duty_cycle_by_group({&a, &b, &c}, {0, 0, 1}, 2);
  ASSERT_EQ(by_group.size(), 2u);
  EXPECT_NEAR(by_group[0], 1.0, 1e-9);
  EXPECT_LT(by_group[1], 0.01);
}

TEST(DutyCycleByGroup, SizeMismatchThrows) {
  EXPECT_THROW(duty_cycle_by_group({}, {0}, 1), std::invalid_argument);
}

}  // namespace
}  // namespace essat::energy
