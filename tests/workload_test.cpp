#include <gtest/gtest.h>

#include "src/query/workload.h"

namespace essat::query {
namespace {

TEST(Workload, ClassPeriodsFollowPaperRatio) {
  WorkloadParams p;
  p.base_rate_hz = 6.0;  // makes the 6:3:2 ratio land on integers
  // Rates 6, 3, 2 Hz -> periods 1/6, 1/3, 1/2 s.
  EXPECT_EQ(class_period(p, 0), util::Time::from_seconds(1.0 / 6.0));
  EXPECT_EQ(class_period(p, 1), util::Time::from_seconds(1.0 / 3.0));
  EXPECT_EQ(class_period(p, 2), util::Time::from_seconds(1.0 / 2.0));
}

TEST(Workload, ClassPeriodValidation) {
  WorkloadParams p;
  EXPECT_THROW(class_period(p, -1), std::invalid_argument);
  EXPECT_THROW(class_period(p, 3), std::invalid_argument);
  p.base_rate_hz = 0.0;
  EXPECT_THROW(class_period(p, 0), std::invalid_argument);
}

TEST(Workload, MakesThreePerClassQueries) {
  WorkloadParams p;
  p.base_rate_hz = 1.0;
  p.queries_per_class = 3;
  util::Rng rng{5};
  const auto queries = make_workload(p, rng);
  ASSERT_EQ(queries.size(), 9u);
  // Ids are dense and class-major.
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(queries[i].id, static_cast<net::QueryId>(i));
    EXPECT_EQ(queries[i].query_class, static_cast<int>(i / 3));
  }
}

TEST(Workload, PhasesWithinStartWindow) {
  WorkloadParams p;
  p.start_window_begin = util::Time::seconds(5);
  p.start_window_length = util::Time::seconds(10);
  p.queries_per_class = 10;
  util::Rng rng{7};
  const auto queries = make_workload(p, rng);
  for (const auto& q : queries) {
    EXPECT_GE(q.phase, util::Time::seconds(5));
    EXPECT_LT(q.phase, util::Time::seconds(15));
  }
}

TEST(Workload, DeterministicPerSeed) {
  WorkloadParams p;
  util::Rng a{9}, b{9};
  const auto qa = make_workload(p, a);
  const auto qb = make_workload(p, b);
  ASSERT_EQ(qa.size(), qb.size());
  for (std::size_t i = 0; i < qa.size(); ++i) EXPECT_EQ(qa[i].phase, qb[i].phase);
}

TEST(Query, EpochStartArithmetic) {
  Query q;
  q.period = util::Time::seconds(2);
  q.phase = util::Time::seconds(10);
  EXPECT_EQ(q.epoch_start(0), util::Time::seconds(10));
  EXPECT_EQ(q.epoch_start(5), util::Time::seconds(20));
}

}  // namespace
}  // namespace essat::query
