#include <gtest/gtest.h>

#include "src/harness/runner.h"
#include "src/harness/scenario.h"
#include "src/harness/table.h"

namespace essat::harness {
namespace {

using util::Time;

// Short runs: these tests exercise the assembly/measurement plumbing, not
// the paper's full workloads (the integration tests cover behavior).
ScenarioConfig small_config(Protocol p) {
  ScenarioConfig c;
  c.protocol = p;
  c.deployment.num_nodes = 30;
  c.workload.base_rate_hz = 1.0;
  c.measure_duration = Time::seconds(20);
  c.workload.query_start_window = Time::seconds(3);
  c.seed = 5;
  return c;
}

TEST(Scenario, ProtocolNames) {
  EXPECT_STREQ(protocol_name(Protocol::kDtsSs), "DTS-SS");
  EXPECT_STREQ(protocol_name(Protocol::kSync), "SYNC");
  EXPECT_STREQ(protocol_name(Protocol::kSpan), "SPAN");
}

TEST(Scenario, ProducesSaneMetrics) {
  const RunMetrics m = run_scenario(small_config(Protocol::kDtsSs));
  EXPECT_GT(m.tree_members, 5);
  EXPECT_GT(m.avg_duty_cycle, 0.0);
  EXPECT_LT(m.avg_duty_cycle, 1.0);
  EXPECT_GT(m.avg_latency_s, 0.0);
  EXPECT_GT(m.epochs_measured, 10u);
  EXPECT_GT(m.delivery_ratio, 0.8);
  EXPECT_EQ(m.per_node.size(), static_cast<std::size_t>(m.tree_members));
  EXPECT_EQ(m.duty_by_rank.size(), static_cast<std::size_t>(m.max_rank) + 1);
}

TEST(Scenario, DeterministicForSameSeed) {
  const RunMetrics a = run_scenario(small_config(Protocol::kStsSs));
  const RunMetrics b = run_scenario(small_config(Protocol::kStsSs));
  EXPECT_DOUBLE_EQ(a.avg_duty_cycle, b.avg_duty_cycle);
  EXPECT_DOUBLE_EQ(a.avg_latency_s, b.avg_latency_s);
  EXPECT_EQ(a.reports_sent, b.reports_sent);
  EXPECT_EQ(a.mac_transmissions, b.mac_transmissions);
}

TEST(Scenario, DifferentSeedsDiffer) {
  auto c = small_config(Protocol::kNtsSs);
  const RunMetrics a = run_scenario(c);
  c.seed = 6;
  const RunMetrics b = run_scenario(c);
  EXPECT_NE(a.reports_sent, b.reports_sent);
}

TEST(Scenario, DistributedSetupAlsoWorks) {
  auto c = small_config(Protocol::kDtsSs);
  c.use_distributed_setup = true;
  const RunMetrics m = run_scenario(c);
  EXPECT_GT(m.tree_members, 5);
  EXPECT_GT(m.delivery_ratio, 0.7);
}

TEST(Scenario, SpanReportsBackbone) {
  const RunMetrics m = run_scenario(small_config(Protocol::kSpan));
  EXPECT_GT(m.backbone_size, 0);
  EXPECT_LE(m.backbone_size, 30);
}

TEST(Scenario, FailureInjectionReducesMembership) {
  auto c = small_config(Protocol::kNtsSs);
  const RunMetrics healthy = run_scenario(c);
  // Kill three nodes mid-run (skip node ids that might be the root near
  // the centre by picking perimeter-biased low ids).
  c.failures = {{1, Time::seconds(8)}, {2, Time::seconds(8)}, {3, Time::seconds(9)}};
  const RunMetrics m = run_scenario(c);
  EXPECT_LE(m.delivery_ratio, healthy.delivery_ratio + 1e-9);
}

TEST(Scenario, ExtraQueriesAreRegistered) {
  auto c = small_config(Protocol::kDtsSs);
  query::Query surge;
  surge.period = Time::from_seconds(0.5);
  surge.phase = Time::seconds(15);
  c.workload.extra_queries = {surge};
  const RunMetrics with_surge = run_scenario(c);
  const RunMetrics without = run_scenario(small_config(Protocol::kDtsSs));
  EXPECT_GT(with_surge.reports_sent, without.reports_sent);
}

TEST(Runner, AveragesAcrossSeeds) {
  auto c = small_config(Protocol::kNtsSs);
  const AveragedMetrics avg = run_repeated(c, 3);
  EXPECT_EQ(avg.duty_cycle.count(), 3u);
  EXPECT_GT(avg.duty_cycle.mean(), 0.0);
  EXPECT_GE(avg.duty_ci90(), 0.0);
  EXPECT_FALSE(avg.duty_by_rank.empty());
}

TEST(LatencyCollector, ComputesPerEpochLatency) {
  LatencyCollector lc;
  query::Query q;
  q.id = 0;
  q.period = Time::seconds(1);
  q.phase = Time::seconds(10);
  // Epoch 0: two arrivals; latency = last - epoch start = 0.4 s.
  lc.on_root_arrival(q, 0, Time::from_seconds(10.2), 2);
  lc.on_root_arrival(q, 0, Time::from_seconds(10.4), 1);
  // Epoch 1: one arrival, 0.1 s.
  lc.on_root_arrival(q, 1, Time::from_seconds(11.1), 3);
  const auto s = lc.summarize(Time::seconds(0), Time::seconds(100),
                              Time::seconds(1), 3);
  EXPECT_EQ(s.epochs, 2u);
  EXPECT_NEAR(s.avg_s, (0.4 + 0.1) / 2.0, 1e-9);
  EXPECT_NEAR(s.max_s, 0.4, 1e-9);
  EXPECT_NEAR(s.delivery_ratio, 1.0, 1e-9);  // 3/3 both epochs
}

TEST(LatencyCollector, WindowFiltersEpochs) {
  LatencyCollector lc;
  query::Query q;
  q.id = 0;
  q.period = Time::seconds(1);
  q.phase = Time::zero();
  lc.on_root_arrival(q, 2, Time::from_seconds(2.5), 1);   // inside
  lc.on_root_arrival(q, 50, Time::from_seconds(50.1), 1); // inside
  lc.on_root_arrival(q, 98, Time::from_seconds(98.2), 1); // inside grace zone
  const auto s = lc.summarize(Time::seconds(1), Time::seconds(100),
                              Time::seconds(5), 1);
  EXPECT_EQ(s.epochs, 2u);  // epoch 98 excluded by the 5 s grace
}

TEST(Table, FormatsAlignedColumns) {
  Table t{{"x", "value"}};
  t.add_row({"1", "10.5"});
  t.add_row({"200", "3"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("x    value"), std::string::npos);
  EXPECT_NE(out.find("200"), std::string::npos);
}

TEST(Table, Formatters) {
  EXPECT_EQ(fmt(1.23456, 2), "1.23");
  EXPECT_EQ(fmt_pct(0.1234), "12.3");
  EXPECT_EQ(fmt_ci(10.0, 0.5, 1), "10.0 +/- 0.5");
}

}  // namespace
}  // namespace essat::harness
