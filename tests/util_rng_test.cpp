#include <gtest/gtest.h>

#include <set>

#include "src/util/rng.h"

namespace essat::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a{12345};
  Rng b{12345};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform_int(0, 1'000'000), b.uniform_int(0, 1'000'000));
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a{1};
  Rng b{2};
  int differing = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.uniform_int(0, 1'000'000) != b.uniform_int(0, 1'000'000)) ++differing;
  }
  EXPECT_GT(differing, 40);
}

TEST(Rng, ForkIsIndependentOfConsumption) {
  Rng a{7};
  Rng fork_before = a.fork(3);
  a.uniform(0.0, 1.0);  // consume from the parent
  Rng fork_after = a.fork(3);
  // Forks derive from the seed, not the stream position.
  EXPECT_EQ(fork_before.uniform_int(0, 1 << 30), fork_after.uniform_int(0, 1 << 30));
}

TEST(Rng, ForkStreamsDiffer) {
  Rng a{7};
  Rng s1 = a.fork(1);
  Rng s2 = a.fork(2);
  int differing = 0;
  for (int i = 0; i < 50; ++i) {
    if (s1.uniform_int(0, 1 << 30) != s2.uniform_int(0, 1 << 30)) ++differing;
  }
  EXPECT_GT(differing, 40);
}

TEST(Rng, UniformRange) {
  Rng r{99};
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng r{99};
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(r.uniform_int(0, 4));
  EXPECT_EQ(seen.size(), 5u);  // all of 0..4 hit
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 4);
}

TEST(Rng, UniformTimeWithinRange) {
  Rng r{5};
  const Time lo = Time::milliseconds(10);
  const Time hi = Time::milliseconds(20);
  for (int i = 0; i < 500; ++i) {
    const Time t = r.uniform_time(lo, hi);
    EXPECT_GE(t, lo);
    EXPECT_LT(t, hi);
  }
}

TEST(Rng, UniformTimeDegenerateRange) {
  Rng r{5};
  EXPECT_EQ(r.uniform_time(Time::seconds(1), Time::seconds(1)), Time::seconds(1));
}

TEST(Rng, ExponentialMean) {
  Rng r{11};
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.exponential(2.0);
  EXPECT_NEAR(sum / n, 2.0, 0.1);
}

TEST(Rng, BernoulliProbability) {
  Rng r{13};
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += r.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

}  // namespace
}  // namespace essat::util
