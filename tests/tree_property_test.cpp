// Seed-swept structural invariants of the routing tree on the paper's
// deployment (80 nodes, 500x500 m^2, 125 m range, 300 m tree span).
#include <gtest/gtest.h>

#include <queue>

#include "src/routing/tree.h"

namespace essat::routing {
namespace {

class TreeSeedSweep : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void SetUp() override {
    util::Rng rng{GetParam()};
    topo_ = std::make_unique<net::Topology>(
        net::Topology::uniform_random(80, 500.0, 125.0, rng));
    root_ = topo_->nearest({250.0, 250.0});
    tree_ = std::make_unique<Tree>(build_bfs_tree(*topo_, root_, 300.0));
  }

  std::unique_ptr<net::Topology> topo_;
  net::NodeId root_ = net::kNoNode;
  std::unique_ptr<Tree> tree_;
};

INSTANTIATE_TEST_SUITE_P(Seeds, TreeSeedSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

TEST_P(TreeSeedSweep, EveryEdgeIsWithinRadioRange) {
  for (net::NodeId n : tree_->members()) {
    if (n == root_) continue;
    EXPECT_TRUE(topo_->in_range(n, tree_->parent(n))) << "node " << n;
  }
}

TEST_P(TreeSeedSweep, MembersRespectTreeSpan) {
  const auto root_pos = topo_->position(root_);
  for (net::NodeId n : tree_->members()) {
    EXPECT_LE(net::distance(topo_->position(n), root_pos), 300.0 + 1e-9);
  }
}

TEST_P(TreeSeedSweep, LevelsAreMinHop) {
  // BFS over the membership-restricted graph must not find shorter paths.
  std::vector<int> dist(topo_->num_nodes(), -1);
  std::queue<net::NodeId> q;
  dist[static_cast<std::size_t>(root_)] = 0;
  q.push(root_);
  while (!q.empty()) {
    const net::NodeId u = q.front();
    q.pop();
    for (net::NodeId v : topo_->neighbors(u)) {
      if (!tree_->is_member(v) || dist[static_cast<std::size_t>(v)] != -1) continue;
      dist[static_cast<std::size_t>(v)] = dist[static_cast<std::size_t>(u)] + 1;
      q.push(v);
    }
  }
  for (net::NodeId n : tree_->members()) {
    EXPECT_EQ(tree_->level(n), dist[static_cast<std::size_t>(n)]) << "node " << n;
  }
}

TEST_P(TreeSeedSweep, RanksSatisfyRecurrence) {
  for (net::NodeId n : tree_->members()) {
    int expected = 0;
    for (net::NodeId c : tree_->children(n)) {
      expected = std::max(expected, tree_->rank(c) + 1);
    }
    EXPECT_EQ(tree_->rank(n), expected);
  }
  EXPECT_EQ(tree_->max_rank(), tree_->rank(root_));
}

TEST_P(TreeSeedSweep, ChildrenListsAreConsistent) {
  std::size_t edges = 0;
  for (net::NodeId n : tree_->members()) {
    for (net::NodeId c : tree_->children(n)) {
      EXPECT_EQ(tree_->parent(c), n);
      EXPECT_EQ(tree_->level(c), tree_->level(n) + 1);
      ++edges;
    }
  }
  // A tree has exactly members-1 edges.
  EXPECT_EQ(edges, tree_->member_count() - 1);
}

TEST_P(TreeSeedSweep, EveryMemberReachesRoot) {
  for (net::NodeId n : tree_->members()) {
    EXPECT_TRUE(tree_->in_subtree(root_, n));
  }
}

TEST_P(TreeSeedSweep, RepeatedRankRecomputeIsIdempotent) {
  std::vector<int> before;
  for (net::NodeId n : tree_->members()) before.push_back(tree_->rank(n));
  tree_->recompute_ranks();
  std::vector<int> after;
  for (net::NodeId n : tree_->members()) after.push_back(tree_->rank(n));
  EXPECT_EQ(before, after);
}

}  // namespace
}  // namespace essat::routing
