// Unit tests for the snapshot wire layer: the deterministic byte
// (de)serializer, the framed Snapshot container, and file I/O.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "src/snap/serializer.h"
#include "src/snap/snapshot.h"
#include "src/snap/snapshot_io.h"

namespace essat::snap {
namespace {

TEST(Serializer, PrimitivesRoundTrip) {
  Serializer out;
  out.u8(0xAB);
  out.u16(0xBEEF);
  out.u32(0xDEADBEEFu);
  out.u64(0x0123456789ABCDEFull);
  out.i32(-7);
  out.i64(-1234567890123ll);
  out.f64(3.141592653589793);
  out.boolean(true);
  out.boolean(false);
  out.time(util::Time::milliseconds(250));
  out.str("hello");
  out.str("");

  Deserializer in{out.data()};
  EXPECT_EQ(in.u8(), 0xAB);
  EXPECT_EQ(in.u16(), 0xBEEF);
  EXPECT_EQ(in.u32(), 0xDEADBEEFu);
  EXPECT_EQ(in.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(in.i32(), -7);
  EXPECT_EQ(in.i64(), -1234567890123ll);
  EXPECT_EQ(in.f64(), 3.141592653589793);
  EXPECT_TRUE(in.boolean());
  EXPECT_FALSE(in.boolean());
  EXPECT_EQ(in.time(), util::Time::milliseconds(250));
  EXPECT_EQ(in.str(), "hello");
  EXPECT_EQ(in.str(), "");
  EXPECT_TRUE(in.at_end());
}

TEST(Serializer, DoublesRoundTripByBitPattern) {
  Serializer out;
  out.f64(-0.0);
  out.f64(std::numeric_limits<double>::quiet_NaN());
  out.f64(std::numeric_limits<double>::infinity());
  out.f64(std::numeric_limits<double>::denorm_min());

  Deserializer in{out.data()};
  const double neg_zero = in.f64();
  EXPECT_EQ(neg_zero, 0.0);
  EXPECT_TRUE(std::signbit(neg_zero));
  EXPECT_TRUE(std::isnan(in.f64()));
  EXPECT_TRUE(std::isinf(in.f64()));
  EXPECT_EQ(in.f64(), std::numeric_limits<double>::denorm_min());
}

TEST(Serializer, LittleEndianOnTheWire) {
  Serializer out;
  out.u32(0x01020304u);
  ASSERT_EQ(out.data().size(), 4u);
  EXPECT_EQ(out.data()[0], 0x04);
  EXPECT_EQ(out.data()[3], 0x01);
}

TEST(Serializer, SameWritesSameBytes) {
  auto make = [] {
    Serializer out;
    out.begin("SECT");
    out.u64(42);
    out.str("abc");
    out.end();
    return out.take();
  };
  EXPECT_EQ(make(), make());
}

TEST(Serializer, NestedSectionsEnterFinishAndSkip) {
  Serializer out;
  out.begin("OUTR");
  out.u32(1);
  out.begin("INNR");
  out.str("payload");
  out.end();
  out.u32(2);
  out.end();
  const auto bytes = out.take();

  {
    Deserializer in{bytes};
    EXPECT_EQ(in.next_tag(), "OUTR");
    in.enter("OUTR");
    EXPECT_EQ(in.u32(), 1u);
    EXPECT_EQ(in.next_tag(), "INNR");
    in.enter("INNR");
    EXPECT_EQ(in.str(), "payload");
    in.finish();
    EXPECT_EQ(in.u32(), 2u);
    in.finish();
    EXPECT_TRUE(in.at_end());
  }
  {
    // A reader that does not understand INNR can hop over it.
    Deserializer in{bytes};
    in.enter("OUTR");
    EXPECT_EQ(in.u32(), 1u);
    in.skip();
    EXPECT_EQ(in.u32(), 2u);
    in.finish();
  }
}

TEST(Serializer, ErrorsThrowSnapError) {
  Serializer open_section;
  open_section.begin("SECT");
  EXPECT_THROW(open_section.take(), SnapError);

  Serializer ok;
  ok.begin("SECT");
  ok.u32(5);
  ok.end();
  const auto bytes = ok.take();

  {
    Deserializer in{bytes};
    EXPECT_THROW(in.enter("OTHR"), SnapError);  // tag mismatch
  }
  {
    Deserializer in{bytes};
    in.enter("SECT");
    EXPECT_THROW(in.finish(), SnapError);  // not fully consumed
  }
  {
    Deserializer in{bytes.data(), bytes.size() - 2};
    EXPECT_THROW(in.enter("SECT"), SnapError);  // section overruns buffer
  }
  {
    Deserializer in{bytes};
    in.enter("SECT");
    in.u32();
    EXPECT_THROW(in.u32(), SnapError);  // read past section end
  }
}

TEST(Crc32, MatchesKnownVector) {
  const std::string check = "123456789";
  EXPECT_EQ(crc32(reinterpret_cast<const std::uint8_t*>(check.data()),
                  check.size()),
            0xCBF43926u);
  EXPECT_EQ(crc32(nullptr, 0), 0u);
}

TEST(Snapshot, FramedRoundTrip) {
  Snapshot snap;
  snap.kind = SnapshotKind::kMetrics;
  snap.payload = {1, 2, 3, 4, 5};
  const auto bytes = snap.to_bytes();

  const Snapshot back = Snapshot::from_bytes(bytes);
  EXPECT_EQ(back.kind, SnapshotKind::kMetrics);
  EXPECT_EQ(back.version, kFormatVersion);
  EXPECT_EQ(back.payload, snap.payload);
}

TEST(Snapshot, RejectsBadMagicVersionKindCrcAndTruncation) {
  Snapshot snap;
  snap.payload = {9, 9, 9};
  auto bytes = snap.to_bytes();

  {
    auto bad = bytes;
    bad[0] ^= 0xFF;
    EXPECT_THROW(Snapshot::from_bytes(bad), SnapError);
  }
  {
    auto bad = bytes;
    bad[8] = 99;  // version field
    EXPECT_THROW(Snapshot::from_bytes(bad), SnapError);
  }
  {
    auto bad = bytes;
    bad[12] = 77;  // kind field
    EXPECT_THROW(Snapshot::from_bytes(bad), SnapError);
  }
  {
    auto bad = bytes;
    bad[bad.size() - 5] ^= 0x01;  // payload byte: CRC must catch it
    EXPECT_THROW(Snapshot::from_bytes(bad), SnapError);
  }
  {
    auto bad = bytes;
    bad.pop_back();  // torn write
    EXPECT_THROW(Snapshot::from_bytes(bad), SnapError);
  }
  {
    auto bad = bytes;
    bad.push_back(0);  // trailing garbage
    EXPECT_THROW(Snapshot::from_bytes(bad), SnapError);
  }
}

TEST(SnapshotIo, FileRoundTripAndTornFileDetection) {
  const std::string path = ::testing::TempDir() + "snap_io_test.snap";
  Snapshot snap;
  snap.kind = SnapshotKind::kTrial;
  for (int i = 0; i < 1000; ++i) snap.payload.push_back(i & 0xFF);

  write_snapshot_file(path, snap);
  EXPECT_TRUE(file_exists(path));
  const Snapshot back = read_snapshot_file(path);
  EXPECT_EQ(back.payload, snap.payload);

  // Truncate the file to simulate a torn write that bypassed the
  // tmp+rename protocol (e.g. a partial copy).
  const auto bytes = snap.to_bytes();
  std::vector<std::uint8_t> torn(bytes.begin(), bytes.end() - 100);
  write_file_bytes(path, torn);
  EXPECT_THROW(read_snapshot_file(path), SnapError);

  remove_file(path);
  EXPECT_FALSE(file_exists(path));
  remove_file(path);  // idempotent on missing files
  EXPECT_THROW(read_file_bytes(path), SnapError);
}

}  // namespace
}  // namespace essat::snap
