// Round-trip property tests for snapshot state hooks: util containers
// (FlatMap/RingQueue preserve iteration order, capacity, capacity_bytes),
// Rng engine state, Histogram/RunningStat accumulators, and the RunMetrics
// codec. The invariant throughout: restore then re-serialize must reproduce
// the original bytes exactly, and post-restore behavior must be
// indistinguishable from the original object's.
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "src/harness/metrics.h"
#include "src/query/query.h"
#include "src/snap/metrics_codec.h"
#include "src/snap/serializer.h"
#include "src/util/flat_map.h"
#include "src/util/histogram.h"
#include "src/util/ring_queue.h"
#include "src/util/rng.h"
#include "src/util/stats.h"

namespace essat {
namespace {

using snap::Deserializer;
using snap::Serializer;

void save_u64(Serializer& out, std::uint64_t v) { out.u64(v); }
void load_u64(Deserializer& in, std::uint64_t& v) { v = in.u64(); }

template <typename Map>
std::vector<std::pair<std::uint64_t, std::uint64_t>> entries(const Map& m) {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
  m.for_each([&](std::uint64_t k, std::uint64_t v) { out.emplace_back(k, v); });
  return out;
}

TEST(FlatMapRoundTrip, PreservesLayoutCapacityAndIterationOrder) {
  util::Rng rng{20250807};
  for (int trial = 0; trial < 20; ++trial) {
    util::FlatMap<std::uint64_t, std::uint64_t> m;
    const int n = static_cast<int>(rng.uniform_int(0, 300));
    for (int i = 0; i < n; ++i) {
      m[static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 20))] =
          static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 30));
    }

    Serializer out;
    m.save_state(out, save_u64);
    const auto bytes = out.take();

    util::FlatMap<std::uint64_t, std::uint64_t> back;
    Deserializer in{bytes};
    back.restore_state(in, load_u64);
    ASSERT_TRUE(in.at_end());

    EXPECT_EQ(back.size(), m.size());
    EXPECT_EQ(back.capacity_bytes(), m.capacity_bytes());
    EXPECT_EQ(entries(back), entries(m));  // identical for_each order

    // Re-serializing the restored map reproduces the bytes exactly.
    Serializer again;
    back.save_state(again, save_u64);
    EXPECT_EQ(again.data(), bytes);

    // Post-restore behavior matches: the same further inserts leave the two
    // maps indistinguishable (probe layout and growth included).
    for (int i = 0; i < 50; ++i) {
      const auto k = static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 20));
      const auto v = static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 30));
      m[k] = v;
      back[k] = v;
    }
    EXPECT_EQ(back.capacity_bytes(), m.capacity_bytes());
    EXPECT_EQ(entries(back), entries(m));
  }
}

TEST(RingQueueRoundTrip, PreservesHeadOffsetCapacityAndContents) {
  util::Rng rng{777};
  for (int trial = 0; trial < 20; ++trial) {
    util::RingQueue<std::uint64_t> q;
    // Random push/pop churn so head_ lands at an arbitrary wrap offset.
    std::uint64_t next = 1;
    const int ops = static_cast<int>(rng.uniform_int(0, 200));
    for (int i = 0; i < ops; ++i) {
      if (!q.empty() && rng.bernoulli(0.45)) {
        (void)q.pop_front();
      } else {
        q.push_back(next++);
      }
    }

    Serializer out;
    q.save_state(out, save_u64);
    const auto bytes = out.take();

    util::RingQueue<std::uint64_t> back;
    Deserializer in{bytes};
    back.restore_state(in, load_u64);
    ASSERT_TRUE(in.at_end());

    EXPECT_EQ(back.size(), q.size());
    EXPECT_EQ(back.capacity(), q.capacity());
    EXPECT_EQ(back.capacity_bytes(), q.capacity_bytes());
    for (std::size_t i = 0; i < q.size(); ++i) EXPECT_EQ(back[i], q[i]);

    Serializer again;
    back.save_state(again, save_u64);
    EXPECT_EQ(again.data(), bytes);  // includes the head offset

    // The same further ops (growth, wrap-around, mid-queue take_at) keep the
    // two queues in lockstep.
    for (int i = 0; i < 60; ++i) {
      if (!q.empty() && rng.bernoulli(0.3)) {
        const auto at = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(q.size()) - 1));
        EXPECT_EQ(q.take_at(at), back.take_at(at));
      } else {
        q.push_back(next);
        back.push_back(next);
        ++next;
      }
    }
    EXPECT_EQ(back.capacity(), q.capacity());
    for (std::size_t i = 0; i < q.size(); ++i) EXPECT_EQ(back[i], q[i]);
  }
}

TEST(RngRoundTrip, RestoredStreamContinuesIdentically) {
  util::Rng original{42};
  // Burn an arbitrary prefix so the engine is mid-sequence.
  for (int i = 0; i < 1000; ++i) (void)original.uniform(0.0, 1.0);

  Serializer out;
  original.save_state(out);
  const auto bytes = out.take();

  util::Rng restored{0};  // seed overwritten by restore
  Deserializer in{bytes};
  restored.restore_state(in);
  EXPECT_EQ(restored.seed(), original.seed());

  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(original.uniform(0.0, 1.0), restored.uniform(0.0, 1.0));
    EXPECT_EQ(original.uniform_int(0, 1 << 20), restored.uniform_int(0, 1 << 20));
    EXPECT_EQ(original.exponential(2.0), restored.exponential(2.0));
    EXPECT_EQ(original.normal(0.0, 1.0), restored.normal(0.0, 1.0));
    EXPECT_EQ(original.bernoulli(0.3), restored.bernoulli(0.3));
  }
  // Forked streams derive from seed_, so they match too.
  EXPECT_EQ(original.fork(9).uniform(0.0, 1.0), restored.fork(9).uniform(0.0, 1.0));
}

TEST(HistogramRoundTrip, CountsRawTailAndGeometry) {
  util::Histogram h{0.0, 0.025, 8};
  util::Rng rng{5};
  for (int i = 0; i < 500; ++i) h.add(rng.uniform(-0.05, 0.3));

  Serializer out;
  h.save_state(out);
  const auto bytes = out.take();

  util::Histogram back{1.0, 1.0, 1};  // geometry overwritten by restore
  Deserializer in{bytes};
  back.restore_state(in);

  EXPECT_EQ(back.num_bins(), h.num_bins());
  EXPECT_EQ(back.total(), h.total());
  EXPECT_EQ(back.underflow(), h.underflow());
  EXPECT_EQ(back.overflow(), h.overflow());
  for (std::size_t b = 0; b < h.num_bins(); ++b) {
    EXPECT_EQ(back.count(b), h.count(b));
    EXPECT_EQ(back.bin_upper_edge(b), h.bin_upper_edge(b));
  }
  EXPECT_EQ(back.fraction_below(0.0025), h.fraction_below(0.0025));

  Serializer again;
  back.save_state(again);
  EXPECT_EQ(again.data(), bytes);
}

TEST(RunningStatRoundTrip, WelfordStateBitExact) {
  util::RunningStat s;
  util::Rng rng{99};
  for (int i = 0; i < 300; ++i) s.add(rng.normal(5.0, 2.0));

  Serializer out;
  s.save_state(out);
  const auto bytes = out.take();

  util::RunningStat back;
  Deserializer in{bytes};
  back.restore_state(in);

  EXPECT_EQ(back.count(), s.count());
  EXPECT_EQ(back.mean(), s.mean());
  EXPECT_EQ(back.variance(), s.variance());
  EXPECT_EQ(back.min(), s.min());
  EXPECT_EQ(back.max(), s.max());

  // Folding the same samples into both afterwards keeps them bit-equal
  // (this is what lets a resumed sweep re-feed ledger metrics in order).
  for (int i = 0; i < 100; ++i) {
    const double x = rng.normal(5.0, 2.0);
    s.add(x);
    back.add(x);
  }
  EXPECT_EQ(back.mean(), s.mean());
  EXPECT_EQ(back.variance(), s.variance());
}

harness::RunMetrics sample_metrics() {
  harness::RunMetrics m;
  m.avg_duty_cycle = 0.123456789;
  m.duty_by_rank = {0.5, 0.25, 0.125};
  m.avg_latency_s = 1.5;
  m.p95_latency_s = 2.5;
  m.max_latency_s = 3.5;
  m.delivery_ratio = 0.99;
  m.epochs_measured = 40;
  m.sleep_hist.add(0.01);
  m.sleep_hist.add(0.15);
  m.sleep_hist.add(0.9);
  m.frac_sleep_below_2_5ms = 0.0625;
  m.sleep_intervals = 3;
  m.phase_update_bits_per_report = 0.75;
  m.phase_updates = 12;
  for (int i = 0; i < 5; ++i) {
    harness::RunMetrics::NodeDiag d;
    d.id = i;
    d.rank = i % 3;
    d.level = i;
    d.leaf = (i % 2) == 0;
    d.duty_cycle = 0.1 * i;
    d.reports_sent = 10u * i;
    d.send_failures = i;
    d.retx_no_ack = 2u * i;
    d.cca_busy_defers = 3u * i;
    m.per_node.push_back(d);
  }
  m.reports_sent = 50;
  m.mac_transmissions = 200;
  m.mac_send_failures = 5;
  m.mac_retx_no_ack = 20;
  m.mac_cca_busy_defers = 30;
  m.channel_collisions = 7;
  m.channel_delivered = 180;
  m.channel_dropped_by_model = 13;
  m.pass_through_forwarded = 4;
  m.tree_members = 5;
  m.max_rank = 2;
  m.backbone_size = 3;
  m.sim_events = 123456;
  m.peak_pending_events = 789;
  return m;
}

TEST(RunMetricsCodec, RoundTripReproducesBytesExactly) {
  const harness::RunMetrics m = sample_metrics();
  const auto bytes = snap::run_metrics_to_bytes(m);
  const harness::RunMetrics back = snap::run_metrics_from_bytes(bytes);
  // Two RunMetrics are equal iff their encodings are equal — the same
  // equivalence the restored-vs-straight-run conformance tests use.
  EXPECT_EQ(snap::run_metrics_to_bytes(back), bytes);
  EXPECT_EQ(back.avg_duty_cycle, m.avg_duty_cycle);
  EXPECT_EQ(back.per_node.size(), m.per_node.size());
  EXPECT_EQ(back.sleep_hist.total(), m.sleep_hist.total());
  EXPECT_EQ(back.sim_events, m.sim_events);
}

TEST(LatencyCollectorRoundTrip, SummaryIdenticalAfterRestore) {
  query::Query q;
  q.id = 3;
  q.period = util::Time::seconds(5);
  q.phase = util::Time::seconds(10);

  harness::LatencyCollector c;
  util::Rng rng{31};
  for (int epoch = 0; epoch < 30; ++epoch) {
    for (int n = 0; n < 4; ++n) {
      c.on_root_arrival(q, epoch,
                        q.epoch_start(epoch) +
                            util::Time::milliseconds(rng.uniform_int(1, 4000)),
                        1);
    }
  }

  Serializer out;
  c.save_state(out);
  const auto bytes = out.take();

  harness::LatencyCollector back;
  Deserializer in{bytes};
  back.restore_state(in);

  const auto begin = util::Time::seconds(10);
  const auto end = util::Time::seconds(160);
  const auto grace = util::Time::seconds(5);
  const auto a = c.summarize(begin, end, grace, 4);
  const auto b = back.summarize(begin, end, grace, 4);
  EXPECT_EQ(a.avg_s, b.avg_s);
  EXPECT_EQ(a.p95_s, b.p95_s);
  EXPECT_EQ(a.max_s, b.max_s);
  EXPECT_EQ(a.delivery_ratio, b.delivery_ratio);
  EXPECT_EQ(a.epochs, b.epochs);

  Serializer again;
  back.save_state(again);
  EXPECT_EQ(again.data(), bytes);
}

}  // namespace
}  // namespace essat
