#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "src/net/channel.h"
#include "src/net/mobility.h"
#include "src/net/topology.h"
#include "src/sim/simulator.h"

namespace essat::net {
namespace {

using util::Time;

// Brute-force all-pairs reference (the pre-grid neighbor build).
std::vector<std::vector<NodeId>> all_pairs_neighbors(
    const std::vector<Position>& pos, double range) {
  std::vector<std::vector<NodeId>> out(pos.size());
  for (std::size_t i = 0; i < pos.size(); ++i) {
    for (std::size_t j = i + 1; j < pos.size(); ++j) {
      if (distance(pos[i], pos[j]) <= range) {
        out[i].push_back(static_cast<NodeId>(j));
        out[j].push_back(static_cast<NodeId>(i));
      }
    }
  }
  return out;
}

// ------------------------------------------------------ grid spatial index

TEST(TopologyGrid, NeighborListsIdenticalToAllPairsScan) {
  util::Rng rng{11};
  for (int trial = 0; trial < 8; ++trial) {
    const std::size_t n = 20 + static_cast<std::size_t>(trial) * 60;
    const Topology topo = Topology::uniform_random(n, 400.0, 125.0, rng);
    const auto reference = all_pairs_neighbors(topo.positions(), topo.range());
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(topo.neighbors(static_cast<NodeId>(i)), reference[i])
          << "node " << i << " trial " << trial;
    }
  }
}

TEST(TopologyGrid, MatchesAllPairsOnEverySpecKind) {
  util::Rng rng{5};
  for (TopologyKind kind :
       {TopologyKind::kUniform, TopologyKind::kGrid, TopologyKind::kLine,
        TopologyKind::kClustered, TopologyKind::kCorridor}) {
    DeploymentSpec spec;
    spec.kind = kind;
    spec.num_nodes = 60;
    const Topology topo = spec.build(rng);
    const auto reference = all_pairs_neighbors(topo.positions(), topo.range());
    for (std::size_t i = 0; i < topo.num_nodes(); ++i) {
      EXPECT_EQ(topo.neighbors(static_cast<NodeId>(i)), reference[i])
          << topology_kind_name(kind) << " node " << i;
    }
  }
}

TEST(TopologyGrid, DegenerateCases) {
  // Empty and single-node topologies, plus co-located nodes.
  const Topology empty{{}, 100.0};
  EXPECT_EQ(empty.num_nodes(), 0u);
  const Topology one{{Position{3.0, 4.0}}, 100.0};
  EXPECT_TRUE(one.neighbors(0).empty());
  const Topology same{{Position{1.0, 1.0}, Position{1.0, 1.0}}, 100.0};
  EXPECT_EQ(same.neighbors(0), std::vector<NodeId>{1});
  EXPECT_EQ(same.neighbors(1), std::vector<NodeId>{0});
}

TEST(TopologyGrid, SparseHugeExtentStaysExact) {
  // Two clusters separated by an extent vastly larger than the range: the
  // cell-capping fallback must not change results (or blow up memory).
  std::vector<Position> pos;
  for (int i = 0; i < 10; ++i) pos.push_back(Position{i * 10.0, 0.0});
  for (int i = 0; i < 10; ++i) pos.push_back(Position{1e7 + i * 10.0, 5.0});
  const Topology topo{pos, 125.0};
  const auto reference = all_pairs_neighbors(pos, 125.0);
  for (std::size_t i = 0; i < pos.size(); ++i) {
    EXPECT_EQ(topo.neighbors(static_cast<NodeId>(i)), reference[i]);
  }
}

// ----------------------------------------------------------- static model

TEST(Mobility, StaticModelNeverMoves) {
  util::Rng rng{3};
  Topology topo = Topology::uniform_random(30, 300.0, 125.0, rng);
  const std::vector<Position> before = topo.positions();
  const auto neighbors_before = topo.neighbors(0);

  topo.set_mobility_model(std::make_shared<StaticMobility>(before),
                          Time::seconds(5));
  EXPECT_TRUE(topo.time_varying());
  topo.advance_to(Time::seconds(5));
  topo.advance_to(Time::seconds(123));
  EXPECT_EQ(topo.positions(), before);
  EXPECT_EQ(topo.neighbors(0), neighbors_before);
}

TEST(Mobility, AdvanceRebuildsOncePerEpoch) {
  util::Rng rng{3};
  Topology topo = Topology::uniform_random(10, 300.0, 125.0, rng);
  topo.set_mobility_model(std::make_shared<StaticMobility>(topo.positions()),
                          Time::seconds(5));
  const auto base = topo.neighbor_rebuilds();
  topo.advance_to(Time::seconds(2));           // still epoch 0
  EXPECT_EQ(topo.neighbor_rebuilds(), base);
  topo.advance_to(Time::seconds(5));           // epoch 1
  EXPECT_EQ(topo.neighbor_rebuilds(), base + 1);
  topo.advance_to(Time::seconds(7));           // still epoch 1
  EXPECT_EQ(topo.neighbor_rebuilds(), base + 1);
  topo.advance_to(Time::seconds(15));          // epoch 3 (lazy: one rebuild)
  EXPECT_EQ(topo.neighbor_rebuilds(), base + 2);
}

TEST(Mobility, NoModelAdvanceIsNoOp) {
  util::Rng rng{3};
  Topology topo = Topology::uniform_random(10, 300.0, 125.0, rng);
  EXPECT_FALSE(topo.time_varying());
  const auto base = topo.neighbor_rebuilds();
  topo.advance_to(Time::seconds(100));
  EXPECT_EQ(topo.neighbor_rebuilds(), base);
}

// -------------------------------------------------------- random waypoint

TEST(Mobility, RandomWaypointStaysInBoundsAndMoves) {
  std::vector<Position> initial(20, Position{250.0, 250.0});
  RandomWaypointParams params;
  params.speed_min_mps = 1.0;
  params.speed_max_mps = 2.0;
  params.pause_s = 1.0;
  RandomWaypointMobility model{initial, 500.0, 500.0, params, util::Rng{9}};

  std::vector<Position> pos;
  bool moved = false;
  for (int s = 0; s <= 600; s += 5) {
    model.positions_at(Time::seconds(s), pos);
    ASSERT_EQ(pos.size(), initial.size());
    for (const Position& p : pos) {
      EXPECT_GE(p.x, 0.0);
      EXPECT_LE(p.x, 500.0);
      EXPECT_GE(p.y, 0.0);
      EXPECT_LE(p.y, 500.0);
    }
    if (distance(pos[0], initial[0]) > 1.0) moved = true;
  }
  EXPECT_TRUE(moved);
}

TEST(Mobility, RandomWaypointRespectsSpeedBound) {
  std::vector<Position> initial(8, Position{100.0, 100.0});
  RandomWaypointParams params;
  params.speed_min_mps = 1.0;
  params.speed_max_mps = 2.0;
  params.pause_s = 0.0;
  RandomWaypointMobility model{initial, 200.0, 200.0, params, util::Rng{4}};

  std::vector<Position> prev, cur;
  model.positions_at(Time::zero(), prev);
  for (int s = 1; s <= 200; ++s) {
    model.positions_at(Time::seconds(s), cur);
    for (std::size_t i = 0; i < cur.size(); ++i) {
      // One second at top speed 2 m/s; small slack for a turn mid-interval
      // (the displacement chord is at most the path length).
      EXPECT_LE(distance(prev[i], cur[i]), 2.0 + 1e-9);
    }
    prev = cur;
  }
}

TEST(Mobility, RandomWaypointDeterministicPerSeedAndNode) {
  std::vector<Position> initial;
  for (int i = 0; i < 6; ++i) initial.push_back(Position{i * 10.0, 0.0});
  RandomWaypointParams params;
  auto run = [&](std::uint64_t seed) {
    RandomWaypointMobility m{initial, 300.0, 300.0, params, util::Rng{seed}};
    std::vector<Position> out;
    m.positions_at(Time::seconds(97), out);
    return out;
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));
}

// --------------------------------------------------------- trace playback

TEST(Mobility, TraceInterpolatesAndHolds) {
  std::vector<Position> initial{Position{0.0, 0.0}, Position{50.0, 0.0}};
  WaypointTrace tr;
  tr.node = 0;
  tr.points = {{Time::seconds(10), Position{100.0, 0.0}},
               {Time::seconds(20), Position{100.0, 40.0}}};
  WaypointTraceMobility model{initial, {tr}};

  std::vector<Position> pos;
  model.positions_at(Time::zero(), pos);
  EXPECT_EQ(pos[0], (Position{0.0, 0.0}));
  model.positions_at(Time::seconds(5), pos);  // halfway to the first point
  EXPECT_NEAR(pos[0].x, 50.0, 1e-9);
  model.positions_at(Time::seconds(15), pos);  // halfway between checkpoints
  EXPECT_NEAR(pos[0].x, 100.0, 1e-9);
  EXPECT_NEAR(pos[0].y, 20.0, 1e-9);
  model.positions_at(Time::seconds(60), pos);  // past the last: hold
  EXPECT_EQ(pos[0], (Position{100.0, 40.0}));
  // Node 1 has no trace and never moves.
  EXPECT_EQ(pos[1], (Position{50.0, 0.0}));
}

TEST(Mobility, TraceValidation) {
  std::vector<Position> initial{Position{0.0, 0.0}};
  WaypointTrace unknown;
  unknown.node = 5;
  EXPECT_THROW((WaypointTraceMobility{initial, {unknown}}), std::invalid_argument);
  WaypointTrace unordered;
  unordered.node = 0;
  unordered.points = {{Time::seconds(10), Position{}}, {Time::seconds(10), Position{}}};
  EXPECT_THROW((WaypointTraceMobility{initial, {unordered}}), std::invalid_argument);
}

// ------------------------------------------------------------- neighbors
// track motion through advance_to

TEST(Mobility, AdvanceUpdatesNeighborSets) {
  // Node 1 starts out of range of node 0 and walks into range by t = 10 s.
  std::vector<Position> initial{Position{0.0, 0.0}, Position{200.0, 0.0}};
  Topology topo{initial, 125.0};
  EXPECT_TRUE(topo.neighbors(0).empty());

  WaypointTrace tr;
  tr.node = 1;
  tr.points = {{Time::seconds(10), Position{100.0, 0.0}}};
  topo.set_mobility_model(
      std::make_shared<WaypointTraceMobility>(initial, std::vector<WaypointTrace>{tr}),
      Time::seconds(5));

  topo.advance_to(Time::seconds(5));  // halfway: still 150 m apart
  EXPECT_TRUE(topo.neighbors(0).empty());
  topo.advance_to(Time::seconds(10));
  EXPECT_EQ(topo.neighbors(0), std::vector<NodeId>{1});
  EXPECT_EQ(topo.neighbors(1), std::vector<NodeId>{0});
  EXPECT_TRUE(topo.in_range(0, 1));
}

// A neighbor rebuild landing mid-frame must not corrupt the channel's
// carrier-sense bookkeeping: the receiver set is frozen at transmit time.
TEST(Mobility, ChannelSurvivesEpochTickMidFrame) {
  std::vector<Position> initial{Position{0.0, 0.0}, Position{100.0, 0.0}};
  Topology topo{initial, 125.0};
  WaypointTrace tr;
  tr.node = 1;  // walks out of range while the frame is on the air
  tr.points = {{Time::from_milliseconds(1.0), Position{1000.0, 0.0}}};
  topo.set_mobility_model(
      std::make_shared<WaypointTraceMobility>(initial, std::vector<WaypointTrace>{tr}),
      Time::from_milliseconds(0.5));

  sim::Simulator sim;
  Channel ch{sim, topo};
  struct Counting : ChannelListener {
    int completions = 0;
    void on_rx_complete(const Packet&, bool ok) override {
      ++completions;
      EXPECT_TRUE(ok);
    }
    void on_channel_activity() override {}
  } l1;
  ch.attach(1, &l1);
  ch.set_listening(1, true);
  int& completions = l1.completions;

  DataHeader h;
  ch.start_tx(0, make_data_packet(0, 1, h), Time::from_milliseconds(2.0));
  // Rebuild neighbors mid-frame: node 1 leaves node 0's range.
  sim.schedule_at(Time::from_milliseconds(1.0),
                  [&] { topo.advance_to(Time::from_milliseconds(1.0)); });
  sim.run();

  EXPECT_EQ(completions, 1);
  EXPECT_FALSE(ch.busy(1));  // arriving_count drained cleanly
  EXPECT_TRUE(topo.neighbors(0).empty());
}

// ------------------------------------------------------------------ spec

TEST(MobilitySpec, KindNamesRoundTrip) {
  for (MobilityKind k : {MobilityKind::kStatic, MobilityKind::kRandomWaypoint,
                         MobilityKind::kWaypoints}) {
    EXPECT_EQ(mobility_kind_from_name(mobility_kind_name(k)), k);
  }
  EXPECT_THROW(mobility_kind_from_name("brownian"), std::invalid_argument);
}

TEST(MobilitySpec, StaticBuildsNothingOthersBuild) {
  std::vector<Position> initial{Position{0.0, 0.0}};
  MobilitySpec spec;
  EXPECT_EQ(spec.build(initial, 100.0, 100.0, util::Rng{1}), nullptr);
  EXPECT_EQ(spec.label(), "static");

  spec.kind = MobilityKind::kRandomWaypoint;
  auto waypoint = spec.build(initial, 100.0, 100.0, util::Rng{1});
  ASSERT_NE(waypoint, nullptr);
  EXPECT_STREQ(waypoint->name(), "waypoint");
  EXPECT_EQ(spec.label(), "waypoint@1.5mps");

  spec.kind = MobilityKind::kWaypoints;
  auto trace = spec.build(initial, 100.0, 100.0, util::Rng{1});
  ASSERT_NE(trace, nullptr);
  EXPECT_STREQ(trace->name(), "trace");
  EXPECT_EQ(spec.label(), "trace");
}

TEST(MobilitySpec, DeploymentExtentIsShapeAware) {
  DeploymentSpec d;
  d.area_m = 400.0;
  EXPECT_EQ(d.extent(), (Position{400.0, 400.0}));
  d.kind = TopologyKind::kLine;
  EXPECT_EQ(d.extent(), (Position{400.0, 0.0}));
  d.kind = TopologyKind::kCorridor;
  d.corridor_width_m = 60.0;
  EXPECT_EQ(d.extent(), (Position{400.0, 60.0}));
}

}  // namespace
}  // namespace essat::net
