#include <gtest/gtest.h>

#include "src/util/histogram.h"

namespace essat::util {
namespace {

TEST(Histogram, RejectsInvalidLayout) {
  EXPECT_THROW(Histogram(0.0, 0.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, -1.0, 4), std::invalid_argument);
}

TEST(Histogram, BinsValuesByRange) {
  Histogram h{0.0, 0.025, 8};  // the paper's Fig. 8 layout
  h.add(0.010);   // bin 0: [0, 25) ms
  h.add(0.024);   // bin 0
  h.add(0.026);   // bin 1: [25, 50) ms
  h.add(0.160);   // bin 6: [150, 175) ms
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(6), 1u);
  EXPECT_EQ(h.count(7), 0u);
}

TEST(Histogram, UnderflowAndOverflow) {
  Histogram h{0.1, 0.1, 2};  // [0.1, 0.2), [0.2, 0.3)
  h.add(0.05);
  h.add(0.35);
  h.add(0.31);  // past the last edge -> overflow
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, TotalCountsEverything) {
  Histogram h{0.0, 1.0, 3};
  for (double v : {-1.0, 0.5, 1.5, 2.5, 9.0}) h.add(v);
  EXPECT_EQ(h.total(), 5u);
}

TEST(Histogram, BinUpperEdgeLabels) {
  Histogram h{0.0, 0.025, 8};
  EXPECT_DOUBLE_EQ(h.bin_upper_edge(0), 0.025);
  EXPECT_DOUBLE_EQ(h.bin_upper_edge(7), 0.2);
}

TEST(Histogram, FractionBelowThreshold) {
  Histogram h{0.0, 0.025, 8};
  h.add(0.001);
  h.add(0.002);
  h.add(0.010);
  h.add(0.100);
  EXPECT_DOUBLE_EQ(h.fraction_below(0.0025), 0.5);
  EXPECT_DOUBLE_EQ(h.fraction_below(1.0), 1.0);
  EXPECT_DOUBLE_EQ(h.fraction_below(0.0), 0.0);
}

TEST(Histogram, MergeAddsCounts) {
  Histogram a{0.0, 1.0, 2};
  Histogram b{0.0, 1.0, 2};
  a.add(0.5);
  b.add(0.5);
  b.add(1.5);
  b.add(5.0);
  a.merge(b);
  EXPECT_EQ(a.count(0), 2u);
  EXPECT_EQ(a.count(1), 1u);
  EXPECT_EQ(a.overflow(), 1u);
  EXPECT_EQ(a.total(), 4u);
}

TEST(Histogram, MergeRejectsIncompatibleLayouts) {
  Histogram a{0.0, 1.0, 2};
  Histogram b{0.0, 2.0, 2};
  EXPECT_THROW(a.merge(b), std::invalid_argument);
  Histogram c{0.0, 1.0, 3};
  EXPECT_THROW(a.merge(c), std::invalid_argument);
}

}  // namespace
}  // namespace essat::util
