// Fork-sweep equivalence: a variant run forked from the shared scenario
// prefix is bit-identical to a from-scratch run of the same variant — the
// whole point of materializing the workload lazily at the setup boundary.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "src/exp/fork_sweep.h"
#include "src/harness/scenario.h"
#include "src/snap/metrics_codec.h"

namespace essat::exp {
namespace {

using util::Time;

harness::ScenarioConfig small_base() {
  harness::ScenarioConfig c;
  c.deployment.num_nodes = 12;
  c.deployment.area_m = 250.0;
  c.deployment.range_m = 125.0;
  c.deployment.max_tree_dist_m = 250.0;
  c.workload.query_start_window = Time::seconds(1);
  c.setup_duration = Time::seconds(2);
  c.measure_duration = Time::seconds(4);
  c.latency_grace = Time::seconds(1);
  c.seed = 11;
  return c;
}

std::vector<harness::WorkloadSpec> rate_variants(
    const harness::ScenarioConfig& base) {
  std::vector<harness::WorkloadSpec> variants;
  for (const double rate : {0.5, 1.0, 2.0, 4.0}) {
    harness::WorkloadSpec w = base.workload;
    w.base_rate_hz = rate;
    variants.push_back(w);
  }
  harness::WorkloadSpec extra = base.workload;
  extra.queries_per_class = 2;
  extra.extra_queries.push_back(
      query::Query{net::kNoQuery, Time::seconds(2), Time::seconds(4), 0});
  variants.push_back(extra);
  return variants;
}

TEST(ForkSweep, VariantsBitIdenticalToStraightRuns) {
  const harness::ScenarioConfig base = small_base();
  const std::vector<harness::WorkloadSpec> variants = rate_variants(base);
  const std::vector<harness::RunMetrics> forked =
      run_fork_sweep(base, variants, 2);  // batch < variants: exercises drain
  ASSERT_EQ(forked.size(), variants.size());
  for (std::size_t i = 0; i < variants.size(); ++i) {
    SCOPED_TRACE("variant " + std::to_string(i));
    harness::ScenarioConfig straight = base;
    straight.workload = variants[i];
    EXPECT_EQ(snap::run_metrics_to_bytes(forked[i]),
              snap::run_metrics_to_bytes(harness::run_scenario(straight)));
  }
}

TEST(ForkSweep, ProtocolsShareThePrefixMachinery) {
  for (const harness::Protocol p :
       {harness::Protocol::kDtsSs, harness::Protocol::kPsm}) {
    harness::ScenarioConfig base = small_base();
    base.protocol = p;
    harness::WorkloadSpec w = base.workload;
    w.base_rate_hz = 2.0;
    const auto forked = run_fork_sweep(base, {w}, 0);
    ASSERT_EQ(forked.size(), 1u);
    harness::ScenarioConfig straight = base;
    straight.workload = w;
    EXPECT_EQ(snap::run_metrics_to_bytes(forked[0]),
              snap::run_metrics_to_bytes(harness::run_scenario(straight)))
        << base.protocol.name;
  }
}

TEST(ForkSweep, EmptyVariantListIsEmptyResult) {
  EXPECT_TRUE(run_fork_sweep(small_base(), {}).empty());
}

TEST(ForkSweep, RejectsChangedStartWindow) {
  const harness::ScenarioConfig base = small_base();
  harness::WorkloadSpec w = base.workload;
  w.query_start_window = Time::seconds(3);
  EXPECT_THROW((void)run_fork_sweep(base, {w}), std::invalid_argument);
}

}  // namespace
}  // namespace essat::exp
