#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "src/exp/aggregate.h"
#include "src/exp/sinks.h"
#include "src/exp/sweep.h"
#include "src/exp/sweep_runner.h"
#include "src/exp/thread_pool.h"
#include "src/harness/runner.h"
#include "src/harness/scenario.h"

namespace essat::exp {
namespace {

// A cheap deterministic stand-in for run_scenario: every metric is a pure
// function of (seed, rate), so engine-level determinism is isolated from
// simulator cost.
harness::RunMetrics stub_run(const harness::ScenarioConfig& c) {
  harness::RunMetrics m;
  const double s = static_cast<double>(c.seed);
  m.avg_duty_cycle = 0.01 * s + c.workload.base_rate_hz;
  m.avg_latency_s = 1.0 / (s + 1.0);
  m.p95_latency_s = 2.0 / (s + 1.0);
  m.delivery_ratio = 1.0 - 0.001 * s;
  m.phase_update_bits_per_report = 0.5 * s;
  m.mac_send_failures = c.seed % 7;
  m.duty_by_rank = {0.1 * s, 0.2 * s, 0.3 * s};
  return m;
}

// A quick-to-simulate scenario for end-to-end determinism checks.
harness::ScenarioConfig small_scenario() {
  harness::ScenarioConfig c;
  c.deployment.num_nodes = 12;
  c.deployment.area_m = 250.0;
  c.deployment.range_m = 125.0;
  c.deployment.max_tree_dist_m = 250.0;
  c.setup_duration = util::Time::seconds(2);
  c.workload.query_start_window = util::Time::seconds(1);
  c.measure_duration = util::Time::seconds(3);
  c.latency_grace = util::Time::seconds(1);
  c.seed = 7;
  return c;
}

void expect_stat_identical(const util::RunningStat& a,
                           const util::RunningStat& b) {
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.mean(), b.mean());          // exact: bit-identical requirement
  EXPECT_EQ(a.variance(), b.variance());
  EXPECT_EQ(a.min(), b.min());
  EXPECT_EQ(a.max(), b.max());
}

void expect_identical(const harness::AveragedMetrics& a,
                      const harness::AveragedMetrics& b) {
  expect_stat_identical(a.duty_cycle, b.duty_cycle);
  expect_stat_identical(a.latency_s, b.latency_s);
  expect_stat_identical(a.p95_latency_s, b.p95_latency_s);
  expect_stat_identical(a.delivery_ratio, b.delivery_ratio);
  expect_stat_identical(a.phase_update_bits, b.phase_update_bits);
  expect_stat_identical(a.mac_send_failures, b.mac_send_failures);
  expect_stat_identical(a.channel_dropped, b.channel_dropped);
  ASSERT_EQ(a.duty_by_rank.size(), b.duty_by_rank.size());
  for (std::size_t r = 0; r < a.duty_by_rank.size(); ++r) {
    expect_stat_identical(a.duty_by_rank[r], b.duty_by_rank[r]);
  }
  EXPECT_EQ(a.last_run.avg_duty_cycle, b.last_run.avg_duty_cycle);
  EXPECT_EQ(a.last_run.avg_latency_s, b.last_run.avg_latency_s);
}

// ------------------------------------------------------------ SweepSpec

TEST(SweepSpec, GridExpansionCrossesAxesRowMajor) {
  harness::ScenarioConfig base;
  SweepSpec spec(base);
  spec.runs(5)
      .axis("rate", &harness::ScenarioConfig::workload,
            &harness::WorkloadSpec::base_rate_hz, {1.0, 2.0, 3.0, 4.0})
      .axis_nodes({10, 20});

  EXPECT_EQ(spec.num_axes(), 2u);
  EXPECT_EQ(spec.num_points(), 8u);
  EXPECT_EQ(spec.runs_per_point(), 5);
  ASSERT_EQ(spec.axis_names().size(), 2u);
  EXPECT_EQ(spec.axis_names()[0], "rate");
  EXPECT_EQ(spec.axis_names()[1], "nodes");

  const auto points = spec.points();
  ASSERT_EQ(points.size(), 8u);
  // Row-major: first axis slowest.
  EXPECT_EQ(points[0].labels, (std::vector<std::string>{"1", "10"}));
  EXPECT_EQ(points[1].labels, (std::vector<std::string>{"1", "20"}));
  EXPECT_EQ(points[2].labels, (std::vector<std::string>{"2", "10"}));
  EXPECT_EQ(points[7].labels, (std::vector<std::string>{"4", "20"}));
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(points[i].index, i);
    EXPECT_EQ(points[i].config.workload.base_rate_hz,
              1.0 + static_cast<double>(i / 2));
    EXPECT_EQ(points[i].config.deployment.num_nodes, i % 2 == 0 ? 10 : 20);
  }
}

TEST(SweepSpec, NoAxesYieldsSingleBasePoint) {
  harness::ScenarioConfig base;
  base.seed = 42;
  SweepSpec spec(base);
  EXPECT_EQ(spec.num_points(), 1u);
  const auto points = spec.points();
  ASSERT_EQ(points.size(), 1u);
  EXPECT_TRUE(points[0].labels.empty());
  EXPECT_EQ(points[0].config.seed, 42u);
}

TEST(SweepSpec, ProtocolAxisUsesProtocolNames) {
  SweepSpec spec{harness::ScenarioConfig{}};
  spec.axis_protocol({harness::Protocol::kDtsSs, harness::Protocol::kPsm});
  const auto points = spec.points();
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].labels[0], "DTS-SS");
  EXPECT_EQ(points[1].labels[0], "PSM");
  EXPECT_EQ(points[0].config.protocol, harness::Protocol::kDtsSs);
  EXPECT_EQ(points[1].config.protocol, harness::Protocol::kPsm);
}

// ------------------------------------------------------------ ThreadPool

TEST(ThreadPool, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, DefaultJobsHonoursEnvOverride) {
  ::setenv("ESSAT_JOBS", "3", 1);
  EXPECT_EQ(default_jobs(), 3);
  ::setenv("ESSAT_JOBS", "0", 1);
  EXPECT_GE(default_jobs(), 1);  // invalid values fall back to hardware
  ::unsetenv("ESSAT_JOBS");
  EXPECT_GE(default_jobs(), 1);
}

// ------------------------------------------------------------ SweepRunner

TEST(SweepRunner, ParallelIdenticalToSerialOnStub) {
  harness::ScenarioConfig base;
  base.seed = 100;
  auto make_spec = [&] {
    SweepSpec spec(base);
    spec.runs(5)
        .axis_rate({1.0, 2.0, 3.0, 4.0})
        .axis_nodes({10, 20});
    return spec;  // 8 points x 5 runs
  };

  SweepRunner::Options serial;
  serial.jobs = 1;
  serial.run_fn = stub_run;
  SweepRunner::Options par;
  par.jobs = 4;
  par.run_fn = stub_run;

  const auto a = SweepRunner(serial).run(make_spec());
  const auto b = SweepRunner(par).run(make_spec());
  ASSERT_EQ(a.size(), 8u);
  ASSERT_EQ(b.size(), 8u);
  for (std::size_t p = 0; p < a.size(); ++p) {
    EXPECT_EQ(a[p].point.labels, b[p].point.labels);
    expect_identical(a[p].metrics, b[p].metrics);
  }
}

TEST(SweepRunner, TrialSeedsAreBasePlusRepetition) {
  harness::ScenarioConfig base;
  base.seed = 50;
  SweepSpec spec(base);
  spec.runs(5).axis_rate({1.0, 2.0});

  std::mutex mu;
  std::set<std::uint64_t> seeds;
  SweepRunner::Options opts;
  opts.jobs = 4;
  opts.run_fn = [&](const harness::ScenarioConfig& c) {
    std::lock_guard<std::mutex> lock(mu);
    seeds.insert(c.seed);
    return stub_run(c);
  };
  SweepRunner(opts).run(spec);
  // Both points share the base seed, so the union is 50..54.
  EXPECT_EQ(seeds, (std::set<std::uint64_t>{50, 51, 52, 53, 54}));
}

TEST(SweepRunner, ReportsProgressAndFeedsSinksInPointOrder) {
  SweepSpec spec{harness::ScenarioConfig{}};
  spec.runs(3).axis_rate({1.0, 2.0});

  std::size_t last_done = 0, last_total = 0;
  SweepRunner::Options opts;
  opts.jobs = 2;
  opts.run_fn = stub_run;
  opts.progress = [&](std::size_t done, std::size_t total) {
    last_done = done;
    last_total = total;
  };

  struct OrderSink : ResultSink {
    std::vector<std::size_t> order;
    bool began = false, finished = false;
    void begin(const std::vector<std::string>& names) override {
      began = true;
      EXPECT_EQ(names, (std::vector<std::string>{"rate (Hz)"}));
    }
    void on_point(const PointResult& r) override { order.push_back(r.point.index); }
    void finish() override { finished = true; }
  } sink;

  SweepRunner(opts).run(spec, {&sink});
  EXPECT_EQ(last_done, 6u);
  EXPECT_EQ(last_total, 6u);
  EXPECT_TRUE(sink.began);
  EXPECT_TRUE(sink.finished);
  EXPECT_EQ(sink.order, (std::vector<std::size_t>{0, 1}));
}

TEST(SweepRunner, TrialExceptionIsRethrown) {
  SweepSpec spec{harness::ScenarioConfig{}};
  spec.runs(2).axis_rate({1.0, 2.0});
  SweepRunner::Options opts;
  opts.jobs = 2;
  opts.run_fn = [](const harness::ScenarioConfig&) -> harness::RunMetrics {
    throw std::runtime_error("boom");
  };
  EXPECT_THROW(SweepRunner(opts).run(spec), std::runtime_error);
}

// The acceptance check: >= 8 points x 5 runs through the real simulator,
// 4 threads vs 1 thread, per-point AveragedMetrics bit-identical.
TEST(SweepRunner, ParallelIdenticalToSerialOnRealScenario) {
  auto make_spec = [] {
    SweepSpec spec(small_scenario());
    spec.runs(5)
        .axis_rate({0.5, 1.0, 2.0, 4.0})
        .axis_protocol({harness::Protocol::kDtsSs, harness::Protocol::kNtsSs});
    return spec;  // 8 points x 5 runs = 40 trials
  };

  SweepRunner::Options serial;
  serial.jobs = 1;
  SweepRunner::Options par;
  par.jobs = 4;

  const auto a = SweepRunner(serial).run(make_spec());
  const auto b = SweepRunner(par).run(make_spec());
  ASSERT_EQ(a.size(), 8u);
  ASSERT_EQ(b.size(), 8u);
  for (std::size_t p = 0; p < a.size(); ++p) {
    SCOPED_TRACE("point " + std::to_string(p));
    expect_identical(a[p].metrics, b[p].metrics);
    // Sanity: the runs measured something.
    EXPECT_EQ(a[p].metrics.duty_cycle.count(), 5u);
    EXPECT_GT(a[p].metrics.duty_cycle.mean(), 0.0);
  }
}

// harness::run_repeated is now a wrapper over the engine; it must match a
// hand-rolled serial loop with the documented seed = base + i advance.
TEST(RunRepeated, MatchesManualSerialLoop) {
  harness::ScenarioConfig config = small_scenario();
  const auto wrapped = harness::run_repeated(config, 3);

  Aggregator agg;
  for (int i = 0; i < 3; ++i) {
    harness::ScenarioConfig c = config;
    c.seed = config.seed + static_cast<std::uint64_t>(i);
    agg.add(harness::run_scenario(c));
  }
  expect_identical(wrapped, agg.result());
}

// ------------------------------------------------------------ sinks

PointResult known_point() {
  PointResult r;
  r.point.index = 0;
  r.point.labels = {"1.5", "DTS-SS"};
  harness::RunMetrics m;
  m.avg_duty_cycle = 0.0625;
  m.avg_latency_s = 0.125;
  m.p95_latency_s = 0.25;
  m.delivery_ratio = 0.96875;
  m.phase_update_bits_per_report = 0.75;
  m.mac_send_failures = 3;
  m.channel_dropped_by_model = 4;
  Aggregator agg;
  agg.add(m);
  m.avg_duty_cycle = 0.09375;
  m.avg_latency_s = 0.1875;
  agg.add(m);
  r.metrics = agg.take();
  return r;
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == sep) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  out.push_back(cur);
  return out;
}

TEST(CsvSink, RoundTripsKnownAggregate) {
  const PointResult r = known_point();
  std::ostringstream os;
  CsvSink sink(os);
  sink.begin({"rate", "protocol"});
  sink.on_point(r);
  sink.finish();

  const auto lines = split(os.str(), '\n');
  ASSERT_GE(lines.size(), 2u);
  const auto header = split(lines[0], ',');
  const auto row = split(lines[1], ',');
  ASSERT_EQ(header.size(), row.size());
  ASSERT_EQ(header[0], "point");
  EXPECT_EQ(row[0], "0");
  EXPECT_EQ(row[1], "1.5");
  EXPECT_EQ(row[2], "DTS-SS");

  auto col = [&](const std::string& name) {
    for (std::size_t i = 0; i < header.size(); ++i) {
      if (header[i] == name) return std::strtod(row[i].c_str(), nullptr);
    }
    ADD_FAILURE() << "missing column " << name;
    return 0.0;
  };
  // %.17g output parses back to the exact double.
  EXPECT_EQ(col("runs"), 2.0);
  EXPECT_EQ(col("duty_mean"), r.metrics.duty_cycle.mean());
  EXPECT_EQ(col("duty_ci90"), r.metrics.duty_ci90());
  EXPECT_EQ(col("latency_mean"), r.metrics.latency_s.mean());
  EXPECT_EQ(col("latency_ci90"), r.metrics.latency_ci90());
  EXPECT_EQ(col("p95_latency"), r.metrics.p95_latency_s.mean());
  EXPECT_EQ(col("delivery_mean"), r.metrics.delivery_ratio.mean());
  EXPECT_EQ(col("phase_bits_mean"), r.metrics.phase_update_bits.mean());
  EXPECT_EQ(col("send_failures"), r.metrics.mac_send_failures.mean());
  EXPECT_EQ(col("model_drops"), 4.0);
}

TEST(JsonLinesSink, RoundTripsKnownAggregate) {
  const PointResult r = known_point();
  std::ostringstream os;
  JsonLinesSink sink(os);
  sink.begin({"rate", "protocol"});
  sink.on_point(r);
  sink.finish();

  const std::string line = split(os.str(), '\n')[0];
  EXPECT_NE(line.find("\"labels\":{\"rate\":\"1.5\",\"protocol\":\"DTS-SS\"}"),
            std::string::npos);

  auto field = [&](const std::string& name) {
    const std::string key = "\"" + name + "\":";
    const auto pos = line.find(key);
    EXPECT_NE(pos, std::string::npos) << "missing field " << name;
    return std::strtod(line.c_str() + pos + key.size(), nullptr);
  };
  EXPECT_EQ(field("point"), 0.0);
  EXPECT_EQ(field("runs"), 2.0);
  EXPECT_EQ(field("duty_mean"), r.metrics.duty_cycle.mean());
  EXPECT_EQ(field("duty_ci90"), r.metrics.duty_ci90());
  EXPECT_EQ(field("latency_mean"), r.metrics.latency_s.mean());
  EXPECT_EQ(field("delivery_mean"), r.metrics.delivery_ratio.mean());
}

TEST(ConsoleTableSink, PrintsAxisAndMetricColumns) {
  const PointResult r = known_point();
  std::ostringstream os;
  ConsoleTableSink sink(os);
  sink.begin({"rate", "protocol"});
  sink.on_point(r);
  sink.finish();
  const std::string out = os.str();
  EXPECT_NE(out.find("rate"), std::string::npos);
  EXPECT_NE(out.find("protocol"), std::string::npos);
  EXPECT_NE(out.find("duty (%)"), std::string::npos);
  EXPECT_NE(out.find("DTS-SS"), std::string::npos);
}

// Regression: tab/CR (and every other control character) in an axis label
// used to pass through raw, producing invalid JSON.
TEST(JsonLinesSink, EscapesControlCharactersInLabels) {
  PointResult r = known_point();
  r.point.labels = {"a\tb\rc\x01" "d", "e\"f\\g"};
  std::ostringstream os;
  JsonLinesSink sink(os);
  sink.begin({"bad\naxis", "quoted"});
  sink.on_point(r);
  sink.finish();

  const std::string line = os.str();
  // No raw control characters anywhere in the output line.
  for (char c : line) {
    if (c == '\n') continue;  // the record separator itself
    EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
  }
  EXPECT_NE(line.find("\"bad\\naxis\":\"a\\tb\\rc\\u0001d\""), std::string::npos);
  EXPECT_NE(line.find("\"quoted\":\"e\\\"f\\\\g\""), std::string::npos);
}

// Regression: the progress ticker used to emit a \r-rewrite line for every
// trial even when output was redirected, flooding CI logs. Non-TTY streams
// get one milestone line per completed decile instead.
TEST(ProgressReporter, NonTtyPrintsMilestonesNotRewrites) {
  std::ostringstream os;
  ProgressReporter reporter(os, "tag");  // ostringstream: never a TTY
  for (std::size_t done = 1; done <= 40; ++done) reporter.on_trial_done(done, 40);

  const std::string out = os.str();
  EXPECT_EQ(out.find('\r'), std::string::npos);
  // One line per decile: 10%, 20%, ..., 100%.
  std::size_t lines = 0;
  for (char c : out) lines += c == '\n';
  EXPECT_EQ(lines, 10u);
  EXPECT_NE(out.find("[tag] trials 4/40 (10%)"), std::string::npos);
  EXPECT_NE(out.find("[tag] trials 40/40 (100%)"), std::string::npos);
}

TEST(ProgressReporter, ForcedTtyKeepsInPlaceRewrites) {
  std::ostringstream os;
  ProgressReporter reporter(os, "tag", /*tty=*/true);
  reporter.on_trial_done(1, 2);
  reporter.on_trial_done(2, 2);
  const std::string out = os.str();
  EXPECT_NE(out.find("\r[tag] trials 1/2"), std::string::npos);
  EXPECT_NE(out.find("\r[tag] trials 2/2\n"), std::string::npos);
}

}  // namespace
}  // namespace essat::exp
