#include <gtest/gtest.h>

#include <vector>

#include "src/routing/repair.h"
#include "src/sim/simulator.h"
#include "src/util/rng.h"

namespace essat::routing {
namespace {

// Diamond with a tail: 0 root; 1,2 adjacent to 0; 3 adjacent to both 1 and
// 2; 4 adjacent to 3 only.
net::Topology diamond() {
  return net::Topology{{{0, 0}, {100, 0}, {0, 100}, {100, 100}, {200, 100}}, 125.0};
}

Tree diamond_tree() {
  Tree t{5};
  t.set_root(0);
  t.add_node(1, 0);
  t.add_node(2, 0);
  t.add_node(3, 1);
  t.add_node(4, 3);
  t.recompute_ranks();
  return t;
}

TEST(Repair, ReparentPicksLowestLevelNeighbor) {
  const auto topo = diamond();
  Tree t = diamond_tree();
  RepairService repair{topo, t, {}};
  // Node 3 loses parent 1: the only other member neighbor is 2 (level 1).
  EXPECT_TRUE(repair.reparent(3, [](net::NodeId n) { return n != 1; }));
  EXPECT_EQ(t.parent(3), 2);
  EXPECT_EQ(t.level(3), 2);
  EXPECT_EQ(t.level(4), 3);  // subtree moved along
  EXPECT_EQ(t.rank(2), 2);
  EXPECT_EQ(t.rank(1), 0);
}

TEST(Repair, ReparentFailsWithoutCandidates) {
  const auto topo = diamond();
  Tree t = diamond_tree();
  RepairService repair{topo, t, {}};
  // Node 4's only neighbor is its parent 3.
  EXPECT_FALSE(repair.reparent(4, [](net::NodeId) { return true; }));
  EXPECT_EQ(t.parent(4), 3);
}

TEST(Repair, ReparentSkipsDeadCandidates) {
  const auto topo = diamond();
  Tree t = diamond_tree();
  RepairService repair{topo, t, {}};
  // Both 1 (old parent) and 2 dead: nothing to attach to.
  EXPECT_FALSE(repair.reparent(3, [](net::NodeId n) { return n != 1 && n != 2; }));
}

TEST(Repair, HooksFireOnReparent) {
  const auto topo = diamond();
  Tree t = diamond_tree();
  std::vector<net::NodeId> rank_changed;
  net::NodeId moved = net::kNoNode, new_parent = net::kNoNode,
              lost_child_parent = net::kNoNode;
  RepairService::Hooks hooks;
  hooks.on_rank_changed = [&](net::NodeId n) { rank_changed.push_back(n); };
  hooks.on_parent_changed = [&](net::NodeId c, net::NodeId p) {
    moved = c;
    new_parent = p;
  };
  hooks.on_child_removed = [&](net::NodeId p, net::NodeId) {
    lost_child_parent = p;
  };
  RepairService repair{topo, t, std::move(hooks)};
  ASSERT_TRUE(repair.reparent(3, [](net::NodeId n) { return n != 1; }));
  EXPECT_EQ(moved, 3);
  EXPECT_EQ(new_parent, 2);
  EXPECT_EQ(lost_child_parent, 1);
  // Ranks changed for 1 (2 -> 0) and 2 (0 -> 2).
  EXPECT_NE(std::find(rank_changed.begin(), rank_changed.end(), 1), rank_changed.end());
  EXPECT_NE(std::find(rank_changed.begin(), rank_changed.end(), 2), rank_changed.end());
}

TEST(Repair, RemoveFailedNodeReattachesOrphans) {
  const auto topo = diamond();
  Tree t = diamond_tree();
  RepairService repair{topo, t, {}};
  // Node 1 dies; orphan 3 can rejoin under 2; 4 rejoins under 3.
  const auto stranded =
      repair.remove_failed_node(1, [](net::NodeId n) { return n != 1; });
  EXPECT_TRUE(stranded.empty());
  EXPECT_FALSE(t.is_member(1));
  EXPECT_TRUE(t.is_member(3));
  EXPECT_EQ(t.parent(3), 2);
  EXPECT_TRUE(t.is_member(4));
  EXPECT_EQ(t.parent(4), 3);
}

TEST(Repair, RemoveFailedNodeReportsStranded) {
  // 4's only route was through 3; kill 3 and 4 is stranded.
  const auto topo = diamond();
  Tree t = diamond_tree();
  RepairService repair{topo, t, {}};
  const auto stranded =
      repair.remove_failed_node(3, [](net::NodeId n) { return n != 3; });
  EXPECT_EQ(stranded, (std::vector<net::NodeId>{4}));
  EXPECT_FALSE(t.is_member(4));
}

// ------------------------------------------------- bounded-backoff retries

TEST(RepairRetries, RejoinRetriesUntilCandidateAppears) {
  const auto topo = diamond();
  Tree t = diamond_tree();
  RepairService repair{topo, t};
  sim::Simulator sim;
  // Node 1 dies and node 2 is initially unusable, so orphan 3 cannot
  // rejoin until 2 comes back at t=10s; by then the immediate attempt and
  // at least two backoff retries have failed.
  bool two_alive = false;
  repair.enable_retries(sim, util::Rng{7}.fork(1), {},
                        [&](net::NodeId n) { return n != 1 && (n != 2 || two_alive); });
  std::vector<net::NodeId> rejoined;
  repair.set_rejoin_callback([&](net::NodeId n) { rejoined.push_back(n); });

  (void)repair.remove_failed_node(1, [](net::NodeId n) { return n != 1 && n != 2; });
  ASSERT_FALSE(t.is_member(3));
  repair.request_rejoin(3);
  EXPECT_FALSE(t.is_member(3));  // the immediate attempt failed
  // One re-attach attempt inside remove_failed_node plus the immediate
  // rejoin attempt.
  EXPECT_EQ(repair.repair_attempts(3), 2u);

  sim.schedule_at(util::Time::seconds(10), [&] { two_alive = true; });
  sim.run();

  EXPECT_TRUE(t.is_member(3));
  EXPECT_EQ(t.parent(3), 2);
  // The stranded grandchild 4 keeps its own backoff clock and rejoins
  // through 3 once 3 is a member again.
  EXPECT_TRUE(t.is_member(4));
  EXPECT_EQ(t.parent(4), 3);
  EXPECT_EQ(rejoined, (std::vector<net::NodeId>{3, 4}));
  // The backoff sums to well past 10s before the budget runs out, so some
  // retries failed before 2 revived and one succeeded after.
  EXPECT_GE(repair.repair_attempts(3), 3u);
}

TEST(RepairRetries, RejoinStopsAfterMaxAttempts) {
  const auto topo = diamond();
  Tree t = diamond_tree();
  RepairService repair{topo, t};
  sim::Simulator sim;
  RepairService::RetryParams params;
  params.max_attempts = 4;
  repair.enable_retries(sim, util::Rng{7}.fork(1), params,
                        [](net::NodeId n) { return n != 1 && n != 2; });

  (void)repair.remove_failed_node(1, [](net::NodeId n) { return n != 1 && n != 2; });
  repair.request_rejoin(3);
  sim.run();  // drains: the budget bounds the retry timers

  // One attempt inside remove_failed_node, one immediate rejoin attempt,
  // then exactly max_attempts backoff retries — and silence.
  EXPECT_EQ(repair.repair_attempts(3), 6u);
  EXPECT_FALSE(t.is_member(3));
}

TEST(RepairRetries, BackoffDelaysAreBoundedByCap) {
  const auto topo = diamond();
  Tree t = diamond_tree();
  RepairService repair{topo, t};
  sim::Simulator sim;
  RepairService::RetryParams params;  // base 250ms, cap 8s, jitter 0.25
  repair.enable_retries(sim, util::Rng{7}.fork(1), params,
                        [](net::NodeId n) { return n != 1 && n != 2; });
  (void)repair.remove_failed_node(1, [](net::NodeId n) { return n != 1 && n != 2; });
  repair.request_rejoin(3);
  sim.run();
  // Worst case: 8 retries all at the jittered cap of 8 * 1.25 = 10s.
  EXPECT_LE(sim.now(), util::Time::seconds(80));
}

TEST(RepairRetries, RejoinOfExistingMemberFiresCallbackImmediately) {
  const auto topo = diamond();
  Tree t = diamond_tree();
  RepairService repair{topo, t};
  sim::Simulator sim;
  repair.enable_retries(sim, util::Rng{7}.fork(1), {},
                        [](net::NodeId) { return true; });
  std::vector<net::NodeId> rejoined;
  repair.set_rejoin_callback([&](net::NodeId n) { rejoined.push_back(n); });
  repair.request_rejoin(4);  // already a member
  EXPECT_EQ(rejoined, (std::vector<net::NodeId>{4}));
  EXPECT_EQ(repair.repair_attempts(4), 1u);
}

TEST(Repair, SetHooksAfterConstruction) {
  const auto topo = diamond();
  Tree t = diamond_tree();
  RepairService repair{topo, t};
  bool fired = false;
  RepairService::Hooks hooks;
  hooks.on_parent_changed = [&](net::NodeId, net::NodeId) { fired = true; };
  repair.set_hooks(std::move(hooks));
  ASSERT_TRUE(repair.reparent(3, [](net::NodeId n) { return n != 1; }));
  EXPECT_TRUE(fired);
}

}  // namespace
}  // namespace essat::routing
