// Acceptance checks for whole-trial snapshot capture/restore (src/snap):
//  * A hooked (capturing) run is bit-identical to a plain run_scenario
//    call — the split-run_until barrier injects nothing.
//  * resume_trial replays to the barrier, attests the rebuilt state
//    byte-for-byte, and finishes with RunMetrics bit-identical to the
//    straight run — across a protocol x topology x rate grid including
//    ETX routing, shadowing and bursty channels, mobility, distributed
//    setup, and node failures.
//  * Snapshot bytes are a pure function of the config (capture twice ->
//    identical), survive the file round trip, and corruption of any layer
//    (container CRC, attested state) is detected loudly.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "src/harness/scenario.h"
#include "src/net/link_model.h"
#include "src/net/mobility.h"
#include "src/snap/config_codec.h"
#include "src/snap/metrics_codec.h"
#include "src/snap/serializer.h"
#include "src/snap/snapshot.h"
#include "src/snap/snapshot_io.h"
#include "src/snap/trial.h"

namespace essat::snap {
namespace {

using util::Time;

harness::ScenarioConfig small_base() {
  harness::ScenarioConfig c;
  c.deployment.num_nodes = 12;
  c.deployment.area_m = 250.0;
  c.deployment.range_m = 125.0;
  c.deployment.max_tree_dist_m = 250.0;
  c.workload.base_rate_hz = 1.0;
  c.workload.query_start_window = Time::seconds(1);
  c.setup_duration = Time::seconds(2);
  c.measure_duration = Time::seconds(4);
  c.latency_grace = Time::seconds(1);
  c.seed = 7;
  return c;
}

// Bit-exactness in one comparison: the RunMetrics codec covers every field
// (including per-node diagnostics, histograms, and the event-count
// bookkeeping), so byte equality of the encodings is the strongest form of
// "the runs were identical".
std::vector<std::uint8_t> fingerprint(const harness::RunMetrics& m) {
  return run_metrics_to_bytes(m);
}

void expect_capture_and_resume_identical(const harness::ScenarioConfig& config,
                                         const std::string& what) {
  SCOPED_TRACE(what);
  const harness::RunMetrics straight = harness::run_scenario(config);
  const TrialCapture cap = capture_trial(config);
  const harness::RunMetrics resumed = resume_trial(cap.snapshot);
  EXPECT_EQ(fingerprint(straight), fingerprint(cap.metrics))
      << what << ": capturing perturbed the run";
  EXPECT_EQ(fingerprint(straight), fingerprint(resumed))
      << what << ": resumed run diverged from the straight run";
}

TEST(SnapTrial, ProtocolGridBitIdentical) {
  for (const harness::Protocol p :
       {harness::Protocol::kNtsSs, harness::Protocol::kStsSs,
        harness::Protocol::kDtsSs, harness::Protocol::kSync,
        harness::Protocol::kPsm, harness::Protocol::kSpan}) {
    harness::ScenarioConfig c = small_base();
    c.protocol = p;
    expect_capture_and_resume_identical(c, c.protocol.name);
  }
}

TEST(SnapTrial, TopologyRateGridBitIdentical) {
  for (const net::TopologyKind kind :
       {net::TopologyKind::kGrid, net::TopologyKind::kClustered,
        net::TopologyKind::kCorridor}) {
    for (const double rate : {1.0, 2.0}) {
      harness::ScenarioConfig c = small_base();
      c.deployment.kind = kind;
      c.workload.base_rate_hz = rate;
      expect_capture_and_resume_identical(
          c, std::string{net::topology_kind_name(kind)} + " @" +
                 std::to_string(rate) + "Hz");
    }
  }
}

TEST(SnapTrial, EtxShadowingDistributedSetupBitIdentical) {
  harness::ScenarioConfig c = small_base();
  c.routing.policy = "etx";
  c.channel_model.kind = net::LinkModelKind::kLogNormalShadowing;
  c.use_distributed_setup = true;
  expect_capture_and_resume_identical(c, "etx + shadowing + distributed");
}

TEST(SnapTrial, GilbertElliottChannelBitIdentical) {
  harness::ScenarioConfig c = small_base();
  c.channel_model.kind = net::LinkModelKind::kGilbertElliott;
  expect_capture_and_resume_identical(c, "gilbert-elliott");
}

TEST(SnapTrial, MobilityMaintenanceFailuresBitIdentical) {
  harness::ScenarioConfig c = small_base();
  c.mobility.kind = net::MobilityKind::kRandomWaypoint;
  c.mobility.epoch_s = 1.0;
  c.enable_maintenance = true;
  c.failures.push_back({net::NodeId{3}, Time::seconds(2)});
  expect_capture_and_resume_identical(c, "waypoint + maintenance + failure");
}

TEST(SnapTrial, ExtraQueriesAndStsDeadlineBitIdentical) {
  harness::ScenarioConfig c = small_base();
  c.protocol = harness::Protocol::kStsSs;
  c.sts_deadline = Time::seconds(2);
  c.workload.extra_queries.push_back(query::Query{
      net::kNoQuery, Time::seconds(2), Time::seconds(4), 1});
  expect_capture_and_resume_identical(c, "extra queries + sts deadline");
}

// Snapshot bytes are a pure function of the config: two captures (and their
// framed wire forms) are identical, which is what makes them diffable
// across ESSAT_JOBS values and machines.
TEST(SnapTrial, CaptureIsDeterministic) {
  const harness::ScenarioConfig c = small_base();
  const TrialCapture a = capture_trial(c);
  const TrialCapture b = capture_trial(c);
  EXPECT_EQ(a.snapshot.payload, b.snapshot.payload);
  EXPECT_EQ(a.snapshot.to_bytes(), b.snapshot.to_bytes());
}

TEST(SnapTrial, FileRoundTripAndResume) {
  const std::string path = "snap_trial_test.roundtrip.snap";
  const harness::ScenarioConfig c = small_base();
  const TrialCapture cap = capture_trial(c);
  write_snapshot_file(path, cap.snapshot);
  const Snapshot loaded = read_snapshot_file(path);
  std::remove(path.c_str());
  EXPECT_EQ(loaded.payload, cap.snapshot.payload);
  EXPECT_EQ(fingerprint(resume_trial(loaded)), fingerprint(cap.metrics));
}

TEST(SnapTrial, ContainerCorruptionDetected) {
  const TrialCapture cap = capture_trial(small_base());
  std::vector<std::uint8_t> wire = cap.snapshot.to_bytes();
  wire[wire.size() / 2] ^= 0x01;  // payload byte: CRC must catch it
  EXPECT_THROW((void)Snapshot::from_bytes(wire.data(), wire.size()), SnapError);
}

TEST(SnapTrial, AttestationCatchesTamperedState) {
  const TrialCapture cap = capture_trial(small_base());
  TrialImage image = decode_trial(cap.snapshot);
  ASSERT_FALSE(image.state.empty());
  image.state[image.state.size() / 2] ^= 0x01;
  EXPECT_THROW((void)resume_trial(image), SnapError);
}

TEST(SnapTrial, DecodeRejectsWrongKind) {
  Snapshot s;
  s.kind = SnapshotKind::kMetrics;
  EXPECT_THROW((void)decode_trial(s), SnapError);
}

// The config codec is stable through a full round trip, including the
// optional and nested fields the grid above does not exercise.
TEST(SnapTrial, ConfigCodecRoundTrip) {
  harness::ScenarioConfig c = small_base();
  c.protocol = "SPAN";
  c.deployment.kind = net::TopologyKind::kClustered;
  c.channel_model.kind = net::LinkModelKind::kGilbertElliott;
  c.channel_model.gilbert_base = net::LinkModelKind::kLogNormalShadowing;
  c.channel_model.prr_scale = 0.9;
  c.mobility.kind = net::MobilityKind::kWaypoints;
  c.mobility.traces.push_back(net::WaypointTrace{
      net::NodeId{2},
      {{Time::seconds(1), net::Position{10.0, 20.0}},
       {Time::seconds(3), net::Position{30.0, 5.0}}}});
  c.routing.policy = "etx";
  c.sts_deadline = Time::from_milliseconds(750);
  c.use_distributed_setup = true;
  c.enable_maintenance = true;
  c.failures.push_back({net::NodeId{5}, Time::seconds(1)});
  c.workload.extra_queries.push_back(
      query::Query{net::QueryId{9}, Time::seconds(3), Time::seconds(8), 2});
  c.trace.enabled = true;
  c.trace.nodes = {0, 3};
  c.trace.only_seed = 42;
  c.trace.sample_period = Time::from_milliseconds(10);
  c.trace.perfetto_path = "out-{seed}.json";
  c.seed = 99;

  const std::vector<std::uint8_t> bytes = scenario_config_to_bytes(c);
  const harness::ScenarioConfig back =
      scenario_config_from_bytes(bytes.data(), bytes.size());
  EXPECT_EQ(scenario_config_to_bytes(back), bytes);
  EXPECT_EQ(back.protocol.name, "SPAN");
  EXPECT_EQ(back.mobility.traces.size(), 1u);
  EXPECT_EQ(back.mobility.traces[0].points[1].second.x, 30.0);
  ASSERT_TRUE(back.sts_deadline.has_value());
  EXPECT_EQ(*back.sts_deadline, Time::from_milliseconds(750));
  ASSERT_TRUE(back.trace.only_seed.has_value());
  EXPECT_EQ(*back.trace.only_seed, 42u);
  EXPECT_EQ(back.trace.perfetto_path, "out-{seed}.json");
}

}  // namespace
}  // namespace essat::snap
