#include <gtest/gtest.h>

#include <memory>

#include "src/baselines/psm.h"
#include "src/baselines/span.h"
#include "src/baselines/sync.h"
#include "src/net/channel.h"
#include "src/routing/tree.h"

namespace essat::baselines {
namespace {

using util::Time;

struct BaselineRig {
  explicit BaselineRig(std::size_t n)
      : topo{net::Topology::line(n, 100.0, 125.0)}, channel{sim, topo} {
    for (std::size_t i = 0; i < n; ++i) {
      radios.push_back(std::make_unique<energy::Radio>(sim, energy::RadioParams{}));
      macs.push_back(std::make_unique<mac::CsmaMac>(sim, channel, *radios.back(),
                                                    static_cast<net::NodeId>(i),
                                                    mac::MacParams{}, util::Rng{31 + i}));
    }
  }

  sim::Simulator sim;
  net::Topology topo;
  net::Channel channel;
  std::vector<std::unique_ptr<energy::Radio>> radios;
  std::vector<std::unique_ptr<mac::CsmaMac>> macs;
};

TEST(Sync, DutyCycleMatchesConfiguration) {
  BaselineRig rig{1};
  SyncNode sync{rig.sim, *rig.radios[0], *rig.macs[0], SyncParams{}};
  sync.start(Time::zero());
  rig.radios[0]->begin_measurement();
  rig.sim.run_until(Time::seconds(20));
  // 20% duty, 0.2 s period (§5). Transition latencies push it slightly up.
  EXPECT_NEAR(rig.radios[0]->duty_cycle(), 0.20, 0.05);
}

TEST(Sync, BuffersFramesUntilActiveWindow) {
  BaselineRig rig{2};
  SyncNode s0{rig.sim, *rig.radios[0], *rig.macs[0], SyncParams{}};
  SyncNode s1{rig.sim, *rig.radios[1], *rig.macs[1], SyncParams{}};
  s0.start(Time::milliseconds(200));
  s1.start(Time::milliseconds(200));

  Time delivered_at = Time::zero();
  rig.macs[1]->set_rx_handler([&](const net::Packet&) { delivered_at = rig.sim.now(); });
  // Enqueue mid-sleep (t = 150 ms): must wait for the 200 ms window.
  rig.sim.schedule_at(Time::milliseconds(150), [&] {
    net::DataHeader h;
    rig.macs[0]->send(net::make_data_packet(0, 1, h));
  });
  rig.sim.run_until(Time::seconds(1));
  EXPECT_GE(delivered_at, Time::milliseconds(200));
  EXPECT_LT(delivered_at, Time::milliseconds(240));  // inside the window
}

TEST(Sync, SchedulesAreNetworkSynchronized) {
  BaselineRig rig{2};
  SyncNode s0{rig.sim, *rig.radios[0], *rig.macs[0], SyncParams{}};
  SyncNode s1{rig.sim, *rig.radios[1], *rig.macs[1], SyncParams{}};
  s0.start(Time::zero());
  s1.start(Time::zero());
  rig.sim.run_until(Time::milliseconds(20));
  EXPECT_TRUE(s0.in_active_window());
  EXPECT_TRUE(s1.in_active_window());
  rig.sim.run_until(Time::milliseconds(100));
  EXPECT_FALSE(s0.in_active_window());
  EXPECT_FALSE(s1.in_active_window());
}

TEST(Sync, GuardBlocksLateTransmissions) {
  BaselineRig rig{2};
  SyncParams params;
  SyncNode s0{rig.sim, *rig.radios[0], *rig.macs[0], params};
  SyncNode s1{rig.sim, *rig.radios[1], *rig.macs[1], params};
  s0.start(Time::zero());
  s1.start(Time::zero());
  Time delivered_at = Time::zero();
  rig.macs[1]->set_rx_handler([&](const net::Packet&) { delivered_at = rig.sim.now(); });
  // Enqueue 0.5 ms before the window closes: under the 2 ms guard, so it
  // waits for the next window at 200 ms.
  rig.sim.schedule_at(Time::from_milliseconds(39.5), [&] {
    net::DataHeader h;
    rig.macs[0]->send(net::make_data_packet(0, 1, h));
  });
  rig.sim.run_until(Time::seconds(1));
  EXPECT_GE(delivered_at, Time::milliseconds(200));
}

TEST(Psm, UninvolvedNodesSleepAfterAtimWindow) {
  BaselineRig rig{2};
  PsmNode p0{rig.sim, *rig.radios[0], *rig.macs[0], PsmParams{}};
  PsmNode p1{rig.sim, *rig.radios[1], *rig.macs[1], PsmParams{}};
  p0.start(Time::zero());
  p1.start(Time::zero());
  rig.radios[0]->begin_measurement();
  rig.sim.run_until(Time::seconds(10));
  // No traffic at all: duty = ATIM window / beacon period = 12.5 %.
  EXPECT_NEAR(rig.radios[0]->duty_cycle(), 0.125, 0.03);
  EXPECT_EQ(p0.atims_sent(), 0u);
}

TEST(Psm, TrafficAnnouncedAndDeliveredInDataWindow) {
  BaselineRig rig{2};
  PsmNode p0{rig.sim, *rig.radios[0], *rig.macs[0], PsmParams{}};
  PsmNode p1{rig.sim, *rig.radios[1], *rig.macs[1], PsmParams{}};
  p0.start(Time::milliseconds(200));
  p1.start(Time::milliseconds(200));
  Time delivered_at = Time::zero();
  rig.macs[0]->set_rx_handler([&](const net::Packet& p) { p0.handle_packet(p); });
  rig.macs[1]->set_rx_handler([&](const net::Packet& p) {
    if (p.type == net::PacketType::kData) {
      delivered_at = rig.sim.now();
    } else {
      p1.handle_packet(p);
    }
  });
  rig.sim.schedule_at(Time::milliseconds(150), [&] {
    net::DataHeader h;
    rig.macs[0]->send(net::make_data_packet(0, 1, h));
  });
  rig.sim.run_until(Time::seconds(1));
  EXPECT_GE(p0.atims_sent(), 1u);
  // Data goes out in the data window following the ATIM announcement.
  EXPECT_GE(delivered_at, Time::milliseconds(225));
  EXPECT_LT(delivered_at, Time::milliseconds(325));
}

TEST(Psm, InvolvedNodesStayAwakeLonger) {
  BaselineRig rig{2};
  PsmNode p0{rig.sim, *rig.radios[0], *rig.macs[0], PsmParams{}};
  PsmNode p1{rig.sim, *rig.radios[1], *rig.macs[1], PsmParams{}};
  p0.start(Time::zero());
  p1.start(Time::zero());
  rig.macs[0]->set_rx_handler([&](const net::Packet& p) { p0.handle_packet(p); });
  rig.macs[1]->set_rx_handler([&](const net::Packet& p) { p1.handle_packet(p); });
  rig.radios[0]->begin_measurement();
  rig.radios[1]->begin_measurement();
  // Persistent traffic 0 -> 1.
  for (int i = 0; i < 50; ++i) {
    rig.sim.schedule_at(Time::milliseconds(i * 200), [&] {
      net::DataHeader h;
      rig.macs[0]->send(net::make_data_packet(0, 1, h));
    });
  }
  rig.sim.run_until(Time::seconds(10));
  // Involved every interval: ATIM (25 ms) + data window (100 ms) of each
  // 200 ms beacon period = 62.5 %.
  EXPECT_NEAR(rig.radios[0]->duty_cycle(), 0.625, 0.05);
  EXPECT_NEAR(rig.radios[1]->duty_cycle(), 0.625, 0.05);
}

TEST(Span, TreeInteriorNodesAreCoordinators) {
  util::Rng rng{5};
  const auto topo = net::Topology::line(5, 100.0, 125.0);
  const auto tree = routing::build_bfs_tree(topo, 0, 10000.0);
  const auto election = elect_coordinators(topo, tree, rng);
  for (net::NodeId n : tree.members()) {
    if (!tree.is_leaf(n)) {
      EXPECT_TRUE(election.coordinator[static_cast<std::size_t>(n)]) << n;
    }
  }
}

TEST(Span, CoverageRuleHoldsAtFixpoint) {
  // After election, every non-coordinator's neighbor pairs are connected
  // directly or via 1-2 coordinators (SPAN's stability condition).
  util::Rng rng{6};
  auto topo = net::Topology::uniform_random(50, 500.0, 125.0, rng);
  const net::NodeId root = topo.nearest({250, 250});
  const auto tree = routing::build_bfs_tree(topo, root, 300.0);
  util::Rng election_rng{7};
  const auto election = elect_coordinators(topo, tree, election_rng);
  for (net::NodeId n = 0; n < 50; ++n) {
    if (election.coordinator[static_cast<std::size_t>(n)]) continue;
    EXPECT_TRUE(neighbors_covered(topo, election.coordinator, n)) << "node " << n;
  }
}

TEST(Span, BackboneIsNontrivialButNotEveryone) {
  util::Rng rng{8};
  auto topo = net::Topology::uniform_random(80, 500.0, 125.0, rng);
  const net::NodeId root = topo.nearest({250, 250});
  const auto tree = routing::build_bfs_tree(topo, root, 300.0);
  util::Rng election_rng{9};
  const auto election = elect_coordinators(topo, tree, election_rng);
  EXPECT_GT(election.coordinator_count, 5);
  EXPECT_LT(election.coordinator_count, 80);
}

TEST(Span, IsolatedPairNeedsNoExtraCoordinators) {
  // Two nodes, root + leaf: the root is interior (coordinator), the leaf
  // has a single neighbor so the pair rule is vacuous.
  const auto topo = net::Topology::line(2, 100.0, 125.0);
  const auto tree = routing::build_bfs_tree(topo, 0, 10000.0);
  util::Rng rng{10};
  const auto election = elect_coordinators(topo, tree, rng);
  EXPECT_TRUE(election.coordinator[0]);
  EXPECT_FALSE(election.coordinator[1]);
  EXPECT_EQ(election.coordinator_count, 1);
}

}  // namespace
}  // namespace essat::baselines
