// Regression tests pinning behavior corrected (or newly machine-enforced)
// by the essat-tidy static-analysis pass:
//
//  * check_conservation used to pick its `detail` string from the first
//    mismatched transmission in unordered_map iteration order, so the
//    reported violation depended on the hash table's layout. It now drains
//    in sorted tx-id order and must name the lowest mismatched tx id
//    regardless of record order.
//  * util::Rng is move-only: a component's stream travels by move, and a
//    moved-in stream must continue exactly where the source was — no reset,
//    no duplicated sequence.
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "src/obs/lifecycle.h"
#include "src/obs/trace_record.h"
#include "src/util/rng.h"

namespace essat {
namespace {

obs::TraceRecord make_record(obs::TraceType type, std::int64_t t_ns,
                             std::int32_t node, std::uint16_t arg16,
                             std::uint64_t a, std::uint64_t b) {
  obs::TraceRecord r;
  r.t_ns = t_ns;
  r.node = node;
  r.type = static_cast<std::uint16_t>(type);
  r.arg16 = arg16;
  r.a = a;
  r.b = b;
  return r;
}

// Two transmissions (tx ids 5 and 9) each expect 2 arrivals but only see 1:
// both are mismatched. The report must name tx 5 — the lowest id — no
// matter which order the records (and thus the map inserts) arrive in.
std::vector<obs::TraceRecord> mismatch_records(bool reversed) {
  // A trailing late record pushes the trace tail far past the grace window
  // so neither tx is skipped as in-flight.
  const auto tx = [](std::uint64_t id, std::int64_t t) {
    return make_record(obs::TraceType::kChanTxBegin, t, 0, /*expected=*/2,
                       /*tx id=*/id, /*prov=*/0);
  };
  const auto deliver = [](std::uint64_t id, std::int64_t t) {
    return make_record(obs::TraceType::kChanDeliver, t, 1, 0, id, 0);
  };
  std::vector<obs::TraceRecord> records;
  if (reversed) {
    records = {tx(9, 2000), deliver(9, 2100), tx(5, 1000), deliver(5, 1100)};
  } else {
    records = {tx(5, 1000), deliver(5, 1100), tx(9, 2000), deliver(9, 2100)};
  }
  records.push_back(make_record(obs::TraceType::kEpochStart,
                                util::Time::seconds(10).ns(), 0, 0, 0, 0));
  return records;
}

TEST(ConservationDeterminism, DetailNamesLowestMismatchedTxId) {
  for (const bool reversed : {false, true}) {
    const auto rep = obs::check_conservation(mismatch_records(reversed));
    EXPECT_FALSE(rep.ok);
    EXPECT_EQ(rep.mismatched, 2u);
    EXPECT_EQ(rep.detail.rfind("tx 5 ", 0), 0u)
        << "reversed=" << reversed << " detail=" << rep.detail;
  }
}

TEST(ConservationDeterminism, DetailIdenticalAcrossRecordOrders) {
  const auto a = obs::check_conservation(mismatch_records(false));
  const auto b = obs::check_conservation(mismatch_records(true));
  EXPECT_EQ(a.detail, b.detail);
  EXPECT_EQ(a.transmissions, b.transmissions);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.mismatched, b.mismatched);
}

TEST(RngStreamDiscipline, MovedStreamContinuesWhereSourceWas) {
  util::Rng source{42};
  util::Rng twin{42};
  // Advance both identically, then move `source` — the moved-to generator
  // must produce exactly the twin's continuation.
  for (int i = 0; i < 17; ++i) {
    source.uniform_int(0, 1 << 30);
    twin.uniform_int(0, 1 << 30);
  }
  util::Rng moved = std::move(source);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(moved.uniform_int(0, 1 << 30), twin.uniform_int(0, 1 << 30));
  }
}

TEST(RngStreamDiscipline, SinkSignaturesConsumeTheStream) {
  // Compile-time contract: Rng is move-only, so any component that stores a
  // stream must have taken it by Rng&& (or built it from fork()) — a silent
  // by-value copy no longer compiles anywhere in the tree.
  static_assert(!std::is_copy_constructible_v<util::Rng>,
                "Rng must not be copyable");
  static_assert(!std::is_copy_assignable_v<util::Rng>,
                "Rng must not be copy-assignable");
  static_assert(std::is_move_constructible_v<util::Rng>,
                "Rng must stay movable");
}

}  // namespace
}  // namespace essat
