// Virtual-carrier-sense behavior: overheard unicast traffic and garbled
// busy periods must defer contenders long enough to protect ACKs — the
// mechanism that keeps epoch-synchronized contention storms from producing
// phantom send failures (data delivered, ACK stomped).
#include <gtest/gtest.h>

#include <memory>

#include "src/mac/csma.h"
#include "src/net/channel.h"

namespace essat::mac {
namespace {

using util::Time;

struct NavRig {
  // Four nodes in one collision domain (25 m spacing, 125 m range).
  NavRig() : topo{net::Topology::line(4, 25.0, 125.0)}, channel{sim, topo} {
    for (std::size_t i = 0; i < 4; ++i) {
      radios.push_back(std::make_unique<energy::Radio>(sim, energy::RadioParams{}));
      macs.push_back(std::make_unique<CsmaMac>(sim, channel, *radios.back(),
                                               static_cast<net::NodeId>(i),
                                               MacParams{}, util::Rng{61 + i}));
    }
  }
  sim::Simulator sim;
  net::Topology topo;
  net::Channel channel;
  std::vector<std::unique_ptr<energy::Radio>> radios;
  std::vector<std::unique_ptr<CsmaMac>> macs;
};

net::Packet data(net::NodeId dst) {
  net::DataHeader h;
  return net::make_data_packet(net::kNoNode, dst, h);
}

TEST(MacNav, OverhearingDefersThroughAckWindow) {
  NavRig rig;
  // Node 0 sends to 1. Node 2 (hearing everything) enqueues a frame to 3
  // exactly when 0's data frame ends — it must hold off long enough that
  // 1's ACK survives, so 0's send succeeds on the first attempt.
  bool ok01 = false;
  rig.macs[0]->send(data(1), [&](bool ok) { ok01 = ok; });
  rig.sim.schedule_at(Time::microseconds(700), [&] {  // mid/end of 0's frame
    rig.macs[2]->send(data(3));
  });
  rig.sim.run_until(Time::milliseconds(100));
  EXPECT_TRUE(ok01);
  EXPECT_EQ(rig.macs[0]->stats().retries, 0u);
  EXPECT_EQ(rig.macs[2]->stats().frames_sent, 1u);  // deferred, then sent
}

TEST(MacNav, ManyOverhearersAllSucceedWithoutAckLoss) {
  NavRig rig;
  // Three senders to node 3, staggered by sub-frame offsets: without
  // NAV/EIFS their contention windows would stomp each other's ACKs.
  int successes = 0;
  for (int i = 0; i < 3; ++i) {
    rig.sim.schedule_at(Time::microseconds(i * 150), [&, i] {
      rig.macs[static_cast<std::size_t>(i)]->send(data(3),
                                                  [&](bool ok) { successes += ok; });
    });
  }
  rig.sim.run_until(Time::seconds(1));
  EXPECT_EQ(successes, 3);
  EXPECT_EQ(rig.macs[3]->stats().frames_received, 3u);
}

TEST(MacNav, EifsParameterExceedsAckExchange) {
  MacParams p;
  EXPECT_GE(p.eifs(), p.sifs + p.ack_duration());
}

TEST(MacNav, BackoffFreezeResumesWithRemainingSlots) {
  // Statistical check: two contenders that both freeze during a long
  // foreign transmission resume staggered (no systematic re-collision).
  NavRig rig;
  int total_retries = 0;
  for (int round = 0; round < 20; ++round) {
    rig.macs[1]->send(data(3));
    rig.macs[2]->send(data(3));
    rig.sim.run_until(rig.sim.now() + Time::milliseconds(50));
  }
  total_retries = static_cast<int>(rig.macs[1]->stats().retries +
                                   rig.macs[2]->stats().retries);
  // Occasional same-slot draws are expected, persistent re-collision isn't.
  EXPECT_LT(total_retries, 20);
  EXPECT_EQ(rig.macs[1]->stats().frames_failed, 0u);
  EXPECT_EQ(rig.macs[2]->stats().frames_failed, 0u);
}

}  // namespace
}  // namespace essat::mac
