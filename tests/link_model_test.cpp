#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "src/net/channel.h"
#include "src/net/link_model.h"
#include "src/sim/simulator.h"

namespace essat::net {
namespace {

using util::Time;

// Three nodes on a line: 0 -- 1 -- 2, with 0 and 2 hidden from each other.
Topology line_topo() { return Topology::line(3, 100.0, 125.0); }

struct Listener : ChannelListener {
  std::vector<std::pair<Packet, bool>> received;

  void on_rx_complete(const Packet& p, bool ok) override {
    received.emplace_back(p, ok);
  }
  void on_channel_activity() override {}

  void listen_on(Channel& ch, NodeId node) {
    ch.attach(node, this);
    ch.set_listening(node, true);
  }
};

Packet test_packet(NodeId src, NodeId dst) {
  DataHeader h;
  h.query = 1;
  return make_data_packet(src, dst, h);
}

// Sends `frames` non-overlapping frames 0 -> 1 and runs to completion.
void send_frames(sim::Simulator& sim, Channel& ch, int frames) {
  for (int i = 0; i < frames; ++i) {
    sim.schedule_at(Time::milliseconds(2 * i), [&ch] {
      ch.start_tx(0, test_packet(0, 1), Time::microseconds(500));
    });
  }
  sim.run();
}

// ------------------------------------------------------------- unit disc

TEST(LinkModel, UnitDiscMatchesNoModelExactly) {
  const Topology topo = line_topo();
  std::uint64_t delivered[2];
  for (int pass = 0; pass < 2; ++pass) {
    sim::Simulator sim;
    Channel ch{sim, topo};
    if (pass == 1) ch.set_link_model(std::make_unique<UnitDiscModel>());
    Listener l1;
    l1.listen_on(ch, 1);
    send_frames(sim, ch, 50);
    delivered[pass] = ch.delivered();
    EXPECT_EQ(ch.dropped_by_model(), 0u);
    EXPECT_EQ(l1.received.size(), 50u);
  }
  EXPECT_EQ(delivered[0], delivered[1]);
}

// --------------------------------------------------------------- shadowing

TEST(LinkModel, ShadowingPrrFallsWithDistance) {
  ShadowingParams p;
  p.shadowing_sigma_db = 0.0;  // isolate the deterministic curve
  LogNormalShadowingModel m{p, 125.0, util::Rng{42}};
  const double near = m.link_prr(0, 1, 40.0);
  const double mid = m.link_prr(0, 2, 90.0);
  const double edge = m.link_prr(0, 3, 124.0);
  EXPECT_GT(near, mid);
  EXPECT_GT(mid, edge);
  EXPECT_GT(near, 0.95);
  EXPECT_GT(edge, 0.5);  // margin at range stays positive by default
  EXPECT_LT(edge, 0.9);
}

TEST(LinkModel, ShadowingLinksAreAsymmetric) {
  ShadowingParams p;  // sigma 4 dB: per-direction gains draw independently
  LogNormalShadowingModel m{p, 125.0, util::Rng{42}};
  EXPECT_NE(m.link_prr(0, 1, 100.0), m.link_prr(1, 0, 100.0));
  // Deterministic: repeated queries at the same distance return the
  // identical value.
  EXPECT_EQ(m.link_prr(0, 1, 100.0), m.link_prr(0, 1, 100.0));
}

TEST(LinkModel, ShadowingPrrTracksDistanceOfTheSameLink) {
  // Mobility regression: the per-link gain is cached, the distance term is
  // not — when the endpoints move, the same link's PRR must move too.
  ShadowingParams p;
  LogNormalShadowingModel m{p, 125.0, util::Rng{42}};
  const double near = m.link_prr(0, 1, 30.0);
  const double far = m.link_prr(0, 1, 124.0);
  EXPECT_GT(near, far);
  // And back: returning to the original distance reproduces the original
  // PRR exactly (same cached gain, same curve).
  EXPECT_EQ(m.link_prr(0, 1, 30.0), near);
}

TEST(LinkModel, ShadowingPerLinkGainIndependentOfQueryOrder) {
  ShadowingParams p;
  LogNormalShadowingModel a{p, 125.0, util::Rng{42}};
  LogNormalShadowingModel b{p, 125.0, util::Rng{42}};
  const double a01 = a.link_prr(0, 1, 100.0);
  (void)b.link_prr(5, 7, 60.0);  // touch another link first
  EXPECT_EQ(b.link_prr(0, 1, 100.0), a01);
}

TEST(LinkModel, ShadowingDropsAndDeliversOnGrayZoneLink) {
  const Topology topo = line_topo();
  sim::Simulator sim;
  Channel ch{sim, topo};
  ShadowingParams p;
  p.shadowing_sigma_db = 0.0;  // PRR(100 m) ~= 0.88: both outcomes certain
  ch.set_link_model(
      std::make_unique<LogNormalShadowingModel>(p, topo.range(), util::Rng{7}));
  Listener l1;
  l1.listen_on(ch, 1);
  send_frames(sim, ch, 400);

  EXPECT_GT(ch.dropped_by_model(), 0u);
  EXPECT_GT(ch.delivered(), 0u);
  EXPECT_EQ(ch.delivered() + ch.dropped_by_model(), 400u);
  // All drops are on the one active directed link.
  EXPECT_EQ(ch.dropped_by_model(0, 1), ch.dropped_by_model());
  EXPECT_EQ(ch.dropped_by_model(1, 0), 0u);
  // Undecodable frames never surface at the attachment (they are neither
  // delivered nor reported as corrupted).
  EXPECT_EQ(l1.received.size(), ch.delivered());
}

// ---------------------------------------------------------- gilbert-elliott

TEST(LinkModel, GilbertElliottAllBadDropsEverything) {
  const Topology topo = line_topo();
  sim::Simulator sim;
  Channel ch{sim, topo};
  GilbertElliottParams p;
  p.p_good_to_bad = 1.0;
  p.p_bad_to_good = 0.0;  // stationary distribution: always bad
  p.prr_bad = 0.0;
  ch.set_link_model(
      std::make_unique<GilbertElliottModel>(p, nullptr, util::Rng{7}));
  Listener l1;
  l1.listen_on(ch, 1);
  send_frames(sim, ch, 30);
  EXPECT_EQ(ch.delivered(), 0u);
  EXPECT_EQ(ch.dropped_by_model(), 30u);
  EXPECT_TRUE(l1.received.empty());
}

TEST(LinkModel, GilbertElliottAllGoodDeliversEverything) {
  const Topology topo = line_topo();
  sim::Simulator sim;
  Channel ch{sim, topo};
  GilbertElliottParams p;
  p.p_good_to_bad = 0.0;
  p.p_bad_to_good = 1.0;
  p.prr_good = 1.0;
  ch.set_link_model(
      std::make_unique<GilbertElliottModel>(p, nullptr, util::Rng{7}));
  Listener l1;
  l1.listen_on(ch, 1);
  send_frames(sim, ch, 30);
  EXPECT_EQ(ch.delivered(), 30u);
  EXPECT_EQ(ch.dropped_by_model(), 0u);
}

TEST(LinkModel, GilbertElliottLossIsBursty) {
  // With slow state flips and a lossy bad state, consecutive-loss runs
  // should appear that independent loss at the same average rarely makes.
  GilbertElliottParams p;
  p.p_good_to_bad = 0.05;
  p.p_bad_to_good = 0.10;
  p.prr_good = 1.0;
  p.prr_bad = 0.0;
  GilbertElliottModel m{p, nullptr, util::Rng{11}};
  int longest_run = 0, run = 0, losses = 0;
  const int frames = 2000;
  for (int i = 0; i < frames; ++i) {
    if (!m.deliver(0, 1, 100.0)) {
      ++losses;
      longest_run = std::max(longest_run, ++run);
    } else {
      run = 0;
    }
  }
  EXPECT_GT(losses, frames / 10);      // bad state is visited
  EXPECT_LT(losses, frames * 9 / 10);  // good state too
  EXPECT_GE(longest_run, 5);           // bursts, not independent drops
}

// ------------------------------------------------------------ the spec

TEST(ChannelModelSpec, KindNamesRoundTrip) {
  for (LinkModelKind k :
       {LinkModelKind::kNone, LinkModelKind::kUnitDisc,
        LinkModelKind::kLogNormalShadowing, LinkModelKind::kGilbertElliott}) {
    EXPECT_EQ(link_model_kind_from_name(link_model_kind_name(k)), k);
  }
  EXPECT_THROW(link_model_kind_from_name("two-ray"), std::invalid_argument);
}

TEST(ChannelModelSpec, BuildsTheRequestedModel) {
  ChannelModelSpec spec;
  spec.kind = LinkModelKind::kNone;
  EXPECT_EQ(spec.build(125.0, util::Rng{1}), nullptr);

  spec.kind = LinkModelKind::kUnitDisc;
  auto unit = spec.build(125.0, util::Rng{1});
  ASSERT_NE(unit, nullptr);
  EXPECT_STREQ(unit->name(), "unit-disc");

  spec.kind = LinkModelKind::kLogNormalShadowing;
  EXPECT_STREQ(spec.build(125.0, util::Rng{1})->name(), "shadowing");

  spec.kind = LinkModelKind::kGilbertElliott;
  spec.gilbert_base = LinkModelKind::kLogNormalShadowing;
  auto ge = spec.build(125.0, util::Rng{1});
  EXPECT_STREQ(ge->name(), "gilbert-elliott");

  spec.gilbert_base = LinkModelKind::kGilbertElliott;
  EXPECT_THROW(spec.build(125.0, util::Rng{1}), std::invalid_argument);
}

TEST(ChannelModelSpec, PrrScaleZeroDropsEverything) {
  const Topology topo = line_topo();
  sim::Simulator sim;
  Channel ch{sim, topo};
  ChannelModelSpec spec;  // unit disc...
  spec.prr_scale = 0.0;   // ...thinned to nothing
  EXPECT_EQ(spec.label(), "unit-disc@0");
  ch.set_link_model(spec.build(topo.range(), util::Rng{3}));
  Listener l1;
  l1.listen_on(ch, 1);
  send_frames(sim, ch, 20);
  EXPECT_EQ(ch.delivered(), 0u);
  EXPECT_EQ(ch.dropped_by_model(), 20u);
}

TEST(ChannelModelSpec, NoneWithThinningStillThins) {
  // "none@0.5" must mean what its label says: the legacy-path escape only
  // applies when there is truly nothing to model.
  ChannelModelSpec spec;
  spec.kind = LinkModelKind::kNone;
  EXPECT_EQ(spec.build(125.0, util::Rng{3}), nullptr);
  spec.prr_scale = 0.0;
  auto model = spec.build(125.0, util::Rng{3});
  ASSERT_NE(model, nullptr);
  EXPECT_FALSE(model->deliver(0, 1, 50.0));
}

TEST(ChannelModelSpec, LabelIsKindPlusThinning) {
  ChannelModelSpec spec;
  EXPECT_EQ(spec.label(), "unit-disc");
  spec.kind = LinkModelKind::kGilbertElliott;
  spec.prr_scale = 0.9;
  EXPECT_EQ(spec.label(), "gilbert-elliott@0.9");
}

// ------------------------------------------------- channel-level semantics

// A scriptable model: drops every frame whose sender is in the kill set.
class KillSender : public LinkModel {
 public:
  explicit KillSender(std::vector<NodeId> senders) : senders_(std::move(senders)) {}
  bool deliver(NodeId src, NodeId, double) override {
    for (NodeId s : senders_) {
      if (s == src) return false;
    }
    return true;
  }
  const char* name() const override { return "kill-sender"; }

 private:
  std::vector<NodeId> senders_;
};

TEST(ChannelWithLinkModel, DroppedFrameDoesNotCorruptOngoingReception) {
  // Hidden terminals 0 and 2 overlap at receiver 1. Without a model that is
  // a collision; when the model declares 2's frame undecodable at 1, 0's
  // reception survives (gray-zone energy does not resync the radio).
  const Topology topo = line_topo();
  sim::Simulator sim;
  Channel ch{sim, topo};
  ch.set_link_model(std::make_unique<KillSender>(std::vector<NodeId>{2}));
  Listener l1;
  l1.listen_on(ch, 1);

  ch.start_tx(0, test_packet(0, 1), Time::microseconds(500));
  sim.schedule_at(Time::microseconds(200), [&] {
    ch.start_tx(2, test_packet(2, 1), Time::microseconds(500));
  });
  sim.run();

  ASSERT_EQ(l1.received.size(), 1u);
  EXPECT_TRUE(l1.received[0].second);
  EXPECT_EQ(l1.received[0].first.link_src, 0);
  EXPECT_EQ(ch.collisions(), 0u);
  EXPECT_EQ(ch.dropped_by_model(), 1u);
  EXPECT_EQ(ch.dropped_by_model(2, 1), 1u);
}

TEST(ChannelWithLinkModel, DroppedFrameStillOccupiesAirForCarrierSense) {
  const Topology topo = line_topo();
  sim::Simulator sim;
  Channel ch{sim, topo};
  ch.set_link_model(std::make_unique<KillSender>(std::vector<NodeId>{0}));
  Listener l1;
  l1.listen_on(ch, 1);

  ch.start_tx(0, test_packet(0, 1), Time::microseconds(500));
  bool busy_mid_frame = false;
  sim.schedule_at(Time::microseconds(250), [&] { busy_mid_frame = ch.busy(1); });
  sim.run();

  EXPECT_TRUE(busy_mid_frame);
  EXPECT_FALSE(ch.busy(1));  // air clears after the frame ends
  EXPECT_TRUE(l1.received.empty());
  EXPECT_EQ(ch.dropped_by_model(), 1u);
}

// ------------------------------------------------------------- prr trace

TEST(PrrTrace, ParsesEntriesCommentsAndBlankLines) {
  const auto entries = parse_prr_trace(
      "# measured testbed PRRs\n"
      "0 1 0.85\n"
      "\n"
      "1 0 0.6   # reverse direction\n"
      "2 1 1.0\n");
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].src, 0);
  EXPECT_EQ(entries[0].dst, 1);
  EXPECT_EQ(entries[0].prr, 0.85);
  EXPECT_EQ(entries[1].prr, 0.6);
  EXPECT_EQ(entries[2].src, 2);
}

TEST(PrrTrace, RejectsMalformedLines) {
  EXPECT_THROW(parse_prr_trace("0 1\n"), std::invalid_argument);
  EXPECT_THROW(parse_prr_trace("a b 0.5\n"), std::invalid_argument);
  EXPECT_THROW(parse_prr_trace("0 1 1.5\n"), std::invalid_argument);
  EXPECT_THROW(parse_prr_trace("0 1 -0.1\n"), std::invalid_argument);
  EXPECT_THROW(parse_prr_trace("0 1 0.5 junk\n"), std::invalid_argument);
}

TEST(PrrTrace, ModelHonoursPerLinkRatesAndDefault) {
  // prr 1 delivers always, prr 0 never; an unlisted link uses the default.
  PrrTraceModel m{{{0, 1, 1.0}, {1, 0, 0.0}}, /*default_prr=*/0.0,
                  util::Rng{5}};
  EXPECT_STREQ(m.name(), "prr-trace");
  EXPECT_EQ(m.expected_prr(0, 1, 100.0), 1.0);
  EXPECT_EQ(m.expected_prr(1, 0, 100.0), 0.0);
  EXPECT_EQ(m.expected_prr(5, 7, 100.0), 0.0);  // default
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(m.deliver(0, 1, 100.0));
    EXPECT_FALSE(m.deliver(1, 0, 100.0));
    EXPECT_FALSE(m.deliver(9, 3, 100.0));
  }
}

TEST(PrrTrace, IntermediateRateLossesAreDeterministic) {
  std::vector<int> delivered;
  for (int pass = 0; pass < 2; ++pass) {
    PrrTraceModel m{{{0, 1, 0.5}}, 1.0, util::Rng{42}};
    int n = 0;
    for (int i = 0; i < 400; ++i) n += m.deliver(0, 1, 100.0) ? 1 : 0;
    delivered.push_back(n);
  }
  EXPECT_EQ(delivered[0], delivered[1]);
  EXPECT_GT(delivered[0], 100);
  EXPECT_LT(delivered[0], 300);
}

TEST(PrrTrace, SpecBuildsTraceModelOnChannel) {
  const Topology topo = line_topo();
  sim::Simulator sim;
  Channel ch{sim, topo};
  ChannelModelSpec spec;
  spec.kind = LinkModelKind::kPrrTrace;
  spec.prr_trace = {{0, 1, 0.0}};  // the only exercised link never decodes
  spec.prr_trace_default = 1.0;
  EXPECT_EQ(spec.label(), "prr-trace");
  ch.set_link_model(spec.build(topo.range(), util::Rng{3}));
  Listener l1;
  l1.listen_on(ch, 1);
  send_frames(sim, ch, 20);
  EXPECT_EQ(ch.delivered(), 0u);
  EXPECT_EQ(ch.dropped_by_model(), 20u);
  EXPECT_EQ(ch.dropped_by_model(0, 1), 20u);
}

TEST(PrrTrace, KindNameRoundTrips) {
  EXPECT_EQ(link_model_kind_from_name(link_model_kind_name(
                LinkModelKind::kPrrTrace)),
            LinkModelKind::kPrrTrace);
}

TEST(ChannelWithLinkModel, SameSeedSameLossSequence) {
  const Topology topo = line_topo();
  std::vector<std::uint64_t> delivered, dropped;
  for (int pass = 0; pass < 2; ++pass) {
    sim::Simulator sim;
    Channel ch{sim, topo};
    ChannelModelSpec spec;
    spec.kind = LinkModelKind::kGilbertElliott;
    spec.gilbert_base = LinkModelKind::kLogNormalShadowing;
    spec.prr_scale = 0.95;
    ch.set_link_model(spec.build(topo.range(), util::Rng{99}));
    Listener l1;
    l1.listen_on(ch, 1);
    send_frames(sim, ch, 200);
    delivered.push_back(ch.delivered());
    dropped.push_back(ch.dropped_by_model());
  }
  EXPECT_EQ(delivered[0], delivered[1]);
  EXPECT_EQ(dropped[0], dropped[1]);
  EXPECT_GT(dropped[0], 0u);
}

}  // namespace
}  // namespace essat::net
