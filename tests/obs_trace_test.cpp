// Tests for the observability layer (src/obs): record layout, ring
// accounting, TraceSpec filters, the zero-overhead discipline of the
// disabled path, packet-lifecycle reconstruction, the conservation oracle
// across a protocol x topology x rate grid, determinism of traced runs,
// byte-identical traces across sweep thread counts, and bounded-memory
// time-series sampling.
#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "bench/alloc_hook.h"
#include "src/essat.h"

namespace essat {
namespace {

using obs::DropReason;
using obs::TraceRecord;
using obs::Tracer;
using obs::TraceSpec;
using obs::TraceType;
using util::Time;

TraceSpec basic_spec() {
  TraceSpec spec;
  spec.enabled = true;
  return spec;
}

harness::ScenarioConfig small_config() {
  harness::ScenarioConfig c;
  c.protocol = harness::Protocol::kDtsSs;
  c.deployment.num_nodes = 30;
  c.deployment.area_m = 300.0;
  c.deployment.max_tree_dist_m = 300.0;
  c.workload.base_rate_hz = 2.0;
  c.measure_duration = Time::seconds(10);
  c.seed = 7;
  return c;
}

// ------------------------------------------------------------ records

TEST(TraceRecord, LayoutAndAccessors) {
  static_assert(sizeof(TraceRecord) == 32, "ring stride");
  const auto arg16 = static_cast<std::uint16_t>(
      static_cast<unsigned>(DropReason::kCaptured) << 8 | 3u);
  const TraceRecord r = TraceRecord::make(TraceType::kChanDrop,
                                          Time::seconds(2), 5, arg16, 77, 88);
  EXPECT_EQ(r.t_ns, 2'000'000'000);
  EXPECT_EQ(r.trace_type(), TraceType::kChanDrop);
  EXPECT_EQ(r.drop_reason(), DropReason::kCaptured);
  EXPECT_EQ(r.packet_type(), 3);
  EXPECT_EQ(r.a, 77u);
  EXPECT_EQ(r.b, 88u);
}

TEST(Tracer, RingOverwritesOldestAndCountsIt) {
  TraceSpec spec = basic_spec();
  spec.buffer_cap = 64;
  Tracer tracer(spec);
  for (int i = 0; i < 100; ++i) {
    tracer.emit(TraceType::kMacEnqueue, Time::microseconds(i), 1, 0,
                static_cast<std::uint64_t>(i), 0);
  }
  EXPECT_EQ(tracer.capacity(), 64u);
  EXPECT_EQ(tracer.size(), 64u);
  EXPECT_EQ(tracer.emitted(), 100u);
  EXPECT_EQ(tracer.overwritten(), 36u);
  const auto records = tracer.snapshot();
  ASSERT_EQ(records.size(), 64u);
  // Oldest-first, and the oldest surviving record is #36.
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].a, 36 + i);
  }
}

TEST(Tracer, FiltersTypeNodeAndTimeWindow) {
  TraceSpec spec = basic_spec();
  spec.type_mask = obs::trace_bit(TraceType::kMacEnqueue);
  spec.nodes = {2, 4};
  spec.begin = Time::seconds(1);
  spec.end = Time::seconds(2);
  Tracer tracer(spec);

  auto emit = [&](TraceType t, double sec, std::int32_t node) {
    tracer.emit(t, Time::seconds(sec), node, 0, 0, 0);
  };
  emit(TraceType::kMacSendOk, 1.5, 2);   // wrong type
  emit(TraceType::kMacEnqueue, 0.5, 2);  // before window
  emit(TraceType::kMacEnqueue, 2.0, 2);  // at end (exclusive)
  emit(TraceType::kMacEnqueue, 1.5, 3);  // node filtered out
  emit(TraceType::kMacEnqueue, 1.5, 4);  // passes
  emit(TraceType::kMacEnqueue, 1.5, -1); // global records always pass nodes
  EXPECT_EQ(tracer.emitted(), 2u);
  const auto records = tracer.snapshot();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].node, 4);
  EXPECT_EQ(records[1].node, -1);
}

// ------------------------------------------------------------ zero overhead

TEST(TracingOverhead, ArgumentsNotEvaluatedWithoutTracer) {
  sim::Simulator sim;  // no tracer installed
  int evaluations = 0;
  ESSAT_TRACE(sim, TraceType::kMacEnqueue, 1, 0,
              static_cast<std::uint64_t>(++evaluations), 0);
  EXPECT_EQ(evaluations, 0) << "disabled tracing must not evaluate arguments";
}

TEST(TracingOverhead, EmitNeverAllocates) {
  TraceSpec spec = basic_spec();
  spec.buffer_cap = 1024;
  Tracer tracer(spec);
  tracer.emit(TraceType::kMacEnqueue, Time::zero(), 0, 0, 0, 0);  // warm
  bench_alloc::AllocationCounter scope;
  for (int i = 0; i < 100'000; ++i) {
    tracer.emit(TraceType::kMacEnqueue, Time::microseconds(i), i & 7, 0,
                static_cast<std::uint64_t>(i), 0);
  }
  EXPECT_EQ(scope.count(), 0u) << "emit() allocated on the hot path";
}

TEST(TracingOverhead, DisabledPathIsAPredictableBranch) {
  sim::Simulator sim;  // no tracer: every site costs one null test
  const int n = 10'000'000;
  std::uint64_t sink = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < n; ++i) {
    ESSAT_TRACE(sim, TraceType::kMacEnqueue, 1, 0,
                static_cast<std::uint64_t>(++sink), 0);
  }
  const double ns_per =
      std::chrono::duration<double, std::nano>(std::chrono::steady_clock::now() -
                                               t0)
          .count() /
      n;
  EXPECT_EQ(sink, 0u);
  // Generous bound (a real branch costs well under 1 ns; sanitizer builds
  // inflate it): the point is that the disabled site is nanoseconds, not a
  // call into formatting or I/O.
  EXPECT_LT(ns_per, 100.0);
}

// ------------------------------------------------------------ lifecycle

TEST(TracedRun, ReconstructsReportLifecycles) {
  harness::ScenarioConfig config = small_config();
  config.trace = basic_spec();
  std::vector<TraceRecord> records;
  config.trace.sink = [&](const Tracer& tracer) {
    EXPECT_EQ(tracer.overwritten(), 0u);
    records = tracer.snapshot();
  };
  harness::run_scenario(config);
  ASSERT_FALSE(records.empty());

  // Pick a root delivery and walk its story backwards.
  std::uint64_t prov = 0;
  for (const TraceRecord& r : records) {
    if (r.trace_type() == TraceType::kRootDeliver && r.a != 0) {
      prov = r.a;
      break;
    }
  }
  ASSERT_NE(prov, 0u) << "no report reached the root";

  const auto story = obs::packet_lifecycle(records, prov);
  ASSERT_FALSE(story.empty());
  // A report's first trace is its submission at the originating node...
  EXPECT_EQ(story.front().trace_type(), TraceType::kReportSubmit);
  // ...and the hop-by-hop story is time-ordered and reaches the root. (The
  // root delivery need not be the last record: the final hop's kMacSendOk
  // fires on the sender only after the root's ACK comes back.)
  for (std::size_t i = 1; i < story.size(); ++i) {
    EXPECT_GE(story[i].t_ns, story[i - 1].t_ns);
  }
  bool reached_root = false;
  for (const TraceRecord& r : story) {
    reached_root = reached_root || r.trace_type() == TraceType::kRootDeliver;
  }
  EXPECT_TRUE(reached_root);

  const auto chain = obs::provenance_chain(records, prov);
  ASSERT_FALSE(chain.empty());
  EXPECT_EQ(chain.back(), prov);
}

TEST(TracedRun, ConservationHoldsAcrossProtocolTopologyRateGrid) {
  const harness::Protocol protocols[] = {harness::Protocol::kDtsSs,
                                         harness::Protocol::kNtsSs};
  const net::TopologyKind topologies[] = {net::TopologyKind::kUniform,
                                          net::TopologyKind::kGrid};
  const double rates[] = {1.0, 4.0};
  for (auto protocol : protocols) {
    for (auto kind : topologies) {
      for (double rate : rates) {
        harness::ScenarioConfig config = small_config();
        config.protocol = protocol;
        config.deployment.kind = kind;
        config.workload.base_rate_hz = rate;
        config.measure_duration = Time::seconds(5);
        config.trace = basic_spec();
        bool checked = false;
        config.trace.sink = [&](const Tracer& tracer) {
          ASSERT_EQ(tracer.overwritten(), 0u);
          const auto report = obs::check_conservation(tracer.snapshot());
          EXPECT_TRUE(report.ok)
              << protocol_name(protocol) << " x " << topology_kind_name(kind)
              << " x " << rate << " Hz: " << report.detail;
          EXPECT_GT(report.transmissions, 0u);
          checked = true;
        };
        harness::run_scenario(config);
        EXPECT_TRUE(checked);
      }
    }
  }
}

// ------------------------------------------------------------ determinism

TEST(TracedRun, MetricsBitIdenticalToUntracedRun) {
  const harness::ScenarioConfig base = small_config();
  const harness::RunMetrics untraced = harness::run_scenario(base);

  harness::ScenarioConfig traced_cfg = base;
  traced_cfg.trace = basic_spec();  // no sampling: zero scheduled events added
  const harness::RunMetrics traced = harness::run_scenario(traced_cfg);

  // Tracing emission must not perturb the simulation at all — exact
  // floating-point equality, not tolerance.
  EXPECT_EQ(traced.sim_events, untraced.sim_events);
  EXPECT_EQ(traced.peak_pending_events, untraced.peak_pending_events);
  EXPECT_EQ(traced.epochs_measured, untraced.epochs_measured);
  EXPECT_EQ(traced.reports_sent, untraced.reports_sent);
  EXPECT_EQ(traced.mac_transmissions, untraced.mac_transmissions);
  EXPECT_EQ(traced.channel_delivered, untraced.channel_delivered);
  EXPECT_EQ(traced.avg_duty_cycle, untraced.avg_duty_cycle);
  EXPECT_EQ(traced.avg_latency_s, untraced.avg_latency_s);
  EXPECT_EQ(traced.p95_latency_s, untraced.p95_latency_s);
  EXPECT_EQ(traced.delivery_ratio, untraced.delivery_ratio);
}

TEST(TracedSweep, TraceByteIdenticalAcrossJobCounts) {
  harness::ScenarioConfig base = small_config();
  base.measure_duration = Time::seconds(5);
  base.trace = basic_spec();
  base.trace.only_seed = base.seed + 2;  // trace exactly one repetition

  std::mutex mu;
  std::vector<TraceRecord> captured;
  int sink_calls = 0;
  base.trace.sink = [&](const Tracer& tracer) {
    std::lock_guard<std::mutex> lock(mu);
    captured = tracer.snapshot();
    ++sink_calls;
  };

  auto run_with_jobs = [&](int jobs) {
    {
      std::lock_guard<std::mutex> lock(mu);
      captured.clear();
      sink_calls = 0;
    }
    exp::SweepRunner::Options options;
    options.jobs = jobs;
    exp::SweepSpec spec(base);
    spec.runs(4);
    exp::SweepRunner(options).run(spec);
    std::lock_guard<std::mutex> lock(mu);
    EXPECT_EQ(sink_calls, 1) << "only_seed must gate tracing to one trial";
    return captured;
  };

  const auto serial = run_with_jobs(1);
  const auto parallel = run_with_jobs(8);
  ASSERT_FALSE(serial.empty());
  ASSERT_EQ(serial.size(), parallel.size());
  EXPECT_EQ(std::memcmp(serial.data(), parallel.data(),
                        serial.size() * sizeof(TraceRecord)),
            0)
      << "trace differs between jobs=1 and jobs=8";
}

// ------------------------------------------------------------ sampling

TEST(TimeSeries, DecimationBoundsMemoryAndKeepsCoverage) {
  obs::TimeSeries series(16);
  for (int i = 0; i < 100'000; ++i) {
    series.add(Time::microseconds(i), static_cast<double>(i));
  }
  EXPECT_EQ(series.offered(), 100'000u);
  EXPECT_LE(series.points().size(), 16u);
  EXPECT_GT(series.stride(), 1u);
  const auto& pts = series.points();
  ASSERT_GE(pts.size(), 2u);
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_GT(pts[i].t_ns, pts[i - 1].t_ns);
  }
  // Downsampling covers the whole window, not just its head.
  EXPECT_GT(pts.back().t_ns, 50'000'000);
}

TEST(TracedRun, SamplerAndExportersProduceOutput) {
  harness::ScenarioConfig config = small_config();
  config.measure_duration = Time::seconds(5);
  config.trace = basic_spec();
  config.trace.sample_period = Time::from_milliseconds(100.0);
  const std::string dir = ::testing::TempDir();
  config.trace.perfetto_path = dir + "/obs_trace_{seed}.perfetto.json";
  config.trace.jsonl_path = dir + "/obs_trace_{seed}.jsonl";
  harness::run_scenario(config);

  std::ifstream perfetto(dir + "/obs_trace_7.perfetto.json");
  ASSERT_TRUE(perfetto.good()) << "perfetto export ({seed} substituted) missing";
  std::stringstream buf;
  buf << perfetto.rdbuf();
  const std::string json = buf.str();
  EXPECT_EQ(json.rfind("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos) << "no counter rows";
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos) << "no radio slices";

  std::ifstream jsonl(dir + "/obs_trace_7.jsonl");
  ASSERT_TRUE(jsonl.good());
  std::string line;
  ASSERT_TRUE(std::getline(jsonl, line));
  EXPECT_EQ(line.rfind("{\"t_ns\":", 0), 0u);
}

TEST(TracedRun, OnlySeedGatesSweepTracing) {
  harness::ScenarioConfig config = small_config();
  config.trace = basic_spec();
  config.trace.only_seed = 999;  // never matches config.seed = 7
  bool sank = false;
  config.trace.sink = [&](const Tracer&) { sank = true; };
  harness::run_scenario(config);
  EXPECT_FALSE(sank);
}

}  // namespace
}  // namespace essat
