// Crash-resumable sweeps: the checkpoint ledger (src/exp/checkpoint) plus
// resumable path-backed sinks must make a killed-and-resumed sweep emit
// output byte-identical to an uninterrupted one — including a SIGKILL
// delivered mid-run (fork-in-gtest: the child dies for real, the parent
// resumes against the surviving checkpoint directory).
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/exp/checkpoint.h"
#include "src/exp/sinks.h"
#include "src/exp/sweep.h"
#include "src/exp/sweep_runner.h"
#include "src/harness/scenario.h"

namespace essat::exp {
namespace {

namespace fs = std::filesystem;

// Deterministic stand-in for run_scenario: every metric is a pure function
// of (seed, rate), so resume equivalence is isolated from simulator cost.
harness::RunMetrics stub_run(const harness::ScenarioConfig& c) {
  harness::RunMetrics m;
  const double s = static_cast<double>(c.seed);
  m.avg_duty_cycle = 0.01 * s + c.workload.base_rate_hz;
  m.avg_latency_s = 1.0 / (s + 1.0);
  m.p95_latency_s = 2.0 / (s + 1.0);
  m.delivery_ratio = 1.0 - 0.001 * s;
  m.phase_update_bits_per_report = 0.5 * s;
  m.mac_send_failures = c.seed % 7;
  m.duty_by_rank = {0.1 * s, 0.2 * s};
  return m;
}

SweepSpec small_spec() {
  harness::ScenarioConfig base;
  base.seed = 100;
  SweepSpec spec(base);
  spec.runs(2).axis_rate({0.5, 1.0, 2.0, 4.0});
  return spec;
}

std::string read_file(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  return std::string{std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>()};
}

struct TempDir {
  fs::path path;
  explicit TempDir(const std::string& name) : path(name) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
  std::string file(const std::string& name) const {
    return (path / name).string();
  }
};

// Runs the sweep to completion in `dir` with path-backed sinks; returns
// the two output files' contents.
std::pair<std::string, std::string> run_with_sinks(
    const std::string& dir, const std::string& csv, const std::string& jsonl,
    SweepRunner::Options opts) {
  CsvSink csv_sink{csv};
  JsonLinesSink jsonl_sink{jsonl};
  opts.run_fn = stub_run;
  opts.checkpoint_dir = dir;
  SweepRunner{opts}.run(small_spec(), {&csv_sink, &jsonl_sink});
  return {read_file(csv), read_file(jsonl)};
}

TEST(SweepResume, CheckpointedRunMatchesLegacyOutput) {
  // The checkpointed (incremental-emission) path must produce the same
  // bytes as the legacy emit-at-the-end path.
  std::string legacy_csv, legacy_jsonl;
  {
    TempDir t{"sweep_resume_test.legacy"};
    CsvSink csv{t.file("out.csv")};
    JsonLinesSink jsonl{t.file("out.jsonl")};
    SweepRunner::Options opts;
    opts.jobs = 2;
    opts.run_fn = stub_run;
    SweepRunner{opts}.run(small_spec(), {&csv, &jsonl});
    legacy_csv = read_file(t.file("out.csv"));
    legacy_jsonl = read_file(t.file("out.jsonl"));
  }
  TempDir t{"sweep_resume_test.ckpt"};
  const auto [csv, jsonl] = run_with_sinks(t.file("ckpt"), t.file("out.csv"),
                                           t.file("out.jsonl"), [] {
                                             SweepRunner::Options o;
                                             o.jobs = 2;
                                             return o;
                                           }());
  EXPECT_EQ(csv, legacy_csv);
  EXPECT_EQ(jsonl, legacy_jsonl);
}

TEST(SweepResume, SigkillMidSweepResumesByteIdentical) {
  TempDir t{"sweep_resume_test.kill"};
  const std::string dir = t.file("ckpt");
  const std::string csv = t.file("out.csv");
  const std::string jsonl = t.file("out.jsonl");

  // Reference: the same sweep, uninterrupted, in a sibling directory.
  TempDir ref{"sweep_resume_test.ref"};
  const auto [ref_csv, ref_jsonl] = run_with_sinks(
      ref.file("ckpt"), ref.file("out.csv"), ref.file("out.jsonl"), {});

  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: die by SIGKILL partway through — after enough trials that
    // some points have been emitted to the sinks and marked.
    int trials = 0;
    SweepRunner::Options opts;
    opts.jobs = 1;
    opts.checkpoint_dir = dir;
    opts.run_fn = [&trials](const harness::ScenarioConfig& c) {
      if (++trials == 5) raise(SIGKILL);
      return stub_run(c);
    };
    CsvSink csv_sink{csv};
    JsonLinesSink jsonl_sink{jsonl};
    SweepRunner{opts}.run(small_spec(), {&csv_sink, &jsonl_sink});
    _exit(0);  // not reached
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL)
      << "child was supposed to die by SIGKILL";

  // Parent: resume against the survivors. Output must be byte-identical
  // to the uninterrupted run — no duplicated, missing, or torn rows.
  const auto [resumed_csv, resumed_jsonl] = run_with_sinks(dir, csv, jsonl, {});
  EXPECT_EQ(resumed_csv, ref_csv);
  EXPECT_EQ(resumed_jsonl, ref_jsonl);
}

TEST(SweepResume, ResumeSkipsCompletedTrials) {
  TempDir t{"sweep_resume_test.skip"};
  SweepRunner::Options opts;
  opts.checkpoint_dir = t.file("ckpt");
  opts.run_fn = stub_run;
  const auto first = SweepRunner{opts}.run(small_spec());

  int reruns = 0;
  opts.run_fn = [&reruns](const harness::ScenarioConfig& c) {
    ++reruns;
    return stub_run(c);
  };
  const auto second = SweepRunner{opts}.run(small_spec());
  EXPECT_EQ(reruns, 0) << "a completed sweep must resume with zero re-runs";
  ASSERT_EQ(second.size(), first.size());
  for (std::size_t p = 0; p < first.size(); ++p) {
    EXPECT_EQ(second[p].metrics.duty_cycle.mean(),
              first[p].metrics.duty_cycle.mean());
    EXPECT_EQ(second[p].metrics.duty_cycle.count(),
              first[p].metrics.duty_cycle.count());
  }
}

TEST(SweepResume, TornLedgerTailIsTruncated) {
  TempDir t{"sweep_resume_test.torn"};
  SweepRunner::Options opts;
  opts.checkpoint_dir = t.file("ckpt");
  opts.run_fn = stub_run;
  SweepRunner{opts}.run(small_spec());

  // Simulate a crash mid-append: garbage (and half a magic) at the tail.
  const std::string ledger = (fs::path(opts.checkpoint_dir) / "sweep.ledger").string();
  {
    std::ofstream f{ledger, std::ios::binary | std::ios::app};
    f << "ESSATSNP\x01\x00garbage";
  }
  int reruns = 0;
  opts.run_fn = [&reruns](const harness::ScenarioConfig& c) {
    ++reruns;
    return stub_run(c);
  };
  const auto out = SweepRunner{opts}.run(small_spec());
  EXPECT_EQ(reruns, 0);
  EXPECT_EQ(out.size(), 4u);
}

TEST(SweepResume, FingerprintMismatchRefusesToResume) {
  TempDir t{"sweep_resume_test.mismatch"};
  SweepRunner::Options opts;
  opts.checkpoint_dir = t.file("ckpt");
  opts.run_fn = stub_run;
  SweepRunner{opts}.run(small_spec());

  harness::ScenarioConfig other_base;
  other_base.seed = 999;  // different grid -> different fingerprint
  SweepSpec other{other_base};
  other.runs(2).axis_rate({0.5, 1.0, 2.0, 4.0});
  EXPECT_THROW((void)SweepRunner{opts}.run(other), std::runtime_error);
}

TEST(SweepResume, StreamSinksReportNotResumable) {
  std::ostringstream os;
  CsvSink sink{os};
  EXPECT_EQ(sink.output_offset(), -1);
  sink.resume_at(0);  // must be a harmless no-op on a borrowed stream
}

}  // namespace
}  // namespace essat::exp
