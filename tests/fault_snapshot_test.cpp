// Snapshot semantics under fault injection: a trial captured in the middle
// of an outage (node down, restart event pending, outage interval open)
// must attest byte-for-byte on resume and continue bit-identically — the
// fault engine's mutable state serializes through the same TRST section as
// every other component, and its schedule is pure config rebuilt by replay.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/harness/scenario.h"
#include "src/snap/config_codec.h"
#include "src/snap/metrics_codec.h"
#include "src/snap/snapshot.h"
#include "src/snap/trial.h"

namespace essat::snap {
namespace {

using util::Time;

harness::ScenarioConfig faulty_base() {
  harness::ScenarioConfig c;
  c.deployment.num_nodes = 12;
  c.deployment.area_m = 250.0;
  c.deployment.range_m = 125.0;
  c.deployment.max_tree_dist_m = 250.0;
  c.workload.base_rate_hz = 1.0;
  c.workload.query_start_window = Time::seconds(1);
  c.setup_duration = Time::seconds(2);   // setup ends at t=2s
  c.measure_duration = Time::seconds(4); // window [5s, 9s)
  c.latency_grace = Time::seconds(1);
  c.seed = 7;
  // Node 3 is down over [3.5s, 6.5s): any barrier inside that interval is
  // mid-outage, with the restart event still pending in the queue.
  c.faults.churn.scheduled.push_back(
      {net::NodeId{3}, Time::from_milliseconds(1500), Time::seconds(3)});
  return c;
}

std::vector<std::uint8_t> fingerprint(const harness::RunMetrics& m) {
  return run_metrics_to_bytes(m);
}

void expect_capture_and_resume_identical(const harness::ScenarioConfig& config,
                                         Time barrier, const std::string& what) {
  SCOPED_TRACE(what);
  const harness::RunMetrics straight = harness::run_scenario(config);
  const TrialCapture cap = capture_trial(config, barrier);
  const harness::RunMetrics resumed = resume_trial(cap.snapshot);
  EXPECT_EQ(fingerprint(straight), fingerprint(cap.metrics))
      << what << ": capturing perturbed the run";
  EXPECT_EQ(fingerprint(straight), fingerprint(resumed))
      << what << ": resumed run diverged from the straight run";
}

TEST(FaultSnapshot, MidOutageCaptureResumesBitIdentically) {
  expect_capture_and_resume_identical(faulty_base(), Time::seconds(5),
                                      "mid-outage barrier at 5s");
}

TEST(FaultSnapshot, CaptureAfterRestartResumesBitIdentically) {
  expect_capture_and_resume_identical(faulty_base(), Time::seconds(7),
                                      "post-restart barrier at 7s");
}

TEST(FaultSnapshot, StochasticChurnWithBatteryAndDriftResumes) {
  harness::ScenarioConfig c = faulty_base();
  c.faults.churn.node_fraction = 0.3;
  c.faults.churn.mean_downtime_s = 1.0;
  c.faults.battery.budget_mj = 400.0;
  c.faults.drift.skew_sigma_ppm = 20.0;
  expect_capture_and_resume_identical(c, Time::seconds(6),
                                      "all fault classes at 6s");
}

TEST(FaultSnapshot, MidOutageCaptureIsDeterministic) {
  const harness::ScenarioConfig c = faulty_base();
  const TrialCapture a = capture_trial(c, Time::seconds(5));
  const TrialCapture b = capture_trial(c, Time::seconds(5));
  EXPECT_EQ(a.snapshot.payload, b.snapshot.payload);
  EXPECT_EQ(a.snapshot.to_bytes(), b.snapshot.to_bytes());
}

TEST(FaultSnapshot, AttestationCatchesTamperedFaultState) {
  const TrialCapture cap = capture_trial(faulty_base(), Time::seconds(5));
  TrialImage image = decode_trial(cap.snapshot);
  ASSERT_FALSE(image.state.empty());
  image.state[image.state.size() / 2] ^= 0x01;
  EXPECT_THROW((void)resume_trial(image), SnapError);
}

// The config codec covers the new physical-layer and fault fields.
TEST(FaultSnapshot, ConfigCodecRoundTripsFaultAndSinrFields) {
  harness::ScenarioConfig c = faulty_base();
  c.faults.churn.node_fraction = 0.15;
  c.faults.churn.mean_downtime_s = 7.5;
  c.faults.churn.restart = false;
  c.faults.battery.budget_mj = 123.25;
  c.faults.battery.jitter_frac = 0.1;
  c.faults.battery.check_period = Time::from_milliseconds(250);
  c.faults.drift.skew_sigma_ppm = 40.0;
  c.faults.drift.max_offset_ms = 3.0;
  c.channel_params.sinr.enabled = true;
  c.channel_params.sinr.capture_threshold_db = 6.0;
  c.channel_params.sinr.min_snr_db = 4.0;
  c.channel_model.kind = net::LinkModelKind::kPrrTrace;
  c.channel_model.prr_trace = {{net::NodeId{0}, net::NodeId{1}, 0.75},
                               {net::NodeId{1}, net::NodeId{0}, 0.5}};
  c.channel_model.prr_trace_default = 0.9;

  const std::vector<std::uint8_t> bytes = scenario_config_to_bytes(c);
  const harness::ScenarioConfig back =
      scenario_config_from_bytes(bytes.data(), bytes.size());
  EXPECT_EQ(scenario_config_to_bytes(back), bytes);
  ASSERT_EQ(back.faults.churn.scheduled.size(), 1u);
  EXPECT_EQ(back.faults.churn.scheduled[0].node, 3);
  EXPECT_EQ(back.faults.churn.scheduled[0].down_for, Time::seconds(3));
  EXPECT_EQ(back.faults.churn.node_fraction, 0.15);
  EXPECT_FALSE(back.faults.churn.restart);
  EXPECT_EQ(back.faults.battery.budget_mj, 123.25);
  EXPECT_EQ(back.faults.battery.check_period, Time::from_milliseconds(250));
  EXPECT_EQ(back.faults.drift.max_offset_ms, 3.0);
  EXPECT_TRUE(back.channel_params.sinr.enabled);
  EXPECT_EQ(back.channel_params.sinr.min_snr_db, 4.0);
  ASSERT_EQ(back.channel_model.prr_trace.size(), 2u);
  EXPECT_EQ(back.channel_model.prr_trace[1].prr, 0.5);
  EXPECT_EQ(back.channel_model.prr_trace_default, 0.9);
}

}  // namespace
}  // namespace essat::snap
