// replay — time-travel debugging for trial snapshots.
//
// Loads a kTrial snapshot (written by snap::write_snapshot_file, e.g. from
// capture_trial) and either inspects it or resumes it:
//
//   replay SNAPSHOT                  resume to completion, print a metrics
//                                    summary (restore attests the replayed
//                                    state byte-for-byte at the barrier)
//   replay --dump SNAPSHOT           print the container header, the decoded
//                                    scenario config, and every component
//                                    state section with its size
//   replay --trace OUT.json SNAPSHOT resume with tracing enabled and a
//                                    Perfetto export at OUT.json — rerun any
//                                    captured trial under the microscope
//                                    without re-simulating its prefix
//   replay --verify SNAPSHOT         resume AND run the scenario straight
//                                    from its config; exit nonzero unless
//                                    the two RunMetrics are bit-identical
#include <cstdio>
#include <cstring>
#include <map>
#include <exception>
#include <string>
#include <vector>

#include "src/harness/scenario.h"
#include "src/snap/metrics_codec.h"
#include "src/snap/serializer.h"
#include "src/snap/snapshot.h"
#include "src/snap/snapshot_io.h"
#include "src/snap/trial.h"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--dump | --trace OUT.json | --verify] SNAPSHOT\n",
               argv0);
  return 2;
}

void print_metrics(const essat::harness::RunMetrics& m) {
  std::printf("avg duty cycle       %.6f\n", m.avg_duty_cycle);
  std::printf("avg latency (s)      %.6f\n", m.avg_latency_s);
  std::printf("p95 latency (s)      %.6f\n", m.p95_latency_s);
  std::printf("delivery ratio       %.6f\n", m.delivery_ratio);
  std::printf("epochs measured      %llu\n",
              static_cast<unsigned long long>(m.epochs_measured));
  std::printf("phase bits/report    %.6f\n", m.phase_update_bits_per_report);
}

int dump(const essat::snap::Snapshot& snapshot) {
  namespace snap = essat::snap;
  std::printf("kind                 %s\n", snap::snapshot_kind_name(snapshot.kind));
  std::printf("format version       %u\n", snapshot.version);
  std::printf("payload bytes        %zu\n", snapshot.payload.size());
  const snap::TrialImage image = snap::decode_trial(snapshot);
  const auto& c = image.config;
  std::printf("protocol             %s\n", c.protocol.name.c_str());
  std::printf("nodes                %d\n", c.deployment.num_nodes);
  std::printf("seed                 %llu\n",
              static_cast<unsigned long long>(c.seed));
  std::printf("base rate (Hz)       %g\n", c.workload.base_rate_hz);
  std::printf("setup duration (s)   %g\n", c.setup_duration.to_seconds());
  std::printf("measure duration (s) %g\n", c.measure_duration.to_seconds());
  std::printf("barrier (s)          %.9f\n", image.barrier.to_seconds());
  std::printf("component state      %zu bytes\n", image.state.size());
  // Enumerate the component sections inside the "TRST" wrapper. The state
  // interleaves framed sections with loose scalars (counts, presence
  // flags), so walk the raw bytes: a section frame is 4 uppercase tag
  // bytes plus a length that fits in the remainder; anything else is
  // counted as scalar filler between sections.
  const std::vector<std::uint8_t>& st = image.state;
  std::size_t at = 0;
  if (st.size() >= 12 && std::memcmp(st.data(), "TRST", 4) == 0) at = 12;
  std::vector<std::string> order;            // tags in first-seen order
  std::map<std::string, std::pair<std::size_t, std::size_t>> agg;  // count, bytes
  auto tally = [&](const std::string& tag, std::size_t bytes) {
    auto [it, fresh] = agg.emplace(tag, std::make_pair(0u, 0u));
    if (fresh) order.push_back(tag);
    it->second.first += 1;
    it->second.second += bytes;
  };
  while (at < st.size()) {
    bool is_tag = at + 12 <= st.size();
    for (int k = 0; is_tag && k < 4; ++k) {
      is_tag = st[at + k] >= 'A' && st[at + k] <= 'Z';
    }
    std::uint64_t len = 0;
    if (is_tag) {
      for (int k = 0; k < 8; ++k) {
        len |= static_cast<std::uint64_t>(st[at + 4 + k]) << (8 * k);
      }
      is_tag = len <= st.size() - at - 12;
    }
    if (is_tag) {
      tally(std::string(reinterpret_cast<const char*>(&st[at]), 4),
            static_cast<std::size_t>(len) + 12);
      at += 12 + static_cast<std::size_t>(len);
    } else {
      tally("(scalars)", 1);
      ++at;
    }
  }
  for (const std::string& tag : order) {
    std::printf("  %-10s x%-5zu %zu bytes\n", tag.c_str(), agg[tag].first,
                agg[tag].second);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool do_dump = false;
  bool do_verify = false;
  std::string trace_path;
  std::string snapshot_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--dump") {
      do_dump = true;
    } else if (arg == "--verify") {
      do_verify = true;
    } else if (arg == "--trace") {
      if (++i >= argc) return usage(argv[0]);
      trace_path = argv[i];
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else if (snapshot_path.empty()) {
      snapshot_path = arg;
    } else {
      return usage(argv[0]);
    }
  }
  if (snapshot_path.empty()) return usage(argv[0]);

  namespace snap = essat::snap;
  try {
    const snap::Snapshot snapshot = snap::read_snapshot_file(snapshot_path);
    if (do_dump) return dump(snapshot);

    snap::TrialImage image = snap::decode_trial(snapshot);
    if (!trace_path.empty()) {
      image.config.trace.enabled = true;
      image.config.trace.only_seed.reset();
      image.config.trace.perfetto_path = trace_path;
    }
    std::printf("resuming %s at t=%.9fs (%s, %d nodes, seed %llu)\n",
                snapshot_path.c_str(), image.barrier.to_seconds(),
                image.config.protocol.name.c_str(),
                image.config.deployment.num_nodes,
                static_cast<unsigned long long>(image.config.seed));
    const essat::harness::RunMetrics resumed = snap::resume_trial(image);
    print_metrics(resumed);
    if (!trace_path.empty()) {
      std::printf("perfetto trace       %s\n", trace_path.c_str());
    }

    if (do_verify) {
      // Straight run from the embedded config; bit-identical metrics are
      // the whole contract, so compare the canonical encodings.
      const essat::harness::RunMetrics straight =
          essat::harness::run_scenario(image.config);
      if (snap::run_metrics_to_bytes(resumed) !=
          snap::run_metrics_to_bytes(straight)) {
        std::fprintf(stderr,
                     "VERIFY FAILED: resumed metrics differ from a straight "
                     "run of the embedded config\n");
        return 1;
      }
      std::printf("verify               OK (resumed == straight, bit-exact)\n");
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "replay: %s\n", e.what());
    return 1;
  }
  return 0;
}
