#!/usr/bin/env python3
"""Summarize an ESSAT trace, or validate an exported Perfetto JSON.

Summary mode (default) reads a JSONL trace (ScenarioConfig.trace.jsonl_path)
and prints:
  * record counts by type
  * channel drop breakdown by attributed reason
  * per-hop MAC latency (mac_enqueue -> mac_send_ok, matched on the packet's
    provenance id at each hop): count / mean / p50 / p95 / max
  * fault-event breakdown: fault_down counts by attributed cause
    (scheduled / stochastic / battery, from arg16) plus fault_up pairing
    and total observed downtime
  * packet-conservation check: every chan_tx_begin announces its in-range
    receiver count (arg16); the matching chan_deliver/chan_drop records,
    keyed by tx_id, must add up to exactly that count. Transmissions still
    in flight at the trace tail (within --grace-ms of the last record) are
    skipped. A mismatch is a simulator bug and fails the run (exit 1).
  * fault-attribution check: the per-cause fault_down counts must sum to
    the total fault_down count (no unknown causes), and every fault_up
    must pair with a prior unmatched fault_down on the same node. A
    mismatch fails the run (exit 1).

Check mode (--check) parses a Perfetto trace_event JSON export and verifies
its structure — top-level object, traceEvents array, every event a known
phase with the fields that phase requires — so CI can gate the exporter
without a Perfetto UI in the loop. Exits 1 on any violation or on an empty
trace.

Usage:
  trace_summary.py <trace.jsonl>
  trace_summary.py --check <perfetto.json>
"""
import argparse
import json
import sys
from collections import Counter, defaultdict


# fault_down.arg16 carries the FaultCause enum (src/fault/fault_engine.h).
FAULT_CAUSES = {0: "scheduled", 1: "stochastic", 2: "battery"}


def percentile(sorted_vals, q):
    if not sorted_vals:
        return 0.0
    idx = min(len(sorted_vals) - 1, int(q * len(sorted_vals)))
    return sorted_vals[idx]


def summarize(path, grace_ms):
    records = []
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as e:
                print(f"FAIL: {path}:{lineno}: bad JSON line: {e}")
                return 1
    if not records:
        print(f"FAIL: {path}: empty trace")
        return 1

    by_type = Counter(r["type"] for r in records)
    print(f"{path}: {len(records)} records, "
          f"{records[0]['t_ns'] / 1e9:.3f}s .. {records[-1]['t_ns'] / 1e9:.3f}s")
    print("\nrecords by type:")
    for name, n in by_type.most_common():
        print(f"  {name:20s} {n}")

    drops = Counter(r.get("reason", "?") for r in records
                    if r["type"] == "chan_drop")
    if drops:
        print("\nchannel drops by reason:")
        for reason, n in drops.most_common():
            print(f"  {reason:20s} {n}")

    # Per-hop MAC latency: enqueue -> send_ok on the same (node, prov).
    enqueue_t = {}
    hop_ms = []
    for r in records:
        if r["type"] == "mac_enqueue":
            enqueue_t[(r["node"], r["a"])] = r["t_ns"]
        elif r["type"] == "mac_send_ok":
            t0 = enqueue_t.pop((r["node"], r["a"]), None)
            if t0 is not None:
                hop_ms.append((r["t_ns"] - t0) / 1e6)
    if hop_ms:
        hop_ms.sort()
        mean = sum(hop_ms) / len(hop_ms)
        print(f"\nper-hop MAC latency (enqueue->send_ok, {len(hop_ms)} hops):")
        print(f"  mean={mean:.3f}ms p50={percentile(hop_ms, 0.50):.3f}ms "
              f"p95={percentile(hop_ms, 0.95):.3f}ms max={hop_ms[-1]:.3f}ms")

    # Fault-event breakdown and attribution check: every fault_down carries
    # a known cause in arg16, and every fault_up closes a prior fault_down
    # on the same node (fault_up.a = observed downtime ns).
    downs = [r for r in records if r["type"] == "fault_down"]
    ups = [r for r in records if r["type"] == "fault_up"]
    fault_fail = False
    if downs or ups:
        causes = Counter(FAULT_CAUSES.get(r.get("arg16"), "unknown")
                         for r in downs)
        print("\nfault events:")
        for cause, n in causes.most_common():
            print(f"  down/{cause:15s} {n}")
        total_down_s = sum(r["a"] for r in ups) / 1e9
        print(f"  up                   {len(ups)} "
              f"(observed downtime {total_down_s:.3f}s)")
        attributed = sum(n for c, n in causes.items() if c != "unknown")
        if attributed != len(downs):
            print(f"FAIL: fault cause attribution: {attributed} attributed "
                  f"of {len(downs)} fault_down records")
            fault_fail = True
        open_down = Counter()
        orphan_ups = 0
        for r in records:
            if r["type"] == "fault_down":
                open_down[r["node"]] += 1
            elif r["type"] == "fault_up":
                if open_down[r["node"]] <= 0:
                    orphan_ups += 1
                else:
                    open_down[r["node"]] -= 1
        if orphan_ups:
            print(f"FAIL: {orphan_ups} fault_up record(s) without a matching "
                  f"fault_down on the same node")
            fault_fail = True

    # Conservation: chan_tx_begin.arg16 in-range receivers == deliver+drop.
    t_last = records[-1]["t_ns"]
    tx = {}  # tx_id -> [t_begin, expected, seen]
    for r in records:
        if r["type"] == "chan_tx_begin":
            tx[r["a"]] = [r["t_ns"], r["arg16"], 0]
        elif r["type"] in ("chan_deliver", "chan_drop"):
            s = tx.get(r["a"])
            if s is not None:
                s[2] += 1
    checked = skipped = mismatched = 0
    for tx_id, (t_begin, expected, seen) in tx.items():
        if t_begin > t_last - grace_ms * 1_000_000:
            skipped += 1
            continue
        checked += 1
        if seen != expected:
            mismatched += 1
            if mismatched <= 5:
                print(f"  conservation violation: tx_id={tx_id} "
                      f"expected {expected} receiver records, saw {seen}")
    print(f"\nconservation: {checked} transmissions checked, "
          f"{skipped} in-flight skipped, {mismatched} mismatched")
    if mismatched:
        print("FAIL: packet conservation violated")
        return 1
    if fault_fail:
        print("FAIL: fault attribution violated")
        return 1
    print("OK")
    return 0


# Fields each Perfetto phase must carry, beyond the common pid/tid.
PHASE_FIELDS = {
    "M": ("name", "args"),
    "X": ("ts", "dur", "name"),
    "i": ("ts", "s", "name"),
    "C": ("ts", "name", "args"),
}


def check_perfetto(path):
    with open(path) as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as e:
            print(f"FAIL: {path}: not valid JSON: {e}")
            return 1
    if not isinstance(doc, dict) or not isinstance(doc.get("traceEvents"), list):
        print(f"FAIL: {path}: expected an object with a traceEvents array")
        return 1
    events = doc["traceEvents"]
    if not events:
        print(f"FAIL: {path}: traceEvents is empty")
        return 1
    phases = Counter()
    tracks = set()
    for i, ev in enumerate(events):
        ph = ev.get("ph")
        if ph not in PHASE_FIELDS:
            print(f"FAIL: {path}: event {i}: unknown phase {ph!r}")
            return 1
        missing = [k for k in ("pid", "tid") + PHASE_FIELDS[ph] if k not in ev]
        if missing:
            print(f"FAIL: {path}: event {i} (ph={ph}): missing {missing}")
            return 1
        phases[ph] += 1
        tracks.add(ev["tid"])
    named = sum(1 for ev in events
                if ev.get("ph") == "M" and ev.get("name") == "thread_name")
    print(f"{path}: {len(events)} events, {len(tracks)} tracks "
          f"({named} named), phases "
          + " ".join(f"{p}={n}" for p, n in sorted(phases.items())))
    print("OK")
    return 0


def main():
    parser = argparse.ArgumentParser(
        description="Summarize a JSONL trace or validate a Perfetto export.")
    parser.add_argument("trace", help="trace.jsonl, or perfetto.json with --check")
    parser.add_argument("--check", action="store_true",
                        help="validate Perfetto trace_event JSON structure")
    parser.add_argument("--grace-ms", type=float, default=10.0,
                        help="skip transmissions begun within this window of "
                             "the trace tail (default 10)")
    args = parser.parse_args()
    if args.check:
        return check_perfetto(args.trace)
    return summarize(args.trace, args.grace_ms)


if __name__ == "__main__":
    sys.exit(main())
