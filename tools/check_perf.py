#!/usr/bin/env python3
"""Gate perf regressions: compare a fresh perf_report JSON against the
committed baseline.

Raw events/sec is meaningless across heterogeneous CI machines, so the
comparison uses normalized_events_per_calib — events/sec divided by the
same binary's fixed integer-loop calibration score — which cancels the
host's clock rate to first order. Fails (exit 1) when the fresh value is
more than --tolerance below the baseline; improvements never fail, and the
operator is told to refresh the baseline when the gain is real.

Usage: check_perf.py <fresh.json> <baseline.json> [--tolerance 0.20]
"""
import argparse
import json
import sys


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("fresh")
    parser.add_argument("baseline")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed fractional regression (default 0.20)")
    args = parser.parse_args()

    with open(args.fresh) as f:
        fresh = json.load(f)
    with open(args.baseline) as f:
        base = json.load(f)

    # Throughput is only comparable on the identical workload: a shorter
    # measurement window shifts the setup/run ratio and silently skews the
    # number in either direction.
    if fresh.get("workload") != base.get("workload"):
        print("FAIL: workload mismatch — fresh and baseline perf reports "
              "were produced with different settings:")
        print(f"  fresh:    {fresh.get('workload')}")
        print(f"  baseline: {base.get('workload')}")
        return 1

    key = "normalized_events_per_calib"
    fresh_v, base_v = fresh[key], base[key]
    ratio = fresh_v / base_v
    print(f"perf check: {key} fresh={fresh_v:.0f} baseline={base_v:.0f} "
          f"ratio={ratio:.3f} (tolerance -{args.tolerance:.0%})")
    print(f"  fresh:    {fresh['events_per_sec']:.0f} ev/s, "
          f"{fresh['ns_per_event']:.1f} ns/event, "
          f"calib {fresh['calibration_score']:.1f}")
    print(f"  baseline: {base['events_per_sec']:.0f} ev/s, "
          f"{base['ns_per_event']:.1f} ns/event, "
          f"calib {base['calibration_score']:.1f}")

    if ratio < 1.0 - args.tolerance:
        print(f"FAIL: normalized throughput regressed by {1 - ratio:.1%} "
              f"(> {args.tolerance:.0%} budget)")
        return 1
    if ratio > 1.0 + args.tolerance:
        print("NOTE: throughput improved past the tolerance band — refresh "
              "the committed baseline to lock in the gain")
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
