#!/usr/bin/env python3
"""Gate perf regressions: compare a fresh perf_report JSON against the
committed baseline.

Raw events/sec is meaningless across heterogeneous CI machines, so the
comparison uses normalized_events_per_calib — events/sec divided by the
same binary's fixed integer-loop calibration score — which cancels the
host's clock rate to first order. Fails (exit 1) when the fresh value is
more than --tolerance below the baseline; improvements never fail, and the
operator is told to refresh the baseline when the gain is real.

Memory is gated alongside throughput: bytes_per_node_1000 and
marginal_bytes_per_node are byte counts from a deterministic allocation
counter, so they are comparable across machines and get their own (much
tighter) --mem-tolerance. A growth past the band fails the same way a
throughput regression does — per-node memory is the city-scale
scalability budget, not an advisory metric.

The fork-sweep acceleration (src/exp/fork_sweep) is gated as an absolute
floor rather than a baseline ratio: fork_speedup is already a same-host
A/B (forked vs re-simulated prefix, same binary, same run), so the host's
speed cancels by construction. --min-fork-speedup (default 2.0) fails the
check when the measured speedup drops below the floor; the key is skipped
when the report predates it or the platform has no fork(2)
(fork_available false).

Usage: check_perf.py <fresh.json> <baseline.json> [--tolerance 0.20]
                     [--mem-tolerance 0.25] [--min-fork-speedup 2.0]
"""
import argparse
import json
import sys


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("fresh")
    parser.add_argument("baseline")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed fractional regression (default 0.20)")
    parser.add_argument("--mem-tolerance", type=float, default=0.25,
                        help="allowed fractional growth of the per-node "
                             "memory metrics (default 0.25)")
    parser.add_argument("--min-fork-speedup", type=float, default=2.0,
                        help="minimum fork-sweep speedup over re-simulating "
                             "the shared prefix (default 2.0)")
    args = parser.parse_args()

    with open(args.fresh) as f:
        fresh = json.load(f)
    with open(args.baseline) as f:
        base = json.load(f)

    # Throughput is only comparable on the identical workload: a shorter
    # measurement window shifts the setup/run ratio and silently skews the
    # number in either direction.
    if fresh.get("workload") != base.get("workload"):
        print("FAIL: workload mismatch — fresh and baseline perf reports "
              "were produced with different settings:")
        print(f"  fresh:    {fresh.get('workload')}")
        print(f"  baseline: {base.get('workload')}")
        return 1

    key = "normalized_events_per_calib"
    fresh_v, base_v = fresh[key], base[key]
    ratio = fresh_v / base_v
    print(f"perf check: {key} fresh={fresh_v:.0f} baseline={base_v:.0f} "
          f"ratio={ratio:.3f} (tolerance -{args.tolerance:.0%})")
    print(f"  fresh:    {fresh['events_per_sec']:.0f} ev/s, "
          f"{fresh['ns_per_event']:.1f} ns/event, "
          f"calib {fresh['calibration_score']:.1f}")
    print(f"  baseline: {base['events_per_sec']:.0f} ev/s, "
          f"{base['ns_per_event']:.1f} ns/event, "
          f"calib {base['calibration_score']:.1f}")

    failed = False
    if ratio < 1.0 - args.tolerance:
        print(f"FAIL: normalized throughput regressed by {1 - ratio:.1%} "
              f"(> {args.tolerance:.0%} budget)")
        failed = True
    if ratio > 1.0 + args.tolerance:
        print("NOTE: throughput improved past the tolerance band — refresh "
              "the committed baseline to lock in the gain")

    # Per-node memory: deterministic byte counts, lower-is-better. Skip a
    # key only when the baseline predates it (older BENCH json).
    for mem_key in ("bytes_per_node_1000", "marginal_bytes_per_node"):
        if mem_key not in fresh or mem_key not in base:
            print(f"note: {mem_key} missing from fresh or baseline, skipped")
            continue
        fresh_m, base_m = fresh[mem_key], base[mem_key]
        mem_ratio = fresh_m / base_m if base_m > 0 else 1.0
        print(f"mem check: {mem_key} fresh={fresh_m:.0f} baseline={base_m:.0f} "
              f"ratio={mem_ratio:.3f} (tolerance +{args.mem_tolerance:.0%})")
        if mem_ratio > 1.0 + args.mem_tolerance:
            print(f"FAIL: {mem_key} grew by {mem_ratio - 1:.1%} "
                  f"(> {args.mem_tolerance:.0%} budget)")
            failed = True
        elif mem_ratio < 1.0 - args.mem_tolerance:
            print(f"NOTE: {mem_key} shrank past the tolerance band — refresh "
                  "the committed baseline to lock in the gain")

    # Fork-sweep acceleration: an absolute floor, not a baseline ratio —
    # the report's fork_speedup is a same-host, same-binary A/B already.
    if "fork_speedup" not in fresh:
        print("note: fork_speedup missing from fresh report, skipped")
    elif not fresh.get("fork_available", False):
        print("note: fork(2) unavailable on this platform, "
              "fork_speedup skipped")
    else:
        speedup = fresh["fork_speedup"]
        print(f"fork check: speedup={speedup:.2f}x "
              f"(seq={fresh.get('seq_runs_per_sec', 0):.2f} runs/s, "
              f"fork={fresh.get('fork_runs_per_sec', 0):.2f} runs/s, "
              f"floor {args.min_fork_speedup:.1f}x)")
        if speedup < args.min_fork_speedup:
            print(f"FAIL: fork-sweep speedup {speedup:.2f}x is below the "
                  f"{args.min_fork_speedup:.1f}x floor")
            failed = True

    if failed:
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
