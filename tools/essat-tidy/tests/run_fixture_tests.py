#!/usr/bin/env python3
"""Fixture tests for the essat-tidy checks (check_clang_tidy.py-style).

Each fixture .cpp tags offending lines with `// expect: <check>`. A test
run scans the fixture with exactly one check enabled and asserts the set
of (line, check) findings equals the set of tags — missing findings and
unexpected findings both fail, so the fixtures pin false negatives AND
false positives.

Usage:
    run_fixture_tests.py <check-name>     one check's fixture
    run_fixture_tests.py suppressions     suppression machinery + cap
    run_fixture_tests.py all              everything
"""
from __future__ import annotations

import os
import re
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, os.path.dirname(HERE))  # tools/essat-tidy
import essat_tidy  # noqa: E402

EXPECT_RE = re.compile(r"//\s*expect:\s*([a-z-]+)")

FIXTURES = {
    "no-wallclock": ("no-wallclock.cpp", ["--no-allowlist"]),
    "deterministic-iteration": ("deterministic-iteration.cpp", []),
    "hot-path-alloc": ("hot-path-alloc.cpp", ["--assume-hot-path"]),
    "rng-by-ref": ("rng-by-ref.cpp", []),
}


def expected_tags(path: str) -> set:
    out = set()
    with open(path, encoding="utf-8") as f:
        for ln, line in enumerate(f, 1):
            m = EXPECT_RE.search(line)
            if m:
                out.add((ln, m.group(1)))
    return out


def scan(path: str, checks: list, assume_hot: bool, no_allowlist: bool):
    rel = os.path.basename(path)
    return essat_tidy.scan_file(path, rel, checks, assume_hot, not no_allowlist)


def run_check_fixture(check: str) -> int:
    fname, flags = FIXTURES[check]
    path = os.path.join(HERE, fname)
    active, suppressed, _ = scan(
        path, [check],
        assume_hot="--assume-hot-path" in flags,
        no_allowlist="--no-allowlist" in flags)
    got = {(f.line, f.check) for f in active}
    want = expected_tags(path)
    ok = True
    for missing in sorted(want - got):
        print(f"FAIL {fname}:{missing[0]}: expected essat-{missing[1]}, "
              f"not reported")
        ok = False
    for extra in sorted(got - want):
        print(f"FAIL {fname}:{extra[0]}: unexpected essat-{extra[1]}")
        ok = False
    # Suppressed findings must never appear among active ones; fixtures with
    # allow() comments pin that too.
    for f in suppressed:
        if (f.line, f.check) in want:
            print(f"FAIL {fname}:{f.line}: tagged line was suppressed")
            ok = False
    status = "OK" if ok else "FAIL"
    print(f"{status} fixture {fname}: {len(want)} expected finding(s), "
          f"{len(got)} reported, {len(suppressed)} suppressed")
    return 0 if ok else 1


def run_wallclock_allowlist_fixture() -> int:
    """Pins the no-wallclock allowlist boundary: the snapshot file-I/O TU
    (and the other host-facing TUs) are exempt, while sim-side snap code —
    which runs inside trials — stays banned. Scans the no-wallclock fixture
    (which contains real findings) under different reported paths."""
    path = os.path.join(HERE, "no-wallclock.cpp")
    cases = [
        # (path as reported, exempt?)
        ("src/snap/snapshot_io.cpp", True),   # the ONLY host-I/O snap TU
        ("src/util/rng.cpp", True),
        ("src/exp/sinks.cpp", True),
        ("src/obs/trace_export.cpp", True),
        ("src/snap/trial.cpp", False),        # sim-side snap: banned
        ("src/snap/serializer.cpp", False),
        ("src/snap/config_codec.cpp", False),
        ("src/sim/simulator.cpp", False),
    ]
    ok = True
    for rel, exempt in cases:
        active, _, _ = essat_tidy.scan_file(
            path, rel, ["no-wallclock"], False, True)
        if exempt and active:
            print(f"FAIL allowlist: {rel} should be exempt, "
                  f"{len(active)} finding(s) reported")
            ok = False
        if not exempt and not active:
            print(f"FAIL allowlist: {rel} should be in scope, "
                  f"no findings reported")
            ok = False
    print(("OK" if ok else "FAIL") + " fixture wallclock-allowlist: "
          f"{len(cases)} path cases")
    return 0 if ok else 1


def run_suppression_fixture() -> int:
    path = os.path.join(HERE, "suppressions.cpp")
    active, suppressed, n_comments = scan(
        path, list(essat_tidy.CHECKS), assume_hot=True, no_allowlist=True)
    ok = True
    if active:
        for f in active:
            print(f"FAIL suppressions.cpp:{f.line}: unsuppressed "
                  f"essat-{f.check}")
        ok = False
    if len(suppressed) != 3:
        print(f"FAIL suppressions.cpp: expected 3 suppressed findings, "
              f"got {len(suppressed)}")
        ok = False
    if n_comments != 3:
        print(f"FAIL suppressions.cpp: expected 3 suppression comments, "
              f"counted {n_comments}")
        ok = False

    # Cap enforcement goes through the CLI: 3 comments, cap 2 -> exit 1.
    rc_over = essat_tidy.main(
        [path, "--root", HERE, "--assume-hot-path", "--no-allowlist",
         "--max-suppressions", "2", "--quiet"])
    if rc_over != 1:
        print(f"FAIL suppression cap: expected exit 1 with cap 2, "
              f"got {rc_over}")
        ok = False
    rc_under = essat_tidy.main(
        [path, "--root", HERE, "--assume-hot-path", "--no-allowlist",
         "--max-suppressions", "3", "--quiet"])
    if rc_under != 0:
        print(f"FAIL suppression cap: expected exit 0 with cap 3, "
              f"got {rc_under}")
        ok = False
    print(("OK" if ok else "FAIL") + " fixture suppressions.cpp: "
          "3 suppressed, cap enforced")
    return 0 if ok else 1


def main(argv: list) -> int:
    if len(argv) != 1:
        print(__doc__)
        return 2
    what = argv[0]
    if what == "all":
        rc = 0
        for check in FIXTURES:
            rc |= run_check_fixture(check)
        rc |= run_wallclock_allowlist_fixture()
        rc |= run_suppression_fixture()
        return rc
    if what == "wallclock-allowlist":
        return run_wallclock_allowlist_fixture()
    if what == "suppressions":
        return run_suppression_fixture()
    if what in FIXTURES:
        return run_check_fixture(what)
    print(f"unknown fixture '{what}'")
    return 2


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
