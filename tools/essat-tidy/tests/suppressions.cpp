// Fixture for the suppression-comment machinery: every finding here is
// covered by an `essat-lint: allow(...)` comment (same line or the line
// above), so a scan must exit 0 with 3 suppressed findings — and fail when
// the cap is set below 3.
#include <functional>

namespace fixture {

struct Hooks {
  std::function<void()> on_idle;  // essat-lint: allow(hot-path-alloc)

  // essat-lint: allow(hot-path-alloc) — covers the next line
  std::function<void()> on_wake;
};

int ambient() {
  return rand();  // essat-lint: allow(no-wallclock)
}

}  // namespace fixture
