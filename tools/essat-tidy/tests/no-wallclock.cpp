// Fixture for essat-no-wallclock. Lines tagged `expect: no-wallclock` must
// produce exactly one finding of that check; untagged lines must not.
// Scanned with --no-allowlist so the fixture path itself is in scope.
#include <chrono>
#include <ctime>
#include <random>

namespace fixture {

struct Simulator {
  long now() const { return 0; }
};

long bad_wall_time() {
  auto t0 = std::chrono::steady_clock::now();            // expect: no-wallclock
  (void)t0;
  auto t1 = std::chrono::system_clock::now();            // expect: no-wallclock
  (void)t1;
  return time(nullptr);                                  // expect: no-wallclock
}

int bad_ambient_randomness() {
  std::random_device rd;                                 // expect: no-wallclock
  int x = rand();                                        // expect: no-wallclock
  srand(42);                                             // expect: no-wallclock
  return static_cast<int>(rd()) + x;
}

// Negative cases: sim-time and Rng-style APIs that merely contain the
// banned substrings must not fire.
struct Timer {
  long fire_time() const { return 0; }
  long uniform_time(long lo, long hi) { return lo + hi; }
};

long good_sim_time(const Simulator& sim, Timer& t) {
  const long now = sim.now();
  return now + t.fire_time() + t.uniform_time(0, 10);
}

// A string literal mentioning rand() is not a call.
const char* kDoc = "never call rand() in sim code";
// Nor is a comment: rand(), time(nullptr), std::chrono.

}  // namespace fixture
