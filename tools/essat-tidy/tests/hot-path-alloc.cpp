// Fixture for essat-hot-path-alloc. Scanned with --assume-hot-path so the
// fixture counts as hot-path code.
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <new>
#include <unordered_map>

namespace fixture {

struct Packet {
  int size = 0;
};

Packet* bad_raw_new() {
  return new Packet{};                                   // expect: hot-path-alloc
}

std::shared_ptr<Packet> bad_make_shared() {
  return std::make_shared<Packet>();                     // expect: hot-path-alloc
}

std::unique_ptr<Packet> bad_make_unique() {
  return std::make_unique<Packet>();                     // expect: hot-path-alloc
}

struct BadMembers {
  std::function<void()> callback;                        // expect: hot-path-alloc
  std::map<int, int> per_node;                           // expect: hot-path-alloc
  std::unordered_map<std::uint64_t, int> per_link;       // expect: hot-path-alloc
};

// Placement new constructs in caller-owned storage — no allocation, the
// sim::InlineCallback small-buffer idiom.
struct Slot {
  alignas(8) unsigned char buf[48];
  void emplace() { ::new (static_cast<void*>(buf)) Packet{}; }
  void emplace_unqualified() { new (static_cast<void*>(buf)) Packet{}; }
};

// A suppressed deliberate exception still parses and is counted.
struct Allowed {
  std::function<void()> setup_hook;  // essat-lint: allow(hot-path-alloc)
};

}  // namespace fixture
