// Fixture for essat-rng-by-ref.
#include <cstdint>
#include <utility>
#include <vector>

namespace util {
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : seed_{seed} {}
  Rng(const Rng&) = delete;
  Rng& operator=(const Rng&) = delete;
  Rng(Rng&&) = default;
  Rng& operator=(Rng&&) = default;
  Rng fork(std::uint64_t s) const { return Rng{seed_ ^ s}; }
  double uniform() { return 0.5; }

 private:
  std::uint64_t seed_;
};
}  // namespace util

namespace fixture {

void bad_by_value_param(util::Rng rng);                  // expect: rng-by-ref

struct BadSink {
  BadSink(int nodes, util::Rng rng);                     // expect: rng-by-ref
};

// Sinks take the stream by rvalue reference and move it in.
struct GoodSink {
  explicit GoodSink(util::Rng&& rng) : rng_{std::move(rng)} {}

 private:
  util::Rng rng_;  // owned stream member — fine
};

// Borrowers take a mutable reference.
double good_borrower(util::Rng& rng) { return rng.uniform(); }

// Local streams built from fork are fine.
double good_local(util::Rng& parent) {
  util::Rng local = parent.fork(7);
  return local.uniform();
}

}  // namespace fixture
