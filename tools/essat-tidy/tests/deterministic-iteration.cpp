// Fixture for essat-deterministic-iteration.
#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace fixture {

struct Stats {
  std::unordered_map<std::uint64_t, int> per_link;
  std::unordered_set<std::uint64_t> seen;
  std::vector<int> ordered;
};

int bad_side_effecting_iteration(Stats& s) {
  int acc = 0;
  for (const auto& kv : s.per_link) {                    // expect: deterministic-iteration
    acc = acc * 31 + kv.second;  // order-dependent fold
  }
  return acc;
}

int bad_iterator_loop(Stats& s) {
  int n = 0;
  for (auto it = s.seen.begin(); it != s.seen.end(); ++it) {  // expect: deterministic-iteration
    if (n == 0) n = static_cast<int>(*it);  // "first element" is layout-defined
  }
  return n;
}

// Blessed idiom: collect keys, sort, drain deterministically.
int good_sorted_drain(const Stats& s) {
  std::vector<std::uint64_t> keys;
  for (const auto& kv : s.per_link) keys.push_back(kv.first);
  std::sort(keys.begin(), keys.end());
  int acc = 0;
  for (std::uint64_t k : keys) acc = acc * 31 + s.per_link.at(k);
  return acc;
}

// Ordered containers iterate deterministically — no finding.
int good_vector_iteration(const Stats& s) {
  int acc = 0;
  for (int v : s.ordered) acc += v;
  return acc;
}

}  // namespace fixture
