#include "NoWallclockCheck.h"

#include "Suppression.h"
#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang::tidy::essat {

NoWallclockCheck::NoWallclockCheck(llvm::StringRef Name,
                                   ClangTidyContext *Context)
    : ClangTidyCheck(Name, Context),
      AllowedFiles(Options.get(
          "AllowedFiles",
          "src/util/rng.;src/exp/;src/obs/trace_export.;src/snap/snapshot_io.")) {}

void NoWallclockCheck::storeOptions(ClangTidyOptions::OptionMap &Opts) {
  Options.store(Opts, "AllowedFiles", AllowedFiles);
}

void NoWallclockCheck::registerMatchers(MatchFinder *Finder) {
  // Free functions that read host time or host entropy.
  Finder->addMatcher(
      callExpr(callee(functionDecl(hasAnyName(
                   "::time", "::gettimeofday", "::clock", "::rand", "::srand",
                   "::std::rand", "::std::srand", "::std::time"))))
          .bind("call"),
      this);
  // Static member calls on the banned chrono clocks (now(), etc.).
  Finder->addMatcher(
      callExpr(callee(cxxMethodDecl(ofClass(hasAnyName(
                   "::std::chrono::system_clock", "::std::chrono::steady_clock",
                   "::std::chrono::high_resolution_clock")))))
          .bind("call"),
      this);
  // Any declaration of a std::random_device (host entropy).
  Finder->addMatcher(
      varDecl(hasType(namedDecl(hasName("::std::random_device"))))
          .bind("decl"),
      this);
}

void NoWallclockCheck::check(const MatchFinder::MatchResult &Result) {
  SourceLocation Loc;
  llvm::StringRef What;
  if (const auto *Call = Result.Nodes.getNodeAs<CallExpr>("call")) {
    Loc = Call->getBeginLoc();
    What = "wall-clock / host-entropy call";
  } else if (const auto *Decl = Result.Nodes.getNodeAs<VarDecl>("decl")) {
    Loc = Decl->getBeginLoc();
    What = "std::random_device";
  } else {
    return;
  }
  const SourceManager &SM = *Result.SourceManager;
  if (Loc.isInvalid() || !SM.isInWrittenMainFile(SM.getSpellingLoc(Loc)))
    return;
  llvm::StringRef Path = SM.getFilename(SM.getSpellingLoc(Loc));
  if (pathMatchesList(Path, AllowedFiles))
    return;
  if (isSuppressedAt(SM, Loc, "no-wallclock"))
    return;
  diag(Loc, "%0 breaks run reproducibility; use Simulator::now() for time "
            "and a forked util::Rng stream for randomness")
      << What;
}

}  // namespace clang::tidy::essat
