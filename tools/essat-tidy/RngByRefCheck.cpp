#include "RngByRefCheck.h"

#include "Suppression.h"
#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang::tidy::essat {

void RngByRefCheck::registerMatchers(MatchFinder *Finder) {
  const auto RngType = hasUnqualifiedDesugaredType(recordType(
      hasDeclaration(cxxRecordDecl(hasName("::essat::util::Rng")))));
  // Parameters of plain (non-reference) Rng type.
  Finder->addMatcher(
      parmVarDecl(hasType(qualType(RngType))).bind("param"), this);
  // Lambdas whose captures copy an Rng.
  Finder->addMatcher(lambdaExpr().bind("lambda"), this);
}

void RngByRefCheck::check(const MatchFinder::MatchResult &Result) {
  const SourceManager &SM = *Result.SourceManager;
  if (const auto *Param = Result.Nodes.getNodeAs<ParmVarDecl>("param")) {
    SourceLocation Loc = Param->getBeginLoc();
    if (Loc.isInvalid() || !SM.isInWrittenMainFile(SM.getSpellingLoc(Loc)))
      return;
    if (isSuppressedAt(SM, Loc, "rng-by-ref"))
      return;
    diag(Loc,
         "util::Rng passed by value duplicates the stream; take util::Rng&& "
         "and std::move into storage, or util::Rng& to borrow");
    return;
  }
  if (const auto *Lambda = Result.Nodes.getNodeAs<LambdaExpr>("lambda")) {
    for (const LambdaCapture &Cap : Lambda->captures()) {
      if (Cap.getCaptureKind() != LCK_ByCopy || !Cap.capturesVariable())
        continue;
      const ValueDecl *Var = Cap.getCapturedVar();
      const auto *Record = Var->getType()
                               .getNonReferenceType()
                               .getCanonicalType()
                               ->getAsCXXRecordDecl();
      if (!Record || Record->getQualifiedNameAsString() != "essat::util::Rng")
        continue;
      SourceLocation Loc = Cap.getLocation();
      if (Loc.isInvalid() || !SM.isInWrittenMainFile(SM.getSpellingLoc(Loc)))
        continue;
      if (isSuppressedAt(SM, Loc, "rng-by-ref"))
        continue;
      diag(Loc,
           "lambda copies a util::Rng; capture by reference, or move the "
           "generator in with an init-capture");
    }
  }
}

}  // namespace clang::tidy::essat
