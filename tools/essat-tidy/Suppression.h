// Shared suppression-comment support for the essat-tidy checks.
//
// A diagnostic at source location L is suppressed when the line holding L,
// or the line immediately above it, carries
//
//     // essat-lint: allow(<check-name>)
//
// This mirrors tools/essat-tidy/essat_tidy.py (the portable implementation
// of the same checks): both honor the same comment, and CI counts the
// comments and caps them, so a suppression is always a deliberate,
// reviewed exception rather than a silent bypass.
#pragma once

#include "clang/Basic/SourceManager.h"
#include "llvm/ADT/StringRef.h"

namespace clang::tidy::essat {

inline llvm::StringRef lineAt(const SourceManager &SM, FileID FID,
                              unsigned Line) {
  bool Invalid = false;
  llvm::StringRef Buffer = SM.getBufferData(FID, &Invalid);
  if (Invalid || Line == 0)
    return {};
  // Walk to the requested 1-based line. Files this project lints are small
  // enough that the linear scan is irrelevant next to the AST traversal.
  size_t Pos = 0;
  for (unsigned L = 1; L < Line; ++L) {
    Pos = Buffer.find('\n', Pos);
    if (Pos == llvm::StringRef::npos)
      return {};
    ++Pos;
  }
  size_t End = Buffer.find('\n', Pos);
  return Buffer.slice(Pos, End == llvm::StringRef::npos ? Buffer.size() : End);
}

inline bool lineAllows(llvm::StringRef LineText, llvm::StringRef CheckName) {
  size_t At = LineText.find("essat-lint:");
  if (At == llvm::StringRef::npos)
    return false;
  llvm::StringRef Rest = LineText.drop_front(At);
  size_t Open = Rest.find("allow(");
  if (Open == llvm::StringRef::npos)
    return false;
  llvm::StringRef Arg = Rest.drop_front(Open + 6);
  size_t Close = Arg.find(')');
  if (Close == llvm::StringRef::npos)
    return false;
  return Arg.take_front(Close).trim() == CheckName;
}

// `CheckName` is the short name without the "essat-" prefix, matching the
// allow() argument syntax documented in the README.
inline bool isSuppressedAt(const SourceManager &SM, SourceLocation Loc,
                           llvm::StringRef CheckName) {
  if (Loc.isInvalid())
    return false;
  SourceLocation Spelling = SM.getSpellingLoc(Loc);
  FileID FID = SM.getFileID(Spelling);
  unsigned Line = SM.getSpellingLineNumber(Spelling);
  return lineAllows(lineAt(SM, FID, Line), CheckName) ||
         (Line > 1 && lineAllows(lineAt(SM, FID, Line - 1), CheckName));
}

// True when `Path` matches any ';'-separated substring pattern in `List`.
// Used for the no-wallclock allowlist and the hot-path file list so both
// are configurable from .clang-tidy without rebuilding the plugin.
inline bool pathMatchesList(llvm::StringRef Path, llvm::StringRef List) {
  llvm::SmallVector<llvm::StringRef, 8> Parts;
  List.split(Parts, ';', /*MaxSplit=*/-1, /*KeepEmpty=*/false);
  for (llvm::StringRef Part : Parts) {
    if (Path.contains(Part.trim()))
      return true;
  }
  return false;
}

}  // namespace clang::tidy::essat
