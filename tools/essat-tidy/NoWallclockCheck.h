// essat-no-wallclock: bans wall-clock and ambient-randomness APIs in
// simulation code. Bit-identical RunMetrics across ESSAT_JOBS worker
// counts — the repo's core reproducibility contract — survives only if no
// code path reads host time or host entropy: simulation code must use
// Simulator::now() and forked util::Rng streams.
//
// Flags:
//   * std::chrono::{system,steady,high_resolution}_clock::now()
//   * ::time(), ::gettimeofday(), ::clock()
//   * ::rand(), ::srand()
//   * std::random_device (construction or use)
//
// Options:
//   essat-no-wallclock.AllowedFiles — ';'-separated path substrings exempt
//   from the check (default: "src/util/rng.;src/exp/;src/obs/trace_export.;
//   src/snap/snapshot_io." — the RNG implementation, sweep progress
//   reporting, export timestamps, and the snapshot file-I/O TU; the rest of
//   src/snap runs inside trials and stays in scope).
#pragma once

#include "clang-tidy/ClangTidyCheck.h"

namespace clang::tidy::essat {

class NoWallclockCheck : public ClangTidyCheck {
 public:
  NoWallclockCheck(llvm::StringRef Name, ClangTidyContext *Context);

  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
  void storeOptions(ClangTidyOptions::OptionMap &Opts) override;

 private:
  const std::string AllowedFiles;
};

}  // namespace clang::tidy::essat
