#include "HotPathAllocCheck.h"

#include "Suppression.h"
#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang::tidy::essat {

HotPathAllocCheck::HotPathAllocCheck(llvm::StringRef Name,
                                     ClangTidyContext *Context)
    : ClangTidyCheck(Name, Context),
      HotPathFiles(Options.get("HotPathFiles",
                               "src/sim/;src/net/channel.;src/mac/csma.")) {}

void HotPathAllocCheck::storeOptions(ClangTidyOptions::OptionMap &Opts) {
  Options.store(Opts, "HotPathFiles", HotPathFiles);
}

void HotPathAllocCheck::registerMatchers(MatchFinder *Finder) {
  Finder->addMatcher(cxxNewExpr().bind("new"), this);
  Finder->addMatcher(
      callExpr(callee(functionDecl(hasAnyName("::std::make_shared",
                                              "::std::make_unique",
                                              "::std::allocate_shared"))))
          .bind("make"),
      this);
  const auto AllocatingType = hasUnqualifiedDesugaredType(recordType(
      hasDeclaration(cxxRecordDecl(hasAnyName(
          "::std::function", "::std::map", "::std::multimap", "::std::list",
          "::std::deque", "::std::unordered_map", "::std::unordered_set",
          "::std::unordered_multimap", "::std::unordered_multiset")))));
  Finder->addMatcher(valueDecl(hasType(qualType(AllocatingType))).bind("decl"),
                     this);
}

void HotPathAllocCheck::check(const MatchFinder::MatchResult &Result) {
  SourceLocation Loc;
  llvm::StringRef What;
  if (const auto *New = Result.Nodes.getNodeAs<CXXNewExpr>("new")) {
    // Placement new constructs into existing storage (InlineCallback SBO).
    if (New->getNumPlacementArgs() > 0)
      return;
    Loc = New->getBeginLoc();
    What = "operator new";
  } else if (const auto *Make = Result.Nodes.getNodeAs<CallExpr>("make")) {
    Loc = Make->getBeginLoc();
    What = "heap-allocating factory";
  } else if (const auto *Decl = Result.Nodes.getNodeAs<ValueDecl>("decl")) {
    Loc = Decl->getBeginLoc();
    What = "allocating container / type-erased callable";
  } else {
    return;
  }
  const SourceManager &SM = *Result.SourceManager;
  if (Loc.isInvalid())
    return;
  llvm::StringRef Path = SM.getFilename(SM.getSpellingLoc(Loc));
  if (!pathMatchesList(Path, HotPathFiles))
    return;
  if (isSuppressedAt(SM, Loc, "hot-path-alloc"))
    return;
  diag(Loc,
       "%0 in a hot-path file; use InlineCallback, util::FlatMap, "
       "util::RingQueue, or pre-sized vectors (suppress deliberate "
       "setup-time use with '// essat-lint: allow(hot-path-alloc)')")
      << What;
}

}  // namespace clang::tidy::essat
