// essat-hot-path-alloc: flags per-event allocation machinery in the files
// that run on the simulation hot path. PR 5 made the core allocation-free
// (calendar-wheel queue, InlineCallback SBO, FlatMap); this check keeps it
// that way by rejecting, in hot-path files:
//
//   * non-placement `new` expressions
//   * std::make_shared / std::make_unique / std::allocate_shared calls
//   * declarations of std::function, std::map, std::multimap, std::list,
//     std::deque, std::unordered_map, std::unordered_set
//
// Placement new is allowed — InlineCallback's SBO uses `::new (buf) T` and
// does not allocate. Setup-time exceptions are suppressed with
// `// essat-lint: allow(hot-path-alloc)` and counted against the CI cap.
//
// Options:
//   essat-hot-path-alloc.HotPathFiles — ';'-separated path substrings the
//   check applies to (default: "src/sim/;src/net/channel.;src/mac/csma.").
#pragma once

#include "clang-tidy/ClangTidyCheck.h"

namespace clang::tidy::essat {

class HotPathAllocCheck : public ClangTidyCheck {
 public:
  HotPathAllocCheck(llvm::StringRef Name, ClangTidyContext *Context);

  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
  void storeOptions(ClangTidyOptions::OptionMap &Opts) override;

 private:
  const std::string HotPathFiles;
};

}  // namespace clang::tidy::essat
