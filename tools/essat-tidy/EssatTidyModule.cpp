// essat-tidy: project-specific clang-tidy checks for the ESSAT simulator.
//
// Built as a shared module and loaded with
//     clang-tidy -load=libessat-tidy.so -checks='essat-*' -p build ...
//
// Four checks, mirrored 1:1 by the portable lexical implementation in
// tools/essat-tidy/essat_tidy.py (which runs everywhere, including
// toolchains without clang dev headers):
//
//   essat-no-wallclock            host time / host entropy in sim code
//   essat-deterministic-iteration order-sensitive unordered iteration
//   essat-hot-path-alloc          allocation machinery on the hot path
//   essat-rng-by-ref              util::Rng copied by value
#include "DeterministicIterationCheck.h"
#include "HotPathAllocCheck.h"
#include "NoWallclockCheck.h"
#include "RngByRefCheck.h"
#include "clang-tidy/ClangTidyModule.h"
#include "clang-tidy/ClangTidyModuleRegistry.h"

namespace clang::tidy::essat {

class EssatTidyModule : public ClangTidyModule {
 public:
  void addCheckFactories(ClangTidyCheckFactories &Factories) override {
    Factories.registerCheck<NoWallclockCheck>("essat-no-wallclock");
    Factories.registerCheck<DeterministicIterationCheck>(
        "essat-deterministic-iteration");
    Factories.registerCheck<HotPathAllocCheck>("essat-hot-path-alloc");
    Factories.registerCheck<RngByRefCheck>("essat-rng-by-ref");
  }
};

namespace {
ClangTidyModuleRegistry::Add<EssatTidyModule> X(
    "essat-tidy-module", "ESSAT determinism and hot-path invariant checks.");
}  // namespace

}  // namespace clang::tidy::essat

// Pull the module into any binary that links this object.
// NOLINTNEXTLINE(misc-use-internal-linkage)
volatile int EssatTidyModuleAnchorSource = 0;
