#!/usr/bin/env python3
"""essat-tidy: project-specific determinism & hot-path lint checks.

This is the portable implementation of the essat-tidy check suite — the
same four checks the clang-tidy plugin in this directory implements on the
AST are implemented here on a tokenized line stream, so the lint gate runs
on any machine with a Python interpreter (the plugin additionally needs
clang-tidy development headers; see CMakeLists.txt in this directory).
CI runs both when it can, and this one always.

Checks
------
  essat-no-wallclock
      Bans wall-clock and ambient-randomness APIs (std::chrono clocks,
      time(), gettimeofday, clock(), rand()/srand(), std::random_device)
      in src/. Simulation code must use Simulator::now() for time and
      forked util::Rng streams for randomness — a single wall-clock read
      makes a run irreproducible. Allowlisted: util/rng.* (owns the RNG),
      exp/ progress reporting, obs/ export timestamps.

  essat-deterministic-iteration
      Flags range-for / iterator loops over std::unordered_map /
      std::unordered_set: iteration order is unspecified, so any side
      effect in the body (metrics accumulation, "first match wins", output
      ordering) leaks hash-table layout into results. Use util::FlatMap
      with a sorted drain, or collect keys and sort them first — the
      key-collection idiom `for (... : m) keys.push_back(kv.first);`
      immediately followed by a sort is recognized and allowed.

  essat-hot-path-alloc
      For files on the hot-path list (sim/, net/channel.*, mac/csma.*):
      flags operator new, make_shared/make_unique/allocate_shared,
      std::function, and node-based containers (std::map, std::list,
      std::deque, unordered_*). The event core is steady-state
      allocation-free (see BENCH_*.json allocs/event) and every flagged
      construct either allocates or can allocate behind your back.
      Placement new (`new (buf) T`, used by sim::InlineCallback) does not
      allocate and is not flagged.

  essat-rng-by-ref
      Flags util::Rng function parameters taken by value. Rng is move-only
      precisely so a stream cannot be silently duplicated; sinks take
      `util::Rng&&` and move into a member, borrowers take `util::Rng&`.

Suppressions
------------
A finding on a line carrying (or immediately preceded by a line carrying)

    // essat-lint: allow(<check-name>)

is suppressed but counted. The total number of suppression comments in the
scanned tree is capped (--max-suppressions, CI passes 10): suppressions
are pressure-relief for deliberate API choices, not a bypass.

Exit status: 0 clean; 1 unsuppressed findings or suppression cap exceeded;
2 usage error.
"""
from __future__ import annotations

import argparse
import os
import re
import sys
from typing import Dict, List, NamedTuple, Optional, Tuple

CHECKS = (
    "no-wallclock",
    "deterministic-iteration",
    "hot-path-alloc",
    "rng-by-ref",
)

# Paths (relative to --root, '/'-separated prefixes) exempt from
# essat-no-wallclock: the RNG implementation itself, sweep-engine progress
# reporting, trace-export timestamps, and the snapshot file-I/O TU — the
# ONLY snap translation unit allowed to touch the host environment; the
# rest of src/snap runs inside trials and stays banned (pinned by the
# wallclock-allowlist fixture).
WALLCLOCK_ALLOWLIST = (
    "src/util/rng.",
    "src/exp/",
    "src/obs/trace_export.",
    "src/snap/snapshot_io.",
)

# Hot-path surface: the event core, the channel, and the MAC. Everything
# here runs per event or per frame in steady state.
HOT_PATH_PREFIXES = (
    "src/sim/",
    "src/net/channel.",
    "src/mac/csma.",
)

SUPPRESS_RE = re.compile(r"//\s*essat-lint:\s*allow\(([a-z-]+)\)")


class Finding(NamedTuple):
    path: str
    line: int  # 1-based
    col: int  # 1-based
    check: str
    message: str


class FileText(NamedTuple):
    path: str  # path as reported (relative to root when possible)
    raw: List[str]  # original lines
    code: List[str]  # lines with comments and string/char literals blanked


def strip_comments_and_strings(lines: List[str]) -> List[str]:
    """Blanks comments and string/char literals, preserving line lengths so
    columns in findings still point into the original text."""
    out = []
    in_block = False
    for line in lines:
        buf = []
        i, n = 0, len(line)
        in_str: Optional[str] = None
        while i < n:
            c = line[i]
            if in_block:
                if line.startswith("*/", i):
                    in_block = False
                    buf.append("  ")
                    i += 2
                else:
                    buf.append(" ")
                    i += 1
            elif in_str:
                if c == "\\" and i + 1 < n:
                    buf.append("  ")
                    i += 2
                elif c == in_str:
                    in_str = None
                    buf.append(c)
                    i += 1
                else:
                    buf.append(" ")
                    i += 1
            elif line.startswith("//", i):
                buf.append(" " * (n - i))
                break
            elif line.startswith("/*", i):
                in_block = True
                buf.append("  ")
                i += 2
            elif c in "\"'":
                in_str = c
                buf.append(c)
                i += 1
            else:
                buf.append(c)
                i += 1
        out.append("".join(buf))
    return out


# --------------------------------------------------------------------------
# essat-no-wallclock

WALLCLOCK_PATTERNS: Tuple[Tuple[re.Pattern, str], ...] = (
    (re.compile(r"std\s*::\s*chrono"), "std::chrono"),
    (re.compile(r"\bsystem_clock\b"), "system_clock"),
    (re.compile(r"\bsteady_clock\b"), "steady_clock"),
    (re.compile(r"\bhigh_resolution_clock\b"), "high_resolution_clock"),
    (re.compile(r"\bgettimeofday\s*\("), "gettimeofday()"),
    (re.compile(r"(?<![\w.>])time\s*\(\s*(?:NULL|nullptr|0)?\s*\)"), "time()"),
    (re.compile(r"(?<![\w.>])clock\s*\(\s*\)"), "clock()"),
    (re.compile(r"(?<![\w.>])s?rand\s*\(\s*"), "rand()/srand()"),
    (re.compile(r"\brandom_device\b"), "std::random_device"),
)


def check_no_wallclock(ft: FileText, allowlist_on: bool) -> List[Finding]:
    if allowlist_on:
        norm = ft.path.replace(os.sep, "/")
        if any(norm.startswith(p) or ("/" + p) in norm
               for p in WALLCLOCK_ALLOWLIST):
            return []
    findings = []
    for ln, code in enumerate(ft.code, 1):
        for pat, what in WALLCLOCK_PATTERNS:
            m = pat.search(code)
            if m:
                findings.append(Finding(
                    ft.path, ln, m.start() + 1, "no-wallclock",
                    f"{what} breaks run reproducibility; use Simulator::now() "
                    f"for time and a forked util::Rng stream for randomness"))
    return findings


# --------------------------------------------------------------------------
# essat-deterministic-iteration

UNORDERED_DECL_RE = re.compile(
    r"unordered_(?:map|set)\s*<[^;{]*>\s+(\w+)\s*[;={]")
# The sequence expression may be qualified (`s.per_link`, `this->links_`);
# the declared container name is its last component.
RANGE_FOR_RE = re.compile(
    r"\bfor\s*\([^;)]*:\s*(?:\w+\s*(?:\.|->)\s*)*(\w+)\s*\)")
ITER_FOR_RE = re.compile(
    r"\bfor\s*\(\s*(?:auto|[\w:<>]+)\s+\w+\s*=\s*"
    r"(?:\w+\s*(?:\.|->)\s*)*(\w+)\s*\.\s*(?:c?begin)\s*\(")
KEY_COLLECT_RE = re.compile(r"\.push_back\(\s*\w+\.first\s*\)")


def check_deterministic_iteration(ft: FileText) -> List[Finding]:
    unordered_names = set()
    for code in ft.code:
        for m in UNORDERED_DECL_RE.finditer(code):
            unordered_names.add(m.group(1))
    if not unordered_names:
        return []
    findings = []
    for ln, code in enumerate(ft.code, 1):
        for pat in (RANGE_FOR_RE, ITER_FOR_RE):
            m = pat.search(code)
            if not m or m.group(1) not in unordered_names:
                continue
            # Blessed idiom: collecting keys for a sorted drain. The
            # collection body must be on the same line (the codebase style
            # for these one-liners) so the allowance can't hide real work.
            tail = code[m.end():]
            if KEY_COLLECT_RE.search(tail):
                continue
            findings.append(Finding(
                ft.path, ln, m.start() + 1, "deterministic-iteration",
                f"iteration over unordered container '{m.group(1)}' leaks "
                f"hash-table layout into side effects; drain sorted keys or "
                f"use util::FlatMap with a sorted drain"))
    return findings


# --------------------------------------------------------------------------
# essat-hot-path-alloc

HOT_PATH_PATTERNS: Tuple[Tuple[re.Pattern, str], ...] = (
    # `new T`, `new foo::T`, `new T[...]` — but not placement `new (buf) T`
    # and not `::new (buf) T` (sim::InlineCallback's non-allocating form).
    (re.compile(r"(?<!:)\bnew\s+(?!\()[A-Za-z_:]"), "operator new"),
    (re.compile(r"\bmake_shared\s*<"), "make_shared"),
    (re.compile(r"\bmake_unique\s*<"), "make_unique"),
    (re.compile(r"\ballocate_shared\s*<"), "allocate_shared"),
    (re.compile(r"std\s*::\s*function\s*<"), "std::function"),
    (re.compile(r"std\s*::\s*map\s*<"), "std::map"),
    (re.compile(r"std\s*::\s*multimap\s*<"), "std::multimap"),
    (re.compile(r"std\s*::\s*list\s*<"), "std::list"),
    (re.compile(r"std\s*::\s*deque\s*<"), "std::deque"),
    (re.compile(r"\bunordered_(?:map|set)\s*<"), "unordered container"),
)


def is_hot_path(path: str) -> bool:
    norm = path.replace(os.sep, "/")
    return any(norm.startswith(p) or ("/" + p) in norm
               for p in HOT_PATH_PREFIXES)


def check_hot_path_alloc(ft: FileText, assume_hot: bool) -> List[Finding]:
    if not assume_hot and not is_hot_path(ft.path):
        return []
    findings = []
    for ln, code in enumerate(ft.code, 1):
        for pat, what in HOT_PATH_PATTERNS:
            m = pat.search(code)
            if m:
                findings.append(Finding(
                    ft.path, ln, m.start() + 1, "hot-path-alloc",
                    f"{what} on the hot path (steady state must be "
                    f"allocation-free; use sim::InlineCallback, "
                    f"util::FlatMap, util::RingQueue, or pre-sized flat "
                    f"storage)"))
    return findings


# --------------------------------------------------------------------------
# essat-rng-by-ref

# `Rng name` immediately followed by `,` or `)` — i.e. a by-value function
# parameter. `Rng&&`/`Rng&` don't match (no whitespace after Rng), local
# declarations (`Rng r{..};`, `Rng r = ..;`) and members (`Rng rng_;`)
# aren't followed by `,`/`)`.
RNG_BY_VALUE_RE = re.compile(r"(?<![&\w])Rng\s+\w+\s*[,)]")


def check_rng_by_ref(ft: FileText) -> List[Finding]:
    findings = []
    for ln, code in enumerate(ft.code, 1):
        m = RNG_BY_VALUE_RE.search(code)
        if m:
            findings.append(Finding(
                ft.path, ln, m.start() + 1, "rng-by-ref",
                "util::Rng passed by value would duplicate the random "
                "stream; sinks take util::Rng&& and move, borrowers take "
                "util::Rng&"))
    return findings


# --------------------------------------------------------------------------
# driver

def scan_file(path: str, rel: str, checks: List[str], assume_hot: bool,
              allowlist_on: bool) -> Tuple[List[Finding], List[Finding], int]:
    """Returns (unsuppressed findings, suppressed findings, suppression
    comment count) for one file."""
    with open(path, encoding="utf-8", errors="replace") as f:
        raw = f.read().splitlines()
    ft = FileText(rel, raw, strip_comments_and_strings(raw))

    findings: List[Finding] = []
    if "no-wallclock" in checks:
        findings += check_no_wallclock(ft, allowlist_on)
    if "deterministic-iteration" in checks:
        findings += check_deterministic_iteration(ft)
    if "hot-path-alloc" in checks:
        findings += check_hot_path_alloc(ft, assume_hot)
    if "rng-by-ref" in checks:
        findings += check_rng_by_ref(ft)

    # Suppression map: line -> set of allowed checks (a comment covers its
    # own line and the line below, so annotations can sit above the code).
    allowed: Dict[int, set] = {}
    n_suppress_comments = 0
    for ln, line in enumerate(raw, 1):
        for m in SUPPRESS_RE.finditer(line):
            n_suppress_comments += 1
            for covered in (ln, ln + 1):
                allowed.setdefault(covered, set()).add(m.group(1))

    active, suppressed = [], []
    for f_ in findings:
        if f_.check in allowed.get(f_.line, set()):
            suppressed.append(f_)
        else:
            active.append(f_)
    return active, suppressed, n_suppress_comments


def collect_files(root: str, paths: List[str]) -> List[Tuple[str, str]]:
    """Yields (absolute path, root-relative path) for every C++ file."""
    exts = (".h", ".hpp", ".cpp", ".cc", ".cxx")
    out = []
    for p in paths:
        ap = p if os.path.isabs(p) else os.path.join(root, p)
        if os.path.isfile(ap):
            out.append((ap, os.path.relpath(ap, root)))
            continue
        for dirpath, _dirnames, filenames in os.walk(ap):
            for fn in sorted(filenames):
                if fn.endswith(exts):
                    full = os.path.join(dirpath, fn)
                    out.append((full, os.path.relpath(full, root)))
    return sorted(out, key=lambda t: t[1])


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="essat_tidy.py",
        description="essat-tidy determinism & hot-path lint checks")
    parser.add_argument("paths", nargs="*", default=None,
                        help="files/directories to scan (default: src)")
    parser.add_argument("--root", default=None,
                        help="repository root (default: two levels up from "
                             "this script)")
    parser.add_argument("--checks", default=",".join(CHECKS),
                        help="comma-separated subset of checks to run")
    parser.add_argument("--max-suppressions", type=int, default=10,
                        help="fail when more than N essat-lint:allow "
                             "comments exist in the scanned tree (default "
                             "10)")
    parser.add_argument("--assume-hot-path", action="store_true",
                        help="treat every scanned file as hot-path "
                             "(fixture testing)")
    parser.add_argument("--no-allowlist", action="store_true",
                        help="disable the no-wallclock path allowlist "
                             "(fixture testing)")
    parser.add_argument("--list-checks", action="store_true")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-finding output, print summary "
                             "only")
    args = parser.parse_args(argv)

    if args.list_checks:
        for c in CHECKS:
            print(f"essat-{c}")
        return 0

    checks = [c.strip().removeprefix("essat-")
              for c in args.checks.split(",") if c.strip()]
    unknown = [c for c in checks if c not in CHECKS]
    if unknown:
        print(f"essat-tidy: unknown check(s): {', '.join(unknown)}",
              file=sys.stderr)
        return 2

    root = args.root or os.path.abspath(
        os.path.join(os.path.dirname(__file__), os.pardir, os.pardir))
    paths = args.paths or ["src"]
    files = collect_files(root, paths)
    if not files:
        print(f"essat-tidy: no C++ files under {paths} (root {root})",
              file=sys.stderr)
        return 2

    all_active: List[Finding] = []
    all_suppressed: List[Finding] = []
    n_suppress_comments = 0
    for ap, rel in files:
        active, suppressed, n_comments = scan_file(
            ap, rel, checks, args.assume_hot_path, not args.no_allowlist)
        all_active += active
        all_suppressed += suppressed
        n_suppress_comments += n_comments

    if not args.quiet:
        for f_ in all_active:
            print(f"{f_.path}:{f_.line}:{f_.col}: warning: {f_.message} "
                  f"[essat-{f_.check}]")
        for f_ in all_suppressed:
            print(f"{f_.path}:{f_.line}:{f_.col}: note: suppressed: "
                  f"{f_.message} [essat-{f_.check}]")

    over_cap = n_suppress_comments > args.max_suppressions
    print(f"essat-tidy: {len(all_active)} finding(s), "
          f"{len(all_suppressed)} suppressed "
          f"({n_suppress_comments} suppression comment(s), "
          f"cap {args.max_suppressions}) across {len(files)} file(s)")
    if over_cap:
        print(f"essat-tidy: FAIL — suppression cap exceeded "
              f"({n_suppress_comments} > {args.max_suppressions})")
    return 1 if (all_active or over_cap) else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
