// essat-rng-by-ref: flags util::Rng passed or captured by value. A copied
// generator replays the same draw sequence as its source, silently
// correlating two streams that were meant to be independent — the worst
// kind of statistics bug, because every run still "works". Rng is move-only
// precisely to stop this at compile time; this check catches the cases the
// type system can't, and predates code that might add a copy ctor back.
//
// Flags:
//   * function/constructor parameters of non-reference Rng type
//   * lambda by-copy captures of an Rng
//
// Correct signatures: `util::Rng&&` for sinks that keep the stream (store
// with std::move), `util::Rng&` for borrowers that draw and return.
#pragma once

#include "clang-tidy/ClangTidyCheck.h"

namespace clang::tidy::essat {

class RngByRefCheck : public ClangTidyCheck {
 public:
  using ClangTidyCheck::ClangTidyCheck;

  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
};

}  // namespace clang::tidy::essat
