// essat-deterministic-iteration: flags loops over std::unordered_map /
// std::unordered_set whose body has side effects. Hash-table iteration
// order is unspecified, so an order-dependent fold, a "first match wins"
// pick, or ordered output silently couples results to allocator layout —
// exactly the class of bug that broke conservation-report details before
// obs/lifecycle.cpp switched to a sorted key drain.
//
// The blessed key-collection idiom is allowed: a range-for whose body is a
// single `keys.push_back(kv.first)` call (collect, then sort, then drain).
#pragma once

#include "clang-tidy/ClangTidyCheck.h"

namespace clang::tidy::essat {

class DeterministicIterationCheck : public ClangTidyCheck {
 public:
  using ClangTidyCheck::ClangTidyCheck;

  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
};

}  // namespace clang::tidy::essat
