#include "DeterministicIterationCheck.h"

#include "Suppression.h"
#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang::tidy::essat {

namespace {

// True when the loop body is (only) the key-collection idiom:
//     for (const auto& kv : m) keys.push_back(kv.first);
// possibly wrapped in a compound statement with a single statement.
bool isKeyCollectionBody(const Stmt *Body) {
  if (const auto *Compound = dyn_cast_or_null<CompoundStmt>(Body)) {
    if (Compound->size() != 1)
      return false;
    Body = *Compound->body_begin();
  }
  const auto *Call = dyn_cast_or_null<CXXMemberCallExpr>(Body);
  if (!Call || Call->getNumArgs() != 1)
    return false;
  const auto *Method = Call->getMethodDecl();
  if (!Method || Method->getName() != "push_back")
    return false;
  const Expr *Arg = Call->getArg(0)->IgnoreParenImpCasts();
  const auto *Member = dyn_cast<MemberExpr>(Arg);
  return Member && Member->getMemberDecl()->getName() == "first";
}

}  // namespace

void DeterministicIterationCheck::registerMatchers(MatchFinder *Finder) {
  const auto UnorderedType = hasUnqualifiedDesugaredType(recordType(
      hasDeclaration(cxxRecordDecl(hasAnyName("::std::unordered_map",
                                              "::std::unordered_set",
                                              "::std::unordered_multimap",
                                              "::std::unordered_multiset")))));
  Finder->addMatcher(
      cxxForRangeStmt(hasRangeInit(expr(hasType(qualType(UnorderedType)))))
          .bind("loop"),
      this);
  // Iterator-style loops: for (auto it = m.begin(); ...).
  Finder->addMatcher(
      forStmt(hasLoopInit(declStmt(hasSingleDecl(varDecl(hasInitializer(
                  cxxMemberCallExpr(
                      callee(cxxMethodDecl(hasAnyName("begin", "cbegin"))),
                      on(expr(hasType(qualType(UnorderedType)))))))))))
          .bind("iterloop"),
      this);
}

void DeterministicIterationCheck::check(
    const MatchFinder::MatchResult &Result) {
  SourceLocation Loc;
  if (const auto *Loop = Result.Nodes.getNodeAs<CXXForRangeStmt>("loop")) {
    if (isKeyCollectionBody(Loop->getBody()))
      return;
    Loc = Loop->getForLoc();
  } else if (const auto *Loop = Result.Nodes.getNodeAs<ForStmt>("iterloop")) {
    Loc = Loop->getForLoc();
  } else {
    return;
  }
  const SourceManager &SM = *Result.SourceManager;
  if (Loc.isInvalid() || !SM.isInWrittenMainFile(SM.getSpellingLoc(Loc)))
    return;
  if (isSuppressedAt(SM, Loc, "deterministic-iteration"))
    return;
  diag(Loc,
       "iteration over an unordered container leaks hash-table layout into "
       "side effects; collect keys and sort them, or use util::FlatMap with "
       "a sorted drain");
}

}  // namespace clang::tidy::essat
