#!/usr/bin/env python3
"""Unit coverage for tools/check_perf.py — the perf-regression gate.

The gate guards every merge, so its own semantics need pinning: the
normalized-throughput ratio test, the workload-mismatch refusal, the
separate memory band with --mem-tolerance, the skip path for baselines
that predate a metric, and sane failure on malformed input.

Runs under the stdlib unittest runner (registered in CTest as
check_perf_selftest); each case invokes the script as a subprocess, the
same way CI does, so exit codes and argument parsing are covered too.
"""
import json
import os
import subprocess
import sys
import tempfile
import unittest

TOOLS_DIR = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
CHECK_PERF = os.path.join(TOOLS_DIR, "check_perf.py")

WORKLOAD = {"nodes": 160, "seeds": 4, "measure_s": 30}


def report(norm=1000.0, workload=WORKLOAD, mem_1000=48000.0, marginal=32000.0,
           **overrides):
    rep = {
        "workload": workload,
        "normalized_events_per_calib": norm,
        "events_per_sec": norm * 100.0,
        "ns_per_event": 1e9 / (norm * 100.0),
        "calibration_score": 100.0,
    }
    if mem_1000 is not None:
        rep["bytes_per_node_1000"] = mem_1000
    if marginal is not None:
        rep["marginal_bytes_per_node"] = marginal
    rep.update(overrides)
    return rep


class CheckPerfTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self.tmp.cleanup)

    def write(self, name, content):
        path = os.path.join(self.tmp.name, name)
        with open(path, "w") as f:
            if isinstance(content, str):
                f.write(content)
            else:
                json.dump(content, f)
        return path

    def run_gate(self, fresh, baseline, *extra):
        return subprocess.run(
            [sys.executable, CHECK_PERF, fresh, baseline, *extra],
            capture_output=True, text=True)

    def test_identical_reports_pass(self):
        fresh = self.write("fresh.json", report())
        base = self.write("base.json", report())
        result = self.run_gate(fresh, base)
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)
        self.assertIn("OK", result.stdout)

    def test_regression_within_tolerance_passes(self):
        fresh = self.write("fresh.json", report(norm=850.0))
        base = self.write("base.json", report(norm=1000.0))
        result = self.run_gate(fresh, base)  # -15% < default 20% budget
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)

    def test_regression_beyond_tolerance_fails(self):
        fresh = self.write("fresh.json", report(norm=700.0))
        base = self.write("base.json", report(norm=1000.0))
        result = self.run_gate(fresh, base)  # -30% > default 20% budget
        self.assertEqual(result.returncode, 1, result.stdout + result.stderr)
        self.assertIn("normalized throughput regressed", result.stdout)

    def test_tolerance_flag_tightens_the_gate(self):
        fresh = self.write("fresh.json", report(norm=900.0))
        base = self.write("base.json", report(norm=1000.0))
        self.assertEqual(self.run_gate(fresh, base).returncode, 0)
        tight = self.run_gate(fresh, base, "--tolerance", "0.05")
        self.assertEqual(tight.returncode, 1, tight.stdout + tight.stderr)

    def test_improvement_never_fails_and_notes_refresh(self):
        fresh = self.write("fresh.json", report(norm=1500.0))
        base = self.write("base.json", report(norm=1000.0))
        result = self.run_gate(fresh, base)
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)
        self.assertIn("refresh", result.stdout)

    def test_workload_mismatch_fails_before_comparing(self):
        fresh = self.write("fresh.json",
                           report(workload={"nodes": 160, "seeds": 1,
                                            "measure_s": 2}))
        base = self.write("base.json", report())
        result = self.run_gate(fresh, base)
        self.assertEqual(result.returncode, 1, result.stdout + result.stderr)
        self.assertIn("workload mismatch", result.stdout)

    def test_memory_growth_beyond_band_fails(self):
        fresh = self.write("fresh.json", report(mem_1000=48000.0 * 1.40))
        base = self.write("base.json", report())
        result = self.run_gate(fresh, base)  # +40% > default 25% budget
        self.assertEqual(result.returncode, 1, result.stdout + result.stderr)
        self.assertIn("bytes_per_node_1000 grew", result.stdout)

    def test_mem_tolerance_flag_widens_the_band(self):
        fresh = self.write("fresh.json", report(mem_1000=48000.0 * 1.40))
        base = self.write("base.json", report())
        result = self.run_gate(fresh, base, "--mem-tolerance", "0.50")
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)

    def test_marginal_bytes_gated_independently(self):
        fresh = self.write("fresh.json", report(marginal=32000.0 * 1.40))
        base = self.write("base.json", report())
        result = self.run_gate(fresh, base)
        self.assertEqual(result.returncode, 1, result.stdout + result.stderr)
        self.assertIn("marginal_bytes_per_node grew", result.stdout)

    def test_missing_mem_key_is_skipped_not_failed(self):
        # A baseline that predates the memory metrics must not fail the gate.
        fresh = self.write("fresh.json", report())
        base = self.write("base.json", report(mem_1000=None, marginal=None))
        result = self.run_gate(fresh, base)
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)
        self.assertIn("skipped", result.stdout)

    def test_fork_speedup_below_floor_fails(self):
        fresh = self.write("fresh.json",
                           report(fork_available=True, fork_speedup=1.4,
                                  seq_runs_per_sec=1.0,
                                  fork_runs_per_sec=1.4))
        base = self.write("base.json", report())
        result = self.run_gate(fresh, base)  # 1.4x < default 2.0x floor
        self.assertEqual(result.returncode, 1, result.stdout + result.stderr)
        self.assertIn("fork-sweep speedup", result.stdout)

    def test_fork_speedup_at_floor_passes_and_flag_raises_it(self):
        fresh = self.write("fresh.json",
                           report(fork_available=True, fork_speedup=2.3,
                                  seq_runs_per_sec=1.0,
                                  fork_runs_per_sec=2.3))
        base = self.write("base.json", report())
        self.assertEqual(self.run_gate(fresh, base).returncode, 0)
        raised = self.run_gate(fresh, base, "--min-fork-speedup", "3.0")
        self.assertEqual(raised.returncode, 1, raised.stdout + raised.stderr)

    def test_fork_speedup_skipped_without_fork_or_key(self):
        # Reports predating the metric, and platforms without fork(2),
        # skip the floor instead of failing.
        base = self.write("base.json", report())
        old = self.write("old.json", report())
        self.assertEqual(self.run_gate(old, base).returncode, 0)
        no_fork = self.write("no_fork.json",
                             report(fork_available=False, fork_speedup=0.0))
        result = self.run_gate(no_fork, base)
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)
        self.assertIn("skipped", result.stdout)

    def test_malformed_fresh_json_exits_nonzero(self):
        fresh = self.write("fresh.json", "{not json")
        base = self.write("base.json", report())
        result = self.run_gate(fresh, base)
        self.assertNotEqual(result.returncode, 0)

    def test_missing_baseline_file_exits_nonzero(self):
        fresh = self.write("fresh.json", report())
        result = self.run_gate(fresh, os.path.join(self.tmp.name, "absent.json"))
        self.assertNotEqual(result.returncode, 0)


if __name__ == "__main__":
    unittest.main()
