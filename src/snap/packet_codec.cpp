#include "src/snap/packet_codec.h"

namespace essat::snap {
namespace {

struct PayloadSaver {
  Serializer& out;

  void operator()(const std::monostate&) { out.u8(0); }
  void operator()(const net::DataHeader& h) {
    out.u8(1);
    out.i32(h.query);
    out.i64(h.epoch);
    out.i32(h.origin);
    out.u32(h.app_seq);
    out.i32(h.contributions);
    out.boolean(h.pass_through);
    out.boolean(h.phase_update.has_value());
    out.time(h.phase_update.value_or(util::Time::zero()));
  }
  void operator()(const net::SetupHeader& h) {
    out.u8(2);
    out.i32(h.root);
    out.i32(h.level);
    out.f64(h.cost);
  }
  void operator()(const net::JoinHeader&) { out.u8(3); }
  void operator()(const net::RankHeader& h) {
    out.u8(4);
    out.i32(h.rank);
  }
  void operator()(const net::AtimHeader& h) {
    out.u8(5);
    out.u64(h.destinations.size());
    for (net::NodeId d : h.destinations) out.i32(d);
  }
  void operator()(const net::PhaseRequestHeader& h) {
    out.u8(6);
    out.i32(h.query);
  }
  void operator()(const net::DisseminationHeader& h) {
    out.u8(7);
    out.i32(h.task);
    out.i64(h.epoch);
    out.i32(h.origin);
  }
};

}  // namespace

void save_packet(Serializer& out, const net::Packet& p) {
  out.u8(static_cast<std::uint8_t>(p.type));
  out.i32(p.link_src);
  out.i32(p.link_dst);
  out.i32(p.size_bytes);
  out.u32(p.mac_seq);
  out.u64(p.channel_tx_id);
  out.u64(p.prov);
  std::visit(PayloadSaver{out}, p.payload);
}

}  // namespace essat::snap
