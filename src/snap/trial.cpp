#include "src/snap/trial.h"

#include <cstddef>
#include <string>
#include <utility>

#include "src/snap/config_codec.h"
#include "src/snap/hook.h"
#include "src/snap/serializer.h"

namespace essat::snap {
namespace {

// Where the re-serialized state first diverges from the snapshot — the one
// number that turns "attestation failed" into a debuggable report (section
// tags are plain text in the stream, so the offset locates the component).
std::size_t first_divergence(const std::vector<std::uint8_t>& a,
                             const std::vector<std::uint8_t>& b) {
  const std::size_t n = a.size() < b.size() ? a.size() : b.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i] != b[i]) return i;
  }
  return n;
}

}  // namespace

util::Time capture_barrier(const harness::ScenarioConfig& config) {
  return config.setup_duration - util::Time::nanoseconds(1);
}

TrialCapture capture_trial(const harness::ScenarioConfig& config) {
  return capture_trial(config, capture_barrier(config));
}

TrialCapture capture_trial(const harness::ScenarioConfig& config,
                           util::Time barrier) {
  TrialCapture result;
  TrialHookSpec spec;
  spec.enabled = true;
  spec.at = barrier;
  spec.hook = [&result, barrier](TrialCheckpoint& cp) {
    Serializer out;
    out.begin("TRIL");
    save_scenario_config(out, cp.config);
    out.time(barrier);
    const std::vector<std::uint8_t> state = cp.serialize();
    out.bytes(state.data(), state.size());  // "TRST": self-framing
    out.end();
    result.snapshot.kind = SnapshotKind::kTrial;
    result.snapshot.payload = out.take();
  };
  result.metrics = harness::run_scenario(config, spec);
  return result;
}

TrialImage decode_trial(const Snapshot& snapshot) {
  if (snapshot.kind != SnapshotKind::kTrial) {
    throw SnapError{"decode_trial: snapshot kind is not kTrial"};
  }
  Deserializer in{snapshot.payload};
  in.enter("TRIL");
  TrialImage image;
  image.config = load_scenario_config(in);
  image.barrier = in.time();
  const std::size_t state_at = in.offset();
  const std::size_t state_len = in.remaining();
  image.state.assign(snapshot.payload.data() + state_at,
                     snapshot.payload.data() + state_at + state_len);
  in.skip();  // the "TRST" section just copied out
  in.finish();

  // Strip export side effects; keep the event-affecting trace fields.
  image.config.trace.perfetto_path.clear();
  image.config.trace.jsonl_path.clear();
  image.config.trace.sink = nullptr;
  return image;
}

harness::RunMetrics resume_trial(const TrialImage& image) {
  TrialHookSpec spec;
  spec.enabled = true;
  spec.at = image.barrier;
  spec.hook = [&image](TrialCheckpoint& cp) {
    const std::vector<std::uint8_t> replayed = cp.serialize();
    if (replayed != image.state) {
      throw SnapError{
          "resume attestation failed: replayed state diverges from the "
          "snapshot at byte " +
          std::to_string(first_divergence(replayed, image.state)) + " of " +
          std::to_string(image.state.size()) + " (replayed " +
          std::to_string(replayed.size()) +
          " bytes); the snapshot was taken by a different build or the "
          "replay is nondeterministic"};
    }
  };
  return harness::run_scenario(image.config, spec);
}

harness::RunMetrics resume_trial(const Snapshot& snapshot) {
  return resume_trial(decode_trial(snapshot));
}

}  // namespace essat::snap
