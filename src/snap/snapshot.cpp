#include "src/snap/snapshot.h"

#include <cstring>

namespace essat::snap {
namespace {

constexpr char kMagic[9] = "ESSATSNP";  // 8 payload bytes + NUL

}  // namespace

const char* snapshot_kind_name(SnapshotKind kind) {
  switch (kind) {
    case SnapshotKind::kTrial:
      return "trial";
    case SnapshotKind::kMetrics:
      return "metrics";
    case SnapshotKind::kLedger:
      return "ledger";
  }
  return "unknown";
}

std::vector<std::uint8_t> Snapshot::to_bytes() const {
  Serializer out;
  out.bytes(kMagic, 8);
  out.u32(version);
  out.u32(static_cast<std::uint32_t>(kind));
  out.u64(payload.size());
  out.bytes(payload.data(), payload.size());
  out.u32(crc32(payload.data(), payload.size()));
  return out.take();
}

Snapshot Snapshot::from_bytes(const std::uint8_t* data, std::size_t size) {
  Deserializer in{data, size};
  char magic[8];
  in.bytes(magic, 8);
  if (std::memcmp(magic, kMagic, 8) != 0) {
    throw SnapError{"not a snapshot: bad magic"};
  }
  Snapshot snap;
  snap.version = in.u32();
  if (snap.version != kFormatVersion) {
    throw SnapError{"snapshot format version " + std::to_string(snap.version) +
                    " != supported " + std::to_string(kFormatVersion) +
                    " (no migrations; re-run the prefix)"};
  }
  const std::uint32_t kind = in.u32();
  if (kind < 1 || kind > 3) {
    throw SnapError{"unknown snapshot kind " + std::to_string(kind)};
  }
  snap.kind = static_cast<SnapshotKind>(kind);
  const std::uint64_t len = in.u64();
  if (in.remaining() < len + 4) {
    throw SnapError{"snapshot truncated: payload overruns file"};
  }
  snap.payload.resize(static_cast<std::size_t>(len));
  in.bytes(snap.payload.data(), snap.payload.size());
  const std::uint32_t stored = in.u32();
  const std::uint32_t computed = crc32(snap.payload.data(), snap.payload.size());
  if (stored != computed) {
    throw SnapError{"snapshot payload CRC mismatch (torn or corrupted write)"};
  }
  if (!in.at_end()) {
    throw SnapError{"trailing bytes after snapshot"};
  }
  return snap;
}

}  // namespace essat::snap
