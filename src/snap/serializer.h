// Deterministic binary (de)serialization for simulator snapshots.
//
// The byte stream is a pure function of the written values: fixed-width
// little-endian integers, IEEE-754 doubles by bit pattern, length-prefixed
// strings, and 4-byte-tagged length-prefixed sections. No pointers, no
// padding, no host-order dependence — two runs that write the same logical
// state produce identical bytes, which is what lets the restore path verify
// a replayed simulator against a snapshot byte-for-byte (and the sweep
// checkpoints diff restored-vs-straight-run RunMetrics the same way).
//
// Sections nest: begin(tag) writes the tag and a length placeholder that
// end() patches, so a reader can skip or enumerate sections it does not
// understand (the replay tool's --dump does exactly that). Errors on the
// read side (overrun, tag mismatch, bad magic) throw snap::SnapError; the
// write side never fails.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/util/time.h"

namespace essat::snap {

class SnapError : public std::runtime_error {
 public:
  explicit SnapError(const std::string& what) : std::runtime_error(what) {}
};

// CRC-32 (IEEE 802.3 polynomial, reflected). Used by the snapshot container
// and the sweep ledger to detect torn or corrupted payloads.
std::uint32_t crc32(const std::uint8_t* data, std::size_t size,
                    std::uint32_t seed = 0);

class Serializer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  // IEEE-754 bit pattern: round-trips NaNs and signed zeros exactly.
  void f64(double v);
  void boolean(bool v) { u8(v ? 1 : 0); }
  void time(util::Time t) { i64(t.ns()); }
  void str(const std::string& s);
  void bytes(const void* data, std::size_t size);

  // Opens a section: 4-byte tag + u64 length patched by end(). Sections
  // nest; every begin() must be matched before the buffer is consumed.
  void begin(const char (&tag)[5]);
  void end();

  const std::vector<std::uint8_t>& data() const { return buf_; }
  std::vector<std::uint8_t> take();

 private:
  std::vector<std::uint8_t> buf_;
  std::vector<std::size_t> open_;  // offsets of unpatched length fields
};

class Deserializer {
 public:
  // Non-owning view; the buffer must outlive the Deserializer.
  Deserializer(const std::uint8_t* data, std::size_t size)
      : data_{data}, size_{size} {}
  explicit Deserializer(const std::vector<std::uint8_t>& buf)
      : Deserializer(buf.data(), buf.size()) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64();
  bool boolean() { return u8() != 0; }
  // Not libc time(): reads a sim::Time encoded by Serializer::time.
  util::Time time() {  // essat-lint: allow(no-wallclock)
    return util::Time::nanoseconds(i64());
  }
  std::string str();
  void bytes(void* out, std::size_t size);

  // Enters a section, checking its tag; finish() checks the section was
  // consumed exactly. next_tag() peeks without consuming (empty string at
  // end of the enclosing scope); skip() jumps over one whole section.
  void enter(const char (&tag)[5]);
  void finish();
  std::string next_tag() const;
  void skip();

  std::size_t offset() const { return at_; }
  std::size_t remaining() const {
    return (ends_.empty() ? size_ : ends_.back()) - at_;
  }
  bool at_end() const { return remaining() == 0; }

 private:
  const std::uint8_t* need_(std::size_t n);

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t at_ = 0;
  std::vector<std::size_t> ends_;  // end offsets of entered sections
};

}  // namespace essat::snap
