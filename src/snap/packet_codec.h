// Packet serialization for component save_state hooks (MAC queues, channel
// receptions in flight at the snapshot barrier). Save-only: restore replays
// the scenario, so packets are rebuilt by the protocols themselves and these
// bytes exist to attest the replayed state.
#pragma once

#include "src/net/packet.h"
#include "src/snap/serializer.h"

namespace essat::snap {

void save_packet(Serializer& out, const net::Packet& p);

}  // namespace essat::snap
