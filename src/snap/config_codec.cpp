#include "src/snap/config_codec.h"

#include "src/harness/scenario.h"
#include "src/snap/serializer.h"

namespace essat::snap {
namespace {

void save_workload(Serializer& out, const harness::WorkloadSpec& w) {
  out.f64(w.base_rate_hz);
  out.i32(w.queries_per_class);
  out.time(w.query_start_window);
  out.u64(w.extra_queries.size());
  for (const query::Query& q : w.extra_queries) {
    out.i32(q.id);
    out.time(q.period);
    out.time(q.phase);
    out.i32(q.query_class);
  }
}

harness::WorkloadSpec load_workload(Deserializer& in) {
  harness::WorkloadSpec w;
  w.base_rate_hz = in.f64();
  w.queries_per_class = in.i32();
  w.query_start_window = in.time();
  const std::uint64_t n = in.u64();
  w.extra_queries.resize(static_cast<std::size_t>(n));
  for (query::Query& q : w.extra_queries) {
    q.id = in.i32();
    q.period = in.time();
    q.phase = in.time();
    q.query_class = in.i32();
  }
  return w;
}

void save_deployment(Serializer& out, const net::DeploymentSpec& d) {
  out.u8(static_cast<std::uint8_t>(d.kind));
  out.i32(d.num_nodes);
  out.f64(d.area_m);
  out.f64(d.range_m);
  out.f64(d.max_tree_dist_m);
  out.i32(d.clusters);
  out.f64(d.cluster_sigma_m);
  out.f64(d.corridor_width_m);
}

net::DeploymentSpec load_deployment(Deserializer& in) {
  net::DeploymentSpec d;
  d.kind = static_cast<net::TopologyKind>(in.u8());
  d.num_nodes = in.i32();
  d.area_m = in.f64();
  d.range_m = in.f64();
  d.max_tree_dist_m = in.f64();
  d.clusters = in.i32();
  d.cluster_sigma_m = in.f64();
  d.corridor_width_m = in.f64();
  return d;
}

void save_channel_model(Serializer& out, const net::ChannelModelSpec& m) {
  out.u8(static_cast<std::uint8_t>(m.kind));
  out.f64(m.prr_scale);
  out.f64(m.shadowing.path_loss_exponent);
  out.f64(m.shadowing.shadowing_sigma_db);
  out.f64(m.shadowing.gray_zone_width_db);
  out.f64(m.shadowing.range_margin_db);
  out.f64(m.gilbert.p_good_to_bad);
  out.f64(m.gilbert.p_bad_to_good);
  out.f64(m.gilbert.prr_good);
  out.f64(m.gilbert.prr_bad);
  out.u8(static_cast<std::uint8_t>(m.gilbert_base));
  out.u64(m.prr_trace.size());
  for (const net::PrrTraceEntry& e : m.prr_trace) {
    out.i32(e.src);
    out.i32(e.dst);
    out.f64(e.prr);
  }
  out.f64(m.prr_trace_default);
}

net::ChannelModelSpec load_channel_model(Deserializer& in) {
  net::ChannelModelSpec m;
  m.kind = static_cast<net::LinkModelKind>(in.u8());
  m.prr_scale = in.f64();
  m.shadowing.path_loss_exponent = in.f64();
  m.shadowing.shadowing_sigma_db = in.f64();
  m.shadowing.gray_zone_width_db = in.f64();
  m.shadowing.range_margin_db = in.f64();
  m.gilbert.p_good_to_bad = in.f64();
  m.gilbert.p_bad_to_good = in.f64();
  m.gilbert.prr_good = in.f64();
  m.gilbert.prr_bad = in.f64();
  m.gilbert_base = static_cast<net::LinkModelKind>(in.u8());
  m.prr_trace.resize(static_cast<std::size_t>(in.u64()));
  for (net::PrrTraceEntry& e : m.prr_trace) {
    e.src = in.i32();
    e.dst = in.i32();
    e.prr = in.f64();
  }
  m.prr_trace_default = in.f64();
  return m;
}

void save_channel_params(Serializer& out, const net::ChannelParams& p) {
  out.time(p.propagation_delay);
  out.f64(p.capture_distance_ratio);
  out.boolean(p.batch_arrivals);
  out.u64(p.dense_link_stats_below);
  out.boolean(p.sinr.enabled);
  out.f64(p.sinr.tx_power_dbm);
  out.f64(p.sinr.path_loss_exponent);
  out.f64(p.sinr.reference_loss_db);
  out.f64(p.sinr.noise_dbm);
  out.f64(p.sinr.capture_threshold_db);
  out.f64(p.sinr.min_snr_db);
}

net::ChannelParams load_channel_params(Deserializer& in) {
  net::ChannelParams p;
  p.propagation_delay = in.time();
  p.capture_distance_ratio = in.f64();
  p.batch_arrivals = in.boolean();
  p.dense_link_stats_below = static_cast<std::size_t>(in.u64());
  p.sinr.enabled = in.boolean();
  p.sinr.tx_power_dbm = in.f64();
  p.sinr.path_loss_exponent = in.f64();
  p.sinr.reference_loss_db = in.f64();
  p.sinr.noise_dbm = in.f64();
  p.sinr.capture_threshold_db = in.f64();
  p.sinr.min_snr_db = in.f64();
  return p;
}

void save_faults(Serializer& out, const fault::FaultSpec& f) {
  out.u64(f.churn.scheduled.size());
  for (const fault::ChurnEvent& ev : f.churn.scheduled) {
    out.i32(ev.node);
    out.time(ev.at);
    out.time(ev.down_for);
  }
  out.f64(f.churn.node_fraction);
  out.f64(f.churn.mean_downtime_s);
  out.boolean(f.churn.restart);
  out.f64(f.battery.budget_mj);
  out.f64(f.battery.jitter_frac);
  out.time(f.battery.check_period);
  out.f64(f.drift.skew_sigma_ppm);
  out.f64(f.drift.max_offset_ms);
}

fault::FaultSpec load_faults(Deserializer& in) {
  fault::FaultSpec f;
  f.churn.scheduled.resize(static_cast<std::size_t>(in.u64()));
  for (fault::ChurnEvent& ev : f.churn.scheduled) {
    ev.node = in.i32();
    ev.at = in.time();
    ev.down_for = in.time();
  }
  f.churn.node_fraction = in.f64();
  f.churn.mean_downtime_s = in.f64();
  f.churn.restart = in.boolean();
  f.battery.budget_mj = in.f64();
  f.battery.jitter_frac = in.f64();
  f.battery.check_period = in.time();
  f.drift.skew_sigma_ppm = in.f64();
  f.drift.max_offset_ms = in.f64();
  return f;
}

void save_mobility(Serializer& out, const net::MobilitySpec& m) {
  out.u8(static_cast<std::uint8_t>(m.kind));
  out.f64(m.waypoint.speed_min_mps);
  out.f64(m.waypoint.speed_max_mps);
  out.f64(m.waypoint.pause_s);
  out.f64(m.epoch_s);
  out.u64(m.traces.size());
  for (const net::WaypointTrace& t : m.traces) {
    out.i32(t.node);
    out.u64(t.points.size());
    for (const auto& [when, pos] : t.points) {
      out.time(when);
      out.f64(pos.x);
      out.f64(pos.y);
    }
  }
}

net::MobilitySpec load_mobility(Deserializer& in) {
  net::MobilitySpec m;
  m.kind = static_cast<net::MobilityKind>(in.u8());
  m.waypoint.speed_min_mps = in.f64();
  m.waypoint.speed_max_mps = in.f64();
  m.waypoint.pause_s = in.f64();
  m.epoch_s = in.f64();
  m.traces.resize(static_cast<std::size_t>(in.u64()));
  for (net::WaypointTrace& t : m.traces) {
    t.node = in.i32();
    t.points.resize(static_cast<std::size_t>(in.u64()));
    for (auto& [when, pos] : t.points) {
      when = in.time();
      pos.x = in.f64();
      pos.y = in.f64();
    }
  }
  return m;
}

void save_routing(Serializer& out, const routing::RoutingSpec& r) {
  out.str(r.policy);
  out.f64(r.etx.prior_weight);
  out.f64(r.etx.min_prr);
  out.f64(r.etx.max_link_etx);
}

routing::RoutingSpec load_routing(Deserializer& in) {
  routing::RoutingSpec r;
  r.policy = in.str();
  r.etx.prior_weight = in.f64();
  r.etx.min_prr = in.f64();
  r.etx.max_link_etx = in.f64();
  return r;
}

void save_mac_params(Serializer& out, const mac::MacParams& p) {
  out.time(p.slot);
  out.time(p.difs);
  out.time(p.sifs);
  out.time(p.phy_overhead);
  out.f64(p.bandwidth_bps);
  out.i32(p.cw_min);
  out.i32(p.cw_max);
  out.i32(p.initial_data_cw);
  out.i32(p.max_attempts);
  out.time(p.ack_timeout_slack);
  out.u64(p.dense_dup_table_below);
}

mac::MacParams load_mac_params(Deserializer& in) {
  mac::MacParams p;
  p.slot = in.time();
  p.difs = in.time();
  p.sifs = in.time();
  p.phy_overhead = in.time();
  p.bandwidth_bps = in.f64();
  p.cw_min = in.i32();
  p.cw_max = in.i32();
  p.initial_data_cw = in.i32();
  p.max_attempts = in.i32();
  p.ack_timeout_slack = in.time();
  p.dense_dup_table_below = static_cast<std::size_t>(in.u64());
  return p;
}

// Everything except TraceSpec::sink, which is a process-local callback and
// is left default-constructed on load.
void save_trace(Serializer& out, const obs::TraceSpec& t) {
  out.boolean(t.enabled);
  out.u64(t.buffer_cap);
  out.u64(t.type_mask);
  out.u64(t.nodes.size());
  for (std::int32_t n : t.nodes) out.i32(n);
  out.time(t.begin);
  out.time(t.end);
  out.time(t.sample_period);
  out.u64(t.series_cap);
  out.boolean(t.only_seed.has_value());
  out.u64(t.only_seed.value_or(0));
  out.str(t.perfetto_path);
  out.str(t.jsonl_path);
}

obs::TraceSpec load_trace(Deserializer& in) {
  obs::TraceSpec t;
  t.enabled = in.boolean();
  t.buffer_cap = static_cast<std::size_t>(in.u64());
  t.type_mask = in.u64();
  t.nodes.resize(static_cast<std::size_t>(in.u64()));
  for (std::int32_t& n : t.nodes) n = in.i32();
  t.begin = in.time();
  t.end = in.time();
  t.sample_period = in.time();
  t.series_cap = static_cast<std::size_t>(in.u64());
  const bool has_only_seed = in.boolean();
  const std::uint64_t only_seed = in.u64();
  if (has_only_seed) t.only_seed = only_seed;
  t.perfetto_path = in.str();
  t.jsonl_path = in.str();
  return t;
}

}  // namespace

void save_scenario_config(Serializer& out, const harness::ScenarioConfig& c) {
  out.begin("SCFG");
  out.str(c.protocol.name);
  save_deployment(out, c.deployment);
  save_workload(out, c.workload);
  save_channel_model(out, c.channel_model);
  save_channel_params(out, c.channel_params);
  save_mobility(out, c.mobility);
  save_routing(out, c.routing);
  out.time(c.setup_duration);
  out.time(c.measure_duration);
  out.time(c.latency_grace);
  out.time(c.t_be);
  out.boolean(c.sts_deadline.has_value());
  out.time(c.sts_deadline.value_or(util::Time::zero()));
  out.time(c.dts_t_to);
  out.time(c.t_comp);
  save_mac_params(out, c.mac_params);
  out.boolean(c.use_distributed_setup);
  out.boolean(c.enable_maintenance);
  out.u64(c.failures.size());
  for (const auto& [node, when] : c.failures) {
    out.i32(node);
    out.time(when);
  }
  save_trace(out, c.trace);
  save_faults(out, c.faults);
  out.u64(c.seed);
  out.end();
}

harness::ScenarioConfig load_scenario_config(Deserializer& in) {
  in.enter("SCFG");
  harness::ScenarioConfig c;
  c.protocol = harness::ProtocolKey{in.str()};
  c.deployment = load_deployment(in);
  c.workload = load_workload(in);
  c.channel_model = load_channel_model(in);
  c.channel_params = load_channel_params(in);
  c.mobility = load_mobility(in);
  c.routing = load_routing(in);
  c.setup_duration = in.time();
  c.measure_duration = in.time();
  c.latency_grace = in.time();
  c.t_be = in.time();
  const bool has_deadline = in.boolean();
  const util::Time deadline = in.time();
  if (has_deadline) c.sts_deadline = deadline;
  c.dts_t_to = in.time();
  c.t_comp = in.time();
  c.mac_params = load_mac_params(in);
  c.use_distributed_setup = in.boolean();
  c.enable_maintenance = in.boolean();
  c.failures.resize(static_cast<std::size_t>(in.u64()));
  for (auto& [node, when] : c.failures) {
    node = in.i32();
    when = in.time();
  }
  c.trace = load_trace(in);
  c.faults = load_faults(in);
  c.seed = in.u64();
  in.finish();
  return c;
}

std::vector<std::uint8_t> scenario_config_to_bytes(
    const harness::ScenarioConfig& config) {
  Serializer out;
  save_scenario_config(out, config);
  return out.take();
}

harness::ScenarioConfig scenario_config_from_bytes(const std::uint8_t* data,
                                                   std::size_t size) {
  Deserializer in(data, size);
  return load_scenario_config(in);
}

}  // namespace essat::snap
