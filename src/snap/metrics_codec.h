// Binary codec for harness::RunMetrics.
//
// Used in three places that all need the same bit-exact bytes: the fork
// sweep (children ship finished metrics to the parent over a pipe), the
// sweep checkpoint ledger (completed trials are replayed into the
// aggregator on resume), and the restored-vs-straight-run conformance
// tests (two RunMetrics are equal iff their encodings are equal).
#pragma once

#include <cstdint>
#include <vector>

#include "src/harness/metrics.h"
#include "src/snap/serializer.h"

namespace essat::snap {

void save_run_metrics(Serializer& out, const harness::RunMetrics& m);
harness::RunMetrics load_run_metrics(Deserializer& in);

std::vector<std::uint8_t> run_metrics_to_bytes(const harness::RunMetrics& m);
harness::RunMetrics run_metrics_from_bytes(const std::vector<std::uint8_t>& b);

}  // namespace essat::snap
