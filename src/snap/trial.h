// Whole-trial snapshot capture and restore.
//
// A trial snapshot is a kTrial Snapshot whose payload is one "TRIL"
// section: the scenario config ("SCFG"), the barrier time the event loop
// was paused at, and the serialized state of every live component
// ("TRST"). Restore is deterministic replay plus byte attestation: the
// trial is rebuilt from the config and run to the barrier (the identical
// event stream — the hook pauses between two run_until calls, injecting
// nothing), every component is re-serialized and byte-compared against the
// snapshot, and only then does the run continue. A restored run therefore
// produces RunMetrics bit-identical to the straight run's, and any drift —
// version skew, nondeterminism, corruption — is caught at the barrier
// instead of surfacing as silently wrong results.
#pragma once

#include <cstdint>
#include <vector>

#include "src/harness/metrics.h"
#include "src/harness/scenario.h"
#include "src/snap/snapshot.h"
#include "src/util/time.h"

namespace essat::snap {

// The canonical capture point: 1 ns before the setup slot ends, i.e. after
// the shared scenario prefix (placement, tree construction, per-node stack
// allocation, setup traffic) and before the workload is materialized —
// which is what lets forked sweep variants diverge from one capture.
util::Time capture_barrier(const harness::ScenarioConfig& config);

struct TrialCapture {
  Snapshot snapshot;            // kTrial, resumable via resume_trial
  harness::RunMetrics metrics;  // the capturing run, continued to the end
};

// Runs the scenario, snapshotting at `barrier` (default: capture_barrier)
// and continuing to completion. The hooked run executes the exact event
// stream of a plain run_scenario call, so `metrics` is bit-identical to an
// uncaptured run's.
TrialCapture capture_trial(const harness::ScenarioConfig& config);
TrialCapture capture_trial(const harness::ScenarioConfig& config,
                           util::Time barrier);

// A decoded trial snapshot. Export side effects are stripped from the
// config (trace perfetto/jsonl paths; the sink never survives encoding) so
// a resume is pure computation; the event-affecting trace fields (enabled,
// filters, sample_period) are kept, so a traced capture replays its exact
// stream. tools/replay re-points the export paths before resuming.
struct TrialImage {
  harness::ScenarioConfig config;
  util::Time barrier;
  std::vector<std::uint8_t> state;  // the "TRST" section, verbatim
};

// Throws SnapError on malformed payloads or a non-kTrial snapshot.
TrialImage decode_trial(const Snapshot& snapshot);

// Replays `image.config` to the barrier, attests the rebuilt component
// state byte-for-byte against `image.state` (throws SnapError at the first
// divergence), then runs to completion and returns the metrics.
harness::RunMetrics resume_trial(const TrialImage& image);
harness::RunMetrics resume_trial(const Snapshot& snapshot);

}  // namespace essat::snap
