#include "src/snap/snapshot_io.h"

#include <cstdio>
#include <fstream>

namespace essat::snap {

std::vector<std::uint8_t> read_file_bytes(const std::string& path) {
  std::ifstream in{path, std::ios::binary | std::ios::ate};
  if (!in) throw SnapError{"cannot open for read: " + path};
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  if (size > 0 &&
      !in.read(reinterpret_cast<char*>(bytes.data()), size)) {
    throw SnapError{"short read: " + path};
  }
  return bytes;
}

void write_file_bytes(const std::string& path,
                      const std::vector<std::uint8_t>& bytes) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out{tmp, std::ios::binary | std::ios::trunc};
    if (!out) throw SnapError{"cannot open for write: " + tmp};
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    if (!out) throw SnapError{"short write: " + tmp};
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw SnapError{"rename failed: " + tmp + " -> " + path};
  }
}

Snapshot read_snapshot_file(const std::string& path) {
  const std::vector<std::uint8_t> bytes = read_file_bytes(path);
  try {
    return Snapshot::from_bytes(bytes);
  } catch (const SnapError& e) {
    throw SnapError{path + ": " + e.what()};
  }
}

void write_snapshot_file(const std::string& path, const Snapshot& snap) {
  write_file_bytes(path, snap.to_bytes());
}

bool file_exists(const std::string& path) {
  return std::ifstream{path}.good();
}

void remove_file(const std::string& path) {
  std::remove(path.c_str());
}

}  // namespace essat::snap
