// Binary codec for harness::ScenarioConfig — the "recipe" half of a trial
// snapshot (the other half is the replayed component state, see trial.h).
//
// Every field that influences the simulation is encoded, in declaration
// order, inside one "SCFG" section. The sole exclusion is
// TraceSpec::sink, a process-local std::function; a restored config
// therefore reproduces the exact event stream but not in-process trace
// consumers. The encoding is versioned by snap::kFormatVersion: any
// change to this codec is a format bump, and old snapshots are simply
// re-captured (they are caches of deterministic computations, never the
// only copy of anything).
#pragma once

#include <cstdint>
#include <vector>

namespace essat::harness {
struct ScenarioConfig;
}  // namespace essat::harness

namespace essat::snap {

class Serializer;
class Deserializer;

// Writes `config` as one "SCFG" section.
void save_scenario_config(Serializer& out, const harness::ScenarioConfig& config);

// Reads one "SCFG" section. Throws SnapError on tag/length mismatch.
harness::ScenarioConfig load_scenario_config(Deserializer& in);

// Convenience wrappers for fingerprinting and ledger records.
std::vector<std::uint8_t> scenario_config_to_bytes(
    const harness::ScenarioConfig& config);
harness::ScenarioConfig scenario_config_from_bytes(const std::uint8_t* data,
                                                   std::size_t size);

}  // namespace essat::snap
