// Timer serialization helper shared by component save_state hooks.
//
// A sim::Timer's callback is code (rebuilt by replay); its observable state
// is whether it is armed and when it fires. The fire time is normalized to
// zero when disarmed so stale fire_time_ residue can never leak into the
// attestation bytes.
#pragma once

#include "src/sim/timer.h"
#include "src/snap/serializer.h"

namespace essat::snap {

inline void save_timer(Serializer& out, const sim::Timer& t) {
  out.boolean(t.armed());
  out.time(t.armed() ? t.fire_time() : util::Time::zero());
}

}  // namespace essat::snap
