// File I/O for snapshots — the ONLY snap translation unit that touches the
// host filesystem. Keeping every open/rename/remove here (and allowlisting
// exactly this TU in essat-tidy's host-environment checks) pins the rest of
// the snap layer, which runs inside trials, to the simulator's virtual
// world: a fixture test asserts that sim-side snap code stays banned from
// host time.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/snap/snapshot.h"

namespace essat::snap {

// Reads a whole file. Throws SnapError if the file cannot be opened or read.
std::vector<std::uint8_t> read_file_bytes(const std::string& path);

// Writes a whole file, replacing any existing content, via a same-directory
// temporary + rename so readers never observe a half-written snapshot.
// Throws SnapError on any I/O failure.
void write_file_bytes(const std::string& path,
                      const std::vector<std::uint8_t>& bytes);

// Framed-snapshot convenience wrappers over the above.
Snapshot read_snapshot_file(const std::string& path);
void write_snapshot_file(const std::string& path, const Snapshot& snap);

bool file_exists(const std::string& path);
void remove_file(const std::string& path);  // ignores missing files

}  // namespace essat::snap
