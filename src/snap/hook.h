// Mid-run checkpoint hook for harness::run_scenario.
//
// The hook fires at a chosen sim time with the event loop paused between
// two run_until() calls — no event is injected, so a hooked run executes
// the exact event stream of an unhooked one (including the bookkeeping
// counters: sim_events, peak_pending_events). At the pause the hook may
//   * serialize the whole trial (snapshot capture / restore attestation),
//   * mutate the config fields that are not yet materialized — the
//     workload is drawn lazily at the setup boundary precisely so a forked
//     sweep child can change base_rate_hz / queries_per_class /
//     extra_queries here (query_start_window is already baked into the
//     measurement schedule and must stay fixed),
//   * set `stop` to abandon the run (the fork-sweep parent does this after
//     spawning its children; run_scenario then returns a default
//     RunMetrics the caller discards).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "src/util/time.h"

namespace essat::harness {
struct ScenarioConfig;
}  // namespace essat::harness

namespace essat::sim {
class Simulator;
}  // namespace essat::sim

namespace essat::snap {

struct TrialCheckpoint {
  sim::Simulator& sim;
  // The run's private config copy. Mutations to lazily-materialized fields
  // (see above) take effect; everything else has already been consumed.
  harness::ScenarioConfig& config;
  // Serializes every live component into a "TRST" section (the byte layout
  // the capture and attestation paths diff). Pure reads; callable any
  // number of times, always producing identical bytes at a given sim time.
  std::function<std::vector<std::uint8_t>()> serialize;
  // Set true to abandon the run after the hook returns.
  bool stop = false;
};

struct TrialHookSpec {
  bool enabled = false;
  // Pause time: the event loop runs to here (inclusive) before the hook.
  util::Time at;
  std::function<void(TrialCheckpoint&)> hook;
};

}  // namespace essat::snap
