#include "src/snap/serializer.h"

#include <cstring>

namespace essat::snap {
namespace {

struct CrcTable {
  std::uint32_t v[256];
  CrcTable() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      v[i] = c;
    }
  }
};

}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t size,
                    std::uint32_t seed) {
  static const CrcTable table;
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    c = table.v[(c ^ data[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void Serializer::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void Serializer::u32(std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    buf_.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void Serializer::u64(std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    buf_.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void Serializer::f64(double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v), "double is 64-bit");
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void Serializer::str(const std::string& s) {
  u64(s.size());
  bytes(s.data(), s.size());
}

void Serializer::bytes(const void* data, std::size_t size) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  buf_.insert(buf_.end(), p, p + size);
}

void Serializer::begin(const char (&tag)[5]) {
  bytes(tag, 4);
  open_.push_back(buf_.size());
  u64(0);  // placeholder patched by end()
}

void Serializer::end() {
  if (open_.empty()) throw SnapError{"Serializer::end: no open section"};
  const std::size_t at = open_.back();
  open_.pop_back();
  const std::uint64_t len = buf_.size() - (at + 8);
  for (int i = 0; i < 8; ++i) {
    buf_[at + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(len >> (8 * i));
  }
}

std::vector<std::uint8_t> Serializer::take() {
  if (!open_.empty()) throw SnapError{"Serializer::take: unclosed section"};
  return std::move(buf_);
}

const std::uint8_t* Deserializer::need_(std::size_t n) {
  if (remaining() < n) {
    throw SnapError{"snapshot truncated: need " + std::to_string(n) +
                    " bytes at offset " + std::to_string(at_)};
  }
  const std::uint8_t* p = data_ + at_;
  at_ += n;
  return p;
}

std::uint8_t Deserializer::u8() { return *need_(1); }

std::uint16_t Deserializer::u16() {
  const std::uint8_t* p = need_(2);
  return static_cast<std::uint16_t>(p[0] | p[1] << 8);
}

std::uint32_t Deserializer::u32() {
  const std::uint8_t* p = need_(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t Deserializer::u64() {
  const std::uint8_t* p = need_(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

double Deserializer::f64() {
  const std::uint64_t bits = u64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string Deserializer::str() {
  const std::uint64_t n = u64();
  if (remaining() < n) throw SnapError{"snapshot truncated: string overruns"};
  const std::uint8_t* p = need_(static_cast<std::size_t>(n));
  return std::string(reinterpret_cast<const char*>(p),
                     static_cast<std::size_t>(n));
}

void Deserializer::bytes(void* out, std::size_t size) {
  std::memcpy(out, need_(size), size);
}

void Deserializer::enter(const char (&tag)[5]) {
  char got[5] = {};
  bytes(got, 4);
  if (std::memcmp(got, tag, 4) != 0) {
    throw SnapError{std::string{"section tag mismatch: expected '"} + tag +
                    "', found '" + got + "'"};
  }
  const std::uint64_t len = u64();
  if (remaining() < len) throw SnapError{"section overruns its container"};
  ends_.push_back(at_ + static_cast<std::size_t>(len));
}

void Deserializer::finish() {
  if (ends_.empty()) throw SnapError{"Deserializer::finish: no open section"};
  if (at_ != ends_.back()) {
    throw SnapError{"section not fully consumed: " +
                    std::to_string(ends_.back() - at_) + " bytes left"};
  }
  ends_.pop_back();
}

std::string Deserializer::next_tag() const {
  if (remaining() < 12) return {};
  return std::string(reinterpret_cast<const char*>(data_ + at_), 4);
}

void Deserializer::skip() {
  char tag[5] = {};
  bytes(tag, 4);
  const std::uint64_t len = u64();
  if (remaining() < len) throw SnapError{"section overruns its container"};
  at_ += static_cast<std::size_t>(len);
}

}  // namespace essat::snap
