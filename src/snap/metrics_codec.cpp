#include "src/snap/metrics_codec.h"

namespace essat::snap {

void save_run_metrics(Serializer& out, const harness::RunMetrics& m) {
  out.begin("RMET");
  out.f64(m.avg_duty_cycle);
  out.u64(m.duty_by_rank.size());
  for (double d : m.duty_by_rank) out.f64(d);

  out.f64(m.avg_latency_s);
  out.f64(m.p95_latency_s);
  out.f64(m.max_latency_s);
  out.f64(m.delivery_ratio);
  out.u64(m.epochs_measured);

  m.sleep_hist.save_state(out);
  out.f64(m.frac_sleep_below_2_5ms);
  out.u64(m.sleep_intervals);

  out.f64(m.phase_update_bits_per_report);
  out.u64(m.phase_updates);

  out.u64(m.per_node.size());
  for (const auto& d : m.per_node) {
    out.i32(d.id);
    out.i32(d.rank);
    out.i32(d.level);
    out.boolean(d.leaf);
    out.f64(d.duty_cycle);
    out.u64(d.reports_sent);
    out.u64(d.send_failures);
    out.u64(d.pass_through);
    out.u64(d.child_timeouts);
    out.u64(d.retx_no_ack);
    out.u64(d.cca_busy_defers);
    out.u64(d.repair_attempts);
  }

  out.u64(m.reports_sent);
  out.u64(m.mac_transmissions);
  out.u64(m.mac_send_failures);
  out.u64(m.mac_retx_no_ack);
  out.u64(m.mac_cca_busy_defers);
  out.u64(m.channel_collisions);
  out.u64(m.channel_delivered);
  out.u64(m.channel_dropped_by_model);
  out.u64(m.pass_through_forwarded);
  out.i32(m.tree_members);
  out.i32(m.max_rank);
  out.i32(m.backbone_size);

  out.u64(m.sim_events);
  out.u64(m.peak_pending_events);

  out.u64(m.node_deaths);
  out.f64(m.downtime_s);
  out.f64(m.delivery_during_fault);
  out.end();
}

harness::RunMetrics load_run_metrics(Deserializer& in) {
  harness::RunMetrics m;
  in.enter("RMET");
  m.avg_duty_cycle = in.f64();
  m.duty_by_rank.resize(static_cast<std::size_t>(in.u64()));
  for (double& d : m.duty_by_rank) d = in.f64();

  m.avg_latency_s = in.f64();
  m.p95_latency_s = in.f64();
  m.max_latency_s = in.f64();
  m.delivery_ratio = in.f64();
  m.epochs_measured = in.u64();

  m.sleep_hist.restore_state(in);
  m.frac_sleep_below_2_5ms = in.f64();
  m.sleep_intervals = in.u64();

  m.phase_update_bits_per_report = in.f64();
  m.phase_updates = in.u64();

  m.per_node.resize(static_cast<std::size_t>(in.u64()));
  for (auto& d : m.per_node) {
    d.id = in.i32();
    d.rank = in.i32();
    d.level = in.i32();
    d.leaf = in.boolean();
    d.duty_cycle = in.f64();
    d.reports_sent = in.u64();
    d.send_failures = in.u64();
    d.pass_through = in.u64();
    d.child_timeouts = in.u64();
    d.retx_no_ack = in.u64();
    d.cca_busy_defers = in.u64();
    d.repair_attempts = in.u64();
  }

  m.reports_sent = in.u64();
  m.mac_transmissions = in.u64();
  m.mac_send_failures = in.u64();
  m.mac_retx_no_ack = in.u64();
  m.mac_cca_busy_defers = in.u64();
  m.channel_collisions = in.u64();
  m.channel_delivered = in.u64();
  m.channel_dropped_by_model = in.u64();
  m.pass_through_forwarded = in.u64();
  m.tree_members = in.i32();
  m.max_rank = in.i32();
  m.backbone_size = in.i32();

  m.sim_events = in.u64();
  m.peak_pending_events = in.u64();

  m.node_deaths = in.u64();
  m.downtime_s = in.f64();
  m.delivery_during_fault = in.f64();
  in.finish();
  return m;
}

std::vector<std::uint8_t> run_metrics_to_bytes(const harness::RunMetrics& m) {
  Serializer out;
  save_run_metrics(out, m);
  return out.take();
}

harness::RunMetrics run_metrics_from_bytes(const std::vector<std::uint8_t>& b) {
  Deserializer in{b};
  harness::RunMetrics m = load_run_metrics(in);
  if (!in.at_end()) throw SnapError{"trailing bytes after RunMetrics"};
  return m;
}

}  // namespace essat::snap
