// Versioned snapshot container.
//
// A Snapshot is the unit everything above the serializer exchanges: a kind
// tag (full trial state, bare RunMetrics, sweep ledger record), a format
// version, and an opaque payload produced by a Serializer. to_bytes() frames
// it with a magic string and a CRC-32 of the payload so readers can reject
// foreign files, version skew, and torn or corrupted writes with a precise
// error instead of garbage state.
//
// Versioning policy (documented in README "Snapshots & resumable sweeps"):
// kFormatVersion bumps on ANY change to the payload encoding of any
// component — there are no in-place migrations. A snapshot is a cache of a
// deterministic computation, never the only copy of data, so the cheap and
// correct response to skew is "re-run the prefix", which from_bytes() forces
// by refusing mismatched versions.
#pragma once

#include <cstdint>
#include <vector>

#include "src/snap/serializer.h"

namespace essat::snap {

inline constexpr std::uint32_t kFormatVersion = 2;

enum class SnapshotKind : std::uint32_t {
  kTrial = 1,    // full mid-run simulator state + scenario config
  kMetrics = 2,  // a RunMetrics payload (fork pipes, sweep ledger)
  kLedger = 3,   // sweep checkpoint ledger record
};

const char* snapshot_kind_name(SnapshotKind kind);

struct Snapshot {
  SnapshotKind kind = SnapshotKind::kTrial;
  std::uint32_t version = kFormatVersion;
  std::vector<std::uint8_t> payload;

  // Framed wire form: magic, version, kind, payload length, payload bytes,
  // CRC-32 of the payload. Deterministic given the payload.
  std::vector<std::uint8_t> to_bytes() const;

  // Parses and validates a framed snapshot. Throws SnapError on bad magic,
  // version mismatch, unknown kind, truncation, or CRC failure.
  static Snapshot from_bytes(const std::uint8_t* data, std::size_t size);
  static Snapshot from_bytes(const std::vector<std::uint8_t>& buf) {
    return from_bytes(buf.data(), buf.size());
  }
};

}  // namespace essat::snap
