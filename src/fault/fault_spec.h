// FaultSpec: the declarative fault-injection axis on ScenarioConfig.
//
// A spec describes *what* goes wrong — node churn (scheduled or
// stochastic crash/restart), battery depletion (finite per-node energy
// budgets), and clock drift (per-node skew/offset at the SafeSleep timer
// boundary) — while src/fault/fault_engine.* owns *when and how*: all
// stochastic draws come from one forked RNG stream keyed per node, so a
// fault schedule is a pure function of (config, seed) and is bit-identical
// for any ESSAT_JOBS value. A default-constructed FaultSpec is disabled
// and run_scenario behaves byte-identically to a build without the fault
// engine compiled in.
//
// This header stays lightweight (it is included by harness/scenario.h and
// serialized by snap/config_codec.cpp).
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "src/net/types.h"
#include "src/util/time.h"

namespace essat::fault {

// One deterministic churn event: `node` goes down `at` after setup ends
// and (when down_for > 0) restarts after `down_for`. A non-positive
// down_for is a permanent death. The root is never killed.
struct ChurnEvent {
  net::NodeId node = net::kNoNode;
  util::Time at = util::Time::zero();        // offset from end of setup
  util::Time down_for = util::Time::zero();  // <= 0: permanent
};

struct ChurnSpec {
  // Scheduled events, applied verbatim (root entries ignored).
  std::vector<ChurnEvent> scheduled;
  // Stochastic churn: each non-root member independently crashes once with
  // this probability, at a uniform time inside the measurement window.
  double node_fraction = 0.0;
  // Mean of the exponential downtime for stochastic crashes; <= 0 makes
  // stochastic crashes permanent.
  double mean_downtime_s = 10.0;
  // When false, stochastically crashed nodes never restart.
  bool restart = true;

  bool enabled() const { return !scheduled.empty() || node_fraction > 0.0; }
};

struct BatterySpec {
  // Per-node lifetime energy budget in millijoules; <= 0 disables battery
  // death. Depletion is permanent (there is no recharge).
  double budget_mj = 0.0;
  // Per-node budget jitter: budget * (1 + jitter_frac * U(-1, 1)).
  double jitter_frac = 0.0;
  // How often drained radios are detected. Coarser periods are cheaper;
  // death is attributed to the first check after depletion either way.
  util::Time check_period = util::Time::seconds(1);

  bool enabled() const { return budget_mj > 0.0; }
};

struct DriftSpec {
  // Per-node frequency skew ~ N(0, skew_sigma_ppm) parts-per-million.
  double skew_sigma_ppm = 0.0;
  // Per-node constant offset ~ U(-max_offset_ms, +max_offset_ms).
  double max_offset_ms = 0.0;

  bool enabled() const { return skew_sigma_ppm > 0.0 || max_offset_ms > 0.0; }
};

struct FaultSpec {
  ChurnSpec churn;
  BatterySpec battery;
  DriftSpec drift;

  bool enabled() const {
    return churn.enabled() || battery.enabled() || drift.enabled();
  }

  // Sweep-axis label (exp::SweepSpec::axis_faults / result sinks).
  std::string label() const {
    if (!enabled()) return "none";
    std::string out;
    const auto add = [&out](const std::string& part) {
      if (!out.empty()) out += '+';
      out += part;
    };
    if (churn.enabled()) {
      if (!churn.scheduled.empty()) {
        add("churn-sched" + std::to_string(churn.scheduled.size()));
      }
      if (churn.node_fraction > 0.0) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "churn%g", churn.node_fraction);
        add(buf);
      }
    }
    if (battery.enabled()) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "batt%gmJ", battery.budget_mj);
      add(buf);
    }
    if (drift.enabled()) {
      char buf[48];
      std::snprintf(buf, sizeof buf, "drift%gppm", drift.skew_sigma_ppm);
      add(buf);
    }
    return out;
  }
};

}  // namespace essat::fault
