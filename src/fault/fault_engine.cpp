#include "src/fault/fault_engine.h"

#include <algorithm>
#include <cmath>

#include "src/obs/tracer.h"
#include "src/sim/simulator.h"
#include "src/snap/serializer.h"

namespace essat::fault {

namespace {

// Per-node sub-streams off the engine's master stream. Keyed by purpose so
// adding a fault class never re-keys the others.
constexpr std::uint64_t kChurnStream = 1;
constexpr std::uint64_t kBatteryStream = 2;
constexpr std::uint64_t kDriftStream = 3;

}  // namespace

FaultEngine::FaultEngine(sim::Simulator& sim, FaultEngineParams params,
                         util::Rng&& rng)
    : sim_{sim}, params_{std::move(params)} {
  const std::size_t n = params_.num_nodes;
  down_.assign(n, 0);
  battery_dead_.assign(n, 0);
  open_outage_.assign(n, -1);

  const FaultSpec& spec = params_.spec;

  // --- Churn: the scheduled list first, then the stochastic draws ---------
  for (const ChurnEvent& ev : spec.churn.scheduled) {
    if (ev.node == params_.root) continue;  // the sink never dies
    if (ev.node == net::kNoNode || static_cast<std::size_t>(ev.node) >= n) continue;
    planned_.push_back(PlannedFault{ev.node, params_.setup_end + ev.at,
                                    ev.down_for, FaultCause::kScheduled});
  }
  if (spec.churn.node_fraction > 0.0) {
    const util::Time window = params_.measure_end - params_.measure_start;
    for (std::size_t i = 0; i < n; ++i) {
      const auto id = static_cast<net::NodeId>(i);
      // One fork per node regardless of the outcome, so whether node i
      // crashes never shifts node j's draws.
      util::Rng node_rng = rng.fork(kChurnStream).fork(i);
      const bool crashes = node_rng.bernoulli(spec.churn.node_fraction);
      const util::Time at =
          params_.measure_start + node_rng.uniform_time(util::Time::zero(), window);
      const double downtime_s =
          node_rng.exponential(std::max(spec.churn.mean_downtime_s, 1e-9));
      if (!crashes || id == params_.root) continue;
      const util::Time down_for = spec.churn.restart
                                      ? util::Time::from_seconds(downtime_s)
                                      : util::Time::zero();
      planned_.push_back(PlannedFault{id, at, down_for, FaultCause::kStochastic});
    }
  }
  std::sort(planned_.begin(), planned_.end(),
            [](const PlannedFault& a, const PlannedFault& b) {
              return a.at != b.at ? a.at < b.at : a.node < b.node;
            });

  // --- Battery budgets ----------------------------------------------------
  if (spec.battery.enabled()) {
    battery_budget_mj_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      util::Rng node_rng = rng.fork(kBatteryStream).fork(i);
      const double jitter =
          spec.battery.jitter_frac * node_rng.uniform(-1.0, 1.0);
      battery_budget_mj_[i] = spec.battery.budget_mj * (1.0 + jitter);
    }
  }

  // --- Clock drift --------------------------------------------------------
  if (spec.drift.enabled()) {
    skew_ppm_.resize(n);
    clock_offset_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      util::Rng node_rng = rng.fork(kDriftStream).fork(i);
      skew_ppm_[i] = node_rng.normal(0.0, spec.drift.skew_sigma_ppm);
      clock_offset_[i] = util::Time::from_milliseconds(
          node_rng.uniform(-spec.drift.max_offset_ms, spec.drift.max_offset_ms));
    }
  }
}

void FaultEngine::start() {
  for (const PlannedFault& f : planned_) {
    sim_.schedule_at(f.at, [this, f] { crash_(f.node, f.cause, f.down_for); });
  }
  if (params_.spec.battery.enabled() && energy_probe_) {
    sim_.schedule_at(params_.setup_end + params_.spec.battery.check_period,
                     [this] { poll_battery_(); });
  }
}

util::Time FaultEngine::adjust_wake(net::NodeId n, util::Time t) const {
  const auto i = static_cast<std::size_t>(n);
  if (i >= skew_ppm_.size()) return t;
  const double skewed_s = t.to_seconds() * skew_ppm_[i] * 1e-6;
  return t + clock_offset_[i] + util::Time::from_seconds(skewed_s);
}

void FaultEngine::crash_(net::NodeId n, FaultCause cause, util::Time down_for) {
  const auto i = static_cast<std::size_t>(n);
  if (down_[i]) return;  // scheduled + stochastic overlap: first one wins
  down_[i] = 1;
  if (cause == FaultCause::kBattery) battery_dead_[i] = 1;
  ++deaths_;
  open_outage_[i] = static_cast<int>(outages_.size());
  outages_.push_back(Outage{sim_.now(), util::Time::zero(), true});
  ESSAT_TRACE(sim_, obs::TraceType::kFaultDown, static_cast<std::int32_t>(n),
              static_cast<std::uint16_t>(cause), 0,
              static_cast<std::uint64_t>(down_for > util::Time::zero()
                                             ? down_for.ns()
                                             : 0));
  if (crash_cb_) crash_cb_(n);
  const bool permanent =
      cause == FaultCause::kBattery || down_for <= util::Time::zero();
  if (!permanent) {
    sim_.schedule_in(down_for, [this, n] { restart_(n); });
  }
}

void FaultEngine::restart_(net::NodeId n) {
  const auto i = static_cast<std::size_t>(n);
  if (!down_[i] || battery_dead_[i]) return;  // battery death outlasts churn
  down_[i] = 0;
  Outage& o = outages_[static_cast<std::size_t>(open_outage_[i])];
  o.up = sim_.now();
  o.open = false;
  open_outage_[i] = -1;
  ESSAT_TRACE(sim_, obs::TraceType::kFaultUp, static_cast<std::int32_t>(n), 0,
              static_cast<std::uint64_t>((o.up - o.down).ns()), 0);
  if (restart_cb_) restart_cb_(n);
}

void FaultEngine::poll_battery_() {
  for (std::size_t i = 0; i < battery_budget_mj_.size(); ++i) {
    const auto id = static_cast<net::NodeId>(i);
    if (down_[i] || battery_dead_[i] || id == params_.root) continue;
    if (energy_probe_(id) >= battery_budget_mj_[i]) {
      crash_(id, FaultCause::kBattery, util::Time::zero());
    }
  }
  sim_.schedule_in(params_.spec.battery.check_period, [this] { poll_battery_(); });
}

double FaultEngine::downtime_s() const {
  double total = 0.0;
  for (const Outage& o : outages_) {
    const util::Time begin = std::max(o.down, params_.measure_start);
    const util::Time end =
        std::min(o.open ? params_.measure_end : o.up, params_.measure_end);
    if (end > begin) total += (end - begin).to_seconds();
  }
  return total;
}

bool FaultEngine::any_down_at(util::Time t) const {
  for (const Outage& o : outages_) {
    if (t >= o.down && (o.open || t < o.up)) return true;
  }
  return false;
}

void FaultEngine::save_state(snap::Serializer& out) const {
  out.begin("FENG");
  out.u64(deaths_);
  out.u64(down_.size());
  for (std::size_t i = 0; i < down_.size(); ++i) {
    out.boolean(down_[i] != 0);
    out.boolean(battery_dead_[i] != 0);
    out.i64(open_outage_[i]);
  }
  out.u64(outages_.size());
  for (const Outage& o : outages_) {
    out.i64(o.down.ns());
    out.i64(o.up.ns());
    out.boolean(o.open);
  }
  out.end();
}

}  // namespace essat::fault
