// Deterministic fault-injection engine, driven by the declarative FaultSpec
// on harness::ScenarioConfig.
//
// The engine owns the *schedule*: which node goes down when, for how long,
// and why (scheduled churn, stochastic churn, battery depletion). The
// mechanics of dying and reviving — tearing the per-node stack down and
// rebuilding it so the tree repairs — belong to the harness, which installs
// them as callbacks. This split keeps the engine policy-agnostic and the
// harness free of RNG bookkeeping.
//
// Determinism: every random quantity (stochastic crash picks and times,
// downtimes, battery jitter, drift skews/offsets) is pre-drawn in the
// constructor from per-node streams forked off the engine's own master
// stream (harness stream 7), in node order. Nothing is drawn at event time,
// so the schedule is a pure function of (spec, seed, node count) — byte
// identical for any ESSAT_JOBS. The root is never killed (the sink is
// mains-powered in the paper's deployment model).
//
// Battery: per-node budgets in millijoules against the radio's *lifetime*
// energy (never reset by measurement windows, still draining across
// restarts), probed on a fixed poll grid. Battery death is permanent.
//
// Drift: per-node clock skew (ppm) and offset applied at the SafeSleep
// wake-timer boundary via adjust_wake() — the one place the paper's
// schedule-driven protocols turn shared time into a local timer.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "src/fault/fault_spec.h"
#include "src/net/types.h"
#include "src/util/rng.h"
#include "src/util/time.h"

namespace essat::sim {
class Simulator;
}  // namespace essat::sim
namespace essat::snap {
class Serializer;
}  // namespace essat::snap

namespace essat::fault {

// Why a node went down (kFaultDown trace arg16, NodeDown::cause).
enum class FaultCause : std::uint8_t { kScheduled = 0, kStochastic = 1, kBattery = 2 };

struct FaultEngineParams {
  FaultSpec spec;
  std::size_t num_nodes = 0;
  net::NodeId root = net::kNoNode;
  // Fault times in ChurnSpec are offsets from the end of the setup slot;
  // stochastic crash times are drawn uniformly inside the measurement
  // window so every churn rate perturbs the same measured region.
  util::Time setup_end;
  util::Time measure_start;
  util::Time measure_end;
};

class FaultEngine {
 public:
  // Tears down / rebuilds one node's stack; installed by the harness.
  using NodeFn = std::function<void(net::NodeId)>;
  // Reads a node's lifetime radio energy in mJ (battery depletion probe).
  using EnergyProbe = std::function<double(net::NodeId)>;

  FaultEngine(sim::Simulator& sim, FaultEngineParams params, util::Rng&& rng);

  void set_crash_callback(NodeFn fn) { crash_cb_ = std::move(fn); }
  void set_restart_callback(NodeFn fn) { restart_cb_ = std::move(fn); }
  void set_energy_probe(EnergyProbe fn) { energy_probe_ = std::move(fn); }

  // Schedules every pre-drawn fault event plus the battery poll grid. Call
  // once, after the callbacks are installed and the harness has scheduled
  // its own setup-boundary events (same-time events run in schedule order,
  // so stacks exist before a churn event at offset zero fires).
  void start();

  bool is_down(net::NodeId n) const {
    return down_[static_cast<std::size_t>(n)];
  }

  // --- Clock drift --------------------------------------------------------
  bool has_drift() const { return params_.spec.drift.enabled(); }
  // Maps an ideal wake time to the node's drifted local clock:
  //   t + offset_n + t * skew_n(ppm) * 1e-6.
  util::Time adjust_wake(net::NodeId n, util::Time t) const;

  // --- Metrics ------------------------------------------------------------
  std::uint64_t node_deaths() const { return deaths_; }
  // Total node-seconds of downtime overlapping the measurement window;
  // still-open outages are clipped at measure_end.
  double downtime_s() const;
  // True when any node was down at time t (epoch filter for the
  // delivery-during-fault metric).
  bool any_down_at(util::Time t) const;

  // Snapshot hook: the mutable fault state (down flags, outage intervals,
  // death counter). The schedule itself is pre-drawn config, rebuilt by
  // replay; pending events live in the simulator's own snapshot.
  void save_state(snap::Serializer& out) const;

 private:
  struct PlannedFault {
    net::NodeId node = net::kNoNode;
    util::Time at;            // absolute crash time
    util::Time down_for;      // <= 0: permanent
    FaultCause cause = FaultCause::kScheduled;
  };
  struct Outage {
    util::Time down;
    util::Time up;            // < down while still open
    bool open = true;
  };

  void crash_(net::NodeId n, FaultCause cause, util::Time down_for);
  void restart_(net::NodeId n);
  void poll_battery_();

  sim::Simulator& sim_;
  FaultEngineParams params_;
  NodeFn crash_cb_;
  NodeFn restart_cb_;
  EnergyProbe energy_probe_;

  std::vector<PlannedFault> planned_;     // churn, sorted by (at, node)
  std::vector<double> battery_budget_mj_; // empty when battery disabled
  std::vector<double> skew_ppm_;          // empty when drift disabled
  std::vector<util::Time> clock_offset_;

  std::vector<char> down_;
  std::vector<char> battery_dead_;
  std::vector<int> open_outage_;          // index into outages_, -1 if up
  std::vector<Outage> outages_;
  std::uint64_t deaths_ = 0;
};

}  // namespace essat::fault
