// Umbrella header: the full public API of the ESSAT library.
//
// Layering (bottom to top):
//   util    — time, RNG, statistics
//   obs     — tracing & metrics: ring tracer, samplers, lifecycle oracle,
//             Perfetto/JSONL exporters (record layer sits below sim; the
//             sampler rides on it)
//   sim     — discrete-event kernel
//   net     — topology, packets, wireless channel
//   energy  — radio power-state machine and accounting
//   mac     — CSMA/CA medium access
//   routing — routing tree, distributed setup, repair
//   query   — periodic-query service with in-network aggregation
//   core    — the paper's contribution: Safe Sleep + NTS/STS/DTS shapers
//   baselines — SYNC, PSM, SPAN comparison protocols
//   fault   — deterministic fault injection: node churn, battery
//             depletion, clock drift (declarative FaultSpec, pre-drawn
//             per-node schedules)
//   harness — scenario assembly, metrics, multi-run experiments
//   exp     — parallel experiment-sweep engine (thread pool, parameter
//             grids, deterministic seeding, aggregation, result sinks);
//             harness::run_repeated forwards here
#pragma once

#include "src/baselines/psm.h"
#include "src/baselines/psm_stack.h"
#include "src/baselines/span.h"
#include "src/baselines/span_stack.h"
#include "src/baselines/sync.h"
#include "src/baselines/sync_stack.h"
#include "src/core/dissemination.h"
#include "src/core/dts.h"
#include "src/core/essat_stack.h"
#include "src/core/maintenance.h"
#include "src/core/nts.h"
#include "src/core/safe_sleep.h"
#include "src/core/sts.h"
#include "src/energy/duty_cycle.h"
#include "src/energy/radio.h"
#include "src/exp/aggregate.h"
#include "src/exp/sinks.h"
#include "src/exp/sweep.h"
#include "src/exp/sweep_runner.h"
#include "src/exp/thread_pool.h"
#include "src/fault/fault_engine.h"
#include "src/fault/fault_spec.h"
#include "src/harness/metrics.h"
#include "src/harness/power_manager.h"
#include "src/harness/runner.h"
#include "src/harness/scenario.h"
#include "src/harness/stack_registry.h"
#include "src/harness/table.h"
#include "src/mac/csma.h"
#include "src/net/channel.h"
#include "src/net/link_model.h"
#include "src/net/packet.h"
#include "src/net/topology.h"
#include "src/obs/lifecycle.h"
#include "src/obs/sampler.h"
#include "src/obs/trace_export.h"
#include "src/obs/tracer.h"
#include "src/query/query.h"
#include "src/query/query_agent.h"
#include "src/query/traffic_shaper.h"
#include "src/query/workload.h"
#include "src/routing/repair.h"
#include "src/routing/tree.h"
#include "src/routing/tree_protocol.h"
#include "src/sim/simulator.h"
#include "src/sim/timer.h"
#include "src/util/histogram.h"
#include "src/util/logging.h"
#include "src/util/rng.h"
#include "src/util/stats.h"
#include "src/util/time.h"
