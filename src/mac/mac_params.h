// CSMA/CA (802.11b-DCF-subset) timing parameters at 1 Mbps, the paper's MAC
// configuration (§5: "IEEE 802.11b is used as the MAC protocol. The network
// bandwidth is 1 Mbps").
#pragma once

#include <cstddef>

#include "src/net/packet.h"
#include "src/util/time.h"

namespace essat::mac {

struct MacParams {
  util::Time slot = util::Time::microseconds(20);
  util::Time difs = util::Time::microseconds(50);
  util::Time sifs = util::Time::microseconds(10);
  // PHY preamble + PLCP header airtime prepended to every frame.
  util::Time phy_overhead = util::Time::microseconds(192);
  double bandwidth_bps = 1e6;
  int cw_min = 31;
  int cw_max = 1023;
  // Initial contention window for the first attempt of a DATA frame. The
  // paper's substrate MACs (TinyOS CSMA [Woo & Culler], ns-2 802.11 with
  // application jitter) spread epoch-synchronized sources over a window
  // much larger than CWmin; without it, dozens of sources firing at the
  // same epoch boundary collide persistently (a 52-byte frame occupies ~30
  // slots of air time). Retries still follow 802.11 exponential backoff.
  int initial_data_cw = 255;
  // Maximum transmission attempts for a unicast frame (1 initial + retries).
  int max_attempts = 10;
  // Extra margin on top of SIFS + ACK airtime before declaring an ACK lost.
  util::Time ack_timeout_slack = util::Time::microseconds(60);
  // Duplicate-suppression storage: networks with fewer nodes than this use
  // the legacy dense per-sender table (one slot per node in the network);
  // larger ones use a growable open-addressed map over senders actually
  // heard (O(neighborhood) per receiver instead of O(n), which is what
  // keeps per-node memory flat at city scale). Behavior is identical — the
  // map never evicts. Set to 0 / SIZE_MAX to force sparse / dense for the
  // A/B equivalence tests.
  std::size_t dense_dup_table_below = 1024;

  util::Time tx_duration(int size_bytes) const {
    return phy_overhead +
           util::Time::from_seconds(static_cast<double>(size_bytes) * 8.0 / bandwidth_bps);
  }
  util::Time ack_duration() const { return tx_duration(net::Packet::kAckBytes); }
  util::Time ack_timeout() const {
    return sifs + ack_duration() + ack_timeout_slack;
  }
  // Extended inter-frame space after a garbled reception (802.11: protects
  // the un-decodable frame's ACK).
  util::Time eifs() const { return sifs + ack_duration() + difs; }
};

}  // namespace essat::mac
