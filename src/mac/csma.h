// CSMA/CA medium access (802.11-DCF subset): carrier sense + DIFS + slotted
// random backoff with freeze/resume, immediate ACK for unicast frames,
// exponential-backoff retransmission, duplicate suppression, NAV/EIFS
// deferral. Broadcast frames are sent once, unacknowledged.
//
// This is the source of the delay jitter the paper's traffic shapers exist
// to tame: "the random backoff scheme in widely adopted CSMA/CA MAC
// protocols can cause variable communication delays due to channel
// contention ... the delay jitter can accumulate over multiple hops" (§1).
//
// Fidelity notes (matching ns-2's 802.11 model, the paper's MAC):
//  * Backoff counters freeze while the medium is busy and resume with the
//    remaining slots — essential when many sources fire at the same epoch
//    boundary, otherwise contenders stay synchronized and re-collide.
//  * Overheard unicast data raises a NAV until the expected ACK completes;
//    corrupted receptions defer by EIFS. Both protect ACKs from neighbors.
//
// Interaction with power management:
//  * The radio must be fully ON to transmit or receive; the MAC pauses while
//    it is off and resumes on wake (it observes radio state changes).
//  * Windowed baselines (SYNC/PSM) install a tx filter: frames failing the
//    predicate stay queued without consuming retry attempts.
//  * If the receiver sleeps through all attempts, the send fails after
//    max_attempts — exactly the failure mode §4.1 describes for inaccurate
//    expected reception times.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "src/energy/radio.h"
#include "src/mac/mac_params.h"
#include "src/net/channel.h"
#include "src/net/packet.h"
#include "src/sim/timer.h"
#include "src/util/flat_map.h"
#include "src/util/ring_queue.h"
#include "src/util/rng.h"

namespace essat::snap {
class Serializer;
}  // namespace essat::snap

namespace essat::mac {

struct MacStats {
  std::uint64_t frames_sent = 0;      // completed sends (unicast acked / bcast out)
  std::uint64_t frames_failed = 0;    // unicast gave up after max_attempts
  std::uint64_t transmissions = 0;    // individual attempts put on the air
  // Retransmission cause attribution: this MAC retransmits only after an
  // ACK timeout (the frame or its ACK was lost/collided — the dominant mode
  // on gray-zone links), so `retries` *is* the no-ACK retransmission count;
  // a busy carrier never consumes an attempt. `cca_busy_defers` counts the
  // times a pending frame's channel access was frozen or redrawn because
  // carrier sense reported busy (contention — access delay, zero frames
  // retransmitted). Together they attribute duty/latency inflation under
  // load vs loss.
  std::uint64_t retries = 0;
  std::uint64_t cca_busy_defers = 0;
  std::uint64_t frames_received = 0;  // delivered to the upper layer
  std::uint64_t duplicates = 0;
  std::uint64_t acks_sent = 0;
};

class CsmaMac : public net::ChannelListener {
 public:
  // The three upper-layer hooks stay type-erased std::functions by design:
  // they are installed once per node at stack-assembly time (or moved, not
  // constructed, on the per-send path), their captures fit the small-buffer
  // optimization, and the steady-state zero-alloc tests in
  // tests/perf_alloc_test.cpp hold with them in place.
  using TxCallback = std::function<void(bool success)>;   // essat-lint: allow(hot-path-alloc)
  using RxHandler = std::function<void(const net::Packet&)>;  // essat-lint: allow(hot-path-alloc)
  using TxFilter = std::function<bool(const net::Packet&)>;   // essat-lint: allow(hot-path-alloc)

  CsmaMac(sim::Simulator& sim, net::Channel& channel, energy::Radio& radio,
          net::NodeId self, MacParams params, util::Rng&& rng);

  net::NodeId self() const { return self_; }

  // Enqueues a frame. Unicast frames (link_dst != broadcast) are ACKed and
  // retried; `cb(false)` fires after max_attempts without an ACK. Broadcast
  // frames complete as soon as they are transmitted once. `cb` may be null.
  void send(net::Packet p, TxCallback cb = nullptr);

  void set_rx_handler(RxHandler handler) { rx_handler_ = std::move(handler); }

  // Gate transmissions (windowed baselines). A null filter admits all
  // frames. Blocked frames wait in the queue without penalty; call `kick()`
  // after loosening the filter.
  void set_tx_filter(TxFilter filter) { tx_filter_ = std::move(filter); }
  // Re-evaluates the head of the queue (e.g. after a tx window opened).
  void kick() { try_start_(); }

  // True when nothing is queued or in flight — including a pending ACK for
  // a frame we just accepted. Safe Sleep consults this before powering the
  // radio down; sleeping between a reception and its SIFS-deferred ACK
  // would make the sender retry against a dead radio.
  bool idle() const;
  // Invoked whenever the MAC drains to idle.
  // essat-lint: allow(hot-path-alloc) — installed once per node at setup
  void set_idle_callback(std::function<void()> cb) { idle_cb_ = std::move(cb); }

  // Destinations of currently queued unicast frames (PSM uses this to build
  // its ATIM announcements; the inline-capacity type feeds straight into
  // make_atim_packet without an allocation in the common case).
  net::AtimDestinations pending_destinations() const;
  bool has_pending() const { return !queue_.empty() || in_flight_.has_value(); }
  // Frames waiting or in flight — the send-queue depth samplers report.
  std::size_t queue_depth() const {
    return queue_.size() + (in_flight_.has_value() ? 1 : 0);
  }

  const MacStats& stats() const { return stats_; }

  // Node crash (fault engine): drops the queue and the in-flight frame
  // without firing their callbacks, cancels every MAC timer, and clears the
  // contention/NAV state, as if the node lost power mid-operation. The
  // pending-ACK counter is deliberately left alone — SIFS-deferred ACK
  // replies are raw (uncancellable) sim events that still fire, decrement
  // it, and no-op against the dead radio. Dup-suppression tables survive
  // (deterministic either way; keeping them avoids re-delivering frames the
  // upper layer consumed before the crash). Stats survive: they are
  // cumulative over the run, not per-boot.
  void crash_reset();

  // Snapshot hook: queue contents (packets by value, exact ring layout),
  // the in-flight frame, contention/NAV/ACK state, all four timers, the
  // backoff RNG, dup tables as stored, and counters. The upper-layer
  // callbacks (tx cb, rx handler, filter) are wiring, rebuilt by replay.
  void save_state(snap::Serializer& out) const;

 private:
  struct Outgoing {
    net::Packet packet;
    TxCallback cb;
    int attempts = 0;
    int cw = 0;              // current contention window
    int backoff_slots = -1;  // remaining slots (-1: draw afresh)
  };

  // net::ChannelListener (the channel calls back through one pointer).
  void on_rx_complete(const net::Packet& p, bool ok) override;
  void on_channel_activity() override;

  // Pushes radio-ON-and-not-transmitting into the channel's cached
  // listening flag; call after every transmitting_ toggle and radio state
  // change so the channel never evaluates our state lazily.
  void update_listening_();

  bool medium_free_() const;
  util::Time defer_until_() const;  // max(now, nav)
  void try_start_();
  void begin_contention_();   // (re)start DIFS + remaining backoff
  void freeze_backoff_();     // medium went busy mid-countdown
  void transmit_head_();
  void finish_head_(bool success);
  void on_ack_timeout_();
  void send_ack_(net::NodeId to);
  void check_idle_();

  sim::Simulator& sim_;
  net::Channel& channel_;
  energy::Radio& radio_;
  net::NodeId self_;
  MacParams params_;
  util::Rng rng_;

  // Send queue: a grow-only power-of-two ring. std::deque cycled a heap
  // chunk every time the queue drained (the steady state), and its empty
  // footprint is a whole chunk per node — both wrong at city scale.
  util::RingQueue<Outgoing> queue_;
  std::optional<Outgoing> in_flight_;  // head being contended/transmitted
  bool transmitting_ = false;          // our radio is emitting (data or ack)
  bool waiting_ack_ = false;
  bool in_backoff_ = false;            // countdown timer armed
  util::Time countdown_start_;         // when the current countdown began
  util::Time nav_until_;               // virtual carrier sense (NAV / EIFS)
  bool saw_busy_ = false;              // a busy period is/was in progress
  bool decoded_last_busy_ = false;     // it ended in a decodable frame
  int pending_acks_ = 0;               // scheduled/in-flight ACK replies
  sim::Timer backoff_timer_;
  sim::Timer ack_timer_;
  sim::Timer tx_end_timer_;
  sim::Timer nav_timer_;

  RxHandler rx_handler_;
  TxFilter tx_filter_;
  std::function<void()> idle_cb_;  // essat-lint: allow(hot-path-alloc)

  std::uint32_t next_mac_seq_ = 1;
  // Duplicate suppression: last mac_seq delivered per sender. Small
  // networks (below MacParams::dense_dup_table_below) use a dense per-node
  // table — one predictable load per delivery. Large ones use a growable
  // open-addressed map over the senders this node has actually heard (its
  // neighborhood), so per-node memory is O(degree) instead of O(n) — the
  // dense table alone would be 4n bytes per node, i.e. an n^2 structure.
  // The map never evicts, so both paths deliver bit-identical decisions.
  static constexpr std::uint32_t kNoSeq = 0xFFFFFFFFu;
  std::vector<std::uint32_t> last_delivered_seq_;  // dense mode (empty otherwise)
  util::FlatMap<std::uint32_t, std::uint32_t> sparse_delivered_seq_;
  const bool dense_dup_table_;

  MacStats stats_;
};

}  // namespace essat::mac
