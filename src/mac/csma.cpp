#include "src/mac/csma.h"

#include <algorithm>
#include <utility>
#include <cassert>

#include "src/snap/packet_codec.h"
#include "src/snap/timer_codec.h"
#include "src/util/logging.h"

namespace essat::mac {

CsmaMac::CsmaMac(sim::Simulator& sim, net::Channel& channel, energy::Radio& radio,
                 net::NodeId self, MacParams params, util::Rng&& rng)
    : sim_{sim},
      channel_{channel},
      radio_{radio},
      self_{self},
      params_{params},
      rng_{std::move(rng)},
      backoff_timer_{sim},
      ack_timer_{sim},
      tx_end_timer_{sim},
      nav_timer_{sim},
      dense_dup_table_{channel.num_nodes() < params.dense_dup_table_below} {
  if (dense_dup_table_) {
    last_delivered_seq_.assign(channel.num_nodes(), kNoSeq);
  }
  channel_.attach(self_, this);
  update_listening_();
  radio_.add_state_observer([this](energy::RadioState s) {
    update_listening_();
    if (s == energy::RadioState::kOn) {
      if (in_flight_ && !in_backoff_ && !transmitting_ && !waiting_ack_) {
        begin_contention_();
      } else {
        try_start_();
      }
    }
  });
}

void CsmaMac::update_listening_() {
  channel_.set_listening(self_, radio_.is_on() && !transmitting_);
}

void CsmaMac::send(net::Packet p, TxCallback cb) {
  p.link_src = self_;
  ESSAT_TRACE(sim_, obs::TraceType::kMacEnqueue, self_,
              static_cast<std::uint16_t>(p.type), p.prov,
              static_cast<std::uint64_t>(p.link_dst));
  queue_.push_back(Outgoing{std::move(p), std::move(cb), 0, params_.cw_min, -1});
  try_start_();
}

bool CsmaMac::idle() const {
  return queue_.empty() && !in_flight_.has_value() && pending_acks_ == 0;
}

void CsmaMac::check_idle_() {
  if (idle() && idle_cb_) idle_cb_();
}

void CsmaMac::crash_reset() {
  backoff_timer_.cancel();
  ack_timer_.cancel();
  tx_end_timer_.cancel();
  nav_timer_.cancel();
  queue_.clear();       // queued TxCallbacks are dropped unfired
  in_flight_.reset();   // likewise the head's
  transmitting_ = false;
  waiting_ack_ = false;
  in_backoff_ = false;
  saw_busy_ = false;
  decoded_last_busy_ = false;
  nav_until_ = util::Time::zero();
  // pending_acks_ intentionally untouched — see the header comment.
  update_listening_();
}

net::AtimDestinations CsmaMac::pending_destinations() const {
  net::AtimDestinations out;
  auto add = [&out](net::NodeId d) {
    if (d != net::kBroadcastAddr &&
        std::find(out.begin(), out.end(), d) == out.end()) {
      out.push_back(d);
    }
  };
  if (in_flight_) add(in_flight_->packet.link_dst);
  for (std::size_t i = 0; i < queue_.size(); ++i) add(queue_[i].packet.link_dst);
  return out;
}

bool CsmaMac::medium_free_() const {
  return !channel_.busy(self_) && sim_.now() >= nav_until_;
}

void CsmaMac::try_start_() {
  if (in_flight_ || queue_.empty()) {
    check_idle_();
    return;
  }
  if (!radio_.is_on()) return;
  // Pick the first frame admitted by the tx filter (windowed baselines may
  // block some destinations while admitting others).
  std::size_t i = 0;
  if (tx_filter_) {
    while (i < queue_.size() && !tx_filter_(queue_[i].packet)) ++i;
    if (i == queue_.size()) return;
  }
  in_flight_ = queue_.take_at(i);
  in_flight_->attempts = 0;
  in_flight_->cw = in_flight_->packet.type == net::PacketType::kData
                       ? params_.initial_data_cw
                       : params_.cw_min;
  in_flight_->backoff_slots = -1;
  begin_contention_();
}

void CsmaMac::begin_contention_() {
  assert(in_flight_);
  if (!radio_.is_on() || transmitting_ || in_backoff_) return;
  if (channel_.busy(self_)) {
    // Access wanted while the carrier is already busy (fresh dequeue, retry
    // after an ACK timeout, ...): a CCA-busy defer like the mid-countdown
    // freeze below. Resumes via on_channel_activity_, which only re-enters
    // here once the medium clears, so each defer counts once.
    ++stats_.cca_busy_defers;
    ESSAT_TRACE(sim_, obs::TraceType::kMacCcaDefer, self_, 0,
                in_flight_->packet.prov, 0);
    return;
  }
  if (sim_.now() < nav_until_) {
    // Virtual carrier sense: defer to the NAV, then retry.
    nav_timer_.arm_at(nav_until_, [this] {
      if (in_flight_ && !in_backoff_ && !transmitting_ && !waiting_ack_) {
        begin_contention_();
      }
    });
    return;
  }
  if (in_flight_->backoff_slots < 0) {
    in_flight_->backoff_slots =
        static_cast<int>(rng_.uniform_int(0, in_flight_->cw));
  }
  in_backoff_ = true;
  countdown_start_ = sim_.now();
  const util::Time countdown =
      params_.difs + params_.slot * in_flight_->backoff_slots;
  ESSAT_TRACE(sim_, obs::TraceType::kMacBackoffStart, self_,
              static_cast<std::uint16_t>(in_flight_->backoff_slots),
              in_flight_->packet.prov,
              static_cast<std::uint64_t>(countdown.ns()));
  backoff_timer_.arm_in(countdown, [this] {
    in_backoff_ = false;
    if (!in_flight_) return;
    if (!radio_.is_on() || transmitting_) return;
    if (!medium_free_()) {
      // Busy exactly at expiry (the freeze path normally catches this
      // earlier): redraw to avoid a synchronized rush when the medium
      // clears. begin_contention_ counts the defer iff the carrier (not
      // just the NAV) is what blocks us.
      in_flight_->backoff_slots = -1;
      begin_contention_();
      return;
    }
    transmit_head_();
  });
}

void CsmaMac::freeze_backoff_() {
  if (!in_backoff_ || !in_flight_) return;
  backoff_timer_.cancel();
  in_backoff_ = false;
  // 802.11 freeze/resume: slots consumed after DIFS are kept off the
  // counter; the remainder resumes once the medium clears.
  const util::Time elapsed = sim_.now() - countdown_start_;
  if (elapsed > params_.difs) {
    const auto consumed =
        static_cast<int>((elapsed - params_.difs).ns() / params_.slot.ns());
    in_flight_->backoff_slots =
        std::max(0, in_flight_->backoff_slots - consumed);
  }
}

void CsmaMac::transmit_head_() {
  assert(in_flight_);
  if (in_flight_->attempts == 0) {
    in_flight_->packet.mac_seq = next_mac_seq_++;
  }
  ++in_flight_->attempts;
  ++stats_.transmissions;
  ESSAT_TRACE(sim_, obs::TraceType::kMacTxAttempt, self_,
              static_cast<std::uint16_t>(in_flight_->attempts),
              in_flight_->packet.prov,
              static_cast<std::uint64_t>(in_flight_->packet.link_dst));

  transmitting_ = true;
  update_listening_();
  radio_.note_tx(true);
  const util::Time dur = params_.tx_duration(in_flight_->packet.size_bytes);
  channel_.start_tx(self_, in_flight_->packet, dur);
  tx_end_timer_.arm_in(dur, [this] {
    transmitting_ = false;
    update_listening_();
    radio_.note_tx(false);
    if (!in_flight_) return;
    if (in_flight_->packet.is_broadcast()) {
      finish_head_(true);
    } else {
      waiting_ack_ = true;
      ack_timer_.arm_in(params_.ack_timeout(), [this] { on_ack_timeout_(); });
    }
  });
}

void CsmaMac::on_ack_timeout_() {
  waiting_ack_ = false;
  if (!in_flight_) return;
  if (in_flight_->attempts >= params_.max_attempts) {
    finish_head_(false);
    return;
  }
  ++stats_.retries;
  ESSAT_TRACE(sim_, obs::TraceType::kMacRetry, self_,
              static_cast<std::uint16_t>(in_flight_->attempts),
              in_flight_->packet.prov, 0);
  in_flight_->cw = std::min(in_flight_->cw * 2 + 1, params_.cw_max);
  in_flight_->backoff_slots = -1;  // redraw from the doubled window
  begin_contention_();
}

void CsmaMac::finish_head_(bool success) {
  assert(in_flight_);
  if (success) {
    ++stats_.frames_sent;
    ESSAT_TRACE(sim_, obs::TraceType::kMacSendOk, self_, 0,
                in_flight_->packet.prov, 0);
  } else {
    ++stats_.frames_failed;
    ESSAT_TRACE(sim_, obs::TraceType::kMacSendFail, self_,
                static_cast<std::uint16_t>(in_flight_->attempts),
                in_flight_->packet.prov, 0);
  }
  TxCallback cb = std::move(in_flight_->cb);
  in_flight_.reset();
  waiting_ack_ = false;
  if (cb) cb(success);
  try_start_();
}

void CsmaMac::on_rx_complete(const net::Packet& p, bool ok) {
  decoded_last_busy_ = ok;
  if (!ok) {
    // EIFS: after a garbled frame, defer long enough that a response we
    // could not decode (e.g. an ACK) is not stomped.
    nav_until_ = std::max(nav_until_, sim_.now() + params_.eifs());
    if (in_backoff_) freeze_backoff_();
    return;
  }

  if (p.type == net::PacketType::kAck) {
    if (waiting_ack_ && in_flight_ && p.link_dst == self_ &&
        p.link_src == in_flight_->packet.link_dst) {
      ack_timer_.cancel();
      waiting_ack_ = false;
      finish_head_(true);
    }
    return;
  }

  if (p.link_dst == self_) {
    // Unicast to us: always acknowledge (retransmissions too), deliver once.
    send_ack_(p.link_src);
    // Sparse mode's default slot value is 0; delivered mac_seqs start at 1,
    // so 0 is as unmatchable as the dense table's kNoSeq sentinel.
    std::uint32_t& last =
        dense_dup_table_
            ? last_delivered_seq_[static_cast<std::size_t>(p.link_src)]
            : sparse_delivered_seq_[static_cast<std::uint32_t>(p.link_src)];
    if (last == p.mac_seq) {
      ++stats_.duplicates;
      ESSAT_TRACE(sim_, obs::TraceType::kMacRxDup, self_, 0, p.prov,
                  static_cast<std::uint64_t>(p.link_src));
      return;
    }
    last = p.mac_seq;
    ++stats_.frames_received;
    ESSAT_TRACE(sim_, obs::TraceType::kMacRxDeliver, self_,
                static_cast<std::uint16_t>(p.type), p.prov,
                static_cast<std::uint64_t>(p.link_src));
    if (rx_handler_) rx_handler_(p);
    return;
  }

  if (p.is_broadcast()) {
    ++stats_.frames_received;
    ESSAT_TRACE(sim_, obs::TraceType::kMacRxDeliver, self_,
                static_cast<std::uint16_t>(p.type), p.prov,
                static_cast<std::uint64_t>(p.link_src));
    if (rx_handler_) rx_handler_(p);
    return;
  }

  // Overheard unicast data for someone else: NAV covers its ACK.
  nav_until_ = std::max(
      nav_until_, sim_.now() + params_.sifs + params_.ack_duration());
  if (in_backoff_) freeze_backoff_();
}

void CsmaMac::send_ack_(net::NodeId to) {
  ++pending_acks_;
  sim_.schedule_in(params_.sifs, [this, to] {
    // ACKs go out without carrier sense (802.11 gives them SIFS priority),
    // but we cannot emit while another of our transmissions is in progress
    // or the radio is down; the data sender will simply retry.
    if (!radio_.is_on() || transmitting_) {
      --pending_acks_;
      check_idle_();
      return;
    }
    if (in_backoff_) freeze_backoff_();  // pause contention while we reply
    net::Packet ack;
    ack.type = net::PacketType::kAck;
    ack.link_src = self_;
    ack.link_dst = to;
    ack.size_bytes = net::Packet::kAckBytes;
    ack.mac_seq = next_mac_seq_++;
    ++stats_.acks_sent;
    ESSAT_TRACE(sim_, obs::TraceType::kMacAckTx, self_, 0, 0,
                static_cast<std::uint64_t>(to));
    transmitting_ = true;
    update_listening_();
    radio_.note_tx(true);
    const util::Time dur = params_.ack_duration();
    channel_.start_tx(self_, ack, dur);
    sim_.schedule_in(dur, [this] {
      transmitting_ = false;
      update_listening_();
      radio_.note_tx(false);
      --pending_acks_;
      // Resume a paused contention; channel notifications handle the
      // busy->idle edge, but our own transmitting_ flag is local.
      if (in_flight_ && !in_backoff_ && !waiting_ack_) begin_contention_();
      check_idle_();
    });
  });
}

void CsmaMac::on_channel_activity() {
  const bool busy = channel_.busy(self_);
  if (busy) {
    saw_busy_ = true;
    if (in_backoff_) {
      // Carrier went busy mid-countdown: a CCA-caused access defer (the
      // freezes for our own ACK replies or NAV/EIFS are not counted here —
      // they are self-inflicted pauses, not channel contention).
      ++stats_.cca_busy_defers;
      ESSAT_TRACE(sim_, obs::TraceType::kMacCcaDefer, self_, 0,
                  in_flight_->packet.prov, 0);
      freeze_backoff_();
    }
    return;
  }
  if (saw_busy_) {
    saw_busy_ = false;
    if (!decoded_last_busy_) {
      // The busy period ended without a decodable frame (collision, or we
      // were not synchronized to its preamble): defer long enough for a
      // response we could not anticipate — 802.11's EIFS. Without this,
      // hidden contenders stomp ACKs and senders burn their retry budget
      // against receivers that already accepted the frame and went back to
      // sleep.
      nav_until_ = std::max(nav_until_,
                            sim_.now() + params_.sifs + params_.ack_duration());
    }
    decoded_last_busy_ = false;
  }
  if (in_flight_ && !in_backoff_ && !transmitting_ && !waiting_ack_ &&
      radio_.is_on()) {
    begin_contention_();  // defers internally to the NAV if needed
  }
}

void CsmaMac::save_state(snap::Serializer& out) const {
  out.begin("CMAC");
  const auto save_outgoing = [](snap::Serializer& o, const Outgoing& og) {
    snap::save_packet(o, og.packet);
    o.boolean(og.cb != nullptr);
    o.i32(og.attempts);
    o.i32(og.cw);
    o.i32(og.backoff_slots);
  };
  queue_.save_state(out, save_outgoing);
  out.boolean(in_flight_.has_value());
  if (in_flight_.has_value()) save_outgoing(out, *in_flight_);
  out.boolean(transmitting_);
  out.boolean(waiting_ack_);
  out.boolean(in_backoff_);
  out.time(countdown_start_);
  out.time(nav_until_);
  out.boolean(saw_busy_);
  out.boolean(decoded_last_busy_);
  out.i32(pending_acks_);
  snap::save_timer(out, backoff_timer_);
  snap::save_timer(out, ack_timer_);
  snap::save_timer(out, tx_end_timer_);
  snap::save_timer(out, nav_timer_);
  rng_.save_state(out);
  out.u32(next_mac_seq_);
  out.boolean(dense_dup_table_);
  out.u64(last_delivered_seq_.size());
  for (std::uint32_t s : last_delivered_seq_) out.u32(s);
  sparse_delivered_seq_.save_state(
      out, [](snap::Serializer& o, std::uint32_t s) { o.u32(s); });
  out.u64(stats_.frames_sent);
  out.u64(stats_.frames_failed);
  out.u64(stats_.transmissions);
  out.u64(stats_.retries);
  out.u64(stats_.cca_busy_defers);
  out.u64(stats_.frames_received);
  out.u64(stats_.duplicates);
  out.u64(stats_.acks_sent);
  out.end();
}

}  // namespace essat::mac
