// Discrete-event simulator: a virtual clock plus an event queue.
//
// All substrates (channel, MAC, radio, query service, Safe Sleep) schedule
// callbacks against one Simulator instance; there is no wall-clock anywhere
// in the library.
#pragma once

#include <functional>

#include "src/sim/event_queue.h"
#include "src/util/time.h"

namespace essat::sim {

class Simulator {
 public:
  using Callback = EventQueue::Callback;

  // Current virtual time. Starts at 0.
  util::Time now() const { return now_; }

  // Schedules `cb` at absolute time `t` (clamped to `now()` if in the past).
  EventId schedule_at(util::Time t, Callback cb);
  // Schedules `cb` after `delay` (clamped to 0 if negative).
  EventId schedule_in(util::Time delay, Callback cb);
  void cancel(EventId id) { queue_.cancel(id); }

  // Runs events until the queue empties or `stop()` is called.
  void run();
  // Runs events with timestamp <= `end`, then advances the clock to `end`.
  void run_until(util::Time end);
  // Stops the current run() / run_until() after the in-flight event returns.
  void stop() { stopped_ = true; }

  std::size_t pending_events() const { return queue_.size(); }
  std::uint64_t executed_events() const { return executed_; }

 private:
  util::Time now_ = util::Time::zero();
  EventQueue queue_;
  bool stopped_ = false;
  std::uint64_t executed_ = 0;
};

}  // namespace essat::sim
