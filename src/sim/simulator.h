// Discrete-event simulator: a virtual clock plus an event queue.
//
// All substrates (channel, MAC, radio, query service, Safe Sleep) schedule
// callbacks against one Simulator instance; there is no wall-clock anywhere
// in the library. Callbacks are sim::InlineCallback — captures live in a
// 48-byte in-object buffer, so scheduling never heap-allocates (see
// inline_callback.h for the SBO contract).
#pragma once

#include "src/obs/tracer.h"
#include "src/sim/event_queue.h"
#include "src/util/time.h"

namespace essat::snap {
class Serializer;
}  // namespace essat::snap

namespace essat::sim {

class Simulator {
 public:
  using Callback = EventQueue::Callback;

  // Current virtual time. Starts at 0.
  util::Time now() const { return now_; }

  // Schedules `cb` at absolute time `t` (clamped to `now()` if in the past).
  EventId schedule_at(util::Time t, Callback cb);
  // Schedules `cb` after `delay` (clamped to 0 if negative).
  EventId schedule_in(util::Time delay, Callback cb);
  void cancel(EventId id) {
    ESSAT_TRACE(*this, obs::TraceType::kEvCancel, -1, 0, id, 0);
    queue_.cancel(id);
  }
  // Re-times a pending event in place (see EventQueue::rearm); `t` is
  // clamped to `now()` so a stale re-arm can never fire in the past.
  bool rearm(EventId id, util::Time t);

  // Runs events until the queue empties or `stop()` is called.
  void run();
  // Runs events with timestamp <= `end`, then advances the clock to `end`.
  void run_until(util::Time end);
  // Stops the current run() / run_until() after the in-flight event returns.
  void stop() { stopped_ = true; }

  std::size_t pending_events() const { return queue_.size(); }
  // High-water mark of concurrently pending events over the whole run.
  std::size_t peak_pending_events() const { return queue_.peak_live(); }
  std::uint64_t executed_events() const { return executed_; }

  // Pre-sizes the event queue for the expected concurrently-live event
  // population so steady-state scheduling never reallocates.
  void reserve_events(std::size_t expected_events) {
    queue_.reserve(expected_events);
  }

  // The run's tracer, or nullptr (the default: tracing off). Installed by
  // the harness for the run's lifetime; every instrumented component reaches
  // it through its Simulator reference via ESSAT_TRACE.
  obs::Tracer* tracer() const { return tracer_; }
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  // Snapshot hook: clock, executed-event count, and the queue's live-event
  // digest. The tracer is observability wiring, not simulation state.
  void save_state(snap::Serializer& out) const;

 private:
  util::Time now_ = util::Time::zero();
  EventQueue queue_;
  bool stopped_ = false;
  std::uint64_t executed_ = 0;
  obs::Tracer* tracer_ = nullptr;
};

}  // namespace essat::sim
