// Small-buffer, move-only replacement for std::function<void()> on the
// event hot path.
//
// Every simulation event used to carry a std::function whose capture —
// anything past libstdc++'s 16-byte inline buffer — was heap-allocated on
// push and freed on fire/cancel. At millions of events per run the
// allocator became a first-order cost (see README "Performance").
// InlineCallback stores the callable in a 48-byte in-object buffer (the
// whole object is one 64-byte cache line with the vtable pointer) and
// refuses, at compile time, captures that would not fit: there is NO heap
// fallback, so a capture that compiles is guaranteed allocation-free.
//
// The SBO contract (what a scheduling capture may hold):
//  * up to kCapacity (48) bytes of captured state, max_align_t-aligned;
//  * the callable must be nothrow-move-constructible (lambdas capturing
//    pointers, PODs, shared_ptr/PacketRef, std::function, or SmallVector
//    all qualify);
//  * move-only is fine — InlineCallback itself never copies.
// Oversized captures fail the static_assert below; restructure them to
// capture a pointer/handle (e.g. net::PacketRef instead of a Packet).
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace essat::sim {

class InlineCallback {
 public:
  // 48 bytes covers the widest capture in the tree (query_agent's
  // [this, &qs, k, contributions, update]) and, with the vtable pointer,
  // makes sizeof(InlineCallback) exactly one cache line — the event
  // queue's slot table stays one line per callback.
  static constexpr std::size_t kCapacity = 48;

  InlineCallback() = default;
  InlineCallback(std::nullptr_t) {}  // NOLINT: implicit, mirrors std::function

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineCallback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  InlineCallback(F&& f) {  // NOLINT: implicit, mirrors std::function
    using Fn = std::decay_t<F>;
    static_assert(sizeof(Fn) <= kCapacity,
                  "capture too large for InlineCallback's inline buffer — "
                  "capture a pointer/handle instead (e.g. net::PacketRef, "
                  "not a Packet) or raise kCapacity");
    static_assert(alignof(Fn) <= alignof(std::max_align_t),
                  "over-aligned captures are not supported");
    static_assert(std::is_nothrow_move_constructible_v<Fn>,
                  "callables stored in events must be nothrow-movable");
    ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
    ops_ = &ops_for_<Fn>;
  }

  InlineCallback(InlineCallback&& other) noexcept { move_from_(other); }
  InlineCallback& operator=(InlineCallback&& other) noexcept {
    if (this != &other) {
      reset();
      move_from_(other);
    }
    return *this;
  }
  InlineCallback& operator=(std::nullptr_t) {
    reset();
    return *this;
  }

  InlineCallback(const InlineCallback&) = delete;
  InlineCallback& operator=(const InlineCallback&) = delete;

  ~InlineCallback() { reset(); }

  explicit operator bool() const { return ops_ != nullptr; }
  friend bool operator==(const InlineCallback& cb, std::nullptr_t) {
    return !cb;
  }
  friend bool operator!=(const InlineCallback& cb, std::nullptr_t) {
    return static_cast<bool>(cb);
  }

  // Precondition: non-null. The callable stays alive during the call, so
  // it may destroy/replace this InlineCallback's owner (the usual
  // fire-then-rearm pattern moves the callback out first).
  void operator()() { ops_->invoke(buf_); }

  void reset() {
    if (ops_ != nullptr) {
      if (ops_->destroy != nullptr) ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    // Move-construct dst from src, then destroy src. Null for trivially
    // copyable callables (the common [this]/POD captures): relocation is a
    // straight buffer copy and destruction is a no-op, so the hot path
    // skips the indirect calls entirely.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void*);  // null iff trivially destructible
  };

  // Trivially copyable implies trivially destructible, so the two nulls
  // always travel together.
  template <typename Fn>
  static constexpr Ops ops_for_{
      [](void* p) { (*static_cast<Fn*>(p))(); },
      std::is_trivially_copyable_v<Fn>
          ? nullptr
          : +[](void* dst, void* src) {
              ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
              static_cast<Fn*>(src)->~Fn();
            },
      std::is_trivially_destructible_v<Fn>
          ? nullptr
          : +[](void* p) { static_cast<Fn*>(p)->~Fn(); },
  };

  void move_from_(InlineCallback& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      if (ops_->relocate != nullptr) {
        ops_->relocate(buf_, other.buf_);
      } else {
        // Fixed-size copy: cheaper than an indirect call and lets the
        // compiler vectorize. Trailing garbage past the callable is inert.
        __builtin_memcpy(buf_, other.buf_, kCapacity);
      }
      other.ops_ = nullptr;
    }
  }

  const Ops* ops_ = nullptr;
  alignas(std::max_align_t) unsigned char buf_[kCapacity];
};

}  // namespace essat::sim
