// Cancellable one-shot timer with RAII semantics: destroying (or re-arming)
// a Timer cancels any pending callback, so dangling fires are impossible as
// long as the Timer outlives its owner’s interest in the event.
#pragma once

#include <functional>

#include "src/sim/simulator.h"

namespace essat::sim {

class Timer {
 public:
  explicit Timer(Simulator& sim) : sim_{&sim} {}
  ~Timer() { cancel(); }

  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;
  Timer(Timer&& other) noexcept;
  Timer& operator=(Timer&& other) noexcept;

  // (Re)arms the timer to fire at absolute time `t`. A pending arm is
  // cancelled first.
  void arm_at(util::Time t, std::function<void()> cb);
  void arm_in(util::Time delay, std::function<void()> cb);
  void cancel();

  bool armed() const { return id_ != kInvalidEventId; }
  // Absolute fire time of the pending arm; meaningful only when armed().
  util::Time fire_time() const { return fire_time_; }

 private:
  Simulator* sim_;
  EventId id_ = kInvalidEventId;
  util::Time fire_time_ = util::Time::zero();
};

}  // namespace essat::sim
