// Cancellable one-shot timer with RAII semantics: destroying (or re-arming)
// a Timer cancels any pending callback, so dangling fires are impossible as
// long as the Timer outlives its owner’s interest in the event.
//
// Hot-path shape: the queue slot holds only a thin [this] thunk; the user
// callback lives in the Timer itself (cb_). Re-arming an armed Timer takes
// the EventQueue::rearm fast path — the slot, its thunk, and the EventId
// are reused; only the heap position changes — instead of cancel+push.
// Arm times in the past are clamped to now() (debug-asserted), so a stale
// re-arm can never fire out of order.
#pragma once

#include "src/sim/simulator.h"

namespace essat::sim {

class Timer {
 public:
  using Callback = Simulator::Callback;

  explicit Timer(Simulator& sim) : sim_{&sim} {}
  ~Timer() { cancel(); }

  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;
  Timer(Timer&& other) noexcept;
  Timer& operator=(Timer&& other) noexcept;

  // (Re)arms the timer to fire at absolute time `t` (clamped to now()). A
  // pending arm is retimed in place; its queued slot is reused.
  void arm_at(util::Time t, Callback cb);
  void arm_in(util::Time delay, Callback cb);
  // Inline: the MAC cancels timers on nearly every state transition, most
  // of them already-disarmed no-ops that must cost two branches, not a
  // cross-TU call.
  void cancel() {
    if (id_ != kInvalidEventId) {
      sim_->cancel(id_);
      id_ = kInvalidEventId;
    }
    cb_ = nullptr;  // free the capture eagerly, as the old closure-owning arm did
  }

  bool armed() const { return id_ != kInvalidEventId; }
  // Absolute fire time of the pending arm; meaningful only when armed().
  util::Time fire_time() const { return fire_time_; }

 private:
  void fire_();

  Simulator* sim_;
  EventId id_ = kInvalidEventId;
  util::Time fire_time_ = util::Time::zero();
  Callback cb_;
};

}  // namespace essat::sim
