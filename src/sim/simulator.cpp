#include "src/sim/simulator.h"

#include <algorithm>

#include "src/snap/serializer.h"

namespace essat::sim {

EventId Simulator::schedule_at(util::Time t, Callback cb) {
  const util::Time at = std::max(t, now_);
  const EventId id = queue_.push(at, std::move(cb));
  ESSAT_TRACE(*this, obs::TraceType::kEvPush, -1, 0, id,
              static_cast<std::uint64_t>(at.ns()));
  return id;
}

EventId Simulator::schedule_in(util::Time delay, Callback cb) {
  return schedule_at(now_ + std::max(delay, util::Time::zero()), std::move(cb));
}

bool Simulator::rearm(EventId id, util::Time t) {
  const util::Time at = std::max(t, now_);
  const bool ok = queue_.rearm(id, at);
  if (ok) {
    ESSAT_TRACE(*this, obs::TraceType::kEvRearm, -1, 0, id,
                static_cast<std::uint64_t>(at.ns()));
  }
  return ok;
}

void Simulator::run() {
  stopped_ = false;
  util::Time t;
  Callback cb;
  EventId id = kInvalidEventId;
  while (!stopped_ && queue_.pop_until(util::Time::max(), t, cb, id)) {
    now_ = t;
    ++executed_;
    ESSAT_TRACE(*this, obs::TraceType::kEvPop, -1, 0, id, 0);
    cb();
    cb = nullptr;  // release the capture before the next pop overwrites it
  }
}

void Simulator::run_until(util::Time end) {
  stopped_ = false;
  util::Time t;
  Callback cb;
  EventId id = kInvalidEventId;
  while (!stopped_ && queue_.pop_until(end, t, cb, id)) {
    now_ = t;
    ++executed_;
    ESSAT_TRACE(*this, obs::TraceType::kEvPop, -1, 0, id, 0);
    cb();
    cb = nullptr;
  }
  if (!stopped_) now_ = std::max(now_, end);
}

void Simulator::save_state(snap::Serializer& out) const {
  out.begin("SIMU");
  out.time(now_);
  out.u64(executed_);
  queue_.save_state(out);
  out.end();
}

}  // namespace essat::sim
