#include "src/sim/simulator.h"

#include <algorithm>

namespace essat::sim {

EventId Simulator::schedule_at(util::Time t, Callback cb) {
  return queue_.push(std::max(t, now_), std::move(cb));
}

EventId Simulator::schedule_in(util::Time delay, Callback cb) {
  return schedule_at(now_ + std::max(delay, util::Time::zero()), std::move(cb));
}

bool Simulator::rearm(EventId id, util::Time t) {
  return queue_.rearm(id, std::max(t, now_));
}

void Simulator::run() {
  stopped_ = false;
  util::Time t;
  Callback cb;
  while (!stopped_ && queue_.pop_until(util::Time::max(), t, cb)) {
    now_ = t;
    ++executed_;
    cb();
    cb = nullptr;  // release the capture before the next pop overwrites it
  }
}

void Simulator::run_until(util::Time end) {
  stopped_ = false;
  util::Time t;
  Callback cb;
  while (!stopped_ && queue_.pop_until(end, t, cb)) {
    now_ = t;
    ++executed_;
    cb();
    cb = nullptr;
  }
  if (!stopped_) now_ = std::max(now_, end);
}

}  // namespace essat::sim
