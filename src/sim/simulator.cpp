#include "src/sim/simulator.h"

#include <algorithm>

namespace essat::sim {

EventId Simulator::schedule_at(util::Time t, Callback cb) {
  return queue_.push(std::max(t, now_), std::move(cb));
}

EventId Simulator::schedule_in(util::Time delay, Callback cb) {
  return schedule_at(now_ + std::max(delay, util::Time::zero()), std::move(cb));
}

void Simulator::run() {
  stopped_ = false;
  while (!stopped_ && !queue_.empty()) {
    auto [t, cb] = queue_.pop();
    now_ = t;
    ++executed_;
    cb();
  }
}

void Simulator::run_until(util::Time end) {
  stopped_ = false;
  while (!stopped_ && !queue_.empty() && queue_.next_time() <= end) {
    auto [t, cb] = queue_.pop();
    now_ = t;
    ++executed_;
    cb();
  }
  if (!stopped_) now_ = std::max(now_, end);
}

}  // namespace essat::sim
