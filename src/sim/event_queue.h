// Priority queue of timestamped events with O(log n) insertion and O(1)
// cancellation. Events at the same timestamp fire in insertion order, which
// makes simulation runs fully deterministic for a given seed.
//
// Implementation: heap entries are small PODs (time, seq, slot); the
// callback and liveness state live in a slot table indexed directly by the
// low half of the EventId. Cancellation flips the slot's state — no hash
// lookups anywhere on the hot path — and cancelled entries are skimmed off
// the heap lazily when they surface. Slots are recycled through a free
// list; a generation counter folded into the EventId makes stale cancels
// (of an already-fired or recycled id) harmless no-ops.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

#include "src/util/time.h"

namespace essat::sim {

using EventId = std::uint64_t;
inline constexpr EventId kInvalidEventId = 0;

class EventQueue {
 public:
  using Callback = std::function<void()>;

  // Enqueues `cb` to fire at `t`. Returns a handle usable with `cancel`.
  EventId push(util::Time t, Callback cb);
  // Marks an event as cancelled; it is discarded when it reaches the head.
  // Cancelling an unknown or already-fired id is a harmless no-op.
  void cancel(EventId id);

  bool empty() const;
  // Timestamp of the next live event. Precondition: !empty().
  util::Time next_time() const;
  // Removes and returns the next live event. Precondition: !empty().
  std::pair<util::Time, Callback> pop();

  std::size_t size() const { return live_; }  // live events only

 private:
  struct Entry {
    util::Time time;
    std::uint64_t seq = 0;
    std::uint32_t slot = 0;
    // Min-heap on (time, seq): std::priority_queue is a max-heap, so the
    // comparison is reversed.
    bool operator<(const Entry& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  struct Slot {
    Callback cb;
    std::uint32_t generation = 0;
    bool pending = false;  // pushed, not yet popped or cancelled
  };

  // EventId layout: (slot + 1) in the high 32 bits, generation in the low
  // 32. The +1 keeps every valid id distinct from kInvalidEventId.
  static EventId encode_(std::uint32_t slot, std::uint32_t generation) {
    return (static_cast<EventId>(slot) + 1) << 32 | generation;
  }

  // Pops cancelled entries off the head; they are dead, so this is
  // observably const.
  void drop_cancelled_() const;
  void release_slot_(std::uint32_t slot) const;

  mutable std::priority_queue<Entry> heap_;
  mutable std::vector<Slot> slots_;
  mutable std::vector<std::uint32_t> free_slots_;
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;
};

}  // namespace essat::sim
