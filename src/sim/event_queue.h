// Priority queue of timestamped events with O(log n) insertion and lazy
// cancellation. Events at the same timestamp fire in insertion order, which
// makes simulation runs fully deterministic for a given seed.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/util/time.h"

namespace essat::sim {

using EventId = std::uint64_t;
inline constexpr EventId kInvalidEventId = 0;

class EventQueue {
 public:
  using Callback = std::function<void()>;

  // Enqueues `cb` to fire at `t`. Returns a handle usable with `cancel`.
  EventId push(util::Time t, Callback cb);
  // Marks an event as cancelled; it is discarded when it reaches the head.
  // Cancelling an unknown or already-fired id is a harmless no-op.
  void cancel(EventId id);

  bool empty() const;
  // Timestamp of the next live event. Precondition: !empty().
  util::Time next_time() const;
  // Removes and returns the next live event. Precondition: !empty().
  std::pair<util::Time, Callback> pop();

  std::size_t size() const;  // live events only

 private:
  struct Entry {
    util::Time time;
    std::uint64_t seq = 0;
    EventId id = kInvalidEventId;
    Callback cb;
    // Min-heap on (time, seq): std::priority_queue is a max-heap, so the
    // comparison is reversed.
    bool operator<(const Entry& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  // Pops cancelled entries off the head; they are dead, so this is
  // observably const.
  void drop_cancelled_() const;

  mutable std::priority_queue<Entry> heap_;
  mutable std::unordered_set<EventId> cancelled_;
  std::unordered_set<EventId> live_;  // pushed, not yet popped or cancelled
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
};

}  // namespace essat::sim
