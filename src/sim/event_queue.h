// Calendar-wheel event scheduler with O(1) amortized insertion and pop,
// O(1) cancellation, and an O(1) in-place re-arm. Events at the same
// timestamp fire in insertion order, which makes simulation runs fully
// deterministic for a given seed.
//
// Structure: virtual time is cut into fixed-width buckets (16.4 us — the
// scale of MAC slots and inter-frame spaces); kBuckets consecutive buckets
// form one wheel epoch. Entries are 16-byte PODs (time, packed seq+slot)
// appended unsorted to their bucket; a bucket is sorted by (time, seq)
// once, when the drain cursor reaches it, so ordering costs O(n log b)
// over tiny contiguous runs instead of a binary heap's cache-hostile
// sift per operation. Events beyond the current epoch wait in an unsorted
// overflow list and migrate wheel-ward at epoch boundaries; an occupancy
// bitmap skips empty buckets in O(1), so sparse stretches (sleeping
// networks) cost nothing. The pop sequence is the total order (time, seq)
// regardless of bucket geometry — determinism never depends on the wheel
// parameters.
//
// Callbacks and liveness state live in a slot table indexed directly by
// the high half of the EventId, split into a 16-byte metadata record
// (four per cache line, all the skim loop touches) and a 64-byte
// InlineCallback (loaded exactly once, on pop). Pushing never touches the
// heap allocator; with reserve() sized to the expected event population,
// steady-state push/pop is allocation-free. Cancellation flips the slot's
// state — no hash lookups anywhere — and dead entries are skimmed when
// they surface. rearm() retimes a pending event without releasing its
// slot or touching its callback: the old wheel entry becomes a tombstone
// (its seq no longer matches the slot's live seq) and a fresh entry is
// filed, which is exactly what cancel+push would have produced minus the
// callback churn. Slots are recycled through a free list; a generation
// counter folded into the EventId makes stale cancels (of an already-
// fired or recycled id) harmless no-ops.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "src/sim/inline_callback.h"
#include "src/util/time.h"

namespace essat::snap {
class Serializer;
}  // namespace essat::snap

namespace essat::sim {

using EventId = std::uint64_t;
inline constexpr EventId kInvalidEventId = 0;

class EventQueue {
 public:
  using Callback = InlineCallback;

  // Enqueues `cb` to fire at `t`. Returns a handle usable with `cancel`
  // and `rearm`.
  EventId push(util::Time t, Callback cb);
  // Marks an event as cancelled; it is discarded when it reaches the head.
  // Cancelling an unknown or already-fired id is a harmless no-op.
  void cancel(EventId id);
  // Re-times a still-pending event, keeping its slot, callback, and id.
  // Returns false (a no-op) if `id` is stale — already fired, cancelled,
  // or recycled — in which case the caller pushes a fresh event.
  // Equivalent to cancel+push with the same callback: the new position
  // takes a fresh insertion sequence number, so same-timestamp FIFO
  // ordering is preserved bit-for-bit.
  bool rearm(EventId id, util::Time t);

  bool empty() const;
  // Timestamp of the next live event. Precondition: !empty().
  util::Time next_time() const;
  // Removes and returns the next live event (the callback is moved out of
  // its slot, never copied). Precondition: !empty().
  std::pair<util::Time, Callback> pop();
  // Fused empty()/next_time()/pop() for the simulator's run loop: pops the
  // next live event into (t, cb, id) iff its timestamp is <= `limit`. One
  // head skim instead of three. `id` is the popped event's handle (the same
  // value push() returned), so tracing can correlate pops with pushes.
  bool pop_until(util::Time limit, util::Time& t, Callback& cb, EventId& id);

  std::size_t size() const { return live_; }  // live events only
  // High-water mark of live events — the event population a harness should
  // reserve() for on the next comparable run.
  std::size_t peak_live() const { return peak_live_; }

  // Pre-sizes the slot table, free list, overflow list, and wheel-bucket
  // capacities for `expected_events` concurrently-live events, so
  // steady-state operation never reallocates.
  void reserve(std::size_t expected_events);

  // Snapshot hook: serializes the live-event digest — every pending
  // (time, seq) pair in pop order, plus the sequence counter and live/peak
  // counts. Callbacks are code, not data; restore replays the scenario to
  // the snapshot barrier (rebuilding identical callbacks along the way) and
  // this digest is what the attestation byte-compares. Wheel geometry
  // (bucket cursors, free lists) is excluded: the digest plus next_seq_
  // fully determines all future pop ordering.
  void save_state(snap::Serializer& out) const;

 private:
  // 16-byte wheel entry: the slot index rides in the low bits of the seq
  // word (seq is unique, so comparing the packed word IS comparing seq),
  // which keeps bucket sorts and migrations pure 16-byte POD shuffles.
  struct Entry {
    util::Time time;
    std::uint64_t seq_slot = 0;

    static constexpr int kSlotBits = 24;  // 16.7M concurrent events
    static constexpr std::uint64_t kSlotMask = (1ull << kSlotBits) - 1;
    static Entry make(util::Time t, std::uint64_t seq, std::uint32_t slot) {
      return Entry{t, seq << kSlotBits | slot};
    }
    std::uint32_t slot() const {
      return static_cast<std::uint32_t>(seq_slot & kSlotMask);
    }
    std::uint64_t seq() const { return seq_slot >> kSlotBits; }
    // Fires strictly before `other`. (time, seq) is a total order — seq is
    // unique — so the pop sequence is independent of the wheel's internal
    // layout; determinism never depends on the bucket geometry.
    bool before(const Entry& other) const {
      if (time != other.time) return time < other.time;
      return seq_slot < other.seq_slot;
    }
  };

  // Slot bookkeeping, split from the callbacks so the head-skimming loop
  // (drop_dead_) touches only this 16-byte record — four per cache line —
  // and the 64-byte callback line is loaded exactly once, on pop.
  struct SlotMeta {
    std::uint64_t live_seq = 0;   // seq of the entry that may fire this slot
    std::uint32_t generation = 0;
    // Bit 31: pending (pushed, not yet popped or cancelled). Bits 0..30:
    // count of wheel entries (live + tombstone) pointing at this slot.
    std::uint32_t entries_pending = 0;

    static constexpr std::uint32_t kPendingBit = 0x80000000u;
    bool pending() const { return (entries_pending & kPendingBit) != 0; }
    void set_pending(bool p) {
      entries_pending = p ? entries_pending | kPendingBit
                          : entries_pending & ~kPendingBit;
    }
    std::uint32_t entries() const { return entries_pending & ~kPendingBit; }
  };

  // EventId layout: (slot + 1) in the high 32 bits, generation in the low
  // 32. The +1 keeps every valid id distinct from kInvalidEventId.
  static EventId encode_(std::uint32_t slot, std::uint32_t generation) {
    return (static_cast<EventId>(slot) + 1) << 32 | generation;
  }
  // Slot index for a valid-looking id, or >= meta_.size() when out of range.
  std::uint32_t decode_slot_(EventId id) const {
    const std::uint64_t slot_plus_1 = id >> 32;
    return slot_plus_1 == 0 ? static_cast<std::uint32_t>(meta_.size())
                            : static_cast<std::uint32_t>(slot_plus_1 - 1);
  }

  // --- Calendar wheel geometry -------------------------------------------
  // 16.4 us buckets; 1024 of them cover a 16.8 ms epoch — wide enough that
  // MAC timing (slots, SIFS/DIFS, backoff, ACK timeouts) stays in-wheel
  // and only second-scale protocol timers take the overflow path.
  static constexpr int kBucketShift = 14;  // bucket width = 2^14 ns
  static constexpr std::size_t kBucketsLog2 = 10;
  static constexpr std::size_t kBuckets = 1u << kBucketsLog2;  // per epoch
  static constexpr std::size_t kBitmapWords = kBuckets / 64;

  // Global bucket index of `t` (negative times clamp to bucket 0; the
  // simulator never schedules in the past, this only guards raw users).
  static std::int64_t bucket_of_(util::Time t) {
    return (t.ns() < 0 ? 0 : t.ns()) >> kBucketShift;
  }
  static std::int64_t epoch_of_(std::int64_t g) {
    return g >> kBucketsLog2;
  }

  // Files an entry into the wheel, the overflow list, or — for times at or
  // behind the drain cursor — the sorted remainder of the current bucket.
  void file_(Entry e) const;
  void bitmap_set_(std::size_t slot) const {
    occupancy_[slot >> 6] |= 1ull << (slot & 63);
  }
  void bitmap_clear_(std::size_t slot) const {
    occupancy_[slot >> 6] &= ~(1ull << (slot & 63));
  }
  // First occupied bucket at position >= from, or kBuckets when none.
  std::size_t bitmap_find_from_(std::size_t from) const;
  // Advances the drain cursor to the next entry (sorting its bucket on
  // arrival, migrating overflow entries at epoch boundaries). Returns
  // false when no entries remain anywhere.
  bool ensure_head_() const;
  // Precondition: ensure_head_() returned true.
  const Entry& head_() const { return buckets_[cur_slot_()][drain_]; }
  void pop_head_() const { ++drain_; }
  std::size_t cur_slot_() const {
    return static_cast<std::size_t>(cur_g_) & (kBuckets - 1);
  }

  // Skims dead entries (cancelled, fired, or rearm tombstones) off the
  // head; they are unobservable, so this is observably const. Returns
  // false when no live entry remains.
  bool drop_dead_() const;
  // One wheel entry referencing `slot` has surfaced; release the slot once
  // no entry references it and nothing is pending.
  void entry_surfaced_(std::uint32_t slot) const;
  void release_slot_(std::uint32_t slot) const;

  mutable std::vector<std::vector<Entry>> buckets_{kBuckets};
  mutable std::uint64_t occupancy_[kBitmapWords] = {};
  mutable std::vector<Entry> far_;     // entries beyond the current epoch
  mutable std::int64_t cur_g_ = 0;     // global bucket index being drained
  mutable std::size_t drain_ = 0;      // next position in the current bucket
  // The current bucket is sorted from drain_ onward — by insertion for
  // entries filed at the cursor, or by the deferred bulk sort below.
  mutable bool cur_sorted_ = true;
  mutable std::vector<SlotMeta> meta_;
  mutable std::vector<Callback> cbs_;  // parallel to meta_
  mutable std::vector<std::uint32_t> free_slots_;
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;
  std::size_t peak_live_ = 0;
};

}  // namespace essat::sim
