#include "src/sim/event_queue.h"

#include <cassert>

namespace essat::sim {

EventId EventQueue::push(util::Time t, Callback cb) {
  std::uint32_t slot;
  if (free_slots_.empty()) {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  } else {
    slot = free_slots_.back();
    free_slots_.pop_back();
  }
  Slot& s = slots_[slot];
  s.cb = std::move(cb);
  s.pending = true;
  heap_.push(Entry{t, next_seq_++, slot});
  ++live_;
  return encode_(slot, s.generation);
}

void EventQueue::cancel(EventId id) {
  if (id == kInvalidEventId) return;
  const std::uint64_t slot_plus_1 = id >> 32;
  if (slot_plus_1 == 0 || slot_plus_1 > slots_.size()) return;
  const auto slot = static_cast<std::uint32_t>(slot_plus_1 - 1);
  Slot& s = slots_[slot];
  // Only a pending event of the matching generation gets cancelled; a
  // recycled slot (different generation) or an already-fired id is a no-op.
  if (!s.pending || s.generation != static_cast<std::uint32_t>(id)) return;
  s.pending = false;
  s.cb = nullptr;  // free the closure eagerly; the heap entry is a tombstone
  --live_;
}

void EventQueue::release_slot_(std::uint32_t slot) const {
  ++slots_[slot].generation;
  free_slots_.push_back(slot);
}

void EventQueue::drop_cancelled_() const {
  while (!heap_.empty() && !slots_[heap_.top().slot].pending) {
    release_slot_(heap_.top().slot);
    heap_.pop();
  }
}

bool EventQueue::empty() const {
  drop_cancelled_();
  return heap_.empty();
}

util::Time EventQueue::next_time() const {
  drop_cancelled_();
  assert(!heap_.empty());
  return heap_.top().time;
}

std::pair<util::Time, EventQueue::Callback> EventQueue::pop() {
  drop_cancelled_();
  assert(!heap_.empty());
  const Entry top = heap_.top();  // POD copy; the callback lives in the slot
  Slot& s = slots_[top.slot];
  std::pair<util::Time, Callback> out{top.time, std::move(s.cb)};
  s.cb = nullptr;
  s.pending = false;
  release_slot_(top.slot);
  heap_.pop();
  --live_;
  return out;
}

}  // namespace essat::sim
