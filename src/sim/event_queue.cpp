#include "src/sim/event_queue.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "src/snap/serializer.h"

namespace essat::sim {

void EventQueue::file_(Entry e) const {
  const std::int64_t g = bucket_of_(e.time);
  if (g <= cur_g_) {
    // At or behind the drain cursor: keep the current bucket's undrained
    // tail sorted so the entry fires in (time, seq) order. When the bucket
    // is awaiting its deferred bulk sort, appending is enough.
    auto& b = buckets_[cur_slot_()];
    // Fast path: most cursor-bucket pushes (propagation-delay events a few
    // microseconds out) land at or past the bucket's current tail.
    if (!cur_sorted_ || b.size() == drain_ || !e.before(b.back())) {
      b.push_back(e);
      return;
    }
    const auto it = std::upper_bound(
        b.begin() + static_cast<std::ptrdiff_t>(drain_), b.end(), e,
        [](const Entry& a, const Entry& c) { return a.before(c); });
    b.insert(it, e);
    return;
  }
  if (epoch_of_(g) == epoch_of_(cur_g_)) {
    const std::size_t slot = static_cast<std::size_t>(g) & (kBuckets - 1);
    buckets_[slot].push_back(e);
    bitmap_set_(slot);
    return;
  }
  far_.push_back(e);
}

std::size_t EventQueue::bitmap_find_from_(std::size_t from) const {
  if (from >= kBuckets) return kBuckets;
  std::size_t word = from >> 6;
  std::uint64_t bits = occupancy_[word] & (~0ull << (from & 63));
  for (;;) {
    if (bits != 0) {
      return (word << 6) + static_cast<std::size_t>(__builtin_ctzll(bits));
    }
    if (++word == kBitmapWords) return kBuckets;
    bits = occupancy_[word];
  }
}

bool EventQueue::ensure_head_() const {
  for (;;) {
    auto& b = buckets_[cur_slot_()];
    if (drain_ < b.size()) {
      if (!cur_sorted_) {
        std::sort(b.begin() + static_cast<std::ptrdiff_t>(drain_), b.end(),
                  [](const Entry& a, const Entry& c) { return a.before(c); });
        cur_sorted_ = true;
      }
      return true;
    }
    // Current bucket exhausted: recycle it (capacity is kept, so the wheel
    // stops allocating once warm) and hop to the next occupied bucket.
    b.clear();
    drain_ = 0;
    bitmap_clear_(cur_slot_());
    const std::size_t next = bitmap_find_from_(cur_slot_() + 1);
    if (next < kBuckets) {
      cur_g_ += static_cast<std::int64_t>(next - cur_slot_());
      cur_sorted_ = false;
      continue;
    }
    // Epoch drained. Jump straight to the earliest overflow epoch and pull
    // its entries wheel-ward; everything later keeps waiting in far_.
    if (far_.empty()) return false;
    std::int64_t min_epoch = std::numeric_limits<std::int64_t>::max();
    for (const Entry& e : far_) {
      min_epoch = std::min(min_epoch, epoch_of_(bucket_of_(e.time)));
    }
    cur_g_ = min_epoch << kBucketsLog2;
    cur_sorted_ = false;
    for (std::size_t i = 0; i < far_.size();) {
      const std::int64_t g = bucket_of_(far_[i].time);
      if (epoch_of_(g) == min_epoch) {
        const std::size_t slot = static_cast<std::size_t>(g) & (kBuckets - 1);
        buckets_[slot].push_back(far_[i]);
        bitmap_set_(slot);
        far_[i] = far_.back();
        far_.pop_back();
      } else {
        ++i;
      }
    }
  }
}

void EventQueue::reserve(std::size_t expected_events) {
  meta_.reserve(expected_events);
  cbs_.reserve(expected_events);
  free_slots_.reserve(expected_events);
  far_.reserve(expected_events);
  // Seed every wheel bucket with a little capacity: bucket vectors keep
  // their storage across epochs, so this one-time 64 KiB spend makes the
  // first epoch as allocation-free as every later one (buckets only grow
  // past it where the workload genuinely clusters, and then stay grown).
  for (auto& b : buckets_) {
    if (b.capacity() < 4) b.reserve(4);
  }
}

EventId EventQueue::push(util::Time t, Callback cb) {
  std::uint32_t slot;
  if (free_slots_.empty()) {
    slot = static_cast<std::uint32_t>(meta_.size());
    meta_.emplace_back();
    cbs_.emplace_back();
  } else {
    slot = free_slots_.back();
    free_slots_.pop_back();
  }
  assert(slot <= Entry::kSlotMask && "live-event population exceeds 2^24");
  // Entry packs seq into 64 - kSlotBits bits; past that the liveness
  // compare in drop_dead_ would treat every entry as a tombstone.
  assert(next_seq_ < (1ull << (64 - Entry::kSlotBits)) &&
         "event seq space exhausted (~1.1e12 pushes per queue)");
  SlotMeta& s = meta_[slot];
  cbs_[slot] = std::move(cb);
  s.live_seq = next_seq_;
  assert(s.entries() == 0);
  s.entries_pending = 1 | SlotMeta::kPendingBit;
  file_(Entry::make(t, next_seq_++, slot));
  ++live_;
  peak_live_ = std::max(peak_live_, live_);
  return encode_(slot, s.generation);
}

void EventQueue::cancel(EventId id) {
  if (id == kInvalidEventId) return;
  const std::uint32_t slot = decode_slot_(id);
  if (slot >= meta_.size()) return;
  SlotMeta& s = meta_[slot];
  // Only a pending event of the matching generation gets cancelled; a
  // recycled slot (different generation) or an already-fired id is a no-op.
  if (!s.pending() || s.generation != static_cast<std::uint32_t>(id)) return;
  s.set_pending(false);
  cbs_[slot] = nullptr;  // free the closure eagerly; wheel entries are tombstones
  --live_;
}

bool EventQueue::rearm(EventId id, util::Time t) {
  if (id == kInvalidEventId) return false;
  const std::uint32_t slot = decode_slot_(id);
  if (slot >= meta_.size()) return false;
  SlotMeta& s = meta_[slot];
  if (!s.pending() || s.generation != static_cast<std::uint32_t>(id)) {
    return false;
  }
  // The previous wheel entry's seq stops matching live_seq, turning it
  // into a tombstone that drop_dead_ skims when it surfaces. The slot (and
  // its callback) stay exactly where they are.
  s.live_seq = next_seq_;
  ++s.entries_pending;  // pending bit unchanged, entry count +1
  file_(Entry::make(t, next_seq_++, slot));
  return true;
}

void EventQueue::entry_surfaced_(std::uint32_t slot) const {
  SlotMeta& s = meta_[slot];
  assert(s.entries() > 0);
  --s.entries_pending;
  if (s.entries_pending == 0) release_slot_(slot);  // no entries, not pending
}

void EventQueue::release_slot_(std::uint32_t slot) const {
  ++meta_[slot].generation;
  free_slots_.push_back(slot);
}

bool EventQueue::drop_dead_() const {
  while (ensure_head_()) {
    const Entry& top = head_();
    const SlotMeta& s = meta_[top.slot()];
    if (s.pending() && s.live_seq == top.seq()) return true;  // live head
    entry_surfaced_(top.slot());
    pop_head_();
  }
  return false;
}

bool EventQueue::empty() const { return !drop_dead_(); }

util::Time EventQueue::next_time() const {
  const bool live = drop_dead_();
  assert(live);
  (void)live;
  return head_().time;
}

std::pair<util::Time, EventQueue::Callback> EventQueue::pop() {
  const bool live = drop_dead_();
  assert(live);
  (void)live;
  const Entry top = head_();  // POD copy; the callback lives in the slot
  SlotMeta& s = meta_[top.slot()];
  // Moving out leaves the slot's callback null — no copy, no destructor
  // work beyond the moved-from shell.
  std::pair<util::Time, Callback> out{top.time, std::move(cbs_[top.slot()])};
  s.set_pending(false);
  entry_surfaced_(top.slot());
  pop_head_();
  --live_;
  return out;
}

bool EventQueue::pop_until(util::Time limit, util::Time& t, Callback& cb,
                           EventId& id) {
  if (!drop_dead_()) return false;
  const Entry top = head_();
  if (top.time > limit) return false;
  SlotMeta& s = meta_[top.slot()];
  t = top.time;
  id = encode_(top.slot(), s.generation);  // before surfacing recycles the slot
  cb = std::move(cbs_[top.slot()]);
  s.set_pending(false);
  entry_surfaced_(top.slot());
  pop_head_();
  --live_;
  return true;
}

void EventQueue::save_state(snap::Serializer& out) const {
  // Collect every live entry: an entry is live iff its slot is pending and
  // it carries the slot's current seq (rearm tombstones, cancelled, and
  // already-fired entries fail the seq match). Walking all buckets plus the
  // overflow list visits dead entries too; the filter drops them.
  std::vector<Entry> live;
  live.reserve(live_);
  auto consider = [&](const Entry& e) {
    const std::uint32_t slot = e.slot();
    if (slot < meta_.size() && meta_[slot].pending() &&
        meta_[slot].live_seq == e.seq()) {
      live.push_back(e);
    }
  };
  for (const auto& bucket : buckets_) {
    for (const Entry& e : bucket) consider(e);
  }
  for (const Entry& e : far_) consider(e);
  assert(live.size() == live_);
  // Pop order, independent of wheel geometry.
  std::sort(live.begin(), live.end(),
            [](const Entry& a, const Entry& b) { return a.before(b); });

  out.begin("EVTQ");
  out.u64(next_seq_);
  out.u64(live_);
  out.u64(peak_live_);
  for (const Entry& e : live) {
    out.time(e.time);
    out.u64(e.seq());
  }
  out.end();
}

}  // namespace essat::sim
