#include "src/sim/event_queue.h"

#include <cassert>

namespace essat::sim {

EventId EventQueue::push(util::Time t, Callback cb) {
  const EventId id = next_id_++;
  heap_.push(Entry{t, next_seq_++, id, std::move(cb)});
  live_.insert(id);
  return id;
}

void EventQueue::cancel(EventId id) {
  if (id == kInvalidEventId) return;
  // Only ids that are actually pending get a tombstone; cancelling an
  // already-fired or unknown id is a no-op.
  if (live_.erase(id) != 0) cancelled_.insert(id);
}

void EventQueue::drop_cancelled_() const {
  while (!heap_.empty()) {
    const auto it = cancelled_.find(heap_.top().id);
    if (it == cancelled_.end()) return;
    cancelled_.erase(it);
    heap_.pop();
  }
}

bool EventQueue::empty() const {
  drop_cancelled_();
  return heap_.empty();
}

util::Time EventQueue::next_time() const {
  drop_cancelled_();
  assert(!heap_.empty());
  return heap_.top().time;
}

std::pair<util::Time, EventQueue::Callback> EventQueue::pop() {
  drop_cancelled_();
  assert(!heap_.empty());
  // priority_queue::top() is const; the entry is moved out via const_cast,
  // which is safe because pop() immediately removes it.
  auto& top = const_cast<Entry&>(heap_.top());
  std::pair<util::Time, Callback> out{top.time, std::move(top.cb)};
  live_.erase(top.id);
  heap_.pop();
  return out;
}

std::size_t EventQueue::size() const { return live_.size(); }

}  // namespace essat::sim
