#include "src/sim/timer.h"

#include <algorithm>
#include <cassert>

namespace essat::sim {

// Moving an armed Timer cancels the pending callback: the scheduled thunk
// captures the Timer's address, which a move invalidates. Arms are cheap, so
// owners re-arm after container reallocation if needed. In practice Timers
// are armed only after their owner reaches its final address.
Timer::Timer(Timer&& other) noexcept : sim_{other.sim_} { other.cancel(); }

Timer& Timer::operator=(Timer&& other) noexcept {
  if (this != &other) {
    cancel();
    sim_ = other.sim_;
    other.cancel();
  }
  return *this;
}

void Timer::arm_at(util::Time t, Callback cb) {
  // Guard against scheduling in the past: a re-arm computed from stale
  // state (e.g. a NAV that already expired) must not fire before events
  // already popped for `now`. Clamping matches what Simulator::schedule_at
  // always did; the assert surfaces genuinely buggy callers in debug
  // builds without changing release behavior.
  assert(t >= sim_->now() && "Timer armed in the past; clamping to now()");
  fire_time_ = std::max(t, sim_->now());
  cb_ = std::move(cb);
  // Fast path: a pending arm keeps its queue slot (and the [this] thunk in
  // it) and is only re-timed. Bit-for-bit identical ordering to the old
  // cancel+push — the re-timed entry takes a fresh insertion seq either way.
  if (id_ != kInvalidEventId && sim_->rearm(id_, fire_time_)) return;
  id_ = sim_->schedule_at(fire_time_, [this] { fire_(); });
}

void Timer::arm_in(util::Time delay, Callback cb) {
  arm_at(sim_->now() + delay, std::move(cb));
}

void Timer::fire_() {
  id_ = kInvalidEventId;
  // Move the callback to the stack first: it may re-arm (or destroy) this
  // Timer, which overwrites (or frees) cb_.
  Callback cb = std::move(cb_);
  cb();
}

}  // namespace essat::sim
