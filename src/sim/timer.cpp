#include "src/sim/timer.h"

namespace essat::sim {

// Moving an armed Timer cancels the pending callback: the scheduled closure
// captures the Timer's address, which a move invalidates. Arms are cheap, so
// owners re-arm after container reallocation if needed. In practice Timers
// are armed only after their owner reaches its final address.
Timer::Timer(Timer&& other) noexcept : sim_{other.sim_} { other.cancel(); }

Timer& Timer::operator=(Timer&& other) noexcept {
  if (this != &other) {
    cancel();
    sim_ = other.sim_;
    other.cancel();
  }
  return *this;
}

void Timer::arm_at(util::Time t, std::function<void()> cb) {
  cancel();
  fire_time_ = t;
  id_ = sim_->schedule_at(t, [this, cb = std::move(cb)] {
    id_ = kInvalidEventId;
    cb();
  });
}

void Timer::arm_in(util::Time delay, std::function<void()> cb) {
  arm_at(sim_->now() + delay, std::move(cb));
}

void Timer::cancel() {
  if (id_ != kInvalidEventId) {
    sim_->cancel(id_);
    id_ = kInvalidEventId;
  }
}

}  // namespace essat::sim
