// Packet-lifecycle consumers of a trace stream: hop-by-hop reconstruction
// by provenance id, and the tx/rx-or-drop conservation checker used as a
// test oracle.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/trace_record.h"

namespace essat::obs {

// Every record mentioning provenance id `prov` (MAC lifecycle, channel
// deliver/drop, report submit/fold/root-deliver), in stream order — one
// report's hop-by-hop story.
std::vector<TraceRecord> packet_lifecycle(const std::vector<TraceRecord>& records,
                                          std::uint64_t prov);

// The provenance chain ending in `prov`: walks kReportFold records
// backwards (child prov folded at the node/query/epoch whose kReportSubmit
// produced the parent prov), returning [leaf-most ... prov]. A report
// delivered at the root thus names every upstream report that fed it.
std::vector<std::uint64_t> provenance_chain(
    const std::vector<TraceRecord>& records, std::uint64_t prov);

struct ConservationReport {
  bool ok = true;
  std::uint64_t transmissions = 0;   // kChanTxBegin records checked
  std::uint64_t skipped_in_flight = 0;  // too close to the trace tail
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  std::uint64_t mismatched = 0;      // transmissions violating conservation
  std::string detail;                // first violation, for test output
};

// Verifies the channel conservation invariant: every transmission's
// in-range receiver count (kChanTxBegin arg16) equals its kChanDeliver +
// kChanDrop records. Transmissions that began within `grace` of the last
// record are skipped — their arrivals may legitimately lie beyond the end
// of the run/trace. The trace must retain the full window (no ring
// overwrite) for the check to be meaningful; callers assert
// tracer.overwritten() == 0 first.
ConservationReport check_conservation(
    const std::vector<TraceRecord>& records,
    util::Time grace = util::Time::from_milliseconds(10.0));

}  // namespace essat::obs
