#include "src/obs/trace_export.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

namespace essat::obs {

namespace {

const char* radio_state_name(unsigned s) {
  switch (s) {
    case 0: return "OFF";
    case 1: return "TURNING_ON";
    case 2: return "ON";
    case 3: return "TURNING_OFF";
  }
  return "?";
}

const char* category_of(TraceType t) {
  switch (t) {
    case TraceType::kEvPush:
    case TraceType::kEvPop:
    case TraceType::kEvCancel:
    case TraceType::kEvRearm:
      return "ev";
    case TraceType::kRadioState:
      return "radio";
    case TraceType::kMacEnqueue:
    case TraceType::kMacBackoffStart:
    case TraceType::kMacCcaDefer:
    case TraceType::kMacTxAttempt:
    case TraceType::kMacRetry:
    case TraceType::kMacSendOk:
    case TraceType::kMacSendFail:
    case TraceType::kMacAckTx:
    case TraceType::kMacRxDeliver:
    case TraceType::kMacRxDup:
      return "mac";
    case TraceType::kChanTxBegin:
    case TraceType::kChanDeliver:
    case TraceType::kChanDrop:
    case TraceType::kChanListen:
      return "chan";
    case TraceType::kEpochStart:
    case TraceType::kReportSubmit:
    case TraceType::kReportFold:
    case TraceType::kRootDeliver:
      return "query";
    case TraceType::kParentChange:
      return "route";
    case TraceType::kSleepStart:
    case TraceType::kSleepSkip:
      return "sleep";
    case TraceType::kCount:
      break;
  }
  return "?";
}

// Perfetto track id for a record's node (-1 = the run-global "sim" track).
long tid_of(std::int32_t node) { return node < 0 ? 1L : node + 2L; }

class EventWriter {
 public:
  explicit EventWriter(std::ostream& out) : out_(out) {
    out_ << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  }
  void emit(const char* json) {
    out_ << (first_ ? "\n" : ",\n") << json;
    first_ = false;
  }
  void finish() { out_ << "\n]}\n"; }

 private:
  std::ostream& out_;
  bool first_ = true;
};

}  // namespace

void export_perfetto_json(const Tracer& tracer, const NodeSampler* sampler,
                          std::ostream& out) {
  const std::vector<TraceRecord> records = tracer.snapshot();
  EventWriter w(out);
  char buf[512];

  // Track-name metadata: one row per node seen, plus the global track.
  std::vector<std::int32_t> nodes;
  for (const TraceRecord& r : records) {
    if (r.node >= 0) nodes.push_back(r.node);
  }
  if (sampler != nullptr) {
    for (const auto& c : sampler->channels()) {
      if (c.node >= 0) nodes.push_back(c.node);
    }
  }
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  w.emit("{\"ph\":\"M\",\"pid\":1,\"tid\":1,\"name\":\"thread_name\","
         "\"args\":{\"name\":\"sim (global)\"}}");
  for (std::int32_t n : nodes) {
    std::snprintf(buf, sizeof buf,
                  "{\"ph\":\"M\",\"pid\":1,\"tid\":%ld,\"name\":\"thread_name\","
                  "\"args\":{\"name\":\"node %d\"}}",
                  tid_of(n), n);
    w.emit(buf);
  }

  const std::int64_t t_first = records.empty() ? 0 : records.front().t_ns;
  const std::int64_t t_last = records.empty() ? 0 : records.back().t_ns;

  // Radio state records become duration slices per node; everything else is
  // an instant event on its node's track.
  struct StateEdge {
    std::int64_t t_ns;
    unsigned prev, next;
  };
  std::map<std::int32_t, std::vector<StateEdge>> radio_edges;

  for (const TraceRecord& r : records) {
    const TraceType t = r.trace_type();
    if (t == TraceType::kRadioState) {
      radio_edges[r.node].push_back(
          StateEdge{r.t_ns, static_cast<unsigned>(r.arg16 >> 8),
                    static_cast<unsigned>(r.arg16 & 0xff)});
      continue;
    }
    if (t == TraceType::kChanDrop) {
      std::snprintf(
          buf, sizeof buf,
          "{\"ph\":\"i\",\"pid\":1,\"tid\":%ld,\"ts\":%.3f,\"s\":\"t\","
          "\"name\":\"%s\",\"cat\":\"%s\",\"args\":{\"reason\":\"%s\","
          "\"tx_id\":%" PRIu64 ",\"prov\":%" PRIu64 "}}",
          tid_of(r.node), static_cast<double>(r.t_ns) / 1000.0,
          trace_type_name(t), category_of(t), drop_reason_name(r.drop_reason()),
          r.a, r.b);
    } else {
      std::snprintf(
          buf, sizeof buf,
          "{\"ph\":\"i\",\"pid\":1,\"tid\":%ld,\"ts\":%.3f,\"s\":\"t\","
          "\"name\":\"%s\",\"cat\":\"%s\",\"args\":{\"arg16\":%u,"
          "\"a\":%" PRIu64 ",\"b\":%" PRIu64 "}}",
          tid_of(r.node), static_cast<double>(r.t_ns) / 1000.0,
          trace_type_name(t), category_of(t),
          static_cast<unsigned>(r.arg16), r.a, r.b);
    }
    w.emit(buf);
  }

  for (const auto& [node, edges] : radio_edges) {
    auto slice = [&](std::int64_t from, std::int64_t to, unsigned state) {
      if (to < from) to = from;
      std::snprintf(buf, sizeof buf,
                    "{\"ph\":\"X\",\"pid\":1,\"tid\":%ld,\"ts\":%.3f,"
                    "\"dur\":%.3f,\"name\":\"radio:%s\",\"cat\":\"radio\"}",
                    tid_of(node), static_cast<double>(from) / 1000.0,
                    static_cast<double>(to - from) / 1000.0,
                    radio_state_name(state));
      w.emit(buf);
    };
    // The state before the first transition spans from the trace start.
    slice(t_first, edges.front().t_ns, edges.front().prev);
    for (std::size_t i = 0; i < edges.size(); ++i) {
      const std::int64_t end = i + 1 < edges.size() ? edges[i + 1].t_ns : t_last;
      slice(edges[i].t_ns, end, edges[i].next);
    }
  }

  if (sampler != nullptr) {
    for (const auto& c : sampler->channels()) {
      std::string counter = c.name;
      if (c.node >= 0) counter += "@" + std::to_string(c.node);
      for (const SeriesPoint& p : c.series.points()) {
        std::snprintf(buf, sizeof buf,
                      "{\"ph\":\"C\",\"pid\":1,\"tid\":%ld,\"ts\":%.3f,"
                      "\"name\":\"%s\",\"args\":{\"value\":%g}}",
                      tid_of(c.node), static_cast<double>(p.t_ns) / 1000.0,
                      counter.c_str(), p.value);
        w.emit(buf);
      }
    }
  }
  w.finish();
}

void export_jsonl(const Tracer& tracer, std::ostream& out) {
  char buf[512];
  for (const TraceRecord& r : tracer.snapshot()) {
    const TraceType t = r.trace_type();
    if (t == TraceType::kChanDrop) {
      std::snprintf(buf, sizeof buf,
                    "{\"t_ns\":%" PRId64 ",\"type\":\"%s\",\"node\":%d,"
                    "\"arg16\":%u,\"a\":%" PRIu64 ",\"b\":%" PRIu64
                    ",\"reason\":\"%s\"}",
                    r.t_ns, trace_type_name(t), r.node,
                    static_cast<unsigned>(r.arg16), r.a, r.b,
                    drop_reason_name(r.drop_reason()));
    } else {
      std::snprintf(buf, sizeof buf,
                    "{\"t_ns\":%" PRId64 ",\"type\":\"%s\",\"node\":%d,"
                    "\"arg16\":%u,\"a\":%" PRIu64 ",\"b\":%" PRIu64 "}",
                    r.t_ns, trace_type_name(t), r.node,
                    static_cast<unsigned>(r.arg16), r.a, r.b);
    }
    out << buf << "\n";
  }
}

}  // namespace essat::obs
