#include "src/obs/tracer.h"

#include <algorithm>

namespace essat::obs {

namespace {

std::size_t round_up_pow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

const char* trace_type_name(TraceType t) {
  switch (t) {
    case TraceType::kEvPush: return "ev_push";
    case TraceType::kEvPop: return "ev_pop";
    case TraceType::kEvCancel: return "ev_cancel";
    case TraceType::kEvRearm: return "ev_rearm";
    case TraceType::kRadioState: return "radio_state";
    case TraceType::kMacEnqueue: return "mac_enqueue";
    case TraceType::kMacBackoffStart: return "mac_backoff_start";
    case TraceType::kMacCcaDefer: return "mac_cca_defer";
    case TraceType::kMacTxAttempt: return "mac_tx_attempt";
    case TraceType::kMacRetry: return "mac_retry";
    case TraceType::kMacSendOk: return "mac_send_ok";
    case TraceType::kMacSendFail: return "mac_send_fail";
    case TraceType::kMacAckTx: return "mac_ack_tx";
    case TraceType::kMacRxDeliver: return "mac_rx_deliver";
    case TraceType::kMacRxDup: return "mac_rx_dup";
    case TraceType::kChanTxBegin: return "chan_tx_begin";
    case TraceType::kChanDeliver: return "chan_deliver";
    case TraceType::kChanDrop: return "chan_drop";
    case TraceType::kEpochStart: return "epoch_start";
    case TraceType::kReportSubmit: return "report_submit";
    case TraceType::kReportFold: return "report_fold";
    case TraceType::kRootDeliver: return "root_deliver";
    case TraceType::kParentChange: return "parent_change";
    case TraceType::kSleepStart: return "sleep_start";
    case TraceType::kSleepSkip: return "sleep_skip";
    case TraceType::kChanListen: return "chan_listen";
    case TraceType::kFaultDown: return "fault_down";
    case TraceType::kFaultUp: return "fault_up";
    case TraceType::kCount: break;
  }
  return "?";
}

const char* drop_reason_name(DropReason r) {
  switch (r) {
    case DropReason::kNone: return "none";
    case DropReason::kCollision: return "collision";
    case DropReason::kCaptured: return "captured";
    case DropReason::kModel: return "model";
    case DropReason::kBusy: return "busy";
    case DropReason::kSelfTx: return "self_tx";
    case DropReason::kRadioOff: return "radio_off";
    case DropReason::kAbandoned: return "abandoned";
  }
  return "?";
}

Tracer::Tracer(const TraceSpec& spec)
    : spec_(spec),
      ring_(round_up_pow2(std::max<std::size_t>(spec.buffer_cap, 64))),
      mask_(ring_.size() - 1),
      type_mask_(spec.type_mask),
      begin_ns_(spec.begin.ns()),
      end_ns_(spec.end.ns()) {
  if (!spec.nodes.empty()) {
    std::int32_t max_node = 0;
    for (std::int32_t n : spec.nodes) max_node = std::max(max_node, n);
    node_filter_.assign(static_cast<std::size_t>(max_node) + 1, 0);
    for (std::int32_t n : spec.nodes) {
      if (n >= 0) node_filter_[static_cast<std::size_t>(n)] = 1;
    }
  }
}

std::vector<TraceRecord> Tracer::snapshot() const {
  std::vector<TraceRecord> out;
  const std::size_t n = size();
  out.reserve(n);
  const std::uint64_t first = head_ - n;  // oldest retained record
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(ring_[(first + i) & mask_]);
  }
  return out;
}

}  // namespace essat::obs
