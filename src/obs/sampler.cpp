#include "src/obs/sampler.h"

namespace essat::obs {

void TimeSeries::add(util::Time t, double value) {
  const std::uint64_t i = offered_++;
  if (i % stride_ != 0) return;
  if (points_.size() >= cap_) {
    // Decimate 2:1 and double the stride: the retained points still cover
    // the full window uniformly, at half the resolution.
    std::size_t w = 0;
    for (std::size_t r = 0; r < points_.size(); r += 2) points_[w++] = points_[r];
    points_.resize(w);
    stride_ *= 2;
    if (i % stride_ != 0) return;  // this offer falls off the coarser stride
  }
  points_.push_back(SeriesPoint{t.ns(), value});
}

void NodeSampler::sample_now(const sim::Simulator& sim) {
  const util::Time now = sim.now();
  for (Channel& c : channels_) c.series.add(now, c.probe());
}

void NodeSampler::start(sim::Simulator& sim, util::Time period) {
  if (period <= util::Time::zero()) return;
  sim.schedule_in(period, [this, &sim, period] {
    sample_now(sim);
    start(sim, period);
  });
}

}  // namespace essat::obs
