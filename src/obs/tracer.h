// obs::Tracer — per-run ring buffer of fixed-size trace records, plus the
// ESSAT_TRACE macro every instrumented substrate emits through.
//
// Zero-cost-when-off discipline (the bsnes tracer idiom): a component never
// owns tracing state — it reaches the run's Tracer through its Simulator
// (sim.tracer()), and the ESSAT_TRACE macro guards the whole emission,
// argument evaluation included, behind one `tracer != nullptr` test. With
// no tracer installed that is a single always-not-taken predictable branch;
// with -DESSAT_TRACING=OFF the macro compiles to nothing at all.
//
// When a tracer IS installed, emit() applies the TraceSpec filters (type
// mask, node set, time window) and appends to a preallocated ring: no
// allocation, no locks (a run is single-threaded), overwrite-oldest on
// overflow with a dropped-record count so truncation is always visible.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "src/obs/trace_record.h"
#include "src/util/time.h"

namespace essat::obs {

class Tracer;

// Declarative per-run tracing configuration, carried on ScenarioConfig so a
// sweep can switch tracing on for exactly one trial and drive the exporters
// without touching any code.
struct TraceSpec {
  bool enabled = false;
  // Ring capacity in records (32 B each); rounded up to a power of two.
  std::size_t buffer_cap = 1 << 20;
  // Bit per TraceType (see trace_bit / kPacketLifecycleTypes).
  std::uint64_t type_mask = kAllTraceTypes;
  // Only records from these nodes are kept (empty = all). Global records
  // (node -1, event-queue ops) always pass the node filter.
  std::vector<std::int32_t> nodes;
  // Only records with begin <= t < end are kept.
  util::Time begin = util::Time::zero();
  util::Time end = util::Time::max();
  // Per-node time-series sampling period (0 = no sampling); series are
  // bounded by series_cap points each (decimating 2:1 when full).
  util::Time sample_period = util::Time::zero();
  std::size_t series_cap = 4096;
  // Sweep gating: when set, tracing activates only for the trial whose
  // effective seed matches — the rest of the grid runs untraced.
  std::optional<std::uint64_t> only_seed;
  // Export destinations ("{seed}" is substituted with the trial seed);
  // empty = no file export.
  std::string perfetto_path;
  std::string jsonl_path;
  // In-process consumer, invoked with the finished tracer after the run
  // (before teardown). Used by tests and embedding harnesses.
  std::function<void(const Tracer&)> sink;

  // Whether this spec traces the trial with the given effective seed.
  bool active_for(std::uint64_t seed) const {
    return enabled && (!only_seed.has_value() || *only_seed == seed);
  }
};

class Tracer {
 public:
  explicit Tracer(const TraceSpec& spec);

  // Appends a record if it passes the spec's filters. Hot path: a handful
  // of compares and one 32-byte store; never allocates.
  void emit(TraceType type, util::Time t, std::int32_t node,
            std::uint16_t arg16, std::uint64_t a, std::uint64_t b) {
    if (!(type_mask_ >> static_cast<int>(type) & 1)) return;
    const std::int64_t ns = t.ns();
    if (ns < begin_ns_ || ns >= end_ns_) return;
    if (node >= 0 && !node_pass_(node)) return;
    ring_[head_ & mask_] =
        TraceRecord::make(type, t, node, arg16, a, b);
    ++head_;
  }

  // Records currently held (<= capacity).
  std::size_t size() const {
    return head_ < ring_.size() ? head_ : ring_.size();
  }
  std::size_t capacity() const { return ring_.size(); }
  // Total records accepted past the filters; records beyond capacity()
  // overwrote the oldest.
  std::uint64_t emitted() const { return head_; }
  std::uint64_t overwritten() const {
    return head_ > ring_.size() ? head_ - ring_.size() : 0;
  }

  // The retained records in emission order (oldest first). Unwraps the
  // ring; O(size) copy — an export/teardown operation, not a hot path.
  std::vector<TraceRecord> snapshot() const;

  const TraceSpec& spec() const { return spec_; }

 private:
  bool node_pass_(std::int32_t node) const {
    if (node_filter_.empty()) return true;
    const auto idx = static_cast<std::size_t>(node);
    return idx < node_filter_.size() && node_filter_[idx] != 0;
  }

  TraceSpec spec_;
  std::vector<TraceRecord> ring_;
  std::uint64_t head_ = 0;  // total accepted records; ring index = head & mask
  std::uint64_t mask_ = 0;
  std::uint64_t type_mask_ = kAllTraceTypes;
  std::int64_t begin_ns_ = 0;
  std::int64_t end_ns_ = 0;
  std::vector<std::uint8_t> node_filter_;  // empty = all nodes pass
};

}  // namespace essat::obs

// ESSAT_TRACE(sim_like, type, node, arg16, a, b)
//
// `sim_like` is anything with a tracer() accessor returning obs::Tracer*
// (normally the component's sim::Simulator reference) and a now() accessor
// for the timestamp. Compiled out entirely under -DESSAT_TRACING=OFF
// (ESSAT_TRACING_ENABLED 0); otherwise the disabled-tracer cost is the one
// predictable null test — the argument expressions are never evaluated.
#ifndef ESSAT_TRACING_ENABLED
#define ESSAT_TRACING_ENABLED 1
#endif

#if ESSAT_TRACING_ENABLED
#define ESSAT_TRACE(sim_like, type, node, arg16, a, b)                     \
  do {                                                                     \
    ::essat::obs::Tracer* essat_trace_tr_ = (sim_like).tracer();           \
    if (essat_trace_tr_ != nullptr) {                                      \
      essat_trace_tr_->emit((type), (sim_like).now(), (node), (arg16),     \
                            (a), (b));                                     \
    }                                                                      \
  } while (0)
#else
#define ESSAT_TRACE(sim_like, type, node, arg16, a, b) \
  do {                                                 \
  } while (0)
#endif

namespace essat::obs {
// Whether the library was built with tracing support compiled in; harnesses
// warn when a TraceSpec asks for tracing that cannot happen.
inline constexpr bool kTracingCompiledIn = ESSAT_TRACING_ENABLED != 0;
}  // namespace essat::obs
