// Trace exporters: Chrome/Perfetto trace_event JSON (loadable in
// ui.perfetto.dev / chrome://tracing, one track per node) and flat JSONL
// (one record per line, the format tools/trace_summary.py consumes).
#pragma once

#include <ostream>

#include "src/obs/sampler.h"
#include "src/obs/tracer.h"

namespace essat::obs {

// Perfetto/Chrome trace_event JSON. Layout: pid 1, tid 1 is the run-global
// "sim" track (event-queue ops), tid node+2 is node <node>'s track. Radio
// state records become duration ("X") slices named after the state; all
// other records become instant ("i") events carrying their decoded payload
// in args; sampler channels (optional) become counter ("C") tracks.
// Timestamps are microseconds of simulation time.
void export_perfetto_json(const Tracer& tracer, const NodeSampler* sampler,
                          std::ostream& out);

// One JSON object per record, in emission order:
//   {"t_ns":..,"type":"..","node":..,"arg16":..,"a":..,"b":..}
// plus decoded "reason" (kChanDrop) and "prov" where the type carries one.
void export_jsonl(const Tracer& tracer, std::ostream& out);

}  // namespace essat::obs
