// Periodic per-node time-series sampling with bounded memory.
//
// A NodeSampler owns a set of channels — (name, node, probe) triples — and
// polls every probe on a fixed period driven by the simulator. Each channel
// accumulates into a TimeSeries whose memory is bounded: when a series
// reaches its cap it decimates 2:1 (keeps every second point) and doubles
// its sampling stride, so arbitrarily long runs converge to cap points that
// uniformly downsample the whole window instead of truncating its tail.
// Decimation depends only on the sample count, never on wall time, so
// series are deterministic for a given trial.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/sim/simulator.h"
#include "src/util/time.h"

namespace essat::obs {

struct SeriesPoint {
  std::int64_t t_ns = 0;
  double value = 0.0;
};

class TimeSeries {
 public:
  explicit TimeSeries(std::size_t cap) : cap_(cap < 8 ? 8 : cap) {
    points_.reserve(cap_);
  }

  // Offers one observation; recorded iff it lands on the current stride.
  void add(util::Time t, double value);

  const std::vector<SeriesPoint>& points() const { return points_; }
  // Samples offered, including those the stride skipped or decimation
  // dropped.
  std::uint64_t offered() const { return offered_; }
  std::uint64_t stride() const { return stride_; }

 private:
  std::size_t cap_;
  std::uint64_t stride_ = 1;   // record every stride-th offer
  std::uint64_t offered_ = 0;
  std::vector<SeriesPoint> points_;
};

class NodeSampler {
 public:
  struct Channel {
    std::string name;        // metric name, e.g. "duty_cycle"
    std::int32_t node = -1;  // -1 = run-global channel
    std::function<double()> probe;
    TimeSeries series;
  };

  explicit NodeSampler(std::size_t series_cap) : series_cap_(series_cap) {}

  void add_channel(std::string name, std::int32_t node,
                   std::function<double()> probe) {
    channels_.push_back(
        Channel{std::move(name), node, std::move(probe), TimeSeries(series_cap_)});
  }

  // Samples every channel once at the current sim time.
  void sample_now(const sim::Simulator& sim);
  // Schedules recurring sampling on `sim` every `period` (first sample one
  // period from now). The sampler must outlive the simulation.
  void start(sim::Simulator& sim, util::Time period);

  const std::vector<Channel>& channels() const { return channels_; }

 private:
  std::size_t series_cap_;
  std::vector<Channel> channels_;
};

}  // namespace essat::obs
