#include "src/obs/lifecycle.h"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <unordered_map>
#include <unordered_set>

namespace essat::obs {

namespace {

// Extracts the provenance id a record mentions, or 0 if the type carries
// none. Keep in sync with the schema table in trace_record.h.
std::uint64_t record_prov(const TraceRecord& r) {
  switch (r.trace_type()) {
    case TraceType::kMacEnqueue:
    case TraceType::kMacBackoffStart:
    case TraceType::kMacCcaDefer:
    case TraceType::kMacTxAttempt:
    case TraceType::kMacRetry:
    case TraceType::kMacSendOk:
    case TraceType::kMacSendFail:
    case TraceType::kMacRxDeliver:
    case TraceType::kMacRxDup:
    case TraceType::kReportSubmit:
    case TraceType::kReportFold:  // the *child* prov being folded
    case TraceType::kRootDeliver:
      return r.a;
    case TraceType::kChanTxBegin:
    case TraceType::kChanDeliver:
    case TraceType::kChanDrop:
      return r.b;
    default:
      return 0;
  }
}

}  // namespace

std::vector<TraceRecord> packet_lifecycle(
    const std::vector<TraceRecord>& records, std::uint64_t prov) {
  std::vector<TraceRecord> out;
  if (prov == 0) return out;
  for (const TraceRecord& r : records) {
    if (record_prov(r) == prov) out.push_back(r);
  }
  return out;
}

std::vector<std::uint64_t> provenance_chain(
    const std::vector<TraceRecord>& records, std::uint64_t prov) {
  // (node, query, epoch) of each kReportSubmit -> the prov it produced.
  auto key = [](std::int32_t node, std::uint16_t query, std::uint64_t epoch) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(node)) << 40) ^
           (static_cast<std::uint64_t>(query) << 24) ^ epoch;
  };
  std::unordered_map<std::uint64_t, std::uint64_t> submit_prov;
  for (const TraceRecord& r : records) {
    if (r.trace_type() == TraceType::kReportSubmit) {
      submit_prov[key(r.node, r.arg16, r.b)] = r.a;
    }
  }
  // parent prov -> child provs folded into it.
  std::unordered_map<std::uint64_t, std::vector<std::uint64_t>> children;
  for (const TraceRecord& r : records) {
    if (r.trace_type() != TraceType::kReportFold) continue;
    auto it = submit_prov.find(key(r.node, r.arg16, r.b));
    if (it != submit_prov.end() && r.a != 0) {
      children[it->second].push_back(r.a);
    }
  }
  // Post-order walk so ancestors precede `prov` itself.
  std::vector<std::uint64_t> out;
  std::unordered_set<std::uint64_t> seen;
  std::function<void(std::uint64_t)> walk = [&](std::uint64_t p) {
    if (!seen.insert(p).second) return;
    auto it = children.find(p);
    if (it != children.end()) {
      for (std::uint64_t c : it->second) walk(c);
    }
    out.push_back(p);
  };
  walk(prov);
  return out;
}

ConservationReport check_conservation(const std::vector<TraceRecord>& records,
                                      util::Time grace) {
  ConservationReport rep;
  if (records.empty()) return rep;
  const std::int64_t last_ns = records.back().t_ns;

  struct TxState {
    std::int64_t t_begin = 0;
    std::uint32_t expected = 0;
    std::uint32_t delivered = 0;
    std::uint32_t dropped = 0;
  };
  std::unordered_map<std::uint64_t, TxState> txs;  // channel tx id -> state
  for (const TraceRecord& r : records) {
    switch (r.trace_type()) {
      case TraceType::kChanTxBegin: {
        TxState& s = txs[r.a];
        s.t_begin = r.t_ns;
        s.expected = r.arg16;
        break;
      }
      case TraceType::kChanDeliver:
        ++txs[r.a].delivered;
        break;
      case TraceType::kChanDrop:
        ++txs[r.a].dropped;
        break;
      default:
        break;
    }
  }

  // Drain in sorted tx-id order: the map is a hash table, and the first
  // mismatch's detail string (below) must not depend on iteration order —
  // essat-deterministic-iteration would flag the raw range-for.
  std::vector<std::uint64_t> tx_ids;
  tx_ids.reserve(txs.size());
  for (const auto& kv : txs) tx_ids.push_back(kv.first);
  std::sort(tx_ids.begin(), tx_ids.end());
  for (const std::uint64_t tx_id : tx_ids) {
    const TxState& s = txs.find(tx_id)->second;
    if (s.t_begin == 0 && s.expected == 0) continue;  // begin outside trace
    if (s.t_begin > last_ns - grace.ns()) {
      ++rep.skipped_in_flight;
      continue;
    }
    ++rep.transmissions;
    rep.delivered += s.delivered;
    rep.dropped += s.dropped;
    if (s.delivered + s.dropped != s.expected) {
      ++rep.mismatched;
      rep.ok = false;
      if (rep.detail.empty()) {
        char buf[160];
        std::snprintf(buf, sizeof buf,
                      "tx %llu at t=%lld ns: expected %u arrivals, saw "
                      "%u delivered + %u dropped",
                      static_cast<unsigned long long>(tx_id),
                      static_cast<long long>(s.t_begin), s.expected,
                      s.delivered, s.dropped);
        rep.detail = buf;
      }
    }
  }
  return rep;
}

}  // namespace essat::obs
