// Fixed-size structured trace records — the unit of the obs::Tracer ring.
//
// Every record is exactly 32 bytes so a ring of them is a flat, cache-
// friendly array the hot path writes with one store sequence and no
// allocation. The schema below is the contract shared by the in-process
// consumers (obs/lifecycle.h), the exporters (obs/trace_export.h), and the
// offline tooling (tools/trace_summary.py) — keep all four in sync.
//
// Record schema (field meaning by TraceType; `-` means unused/zero):
//
//   type              | node          | arg16              | a            | b
//   ------------------+---------------+--------------------+--------------+------------------
//   kEvPush           | -1            | -                  | event id     | fire time (ns)
//   kEvPop            | -1            | -                  | event id     | -
//   kEvCancel         | -1            | -                  | event id     | -
//   kEvRearm          | -1            | -                  | event id     | new fire time (ns)
//   kRadioState       | node          | prev<<8 | next     | -            | -
//   kMacEnqueue       | node          | packet type        | prov         | link_dst
//   kMacBackoffStart  | node          | backoff slots      | prov         | countdown (ns)
//   kMacCcaDefer      | node          | -                  | prov         | -
//   kMacTxAttempt     | node          | attempt #          | prov         | link_dst
//   kMacRetry         | node          | attempt #          | prov         | -
//   kMacSendOk        | node          | -                  | prov         | -
//   kMacSendFail      | node          | attempts used      | prov         | -
//   kMacAckTx         | node          | -                  | -            | link_dst
//   kMacRxDeliver     | node          | packet type        | prov         | link_src
//   kMacRxDup         | node          | -                  | prov         | link_src
//   kChanTxBegin      | sender        | in-range receivers | channel tx id| prov
//   kChanDeliver      | receiver      | packet type        | channel tx id| prov
//   kChanDrop         | receiver      | reason<<8 | ptype  | channel tx id| prov
//   kEpochStart       | node          | query id           | -            | epoch
//   kReportSubmit     | node          | query id           | prov         | epoch
//   kReportFold       | node          | query id           | child prov   | epoch
//   kRootDeliver      | root          | contributions      | prov         | epoch
//   kParentChange     | node          | -                  | old parent   | new parent
//   kSleepStart       | node          | -                  | wake at (ns) | sleep len (ns)
//   kSleepSkip        | node          | -                  | -            | interval (ns)
//   kChanListen       | node          | 0=deaf, 1=listening| -            | -
//   kFaultDown        | node          | cause (FaultCause) | -            | planned downtime (ns, 0=permanent)
//   kFaultUp          | node          | -                  | downtime (ns)| -
//
// `prov` is the per-report provenance id (net::Packet::prov): assigned when
// a QueryAgent creates a report, carried unchanged through the MAC, the
// pooled channel frame, and pass-through forwarding, so one report's
// hop-by-hop fate (enqueue -> CCA defers -> tx attempts -> rx or
// attributed drop -> forward -> root delivery) is the set of records
// sharing its prov. Aggregation boundaries are stitched with kReportFold:
// the child's prov is folded into the (node, query, epoch) whose own
// kReportSubmit names the next prov in the chain. Control frames (ACKs,
// setup floods) carry prov 0.
#pragma once

#include <cstdint>

#include "src/util/time.h"

namespace essat::obs {

enum class TraceType : std::uint16_t {
  // Event-queue operations (sim/simulator, sim/event_queue).
  kEvPush = 0,
  kEvPop,
  kEvCancel,
  kEvRearm,
  // Radio power-state machine (energy/radio).
  kRadioState,
  // CSMA/CA MAC (mac/csma).
  kMacEnqueue,
  kMacBackoffStart,
  kMacCcaDefer,
  kMacTxAttempt,
  kMacRetry,
  kMacSendOk,
  kMacSendFail,
  kMacAckTx,
  kMacRxDeliver,
  kMacRxDup,
  // Wireless medium (net/channel).
  kChanTxBegin,
  kChanDeliver,
  kChanDrop,
  // Query service (query/query_agent).
  kEpochStart,
  kReportSubmit,
  kReportFold,
  kRootDeliver,
  // Routing (routing/repair, routing/tree_protocol).
  kParentChange,
  // Safe Sleep decisions (core/safe_sleep).
  kSleepStart,
  kSleepSkip,
  // Channel-side cached listening flag flipped (net/channel, maintained by
  // the attached MAC through set_listening).
  kChanListen,
  // Fault injection (fault/fault_engine): node goes down / comes back up.
  kFaultDown,
  kFaultUp,
  kCount  // sentinel — keep <= 64 so a type mask fits one word
};
static_assert(static_cast<int>(TraceType::kCount) <= 64,
              "TraceType must fit a 64-bit mask");

// Why a channel frame was not delivered to a receiver (kChanDrop, high byte
// of arg16). Every in-range receiver of every transmission ends with exactly
// one kChanDeliver or one kChanDrop — the conservation invariant
// obs::check_conservation verifies.
enum class DropReason : std::uint8_t {
  kNone = 0,
  kCollision,   // overlapped another frame and neither captured
  kCaptured,    // lost to a stronger in-progress reception (capture effect)
  kModel,       // link model declared the frame undecodable (gray zone)
  kBusy,        // arrived while other energy was on the air, no sync
  kSelfTx,      // receiver was transmitting
  kRadioOff,    // receiver's radio was off / in transition at frame start
  kAbandoned,   // reception started but the radio left ON mid-frame
};

struct TraceRecord {
  std::int64_t t_ns = 0;      // simulation timestamp
  std::uint64_t a = 0;        // payload word A (see schema table)
  std::uint64_t b = 0;        // payload word B
  std::int32_t node = -1;     // node id, or -1 for global (event queue)
  std::uint16_t type = 0;     // TraceType
  std::uint16_t arg16 = 0;    // small payload (see schema table)

  static TraceRecord make(TraceType type, util::Time t, std::int32_t node,
                          std::uint16_t arg16, std::uint64_t a,
                          std::uint64_t b) {
    TraceRecord r;
    r.t_ns = t.ns();
    r.a = a;
    r.b = b;
    r.node = node;
    r.type = static_cast<std::uint16_t>(type);
    r.arg16 = arg16;
    return r;
  }

  TraceType trace_type() const { return static_cast<TraceType>(type); }
  // kChanDrop accessors.
  DropReason drop_reason() const {
    return static_cast<DropReason>(arg16 >> 8);
  }
  std::uint8_t packet_type() const { return static_cast<std::uint8_t>(arg16); }
};
static_assert(sizeof(TraceRecord) == 32, "trace records are 32-byte PODs");

const char* trace_type_name(TraceType t);
const char* drop_reason_name(DropReason r);

// Bitmask helpers for TraceSpec::type_mask.
constexpr std::uint64_t trace_bit(TraceType t) {
  return 1ull << static_cast<int>(t);
}
constexpr std::uint64_t kAllTraceTypes = ~0ull;
// The packet-lifecycle subset: everything needed to reconstruct report
// provenance and verify conservation, without the very hot event-queue ops.
constexpr std::uint64_t kPacketLifecycleTypes =
    trace_bit(TraceType::kMacEnqueue) | trace_bit(TraceType::kMacBackoffStart) |
    trace_bit(TraceType::kMacCcaDefer) | trace_bit(TraceType::kMacTxAttempt) |
    trace_bit(TraceType::kMacRetry) | trace_bit(TraceType::kMacSendOk) |
    trace_bit(TraceType::kMacSendFail) | trace_bit(TraceType::kMacAckTx) |
    trace_bit(TraceType::kMacRxDeliver) | trace_bit(TraceType::kMacRxDup) |
    trace_bit(TraceType::kChanTxBegin) | trace_bit(TraceType::kChanDeliver) |
    trace_bit(TraceType::kChanDrop) | trace_bit(TraceType::kEpochStart) |
    trace_bit(TraceType::kReportSubmit) | trace_bit(TraceType::kReportFold) |
    trace_bit(TraceType::kRootDeliver) | trace_bit(TraceType::kParentChange);

}  // namespace essat::obs
