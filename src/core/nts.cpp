#include "src/core/nts.h"

#include <algorithm>

namespace essat::core {

util::Time NtsShaper::aggregation_deadline(const query::Query& q, std::int64_t k) const {
  if (params_.full_period_deadline) {
    return q.epoch_start(k) + q.period * params_.deadline_periods;
  }
  // t_TO(d) = (d+1) * D/M with D = P (§4.3).
  const int m = std::max(ctx().tree ? ctx().tree->max_rank() : 1, 1);
  const int d = ctx().tree ? std::max(ctx().tree->rank(ctx().self), 0) : 0;
  return q.epoch_start(k) + (q.period * (d + 1)) / m;
}

}  // namespace essat::core
