// ESSAT power-management policies (NTS-SS / STS-SS / DTS-SS): one of the
// paper's traffic shapers per node, each feeding a per-node Safe Sleep
// scheduler. Registered in the StackRegistry under the paper's names.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "src/harness/power_manager.h"

namespace essat::core {

// Generic "shaper + Safe Sleep on every tree member" policy; the shaper
// flavor is injected. SPAN derives from it, keeping Safe Sleep disabled on
// its coordinator backbone via the sleep predicate.
class EssatPowerManager : public harness::PowerManager {
 public:
  using ShaperFactory = std::function<std::unique_ptr<query::TrafficShaper>(
      const harness::ScenarioConfig&)>;
  // Whether a given node's Safe Sleep actually sleeps (default: all do);
  // disabled instances keep the radio always on.
  using SleepEnabledFn = std::function<bool(const harness::NodeHandles&)>;

  explicit EssatPowerManager(ShaperFactory factory,
                             SleepEnabledFn sleep_enabled = nullptr)
      : factory_(std::move(factory)), sleep_enabled_(std::move(sleep_enabled)) {}

  std::unique_ptr<query::TrafficShaper> make_shaper(
      const harness::StackContext& ctx, const harness::NodeHandles&) override {
    return factory_(ctx.config);
  }

  core::SafeSleep* attach_node(const harness::StackContext& ctx,
                               const harness::NodeHandles& node) override;

  // Snapshot hook: every attached SafeSleep, in attach order (== ascending
  // member id, the order run_scenario builds per-node stacks).
  void save_state(snap::Serializer& out) const override;

 private:
  ShaperFactory factory_;
  SleepEnabledFn sleep_enabled_;
  std::vector<std::unique_ptr<SafeSleep>> sleepers_;
};

// Called by the StackRegistry to pull this translation unit into the link.
void register_essat_power_managers();

}  // namespace essat::core
