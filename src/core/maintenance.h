// Protocol maintenance (§4.3): failure detection and recovery glue between
// the query agents, the traffic shapers and the routing repair service.
//
//  * "A node discovers that it is the parent of a failed node if one of its
//    children repeatedly fails to deliver its data report" — counted via
//    the agents' child-miss hook.
//  * "A node discovers that it is the child of a failed node if it
//    repeatedly fails to transmit its data report to its parent" — counted
//    via the agents' send-failure hook.
//
// On detection, the routing layer repairs the tree; affected agents and
// shapers are notified (STS recomputes rank-based schedules, DTS advertises
// a phase update on its first report to the new parent, NTS needs nothing).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "src/query/query_agent.h"
#include "src/routing/repair.h"
#include "src/routing/tree.h"

namespace essat::core {

struct MaintenanceParams {
  // Consecutive MAC send failures to the parent before declaring it dead.
  int parent_failure_threshold = 3;
  // Consecutive missed epochs before declaring a child dead.
  int child_miss_threshold = 5;
};

class MaintenanceService {
 public:
  MaintenanceService(routing::RepairService& repair, MaintenanceParams params);

  // Register a node's agent; installs the failure hooks. `alive` reports
  // whether a node is still up (radio not failed).
  void attach_agent(net::NodeId node, query::QueryAgent* agent);
  // Forget a node's agent and its failure counters (node crash: the agent
  // is about to be destroyed). A restarted node re-attaches its fresh agent
  // via attach_agent, starting with clean counters.
  void detach_agent(net::NodeId node);
  void set_alive_predicate(std::function<bool(net::NodeId)> alive);

  // Repair-service hooks, to be installed on the RepairService this object
  // was constructed with (done by the owner to keep wiring explicit).
  routing::RepairService::Hooks make_repair_hooks();

  // Failure signals (also callable directly from tests).
  void note_send_failure(net::NodeId node, net::NodeId parent);
  void note_send_success(net::NodeId node);
  void note_child_miss(net::NodeId node, net::NodeId child);
  void note_child_heard(net::NodeId node, net::NodeId child);

  std::uint64_t reparents() const { return reparents_; }
  std::uint64_t child_removals() const { return child_removals_; }

 private:
  routing::RepairService& repair_;
  MaintenanceParams params_;
  std::map<net::NodeId, query::QueryAgent*> agents_;
  std::function<bool(net::NodeId)> alive_;
  std::map<net::NodeId, int> consecutive_send_failures_;
  std::map<std::pair<net::NodeId, net::NodeId>, int> consecutive_child_misses_;
  std::uint64_t reparents_ = 0;
  std::uint64_t child_removals_ = 0;
};

}  // namespace essat::core
