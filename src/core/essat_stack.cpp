#include "src/core/essat_stack.h"

#include "src/core/dts.h"
#include "src/core/nts.h"
#include "src/core/sts.h"
#include "src/harness/scenario.h"
#include "src/harness/stack_registry.h"
#include "src/snap/serializer.h"

namespace essat::core {

SafeSleep* EssatPowerManager::attach_node(const harness::StackContext& ctx,
                                          const harness::NodeHandles& node) {
  auto sleeper = std::make_unique<SafeSleep>(
      ctx.sim, node.radio, node.mac,
      SafeSleepParams{.t_be = ctx.config.t_be,
                      .enabled = !sleep_enabled_ || sleep_enabled_(node)});
  sleeper->set_setup_end(ctx.setup_end);
  sleepers_.push_back(std::move(sleeper));
  return sleepers_.back().get();
}

void EssatPowerManager::save_state(snap::Serializer& out) const {
  out.begin("PMES");
  out.u64(sleepers_.size());
  for (const auto& s : sleepers_) s->save_state(out);
  out.end();
}

void register_essat_power_managers() {
  auto& registry = harness::StackRegistry::instance();
  registry.add("NTS-SS", [](const harness::ScenarioConfig&) {
    return std::make_unique<EssatPowerManager>(
        [](const harness::ScenarioConfig&) {
          return std::make_unique<NtsShaper>();
        });
  });
  registry.add("STS-SS", [](const harness::ScenarioConfig&) {
    return std::make_unique<EssatPowerManager>(
        [](const harness::ScenarioConfig& c) {
          return std::make_unique<StsShaper>(
              StsParams{.deadline = c.sts_deadline});
        });
  });
  registry.add("DTS-SS", [](const harness::ScenarioConfig&) {
    return std::make_unique<EssatPowerManager>(
        [](const harness::ScenarioConfig& c) {
          return std::make_unique<DtsShaper>(DtsParams{.t_to = c.dts_t_to});
        });
  });
}

}  // namespace essat::core
