// NTS — No Traffic Shaping (§4.2.1).
//
// Safe Sleep runs on the raw periodicity of the sources: every node shares
// the same expected send and reception times s(k) = r(k) = φ + kP, and a
// node forwards its aggregate immediately once its children's reports are
// in. NTS-SS introduces no delay penalty, but Trecv grows linearly with a
// node's rank (Eq. 1), so nodes near the root burn energy idling.
#pragma once

#include "src/core/formula_shaper.h"

namespace essat::core {

struct NtsParams {
  // When true, the aggregation deadline is `deadline_periods` after the
  // epoch start instead of the paper's rank-based timeout
  // t_TO(d) = (d+1) * D/M with D = P. Baselines (SYNC/PSM) use the generous
  // variant: their per-hop buffering delays far exceed rank-based budgets,
  // and timing out too eagerly bypasses in-network aggregation (every late
  // report then travels unaggregated, multiplying the offered load).
  bool full_period_deadline = false;
  double deadline_periods = 1.0;
};

class NtsShaper final : public FormulaShaper {
 public:
  explicit NtsShaper(NtsParams params = {}) : params_{params} {}

  const char* name() const override { return "NTS"; }
  util::Time aggregation_deadline(const query::Query& q, std::int64_t k) const override;

 protected:
  util::Time send_formula(const query::Query& q, std::int64_t k) const override {
    return q.epoch_start(k);
  }
  util::Time recv_formula(const query::Query& q, std::int64_t k,
                          net::NodeId /*child*/) const override {
    return q.epoch_start(k);
  }

 private:
  NtsParams params_;
};

}  // namespace essat::core
