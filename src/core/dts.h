// DTS — Dynamic Traffic Shaper (§4.2.3).
//
// DTS adapts expected send/reception times to the observed multi-hop delay,
// in the style of the Release Guard protocol:
//
//   s(0) = r(0) = φ
//   report ready before s(k):  send at s(k),  s(k+1) = s(k) + P
//                              (parent infers r(k+1) = r(k) + P, no traffic)
//   report ready at t > s(k):  send now,      s(k+1) = t + P   — phase shift:
//                              s(k+1) is piggybacked in the report and
//                              becomes the parent's r(k+1,c)
//
// Phase updates ride existing data reports, so the overhead is a fraction
// of a bit per report on average (§4.2.3 measures < 1 bit/report). On
// transient loss the parent detects a sequence gap and requests a phase
// update; on reparenting the child advertises its phase in the first report
// to the new parent (§4.3) — DTS needs no other topology-repair mechanism.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <utility>

#include "src/query/traffic_shaper.h"

namespace essat::core {

struct DtsParams {
  // Loss-timeout margin t_TO added to max_c r(k,c) (§4.3, "the time it
  // takes a node to collect data from its children usually depends on the
  // one-hop delay" — t_TO is "a tunable parameter"). It must cover
  // T_collect under epoch-synchronized contention; phase shifts only track
  // *submission* lateness, so MAC collection delay is absorbed here.
  util::Time t_to = util::Time::from_milliseconds(100.0);
};

class DtsShaper final : public query::TrafficShaper {
 public:
  explicit DtsShaper(DtsParams params = {}) : params_{params} {}

  const char* name() const override { return "DTS"; }

  void register_query(const query::Query& q) override;
  SendPlan plan_send(const query::Query& q, std::int64_t k, util::Time ready) override;
  void on_report_sent(const query::Query& q, std::int64_t k, util::Time sent) override;
  void on_report_received(const query::Query& q, std::int64_t k, net::NodeId child,
                          const std::optional<util::Time>& phase_update) override;
  void on_child_timeout(const query::Query& q, std::int64_t k, net::NodeId child) override;
  util::Time aggregation_deadline(const query::Query& q, std::int64_t k) const override;
  util::Time expected_send(const query::Query& q, std::int64_t k) const override;
  util::Time expected_receive(const query::Query& q, std::int64_t k,
                              net::NodeId child) const override;

  void on_parent_changed(const query::Query& q) override;
  void on_child_added(const query::Query& q, net::NodeId child) override;
  void on_child_removed(const query::Query& q, net::NodeId child) override;
  void on_phase_request(net::QueryId q) override;
  bool wants_phase_request_on_loss() const override { return true; }

  std::uint64_t phase_updates_sent() const override { return phase_updates_; }
  std::uint64_t phase_shifts() const { return phase_shifts_; }

  // Snapshot hook: the adaptive expectations (DTS's whole point is that
  // these drift with observed delay), resync flags, and counters.
  void save_state(snap::Serializer& out) const override;

 private:
  // Next expected epoch and its expected time; times for later epochs
  // extrapolate by whole periods.
  struct Expectation {
    std::int64_t epoch = 0;
    util::Time at;
  };

  util::Time send_time_(const query::Query& q, const Expectation& e,
                        std::int64_t k) const {
    return e.at + q.period * (k - e.epoch);
  }

  DtsParams params_;
  std::map<net::QueryId, Expectation> send_;                              // s
  std::map<std::pair<net::QueryId, net::NodeId>, Expectation> receive_;  // r per child
  std::set<net::QueryId> force_advertise_;  // resync / new parent (§4.3)
  std::uint64_t phase_updates_ = 0;
  std::uint64_t phase_shifts_ = 0;
};

}  // namespace essat::core
