// Safe Sleep (SS) — the paper's local sleep-scheduling algorithm (§4.1,
// Fig. 1).
//
// SS tracks, per query, the next expected send time (q.snext) and the next
// expected reception time from each child (q.rnext(c)), both supplied
// incrementally by the traffic shaper. After every update it re-evaluates:
//
//   t_wakeup = min({q.snext ∀q} ∪ {q.rnext(c) ∀q,c})
//   t_sleep  = t_wakeup - now
//   if (t_sleep > t_BE) sleep, waking at t_wakeup - t_OFF_ON
//
// so the radio is back ON exactly when the first expected communication is
// due — "no energy or delay penalties are incurred by turning the node off".
// Two additional guards beyond Fig. 1's pseudocode keep the guarantee in a
// real stack: SS never sleeps while the MAC has frames queued or in flight,
// and never before the query-setup slot ends (all radios stay on during
// setup so requests can flood).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <utility>

#include "src/energy/radio.h"
#include "src/mac/csma.h"
#include "src/query/traffic_shaper.h"
#include "src/sim/timer.h"
#include "src/util/time.h"

namespace essat::snap {
class Serializer;
}  // namespace essat::snap

namespace essat::core {

struct SafeSleepParams {
  // Break-even time t_BE: minimum free interval for which powering down
  // costs no energy or delay (§4.1, [Benini et al.]). The paper's Fig. 9
  // sweeps this in {0, 2.5, 10, 40} ms.
  util::Time t_be = util::Time::from_milliseconds(2.5);
  // Disabled SS keeps the radio always on (SPAN backbone nodes).
  bool enabled = true;
};

class SafeSleep final : public query::ExpectedTimeSink {
 public:
  SafeSleep(sim::Simulator& sim, energy::Radio& radio, mac::CsmaMac& mac,
            SafeSleepParams params);

  // All radios stay on until the end of the setup slot ("during the setup
  // slot, all nodes keep their radio on even if SS does not expect any data
  // reports", §4.1).
  void set_setup_end(util::Time t);

  // --- ExpectedTimeSink -------------------------------------------------
  void update_next_send(net::QueryId q, util::Time t) override;
  void update_next_receive(net::QueryId q, net::NodeId child, util::Time t) override;
  void erase_child(net::QueryId q, net::NodeId child) override;
  void erase_query(net::QueryId q) override;

  // Re-evaluates the sleep decision (Fig. 1's checkState). Invoked by every
  // update and by the MAC idle callback; safe to call at any time.
  void check_state();

  // Clock-drift hook (fault engine): maps an intended wake-up time to the
  // time this node's skewed clock actually fires it. Applied wherever the
  // wake timer is armed (never earlier than now); null means a perfect
  // clock — the exact pre-hook behavior.
  // essat-lint: allow(hot-path-alloc) — installed once per node at setup
  void set_wake_adjust(std::function<util::Time(util::Time)> adjust) {
    wake_adjust_ = std::move(adjust);
  }

  // Permanently retires this scheduler (node crash). The radio observer and
  // MAC idle callback may keep firing — a replacement SafeSleep is built on
  // restart while this one stays alive in its policy's ownership list — so
  // a deactivated instance must never arm its timer or touch the radio.
  void deactivate();

  // Earliest expected communication across all tracked queries, or
  // Time::max() if nothing is expected.
  util::Time next_wakeup() const;

  // Statistics.
  std::uint64_t sleeps_initiated() const { return sleeps_; }
  // Free intervals that were too short to sleep through (<= t_BE): the
  // penalty-avoidance events Fig. 9 quantifies.
  std::uint64_t sleeps_skipped_short() const { return short_skips_; }

  const SafeSleepParams& params() const { return params_; }

  // Snapshot hook: the expected-time tables, wake timer, and counters.
  void save_state(snap::Serializer& out) const;

 private:
  sim::Simulator& sim_;
  energy::Radio& radio_;
  mac::CsmaMac& mac_;
  SafeSleepParams params_;
  util::Time setup_end_;

  std::map<net::QueryId, util::Time> next_send_;
  std::map<std::pair<net::QueryId, net::NodeId>, util::Time> next_receive_;
  sim::Timer wake_timer_;
  std::function<util::Time(util::Time)> wake_adjust_;  // essat-lint: allow(hot-path-alloc)
  bool active_ = true;
  std::uint64_t sleeps_ = 0;
  std::uint64_t short_skips_ = 0;
};

}  // namespace essat::core
