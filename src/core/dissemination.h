// Data dissemination under ESSAT — the extension the paper sketches in §3
// ("ESSAT can also be extended to support other communication patterns such
// as peer-to-peer communication or data dissemination").
//
// A dissemination task is the mirror image of a query: the root generates a
// message every period P starting at φ, and it travels *down* the routing
// tree. Traffic shaping works level-wise like STS, top-down:
//
//   s(task, k) at a node of level v  =  φ + kP + l * v
//   r(task, k)                       =  parent's s(task,k) = φ + kP + l*(v-1)
//
// with l the per-level pacing slice. A node wakes at r(k) to receive from
// its parent, buffers the message until its own s(k), forwards one unicast
// copy per child, and sleeps — the same Safe Sleep machinery as queries,
// driven through the same ExpectedTimeSink interface. Late messages are
// forwarded immediately; a missed round (loss) times out and the schedule
// advances so the node never waits forever.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>

#include "src/mac/csma.h"
#include "src/net/packet.h"
#include "src/query/traffic_shaper.h"
#include "src/routing/tree.h"
#include "src/sim/timer.h"

namespace essat::core {

// A periodic root-to-leaves dissemination stream.
struct DisseminationTask {
  net::QueryId id = net::kNoQuery;  // shares the query id space
  util::Time period;                // P
  util::Time phase;                 // φ: epoch-0 generation time at the root

  util::Time epoch_start(std::int64_t k) const { return phase + period * k; }
};

struct DisseminationParams {
  // Per-level pacing slice l. Zero means forward immediately (NTS-like).
  util::Time level_slice = util::Time::from_milliseconds(20.0);
  // How long past r(k) to keep listening before declaring the round lost.
  util::Time loss_timeout = util::Time::from_milliseconds(100.0);
};

struct DisseminationStats {
  std::uint64_t generated = 0;  // root only
  std::uint64_t received = 0;
  std::uint64_t forwarded = 0;  // unicast copies to children
  std::uint64_t missed_rounds = 0;
  std::uint64_t late_rounds = 0;  // received after s(k)
};

class DisseminationAgent {
 public:
  // `sink` (Safe Sleep) may be null. The tree is shared, as for queries.
  DisseminationAgent(sim::Simulator& sim, mac::CsmaMac& mac,
                     const routing::Tree& tree, net::NodeId self,
                     DisseminationParams params = {},
                     query::ExpectedTimeSink* sink = nullptr);

  void register_task(const DisseminationTask& task);

  // Feed kDissemination packets addressed to this node.
  void handle_packet(const net::Packet& p);

  // Fired on every node when a round's message arrives (or is generated at
  // the root): (task, epoch, arrival time).
  using DeliveryHook =
      std::function<void(const DisseminationTask&, std::int64_t, util::Time)>;
  void set_delivery_hook(DeliveryHook hook) { delivery_ = std::move(hook); }

  // Expected forward time s(task,k) at this node's level.
  util::Time expected_send(const DisseminationTask& task, std::int64_t k) const;
  // Expected reception time r(task,k) (= the parent's expected send).
  util::Time expected_receive(const DisseminationTask& task, std::int64_t k) const;

  const DisseminationStats& stats() const { return stats_; }

 private:
  struct TaskState {
    DisseminationTask task;
    std::int64_t next_epoch = 0;
    std::unique_ptr<sim::Timer> round_timer;  // generation (root) / loss timeout
    std::unique_ptr<sim::Timer> send_timer;   // buffered forward
  };

  void open_round_(TaskState& ts);
  void forward_(TaskState& ts, std::int64_t k);
  void push_expectations_(const TaskState& ts);

  sim::Simulator& sim_;
  mac::CsmaMac& mac_;
  const routing::Tree& tree_;
  net::NodeId self_;
  DisseminationParams params_;
  query::ExpectedTimeSink* sink_;
  std::map<net::QueryId, TaskState> tasks_;
  DeliveryHook delivery_;
  DisseminationStats stats_;
};

}  // namespace essat::core
