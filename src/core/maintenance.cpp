#include "src/core/maintenance.h"

namespace essat::core {

MaintenanceService::MaintenanceService(routing::RepairService& repair,
                                       MaintenanceParams params)
    : repair_{repair}, params_{params} {}

void MaintenanceService::attach_agent(net::NodeId node, query::QueryAgent* agent) {
  agents_[node] = agent;
  agent->set_send_result_hook([this, node](net::NodeId parent, bool ok) {
    if (ok) {
      note_send_success(node);
    } else {
      note_send_failure(node, parent);
    }
  });
  agent->set_child_miss_hook(
      [this, node](net::NodeId child, std::int64_t) { note_child_miss(node, child); });
  agent->set_child_heard_hook(
      [this, node](net::NodeId child) { note_child_heard(node, child); });
}

void MaintenanceService::detach_agent(net::NodeId node) {
  agents_.erase(node);
  consecutive_send_failures_.erase(node);
  for (auto it = consecutive_child_misses_.begin();
       it != consecutive_child_misses_.end();) {
    if (it->first.first == node || it->first.second == node) {
      it = consecutive_child_misses_.erase(it);
    } else {
      ++it;
    }
  }
}

void MaintenanceService::set_alive_predicate(std::function<bool(net::NodeId)> alive) {
  alive_ = std::move(alive);
}

routing::RepairService::Hooks MaintenanceService::make_repair_hooks() {
  routing::RepairService::Hooks hooks;
  hooks.on_rank_changed = [this](net::NodeId n) {
    if (auto it = agents_.find(n); it != agents_.end()) it->second->rank_changed();
  };
  hooks.on_child_removed = [this](net::NodeId parent, net::NodeId child) {
    if (auto it = agents_.find(parent); it != agents_.end()) {
      it->second->child_removed(child);
    }
  };
  hooks.on_parent_changed = [this](net::NodeId child, net::NodeId new_parent) {
    if (auto it = agents_.find(child); it != agents_.end()) {
      it->second->parent_changed();
    }
    if (auto it = agents_.find(new_parent); it != agents_.end()) {
      it->second->child_added(child);
    }
  };
  return hooks;
}

void MaintenanceService::note_send_failure(net::NodeId node, net::NodeId parent) {
  const int count = ++consecutive_send_failures_[node];
  if (count < params_.parent_failure_threshold) return;
  consecutive_send_failures_[node] = 0;
  // The parent is unreachable: re-attach under a live neighbor. The dead
  // parent's own subtree entry is cleaned up by its parent's child-miss
  // path (or by this node's reparent if it was the last child).
  if (repair_.reparent(node, alive_ ? alive_ : [](net::NodeId) { return true; })) {
    ++reparents_;
    (void)parent;
  }
}

void MaintenanceService::note_send_success(net::NodeId node) {
  consecutive_send_failures_[node] = 0;
}

void MaintenanceService::note_child_miss(net::NodeId node, net::NodeId child) {
  const int count = ++consecutive_child_misses_[{node, child}];
  if (count < params_.child_miss_threshold) return;
  consecutive_child_misses_.erase({node, child});
  // Declare the child dead; the repair service orphans its subtree and
  // re-attaches survivors, firing the agent hooks along the way.
  repair_.remove_failed_node(child, alive_ ? alive_ : [](net::NodeId) { return true; });
  ++child_removals_;
}

void MaintenanceService::note_child_heard(net::NodeId node, net::NodeId child) {
  consecutive_child_misses_[{node, child}] = 0;
}

}  // namespace essat::core
