#include "src/core/formula_shaper.h"

#include <algorithm>

#include "src/snap/serializer.h"

namespace essat::core {

void FormulaShaper::register_query(const query::Query& q) {
  next_send_epoch_[q.id] = 0;
  push_send_(q);
  if (ctx_.tree) {
    for (net::NodeId c : ctx_.tree->children(ctx_.self)) {
      next_recv_epoch_[{q.id, c}] = 0;
      push_recv_(q, c);
    }
  }
}

query::TrafficShaper::SendPlan FormulaShaper::plan_send(const query::Query& q,
                                                        std::int64_t k,
                                                        util::Time ready) {
  // "If a data report is generated before its expected send time s(k) it is
  // buffered until that time. If the data report is late, then the node
  // sends it immediately." (§4.2.2; NTS degenerates to send-immediately
  // because s(k) = φ + kP <= ready always.)
  return SendPlan{std::max(ready, send_formula(q, k)), std::nullopt};
}

void FormulaShaper::on_report_sent(const query::Query& q, std::int64_t k,
                                   util::Time /*sent*/) {
  auto& next = next_send_epoch_[q.id];
  next = std::max(next, k + 1);
  push_send_(q);
}

void FormulaShaper::advance_recv_(const query::Query& q, std::int64_t k,
                                  net::NodeId child) {
  auto& next = next_recv_epoch_[{q.id, child}];
  next = std::max(next, k + 1);
  push_recv_(q, child);
}

void FormulaShaper::on_report_received(const query::Query& q, std::int64_t k,
                                       net::NodeId child,
                                       const std::optional<util::Time>& /*phase_update*/) {
  advance_recv_(q, k, child);
}

void FormulaShaper::on_child_timeout(const query::Query& q, std::int64_t k,
                                     net::NodeId child) {
  advance_recv_(q, k, child);
}

void FormulaShaper::on_rank_changed(const query::Query& q) {
  // The formulas read the current rank from the tree; only the already
  // pushed sink entries are stale. Re-push at the current epochs ("when the
  // rank changes, the considered node and its descendants must recompute
  // s(k) and r(k)", §4.3).
  push_send_(q);
  for (auto& [key, epoch] : next_recv_epoch_) {
    if (key.first == q.id) push_recv_(q, key.second);
  }
}

void FormulaShaper::on_child_added(const query::Query& q, net::NodeId child) {
  auto [it, inserted] = next_recv_epoch_.try_emplace({q.id, child}, 0);
  if (inserted) {
    // Start the new child at our own send progress: its first report under
    // us will be for roughly the current epoch.
    it->second = next_send_epoch(q.id);
  }
  push_recv_(q, child);
}

void FormulaShaper::on_child_removed(const query::Query& q, net::NodeId child) {
  next_recv_epoch_.erase({q.id, child});
  query::TrafficShaper::on_child_removed(q, child);  // sink erase
}

std::int64_t FormulaShaper::next_send_epoch(net::QueryId q) const {
  const auto it = next_send_epoch_.find(q);
  return it == next_send_epoch_.end() ? 0 : it->second;
}

std::int64_t FormulaShaper::next_recv_epoch(net::QueryId q, net::NodeId child) const {
  const auto it = next_recv_epoch_.find({q, child});
  return it == next_recv_epoch_.end() ? 0 : it->second;
}

void FormulaShaper::push_send_(const query::Query& q) {
  if (ctx_.sink) {
    ctx_.sink->update_next_send(q.id, send_formula(q, next_send_epoch(q.id)));
  }
}

void FormulaShaper::push_recv_(const query::Query& q, net::NodeId child) {
  if (ctx_.sink) {
    ctx_.sink->update_next_receive(q.id, child,
                                   recv_formula(q, next_recv_epoch(q.id, child), child));
  }
}

void FormulaShaper::save_state(snap::Serializer& out) const {
  out.begin("SHFM");
  out.u64(next_send_epoch_.size());
  for (const auto& [q, k] : next_send_epoch_) {
    out.i32(q);
    out.i64(k);
  }
  out.u64(next_recv_epoch_.size());
  for (const auto& [key, k] : next_recv_epoch_) {
    out.i32(key.first);
    out.i32(key.second);
    out.i64(k);
  }
  out.end();
}

}  // namespace essat::core
