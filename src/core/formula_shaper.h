// Shared machinery for shapers whose expected send/reception times are
// closed-form functions of the epoch (NTS and STS). Derived classes supply
// the formulas; this base keeps per-query/per-child epoch counters, pushes
// updates into the ExpectedTimeSink, and handles maintenance hooks.
#pragma once

#include <cstdint>
#include <map>
#include <utility>

#include "src/query/traffic_shaper.h"

namespace essat::core {

class FormulaShaper : public query::TrafficShaper {
 public:
  void register_query(const query::Query& q) override;
  SendPlan plan_send(const query::Query& q, std::int64_t k, util::Time ready) override;
  void on_report_sent(const query::Query& q, std::int64_t k, util::Time sent) override;
  void on_report_received(const query::Query& q, std::int64_t k, net::NodeId child,
                          const std::optional<util::Time>& phase_update) override;
  void on_child_timeout(const query::Query& q, std::int64_t k, net::NodeId child) override;

  util::Time expected_send(const query::Query& q, std::int64_t k) const override {
    return send_formula(q, k);
  }
  util::Time expected_receive(const query::Query& q, std::int64_t k,
                              net::NodeId child) const override {
    return recv_formula(q, k, child);
  }

  // Rank changes alter the formulas (for STS); re-push current expectations.
  void on_rank_changed(const query::Query& q) override;
  void on_child_added(const query::Query& q, net::NodeId child) override;
  void on_child_removed(const query::Query& q, net::NodeId child) override;

  // Snapshot hook: the epoch cursors (the only mutable state; the formulas
  // themselves are pure functions of query and rank).
  void save_state(snap::Serializer& out) const override;

 protected:
  // s(q,k) and r(q,k,c).
  virtual util::Time send_formula(const query::Query& q, std::int64_t k) const = 0;
  virtual util::Time recv_formula(const query::Query& q, std::int64_t k,
                                  net::NodeId child) const = 0;

  std::int64_t next_send_epoch(net::QueryId q) const;
  std::int64_t next_recv_epoch(net::QueryId q, net::NodeId child) const;

 private:
  void push_send_(const query::Query& q);
  void push_recv_(const query::Query& q, net::NodeId child);
  void advance_recv_(const query::Query& q, std::int64_t k, net::NodeId child);

  std::map<net::QueryId, std::int64_t> next_send_epoch_;
  std::map<std::pair<net::QueryId, net::NodeId>, std::int64_t> next_recv_epoch_;
};

}  // namespace essat::core
