#include "src/core/safe_sleep.h"

#include <algorithm>

#include "src/snap/serializer.h"
#include "src/snap/timer_codec.h"

namespace essat::core {

SafeSleep::SafeSleep(sim::Simulator& sim, energy::Radio& radio, mac::CsmaMac& mac,
                     SafeSleepParams params)
    : sim_{sim},
      radio_{radio},
      mac_{mac},
      params_{params},
      setup_end_{sim.now()},
      wake_timer_{sim} {
  mac_.set_idle_callback([this] { check_state(); });
  // Re-evaluate on wake: if the expectation that scheduled this wake-up was
  // superseded by a later one, go straight back to sleep.
  radio_.add_state_observer([this](energy::RadioState s) {
    if (s == energy::RadioState::kOn) check_state();
  });
}

void SafeSleep::set_setup_end(util::Time t) {
  setup_end_ = t;
  if (t > sim_.now()) {
    sim_.schedule_at(t, [this] { check_state(); });
  }
}

void SafeSleep::update_next_send(net::QueryId q, util::Time t) {
  next_send_[q] = t;
  check_state();
}

void SafeSleep::update_next_receive(net::QueryId q, net::NodeId child, util::Time t) {
  next_receive_[{q, child}] = t;
  check_state();
}

void SafeSleep::erase_child(net::QueryId q, net::NodeId child) {
  next_receive_.erase({q, child});
  check_state();
}

void SafeSleep::erase_query(net::QueryId q) {
  next_send_.erase(q);
  for (auto it = next_receive_.begin(); it != next_receive_.end();) {
    if (it->first.first == q) {
      it = next_receive_.erase(it);
    } else {
      ++it;
    }
  }
  check_state();
}

util::Time SafeSleep::next_wakeup() const {
  util::Time t = util::Time::max();
  for (const auto& [q, s] : next_send_) t = std::min(t, s);
  for (const auto& [qc, r] : next_receive_) t = std::min(t, r);
  return t;
}

void SafeSleep::deactivate() {
  active_ = false;
  wake_timer_.cancel();
}

void SafeSleep::check_state() {
  if (!active_ || !params_.enabled || radio_.failed()) return;
  const util::Time now = sim_.now();
  if (now < setup_end_) return;  // setup slot: stay on

  const util::Time t_wakeup = next_wakeup();

  if (!radio_.is_on()) {
    // Already sleeping (or in transition). A new expectation may have been
    // registered that is earlier than the scheduled wake-up: bring the
    // wake-up forward so the no-delay-penalty guarantee holds.
    if (t_wakeup == util::Time::max()) return;
    util::Time wake_at = std::max(now, t_wakeup - radio_.params().t_off_on);
    if (wake_adjust_) wake_at = std::max(now, wake_adjust_(wake_at));
    if (!wake_timer_.armed() || wake_at < wake_timer_.fire_time()) {
      wake_timer_.arm_at(wake_at, [this] { radio_.turn_on(); });
    }
    return;
  }

  if (!mac_.idle()) return;    // frames queued/in flight: busy
  if (t_wakeup <= now) return; // busy: a report is due or overdue

  if (t_wakeup == util::Time::max()) {
    // Nothing is ever expected (no queries routed through this node):
    // sleep with no wake-up scheduled; a future registration re-checks.
    ESSAT_TRACE(sim_, obs::TraceType::kSleepStart, mac_.self(), 0, 0, 0);
    radio_.turn_off();
    ++sleeps_;
    wake_timer_.cancel();
    return;
  }

  const util::Time t_sleep = t_wakeup - now;
  if (t_sleep <= params_.t_be) {
    ++short_skips_;  // not worth the transition cost
    ESSAT_TRACE(sim_, obs::TraceType::kSleepSkip, mac_.self(), 0, 0,
                static_cast<std::uint64_t>(t_sleep.ns()));
    return;
  }
  ESSAT_TRACE(sim_, obs::TraceType::kSleepStart, mac_.self(), 0,
              static_cast<std::uint64_t>(t_wakeup.ns()),
              static_cast<std::uint64_t>(t_sleep.ns()));
  radio_.turn_off();
  ++sleeps_;
  // Wake early enough that the OFF->ON transition completes at t_wakeup.
  // A drifted clock (wake_adjust_) misses that target — the delivery
  // penalty that mispredicted wake-ups cost is exactly what the fault
  // engine's drift axis measures.
  util::Time wake_at = std::max(now, t_wakeup - radio_.params().t_off_on);
  if (wake_adjust_) wake_at = std::max(now, wake_adjust_(wake_at));
  wake_timer_.arm_at(wake_at, [this] { radio_.turn_on(); });
}

void SafeSleep::save_state(snap::Serializer& out) const {
  out.begin("SSLP");
  out.time(setup_end_);
  out.u64(next_send_.size());
  for (const auto& [q, t] : next_send_) {
    out.i32(q);
    out.time(t);
  }
  out.u64(next_receive_.size());
  for (const auto& [key, t] : next_receive_) {
    out.i32(key.first);
    out.i32(key.second);
    out.time(t);
  }
  snap::save_timer(out, wake_timer_);
  out.boolean(active_);
  out.u64(sleeps_);
  out.u64(short_skips_);
  out.end();
}

}  // namespace essat::core
