#include "src/core/dts.h"

#include <algorithm>

#include "src/snap/serializer.h"

namespace essat::core {

void DtsShaper::register_query(const query::Query& q) {
  // s(0) = r(0) = φ, "similarly to NTS" (§4.2.3).
  send_[q.id] = Expectation{0, q.phase};
  if (ctx_.sink) ctx_.sink->update_next_send(q.id, q.phase);
  if (ctx_.tree) {
    for (net::NodeId c : ctx_.tree->children(ctx_.self)) {
      receive_[{q.id, c}] = Expectation{0, q.phase};
      if (ctx_.sink) ctx_.sink->update_next_receive(q.id, c, q.phase);
    }
  }
}

query::TrafficShaper::SendPlan DtsShaper::plan_send(const query::Query& q,
                                                    std::int64_t k,
                                                    util::Time ready) {
  const auto& e = send_.at(q.id);
  const util::Time s_k = send_time_(q, e, k);
  SendPlan plan;
  plan.send_at = std::max(ready, s_k);
  const bool shifted = plan.send_at > s_k;
  if (shifted) ++phase_shifts_;
  if (shifted || force_advertise_.count(q.id) != 0) {
    // Advertise s(k+1) so the parent can follow the new phase.
    plan.phase_update = plan.send_at + q.period;
    ++phase_updates_;
    force_advertise_.erase(q.id);
  }
  // Wake for the scheduled submission.
  if (ctx_.sink) ctx_.sink->update_next_send(q.id, plan.send_at);
  return plan;
}

void DtsShaper::on_report_sent(const query::Query& q, std::int64_t k, util::Time sent) {
  // s(k+1) = s(k) + P when on time, t + P after a phase shift; both equal
  // sent + P because an on-time report goes out exactly at s(k).
  auto& e = send_[q.id];
  if (k + 1 > e.epoch) {
    e = Expectation{k + 1, sent + q.period};
    if (ctx_.sink) ctx_.sink->update_next_send(q.id, e.at);
  }
}

void DtsShaper::on_report_received(const query::Query& q, std::int64_t k,
                                   net::NodeId child,
                                   const std::optional<util::Time>& phase_update) {
  auto it = receive_.find({q.id, child});
  if (it == receive_.end()) return;  // not (or no longer) our child
  auto& e = it->second;
  const std::int64_t target = k + 1;
  if (phase_update.has_value()) {
    // The child's advertised s(k+1) is authoritative, even when a timeout
    // already advanced the epoch (late report after a deadline).
    e.at = *phase_update + q.period * (std::max(e.epoch, target) - target);
    e.epoch = std::max(e.epoch, target);
  } else if (target > e.epoch) {
    e.at += q.period * (target - e.epoch);
    e.epoch = target;
  } else {
    return;  // stale duplicate
  }
  if (ctx_.sink) ctx_.sink->update_next_receive(q.id, child, e.at);
}

void DtsShaper::on_child_timeout(const query::Query& q, std::int64_t k,
                                 net::NodeId child) {
  auto it = receive_.find({q.id, child});
  if (it == receive_.end()) return;
  auto& e = it->second;
  const std::int64_t target = k + 1;
  if (target > e.epoch) {
    e.at += q.period * (target - e.epoch);
    e.epoch = target;
    if (ctx_.sink) ctx_.sink->update_next_receive(q.id, child, e.at);
  }
}

util::Time DtsShaper::aggregation_deadline(const query::Query& q, std::int64_t k) const {
  // max_c r(k,c) + t_TO (§4.3): collection time depends on the one-hop
  // delay once phases have adapted.
  util::Time latest = q.epoch_start(k);
  for (const auto& [key, e] : receive_) {
    if (key.first != q.id) continue;
    latest = std::max(latest, send_time_(q, e, k));
  }
  return latest + params_.t_to;
}

util::Time DtsShaper::expected_send(const query::Query& q, std::int64_t k) const {
  const auto it = send_.find(q.id);
  if (it == send_.end()) return q.epoch_start(k);
  return send_time_(q, it->second, k);
}

util::Time DtsShaper::expected_receive(const query::Query& q, std::int64_t k,
                                       net::NodeId child) const {
  const auto it = receive_.find({q.id, child});
  if (it == receive_.end()) return q.epoch_start(k);
  return send_time_(q, it->second, k);
}

void DtsShaper::on_parent_changed(const query::Query& q) {
  // "The expected send and reception times are synchronized through one
  // phase update when the node sends its first data report to the new
  // parent" (§4.3).
  force_advertise_.insert(q.id);
}

void DtsShaper::on_child_added(const query::Query& q, net::NodeId child) {
  // Until the child's first (force-advertised) report arrives, expect it at
  // our current send pace.
  const auto s = send_.find(q.id);
  const Expectation e = s != send_.end() ? s->second : Expectation{0, q.phase};
  receive_[{q.id, child}] = e;
  if (ctx_.sink) ctx_.sink->update_next_receive(q.id, child, e.at);
}

void DtsShaper::on_child_removed(const query::Query& q, net::NodeId child) {
  receive_.erase({q.id, child});
  query::TrafficShaper::on_child_removed(q, child);
}

void DtsShaper::on_phase_request(net::QueryId q) { force_advertise_.insert(q); }

void DtsShaper::save_state(snap::Serializer& out) const {
  out.begin("SHDT");
  out.u64(send_.size());
  for (const auto& [q, e] : send_) {
    out.i32(q);
    out.i64(e.epoch);
    out.time(e.at);
  }
  out.u64(receive_.size());
  for (const auto& [key, e] : receive_) {
    out.i32(key.first);
    out.i32(key.second);
    out.i64(e.epoch);
    out.time(e.at);
  }
  out.u64(force_advertise_.size());
  for (net::QueryId q : force_advertise_) out.i32(q);
  out.u64(phase_updates_);
  out.u64(phase_shifts_);
  out.end();
}

}  // namespace essat::core
