#include "src/core/dissemination.h"

#include <algorithm>

namespace essat::core {

DisseminationAgent::DisseminationAgent(sim::Simulator& sim, mac::CsmaMac& mac,
                                       const routing::Tree& tree, net::NodeId self,
                                       DisseminationParams params,
                                       query::ExpectedTimeSink* sink)
    : sim_{sim}, mac_{mac}, tree_{tree}, self_{self}, params_{params}, sink_{sink} {}

util::Time DisseminationAgent::expected_send(const DisseminationTask& task,
                                             std::int64_t k) const {
  const int level = std::max(tree_.level(self_), 0);
  return task.epoch_start(k) + params_.level_slice * level;
}

util::Time DisseminationAgent::expected_receive(const DisseminationTask& task,
                                                std::int64_t k) const {
  const int level = std::max(tree_.level(self_), 0);
  return task.epoch_start(k) + params_.level_slice * std::max(level - 1, 0);
}

void DisseminationAgent::push_expectations_(const TaskState& ts) {
  if (!sink_) return;
  if (self_ != tree_.root()) {
    // Downstream flow: the "child" slot holds the upstream parent — the
    // sleep scheduler only cares about the earliest expected time per peer.
    sink_->update_next_receive(ts.task.id, tree_.parent(self_),
                               expected_receive(ts.task, ts.next_epoch));
  }
  // The send expectation is owned by forward_(): while a buffered forward
  // is pending, snext must be its submission time, not the next round's —
  // otherwise Safe Sleep powers down across its own scheduled send.
}

void DisseminationAgent::register_task(const DisseminationTask& task) {
  if (!tree_.is_member(self_)) return;
  auto [it, inserted] = tasks_.try_emplace(task.id);
  if (!inserted) return;
  it->second.task = task;
  push_expectations_(it->second);
  open_round_(it->second);
}

void DisseminationAgent::open_round_(TaskState& ts) {
  const std::int64_t k = ts.next_epoch;
  ts.round_timer = std::make_unique<sim::Timer>(sim_);
  if (self_ == tree_.root()) {
    // Generate this round's message at the epoch start and pace it out.
    ts.round_timer->arm_at(ts.task.epoch_start(k), [this, &ts, k] {
      ++stats_.generated;
      if (delivery_) delivery_(ts.task, k, sim_.now());
      forward_(ts, k);
      ts.next_epoch = k + 1;
      push_expectations_(ts);
      open_round_(ts);
    });
    return;
  }
  // Interior/leaf: listen from r(k); give the message up for lost after the
  // timeout so the schedule (and the radio) can move on.
  ts.round_timer->arm_at(expected_receive(ts.task, k) + params_.loss_timeout,
                         [this, &ts, k] {
                           ++stats_.missed_rounds;
                           ts.next_epoch = k + 1;
                           push_expectations_(ts);
                           open_round_(ts);
                         });
}

void DisseminationAgent::forward_(TaskState& ts, std::int64_t k) {
  const auto& children = tree_.children(self_);
  if (children.empty()) return;
  const util::Time send_at = std::max(sim_.now(), expected_send(ts.task, k));
  // Keep the radio's schedule pinned to the pending submission.
  if (sink_) sink_->update_next_send(ts.task.id, send_at);
  ts.send_timer = std::make_unique<sim::Timer>(sim_);
  ts.send_timer->arm_at(send_at, [this, &ts, k] {
    for (net::NodeId c : tree_.children(self_)) {
      net::DisseminationHeader h;
      h.task = ts.task.id;
      h.epoch = k;
      h.origin = tree_.root();
      mac_.send(net::make_dissemination_packet(self_, c, h));
      ++stats_.forwarded;
    }
    // Submission done: the next wake-for-send is the following round's
    // (ts.next_epoch has already advanced past k by now).
    if (sink_) {
      sink_->update_next_send(ts.task.id, expected_send(ts.task, ts.next_epoch));
    }
  });
}

void DisseminationAgent::handle_packet(const net::Packet& p) {
  if (p.type != net::PacketType::kDissemination) return;
  const net::DisseminationHeader& h = p.dissemination();
  auto it = tasks_.find(h.task);
  if (it == tasks_.end()) return;
  TaskState& ts = it->second;
  ++stats_.received;
  if (delivery_) delivery_(ts.task, h.epoch, sim_.now());

  if (h.epoch < ts.next_epoch) {
    // A round we already gave up on (or a duplicate): relay it immediately —
    // data still spreads, just unshaped — without touching the schedule.
    ++stats_.late_rounds;
    forward_(ts, h.epoch);
    return;
  }
  if (sim_.now() > expected_send(ts.task, h.epoch)) ++stats_.late_rounds;
  ts.round_timer.reset();  // cancel the loss timeout
  forward_(ts, h.epoch);
  ts.next_epoch = h.epoch + 1;
  push_expectations_(ts);
  open_round_(ts);
}

}  // namespace essat::core
