// STS — Static Traffic Shaper (§4.2.2).
//
// STS paces a report's multi-hop journey across a deadline D by allocating
// the same slice l = D/M to every rank:
//
//   r(q,k,c) = φ + kP + l * d_c     (child c's expected send time)
//   s(q,k)   = φ + kP + l * d       (this node's expected send time)
//
// where d is the node's rank and M the tree's maximum rank. Early reports
// are buffered until s(k); late ones go out immediately. The choice of l
// trades energy for latency (Eq. 2/3): the knee sits at l = T_agg, which is
// hard to estimate — the motivation for DTS.
#pragma once

#include <optional>

#include "src/core/formula_shaper.h"

namespace essat::core {

struct StsParams {
  // Query deadline D; defaults to the query period (the paper's main
  // experiments set "STS-SS's deadline equal to its period"; Fig. 2 sweeps
  // an explicit D).
  std::optional<util::Time> deadline;
  // Loss-timeout constant t_TO in the paper's s(k) + l - t_TO (§4.3).
  util::Time t_to = util::Time::from_milliseconds(10.0);
  // Floor that keeps the aggregation cutoff from firing during normal
  // (merely late) operation when l < T_agg: the timeout is for *lost*
  // reports, late ones are sent immediately on arrival. The paper leaves
  // this balance unspecified ("a detailed discussion is omitted"); we wait
  // at least one period past s(k).
  double loss_floor_periods = 1.0;
};

class StsShaper final : public FormulaShaper {
 public:
  explicit StsShaper(StsParams params = {}) : params_{params} {}

  const char* name() const override { return "STS"; }
  util::Time aggregation_deadline(const query::Query& q, std::int64_t k) const override;

  // Local deadline l = D/M for the given query.
  util::Time local_deadline(const query::Query& q) const;

 protected:
  util::Time send_formula(const query::Query& q, std::int64_t k) const override;
  util::Time recv_formula(const query::Query& q, std::int64_t k,
                          net::NodeId child) const override;

 private:
  StsParams params_;
};

}  // namespace essat::core
