#include "src/core/sts.h"

#include <algorithm>

namespace essat::core {

util::Time StsShaper::local_deadline(const query::Query& q) const {
  const util::Time d = params_.deadline.value_or(q.period);
  const int m = std::max(ctx().tree ? ctx().tree->max_rank() : 1, 1);
  return d / m;
}

util::Time StsShaper::send_formula(const query::Query& q, std::int64_t k) const {
  const int d = ctx().tree ? std::max(ctx().tree->rank(ctx().self), 0) : 0;
  return q.epoch_start(k) + local_deadline(q) * d;
}

util::Time StsShaper::recv_formula(const query::Query& q, std::int64_t k,
                                   net::NodeId child) const {
  // "The traffic shapers always set the expected reception time of a
  // child's data report to be the same as the child's expected send time"
  // (§4.1) — so r depends on the *child's* rank, not d-1.
  const int dc = ctx().tree ? std::max(ctx().tree->rank(child), 0) : 0;
  return q.epoch_start(k) + local_deadline(q) * dc;
}

util::Time StsShaper::aggregation_deadline(const query::Query& q, std::int64_t k) const {
  const util::Time s_k = send_formula(q, k);
  const util::Time paper_cutoff = s_k + local_deadline(q) - params_.t_to;
  const util::Time loss_floor = s_k + q.period * params_.loss_floor_periods;
  return std::max({s_k, paper_cutoff, loss_floor});
}

}  // namespace essat::core
