// SPAN baseline (§5): "a power management protocol that uses a
// communication backbone" [Chen et al., MobiCom'01].
//
// Coordinators form a connected dominating backbone and keep their radios
// always on. Following the paper's experimental modification, "the routing
// trees are modified such that all leaf nodes are sleeping nodes while
// non-leaf nodes are active nodes selected by SPAN ... the leaf nodes run
// NTS [with Safe Sleep] since it has better energy performance and lower
// query latency than PSM".
//
// Coordinator election applies SPAN's connectivity rule to the static
// topology: a node becomes a coordinator when two of its neighbors cannot
// reach each other directly or via one or two coordinators. Tree interior
// nodes are coordinators by construction (they must route), which matches
// the paper's modified setup; the election then adds whatever extra nodes
// the rule demands, in randomized (utility-shuffled) order as in SPAN's
// backoff-based announcement.
#pragma once

#include <vector>

#include "src/net/topology.h"
#include "src/routing/tree.h"
#include "src/util/rng.h"

namespace essat::baselines {

struct SpanElection {
  std::vector<bool> coordinator;  // indexed by node id
  int coordinator_count = 0;
};

// Elects coordinators over the static topology. `tree` members that are
// interior nodes are seeded as coordinators.
SpanElection elect_coordinators(const net::Topology& topo,
                                const routing::Tree& tree, util::Rng& rng);

// True when every pair of `node`'s neighbors can reach each other directly
// or through at most `max_hops` coordinator relays (SPAN's withdrawal /
// non-election condition with max_hops = 2).
bool neighbors_covered(const net::Topology& topo, const std::vector<bool>& coordinator,
                       net::NodeId node, int max_hops = 2);

}  // namespace essat::baselines
