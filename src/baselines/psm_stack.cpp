#include "src/baselines/psm_stack.h"

#include "src/core/nts.h"
#include "src/harness/scenario.h"
#include "src/harness/stack_registry.h"
#include "src/snap/serializer.h"

namespace essat::baselines {

std::unique_ptr<query::TrafficShaper> PsmPowerManager::make_shaper(
    const harness::StackContext&, const harness::NodeHandles&) {
  // Same greedy service as SYNC: ATIM-interval buffering dominates, so the
  // loss timeout must span several beacon periods.
  return std::make_unique<core::NtsShaper>(
      core::NtsParams{.full_period_deadline = true, .deadline_periods = 3.0});
}

core::SafeSleep* PsmPowerManager::attach_node(const harness::StackContext& ctx,
                                              const harness::NodeHandles& node) {
  if (psm_nodes_.size() < ctx.topo.num_nodes()) {
    psm_nodes_.resize(ctx.topo.num_nodes());
  }
  auto psm = std::make_unique<PsmNode>(ctx.sim, node.radio, node.mac, params_);
  psm->start(ctx.setup_end);
  psm_nodes_[static_cast<std::size_t>(node.id)] = std::move(psm);
  return nullptr;  // the beacon schedule manages the radio, not Safe Sleep
}

void PsmPowerManager::handle_packet(net::NodeId id, const net::Packet& packet) {
  if (packet.type != net::PacketType::kAtim) return;
  const auto i = static_cast<std::size_t>(id);
  if (i < psm_nodes_.size() && psm_nodes_[i]) psm_nodes_[i]->handle_packet(packet);
}

void PsmPowerManager::save_state(snap::Serializer& out) const {
  out.begin("PMPS");
  out.u64(psm_nodes_.size());
  for (const auto& node : psm_nodes_) {
    out.boolean(node != nullptr);
    if (node) node->save_state(out);
  }
  out.end();
}

void register_psm_power_manager() {
  harness::StackRegistry::instance().add(
      "PSM", [](const harness::ScenarioConfig&) {
        return std::make_unique<PsmPowerManager>();
      });
}

}  // namespace essat::baselines
