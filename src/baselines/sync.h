// SYNC baseline (§5): "uses a fixed duty cycle, an approach adopted by
// synchronous wake up protocols [S-MAC]. All nodes share a synchronized
// periodic schedule. Each period includes fixed active and sleep windows."
//
// Paper configuration: 20 % duty cycle, 0.2 s period. Transmissions are
// admitted only during the shared active window; frames enqueued elsewhere
// wait — the buffering that drives SYNC's latency in Figures 6/7.
#pragma once

#include "src/energy/radio.h"
#include "src/mac/csma.h"
#include "src/sim/timer.h"
#include "src/util/time.h"

namespace essat::snap {
class Serializer;
}  // namespace essat::snap

namespace essat::baselines {

struct SyncParams {
  util::Time period = util::Time::from_milliseconds(200.0);
  double duty_cycle = 0.20;
  // No new transmission starts when less than this remains of the active
  // window: a frame plus its ACK must fit before everyone sleeps, or the
  // sender burns its retry budget against powered-down receivers.
  util::Time tx_guard = util::Time::from_milliseconds(2.0);
};

class SyncNode {
 public:
  SyncNode(sim::Simulator& sim, energy::Radio& radio, mac::CsmaMac& mac,
           SyncParams params);

  // Begins the schedule at `first_window` (same instant on every node: the
  // schedule is network-synchronized).
  void start(util::Time first_window);

  util::Time active_window() const { return params_.period * params_.duty_cycle; }
  bool in_active_window() const;

  // Snapshot hook: window phase and the schedule timer.
  void save_state(snap::Serializer& out) const;

 private:
  void on_window_start_();
  void on_window_end_();

  sim::Simulator& sim_;
  energy::Radio& radio_;
  mac::CsmaMac& mac_;
  SyncParams params_;
  sim::Timer timer_;
  bool active_ = false;
  util::Time window_end_;
};

}  // namespace essat::baselines
