// SPAN baseline policy: an elected coordinator backbone keeps its radios
// always on while leaves run NTS with Safe Sleep (§5's modified setup).
// Reuses the generic ESSAT "shaper + Safe Sleep" wiring, with sleeping
// disabled on the backbone; the election runs once the routing tree is
// final. Registered in the StackRegistry as "SPAN".
#pragma once

#include "src/baselines/span.h"
#include "src/core/essat_stack.h"
#include "src/harness/power_manager.h"

namespace essat::baselines {

class SpanPowerManager : public core::EssatPowerManager {
 public:
  SpanPowerManager();

  void on_tree_ready(const harness::StackContext& ctx) override;
  int backbone_size() const override { return election_.coordinator_count; }

  // Snapshot hook: the elected backbone plus the base's SafeSleep fleet.
  void save_state(snap::Serializer& out) const override;

 private:
  SpanElection election_;
};

// Called by the StackRegistry to pull this translation unit into the link.
void register_span_power_manager();

}  // namespace essat::baselines
