// SYNC baseline policy: a network-synchronized fixed duty cycle per node
// (SyncNode), with the query service running greedily on top (NTS shaper
// with a generous loss timeout — per-hop buffering delays exceed the
// rank-based budgets). Registered in the StackRegistry as "SYNC".
#pragma once

#include <memory>
#include <vector>

#include "src/baselines/sync.h"
#include "src/harness/power_manager.h"

namespace essat::baselines {

class SyncPowerManager : public harness::PowerManager {
 public:
  explicit SyncPowerManager(SyncParams params = {}) : params_(params) {}

  std::unique_ptr<query::TrafficShaper> make_shaper(
      const harness::StackContext& ctx, const harness::NodeHandles& node) override;
  core::SafeSleep* attach_node(const harness::StackContext& ctx,
                               const harness::NodeHandles& node) override;

  // Snapshot hook: every SyncNode in attach order.
  void save_state(snap::Serializer& out) const override;

 private:
  SyncParams params_;
  std::vector<std::unique_ptr<SyncNode>> sync_nodes_;
};

// Called by the StackRegistry to pull this translation unit into the link.
void register_sync_power_manager();

}  // namespace essat::baselines
