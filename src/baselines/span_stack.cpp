#include "src/baselines/span_stack.h"

#include "src/core/nts.h"
#include "src/harness/scenario.h"
#include "src/harness/stack_registry.h"
#include "src/snap/serializer.h"

namespace essat::baselines {

SpanPowerManager::SpanPowerManager()
    : core::EssatPowerManager(
          // Leaves (and, harmlessly, backbone nodes) run NTS (§5).
          [](const harness::ScenarioConfig&) {
            return std::make_unique<core::NtsShaper>();
          },
          // Safe Sleep only off the backbone: coordinators stay always on.
          [this](const harness::NodeHandles& node) {
            return !election_.coordinator.at(static_cast<std::size_t>(node.id));
          }) {}

void SpanPowerManager::on_tree_ready(const harness::StackContext& ctx) {
  election_ = elect_coordinators(ctx.topo, ctx.tree, ctx.rng);
}

void SpanPowerManager::save_state(snap::Serializer& out) const {
  out.begin("PMSP");
  out.i32(election_.coordinator_count);
  out.u64(election_.coordinator.size());
  for (bool c : election_.coordinator) out.boolean(c);
  core::EssatPowerManager::save_state(out);
  out.end();
}

void register_span_power_manager() {
  harness::StackRegistry::instance().add(
      "SPAN", [](const harness::ScenarioConfig&) {
        return std::make_unique<SpanPowerManager>();
      });
}

}  // namespace essat::baselines
