#include "src/baselines/sync.h"

#include "src/snap/serializer.h"
#include "src/snap/timer_codec.h"

namespace essat::baselines {

SyncNode::SyncNode(sim::Simulator& sim, energy::Radio& radio, mac::CsmaMac& mac,
                   SyncParams params)
    : sim_{sim}, radio_{radio}, mac_{mac}, params_{params}, timer_{sim} {}

void SyncNode::start(util::Time first_window) {
  mac_.set_tx_filter([this](const net::Packet&) {
    return active_ && sim_.now() + params_.tx_guard < window_end_;
  });
  timer_.arm_at(first_window, [this] { on_window_start_(); });
}

bool SyncNode::in_active_window() const { return active_; }

void SyncNode::on_window_start_() {
  active_ = true;
  window_end_ = sim_.now() + active_window();
  radio_.turn_on();
  mac_.kick();
  timer_.arm_in(active_window(), [this] { on_window_end_(); });
}

void SyncNode::on_window_end_() {
  active_ = false;
  radio_.turn_off();
  timer_.arm_in(params_.period - active_window(), [this] { on_window_start_(); });
}

void SyncNode::save_state(snap::Serializer& out) const {
  out.begin("SYNN");
  out.boolean(active_);
  out.time(window_end_);
  snap::save_timer(out, timer_);
  out.end();
}

}  // namespace essat::baselines
