#include "src/baselines/psm.h"

#include <algorithm>

#include "src/snap/serializer.h"
#include "src/snap/timer_codec.h"

namespace essat::baselines {

PsmNode::PsmNode(sim::Simulator& sim, energy::Radio& radio, mac::CsmaMac& mac,
                 PsmParams params)
    : sim_{sim}, radio_{radio}, mac_{mac}, params_{params}, timer_{sim} {}

void PsmNode::start(util::Time first_beacon) {
  mac_.set_tx_filter([this](const net::Packet& p) { return admit_(p); });
  timer_.arm_at(first_beacon, [this] { on_beacon_(); });
}

bool PsmNode::admit_(const net::Packet& p) const {
  switch (phase_) {
    case Phase::kSleep:
      return false;
    case Phase::kAtim:
      return p.type == net::PacketType::kAtim;
    case Phase::kData:
      // Only frames whose destination heard our ATIM (and thus stayed
      // awake) may go out; the rest wait for the next interval.
      return p.type != net::PacketType::kAtim &&
             (p.is_broadcast() || cleared_.count(p.link_dst) != 0);
  }
  return false;
}

void PsmNode::on_beacon_() {
  phase_ = Phase::kAtim;
  involved_ = false;
  cleared_.clear();
  radio_.turn_on();

  const auto dests = mac_.pending_destinations();
  if (!dests.empty()) {
    cleared_.insert(dests.begin(), dests.end());
    involved_ = true;  // we have traffic to push in the data window
    ++atims_sent_;
    mac_.send(net::make_atim_packet(mac_.self(), dests));
  }
  mac_.kick();
  timer_.arm_in(params_.atim_window, [this] { on_atim_end_(); });
}

void PsmNode::on_atim_end_() {
  if (involved_) {
    phase_ = Phase::kData;
    mac_.kick();
    timer_.arm_in(params_.data_window, [this] { on_data_end_(); });
  } else {
    phase_ = Phase::kSleep;
    radio_.turn_off();
    timer_.arm_in(params_.beacon_period - params_.atim_window,
                  [this] { on_beacon_(); });
  }
}

void PsmNode::on_data_end_() {
  phase_ = Phase::kSleep;
  radio_.turn_off();
  timer_.arm_in(params_.beacon_period - params_.atim_window - params_.data_window,
                [this] { on_beacon_(); });
}

void PsmNode::handle_packet(const net::Packet& p) {
  if (p.type != net::PacketType::kAtim) return;
  const auto& dests = p.atim().destinations;
  if (std::find(dests.begin(), dests.end(), mac_.self()) != dests.end()) {
    involved_ = true;  // a neighbor will send to us: stay awake
  }
}

void PsmNode::save_state(snap::Serializer& out) const {
  out.begin("PSMN");
  out.u8(static_cast<std::uint8_t>(phase_));
  out.boolean(involved_);
  out.u64(cleared_.size());
  for (net::NodeId n : cleared_) out.i32(n);
  out.u64(atims_sent_);
  snap::save_timer(out, timer_);
  out.end();
}

}  // namespace essat::baselines
