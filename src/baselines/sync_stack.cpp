#include "src/baselines/sync_stack.h"

#include "src/core/nts.h"
#include "src/harness/scenario.h"
#include "src/harness/stack_registry.h"
#include "src/snap/serializer.h"

namespace essat::baselines {

std::unique_ptr<query::TrafficShaper> SyncPowerManager::make_shaper(
    const harness::StackContext&, const harness::NodeHandles&) {
  // The query service runs greedily on top of the MAC-layer power
  // management; generous loss timeout (per-hop buffering delays exceed
  // rank-based budgets, ~1 beacon interval per hop).
  return std::make_unique<core::NtsShaper>(
      core::NtsParams{.full_period_deadline = true, .deadline_periods = 3.0});
}

core::SafeSleep* SyncPowerManager::attach_node(const harness::StackContext& ctx,
                                               const harness::NodeHandles& node) {
  auto sync = std::make_unique<SyncNode>(ctx.sim, node.radio, node.mac, params_);
  sync->start(ctx.setup_end);
  sync_nodes_.push_back(std::move(sync));
  return nullptr;  // the duty schedule manages the radio, not Safe Sleep
}

void SyncPowerManager::save_state(snap::Serializer& out) const {
  out.begin("PMSY");
  out.u64(sync_nodes_.size());
  for (const auto& node : sync_nodes_) node->save_state(out);
  out.end();
}

void register_sync_power_manager() {
  harness::StackRegistry::instance().add(
      "SYNC", [](const harness::ScenarioConfig&) {
        return std::make_unique<SyncPowerManager>();
      });
}

}  // namespace essat::baselines
