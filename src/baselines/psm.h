// PSM baseline (§5): IEEE 802.11 power-save mode "with the extensions
// proposed in [Span]: it adapts to observed traffic through traffic
// advertisements".
//
// Paper configuration: beacon period 0.2 s, ATIM window 0.025 s,
// advertisement (data) window 0.1 s.
//
// Model: every node wakes for the ATIM window at each beacon. A node with
// queued unicast frames broadcasts an ATIM announcement listing the
// destinations. Announcing nodes and announced destinations stay awake for
// the data window that follows and exchange the announced frames; everyone
// else returns to sleep at the ATIM window's end. All nodes sleep from the
// end of the data window to the next beacon. Frames enqueued mid-interval
// wait for the next ATIM — the per-hop buffering that dominates PSM's
// latency, while the mandatory ATIM wake-up sets its ~12.5 % duty floor.
#pragma once

#include <set>

#include "src/energy/radio.h"
#include "src/mac/csma.h"
#include "src/net/packet.h"
#include "src/sim/timer.h"
#include "src/util/time.h"

namespace essat::snap {
class Serializer;
}  // namespace essat::snap

namespace essat::baselines {

struct PsmParams {
  util::Time beacon_period = util::Time::from_milliseconds(200.0);
  util::Time atim_window = util::Time::from_milliseconds(25.0);
  util::Time data_window = util::Time::from_milliseconds(100.0);
};

class PsmNode {
 public:
  PsmNode(sim::Simulator& sim, energy::Radio& radio, mac::CsmaMac& mac,
          PsmParams params);

  // Begins the beacon schedule at `first_beacon` (network-synchronized,
  // as in infrastructure-less 802.11 PSM after beacon synchronization).
  void start(util::Time first_beacon);

  // Feed kAtim packets received by this node.
  void handle_packet(const net::Packet& p);

  bool involved_this_interval() const { return involved_; }
  std::uint64_t atims_sent() const { return atims_sent_; }

  // Snapshot hook: beacon phase, interval involvement, and the schedule
  // timer.
  void save_state(snap::Serializer& out) const;

 private:
  enum class Phase { kSleep, kAtim, kData };

  void on_beacon_();
  void on_atim_end_();
  void on_data_end_();
  bool admit_(const net::Packet& p) const;

  sim::Simulator& sim_;
  energy::Radio& radio_;
  mac::CsmaMac& mac_;
  PsmParams params_;
  sim::Timer timer_;
  Phase phase_ = Phase::kSleep;
  bool involved_ = false;        // sent or was addressed by an ATIM
  std::set<net::NodeId> cleared_;  // destinations we announced this interval
  std::uint64_t atims_sent_ = 0;
};

}  // namespace essat::baselines
