// PSM baseline policy: 802.11 power-save mode with traffic announcements
// (PsmNode) per node; ATIM control packets are routed back to the owning
// node through handle_packet. Registered in the StackRegistry as "PSM".
#pragma once

#include <memory>
#include <vector>

#include "src/baselines/psm.h"
#include "src/harness/power_manager.h"

namespace essat::baselines {

class PsmPowerManager : public harness::PowerManager {
 public:
  explicit PsmPowerManager(PsmParams params = {}) : params_(params) {}

  std::unique_ptr<query::TrafficShaper> make_shaper(
      const harness::StackContext& ctx, const harness::NodeHandles& node) override;
  core::SafeSleep* attach_node(const harness::StackContext& ctx,
                               const harness::NodeHandles& node) override;
  void handle_packet(net::NodeId id, const net::Packet& packet) override;

  // Snapshot hook: every PsmNode by node id (absent slots flagged).
  void save_state(snap::Serializer& out) const override;

 private:
  PsmParams params_;
  std::vector<std::unique_ptr<PsmNode>> psm_nodes_;  // indexed by node id
};

// Called by the StackRegistry to pull this translation unit into the link.
void register_psm_power_manager();

}  // namespace essat::baselines
