#include "src/baselines/span.h"

#include <algorithm>
#include <numeric>

namespace essat::baselines {
namespace {

bool pair_connected(const net::Topology& topo, const std::vector<bool>& coord,
                    net::NodeId u, net::NodeId w, int max_hops) {
  if (topo.in_range(u, w)) return true;
  if (max_hops >= 1) {
    for (net::NodeId c : topo.neighbors(u)) {
      if (!coord[static_cast<std::size_t>(c)]) continue;
      if (topo.in_range(c, w)) return true;
      if (max_hops >= 2) {
        for (net::NodeId c2 : topo.neighbors(c)) {
          if (c2 == u || !coord[static_cast<std::size_t>(c2)]) continue;
          if (topo.in_range(c2, w)) return true;
        }
      }
    }
  }
  return false;
}

}  // namespace

bool neighbors_covered(const net::Topology& topo, const std::vector<bool>& coordinator,
                       net::NodeId node, int max_hops) {
  const auto& nbrs = topo.neighbors(node);
  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    for (std::size_t j = i + 1; j < nbrs.size(); ++j) {
      if (!pair_connected(topo, coordinator, nbrs[i], nbrs[j], max_hops)) {
        return false;
      }
    }
  }
  return true;
}

SpanElection elect_coordinators(const net::Topology& topo,
                                const routing::Tree& tree, util::Rng& rng) {
  SpanElection out;
  out.coordinator.assign(topo.num_nodes(), false);

  // Seed: tree interior nodes must stay awake to route (paper's modified
  // SPAN setup).
  for (net::NodeId n : tree.members()) {
    if (!tree.is_leaf(n)) out.coordinator[static_cast<std::size_t>(n)] = true;
  }

  // SPAN's announcement contention resolves in effectively random order;
  // iterate shuffled until a fixpoint.
  std::vector<net::NodeId> order(topo.num_nodes());
  std::iota(order.begin(), order.end(), 0);
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1],
              order[static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(i) - 1))]);
  }

  bool changed = true;
  while (changed) {
    changed = false;
    for (net::NodeId n : order) {
      if (out.coordinator[static_cast<std::size_t>(n)]) continue;
      if (!neighbors_covered(topo, out.coordinator, n)) {
        out.coordinator[static_cast<std::size_t>(n)] = true;
        changed = true;
      }
    }
  }
  out.coordinator_count = static_cast<int>(
      std::count(out.coordinator.begin(), out.coordinator.end(), true));
  return out;
}

}  // namespace essat::baselines
