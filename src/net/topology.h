// Static network topology: node positions and unit-disc connectivity, plus
// the declarative DeploymentSpec the harness sweeps over.
//
// The paper's setup: 80 nodes uniformly random in a 500x500 m^2 area with a
// 125 m communication range. The extra generators (grid, line, clustered,
// corridor) open the deployment axis the paper left fixed.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "src/net/position.h"
#include "src/net/types.h"
#include "src/util/rng.h"

namespace essat::net {

class Topology {
 public:
  // Explicit placement (tests and small examples).
  Topology(std::vector<Position> positions, double range_m);

  // Uniform random placement in [0, area_m)^2 (the paper's deployment).
  static Topology uniform_random(std::size_t num_nodes, double area_m,
                                 double range_m, util::Rng& rng);
  // Regular chain: node i at (i * spacing_m, 0). Handy for rank-specific
  // unit tests where the tree shape must be exact.
  static Topology line(std::size_t num_nodes, double spacing_m, double range_m);
  // Regular sqrt(n) x sqrt(n) grid with the given spacing.
  static Topology grid(std::size_t side, double spacing_m, double range_m);
  // Near-square grid of exactly num_nodes spanning [0, area_m]^2 (the last
  // row may be partial). Deterministic: no RNG is consumed.
  static Topology grid_area(std::size_t num_nodes, double area_m, double range_m);
  // Gaussian clusters: `clusters` centres evenly spaced on a circle of
  // radius area_m/4 around the area centre (plus one central cluster when
  // clusters > 4); nodes assigned round-robin with N(0, sigma_m) offsets,
  // clamped to the area. Models dense sensor patches with sparse bridges.
  static Topology clustered(std::size_t num_nodes, double area_m, double range_m,
                            std::size_t clusters, double sigma_m, util::Rng& rng);
  // Sparse corridor: uniform placement in [0, length_m) x [0, width_m) —
  // an elongated deployment (road / pipeline / perimeter) that produces
  // deep routing trees.
  static Topology corridor(std::size_t num_nodes, double length_m,
                           double width_m, double range_m, util::Rng& rng);

  std::size_t num_nodes() const { return positions_.size(); }
  const Position& position(NodeId n) const { return positions_.at(static_cast<std::size_t>(n)); }
  double range() const { return range_m_; }

  bool in_range(NodeId a, NodeId b) const;
  const std::vector<NodeId>& neighbors(NodeId n) const {
    return neighbors_.at(static_cast<std::size_t>(n));
  }

  // Node closest to the given point (the paper roots the tree at the node
  // nearest the centre of the area).
  NodeId nearest(const Position& p) const;

  // True if every node can reach every other node over in-range hops.
  bool connected() const;

 private:
  void build_neighbor_lists_();

  std::vector<Position> positions_;
  double range_m_;
  std::vector<std::vector<NodeId>> neighbors_;
};

// ---------------------------------------------------------------------------
// Declarative deployment description: which generator, how many nodes, and
// the geometry knobs — everything run_scenario needs to materialize a
// Topology. Sweepable as a unit (exp::SweepSpec::axis_topology).

enum class TopologyKind { kUniform, kGrid, kLine, kClustered, kCorridor };

// Stable lower-case names ("uniform", "grid", ...). Throws
// std::invalid_argument on an out-of-range kind / unknown name.
const char* topology_kind_name(TopologyKind k);
TopologyKind topology_kind_from_name(const std::string& name);

struct DeploymentSpec {
  TopologyKind kind = TopologyKind::kUniform;
  int num_nodes = 80;
  // Square side for uniform/grid/clustered; total extent for line/corridor.
  double area_m = 500.0;
  double range_m = 125.0;
  // Tree construction: only nodes within this distance of the root join
  // (the paper's 300 m cap on its 500 m area). Scaled by build callers when
  // the area changes.
  double max_tree_dist_m = 300.0;

  // kClustered knobs.
  int clusters = 4;
  double cluster_sigma_m = 40.0;

  // kCorridor knob.
  double corridor_width_m = 60.0;

  // Materializes the deployment. `rng` is consumed only by the random
  // kinds; regular shapes (grid, line) are purely deterministic.
  Topology build(util::Rng& rng) const;

  // Geometric centre of the deployed region (the paper roots the routing
  // tree at the node nearest the centre). Shape-aware: a corridor's centre
  // sits on its spine, a line's on the chain.
  Position centre() const;
};

}  // namespace essat::net
