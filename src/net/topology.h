// Static network topology: node positions and unit-disc connectivity.
//
// The paper's setup: 80 nodes uniformly random in a 500x500 m^2 area with a
// 125 m communication range.
#pragma once

#include <cstddef>
#include <vector>

#include "src/net/position.h"
#include "src/net/types.h"
#include "src/util/rng.h"

namespace essat::net {

class Topology {
 public:
  // Explicit placement (tests and small examples).
  Topology(std::vector<Position> positions, double range_m);

  // Uniform random placement in [0, area_m)^2 (the paper's deployment).
  static Topology uniform_random(std::size_t num_nodes, double area_m,
                                 double range_m, util::Rng& rng);
  // Regular chain: node i at (i * spacing_m, 0). Handy for rank-specific
  // unit tests where the tree shape must be exact.
  static Topology line(std::size_t num_nodes, double spacing_m, double range_m);
  // Regular sqrt(n) x sqrt(n) grid with the given spacing.
  static Topology grid(std::size_t side, double spacing_m, double range_m);

  std::size_t num_nodes() const { return positions_.size(); }
  const Position& position(NodeId n) const { return positions_.at(static_cast<std::size_t>(n)); }
  double range() const { return range_m_; }

  bool in_range(NodeId a, NodeId b) const;
  const std::vector<NodeId>& neighbors(NodeId n) const {
    return neighbors_.at(static_cast<std::size_t>(n));
  }

  // Node closest to the given point (the paper roots the tree at the node
  // nearest the centre of the area).
  NodeId nearest(const Position& p) const;

  // True if every node can reach every other node over in-range hops.
  bool connected() const;

 private:
  void build_neighbor_lists_();

  std::vector<Position> positions_;
  double range_m_;
  std::vector<std::vector<NodeId>> neighbors_;
};

}  // namespace essat::net
