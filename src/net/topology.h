// Network topology: node positions and unit-disc connectivity, plus the
// declarative DeploymentSpec the harness sweeps over.
//
// The paper's setup: 80 nodes uniformly random in a 500x500 m^2 area with a
// 125 m communication range. The extra generators (grid, line, clustered,
// corridor) open the deployment axis the paper left fixed.
//
// Positions are a snapshot, optionally backed by a MobilityModel
// (net/mobility.h): advance_to(t) re-samples the model and rebuilds the
// neighbor sets once per epoch, so consumers (channel, tree construction,
// repair) keep reading through the same accessors while the geometry — and
// with it every link — drifts over time. Without a model the topology is
// frozen, exactly the seed's behavior. Neighbor sets are built with a
// uniform-grid spatial index (expected O(n)), so the per-epoch rebuild
// stays affordable at thousands of nodes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/net/mobility.h"
#include "src/net/position.h"
#include "src/net/types.h"
#include "src/util/rng.h"
#include "src/util/time.h"

namespace essat::snap {
class Serializer;
}  // namespace essat::snap

namespace essat::net {

class Topology {
 public:
  // Explicit placement (tests and small examples).
  Topology(std::vector<Position> positions, double range_m);

  // Uniform random placement in [0, area_m)^2 (the paper's deployment).
  static Topology uniform_random(std::size_t num_nodes, double area_m,
                                 double range_m, util::Rng& rng);
  // Regular chain: node i at (i * spacing_m, 0). Handy for rank-specific
  // unit tests where the tree shape must be exact.
  static Topology line(std::size_t num_nodes, double spacing_m, double range_m);
  // Regular sqrt(n) x sqrt(n) grid with the given spacing.
  static Topology grid(std::size_t side, double spacing_m, double range_m);
  // Near-square grid of exactly num_nodes spanning [0, area_m]^2 (the last
  // row may be partial). Deterministic: no RNG is consumed.
  static Topology grid_area(std::size_t num_nodes, double area_m, double range_m);
  // Gaussian clusters: `clusters` centres evenly spaced on a circle of
  // radius area_m/4 around the area centre (plus one central cluster when
  // clusters > 4); nodes assigned round-robin with N(0, sigma_m) offsets,
  // clamped to the area. Models dense sensor patches with sparse bridges.
  static Topology clustered(std::size_t num_nodes, double area_m, double range_m,
                            std::size_t clusters, double sigma_m, util::Rng& rng);
  // Sparse corridor: uniform placement in [0, length_m) x [0, width_m) —
  // an elongated deployment (road / pipeline / perimeter) that produces
  // deep routing trees.
  static Topology corridor(std::size_t num_nodes, double length_m,
                           double width_m, double range_m, util::Rng& rng);

  std::size_t num_nodes() const { return positions_.size(); }
  const Position& position(NodeId n) const { return positions_.at(static_cast<std::size_t>(n)); }
  const std::vector<Position>& positions() const { return positions_; }
  double range() const { return range_m_; }

  bool in_range(NodeId a, NodeId b) const;
  const std::vector<NodeId>& neighbors(NodeId n) const {
    return *neighbors_.at(static_cast<std::size_t>(n));
  }
  // Refcounted handle on a node's current neighbor list. Each epoch rebuild
  // replaces the lists instead of mutating them (copy-on-rebuild), so a
  // consumer that must keep one frame's receiver set stable across a
  // rebuild — the channel, for in-flight transmissions — holds a handle
  // instead of copying the vector.
  std::shared_ptr<const std::vector<NodeId>> neighbors_handle(NodeId n) const {
    return neighbors_.at(static_cast<std::size_t>(n));
  }

  // Node closest to the given point (the paper roots the tree at the node
  // nearest the centre of the area).
  NodeId nearest(const Position& p) const;

  // True if every node can reach every other node over in-range hops.
  bool connected() const;

  // --- Time-varying backing (mobility) ----------------------------------
  // Installs a position source; accessors keep returning the most recent
  // epoch snapshot, advance_to() refreshes it. Shared so Topology stays
  // copyable (copies share the model; in practice one topology per trial).
  void set_mobility_model(std::shared_ptr<MobilityModel> model,
                          util::Time epoch);
  bool time_varying() const { return mobility_ != nullptr; }
  util::Time mobility_epoch() const { return epoch_; }
  // Re-samples positions from the mobility model and rebuilds the neighbor
  // sets when `t` has entered a new epoch since the last call. No-op for a
  // static topology. `t` must be non-decreasing across calls.
  void advance_to(util::Time t);
  // Neighbor-set builds so far (1 after construction); introspection for
  // the epoch-tick tests.
  std::uint64_t neighbor_rebuilds() const { return rebuilds_; }

  // Snapshot hook: positions, neighbor lists, and the mobility epoch
  // cursor, plus the installed model's state.
  void save_state(snap::Serializer& out) const;

 private:
  void build_neighbor_lists_();

  std::vector<Position> positions_;
  double range_m_;
  // Immutable per-node lists, replaced wholesale on every rebuild.
  std::vector<std::shared_ptr<const std::vector<NodeId>>> neighbors_;
  std::shared_ptr<MobilityModel> mobility_;
  util::Time epoch_ = util::Time::seconds(5);
  std::int64_t epoch_index_ = 0;
  std::uint64_t rebuilds_ = 0;
};

// ---------------------------------------------------------------------------
// Declarative deployment description: which generator, how many nodes, and
// the geometry knobs — everything run_scenario needs to materialize a
// Topology. Sweepable as a unit (exp::SweepSpec::axis_topology).

enum class TopologyKind { kUniform, kGrid, kLine, kClustered, kCorridor };

// Stable lower-case names ("uniform", "grid", ...). Throws
// std::invalid_argument on an out-of-range kind / unknown name.
const char* topology_kind_name(TopologyKind k);
TopologyKind topology_kind_from_name(const std::string& name);

struct DeploymentSpec {
  TopologyKind kind = TopologyKind::kUniform;
  int num_nodes = 80;
  // Square side for uniform/grid/clustered; total extent for line/corridor.
  double area_m = 500.0;
  double range_m = 125.0;
  // Tree construction: only nodes within this distance of the root join
  // (the paper's 300 m cap on its 500 m area). Scaled by build callers when
  // the area changes.
  double max_tree_dist_m = 300.0;

  // kClustered knobs.
  int clusters = 4;
  double cluster_sigma_m = 40.0;

  // kCorridor knob.
  double corridor_width_m = 60.0;

  // Materializes the deployment. `rng` is consumed only by the random
  // kinds; regular shapes (grid, line) are purely deterministic.
  Topology build(util::Rng& rng) const;

  // Geometric centre of the deployed region (the paper roots the routing
  // tree at the node nearest the centre). Shape-aware: a corridor's centre
  // sits on its spine, a line's on the chain.
  Position centre() const;

  // Width/height of the deployed rectangle — the bounds mobility models
  // roam in (a line's height is 0: waypoints stay on the chain).
  Position extent() const;
};

}  // namespace essat::net
