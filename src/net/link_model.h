// Pluggable per-link loss models for the wireless channel.
//
// The seed's Channel reproduces ns-2's two-ray/unit-disc radio: every
// in-range frame is decodable unless it collides. A LinkModel layers
// probabilistic loss on top of that connectivity graph — it decides, once
// per (directed link, frame), whether the frame is decodable at the
// receiver. Models only *remove* deliveries within the unit disc; links
// beyond the disc stay absent (the topology's neighbor lists are the
// connectivity ground truth).
//
// Shipping models:
//  * UnitDisc        — never drops; the seed's behavior and the default.
//  * LogNormalShadowing — a static per-directed-link packet reception rate
//    from a distance/PRR curve plus a per-link shadowing offset, giving
//    asymmetric and gray-zone links; each frame is a Bernoulli(PRR) draw.
//  * GilbertElliott  — a two-state (good/bad) Markov chain per directed
//    link stepped once per frame, layered multiplicatively on any base
//    model; models time-varying bursty loss.
//
// Determinism: a model instance is built per trial from the trial's seed
// (ChannelModelSpec::build takes a util::Rng by value). Per-link quantities
// (shadowing gains, initial burst states) are drawn from streams forked by
// link key, so they do not depend on traffic order; per-frame draws come
// from the model's own stream, which the single-threaded simulator visits
// in deterministic event order. Same seed => same losses, any thread count.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/net/types.h"
#include "src/util/rng.h"

namespace essat::snap {
class Serializer;
}  // namespace essat::snap

namespace essat::net {

// Key of a directed link, usable as an unordered_map key.
inline std::uint64_t link_key(NodeId src, NodeId dst) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 32) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(dst));
}

class LinkModel {
 public:
  virtual ~LinkModel() = default;
  // One sample per (directed link, frame): true if the frame is decodable
  // at `dst`. Called by the channel for every in-range receiver of every
  // transmission, listening or not, so stateful models see a regular
  // per-frame clock.
  virtual bool deliver(NodeId src, NodeId dst, double distance_m) = 0;
  virtual const char* name() const = 0;
  // True when deliver() returns true unconditionally and draws no
  // randomness. The channel caches this to skip the per-arrival distance
  // computation and virtual call entirely — the default unit-disc spec
  // must cost exactly as much as no model at all.
  virtual bool always_delivers() const { return false; }
  // Long-run expected delivery probability of the directed link at the
  // given distance — the prior link-quality-aware routing starts from
  // before any traffic has been observed (routing::LinkEstimator). Draws
  // no randomness beyond per-link statics. 1 for lossless models.
  virtual double expected_prr(NodeId src, NodeId dst, double distance_m) const {
    (void)src;
    (void)dst;
    (void)distance_m;
    return 1.0;
  }
  // Snapshot hook: per-link caches/chain states in sorted-key order plus
  // the model's RNG streams. Stateless models write nothing.
  virtual void save_state(snap::Serializer& out) const { (void)out; }
};

// The seed's lossless in-range channel. Draws no randomness.
class UnitDiscModel : public LinkModel {
 public:
  bool deliver(NodeId, NodeId, double) override { return true; }
  const char* name() const override { return "unit-disc"; }
  bool always_delivers() const override { return true; }
};

struct ShadowingParams {
  // Path-loss exponent n: the deterministic margin falls as
  // 10 n log10(d / range).
  double path_loss_exponent = 3.0;
  // Std-dev of the static per-directed-link shadowing offset (dB). Links
  // a->b and b->a draw independently, so links come out asymmetric.
  double shadowing_sigma_db = 4.0;
  // Logistic softness of the margin -> PRR curve (dB per e-fold). Smaller
  // values sharpen the curve toward the unit-disc step.
  double gray_zone_width_db = 3.0;
  // Link margin at exactly the nominal range with zero shadowing; the PRR
  // there is logistic(range_margin_db / gray_zone_width_db) ~= 0.73 with
  // the defaults, rising toward 1 for closer links.
  double range_margin_db = 3.0;
};

// Per-link PRR from a distance/PRR curve:
//   margin(d) = range_margin_db + 10 n log10(range/d) + X_link,
//   PRR = 1 / (1 + exp(-margin / gray_zone_width_db)),
// with X_link ~ N(0, sigma) drawn once per directed link from a stream
// forked by link key. The distance term is evaluated at every call, so the
// PRR follows the endpoints when mobility moves them; on a frozen topology
// it is static. Every frame is an independent Bernoulli(PRR) draw.
class LogNormalShadowingModel : public LinkModel {
 public:
  LogNormalShadowingModel(ShadowingParams params, double range_m, util::Rng&& rng);

  bool deliver(NodeId src, NodeId dst, double distance_m) override;
  const char* name() const override { return "shadowing"; }
  double expected_prr(NodeId src, NodeId dst, double distance_m) const override {
    return link_prr(src, dst, distance_m);
  }

  // PRR of a directed link at the given distance. The per-link shadowing
  // offset is drawn once (from a stream forked by link key, so the cache is
  // a pure memoization and stays const-correct); the PRR is memoized per
  // link against the last-seen distance, so a frozen topology pays the
  // curve once per link while mobility-updated distances recompute it.
  double link_prr(NodeId src, NodeId dst, double distance_m) const;

  void save_state(snap::Serializer& out) const override;

 private:
  struct LinkState {
    double gain_db = 0.0;
    double distance_m = -1.0;  // distance the cached prr was computed at
    double prr = 0.0;
  };

  ShadowingParams params_;
  double range_m_;
  util::Rng gain_rng_;   // forked per link for the static shadowing offset
  util::Rng frame_rng_;  // per-frame Bernoulli draws
  mutable std::unordered_map<std::uint64_t, LinkState> links_;
};

struct GilbertElliottParams {
  // Per-frame state transition probabilities of the good/bad chain.
  double p_good_to_bad = 0.05;
  double p_bad_to_good = 0.25;
  // Frame reception probability in each state.
  double prr_good = 1.0;
  double prr_bad = 0.05;
};

// Two-state bursty loss per directed link, layered on an optional base
// model (nullptr = unit-disc base): a frame is delivered iff the base
// delivers it AND the burst chain's current state does. The chain steps
// once per (link, frame) regardless of the base's outcome; each link's
// initial state is drawn from the chain's stationary distribution via a
// stream forked by link key.
class GilbertElliottModel : public LinkModel {
 public:
  GilbertElliottModel(GilbertElliottParams params, std::unique_ptr<LinkModel> base,
                      util::Rng&& rng);

  bool deliver(NodeId src, NodeId dst, double distance_m) override;
  const char* name() const override { return "gilbert-elliott"; }
  // Stationary-state average reception probability times the base's.
  double expected_prr(NodeId src, NodeId dst, double distance_m) const override;

  const LinkModel* base() const { return base_.get(); }

  void save_state(snap::Serializer& out) const override;

 private:
  bool& link_state_(NodeId src, NodeId dst);

  GilbertElliottParams params_;
  std::unique_ptr<LinkModel> base_;
  util::Rng init_rng_;   // forked per link for the initial state
  util::Rng frame_rng_;  // per-frame reception + transition draws
  std::unordered_map<std::uint64_t, bool> bad_;  // current state per link
};

// Uniform thinning wrapper: each (link, frame) additionally passes with
// probability `prr_scale`, independent of everything else. Over a unit-disc
// base this is the textbook independent-uniform-loss channel; over the
// other models it scales their delivery rate down, which is the knob the
// loss-sensitivity bench sweeps.
class PrrScaledModel : public LinkModel {
 public:
  PrrScaledModel(std::unique_ptr<LinkModel> base, double prr_scale, util::Rng&& rng);

  bool deliver(NodeId src, NodeId dst, double distance_m) override;
  const char* name() const override { return base_->name(); }
  double expected_prr(NodeId src, NodeId dst, double distance_m) const override {
    return prr_scale_ * base_->expected_prr(src, dst, distance_m);
  }

  void save_state(snap::Serializer& out) const override;

 private:
  std::unique_ptr<LinkModel> base_;
  double prr_scale_;
  util::Rng rng_;
};

// One measured directed link: frames src -> dst are delivered with
// probability `prr`. The unit of trace-driven replay (see PrrTraceModel).
struct PrrTraceEntry {
  NodeId src = kNoNode;
  NodeId dst = kNoNode;
  double prr = 1.0;
};

// Trace-driven PRR replay: per-directed-link reception rates measured on a
// real deployment (e.g. a motelab / Indriya connectivity dump) are replayed
// as independent Bernoulli(PRR) draws per frame. Links absent from the
// trace fall back to `default_prr` (1.0 = the unit disc decides alone).
// The table is config-static — only the frame stream is snapshot state.
class PrrTraceModel : public LinkModel {
 public:
  PrrTraceModel(const std::vector<PrrTraceEntry>& entries, double default_prr,
                util::Rng&& rng);

  bool deliver(NodeId src, NodeId dst, double distance_m) override;
  const char* name() const override { return "prr-trace"; }
  double expected_prr(NodeId src, NodeId dst, double distance_m) const override {
    (void)distance_m;
    return lookup_(src, dst);
  }

  void save_state(snap::Serializer& out) const override;

 private:
  double lookup_(NodeId src, NodeId dst) const {
    const auto it = prr_.find(link_key(src, dst));
    return it != prr_.end() ? it->second : default_prr_;
  }

  std::unordered_map<std::uint64_t, double> prr_;
  double default_prr_;
  util::Rng frame_rng_;  // per-frame Bernoulli draws
};

// Parses a PRR trace from text: one `src dst prr` triple per line, `#`
// starts a comment, blank lines ignored. Throws std::invalid_argument on
// malformed lines or out-of-range PRRs.
std::vector<PrrTraceEntry> parse_prr_trace(const std::string& text);

// ---------------------------------------------------------------------------
// Declarative channel-model description, sweepable as a unit
// (exp::SweepSpec::axis_channel) and carried on harness::ScenarioConfig.

enum class LinkModelKind {
  // Install no model at all: the channel runs the exact pre-LinkModel code
  // path. Behaviorally identical to kUnitDisc; kept for the equivalence
  // test (mirrors ChannelParams::batch_arrivals' legacy path). With
  // prr_scale < 1 a thinned unit disc is installed after all, so the
  // label's "@scale" suffix always tells the truth.
  kNone,
  kUnitDisc,
  kLogNormalShadowing,
  kGilbertElliott,
  // Trace-driven replay of measured per-link PRRs (PrrTraceModel); the
  // table lives on ChannelModelSpec::prr_trace.
  kPrrTrace,
};

// Stable lower-case names ("none", "unit-disc", "shadowing",
// "gilbert-elliott", "prr-trace"). Throws std::invalid_argument on an
// out-of-range kind / unknown name.
const char* link_model_kind_name(LinkModelKind k);
LinkModelKind link_model_kind_from_name(const std::string& name);

struct ChannelModelSpec {
  LinkModelKind kind = LinkModelKind::kUnitDisc;

  // Uniform thinning applied on top of any kind (1.0 = off). The
  // loss-sensitivity bench sweeps this axis across all models.
  double prr_scale = 1.0;

  // kLogNormalShadowing knobs (also the gilbert_base when selected).
  ShadowingParams shadowing;

  // kGilbertElliott knobs, plus the base model the burst layer multiplies
  // into (kUnitDisc or kLogNormalShadowing).
  GilbertElliottParams gilbert;
  LinkModelKind gilbert_base = LinkModelKind::kUnitDisc;

  // kPrrTrace knobs: the measured per-link table (see parse_prr_trace for
  // the text format) and the PRR of in-range links the trace omits.
  std::vector<PrrTraceEntry> prr_trace;
  double prr_trace_default = 1.0;

  // Materializes the model for one trial. `range_m` is the deployment's
  // nominal radio range (the shadowing curve's reference distance); `rng`
  // is the trial's channel stream, taken by value so the model owns it.
  // Returns nullptr for kNone (the channel then runs the legacy path with
  // no per-frame hook); kUnitDisc builds a real UnitDiscModel so the hook
  // layer itself is exercised — the equivalence test asserts the two are
  // byte-identical.
  std::unique_ptr<LinkModel> build(double range_m, util::Rng&& rng) const;

  // Sink/axis label: the kind name, with non-default thinning appended
  // ("shadowing@0.9").
  std::string label() const;
};

}  // namespace essat::net
