// Pluggable node-position sources for time-varying topologies.
//
// The seed's deployment is frozen for the whole run (the paper's setup). A
// MobilityModel turns the Topology into a position-source-backed view: the
// model answers positions_at(t), the topology re-samples it on an epoch
// tick (Topology::advance_to) and rebuilds its neighbor sets, and every
// consumer — channel propagation, tree construction, repair — keeps reading
// through the unchanged accessors. Link PRRs then vary over time through
// geometry alone, which is exactly the stress the tree-repair and
// link-quality-aware routing layers exist for.
//
// Shipping models:
//  * StaticMobility       — returns the initial placement forever; installing
//    it (and ticking) is behaviorally identical to no model at all.
//  * RandomWaypointMobility — the classic random-waypoint process per node:
//    pick a uniform target in the deployment rectangle, walk there at a
//    uniform speed, pause, repeat. Per-node streams are forked by node id,
//    so trajectories do not depend on query order.
//  * WaypointTraceMobility — deterministic playback of explicit per-node
//    (time, position) checkpoints with linear interpolation; nodes without
//    a trace stay at their initial position.
//
// Determinism: a model instance is built per trial from the trial's seed
// (MobilitySpec::build takes a util::Rng by value), so sweeps are
// bit-identical for any ESSAT_JOBS value.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/net/position.h"
#include "src/net/types.h"
#include "src/util/rng.h"
#include "src/util/time.h"

namespace essat::snap {
class Serializer;
}  // namespace essat::snap

namespace essat::net {

class MobilityModel {
 public:
  virtual ~MobilityModel() = default;
  // Writes every node's position at time `t` into `out` (already sized to
  // the node count). Called with non-decreasing `t`; models may advance
  // internal state monotonically.
  virtual void positions_at(util::Time t, std::vector<Position>& out) = 0;
  virtual const char* name() const = 0;
  // Snapshot hook: monotonic per-node state (legs, RNG streams). Models
  // whose output is a pure function of t write nothing.
  virtual void save_state(snap::Serializer& out) const { (void)out; }
};

// The frozen deployment as a model: positions_at returns the initial
// placement at every t. Exists so the mobility plumbing itself can be
// equivalence-tested against the no-model path.
class StaticMobility : public MobilityModel {
 public:
  explicit StaticMobility(std::vector<Position> positions)
      : positions_{std::move(positions)} {}

  void positions_at(util::Time, std::vector<Position>& out) override {
    out = positions_;
  }
  const char* name() const override { return "static"; }

 private:
  std::vector<Position> positions_;
};

struct RandomWaypointParams {
  // Walking-speed band of the classic model; each leg draws uniformly.
  double speed_min_mps = 0.5;
  double speed_max_mps = 1.5;
  // Dwell time at each waypoint before the next leg starts.
  double pause_s = 10.0;
};

// Random waypoint over the deployment rectangle [0, width] x [0, height].
// Node i's waypoints, speeds and pauses come from a stream forked by i, so
// adding consumers (or reordering queries) never perturbs a trajectory.
class RandomWaypointMobility : public MobilityModel {
 public:
  RandomWaypointMobility(std::vector<Position> initial, double width_m,
                         double height_m, RandomWaypointParams params,
                         util::Rng&& rng);

  void positions_at(util::Time t, std::vector<Position>& out) override;
  const char* name() const override { return "waypoint"; }
  void save_state(snap::Serializer& out) const override;

 private:
  struct Leg {
    Position from;
    Position to;
    util::Time depart;       // start of the walk
    util::Time arrive;       // reached `to`
    util::Time pause_until;  // next leg departs here
  };

  void advance_node_(std::size_t i, util::Time t);

  double width_m_;
  double height_m_;
  RandomWaypointParams params_;
  std::vector<util::Rng> node_rng_;
  std::vector<Leg> legs_;
};

// One node's scripted trajectory: (time, position) checkpoints in strictly
// increasing time order. Between checkpoints the node moves linearly; after
// the last it holds position; before the first it interpolates from its
// initial placement at t = 0.
struct WaypointTrace {
  NodeId node = kNoNode;
  std::vector<std::pair<util::Time, Position>> points;
};

class WaypointTraceMobility : public MobilityModel {
 public:
  WaypointTraceMobility(std::vector<Position> initial,
                        std::vector<WaypointTrace> traces);

  void positions_at(util::Time t, std::vector<Position>& out) override;
  const char* name() const override { return "trace"; }

 private:
  std::vector<Position> initial_;
  // Indexed by node; empty vector = node never moves.
  std::vector<std::vector<std::pair<util::Time, Position>>> points_;
};

// ---------------------------------------------------------------------------
// Declarative mobility description, carried on harness::ScenarioConfig and
// sweepable as a unit (exp::SweepSpec::axis_mobility).

enum class MobilityKind { kStatic, kRandomWaypoint, kWaypoints };

// Stable lower-case names ("static", "waypoint", "trace"). Throws
// std::invalid_argument on an out-of-range kind / unknown name.
const char* mobility_kind_name(MobilityKind k);
MobilityKind mobility_kind_from_name(const std::string& name);

struct MobilitySpec {
  MobilityKind kind = MobilityKind::kStatic;

  // kRandomWaypoint knobs.
  RandomWaypointParams waypoint;

  // Neighbor-set recompute period: Topology::advance_to re-samples the
  // model and rebuilds neighbor lists once per epoch.
  double epoch_s = 5.0;

  // kWaypoints trajectories.
  std::vector<WaypointTrace> traces;

  // Materializes the model for one trial. `initial` is the deployed
  // placement, (width_m, height_m) the deployment rectangle (mobility
  // bounds), `rng` the trial's mobility stream, taken by value so the model
  // owns it. Returns nullptr for kStatic: the topology then stays frozen
  // and the harness schedules no epoch ticks — the exact pre-mobility code
  // path at zero cost.
  std::unique_ptr<MobilityModel> build(std::vector<Position> initial,
                                       double width_m, double height_m,
                                       util::Rng&& rng) const;

  util::Time epoch() const { return util::Time::from_seconds(epoch_s); }

  // Sink/axis label: "static", "waypoint@1.5mps" (top speed), "trace".
  std::string label() const;
};

}  // namespace essat::net
