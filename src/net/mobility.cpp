#include "src/net/mobility.h"

#include <algorithm>
#include <utility>
#include <cstdio>
#include <stdexcept>

#include "src/snap/serializer.h"

namespace essat::net {

// ----------------------------------------------------------- random waypoint

RandomWaypointMobility::RandomWaypointMobility(std::vector<Position> initial,
                                               double width_m, double height_m,
                                               RandomWaypointParams params,
                                               util::Rng&& rng)
    : width_m_{width_m}, height_m_{height_m}, params_{params} {
  if (width_m_ < 0.0 || height_m_ < 0.0) {
    throw std::invalid_argument{"RandomWaypointMobility: negative bounds"};
  }
  // Degenerate speeds would stall a leg forever; floor them.
  params_.speed_min_mps = std::max(params_.speed_min_mps, 0.01);
  params_.speed_max_mps = std::max(params_.speed_max_mps, params_.speed_min_mps);
  if (params_.pause_s < 0.0) params_.pause_s = 0.0;

  node_rng_.reserve(initial.size());
  legs_.reserve(initial.size());
  for (std::size_t i = 0; i < initial.size(); ++i) {
    node_rng_.push_back(rng.fork(i));
    // A zero-length "leg" parked at the initial position whose pause ends at
    // t = 0: the first real leg is drawn on the first query.
    legs_.push_back(Leg{initial[i], initial[i], util::Time::zero(),
                        util::Time::zero(), util::Time::zero()});
  }
}

void RandomWaypointMobility::advance_node_(std::size_t i, util::Time t) {
  Leg& leg = legs_[i];
  util::Rng& rng = node_rng_[i];
  while (leg.pause_until <= t) {
    const Position from = leg.to;
    const Position to{rng.uniform(0.0, width_m_ > 0.0 ? width_m_ : 1e-12),
                      rng.uniform(0.0, height_m_ > 0.0 ? height_m_ : 1e-12)};
    const double speed = rng.uniform(params_.speed_min_mps, params_.speed_max_mps);
    const util::Time depart = leg.pause_until;
    const util::Time travel = util::Time::from_seconds(distance(from, to) / speed);
    leg.from = from;
    leg.to = to;
    leg.depart = depart;
    leg.arrive = depart + travel;
    leg.pause_until = leg.arrive + util::Time::from_seconds(params_.pause_s);
  }
}

void RandomWaypointMobility::positions_at(util::Time t,
                                          std::vector<Position>& out) {
  out.resize(legs_.size());
  for (std::size_t i = 0; i < legs_.size(); ++i) {
    advance_node_(i, t);
    const Leg& leg = legs_[i];
    if (t <= leg.depart) {
      out[i] = leg.from;
    } else if (t >= leg.arrive) {
      out[i] = leg.to;
    } else {
      const double f = (t - leg.depart) / (leg.arrive - leg.depart);
      out[i] = Position{leg.from.x + (leg.to.x - leg.from.x) * f,
                        leg.from.y + (leg.to.y - leg.from.y) * f};
    }
  }
}

// ------------------------------------------------------------ trace playback

WaypointTraceMobility::WaypointTraceMobility(std::vector<Position> initial,
                                             std::vector<WaypointTrace> traces)
    : initial_{std::move(initial)}, points_(initial_.size()) {
  for (WaypointTrace& tr : traces) {
    if (tr.node < 0 || static_cast<std::size_t>(tr.node) >= initial_.size()) {
      throw std::invalid_argument{"WaypointTraceMobility: trace for unknown node"};
    }
    for (std::size_t k = 1; k < tr.points.size(); ++k) {
      if (tr.points[k].first <= tr.points[k - 1].first) {
        throw std::invalid_argument{
            "WaypointTraceMobility: checkpoints must be strictly increasing"};
      }
    }
    points_[static_cast<std::size_t>(tr.node)] = std::move(tr.points);
  }
}

void WaypointTraceMobility::positions_at(util::Time t,
                                         std::vector<Position>& out) {
  out = initial_;
  for (std::size_t i = 0; i < points_.size(); ++i) {
    const auto& pts = points_[i];
    if (pts.empty()) continue;
    if (t >= pts.back().first) {
      out[i] = pts.back().second;
      continue;
    }
    // First checkpoint past t; the segment starts at the previous one (or
    // at the initial placement at t = 0).
    const auto it = std::upper_bound(
        pts.begin(), pts.end(), t,
        [](util::Time v, const auto& p) { return v < p.first; });
    const Position from = it == pts.begin() ? initial_[i] : (it - 1)->second;
    const util::Time t0 = it == pts.begin() ? util::Time::zero() : (it - 1)->first;
    if (t <= t0 || it->first <= t0) {
      out[i] = from;
      continue;
    }
    const double f = (t - t0) / (it->first - t0);
    out[i] = Position{from.x + (it->second.x - from.x) * f,
                      from.y + (it->second.y - from.y) * f};
  }
}

// ----------------------------------------------------------------- the spec

const char* mobility_kind_name(MobilityKind k) {
  switch (k) {
    case MobilityKind::kStatic: return "static";
    case MobilityKind::kRandomWaypoint: return "waypoint";
    case MobilityKind::kWaypoints: return "trace";
  }
  throw std::invalid_argument{"mobility_kind_name: unknown kind"};
}

MobilityKind mobility_kind_from_name(const std::string& name) {
  for (MobilityKind k : {MobilityKind::kStatic, MobilityKind::kRandomWaypoint,
                         MobilityKind::kWaypoints}) {
    if (name == mobility_kind_name(k)) return k;
  }
  throw std::invalid_argument{"mobility_kind_from_name: unknown name '" + name +
                              "'"};
}

std::unique_ptr<MobilityModel> MobilitySpec::build(std::vector<Position> initial,
                                                   double width_m,
                                                   double height_m,
                                                   util::Rng&& rng) const {
  switch (kind) {
    case MobilityKind::kStatic:
      return nullptr;
    case MobilityKind::kRandomWaypoint:
      return std::make_unique<RandomWaypointMobility>(
          std::move(initial), width_m, height_m, waypoint, rng.fork(1));
    case MobilityKind::kWaypoints:
      return std::make_unique<WaypointTraceMobility>(std::move(initial), traces);
  }
  throw std::invalid_argument{"MobilitySpec::build: unknown MobilityKind"};
}

void RandomWaypointMobility::save_state(snap::Serializer& out) const {
  out.begin("MOBW");
  out.f64(width_m_);
  out.f64(height_m_);
  out.u64(legs_.size());
  for (std::size_t i = 0; i < legs_.size(); ++i) {
    const Leg& leg = legs_[i];
    out.f64(leg.from.x);
    out.f64(leg.from.y);
    out.f64(leg.to.x);
    out.f64(leg.to.y);
    out.time(leg.depart);
    out.time(leg.arrive);
    out.time(leg.pause_until);
    node_rng_[i].save_state(out);
  }
  out.end();
}

std::string MobilitySpec::label() const {
  if (kind == MobilityKind::kRandomWaypoint) {
    char buf[48];
    std::snprintf(buf, sizeof buf, "waypoint@%gmps", waypoint.speed_max_mps);
    return buf;
  }
  return mobility_kind_name(kind);
}

}  // namespace essat::net
