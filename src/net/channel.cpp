#include "src/net/channel.h"

#include <cassert>

namespace essat::net {

Channel::Channel(sim::Simulator& sim, const Topology& topo, ChannelParams params)
    : sim_{sim}, topo_{topo}, params_{params}, nodes_(topo.num_nodes()) {}

void Channel::set_link_model(std::unique_ptr<LinkModel> model) {
  link_model_ = std::move(model);
  // Lossless models are bypassed on the hot path: arrivals cost exactly as
  // much as with no model installed.
  model_active_ = link_model_ && !link_model_->always_delivers();
}

std::uint64_t Channel::dropped_by_model(NodeId src, NodeId dst) const {
  const auto it = link_drops_.find(link_key(src, dst));
  return it != link_drops_.end() ? it->second : 0;
}

std::uint64_t Channel::frames_on(NodeId src, NodeId dst) const {
  const auto it = link_frames_.find(link_key(src, dst));
  return it != link_frames_.end() ? it->second : 0;
}

void Channel::attach(NodeId node, Attachment attachment) {
  nodes_.at(static_cast<std::size_t>(node)).attachment = std::move(attachment);
}

void Channel::start_tx(NodeId sender, Packet p, util::Time duration) {
  ++transmissions_;
  p.channel_tx_id = ++next_tx_id_;
  auto& s = nodes_.at(static_cast<std::size_t>(sender));
  s.transmitting = true;
  // A node cannot hear while it talks: abandon any in-progress reception.
  if (s.rx.active) {
    s.rx.corrupted = true;
  }
  notify_(sender);

  const util::Time arrive = sim_.now() + params_.propagation_delay;
  if (params_.batch_arrivals && topo_.time_varying()) {
    // Mobile topology: an epoch tick may rebuild the neighbor lists while
    // this frame is on the air, so both events must share the receiver set
    // frozen at transmit time — otherwise a begin without its end corrupts
    // the carrier-sense counts. The topology's lists are copy-on-rebuild,
    // so freezing is a refcount bump, not a vector copy.
    auto nbrs = topo_.neighbors_handle(sender);
    sim_.schedule_at(arrive, [this, nbrs, p] {
      for (NodeId m : *nbrs) begin_arrival_(m, p);
    });
    sim_.schedule_at(arrive + duration, [this, nbrs, p] {
      for (NodeId m : *nbrs) end_arrival_(m, p);
    });
  } else if (params_.batch_arrivals) {
    // One event pair per transmission: every in-range receiver shares the
    // same begin/end timestamps, so visiting them in neighbor-list order
    // inside a single callback is observably identical to the legacy
    // per-neighbor events (which occupied consecutive queue slots anyway)
    // while scheduling O(1) instead of O(neighbors) events.
    sim_.schedule_at(arrive, [this, sender, p] {
      for (NodeId m : topo_.neighbors(sender)) begin_arrival_(m, p);
    });
    sim_.schedule_at(arrive + duration, [this, sender, p] {
      for (NodeId m : topo_.neighbors(sender)) end_arrival_(m, p);
    });
  } else {
    for (NodeId m : topo_.neighbors(sender)) {
      sim_.schedule_at(arrive, [this, m, p] { begin_arrival_(m, p); });
      sim_.schedule_at(arrive + duration, [this, m, p] { end_arrival_(m, p); });
    }
  }
  sim_.schedule_at(sim_.now() + duration, [this, sender] {
    nodes_.at(static_cast<std::size_t>(sender)).transmitting = false;
    notify_(sender);
  });
}

void Channel::begin_arrival_(NodeId receiver, const Packet& p) {
  auto& node = nodes_.at(static_cast<std::size_t>(receiver));
  ++node.arriving_count;

  // The link model decides, once per (directed link, frame), whether this
  // frame is decodable at `receiver`. An undecodable frame keeps occupying
  // the air (arriving_count, i.e. carrier sense) but neither starts a
  // reception nor corrupts one in progress.
  const double sender_dist =
      model_active_ || node.rx.active
          ? distance(topo_.position(p.link_src), topo_.position(receiver))
          : 0.0;
  if (model_active_) {
    // Per-link sample count, the denominator LinkEstimator pairs with
    // link_drops() to turn observed losses into a PRR. Skipped when nothing
    // will read it, so plain lossy runs keep the old hot path.
    if (link_stats_enabled_) ++link_frames_[link_key(p.link_src, receiver)];
    if (!link_model_->deliver(p.link_src, receiver, sender_dist)) {
      ++dropped_by_model_;
      ++link_drops_[link_key(p.link_src, receiver)];
      notify_(receiver);
      return;
    }
  }

  if (node.rx.active) {
    // Overlap with an in-progress reception corrupts it — unless the new
    // arrival is weak enough for the radio to capture the original frame.
    const bool captured =
        params_.capture_distance_ratio > 0.0 &&
        sender_dist >=
            params_.capture_distance_ratio *
                distance(topo_.position(receiver),
                         topo_.position(node.rx.packet.link_src));
    if (!captured) {
      node.rx.corrupted = true;
      ++collisions_;
    }
  } else if (node.arriving_count == 1 && !node.transmitting &&
             node.attachment.is_listening && node.attachment.is_listening()) {
    node.rx.active = true;
    node.rx.corrupted = false;
    node.rx.packet = p;
  }
  notify_(receiver);
}

void Channel::end_arrival_(NodeId receiver, const Packet& p) {
  auto& node = nodes_.at(static_cast<std::size_t>(receiver));
  --node.arriving_count;
  assert(node.arriving_count >= 0);

  if (node.rx.active && node.rx.packet.channel_tx_id == p.channel_tx_id) {
    const bool listening = node.attachment.is_listening && node.attachment.is_listening();
    const bool ok = !node.rx.corrupted && listening && !node.transmitting;
    const Packet delivered_packet = node.rx.packet;
    node.rx.active = false;
    if (ok) ++delivered_;
    if (node.attachment.on_rx_complete) {
      node.attachment.on_rx_complete(delivered_packet, ok);
    }
  }
  notify_(receiver);
}

bool Channel::busy(NodeId node) const {
  const auto& n = nodes_.at(static_cast<std::size_t>(node));
  return n.arriving_count > 0 || n.transmitting;
}

void Channel::notify_(NodeId node) {
  const auto& cb = nodes_.at(static_cast<std::size_t>(node)).attachment.on_channel_activity;
  if (cb) cb();
}

}  // namespace essat::net
