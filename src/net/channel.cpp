#include "src/net/channel.h"

#include <cassert>
#include <cmath>

#include "src/snap/packet_codec.h"

namespace essat::net {

namespace {

// kChanDrop arg16: drop reason in the high byte, packet type in the low.
// (Unused when ESSAT_TRACE compiles out under -DESSAT_TRACING=OFF.)
[[maybe_unused]] std::uint16_t drop_arg(obs::DropReason r, PacketType t) {
  return static_cast<std::uint16_t>(static_cast<std::uint16_t>(r) << 8 |
                                    static_cast<std::uint16_t>(t));
}

}  // namespace

Channel::Channel(sim::Simulator& sim, const Topology& topo, ChannelParams params)
    : sim_{sim},
      topo_{topo},
      params_{params},
      dense_stats_{topo.num_nodes() < params.dense_link_stats_below},
      sinr_active_{params.sinr.enabled},
      nodes_(topo.num_nodes()) {
  if (sinr_active_) {
    noise_mw_ = std::pow(10.0, params_.sinr.noise_dbm / 10.0);
    sinr_arrivals_.resize(topo.num_nodes());
  }
}

double Channel::rx_power_mw_(NodeId src, NodeId dst) const {
  // Log-distance path loss, clamped below 0.1 m so co-located nodes do not
  // produce infinite power.
  const double d =
      std::max(distance(topo_.position(src), topo_.position(dst)), 0.1);
  const double loss_db = params_.sinr.reference_loss_db +
                         10.0 * params_.sinr.path_loss_exponent * std::log10(d);
  return std::pow(10.0, (params_.sinr.tx_power_dbm - loss_db) / 10.0);
}

double Channel::sinr_total_power_mw_(NodeId receiver) const {
  // Summed in arrival order (the vector is append/ordered-erase only), so
  // the floating-point result is deterministic for a deterministic run.
  double total = 0.0;
  const auto& arrivals = sinr_arrivals_[static_cast<std::size_t>(receiver)];
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    total += arrivals[i].power_mw;
  }
  return total;
}

void Channel::set_link_model(std::unique_ptr<LinkModel> model) {
  link_model_ = std::move(model);
  // Lossless models are bypassed on the hot path: arrivals cost exactly as
  // much as with no model installed.
  model_active_ = link_model_ && !link_model_->always_delivers();
}

void Channel::set_listening(NodeId node, bool listening) {
  PerNode& n = node_(node);
  if (n.listening == listening) return;
  n.listening = listening;
  ESSAT_TRACE(sim_, obs::TraceType::kChanListen, node,
              static_cast<std::uint16_t>(listening), 0, 0);
}

Channel::LinkCounters& Channel::link_stat_(NodeId src, NodeId dst) {
  if (!dense_stats_) return sparse_stats_[link_key_(src, dst)];
  if (link_stats_.empty()) link_stats_.resize(nodes_.size());
  auto& row = link_stats_[static_cast<std::size_t>(src)];
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (row[i].dst == dst) {
      // Transpose-on-hit: under mobility a row accumulates every receiver
      // the sender has EVER reached, but only the current neighborhood is
      // hot — one adjacent swap per hit keeps those entries at the front,
      // so the scan stays O(current degree) even when the row grows.
      // Counter placement is unobservable, so determinism is untouched.
      if (i > 0) {
        std::swap(row[i - 1], row[i]);
        return row[i - 1].counters;
      }
      return row[i].counters;
    }
  }
  row.push_back(LinkStat{dst, {}});
  return row.back().counters;
}

const Channel::LinkCounters* Channel::find_link_stat_(NodeId src,
                                                      NodeId dst) const {
  if (src < 0 || static_cast<std::size_t>(src) >= nodes_.size()) return nullptr;
  if (!dense_stats_) return sparse_stats_.find(link_key_(src, dst));
  if (link_stats_.empty()) return nullptr;
  for (const LinkStat& s : link_stats_[static_cast<std::size_t>(src)]) {
    if (s.dst == dst) return &s.counters;
  }
  return nullptr;
}

std::uint64_t Channel::dropped_by_model(NodeId src, NodeId dst) const {
  const LinkCounters* s = find_link_stat_(src, dst);
  return s != nullptr ? s->drops : 0;
}

std::uint64_t Channel::frames_on(NodeId src, NodeId dst) const {
  const LinkCounters* s = find_link_stat_(src, dst);
  return s != nullptr ? s->frames : 0;
}

void Channel::start_tx(NodeId sender, Packet p, util::Time duration) {
  ++transmissions_;
  p.channel_tx_id = ++next_tx_id_;
  // Conservation anchor: arg16 is the frozen in-range receiver count; each
  // of those receivers emits exactly one kChanDeliver or kChanDrop for this
  // tx id (obs::check_conservation verifies the match).
  ESSAT_TRACE(sim_, obs::TraceType::kChanTxBegin, sender,
              static_cast<std::uint16_t>(topo_.neighbors(sender).size()),
              p.channel_tx_id, p.prov);
  auto& s = nodes_.at(static_cast<std::size_t>(sender));
  // Carrier-sense notifications fire only on busy<->idle edges: a notify
  // that does not change busy() is a no-op in every attached MAC (the busy
  // branch is idempotent and contention only resumes on the idle edge), so
  // skipping it is observably identical and avoids the dominant share of
  // activity callbacks on dense neighborhoods.
  const bool was_busy = s.arriving_count > 0 || s.transmitting;
  s.transmitting = true;
  // A node cannot hear while it talks: abandon any in-progress reception.
  if (s.rx.active) {
    s.rx.corrupted = true;
  }
  if (!was_busy) notify_(sender);

  // One shared immutable copy of the frame for the whole transmission: the
  // arrival events and every receiver's reception state hold refs into it.
  PacketRef frame = pool_.acquire(std::move(p));

  const util::Time arrive = sim_.now() + params_.propagation_delay;
  if (params_.batch_arrivals && topo_.time_varying()) {
    // Mobile topology: an epoch tick may rebuild the neighbor lists while
    // this frame is on the air, so both events must share the receiver set
    // frozen at transmit time — otherwise a begin without its end corrupts
    // the carrier-sense counts. The topology's lists are copy-on-rebuild,
    // so freezing is a refcount bump, not a vector copy.
    auto nbrs = topo_.neighbors_handle(sender);
    sim_.schedule_at(arrive, [this, nbrs, frame] {
      for (NodeId m : *nbrs) begin_arrival_(m, frame);
    });
    sim_.schedule_at(arrive + duration, [this, nbrs, frame] {
      for (NodeId m : *nbrs) end_arrival_(m, frame);
    });
  } else if (params_.batch_arrivals) {
    // One event pair per transmission: every in-range receiver shares the
    // same begin/end timestamps, so visiting them in neighbor-list order
    // inside a single callback is observably identical to the legacy
    // per-neighbor events (which occupied consecutive queue slots anyway)
    // while scheduling O(1) instead of O(neighbors) events.
    sim_.schedule_at(arrive, [this, sender, frame] {
      for (NodeId m : topo_.neighbors(sender)) begin_arrival_(m, frame);
    });
    sim_.schedule_at(arrive + duration, [this, sender, frame] {
      for (NodeId m : topo_.neighbors(sender)) end_arrival_(m, frame);
    });
  } else {
    for (NodeId m : topo_.neighbors(sender)) {
      sim_.schedule_at(arrive, [this, m, frame] { begin_arrival_(m, frame); });
      sim_.schedule_at(arrive + duration,
                       [this, m, frame] { end_arrival_(m, frame); });
    }
  }
  sim_.schedule_at(sim_.now() + duration, [this, sender] {
    auto& node = node_(sender);
    node.transmitting = false;
    if (node.arriving_count == 0) notify_(sender);  // busy -> idle edge
  });
}

void Channel::begin_arrival_(NodeId receiver, const PacketRef& p) {
  auto& node = node_(receiver);
  // Idle -> busy edge iff this is the first arriving frame at a silent
  // node; otherwise busy() was already true and the notify is skipped.
  const bool busy_edge = node.arriving_count == 0 && !node.transmitting;
  ++node.arriving_count;

  // SINR mode: every arriving frame's power joins the interference sum at
  // this receiver for its whole airtime — including frames the link model
  // drops below (energy without decodability, like the legacy gray zone).
  double arrival_mw = 0.0;
  if (sinr_active_) {
    arrival_mw = rx_power_mw_(p->link_src, receiver);
    sinr_arrivals_[static_cast<std::size_t>(receiver)].push_back(
        SinrArrival{p->channel_tx_id, arrival_mw});
  }

  // The link model decides, once per (directed link, frame), whether this
  // frame is decodable at `receiver`. An undecodable frame keeps occupying
  // the air (arriving_count, i.e. carrier sense) but neither starts a
  // reception nor corrupts one in progress.
  const double sender_dist =
      model_active_ || node.rx.active
          ? distance(topo_.position(p->link_src), topo_.position(receiver))
          : 0.0;
  if (model_active_) {
    // Per-link sample count, the denominator LinkEstimator pairs with
    // dropped_by_model(src, dst) to turn observed losses into a PRR.
    // Skipped when nothing will read it, so plain lossy runs keep the old
    // hot path and never materialize the per-link storage.
    LinkCounters* stat = nullptr;
    if (link_stats_enabled_) {
      stat = &link_stat_(p->link_src, receiver);
      ++stat->frames;
    }
    if (!link_model_->deliver(p->link_src, receiver, sender_dist)) {
      ++dropped_by_model_;
      if (stat != nullptr) ++stat->drops;
      ESSAT_TRACE(sim_, obs::TraceType::kChanDrop, receiver,
                  drop_arg(obs::DropReason::kModel, p->type),
                  p->channel_tx_id, p->prov);
      if (busy_edge) notify_(receiver);
      return;
    }
  }

  if (node.rx.active) {
    // Overlap with an in-progress reception corrupts it — unless the new
    // arrival is weak enough for the radio to capture the original frame.
    // SINR mode judges the locked frame's signal against noise plus the
    // full interference sum (new arrival included); legacy mode uses the
    // distance-ratio heuristic.
    bool captured;
    if (sinr_active_) {
      const double interference =
          std::max(sinr_total_power_mw_(receiver) - node.rx.signal_mw, 0.0);
      const double sinr_db =
          10.0 * std::log10(node.rx.signal_mw / (noise_mw_ + interference));
      captured = sinr_db >= params_.sinr.capture_threshold_db;
    } else {
      captured = params_.capture_distance_ratio > 0.0 &&
                 sender_dist >=
                     params_.capture_distance_ratio *
                         distance(topo_.position(receiver),
                                  topo_.position(node.rx.frame->link_src));
    }
    if (!captured) {
      node.rx.corrupted = true;
      ++collisions_;
    }
    // Either way the overlapping frame itself is never received here; the
    // corrupted original reports its own fate at its end_arrival_.
    ESSAT_TRACE(sim_, obs::TraceType::kChanDrop, receiver,
                drop_arg(captured ? obs::DropReason::kCaptured
                                  : obs::DropReason::kCollision,
                         p->type),
                p->channel_tx_id, p->prov);
  } else if (node.arriving_count == 1 && !node.transmitting && node.listening) {
    if (sinr_active_ && 10.0 * std::log10(arrival_mw / noise_mw_) <
                            params_.sinr.min_snr_db) {
      // Below the lone-frame decode floor: model loss under the shared
      // power model. The frame keeps occupying the air for carrier sense.
      ++dropped_by_model_;
      ESSAT_TRACE(sim_, obs::TraceType::kChanDrop, receiver,
                  drop_arg(obs::DropReason::kModel, p->type), p->channel_tx_id,
                  p->prov);
    } else {
      node.rx.active = true;
      node.rx.corrupted = false;
      node.rx.signal_mw = arrival_mw;
      node.rx.frame = p;  // refcount bump, not a Packet copy
    }
  } else {
    // No reception started and none in progress: the frame is lost to this
    // receiver now. Attribute why, most specific condition first.
    ESSAT_TRACE(sim_, obs::TraceType::kChanDrop, receiver,
                drop_arg(node.transmitting     ? obs::DropReason::kSelfTx
                         : node.arriving_count > 1 ? obs::DropReason::kBusy
                                                   : obs::DropReason::kRadioOff,
                         p->type),
                p->channel_tx_id, p->prov);
  }
  if (busy_edge) notify_(receiver);
}

void Channel::end_arrival_(NodeId receiver, const PacketRef& p) {
  auto& node = node_(receiver);
  --node.arriving_count;
  assert(node.arriving_count >= 0);
  if (sinr_active_) {
    // Ordered erase keeps the interference-sum order deterministic.
    auto& arrivals = sinr_arrivals_[static_cast<std::size_t>(receiver)];
    for (std::size_t i = 0; i < arrivals.size(); ++i) {
      if (arrivals[i].tx_id == p->channel_tx_id) {
        for (std::size_t j = i; j + 1 < arrivals.size(); ++j) {
          arrivals[j] = arrivals[j + 1];
        }
        arrivals.pop_back();
        break;
      }
    }
  }
  // Busy -> idle edge iff the air just went quiet at a non-transmitting
  // node; the MAC's contention resume (and its EIFS bookkeeping) hangs off
  // exactly this edge.
  const bool idle_edge = node.arriving_count == 0 && !node.transmitting;

  if (node.rx.active && node.rx.frame->channel_tx_id == p->channel_tx_id) {
    const bool listening = node.listening;
    const bool ok = !node.rx.corrupted && listening && !node.transmitting;
    // Detach the ref before the callback: on_rx_complete may re-enter the
    // channel (ACK replies start transmissions that clobber rx state).
    const PacketRef delivered_frame = std::move(node.rx.frame);
    node.rx.active = false;
    node.rx.signal_mw = 0.0;
    if (ok) {
      ++delivered_;
      ESSAT_TRACE(sim_, obs::TraceType::kChanDeliver, receiver,
                  static_cast<std::uint16_t>(p->type), p->channel_tx_id,
                  p->prov);
    } else {
      ESSAT_TRACE(sim_, obs::TraceType::kChanDrop, receiver,
                  drop_arg(!listening || node.transmitting
                               ? obs::DropReason::kAbandoned
                               : obs::DropReason::kCollision,
                           p->type),
                  p->channel_tx_id, p->prov);
    }
    if (node.listener != nullptr) {
      node.listener->on_rx_complete(*delivered_frame, ok);
    }
  }
  if (idle_edge) notify_(receiver);
}

void Channel::notify_(NodeId node) {
  ChannelListener* l = node_(node).listener;
  if (l != nullptr) l->on_channel_activity();
}

void Channel::save_state(snap::Serializer& out) const {
  out.begin("CHAN");
  out.boolean(model_active_);
  out.boolean(link_stats_enabled_);
  out.boolean(dense_stats_);
  out.u64(nodes_.size());
  for (const PerNode& n : nodes_) {
    out.boolean(n.listening);
    out.boolean(n.transmitting);
    out.i32(n.arriving_count);
    out.boolean(n.rx.active);
    out.boolean(n.rx.corrupted);
    const bool has_frame = n.rx.active && n.rx.frame != nullptr;
    out.boolean(has_frame);
    if (has_frame) snap::save_packet(out, *n.rx.frame);
  }
  // SINR mode only: in-flight powers (byte-attested like everything else).
  // Gated on config-derived state, so the layout is symmetric across a
  // capture/replay pair and disabled runs keep the legacy section shape.
  if (sinr_active_) {
    for (std::size_t i = 0; i < sinr_arrivals_.size(); ++i) {
      out.f64(nodes_[i].rx.signal_mw);
      const auto& arrivals = sinr_arrivals_[i];
      out.u64(arrivals.size());
      for (std::size_t j = 0; j < arrivals.size(); ++j) {
        out.u64(arrivals[j].tx_id);
        out.f64(arrivals[j].power_mw);
      }
    }
  }
  out.u64(transmissions_);
  out.u64(collisions_);
  out.u64(delivered_);
  out.u64(dropped_by_model_);
  out.u64(next_tx_id_);
  // Link statistics, as stored. Dense rows append in observation order and
  // the sparse map's save_state captures slot layout, so both are already
  // deterministic for a deterministic run.
  out.u64(link_stats_.size());
  for (const auto& row : link_stats_) {
    out.u64(row.size());
    for (const LinkStat& s : row) {
      out.i32(s.dst);
      out.u64(s.counters.frames);
      out.u64(s.counters.drops);
    }
  }
  sparse_stats_.save_state(out, [](snap::Serializer& o, const LinkCounters& c) {
    o.u64(c.frames);
    o.u64(c.drops);
  });
  out.u64(pool_.recycled_blocks());
  if (link_model_ != nullptr) link_model_->save_state(out);
  out.end();
}

}  // namespace essat::net
