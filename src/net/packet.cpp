#include "src/net/packet.h"

namespace essat::net {

Packet make_data_packet(NodeId src, NodeId dst, DataHeader header) {
  Packet p;
  p.type = PacketType::kData;
  p.link_src = src;
  p.link_dst = dst;
  p.size_bytes = Packet::kDataReportBytes;
  p.payload = std::move(header);
  return p;
}

Packet make_setup_packet(NodeId src, NodeId root, int level, double cost) {
  Packet p;
  p.type = PacketType::kSetup;
  p.link_src = src;
  p.link_dst = kBroadcastAddr;
  p.size_bytes = Packet::kControlBytes;
  p.payload = SetupHeader{root, level, cost};
  return p;
}

Packet make_join_packet(NodeId src, NodeId parent) {
  Packet p;
  p.type = PacketType::kJoin;
  p.link_src = src;
  p.link_dst = parent;
  p.size_bytes = Packet::kControlBytes;
  p.payload = JoinHeader{};
  return p;
}

Packet make_rank_packet(NodeId src, NodeId parent, int rank) {
  Packet p;
  p.type = PacketType::kRankReport;
  p.link_src = src;
  p.link_dst = parent;
  p.size_bytes = Packet::kControlBytes;
  p.payload = RankHeader{rank};
  return p;
}

Packet make_atim_packet(NodeId src, AtimDestinations destinations) {
  Packet p;
  p.type = PacketType::kAtim;
  p.link_src = src;
  p.link_dst = kBroadcastAddr;
  p.size_bytes = Packet::kControlBytes;
  p.payload = AtimHeader{std::move(destinations)};
  return p;
}

Packet make_phase_request_packet(NodeId src, NodeId dst, QueryId query) {
  Packet p;
  p.type = PacketType::kPhaseRequest;
  p.link_src = src;
  p.link_dst = dst;
  p.size_bytes = Packet::kControlBytes;
  p.payload = PhaseRequestHeader{query};
  return p;
}

Packet make_dissemination_packet(NodeId src, NodeId dst, DisseminationHeader header) {
  Packet p;
  p.type = PacketType::kDissemination;
  p.link_src = src;
  p.link_dst = dst;
  p.size_bytes = Packet::kDataReportBytes;
  p.payload = header;
  return p;
}

const char* packet_type_name(PacketType t) {
  switch (t) {
    case PacketType::kData: return "DATA";
    case PacketType::kAck: return "ACK";
    case PacketType::kSetup: return "SETUP";
    case PacketType::kJoin: return "JOIN";
    case PacketType::kRankReport: return "RANK";
    case PacketType::kAtim: return "ATIM";
    case PacketType::kPhaseRequest: return "PHASE_REQ";
    case PacketType::kDissemination: return "DISSEM";
  }
  return "?";
}

}  // namespace essat::net
