// Packet formats for every protocol in the library.
//
// A Packet carries one typed header selected by `type`. Sizes are modelled
// (not serialized): `size_bytes` is what the channel charges for airtime.
// The paper encapsulates each data report in a single 52-byte packet.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>

#include "src/net/types.h"
#include "src/util/small_vector.h"
#include "src/util/time.h"

namespace essat::net {

enum class PacketType : std::uint8_t {
  kData,          // aggregated data report (query service)
  kAck,           // MAC-level acknowledgement
  kSetup,         // routing-tree setup flood
  kJoin,          // child -> parent tree join
  kRankReport,    // child -> parent rank propagation (distributed setup)
  kAtim,           // PSM traffic announcement
  kPhaseRequest,   // DTS resynchronization request (§4.3)
  kDissemination,  // periodic root->leaves dissemination (§3 extension)
};

// Data-report header. One per aggregated report; also used for late
// pass-through forwards of a child's report.
struct DataHeader {
  QueryId query = kNoQuery;
  std::int64_t epoch = -1;
  NodeId origin = kNoNode;      // node whose aggregate this is
  std::uint32_t app_seq = 0;    // per-(link, query) sequence, for loss detection
  int contributions = 1;        // number of source readings folded in
  bool pass_through = false;    // forwarded after the local aggregate was sent
  // DTS piggyback: the sender's expected send time of its NEXT report
  // (s(k+1)), advertised only on a phase shift or on request (§4.2.3).
  std::optional<util::Time> phase_update;
};

struct SetupHeader {
  NodeId root = kNoNode;
  int level = 0;     // hops from root of the sender
  // Sender's path cost under the active routing::ParentPolicy (== level for
  // min-hop; cumulative ETX for etx). Like every header field it is
  // modelled, not serialized — airtime stays kControlBytes.
  double cost = 0.0;
};

struct JoinHeader {};

struct RankHeader {
  int rank = 0;  // sender's rank (max hop count to any of its descendants)
};

// ATIM destination lists are usually a few pending-traffic neighbors;
// inline storage keeps the whole Packet allocation-free to copy/move, so
// the zero-copy delivery path and the event queue's inline captures hold.
using AtimDestinations = util::SmallVector<NodeId, 8>;

struct AtimHeader {
  AtimDestinations destinations;  // neighbors with buffered traffic
};

struct PhaseRequestHeader {
  QueryId query = kNoQuery;
};

// Periodic dissemination message travelling down the routing tree (the §3
// extension: "other communication patterns such as ... data dissemination").
struct DisseminationHeader {
  QueryId task = kNoQuery;
  std::int64_t epoch = -1;
  NodeId origin = kNoNode;  // the root that generated this round
};

struct Packet {
  PacketType type = PacketType::kData;
  // MAC (one-hop) addressing. kBroadcastAddr means no ACK is expected.
  NodeId link_src = kNoNode;
  NodeId link_dst = kBroadcastAddr;
  int size_bytes = kDataReportBytes;
  std::uint32_t mac_seq = 0;       // set by the MAC, for duplicate suppression
  std::uint64_t channel_tx_id = 0; // set by the Channel, unique per transmission
  // Provenance id for packet-lifecycle tracing: assigned by the QueryAgent
  // when a report is created ((origin+1) << 32 | per-node counter), carried
  // unchanged through the MAC, the pooled channel frame, and pass-through
  // forwarding. 0 = untracked (control frames, ACKs).
  std::uint64_t prov = 0;

  std::variant<std::monostate, DataHeader, SetupHeader, JoinHeader, RankHeader,
               AtimHeader, PhaseRequestHeader, DisseminationHeader>
      payload;

  // Paper §5: "each data report is encapsulated in a single packet of 52
  // bytes".
  static constexpr int kDataReportBytes = 52;
  static constexpr int kAckBytes = 14;
  static constexpr int kControlBytes = 20;

  const DataHeader& data() const { return std::get<DataHeader>(payload); }
  DataHeader& data() { return std::get<DataHeader>(payload); }
  const SetupHeader& setup() const { return std::get<SetupHeader>(payload); }
  const RankHeader& rank() const { return std::get<RankHeader>(payload); }
  const AtimHeader& atim() const { return std::get<AtimHeader>(payload); }
  const PhaseRequestHeader& phase_request() const {
    return std::get<PhaseRequestHeader>(payload);
  }
  const DisseminationHeader& dissemination() const {
    return std::get<DisseminationHeader>(payload);
  }

  bool is_broadcast() const { return link_dst == kBroadcastAddr; }
};

// Factory helpers keep call sites terse and sizes consistent.
Packet make_data_packet(NodeId src, NodeId dst, DataHeader header);
Packet make_setup_packet(NodeId src, NodeId root, int level, double cost = 0.0);
Packet make_join_packet(NodeId src, NodeId parent);
Packet make_rank_packet(NodeId src, NodeId parent, int rank);
Packet make_atim_packet(NodeId src, AtimDestinations destinations);
Packet make_phase_request_packet(NodeId src, NodeId dst, QueryId query);
Packet make_dissemination_packet(NodeId src, NodeId dst, DisseminationHeader header);

const char* packet_type_name(PacketType t);

}  // namespace essat::net
