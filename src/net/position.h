// 2-D node positions (metres) for the unit-disc propagation model.
#pragma once

#include <cmath>

namespace essat::net {

struct Position {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Position& a, const Position& b) {
    return a.x == b.x && a.y == b.y;
  }
};

inline double distance(const Position& a, const Position& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace essat::net
