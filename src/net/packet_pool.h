// Recycling pool of shared immutable Packets — the zero-copy delivery
// backbone.
//
// A transmission used to be copied into every scheduled arrival event and
// again into every receiver's in-progress-reception state; at ~12 in-range
// receivers per frame that was a dozen-plus Packet copies (each dragging a
// std::variant of headers) per transmission. The pool instead moves the
// frame into one shared slot and hands out PacketRefs: 16-byte refcounted
// handles that fit an event capture (see sim/inline_callback.h) and bump a
// counter instead of copying.
//
// Steady-state allocation-free: slot blocks are recycled through a free
// list owned by the pool's shared State. The only heap traffic is growing
// the pool past its high-water mark (warm-up) — acquire/release of a
// recycled slot never allocates. The State outlives the pool while any
// PacketRef is alive (each block's deleter holds a reference), so events
// still queued when the Channel is torn down stay valid.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <vector>

#include "src/net/packet.h"

namespace essat::net {

// Shared immutable view of a transmitted frame. Copies are refcount bumps.
using PacketRef = std::shared_ptr<const Packet>;

class PacketPool {
 public:
  PacketPool() : state_(std::make_shared<State>()) {}

  // Moves `p` into a pooled slot (recycled when available) and returns a
  // shared immutable handle. The slot returns to the free list when the
  // last PacketRef drops.
  PacketRef acquire(Packet p) {
    return std::allocate_shared<Packet>(Recycler<Packet>{state_},
                                        std::move(p));
  }

  // Free-list introspection for the allocation tests.
  std::size_t recycled_blocks() const { return state_->free_blocks.size(); }

 private:
  struct State {
    // Uniform blocks: allocate_shared makes exactly one combined
    // control-block + Packet allocation, so every block has the same size.
    std::vector<void*> free_blocks;
    std::size_t block_size = 0;

    State() { free_blocks.reserve(64); }
    ~State() {
      for (void* b : free_blocks) ::operator delete(b);
    }
    State(const State&) = delete;
    State& operator=(const State&) = delete;
  };

  template <typename T>
  struct Recycler {
    using value_type = T;

    std::shared_ptr<State> state;

    explicit Recycler(std::shared_ptr<State> s) : state(std::move(s)) {}
    template <typename U>
    Recycler(const Recycler<U>& other) : state(other.state) {}

    T* allocate(std::size_t n) {
      if (n == 1) {
        if (state->block_size == 0) state->block_size = sizeof(T);
        if (state->block_size == sizeof(T)) {
          if (!state->free_blocks.empty()) {
            void* b = state->free_blocks.back();
            state->free_blocks.pop_back();
            return static_cast<T*>(b);
          }
          return static_cast<T*>(::operator new(sizeof(T)));
        }
      }
      return static_cast<T*>(::operator new(n * sizeof(T)));
    }
    void deallocate(T* p, std::size_t n) {
      if (n == 1 && state->block_size == sizeof(T)) {
        state->free_blocks.push_back(p);
        return;
      }
      ::operator delete(p);
    }

    template <typename U>
    friend bool operator==(const Recycler& a, const Recycler<U>& b) {
      return a.state == b.state;
    }
    template <typename U>
    friend bool operator!=(const Recycler& a, const Recycler<U>& b) {
      return a.state != b.state;
    }
  };

  std::shared_ptr<State> state_;
};

}  // namespace essat::net
