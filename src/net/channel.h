// Broadcast wireless medium with unit-disc propagation, per-receiver
// collision tracking, and carrier sense.
//
// Model (matches what the paper's ns-2 setup exercises):
//  * A transmission from node s occupies the air at every node within range
//    for [t + prop, t + prop + duration).
//  * A node receives a frame iff it is listening (radio fully ON and not
//    transmitting) when the frame starts arriving, remains listening for the
//    whole frame, and no other in-range transmission overlaps it (collision).
//  * Carrier sense at node n reports busy while any in-range transmission is
//    arriving at n, or while n itself transmits.
//  * An optional LinkModel (see net/link_model.h) layers probabilistic loss
//    on the unit disc: it is sampled once per (directed link, frame) and can
//    declare a frame undecodable at a receiver without removing its energy
//    from the air.
//
// Hot-path shape (see README "Performance" and "Scalability"): each
// transmission is moved once into a pooled shared slot (net/packet_pool.h);
// the begin/end arrival events and every receiver's in-progress-reception
// state hold 16-byte PacketRefs into that slot, so broadcast delivery copies
// no Packet and — once the pool is warm — allocates nothing. Arrival
// processing visits only the sender's interference neighborhood from the
// topology's grid index (O(neighbors) per transmission, never O(n)).
// Receivers are reached through a devirtualization-friendly ChannelListener
// pointer plus a channel-side cached `listening` flag, so the per-arrival
// "can this node hear?" check is one flag load with no indirect call at
// all. Per-link statistics are dense degree-sized rows on small topologies
// and an open-addressed (src,dst)-keyed map on large ones — identical
// counters either way, O(observed links) memory always.
#pragma once

#include <cassert>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/net/link_model.h"
#include "src/net/packet.h"
#include "src/net/packet_pool.h"
#include "src/net/topology.h"
#include "src/net/types.h"
#include "src/sim/simulator.h"
#include "src/util/flat_map.h"
#include "src/util/small_vector.h"

namespace essat::snap {
class Serializer;
}  // namespace essat::snap

namespace essat::net {

// Per-arrival SINR capture: one log-distance power model decides capture,
// collisions, and noise-floor loss together (replacing the distance-ratio
// capture heuristic when enabled). Every arriving frame contributes its
// received power to the interference sum at each in-range receiver; an
// in-progress reception survives overlap iff
//
//   10 log10(S / (N + I - S)) >= capture_threshold_db
//
// where S is the locked frame's power, N the noise floor, and I the total
// arriving power (including S). A lone frame below min_snr_db of SNR is
// dropped as model loss. Deterministic — no randomness is drawn — and
// with capture_threshold_db -> +inf (and min_snr_db at its -inf default)
// every overlap collides, byte-identical to capture_distance_ratio <= 0.
struct SinrParams {
  bool enabled = false;
  double tx_power_dbm = 0.0;        // CC1000-class
  double path_loss_exponent = 3.0;  // log-distance exponent
  double reference_loss_db = 40.0;  // path loss at 1 m
  double noise_dbm = -100.0;        // thermal noise floor
  double capture_threshold_db = 10.0;
  // Minimum lone-frame SNR to decode at all; the -1e9 default disables
  // noise-floor loss (every in-range frame is decodable, like unit disc).
  double min_snr_db = -1.0e9;

  // Sweep-axis label (exp::SweepSpec::axis_sinr).
  std::string label() const {
    if (!enabled) return "off";
    char buf[64];
    std::snprintf(buf, sizeof buf, "sinr%gdB", capture_threshold_db);
    return buf;
  }
};

struct ChannelParams {
  // One-hop propagation delay (applied uniformly; 125 m of vacuum is ~0.4 us,
  // rounded up to absorb PHY turnaround).
  util::Time propagation_delay = util::Time::microseconds(1);
  // Capture effect: an in-progress reception survives an overlapping
  // arrival whose sender is at least this factor farther away (ns-2's 10 dB
  // capture threshold under two-ray d^-4 is a 10^(1/4) ~= 1.78 distance
  // ratio). Set <= 0 to disable capture (all overlaps collide).
  double capture_distance_ratio = 1.78;
  // Batch the per-neighbor frame begin/end callbacks into one arrival event
  // and one departure event per transmission (all neighbors share the same
  // timestamps, so the visit order is unchanged). False restores the legacy
  // two-events-per-neighbor scheduling; kept for the A/B micro-benchmark
  // and the equivalence test.
  bool batch_arrivals = true;
  // Per-link statistics storage: topologies with fewer nodes than this use
  // the legacy dense per-sender rows (pointer-stable, scan-friendly);
  // larger ones use the open-addressed (src,dst)-keyed FlatMap whose memory
  // is O(observed links) with no per-node row headers. Both produce
  // identical counters; set to 0 / SIZE_MAX to force sparse / dense for the
  // A/B equivalence tests.
  std::size_t dense_link_stats_below = 1024;
  // SINR-based capture/loss (disabled by default: the distance-ratio
  // capture heuristic above stays the legacy behavior).
  SinrParams sinr;
};

// Receiver-side interface of the medium. One implementation per attached
// node (the MAC); replaces the three std::functions the Attachment struct
// used to carry — a devirtualizable call through one pointer instead of
// three type-erased dispatches, and 8 bytes per node instead of 96.
class ChannelListener {
 public:
  virtual ~ChannelListener() = default;
  // Frame fully arrived. `ok` is false for collisions or receptions that
  // the radio abandoned (turned off / started transmitting mid-frame).
  // The Packet reference is shared and immutable; copy what you keep.
  virtual void on_rx_complete(const Packet& p, bool ok) = 0;
  // Fired whenever the carrier-sense state at this node may have changed.
  virtual void on_channel_activity() = 0;
};

class Channel {
 public:
  Channel(sim::Simulator& sim, const Topology& topo, ChannelParams params = {});

  // Installs the per-link loss model (nullptr = the lossless legacy path;
  // models reporting always_delivers() are bypassed at the same zero cost).
  // The model is sampled once per (directed link, frame) at frame-arrival
  // time; a model-dropped frame still occupies the air for carrier sense
  // (energy above the detection threshold but below the decoding threshold
  // — the gray zone) but neither starts a reception nor corrupts one in
  // progress.
  void set_link_model(std::unique_ptr<LinkModel> model);
  const LinkModel* link_model() const { return link_model_.get(); }

  // Attaches the node's receive-side listener. The channel never calls a
  // detached node; pass nullptr to detach.
  void attach(NodeId node, ChannelListener* listener) {
    nodes_.at(static_cast<std::size_t>(node)).listener = listener;
  }

  // Cached "can this node hear right now?" flag, maintained by the owner of
  // the radio/MAC state (radio fully ON and not transmitting). Replaces the
  // per-arrival is_listening() callback: the hot path reads one bool.
  // Nodes start not listening — attach + set_listening(node, true) is the
  // canonical bring-up.
  void set_listening(NodeId node, bool listening);
  bool listening(NodeId node) const { return node_(node).listening; }

  std::size_t num_nodes() const { return nodes_.size(); }

  // Puts `p` on the air from `sender` for `duration`. The sender's MAC is
  // responsible for serializing its own transmissions.
  void start_tx(NodeId sender, Packet p, util::Time duration);

  // Carrier sense at `node`. Inline: the MAC consults it on every channel
  // event and contention step.
  bool busy(NodeId node) const {
    const PerNode& n = node_(node);
    return n.arriving_count > 0 || n.transmitting;
  }

  // Statistics.
  std::uint64_t transmissions() const { return transmissions_; }
  std::uint64_t collisions() const { return collisions_; }
  std::uint64_t delivered() const { return delivered_; }
  // (link, frame) samples the link model declared undecodable, in total.
  // Counted for every in-range receiver of every transmission, listening
  // or not.
  std::uint64_t dropped_by_model() const { return dropped_by_model_; }
  // Per-directed-link drop/offer counters, the numerator/denominator
  // routing::LinkEstimator turns into an observed PRR. Dense mode (small
  // topologies): a src-indexed table of contiguous degree-sized rows
  // scanned linearly — no hash probes on the delivery path. Sparse mode
  // (above ChannelParams::dense_link_stats_below): one open-addressed map
  // keyed by packed (src,dst) — no per-node rows at all. Only accumulated
  // while link stats are enabled (below); zero everywhere otherwise.
  std::uint64_t dropped_by_model(NodeId src, NodeId dst) const;
  std::uint64_t frames_on(NodeId src, NodeId dst) const;
  // Per-frame link accounting costs a lookup per in-range receiver;
  // consumers that never read it (anything but an estimator-backed routing
  // policy) can switch it off. On by default so a bare Channel +
  // LinkEstimator works out of the box; the harness disables it unless the
  // active ParentPolicy declares uses_link_estimator().
  void set_link_stats_enabled(bool on) { link_stats_enabled_ = on; }
  bool link_stats_enabled() const { return link_stats_enabled_; }

  // Snapshot hook: per-node carrier/reception state (in-flight frames by
  // content), medium counters, link statistics (dense rows or sparse map —
  // serialized as-stored, so the bytes also attest the storage mode), the
  // link model's state, and the tx-id counter. Listener pointers are wiring.
  void save_state(snap::Serializer& out) const;

 private:
  struct Reception {
    bool active = false;
    bool corrupted = false;
    double signal_mw = 0.0;  // locked frame's rx power (SINR mode only)
    PacketRef frame;  // shared with the arrival events; never copied
  };
  struct PerNode {
    ChannelListener* listener = nullptr;
    bool listening = false;  // cached radio-ON-and-not-transmitting
    bool transmitting = false;
    int arriving_count = 0;  // in-range transmissions currently on the air
    Reception rx;
  };

  void begin_arrival_(NodeId receiver, const PacketRef& p);
  void end_arrival_(NodeId receiver, const PacketRef& p);
  void notify_(NodeId node);
  // SINR-mode helpers (sinr_active_ only).
  double rx_power_mw_(NodeId src, NodeId dst) const;
  double sinr_total_power_mw_(NodeId receiver) const;
  // Unchecked per-node access for the per-arrival hot path (ids come from
  // the topology's neighbor lists, which are in range by construction).
  PerNode& node_(NodeId n) {
    assert(n >= 0 && static_cast<std::size_t>(n) < nodes_.size());
    return nodes_[static_cast<std::size_t>(n)];
  }
  const PerNode& node_(NodeId n) const {
    return const_cast<Channel*>(this)->node_(n);
  }
  // One directed link's counters.
  struct LinkCounters {
    std::uint64_t frames = 0;
    std::uint64_t drops = 0;
  };
  // Dense-row entry: a sender's observed receivers (its in-range
  // neighborhood), so a linear scan is a dozen contiguous entries.
  struct LinkStat {
    NodeId dst = kNoNode;
    LinkCounters counters;
  };
  static std::uint64_t link_key_(NodeId src, NodeId dst) {
    return static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 32 |
           static_cast<std::uint32_t>(dst);
  }
  LinkCounters& link_stat_(NodeId src, NodeId dst);
  const LinkCounters* find_link_stat_(NodeId src, NodeId dst) const;
  sim::Simulator& sim_;
  const Topology& topo_;
  ChannelParams params_;
  std::unique_ptr<LinkModel> link_model_;
  bool model_active_ = false;  // false also for installed lossless models
  const bool sinr_active_;     // params_.sinr.enabled, frozen at construction
  double noise_mw_ = 0.0;      // linear noise floor (SINR mode only)
  // SINR mode: the frames currently arriving at each node with their
  // received powers (a handful — the sender's interference neighborhood).
  // Kept in arrival order so the interference sum is order-deterministic.
  struct SinrArrival {
    std::uint64_t tx_id = 0;
    double power_mw = 0.0;
  };
  std::vector<util::SmallVector<SinrArrival, 4>> sinr_arrivals_;
  bool link_stats_enabled_ = true;
  const bool dense_stats_;  // storage choice, frozen at construction
  std::vector<PerNode> nodes_;
  PacketPool pool_;
  std::uint64_t transmissions_ = 0;
  std::uint64_t collisions_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_by_model_ = 0;
  // Dense mode: src-indexed rows of observed receivers; empty until the
  // first accumulation under link_stats_enabled_.
  std::vector<std::vector<LinkStat>> link_stats_;
  // Sparse mode: packed (src,dst) -> counters. The all-ones key is
  // unreachable (node ids are 31-bit).
  util::FlatMap<std::uint64_t, LinkCounters> sparse_stats_;
  std::uint64_t next_tx_id_ = 0;
};

}  // namespace essat::net
