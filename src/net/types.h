// Fundamental identifiers shared across layers.
#pragma once

#include <cstdint>

namespace essat::net {

using NodeId = std::int32_t;
inline constexpr NodeId kNoNode = -1;
// MAC-layer broadcast address.
inline constexpr NodeId kBroadcastAddr = -2;

using QueryId = std::int32_t;
inline constexpr QueryId kNoQuery = -1;

}  // namespace essat::net
