#include "src/net/link_model.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "src/snap/serializer.h"

namespace essat::net {

// ------------------------------------------------------- log-normal shadowing

LogNormalShadowingModel::LogNormalShadowingModel(ShadowingParams params,
                                                 double range_m, util::Rng&& rng)
    : params_{params},
      range_m_{range_m},
      gain_rng_{rng.fork(1)},
      frame_rng_{rng.fork(2)} {}

double LogNormalShadowingModel::link_prr(NodeId src, NodeId dst,
                                         double distance_m) const {
  const std::uint64_t key = link_key(src, dst);
  auto it = links_.find(key);
  if (it == links_.end()) {
    // Static shadowing offset, forked by link key so the draw does not
    // depend on which link happens to carry traffic first.
    util::Rng link_rng = gain_rng_.fork(key);
    it = links_
             .emplace(key, LinkState{link_rng.normal(0.0, params_.shadowing_sigma_db),
                                     -1.0, 0.0})
             .first;
  }
  // The PRR is memoized against the distance it was computed at: on a
  // frozen topology the curve is evaluated once per link (the hot deliver()
  // path then only does this lookup), while under mobility a changed
  // distance — epoch-granular, via the channel's position reads —
  // recomputes it so the PRR tracks geometry.
  LinkState& link = it->second;
  if (link.distance_m != distance_m) {
    // Co-located nodes (distance 0) get an unbounded margin: PRR -> 1.
    const double d = distance_m > 1e-9 ? distance_m : 1e-9;
    const double margin_db = params_.range_margin_db +
                             10.0 * params_.path_loss_exponent *
                                 std::log10(range_m_ / d) +
                             link.gain_db;
    link.distance_m = distance_m;
    link.prr = 1.0 / (1.0 + std::exp(-margin_db / params_.gray_zone_width_db));
  }
  return link.prr;
}

bool LogNormalShadowingModel::deliver(NodeId src, NodeId dst,
                                      double distance_m) {
  return frame_rng_.bernoulli(link_prr(src, dst, distance_m));
}

// ----------------------------------------------------------- gilbert-elliott

GilbertElliottModel::GilbertElliottModel(GilbertElliottParams params,
                                         std::unique_ptr<LinkModel> base,
                                         util::Rng&& rng)
    : params_{params},
      base_{std::move(base)},
      init_rng_{rng.fork(1)},
      frame_rng_{rng.fork(2)} {}

bool& GilbertElliottModel::link_state_(NodeId src, NodeId dst) {
  const std::uint64_t key = link_key(src, dst);
  const auto it = bad_.find(key);
  if (it != bad_.end()) return it->second;
  // Initial state from the chain's stationary distribution, forked by link
  // key for traffic-order independence.
  const double denom = params_.p_good_to_bad + params_.p_bad_to_good;
  const double stationary_bad = denom > 0.0 ? params_.p_good_to_bad / denom : 0.0;
  util::Rng link_rng = init_rng_.fork(key);
  return bad_.emplace(key, link_rng.bernoulli(stationary_bad)).first->second;
}

double GilbertElliottModel::expected_prr(NodeId src, NodeId dst,
                                         double distance_m) const {
  const double denom = params_.p_good_to_bad + params_.p_bad_to_good;
  const double stationary_bad = denom > 0.0 ? params_.p_good_to_bad / denom : 0.0;
  const double own = (1.0 - stationary_bad) * params_.prr_good +
                     stationary_bad * params_.prr_bad;
  return own * (base_ ? base_->expected_prr(src, dst, distance_m) : 1.0);
}

bool GilbertElliottModel::deliver(NodeId src, NodeId dst, double distance_m) {
  bool& bad = link_state_(src, dst);
  const bool burst_pass =
      frame_rng_.bernoulli(bad ? params_.prr_bad : params_.prr_good);
  bad = frame_rng_.bernoulli(bad ? 1.0 - params_.p_bad_to_good
                                 : params_.p_good_to_bad);
  // Evaluate the base unconditionally: the burst chain above already
  // stepped, and stateful bases must see the same per-frame clock.
  const bool base_pass = !base_ || base_->deliver(src, dst, distance_m);
  return base_pass && burst_pass;
}

// ------------------------------------------------------------- PRR thinning

PrrScaledModel::PrrScaledModel(std::unique_ptr<LinkModel> base,
                               double prr_scale, util::Rng&& rng)
    : base_{std::move(base)}, prr_scale_{prr_scale}, rng_{std::move(rng)} {}

bool PrrScaledModel::deliver(NodeId src, NodeId dst, double distance_m) {
  // Draw the thinning coin before the base so stateless and stateful bases
  // alike see one draw per (link, frame) from this layer.
  const bool thin_pass = rng_.bernoulli(prr_scale_);
  return base_->deliver(src, dst, distance_m) && thin_pass;
}

// ---------------------------------------------------------- PRR trace replay

PrrTraceModel::PrrTraceModel(const std::vector<PrrTraceEntry>& entries,
                             double default_prr, util::Rng&& rng)
    : default_prr_{default_prr}, frame_rng_{std::move(rng)} {
  prr_.reserve(entries.size());
  for (const PrrTraceEntry& e : entries) {
    prr_[link_key(e.src, e.dst)] = e.prr;
  }
}

bool PrrTraceModel::deliver(NodeId src, NodeId dst, double distance_m) {
  (void)distance_m;
  return frame_rng_.bernoulli(lookup_(src, dst));
}

void PrrTraceModel::save_state(snap::Serializer& out) const {
  out.begin("LMPT");
  // The table is pure config (rebuilt from the spec on replay); only the
  // per-frame stream advances.
  frame_rng_.save_state(out);
  out.end();
}

std::vector<PrrTraceEntry> parse_prr_trace(const std::string& text) {
  std::vector<PrrTraceEntry> out;
  std::size_t line_start = 0;
  int line_no = 0;
  while (line_start <= text.size()) {
    std::size_t line_end = text.find('\n', line_start);
    if (line_end == std::string::npos) line_end = text.size();
    std::string line = text.substr(line_start, line_end - line_start);
    line_start = line_end + 1;
    ++line_no;
    if (const std::size_t hash = line.find('#'); hash != std::string::npos) {
      line.resize(hash);
    }
    // Skip blank / whitespace-only lines.
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    long src = -1;
    long dst = -1;
    double prr = -1.0;
    char trailing = '\0';
    const int got =
        std::sscanf(line.c_str(), " %ld %ld %lf %c", &src, &dst, &prr, &trailing);
    if (got != 3 || src < 0 || dst < 0 || prr < 0.0 || prr > 1.0) {
      throw std::invalid_argument{"parse_prr_trace: malformed line " +
                                  std::to_string(line_no) + ": '" + line + "'"};
    }
    out.push_back(PrrTraceEntry{static_cast<NodeId>(src),
                                static_cast<NodeId>(dst), prr});
  }
  return out;
}

// ----------------------------------------------------------------- the spec

const char* link_model_kind_name(LinkModelKind k) {
  switch (k) {
    case LinkModelKind::kNone: return "none";
    case LinkModelKind::kUnitDisc: return "unit-disc";
    case LinkModelKind::kLogNormalShadowing: return "shadowing";
    case LinkModelKind::kGilbertElliott: return "gilbert-elliott";
    case LinkModelKind::kPrrTrace: return "prr-trace";
  }
  throw std::invalid_argument{"link_model_kind_name: unknown kind"};
}

LinkModelKind link_model_kind_from_name(const std::string& name) {
  for (LinkModelKind k :
       {LinkModelKind::kNone, LinkModelKind::kUnitDisc,
        LinkModelKind::kLogNormalShadowing, LinkModelKind::kGilbertElliott,
        LinkModelKind::kPrrTrace}) {
    if (name == link_model_kind_name(k)) return k;
  }
  throw std::invalid_argument{"link_model_kind_from_name: unknown name '" +
                              name + "'"};
}

std::unique_ptr<LinkModel> ChannelModelSpec::build(double range_m,
                                                   util::Rng&& rng) const {
  std::unique_ptr<LinkModel> model;
  switch (kind) {
    case LinkModelKind::kNone:
      // Thinning still applies (as a wrapped unit disc): "none@0.9" must
      // mean what its label says, not silently run lossless.
      if (prr_scale >= 1.0) return nullptr;
      model = std::make_unique<UnitDiscModel>();
      break;
    case LinkModelKind::kUnitDisc:
      model = std::make_unique<UnitDiscModel>();
      break;
    case LinkModelKind::kLogNormalShadowing:
      model = std::make_unique<LogNormalShadowingModel>(shadowing, range_m,
                                                        rng.fork(1));
      break;
    case LinkModelKind::kGilbertElliott: {
      std::unique_ptr<LinkModel> base;
      switch (gilbert_base) {
        case LinkModelKind::kNone:
        case LinkModelKind::kUnitDisc:
          base = nullptr;  // unit-disc base, no per-frame draw needed
          break;
        case LinkModelKind::kLogNormalShadowing:
          base = std::make_unique<LogNormalShadowingModel>(shadowing, range_m,
                                                           rng.fork(1));
          break;
        case LinkModelKind::kGilbertElliott:
          throw std::invalid_argument{
              "ChannelModelSpec: gilbert_base cannot itself be gilbert-elliott"};
      }
      model = std::make_unique<GilbertElliottModel>(gilbert, std::move(base),
                                                    rng.fork(2));
      break;
    }
    case LinkModelKind::kPrrTrace:
      model = std::make_unique<PrrTraceModel>(prr_trace, prr_trace_default,
                                              rng.fork(4));
      break;
  }
  if (prr_scale < 1.0) {
    model = std::make_unique<PrrScaledModel>(std::move(model), prr_scale,
                                             rng.fork(3));
  }
  return model;
}

void LogNormalShadowingModel::save_state(snap::Serializer& out) const {
  out.begin("LMSH");
  // links_ is an unordered_map; serialize in sorted-key order so the bytes
  // are a pure function of the logical state.
  std::vector<std::uint64_t> keys;
  keys.reserve(links_.size());
  for (const auto& [k, unused] : links_) keys.push_back(k);
  std::sort(keys.begin(), keys.end());
  out.u64(keys.size());
  for (std::uint64_t k : keys) {
    const LinkState& s = links_.at(k);
    out.u64(k);
    out.f64(s.gain_db);
    out.f64(s.distance_m);
    out.f64(s.prr);
  }
  gain_rng_.save_state(out);
  frame_rng_.save_state(out);
  out.end();
}

void GilbertElliottModel::save_state(snap::Serializer& out) const {
  out.begin("LMGE");
  std::vector<std::uint64_t> keys;
  keys.reserve(bad_.size());
  for (const auto& [k, unused] : bad_) keys.push_back(k);
  std::sort(keys.begin(), keys.end());
  out.u64(keys.size());
  for (std::uint64_t k : keys) {
    out.u64(k);
    out.boolean(bad_.at(k));
  }
  init_rng_.save_state(out);
  frame_rng_.save_state(out);
  if (base_ != nullptr) base_->save_state(out);
  out.end();
}

void PrrScaledModel::save_state(snap::Serializer& out) const {
  out.begin("LMPS");
  rng_.save_state(out);
  base_->save_state(out);
  out.end();
}

std::string ChannelModelSpec::label() const {
  std::string out = link_model_kind_name(kind);
  if (prr_scale < 1.0) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "@%g", prr_scale);
    out += buf;
  }
  return out;
}

}  // namespace essat::net
