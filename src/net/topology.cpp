#include "src/net/topology.h"

#include <cmath>
#include <limits>
#include <queue>
#include <stdexcept>

namespace essat::net {

Topology::Topology(std::vector<Position> positions, double range_m)
    : positions_{std::move(positions)}, range_m_{range_m} {
  if (range_m_ <= 0.0) throw std::invalid_argument{"Topology: range must be positive"};
  build_neighbor_lists_();
}

Topology Topology::uniform_random(std::size_t num_nodes, double area_m,
                                  double range_m, util::Rng& rng) {
  std::vector<Position> pos;
  pos.reserve(num_nodes);
  for (std::size_t i = 0; i < num_nodes; ++i) {
    pos.push_back(Position{rng.uniform(0.0, area_m), rng.uniform(0.0, area_m)});
  }
  return Topology{std::move(pos), range_m};
}

Topology Topology::line(std::size_t num_nodes, double spacing_m, double range_m) {
  std::vector<Position> pos;
  pos.reserve(num_nodes);
  for (std::size_t i = 0; i < num_nodes; ++i) {
    pos.push_back(Position{static_cast<double>(i) * spacing_m, 0.0});
  }
  return Topology{std::move(pos), range_m};
}

Topology Topology::grid(std::size_t side, double spacing_m, double range_m) {
  std::vector<Position> pos;
  pos.reserve(side * side);
  for (std::size_t r = 0; r < side; ++r) {
    for (std::size_t c = 0; c < side; ++c) {
      pos.push_back(Position{static_cast<double>(c) * spacing_m,
                             static_cast<double>(r) * spacing_m});
    }
  }
  return Topology{std::move(pos), range_m};
}

void Topology::build_neighbor_lists_() {
  const auto n = positions_.size();
  neighbors_.assign(n, {});
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (distance(positions_[i], positions_[j]) <= range_m_) {
        neighbors_[i].push_back(static_cast<NodeId>(j));
        neighbors_[j].push_back(static_cast<NodeId>(i));
      }
    }
  }
}

bool Topology::in_range(NodeId a, NodeId b) const {
  if (a == b) return false;
  return distance(position(a), position(b)) <= range_m_;
}

NodeId Topology::nearest(const Position& p) const {
  NodeId best = kNoNode;
  double best_d = std::numeric_limits<double>::max();
  for (std::size_t i = 0; i < positions_.size(); ++i) {
    const double d = distance(positions_[i], p);
    if (d < best_d) {
      best_d = d;
      best = static_cast<NodeId>(i);
    }
  }
  return best;
}

bool Topology::connected() const {
  if (positions_.empty()) return true;
  std::vector<bool> seen(positions_.size(), false);
  std::queue<NodeId> frontier;
  frontier.push(0);
  seen[0] = true;
  std::size_t reached = 1;
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    for (NodeId v : neighbors(u)) {
      if (!seen[static_cast<std::size_t>(v)]) {
        seen[static_cast<std::size_t>(v)] = true;
        ++reached;
        frontier.push(v);
      }
    }
  }
  return reached == positions_.size();
}

}  // namespace essat::net
