#include "src/net/topology.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <stdexcept>

#include "src/snap/serializer.h"

namespace essat::net {

Topology::Topology(std::vector<Position> positions, double range_m)
    : positions_{std::move(positions)}, range_m_{range_m} {
  if (range_m_ <= 0.0) throw std::invalid_argument{"Topology: range must be positive"};
  build_neighbor_lists_();
}

Topology Topology::uniform_random(std::size_t num_nodes, double area_m,
                                  double range_m, util::Rng& rng) {
  std::vector<Position> pos;
  pos.reserve(num_nodes);
  for (std::size_t i = 0; i < num_nodes; ++i) {
    pos.push_back(Position{rng.uniform(0.0, area_m), rng.uniform(0.0, area_m)});
  }
  return Topology{std::move(pos), range_m};
}

Topology Topology::line(std::size_t num_nodes, double spacing_m, double range_m) {
  std::vector<Position> pos;
  pos.reserve(num_nodes);
  for (std::size_t i = 0; i < num_nodes; ++i) {
    pos.push_back(Position{static_cast<double>(i) * spacing_m, 0.0});
  }
  return Topology{std::move(pos), range_m};
}

Topology Topology::grid(std::size_t side, double spacing_m, double range_m) {
  std::vector<Position> pos;
  pos.reserve(side * side);
  for (std::size_t r = 0; r < side; ++r) {
    for (std::size_t c = 0; c < side; ++c) {
      pos.push_back(Position{static_cast<double>(c) * spacing_m,
                             static_cast<double>(r) * spacing_m});
    }
  }
  return Topology{std::move(pos), range_m};
}

Topology Topology::grid_area(std::size_t num_nodes, double area_m,
                             double range_m) {
  std::vector<Position> pos;
  pos.reserve(num_nodes);
  if (num_nodes > 0) {
    const auto cols = static_cast<std::size_t>(
        std::ceil(std::sqrt(static_cast<double>(num_nodes))));
    const std::size_t rows = (num_nodes + cols - 1) / cols;
    const double dx = cols > 1 ? area_m / static_cast<double>(cols - 1) : 0.0;
    const double dy = rows > 1 ? area_m / static_cast<double>(rows - 1) : 0.0;
    for (std::size_t i = 0; i < num_nodes; ++i) {
      pos.push_back(Position{static_cast<double>(i % cols) * dx,
                             static_cast<double>(i / cols) * dy});
    }
  }
  return Topology{std::move(pos), range_m};
}

Topology Topology::clustered(std::size_t num_nodes, double area_m,
                             double range_m, std::size_t clusters,
                             double sigma_m, util::Rng& rng) {
  if (clusters == 0) clusters = 1;
  // Centres on a circle of radius area/4 around the middle; a central
  // cluster is added past four so large counts keep the hub bridged.
  const double cx = area_m / 2.0, cy = area_m / 2.0, r = area_m / 4.0;
  std::vector<Position> centres;
  centres.reserve(clusters);
  const std::size_t ring = clusters > 4 ? clusters - 1 : clusters;
  for (std::size_t c = 0; c < ring; ++c) {
    const double theta =
        2.0 * 3.14159265358979323846 * static_cast<double>(c) /
        static_cast<double>(ring);
    centres.push_back(Position{cx + r * std::cos(theta), cy + r * std::sin(theta)});
  }
  if (clusters > 4) centres.push_back(Position{cx, cy});

  auto clamp = [area_m](double v) {
    return v < 0.0 ? 0.0 : (v > area_m ? area_m : v);
  };
  std::vector<Position> pos;
  pos.reserve(num_nodes);
  for (std::size_t i = 0; i < num_nodes; ++i) {
    const Position& c = centres[i % centres.size()];
    pos.push_back(Position{clamp(c.x + rng.normal(0.0, sigma_m)),
                           clamp(c.y + rng.normal(0.0, sigma_m))});
  }
  return Topology{std::move(pos), range_m};
}

Topology Topology::corridor(std::size_t num_nodes, double length_m,
                            double width_m, double range_m, util::Rng& rng) {
  std::vector<Position> pos;
  pos.reserve(num_nodes);
  for (std::size_t i = 0; i < num_nodes; ++i) {
    pos.push_back(Position{rng.uniform(0.0, length_m), rng.uniform(0.0, width_m)});
  }
  return Topology{std::move(pos), range_m};
}

void Topology::set_mobility_model(std::shared_ptr<MobilityModel> model,
                                  util::Time epoch) {
  if (model && epoch <= util::Time::zero()) {
    throw std::invalid_argument{"Topology: mobility epoch must be positive"};
  }
  mobility_ = std::move(model);
  epoch_ = epoch;
  epoch_index_ = 0;  // positions_ already hold the t = 0 snapshot
}

void Topology::advance_to(util::Time t) {
  if (!mobility_) return;
  const std::int64_t e = t.ns() / epoch_.ns();
  if (e == epoch_index_) return;
  epoch_index_ = e;
  const std::size_t n = positions_.size();
  mobility_->positions_at(t, positions_);
  if (positions_.size() != n) {
    // Consumers (channel, trees) size per-node state at construction; a
    // model for a different node count must not silently resize the world.
    throw std::logic_error{"Topology::advance_to: mobility model node count mismatch"};
  }
  build_neighbor_lists_();
}

void Topology::build_neighbor_lists_() {
  const auto n = positions_.size();
  std::vector<std::vector<NodeId>> lists(n);
  ++rebuilds_;
  if (n == 0) {
    neighbors_.clear();
    return;
  }

  // Uniform-grid spatial index: bucket nodes into range-sized cells and
  // test only the 3x3 block around each node's cell — expected O(n) at
  // bounded density, against the seed's O(n^2) all-pairs scan (which made
  // per-epoch mobility rebuilds unaffordable). The exact distance test plus
  // the final sort keep every list byte-identical to the all-pairs build
  // (ascending node ids).
  double min_x = positions_[0].x, max_x = min_x;
  double min_y = positions_[0].y, max_y = min_y;
  for (const Position& p : positions_) {
    min_x = std::min(min_x, p.x);
    max_x = std::max(max_x, p.x);
    min_y = std::min(min_y, p.y);
    max_y = std::max(max_y, p.y);
  }
  // Cell size starts at the radio range (3x3 block then provably covers
  // every in-range pair) and doubles until the grid holds O(n) cells, so a
  // sparse deployment over a huge extent cannot blow up memory — larger
  // cells only widen buckets, never miss a neighbor.
  const std::size_t max_cells = std::max<std::size_t>(64, 4 * n);
  double cell = range_m_;
  std::size_t cols = 0, rows = 0;
  const auto dim = [max_cells](double extent, double c) {
    const double f = extent / c;  // compare as double: the cast is UB out of range
    return f >= static_cast<double>(max_cells) ? max_cells + 1
                                               : static_cast<std::size_t>(f) + 1;
  };
  for (;;) {
    cols = dim(max_x - min_x, cell);
    rows = dim(max_y - min_y, cell);
    if (cols <= max_cells && rows <= max_cells && cols * rows <= max_cells) break;
    cell *= 2.0;
  }
  const auto cell_x = [&](const Position& p) {
    const auto c = static_cast<std::size_t>((p.x - min_x) / cell);
    return c >= cols ? cols - 1 : c;  // FP guard at the max edge
  };
  const auto cell_y = [&](const Position& p) {
    const auto c = static_cast<std::size_t>((p.y - min_y) / cell);
    return c >= rows ? rows - 1 : c;
  };

  std::vector<std::vector<std::uint32_t>> buckets(cols * rows);
  for (std::size_t i = 0; i < n; ++i) {
    buckets[cell_y(positions_[i]) * cols + cell_x(positions_[i])].push_back(
        static_cast<std::uint32_t>(i));
  }

  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t cx = cell_x(positions_[i]);
    const std::size_t cy = cell_y(positions_[i]);
    auto& out = lists[i];
    for (std::size_t by = cy > 0 ? cy - 1 : 0; by <= std::min(cy + 1, rows - 1); ++by) {
      for (std::size_t bx = cx > 0 ? cx - 1 : 0; bx <= std::min(cx + 1, cols - 1); ++bx) {
        for (std::uint32_t j : buckets[by * cols + bx]) {
          if (j == i) continue;
          if (distance(positions_[i], positions_[j]) <= range_m_) {
            out.push_back(static_cast<NodeId>(j));
          }
        }
      }
    }
    std::sort(out.begin(), out.end());
  }

  // Publish copy-on-rebuild: fresh immutable lists every epoch, so handles
  // taken before the rebuild stay valid and unchanged.
  neighbors_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    neighbors_[i] =
        std::make_shared<const std::vector<NodeId>>(std::move(lists[i]));
  }
}

bool Topology::in_range(NodeId a, NodeId b) const {
  if (a == b) return false;
  return distance(position(a), position(b)) <= range_m_;
}

NodeId Topology::nearest(const Position& p) const {
  NodeId best = kNoNode;
  double best_d = std::numeric_limits<double>::max();
  for (std::size_t i = 0; i < positions_.size(); ++i) {
    const double d = distance(positions_[i], p);
    if (d < best_d) {
      best_d = d;
      best = static_cast<NodeId>(i);
    }
  }
  return best;
}

bool Topology::connected() const {
  if (positions_.empty()) return true;
  std::vector<bool> seen(positions_.size(), false);
  std::queue<NodeId> frontier;
  frontier.push(0);
  seen[0] = true;
  std::size_t reached = 1;
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    for (NodeId v : neighbors(u)) {
      if (!seen[static_cast<std::size_t>(v)]) {
        seen[static_cast<std::size_t>(v)] = true;
        ++reached;
        frontier.push(v);
      }
    }
  }
  return reached == positions_.size();
}

const char* topology_kind_name(TopologyKind k) {
  switch (k) {
    case TopologyKind::kUniform: return "uniform";
    case TopologyKind::kGrid: return "grid";
    case TopologyKind::kLine: return "line";
    case TopologyKind::kClustered: return "clustered";
    case TopologyKind::kCorridor: return "corridor";
  }
  throw std::invalid_argument{"topology_kind_name: unknown TopologyKind"};
}

TopologyKind topology_kind_from_name(const std::string& name) {
  for (TopologyKind k : {TopologyKind::kUniform, TopologyKind::kGrid,
                         TopologyKind::kLine, TopologyKind::kClustered,
                         TopologyKind::kCorridor}) {
    if (name == topology_kind_name(k)) return k;
  }
  throw std::invalid_argument{"topology_kind_from_name: unknown kind \"" +
                              name + "\""};
}

Topology DeploymentSpec::build(util::Rng& rng) const {
  const auto n = static_cast<std::size_t>(num_nodes < 0 ? 0 : num_nodes);
  switch (kind) {
    case TopologyKind::kUniform:
      return Topology::uniform_random(n, area_m, range_m, rng);
    case TopologyKind::kGrid:
      return Topology::grid_area(n, area_m, range_m);
    case TopologyKind::kLine:
      // The chain spans the area; spacing shrinks with node count.
      return Topology::line(n, n > 1 ? area_m / static_cast<double>(n - 1) : 0.0,
                            range_m);
    case TopologyKind::kClustered:
      return Topology::clustered(n, area_m, range_m,
                                 static_cast<std::size_t>(clusters < 1 ? 1 : clusters),
                                 cluster_sigma_m, rng);
    case TopologyKind::kCorridor:
      return Topology::corridor(n, area_m, corridor_width_m, range_m, rng);
  }
  throw std::invalid_argument{"DeploymentSpec::build: unknown TopologyKind"};
}

Position DeploymentSpec::centre() const {
  switch (kind) {
    case TopologyKind::kLine: return Position{area_m / 2.0, 0.0};
    case TopologyKind::kCorridor:
      return Position{area_m / 2.0, corridor_width_m / 2.0};
    default: return Position{area_m / 2.0, area_m / 2.0};
  }
}

Position DeploymentSpec::extent() const {
  switch (kind) {
    case TopologyKind::kLine: return Position{area_m, 0.0};
    case TopologyKind::kCorridor: return Position{area_m, corridor_width_m};
    default: return Position{area_m, area_m};
  }
}

void Topology::save_state(snap::Serializer& out) const {
  out.begin("TOPO");
  out.f64(range_m_);
  out.u64(positions_.size());
  for (const Position& p : positions_) {
    out.f64(p.x);
    out.f64(p.y);
  }
  out.u64(neighbors_.size());
  for (const auto& list : neighbors_) {
    out.u64(list->size());
    for (NodeId n : *list) out.i32(n);
  }
  out.boolean(mobility_ != nullptr);
  out.time(epoch_);
  out.i64(epoch_index_);
  out.u64(rebuilds_);
  if (mobility_ != nullptr) mobility_->save_state(out);
  out.end();
}

}  // namespace essat::net
