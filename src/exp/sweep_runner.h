// Deterministic parallel sweep execution.
//
// Every (point, repetition) pair is an independent trial: its config is
// fully determined up front (point config + seed = base seed + repetition
// index), it runs on whichever worker picks it up, and its RunMetrics
// lands in a pre-assigned slot. Aggregation happens only after all trials
// finish, folding each point's runs in repetition order — so the output is
// bit-identical for any thread count, including the serial jobs=1 path.
#pragma once

#include <functional>
#include <vector>

#include "src/exp/aggregate.h"
#include "src/exp/sinks.h"
#include "src/exp/sweep.h"

namespace essat::exp {

class SweepRunner {
 public:
  struct Options {
    // Worker threads; 0 means default_jobs() (ESSAT_JOBS or all cores).
    int jobs = 0;
    // The function executed per trial. Defaults to harness::run_scenario;
    // injectable so tests can exercise the engine with a cheap stub.
    std::function<harness::RunMetrics(const harness::ScenarioConfig&)> run_fn;
    // Called after each trial completes with (trials done, trials total).
    // Invoked under a lock, possibly from worker threads.
    std::function<void(std::size_t done, std::size_t total)> progress;
    // Crash-resumable mode: when non-empty, the directory holds a
    // checkpoint ledger (see src/exp/checkpoint.h). Completed trials are
    // appended as they finish, aggregated points are emitted to the sinks
    // incrementally (in point order) with an emission watermark after
    // each, and a re-run against the same directory skips the recorded
    // trials and resumes path-backed sinks at their recorded offsets —
    // producing output byte-identical to an uninterrupted sweep. Resume
    // with the same spec (fingerprint-checked) and the same sink list.
    // Empty (default) preserves the legacy all-at-the-end emission path.
    std::string checkpoint_dir;
  };

  SweepRunner() = default;
  explicit SweepRunner(Options options) : options_(std::move(options)) {}

  // Runs the full grid (points * runs_per_point trials), then feeds each
  // aggregated point to every sink (begin / on_point in order / finish)
  // and returns the results in point order. Rethrows the first trial
  // exception after all workers have drained — but first flushes every
  // fully-completed point to the sinks, so a partially-failed sweep still
  // leaves its finished results on disk.
  std::vector<PointResult> run(const SweepSpec& spec,
                               const std::vector<ResultSink*>& sinks = {});

 private:
  // The checkpoint_dir path: ledger-backed trial skipping plus incremental
  // in-point-order emission with a watermark after every point.
  std::vector<PointResult> run_checkpointed_(
      const SweepSpec& spec, const std::vector<ResultSink*>& sinks,
      const std::vector<SweepPoint>& points, int runs,
      const std::function<harness::RunMetrics(const harness::ScenarioConfig&)>&
          run_fn);

  Options options_;
};

}  // namespace essat::exp
