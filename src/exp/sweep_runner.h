// Deterministic parallel sweep execution.
//
// Every (point, repetition) pair is an independent trial: its config is
// fully determined up front (point config + seed = base seed + repetition
// index), it runs on whichever worker picks it up, and its RunMetrics
// lands in a pre-assigned slot. Aggregation happens only after all trials
// finish, folding each point's runs in repetition order — so the output is
// bit-identical for any thread count, including the serial jobs=1 path.
#pragma once

#include <functional>
#include <vector>

#include "src/exp/aggregate.h"
#include "src/exp/sinks.h"
#include "src/exp/sweep.h"

namespace essat::exp {

class SweepRunner {
 public:
  struct Options {
    // Worker threads; 0 means default_jobs() (ESSAT_JOBS or all cores).
    int jobs = 0;
    // The function executed per trial. Defaults to harness::run_scenario;
    // injectable so tests can exercise the engine with a cheap stub.
    std::function<harness::RunMetrics(const harness::ScenarioConfig&)> run_fn;
    // Called after each trial completes with (trials done, trials total).
    // Invoked under a lock, possibly from worker threads.
    std::function<void(std::size_t done, std::size_t total)> progress;
  };

  SweepRunner() = default;
  explicit SweepRunner(Options options) : options_(std::move(options)) {}

  // Runs the full grid (points * runs_per_point trials), then feeds each
  // aggregated point to every sink (begin / on_point in order / finish)
  // and returns the results in point order. Rethrows the first trial
  // exception after all workers have drained — but first flushes every
  // fully-completed point to the sinks, so a partially-failed sweep still
  // leaves its finished results on disk.
  std::vector<PointResult> run(const SweepSpec& spec,
                               const std::vector<ResultSink*>& sinks = {});

 private:
  Options options_;
};

}  // namespace essat::exp
