#include "src/exp/checkpoint.h"

#include <cstddef>
#include <filesystem>
#include <stdexcept>
#include <utility>

#include "src/snap/config_codec.h"
#include "src/snap/metrics_codec.h"
#include "src/snap/serializer.h"
#include "src/snap/snapshot.h"

namespace essat::exp {
namespace {

// Framed snapshot layout (snapshot.cpp): magic(8) version(4) kind(4)
// payload-len(8) payload crc(4).
constexpr std::size_t kFrameHeader = 8 + 4 + 4 + 8;
constexpr std::size_t kFrameTrailer = 4;

std::vector<std::uint8_t> read_whole_file(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) return {};
  return std::vector<std::uint8_t>{std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>()};
}

}  // namespace

std::uint32_t sweep_fingerprint(const std::vector<SweepPoint>& points,
                                int runs_per_point) {
  snap::Serializer s;
  s.u64(points.size());
  s.i32(runs_per_point);
  for (const SweepPoint& p : points) snap::save_scenario_config(s, p.config);
  return snap::crc32(s.data().data(), s.data().size());
}

SweepLedger::SweepLedger(std::string path, std::uint32_t fingerprint)
    : path_(std::move(path)) {
  const std::vector<std::uint8_t> file = read_whole_file(path_);

  // Parse frames until the first undecodable one (torn tail). Every
  // successfully parsed frame advances the known-good boundary.
  std::size_t good = 0;
  bool have_spec = false;
  std::size_t at = 0;
  while (at + kFrameHeader + kFrameTrailer <= file.size()) {
    std::uint64_t payload_len = 0;
    for (int i = 0; i < 8; ++i) {
      payload_len |= static_cast<std::uint64_t>(file[at + 16 + i]) << (8 * i);
    }
    const std::uint64_t frame = kFrameHeader + payload_len + kFrameTrailer;
    if (at + frame > file.size()) break;  // torn mid-frame
    snap::Snapshot snapshot;
    try {
      snapshot = snap::Snapshot::from_bytes(file.data() + at,
                                            static_cast<std::size_t>(frame));
    } catch (const snap::SnapError&) {
      break;  // corrupted frame: everything from here on is suspect
    }
    if (snapshot.kind != snap::SnapshotKind::kLedger) break;

    snap::Deserializer in{snapshot.payload};
    const std::string tag = in.next_tag();
    if (tag == "SPEC") {
      in.enter("SPEC");
      const std::uint32_t recorded = in.u32();
      in.finish();
      if (recorded != fingerprint) {
        throw std::runtime_error{
            "SweepLedger: " + path_ +
            " records a different sweep (fingerprint mismatch); refusing to "
            "resume — point a fresh checkpoint_dir at this sweep instead"};
      }
      have_spec = true;
    } else if (tag == "TRIA") {
      in.enter("TRIA");
      CompletedTrial t;
      t.point = in.u64();
      t.rep = in.i32();
      t.metrics = snap::load_run_metrics(in);
      in.finish();
      completed_.push_back(std::move(t));
    } else if (tag == "MARK") {
      in.enter("MARK");
      points_emitted_ = in.u64();
      sink_offsets_.assign(static_cast<std::size_t>(in.u64()), 0);
      for (std::int64_t& off : sink_offsets_) off = in.i64();
      in.finish();
    } else {
      break;  // unknown record type: treat as tail corruption
    }
    at += static_cast<std::size_t>(frame);
    good = at;
  }

  if (!file.empty() && !have_spec) {
    // The file exists but its first frame is not a readable SPEC: it is
    // either foreign or torn beyond use. Refuse rather than clobber.
    throw std::runtime_error{"SweepLedger: " + path_ +
                             " is not a sweep ledger (no SPEC record)"};
  }
  if (good < file.size()) {
    std::filesystem::resize_file(path_, static_cast<std::uintmax_t>(good));
  }

  out_.open(path_, std::ios::binary | std::ios::out | std::ios::app);
  if (!out_) {
    throw std::runtime_error{"SweepLedger: cannot open " + path_};
  }
  if (!have_spec) {
    snap::Serializer s;
    s.begin("SPEC");
    s.u32(fingerprint);
    s.end();
    snap::Snapshot snapshot;
    snapshot.kind = snap::SnapshotKind::kLedger;
    snapshot.payload = s.take();
    append_(snapshot);
  }
}

void SweepLedger::record_trial(std::uint64_t point, std::int32_t rep,
                               const harness::RunMetrics& metrics) {
  snap::Serializer s;
  s.begin("TRIA");
  s.u64(point);
  s.i32(rep);
  snap::save_run_metrics(s, metrics);
  s.end();
  snap::Snapshot snapshot;
  snapshot.kind = snap::SnapshotKind::kLedger;
  snapshot.payload = s.take();
  append_(snapshot);
}

void SweepLedger::record_mark(std::uint64_t points_emitted,
                              const std::vector<std::int64_t>& sink_offsets) {
  snap::Serializer s;
  s.begin("MARK");
  s.u64(points_emitted);
  s.u64(sink_offsets.size());
  for (std::int64_t off : sink_offsets) s.i64(off);
  s.end();
  snap::Snapshot snapshot;
  snapshot.kind = snap::SnapshotKind::kLedger;
  snapshot.payload = s.take();
  append_(snapshot);
}

void SweepLedger::append_(const snap::Snapshot& snapshot) {
  const std::vector<std::uint8_t> wire = snapshot.to_bytes();
  out_.write(reinterpret_cast<const char*>(wire.data()),
             static_cast<std::streamsize>(wire.size()));
  out_.flush();
  if (!out_) {
    throw std::runtime_error{"SweepLedger: write failed on " + path_};
  }
}

}  // namespace essat::exp
