#include "src/exp/sweep_runner.h"

#include <exception>
#include <filesystem>
#include <memory>
#include <mutex>
#include <utility>

#include "src/exp/checkpoint.h"
#include "src/exp/thread_pool.h"

namespace essat::exp {

std::vector<PointResult> SweepRunner::run(const SweepSpec& spec,
                                          const std::vector<ResultSink*>& sinks) {
  const std::vector<SweepPoint> points = spec.points();
  const int runs = spec.runs_per_point();
  const std::size_t total_trials = points.size() * static_cast<std::size_t>(runs);

  auto run_fn = options_.run_fn
                    ? options_.run_fn
                    : [](const harness::ScenarioConfig& c) {
                        return harness::run_scenario(c);
                      };

  if (!options_.checkpoint_dir.empty()) {
    return run_checkpointed_(spec, sinks, points, runs, run_fn);
  }

  // Result slots are pre-assigned per (point, repetition) so completion
  // order cannot influence anything downstream.
  std::vector<std::vector<harness::RunMetrics>> results(points.size());
  for (auto& slot : results) slot.resize(static_cast<std::size_t>(runs));
  // Per-trial completion flags: on abort, points whose every repetition
  // finished are still aggregated and flushed to the sinks.
  std::vector<std::vector<char>> trial_ok(points.size());
  for (auto& slot : trial_ok) slot.assign(static_cast<std::size_t>(runs), 0);

  std::size_t done = 0;
  std::mutex done_mu;  // guards `done` AND orders the progress callbacks
  std::exception_ptr first_error;
  std::mutex error_mu;

  auto run_trial = [&](std::size_t p, int rep) {
    try {
      harness::ScenarioConfig config = points[p].config;
      config.seed = config.seed + static_cast<std::uint64_t>(rep);
      results[p][static_cast<std::size_t>(rep)] = run_fn(config);
      trial_ok[p][static_cast<std::size_t>(rep)] = 1;
    } catch (...) {
      std::lock_guard<std::mutex> lock(error_mu);
      if (!first_error) first_error = std::current_exception();
    }
    std::lock_guard<std::mutex> lock(done_mu);
    ++done;
    if (options_.progress) options_.progress(done, total_trials);
  };

  int jobs = options_.jobs > 0 ? options_.jobs : default_jobs();
  if (static_cast<std::size_t>(jobs) > total_trials) {
    jobs = static_cast<int>(total_trials);  // don't spawn idle workers
  }
  if (jobs <= 1 || total_trials <= 1) {
    for (std::size_t p = 0; p < points.size(); ++p) {
      for (int rep = 0; rep < runs; ++rep) run_trial(p, rep);
    }
  } else {
    ThreadPool pool(jobs);
    for (std::size_t p = 0; p < points.size(); ++p) {
      for (int rep = 0; rep < runs; ++rep) {
        pool.submit([&run_trial, p, rep] { run_trial(p, rep); });
      }
    }
    pool.wait_idle();
  }
  auto aggregate_point = [&](std::size_t p) {
    Aggregator agg;
    for (auto& m : results[p]) agg.add(std::move(m));
    return PointResult{points[p], agg.take()};
  };
  auto emit = [&](const std::vector<PointResult>& out) {
    for (ResultSink* sink : sinks) sink->begin(spec.axis_names());
    for (const PointResult& r : out) {
      for (ResultSink* sink : sinks) sink->on_point(r);
    }
    for (ResultSink* sink : sinks) sink->finish();
  };

  if (first_error) {
    // Abort path: don't silently discard finished work. Every point whose
    // repetitions all completed is aggregated and flushed to the sinks
    // before the error propagates.
    std::vector<PointResult> partial;
    for (std::size_t p = 0; p < points.size(); ++p) {
      bool complete = true;
      for (char ok : trial_ok[p]) complete = complete && ok != 0;
      if (complete) partial.push_back(aggregate_point(p));
    }
    if (!partial.empty()) emit(partial);
    std::rethrow_exception(first_error);
  }

  std::vector<PointResult> out;
  out.reserve(points.size());
  for (std::size_t p = 0; p < points.size(); ++p) out.push_back(aggregate_point(p));
  emit(out);
  return out;
}

std::vector<PointResult> SweepRunner::run_checkpointed_(
    const SweepSpec& spec, const std::vector<ResultSink*>& sinks,
    const std::vector<SweepPoint>& points, int runs,
    const std::function<harness::RunMetrics(const harness::ScenarioConfig&)>&
        run_fn) {
  const std::size_t total_trials = points.size() * static_cast<std::size_t>(runs);
  std::filesystem::create_directories(options_.checkpoint_dir);
  SweepLedger ledger{
      (std::filesystem::path(options_.checkpoint_dir) / "sweep.ledger")
          .string(),
      sweep_fingerprint(points, runs)};

  std::vector<std::vector<harness::RunMetrics>> results(points.size());
  for (auto& slot : results) slot.resize(static_cast<std::size_t>(runs));
  std::vector<std::vector<char>> trial_ok(points.size());
  for (auto& slot : trial_ok) slot.assign(static_cast<std::size_t>(runs), 0);

  // Feed recorded trials into their pre-assigned slots; they are skipped
  // below, and aggregation still folds every point's runs in repetition
  // order — so a resumed sweep is bit-identical to an uninterrupted one.
  std::size_t done = 0;
  for (const CompletedTrial& t : ledger.completed()) {
    if (t.point >= points.size()) continue;
    if (t.rep < 0 || t.rep >= runs) continue;
    char& ok = trial_ok[t.point][static_cast<std::size_t>(t.rep)];
    if (ok) continue;
    results[t.point][static_cast<std::size_t>(t.rep)] = t.metrics;
    ok = 1;
    ++done;
  }

  // Re-attach the sinks at the last watermark: path-backed sinks truncate
  // any torn row and append from there; stream sinks (not resumable) just
  // receive the not-yet-emitted points.
  std::uint64_t emitted = ledger.points_emitted();
  {
    const std::vector<std::int64_t>& offs = ledger.sink_offsets();
    for (std::size_t i = 0; i < sinks.size(); ++i) {
      sinks[i]->resume_at(i < offs.size() ? offs[i] : 0);
    }
  }
  for (ResultSink* sink : sinks) sink->begin(spec.axis_names());

  std::vector<PointResult> out(points.size());
  std::vector<char> aggregated(points.size(), 0);
  std::mutex mu;  // orders ledger appends, sink rows, result slots, progress
  std::exception_ptr first_error;

  auto aggregate_point = [&](std::size_t p) {
    Aggregator agg;
    for (auto& m : results[p]) agg.add(std::move(m));
    out[p] = PointResult{points[p], agg.take()};
    aggregated[p] = 1;
  };

  // Incremental in-order emission (caller holds mu): whenever the lowest
  // unemitted point has every repetition done, emit its row to each sink
  // and write a watermark recording the sinks' new offsets.
  auto emit_ready_points = [&] {
    while (emitted < points.size()) {
      const std::size_t p = static_cast<std::size_t>(emitted);
      bool complete = true;
      for (char ok : trial_ok[p]) complete = complete && ok != 0;
      if (!complete) break;
      if (!aggregated[p]) aggregate_point(p);
      for (ResultSink* sink : sinks) sink->on_point(out[p]);
      ++emitted;
      std::vector<std::int64_t> offs;
      offs.reserve(sinks.size());
      for (ResultSink* sink : sinks) offs.push_back(sink->output_offset());
      ledger.record_mark(emitted, offs);
    }
  };

  {
    // A crash can land after a point's last TRIA record but before its
    // MARK; recover that emission before running anything.
    std::lock_guard<std::mutex> lock(mu);
    emit_ready_points();
  }

  auto run_trial = [&](std::size_t p, int rep) {
    try {
      harness::ScenarioConfig config = points[p].config;
      config.seed = config.seed + static_cast<std::uint64_t>(rep);
      harness::RunMetrics m = run_fn(config);
      std::lock_guard<std::mutex> lock(mu);
      ledger.record_trial(p, rep, m);
      results[p][static_cast<std::size_t>(rep)] = std::move(m);
      trial_ok[p][static_cast<std::size_t>(rep)] = 1;
      emit_ready_points();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu);
      if (!first_error) first_error = std::current_exception();
    }
    std::lock_guard<std::mutex> lock(mu);
    ++done;
    if (options_.progress) options_.progress(done, total_trials);
  };

  std::vector<std::pair<std::size_t, int>> pending;
  for (std::size_t p = 0; p < points.size(); ++p) {
    for (int rep = 0; rep < runs; ++rep) {
      if (!trial_ok[p][static_cast<std::size_t>(rep)]) pending.push_back({p, rep});
    }
  }

  int jobs = options_.jobs > 0 ? options_.jobs : default_jobs();
  if (static_cast<std::size_t>(jobs) > pending.size()) {
    jobs = static_cast<int>(pending.size());
  }
  if (jobs <= 1 || pending.size() <= 1) {
    for (const auto& [p, rep] : pending) run_trial(p, rep);
  } else {
    ThreadPool pool(jobs);
    for (const auto& [p, rep] : pending) {
      pool.submit([&run_trial, p = p, rep = rep] { run_trial(p, rep); });
    }
    pool.wait_idle();
  }

  if (first_error) {
    // Completed trials are already in the ledger and complete points
    // already emitted; the next run against this checkpoint_dir resumes.
    std::rethrow_exception(first_error);
  }

  for (ResultSink* sink : sinks) sink->finish();
  // Points emitted by a previous (crashed) run were skipped by the
  // emission loop; aggregate them from their ledger-recorded trials for
  // the return value.
  for (std::size_t p = 0; p < points.size(); ++p) {
    if (!aggregated[p]) aggregate_point(p);
  }
  return out;
}

}  // namespace essat::exp
