#include "src/exp/sweep_runner.h"

#include <exception>
#include <mutex>
#include <utility>

#include "src/exp/thread_pool.h"

namespace essat::exp {

std::vector<PointResult> SweepRunner::run(const SweepSpec& spec,
                                          const std::vector<ResultSink*>& sinks) {
  const std::vector<SweepPoint> points = spec.points();
  const int runs = spec.runs_per_point();
  const std::size_t total_trials = points.size() * static_cast<std::size_t>(runs);

  auto run_fn = options_.run_fn
                    ? options_.run_fn
                    : [](const harness::ScenarioConfig& c) {
                        return harness::run_scenario(c);
                      };

  // Result slots are pre-assigned per (point, repetition) so completion
  // order cannot influence anything downstream.
  std::vector<std::vector<harness::RunMetrics>> results(points.size());
  for (auto& slot : results) slot.resize(static_cast<std::size_t>(runs));
  // Per-trial completion flags: on abort, points whose every repetition
  // finished are still aggregated and flushed to the sinks.
  std::vector<std::vector<char>> trial_ok(points.size());
  for (auto& slot : trial_ok) slot.assign(static_cast<std::size_t>(runs), 0);

  std::size_t done = 0;
  std::mutex done_mu;  // guards `done` AND orders the progress callbacks
  std::exception_ptr first_error;
  std::mutex error_mu;

  auto run_trial = [&](std::size_t p, int rep) {
    try {
      harness::ScenarioConfig config = points[p].config;
      config.seed = config.seed + static_cast<std::uint64_t>(rep);
      results[p][static_cast<std::size_t>(rep)] = run_fn(config);
      trial_ok[p][static_cast<std::size_t>(rep)] = 1;
    } catch (...) {
      std::lock_guard<std::mutex> lock(error_mu);
      if (!first_error) first_error = std::current_exception();
    }
    std::lock_guard<std::mutex> lock(done_mu);
    ++done;
    if (options_.progress) options_.progress(done, total_trials);
  };

  int jobs = options_.jobs > 0 ? options_.jobs : default_jobs();
  if (static_cast<std::size_t>(jobs) > total_trials) {
    jobs = static_cast<int>(total_trials);  // don't spawn idle workers
  }
  if (jobs <= 1 || total_trials <= 1) {
    for (std::size_t p = 0; p < points.size(); ++p) {
      for (int rep = 0; rep < runs; ++rep) run_trial(p, rep);
    }
  } else {
    ThreadPool pool(jobs);
    for (std::size_t p = 0; p < points.size(); ++p) {
      for (int rep = 0; rep < runs; ++rep) {
        pool.submit([&run_trial, p, rep] { run_trial(p, rep); });
      }
    }
    pool.wait_idle();
  }
  auto aggregate_point = [&](std::size_t p) {
    Aggregator agg;
    for (auto& m : results[p]) agg.add(std::move(m));
    return PointResult{points[p], agg.take()};
  };
  auto emit = [&](const std::vector<PointResult>& out) {
    for (ResultSink* sink : sinks) sink->begin(spec.axis_names());
    for (const PointResult& r : out) {
      for (ResultSink* sink : sinks) sink->on_point(r);
    }
    for (ResultSink* sink : sinks) sink->finish();
  };

  if (first_error) {
    // Abort path: don't silently discard finished work. Every point whose
    // repetitions all completed is aggregated and flushed to the sinks
    // before the error propagates.
    std::vector<PointResult> partial;
    for (std::size_t p = 0; p < points.size(); ++p) {
      bool complete = true;
      for (char ok : trial_ok[p]) complete = complete && ok != 0;
      if (complete) partial.push_back(aggregate_point(p));
    }
    if (!partial.empty()) emit(partial);
    std::rethrow_exception(first_error);
  }

  std::vector<PointResult> out;
  out.reserve(points.size());
  for (std::size_t p = 0; p < points.size(); ++p) out.push_back(aggregate_point(p));
  emit(out);
  return out;
}

}  // namespace essat::exp
