#include "src/exp/aggregate.h"

#include <utility>

namespace essat::exp {

void Aggregator::add(harness::RunMetrics m) {
  out_.duty_cycle.add(m.avg_duty_cycle);
  out_.latency_s.add(m.avg_latency_s);
  out_.p95_latency_s.add(m.p95_latency_s);
  out_.delivery_ratio.add(m.delivery_ratio);
  out_.phase_update_bits.add(m.phase_update_bits_per_report);
  out_.mac_send_failures.add(static_cast<double>(m.mac_send_failures));
  out_.channel_dropped.add(static_cast<double>(m.channel_dropped_by_model));
  out_.retx_no_ack.add(static_cast<double>(m.mac_retx_no_ack));
  out_.cca_busy_defers.add(static_cast<double>(m.mac_cca_busy_defers));
  out_.node_deaths.add(static_cast<double>(m.node_deaths));
  out_.downtime_s.add(m.downtime_s);
  out_.delivery_during_fault.add(m.delivery_during_fault);
  if (m.duty_by_rank.size() > out_.duty_by_rank.size()) {
    out_.duty_by_rank.resize(m.duty_by_rank.size());
  }
  for (std::size_t r = 0; r < m.duty_by_rank.size(); ++r) {
    out_.duty_by_rank[r].add(m.duty_by_rank[r]);
  }
  out_.last_run = std::move(m);
  ++runs_;
}

harness::AveragedMetrics aggregate_runs(std::vector<harness::RunMetrics> runs) {
  Aggregator agg;
  for (auto& m : runs) agg.add(std::move(m));
  return agg.take();
}

}  // namespace essat::exp
