// Pluggable result sinks for sweep output.
//
// A sink receives every aggregated grid point, in point (row-major grid)
// order, after the whole sweep has run. Shipping sinks: an ASCII console
// table (one row per point), CSV (full precision, machine-readable), and
// JSON lines (one object per point). ProgressReporter is the live side
// channel: it ticks per completed trial while the sweep is in flight.
#pragma once

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "src/exp/sweep.h"
#include "src/harness/runner.h"
#include "src/harness/table.h"

namespace essat::exp {

// One aggregated grid point.
struct PointResult {
  SweepPoint point;
  harness::AveragedMetrics metrics;
};

class ResultSink {
 public:
  virtual ~ResultSink() = default;
  // Called once before any point, with the sweep's axis names.
  virtual void begin(const std::vector<std::string>& axis_names) { (void)axis_names; }
  // Called once per grid point, in point order.
  virtual void on_point(const PointResult& r) = 0;
  // Called once after the last point.
  virtual void finish() {}

  // --- Resume support (crash-resumable sweeps) ---------------------------
  // A path-backed sink reports its current output size so the sweep
  // checkpoint ledger can record a known-good byte offset after each
  // emitted point; -1 means "not resumable" (stream-backed sinks).
  virtual std::int64_t output_offset() { return -1; }
  // Truncates the output to `offset` (discarding any torn row a crash left
  // behind) and continues appending from there; offset 0 restarts the file.
  // No-op for stream-backed sinks. Called before begin().
  virtual void resume_at(std::int64_t offset) { (void)offset; }
};

// Human-readable summary table: one row per point, axis labels first, then
// the headline metrics with 90% confidence intervals.
class ConsoleTableSink : public ResultSink {
 public:
  explicit ConsoleTableSink(std::ostream& os) : os_(os) {}
  void begin(const std::vector<std::string>& axis_names) override;
  void on_point(const PointResult& r) override;
  void finish() override;

 private:
  std::ostream& os_;
  std::unique_ptr<harness::Table> table_;
};

// Shared machinery of the file-format sinks: either borrows a caller
// stream (legacy constructors, not resumable) or owns a file at a path —
// and a path-backed sink supports resume: truncate to a ledger-recorded
// offset, reopen in append mode, and report byte offsets after each row.
class FileBackedSink : public ResultSink {
 public:
  explicit FileBackedSink(std::ostream& os) : os_(&os) {}
  // Path-backed form. The file is NOT touched here: it opens (truncating)
  // on first write — so a resume_at() call before any output re-attaches
  // to the existing file instead of clobbering the rows it is resuming.
  explicit FileBackedSink(const std::string& path) : path_(path) {}
  ~FileBackedSink() override {
    if (os_) os_->flush();
  }

  std::int64_t output_offset() override;
  void resume_at(std::int64_t offset) override;

 protected:
  std::ostream& out();
  // True when resume_at re-attached mid-file: the header (if the format
  // has one) was already written by the original run.
  bool resumed_mid_file() const { return resumed_mid_file_; }

 private:
  void open_(std::ios::openmode mode);

  std::ostream* os_ = nullptr;            // borrowed, or owned_ once open
  std::string path_;                      // empty: borrowed stream
  std::unique_ptr<std::ofstream> owned_;  // set for path-backed sinks
  bool resumed_mid_file_ = false;
};

// CSV with a header row; numbers at %.17g so doubles round-trip exactly.
// Flushes after every row and on destruction so an aborted sweep leaves
// complete, parseable output behind.
class CsvSink : public FileBackedSink {
 public:
  explicit CsvSink(std::ostream& os) : FileBackedSink(os) {}
  // Path-backed (owning) form: resumable via the sweep checkpoint ledger.
  explicit CsvSink(const std::string& path) : FileBackedSink(path) {}
  void begin(const std::vector<std::string>& axis_names) override;
  void on_point(const PointResult& r) override;

 private:
  std::size_t num_axes_ = 0;
};

// One JSON object per line per point; numbers at %.17g. Flushes after
// every line and on destruction so an aborted sweep leaves complete,
// parseable output behind.
class JsonLinesSink : public FileBackedSink {
 public:
  explicit JsonLinesSink(std::ostream& os) : FileBackedSink(os) {}
  // Path-backed (owning) form: resumable via the sweep checkpoint ledger.
  explicit JsonLinesSink(const std::string& path) : FileBackedSink(path) {}
  void begin(const std::vector<std::string>& axis_names) override;
  void on_point(const PointResult& r) override;

 private:
  std::vector<std::string> axis_names_;
};

// Live trial-completion ticker ("[tag] trials 12/40"), safe to call from
// worker threads. On a terminal it rewrites one line in place (carriage
// returns, final newline); when the stream is redirected (CI logs, files)
// it prints one milestone line per completed 10% instead, so logs are not
// flooded with \r rewrites.
class ProgressReporter {
 public:
  // Auto-detects terminal-ness: only std::cout/std::cerr/std::clog backed
  // by a TTY rewrite in place.
  explicit ProgressReporter(std::ostream& os, std::string tag = "sweep")
      : os_(os), tag_(std::move(tag)), tty_(stream_is_tty(os)) {}
  // Explicit override, for tests and exotic streams.
  ProgressReporter(std::ostream& os, std::string tag, bool tty)
      : os_(os), tag_(std::move(tag)), tty_(tty) {}
  void on_trial_done(std::size_t done, std::size_t total);

 private:
  static bool stream_is_tty(const std::ostream& os);

  std::mutex mu_;
  std::ostream& os_;
  std::string tag_;
  bool tty_;
  std::size_t last_decile_ = 0;  // milestones printed so far (non-TTY mode)
};

}  // namespace essat::exp
