#include "src/exp/sinks.h"

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <iostream>
#include <stdexcept>

namespace essat::exp {
namespace {

// The metric columns every sink emits, in order.
const char* const kMetricColumns[] = {
    "runs",          "duty_mean",     "duty_ci90",     "latency_mean",
    "latency_ci90",  "p95_latency",   "delivery_mean", "phase_bits_mean",
    "send_failures", "model_drops",   "retx_no_ack",   "cca_busy_defers",
    "node_deaths",   "downtime_s",    "delivery_during_fault",
};

std::vector<double> metric_values(const PointResult& r) {
  const harness::AveragedMetrics& m = r.metrics;
  return {static_cast<double>(m.duty_cycle.count()),
          m.duty_cycle.mean(),
          m.duty_ci90(),
          m.latency_s.mean(),
          m.latency_ci90(),
          m.p95_latency_s.mean(),
          m.delivery_ratio.mean(),
          m.phase_update_bits.mean(),
          m.mac_send_failures.mean(),
          m.channel_dropped.mean(),
          m.retx_no_ack.mean(),
          m.cca_busy_defers.mean(),
          m.node_deaths.mean(),
          m.downtime_s.mean(),
          m.delivery_during_fault.mean()};
}

std::string full_precision(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        // RFC 8259: all other control characters must be \u-escaped.
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

// ------------------------------------------------------------ console

void ConsoleTableSink::begin(const std::vector<std::string>& axis_names) {
  std::vector<std::string> headers = axis_names;
  headers.insert(headers.end(), {"duty (%)", "±ci90", "latency (s)", "±ci90",
                                 "delivery (%)", "runs"});
  table_ = std::make_unique<harness::Table>(std::move(headers));
}

void ConsoleTableSink::on_point(const PointResult& r) {
  const harness::AveragedMetrics& m = r.metrics;
  std::vector<std::string> row = r.point.labels;
  row.push_back(harness::fmt_pct(m.duty_cycle.mean()));
  row.push_back(harness::fmt_pct(m.duty_ci90()));
  row.push_back(harness::fmt(m.latency_s.mean(), 3));
  row.push_back(harness::fmt(m.latency_ci90(), 3));
  row.push_back(harness::fmt_pct(m.delivery_ratio.mean()));
  row.push_back(std::to_string(m.duty_cycle.count()));
  table_->add_row(std::move(row));
}

void ConsoleTableSink::finish() {
  if (table_) table_->print(os_);
}

// ------------------------------------------------------------ file-backed

void FileBackedSink::open_(std::ios::openmode mode) {
  owned_ = std::make_unique<std::ofstream>(path_, mode);
  if (!*owned_) {
    throw std::runtime_error{"FileBackedSink: cannot open " + path_};
  }
  os_ = owned_.get();
}

std::ostream& FileBackedSink::out() {
  // Path-backed sinks open lazily: a plain run truncates here on first
  // write, while a resumed run has already re-attached via resume_at().
  if (!os_) open_(std::ios::out | std::ios::trunc);
  return *os_;
}

std::int64_t FileBackedSink::output_offset() {
  if (path_.empty()) return -1;  // borrowed stream: not resumable
  out().flush();
  return static_cast<std::int64_t>(owned_->tellp());
}

void FileBackedSink::resume_at(std::int64_t offset) {
  if (path_.empty() || offset < 0) return;
  if (owned_) {
    owned_->close();
    owned_.reset();
    os_ = nullptr;
  }
  if (offset == 0) {
    // Nothing checkpointed yet (or a fresh directory): start the file over.
    open_(std::ios::out | std::ios::trunc);
  } else {
    // Drop anything a crash appended after the last checkpointed row, then
    // continue in append mode; a row is therefore never duplicated or torn.
    std::filesystem::resize_file(path_, static_cast<std::uintmax_t>(offset));
    open_(std::ios::out | std::ios::app);
  }
  resumed_mid_file_ = offset > 0;
}

// ------------------------------------------------------------ csv

void CsvSink::begin(const std::vector<std::string>& axis_names) {
  num_axes_ = axis_names.size();
  if (resumed_mid_file()) return;  // the original run already wrote the header
  out() << "point";
  for (const auto& name : axis_names) out() << ',' << csv_escape(name);
  for (const char* col : kMetricColumns) out() << ',' << col;
  out() << '\n';
  out().flush();
}

void CsvSink::on_point(const PointResult& r) {
  out() << r.point.index;
  for (const auto& label : r.point.labels) out() << ',' << csv_escape(label);
  for (double v : metric_values(r)) out() << ',' << full_precision(v);
  out() << '\n';
  out().flush();
}

// ------------------------------------------------------------ json lines

void JsonLinesSink::begin(const std::vector<std::string>& axis_names) {
  axis_names_ = axis_names;
}

void JsonLinesSink::on_point(const PointResult& r) {
  out() << "{\"point\":" << r.point.index << ",\"labels\":{";
  for (std::size_t i = 0; i < r.point.labels.size(); ++i) {
    if (i) out() << ',';
    const std::string& name =
        i < axis_names_.size() ? axis_names_[i] : "axis" + std::to_string(i);
    out() << '"' << json_escape(name) << "\":\""
          << json_escape(r.point.labels[i]) << '"';
  }
  out() << '}';
  const auto values = metric_values(r);
  for (std::size_t i = 0; i < values.size(); ++i) {
    out() << ",\"" << kMetricColumns[i] << "\":" << full_precision(values[i]);
  }
  out() << "}\n";
  out().flush();
}

// ------------------------------------------------------------ progress

bool ProgressReporter::stream_is_tty(const std::ostream& os) {
  if (&os == &std::cout) return isatty(STDOUT_FILENO) != 0;
  if (&os == &std::cerr || &os == &std::clog) return isatty(STDERR_FILENO) != 0;
  return false;  // string streams, files: never a terminal
}

void ProgressReporter::on_trial_done(std::size_t done, std::size_t total) {
  std::lock_guard<std::mutex> lock(mu_);
  if (tty_) {
    os_ << '\r' << '[' << tag_ << "] trials " << done << '/' << total;
    if (done >= total) os_ << '\n';
    os_.flush();
    return;
  }
  // Redirected output (CI logs, files): no in-place rewrites — print one
  // milestone line per completed decile instead.
  const std::size_t decile = total > 0 ? done * 10 / total : 10;
  if (decile <= last_decile_ && done < total) return;
  if (done >= total && last_decile_ >= 10) return;  // completion already shown
  last_decile_ = done >= total ? 10 : decile;
  os_ << '[' << tag_ << "] trials " << done << '/' << total << " ("
      << last_decile_ * 10 << "%)\n";
  os_.flush();
}

}  // namespace essat::exp
