#include "src/exp/sweep.h"

namespace essat::exp {
namespace {

// Disambiguates a label against the options already collected ("kind",
// "kind#2", "kind#3", ...) so sink rows stay uniquely keyed.
std::string dedup_label(
    const std::vector<std::pair<std::string, SweepSpec::Apply>>& options,
    std::string label) {
  int dup = 1;
  for (const auto& [existing, _] : options) {
    if (existing == label || existing.rfind(label + "#", 0) == 0) ++dup;
  }
  if (dup > 1) label += "#" + std::to_string(dup);
  return label;
}

// Shared bodies of the spec axes (channel / mobility / routing): each option
// copies one whole sub-spec into its ScenarioConfig member, labelled by the
// spec's own label() (deduped) or an explicit caller label.
template <typename Spec>
std::vector<std::pair<std::string, SweepSpec::Apply>> spec_options(
    const std::vector<Spec>& specs, Spec harness::ScenarioConfig::*member) {
  std::vector<std::pair<std::string, SweepSpec::Apply>> options;
  options.reserve(specs.size());
  for (const Spec& s : specs) {
    options.emplace_back(dedup_label(options, s.label()),
                         [member, s](harness::ScenarioConfig& c) {
                           c.*member = s;
                         });
  }
  return options;
}

template <typename Spec>
std::vector<std::pair<std::string, SweepSpec::Apply>> spec_options(
    const std::vector<std::pair<std::string, Spec>>& specs,
    Spec harness::ScenarioConfig::*member) {
  std::vector<std::pair<std::string, SweepSpec::Apply>> options;
  options.reserve(specs.size());
  for (const auto& [label, s] : specs) {
    options.emplace_back(label, [member, s = s](harness::ScenarioConfig& c) {
      c.*member = s;
    });
  }
  return options;
}

}  // namespace

SweepSpec& SweepSpec::axis(std::string name,
                           std::vector<std::pair<std::string, Apply>> options) {
  axis_names_.push_back(std::move(name));
  axes_.push_back(Axis{std::move(options)});
  return *this;
}

SweepSpec& SweepSpec::axis_protocol(
    const std::vector<harness::ProtocolKey>& protocols) {
  std::vector<std::pair<std::string, Apply>> options;
  options.reserve(protocols.size());
  for (const harness::ProtocolKey& p : protocols) {
    options.emplace_back(axis_label(p), [p](harness::ScenarioConfig& c) {
      c.protocol = p;
    });
  }
  return axis("protocol", std::move(options));
}

SweepSpec& SweepSpec::axis_topology(const std::vector<net::TopologyKind>& kinds) {
  std::vector<std::pair<std::string, Apply>> options;
  options.reserve(kinds.size());
  for (net::TopologyKind k : kinds) {
    options.emplace_back(axis_label(k), [k](harness::ScenarioConfig& c) {
      c.deployment.kind = k;
    });
  }
  return axis("topology", std::move(options));
}

SweepSpec& SweepSpec::axis_topology(
    const std::vector<net::DeploymentSpec>& deployments) {
  std::vector<std::pair<std::string, Apply>> options;
  options.reserve(deployments.size());
  for (const net::DeploymentSpec& d : deployments) {
    options.emplace_back(dedup_label(options, axis_label(d.kind)),
                         [d](harness::ScenarioConfig& c) { c.deployment = d; });
  }
  return axis("topology", std::move(options));
}

SweepSpec& SweepSpec::axis_topology(
    const std::vector<std::pair<std::string, net::DeploymentSpec>>& deployments) {
  std::vector<std::pair<std::string, Apply>> options;
  options.reserve(deployments.size());
  for (const auto& [label, d] : deployments) {
    options.emplace_back(label, [d = d](harness::ScenarioConfig& c) {
      c.deployment = d;
    });
  }
  return axis("topology", std::move(options));
}

SweepSpec& SweepSpec::axis_channel(
    const std::vector<net::ChannelModelSpec>& models) {
  return axis("channel",
              spec_options(models, &harness::ScenarioConfig::channel_model));
}

SweepSpec& SweepSpec::axis_channel(
    const std::vector<std::pair<std::string, net::ChannelModelSpec>>& models) {
  return axis("channel",
              spec_options(models, &harness::ScenarioConfig::channel_model));
}

SweepSpec& SweepSpec::axis_mobility(const std::vector<net::MobilitySpec>& specs) {
  return axis("mobility", spec_options(specs, &harness::ScenarioConfig::mobility));
}

SweepSpec& SweepSpec::axis_mobility(
    const std::vector<std::pair<std::string, net::MobilitySpec>>& specs) {
  return axis("mobility", spec_options(specs, &harness::ScenarioConfig::mobility));
}

SweepSpec& SweepSpec::axis_routing(const std::vector<routing::RoutingSpec>& specs) {
  return axis("routing", spec_options(specs, &harness::ScenarioConfig::routing));
}

SweepSpec& SweepSpec::axis_routing(
    const std::vector<std::pair<std::string, routing::RoutingSpec>>& specs) {
  return axis("routing", spec_options(specs, &harness::ScenarioConfig::routing));
}

SweepSpec& SweepSpec::axis_faults(const std::vector<fault::FaultSpec>& specs) {
  return axis("faults", spec_options(specs, &harness::ScenarioConfig::faults));
}

SweepSpec& SweepSpec::axis_faults(
    const std::vector<std::pair<std::string, fault::FaultSpec>>& specs) {
  return axis("faults", spec_options(specs, &harness::ScenarioConfig::faults));
}

SweepSpec& SweepSpec::axis_sinr(const std::vector<net::SinrParams>& specs) {
  std::vector<std::pair<std::string, Apply>> options;
  options.reserve(specs.size());
  for (const net::SinrParams& s : specs) {
    options.emplace_back(dedup_label(options, s.label()),
                         [s](harness::ScenarioConfig& c) {
                           c.channel_params.sinr = s;
                         });
  }
  return axis("sinr", std::move(options));
}

SweepSpec& SweepSpec::axis_sinr(
    const std::vector<std::pair<std::string, net::SinrParams>>& specs) {
  std::vector<std::pair<std::string, Apply>> options;
  options.reserve(specs.size());
  for (const auto& [label, s] : specs) {
    options.emplace_back(label, [s = s](harness::ScenarioConfig& c) {
      c.channel_params.sinr = s;
    });
  }
  return axis("sinr", std::move(options));
}

SweepSpec& SweepSpec::axis_rate(const std::vector<double>& rates_hz) {
  return axis("rate (Hz)", &harness::ScenarioConfig::workload,
              &harness::WorkloadSpec::base_rate_hz, rates_hz);
}

SweepSpec& SweepSpec::axis_queries(const std::vector<int>& queries_per_class) {
  return axis("queries/class", &harness::ScenarioConfig::workload,
              &harness::WorkloadSpec::queries_per_class, queries_per_class);
}

SweepSpec& SweepSpec::axis_nodes(const std::vector<int>& num_nodes) {
  return axis("nodes", &harness::ScenarioConfig::deployment,
              &net::DeploymentSpec::num_nodes, num_nodes);
}

std::size_t SweepSpec::num_points() const {
  std::size_t n = 1;
  for (const Axis& a : axes_) n *= a.options.size();
  return n;
}

std::vector<SweepPoint> SweepSpec::points() const {
  std::vector<SweepPoint> out;
  const std::size_t total = num_points();
  out.reserve(total);
  // Row-major expansion: odometer over the per-axis option indices, first
  // axis slowest. An empty axis list yields the single base point.
  std::vector<std::size_t> idx(axes_.size(), 0);
  for (std::size_t flat = 0; flat < total; ++flat) {
    SweepPoint p;
    p.index = flat;
    p.config = base_;
    p.labels.reserve(axes_.size());
    for (std::size_t a = 0; a < axes_.size(); ++a) {
      const auto& option = axes_[a].options[idx[a]];
      p.labels.push_back(option.first);
      option.second(p.config);
    }
    out.push_back(std::move(p));
    for (std::size_t a = axes_.size(); a-- > 0;) {
      if (++idx[a] < axes_[a].options.size()) break;
      idx[a] = 0;
    }
  }
  return out;
}

}  // namespace essat::exp
