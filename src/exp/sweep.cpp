#include "src/exp/sweep.h"

namespace essat::exp {

SweepSpec& SweepSpec::axis(std::string name,
                           std::vector<std::pair<std::string, Apply>> options) {
  axis_names_.push_back(std::move(name));
  axes_.push_back(Axis{std::move(options)});
  return *this;
}

SweepSpec& SweepSpec::axis_protocol(
    const std::vector<harness::Protocol>& protocols) {
  std::vector<std::pair<std::string, Apply>> options;
  options.reserve(protocols.size());
  for (harness::Protocol p : protocols) {
    options.emplace_back(axis_label(p), [p](harness::ScenarioConfig& c) {
      c.protocol = p;
    });
  }
  return axis("protocol", std::move(options));
}

std::size_t SweepSpec::num_points() const {
  std::size_t n = 1;
  for (const Axis& a : axes_) n *= a.options.size();
  return n;
}

std::vector<SweepPoint> SweepSpec::points() const {
  std::vector<SweepPoint> out;
  const std::size_t total = num_points();
  out.reserve(total);
  // Row-major expansion: odometer over the per-axis option indices, first
  // axis slowest. An empty axis list yields the single base point.
  std::vector<std::size_t> idx(axes_.size(), 0);
  for (std::size_t flat = 0; flat < total; ++flat) {
    SweepPoint p;
    p.index = flat;
    p.config = base_;
    p.labels.reserve(axes_.size());
    for (std::size_t a = 0; a < axes_.size(); ++a) {
      const auto& option = axes_[a].options[idx[a]];
      p.labels.push_back(option.first);
      option.second(p.config);
    }
    out.push_back(std::move(p));
    for (std::size_t a = axes_.size(); a-- > 0;) {
      if (++idx[a] < axes_[a].options.size()) break;
      idx[a] = 0;
    }
  }
  return out;
}

}  // namespace essat::exp
