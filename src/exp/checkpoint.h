// Sweep checkpoint ledger: the on-disk record that makes a sweep
// crash-resumable.
//
// The ledger is one append-only file of CRC-framed kLedger snapshots
// (src/snap), three record types distinguished by the payload's section
// tag:
//   "SPEC" — first record: a fingerprint of the sweep grid (every point's
//            config-codec bytes plus the repetition count). A resume
//            against a ledger whose fingerprint differs throws — resuming
//            a different sweep into the same directory would silently
//            interleave unrelated results.
//   "TRIA" — one completed trial: point index, repetition, and the full
//            RunMetrics encoding. On resume these trials are skipped and
//            their stored metrics fed into the aggregator in repetition
//            order, so a resumed sweep's output is bit-identical to an
//            uninterrupted one's.
//   "MARK" — emission watermark: how many grid points have been fed to the
//            sinks, and each sink's byte offset after its row. On resume,
//            path-backed sinks truncate to their recorded offset — a row a
//            crash tore mid-write is dropped and rewritten, never
//            duplicated.
// A crash can tear the ledger's own tail too; the parser keeps every frame
// up to the first undecodable one and truncates the rest.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "src/exp/sweep.h"
#include "src/harness/metrics.h"

namespace essat::snap {
struct Snapshot;
}  // namespace essat::snap

namespace essat::exp {

// Identity of a sweep grid: CRC-32 over the point count, repetition count,
// and every point's scenario-config encoding.
std::uint32_t sweep_fingerprint(const std::vector<SweepPoint>& points,
                                int runs_per_point);

struct CompletedTrial {
  std::uint64_t point = 0;
  std::int32_t rep = 0;
  harness::RunMetrics metrics;
};

class SweepLedger {
 public:
  // Opens (creating if absent) the ledger at `path` for the sweep
  // identified by `fingerprint`. Parses existing records, truncating a
  // torn tail in place; throws std::runtime_error if the file records a
  // different sweep.
  SweepLedger(std::string path, std::uint32_t fingerprint);

  // State recovered from the existing file (empty/zero on a fresh ledger).
  const std::vector<CompletedTrial>& completed() const { return completed_; }
  std::uint64_t points_emitted() const { return points_emitted_; }
  const std::vector<std::int64_t>& sink_offsets() const { return sink_offsets_; }

  // Appends a record and flushes. Not thread-safe; callers serialize.
  void record_trial(std::uint64_t point, std::int32_t rep,
                    const harness::RunMetrics& metrics);
  void record_mark(std::uint64_t points_emitted,
                   const std::vector<std::int64_t>& sink_offsets);

 private:
  void append_(const snap::Snapshot& snapshot);

  std::string path_;
  std::ofstream out_;
  std::vector<CompletedTrial> completed_;
  std::uint64_t points_emitted_ = 0;
  std::vector<std::int64_t> sink_offsets_;
};

}  // namespace essat::exp
