#include "src/exp/fork_sweep.h"

#include <stdexcept>
#include <string>
#include <utility>

#include "src/exp/thread_pool.h"
#include "src/snap/hook.h"
#include "src/snap/metrics_codec.h"
#include "src/snap/snapshot.h"
#include "src/snap/trial.h"

#if defined(__unix__) || defined(__APPLE__)
#define ESSAT_FORK_SWEEP 1
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#endif

namespace essat::exp {
namespace {

void check_variants(const harness::ScenarioConfig& base,
                    const std::vector<harness::WorkloadSpec>& workloads) {
  for (const harness::WorkloadSpec& w : workloads) {
    if (w.query_start_window != base.workload.query_start_window) {
      throw std::invalid_argument{
          "run_fork_sweep: variant query_start_window differs from the "
          "base's; the measurement schedule is fixed before the fork "
          "barrier, so this field cannot vary across variants"};
    }
  }
}

}  // namespace

#if defined(ESSAT_FORK_SWEEP)

bool fork_sweep_available() { return true; }

namespace {

void write_all(int fd, const std::uint8_t* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      // The parent died or closed the pipe; nothing useful left to do.
      ::_exit(3);
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
}

std::vector<std::uint8_t> read_until_eof(int fd) {
  std::vector<std::uint8_t> buf;
  std::uint8_t chunk[4096];
  for (;;) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error{std::string{"run_fork_sweep: pipe read: "} +
                               std::strerror(errno)};
    }
    if (n == 0) return buf;
    buf.insert(buf.end(), chunk, chunk + n);
  }
}

struct PendingChild {
  pid_t pid = -1;
  int read_fd = -1;
  std::size_t variant = 0;
};

}  // namespace

std::vector<harness::RunMetrics> run_fork_sweep(
    const harness::ScenarioConfig& base,
    const std::vector<harness::WorkloadSpec>& workloads, int max_parallel) {
  check_variants(base, workloads);
  if (workloads.empty()) return {};
  const std::size_t batch =
      static_cast<std::size_t>(max_parallel > 0 ? max_parallel : default_jobs());

  std::vector<harness::RunMetrics> results(workloads.size());
  // Set in a child between the hook and run_scenario returning; the child
  // then ships its metrics and never reaches the parent-only code below.
  int child_write_fd = -1;

  snap::TrialHookSpec spec;
  spec.enabled = true;
  spec.at = snap::capture_barrier(base);
  spec.hook = [&](snap::TrialCheckpoint& cp) {
    std::vector<PendingChild> pending;
    auto drain = [&] {
      for (const PendingChild& c : pending) {
        // The child writes only after its run completes, so this read is
        // also the wait for the slowest child in the batch.
        const std::vector<std::uint8_t> wire = read_until_eof(c.read_fd);
        ::close(c.read_fd);
        int status = 0;
        while (::waitpid(c.pid, &status, 0) < 0 && errno == EINTR) {
        }
        if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
          throw std::runtime_error{
              "run_fork_sweep: child for variant " +
              std::to_string(c.variant) + " exited abnormally"};
        }
        const snap::Snapshot snap =
            snap::Snapshot::from_bytes(wire.data(), wire.size());
        results[c.variant] = snap::run_metrics_from_bytes(snap.payload);
      }
      pending.clear();
    };

    for (std::size_t i = 0; i < workloads.size(); ++i) {
      if (pending.size() >= batch) drain();
      int fds[2];
      if (::pipe(fds) != 0) {
        throw std::runtime_error{std::string{"run_fork_sweep: pipe: "} +
                                 std::strerror(errno)};
      }
      const pid_t pid = ::fork();
      if (pid < 0) {
        ::close(fds[0]);
        ::close(fds[1]);
        throw std::runtime_error{std::string{"run_fork_sweep: fork: "} +
                                 std::strerror(errno)};
      }
      if (pid == 0) {
        // Child: adopt variant i's workload (the window is pinned — see
        // check_variants) and let the run continue from the shared prefix.
        ::close(fds[0]);
        child_write_fd = fds[1];
        harness::WorkloadSpec w = workloads[i];
        w.query_start_window = cp.config.workload.query_start_window;
        cp.config.workload = std::move(w);
        return;
      }
      ::close(fds[1]);
      pending.push_back(PendingChild{pid, fds[0], i});
    }
    drain();
    cp.stop = true;  // parent: all variants delegated, abandon this run
  };

  const harness::RunMetrics own = harness::run_scenario(base, spec);
  if (child_write_fd >= 0) {
    // Child: `own` is the completed variant run. Frame it (CRC included)
    // and exit without running atexit handlers or static destructors — the
    // process shares them with the parent.
    snap::Snapshot snap;
    snap.kind = snap::SnapshotKind::kMetrics;
    snap.payload = snap::run_metrics_to_bytes(own);
    const std::vector<std::uint8_t> wire = snap.to_bytes();
    write_all(child_write_fd, wire.data(), wire.size());
    ::close(child_write_fd);
    ::_exit(0);
  }
  return results;
}

#else  // !ESSAT_FORK_SWEEP

bool fork_sweep_available() { return false; }

// Identical results without fork(2): every variant re-simulates the prefix.
std::vector<harness::RunMetrics> run_fork_sweep(
    const harness::ScenarioConfig& base,
    const std::vector<harness::WorkloadSpec>& workloads, int /*max_parallel*/) {
  check_variants(base, workloads);
  std::vector<harness::RunMetrics> results;
  results.reserve(workloads.size());
  for (const harness::WorkloadSpec& w : workloads) {
    harness::ScenarioConfig config = base;
    config.workload = w;
    results.push_back(harness::run_scenario(config));
  }
  return results;
}

#endif

}  // namespace essat::exp
