// Fork-based sweep acceleration over a shared scenario prefix.
//
// Sweep variants that differ only in workload (report rate, queries per
// class, extra queries) share everything that happens before the setup
// slot ends: placement, neighbor-list construction, tree building, setup
// traffic, per-node stack allocation. run_fork_sweep simulates that prefix
// ONCE, pauses at the snapshot barrier (snap::capture_barrier), and
// fork(2)s one child per variant; each child applies its workload to the
// not-yet-materialized config fields and runs the remainder, shipping its
// RunMetrics back over a pipe as a CRC-framed kMetrics snapshot.
//
// Equivalence is exact, not approximate: the workload is drawn lazily at
// the setup boundary from a private RNG stream, so a forked child is
// bit-identical to a from-scratch run of the same variant (the fork-sweep
// test diffs the RunMetrics encodings byte for byte). query_start_window
// is baked into the measurement schedule before the barrier and must be
// identical across variants; run_fork_sweep throws std::invalid_argument
// otherwise.
//
// On non-POSIX builds the same API falls back to sequential from-scratch
// runs — identical results, none of the speedup.
#pragma once

#include <vector>

#include "src/harness/metrics.h"
#include "src/harness/scenario.h"

namespace essat::exp {

// True when fork(2) acceleration is compiled in (POSIX).
bool fork_sweep_available();

// Runs one variant of `base` per entry in `workloads`, returning metrics in
// variant order. At most `max_parallel` children run concurrently
// (0 = default_jobs(): ESSAT_JOBS or all cores). Each variant's
// query_start_window must equal the base's.
std::vector<harness::RunMetrics> run_fork_sweep(
    const harness::ScenarioConfig& base,
    const std::vector<harness::WorkloadSpec>& workloads, int max_parallel = 0);

}  // namespace essat::exp
