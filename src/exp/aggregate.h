// Folds per-run RunMetrics into per-point AveragedMetrics.
//
// Runs MUST be folded in ascending repetition order: RunningStat's Welford
// update is order-sensitive at the bit level, and the engine's determinism
// guarantee (parallel output identical to serial) rests on aggregation
// happening in a fixed order after all trials of a point have completed.
#pragma once

#include <vector>

#include "src/harness/metrics.h"
#include "src/harness/runner.h"

namespace essat::exp {

class Aggregator {
 public:
  // Folds one run; call in repetition order (seed base, base+1, ...).
  void add(harness::RunMetrics m);

  std::size_t runs() const { return runs_; }
  // The aggregate so far. `last_run` holds the most recently added run's
  // histograms and per-node diagnostics, matching harness::run_repeated.
  const harness::AveragedMetrics& result() const { return out_; }
  harness::AveragedMetrics take() { return std::move(out_); }

 private:
  harness::AveragedMetrics out_;
  std::size_t runs_ = 0;
};

// Convenience: fold a whole vector (index order == repetition order).
harness::AveragedMetrics aggregate_runs(std::vector<harness::RunMetrics> runs);

}  // namespace essat::exp
