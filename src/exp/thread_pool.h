// Fixed-size worker pool for fanning experiment trials across cores.
//
// Deliberately minimal: tasks are opaque closures, there is no work
// stealing or prioritisation, and results flow through whatever storage
// the closures capture. Determinism is the caller's job — the sweep
// runner pre-assigns every trial its own seed and result slot, so
// completion order never affects output.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace essat::exp {

// Number of worker threads to use by default: the ESSAT_JOBS environment
// variable if set to a positive integer, otherwise the hardware
// concurrency (at least 1).
int default_jobs();

class ThreadPool {
 public:
  // Spawns `threads` workers (clamped to >= 1).
  explicit ThreadPool(int threads);
  // Blocks until all submitted tasks have finished, then joins.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void submit(std::function<void()> task);
  // Blocks until the queue is empty and no task is executing.
  void wait_idle();

  int thread_count() const { return static_cast<int>(workers_.size()); }

 private:
  void worker_loop_();

  std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait for tasks / shutdown
  std::condition_variable idle_cv_;   // wait_idle waits for quiescence
  std::deque<std::function<void()>> queue_;
  std::size_t active_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace essat::exp
