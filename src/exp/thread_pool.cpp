#include "src/exp/thread_pool.h"

#include <cstdlib>

namespace essat::exp {

int default_jobs() {
  if (const char* env = std::getenv("ESSAT_JOBS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

ThreadPool::ThreadPool(int threads) {
  if (threads < 1) threads = 1;
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop_(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop_() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace essat::exp
