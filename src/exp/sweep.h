// Parameter-grid builder for experiment sweeps.
//
// A SweepSpec is a base ScenarioConfig plus any number of axes; each axis
// varies one aspect of the config across a list of labelled options. The
// cross product of all axes yields the sweep's points (row-major: the
// first axis declared is the outermost loop, matching the nested-loop
// order of the seed's hand-written bench drivers). Every point is run
// `runs_per_point` times with seeds base_seed, base_seed+1, ... — the
// paper's "five runs per data point" (§5).
#pragma once

#include <cstdio>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "src/harness/scenario.h"

namespace essat::exp {

// One cell of the expanded grid.
struct SweepPoint {
  std::size_t index = 0;               // position in row-major grid order
  std::vector<std::string> labels;     // one per axis, in axis order
  harness::ScenarioConfig config;      // base config with all axes applied
};

class SweepSpec {
 public:
  using Apply = std::function<void(harness::ScenarioConfig&)>;

  explicit SweepSpec(harness::ScenarioConfig base) : base_(std::move(base)) {}

  // Repetitions per grid point (>= 1).
  SweepSpec& runs(int n) {
    runs_ = n < 1 ? 1 : n;
    return *this;
  }
  int runs_per_point() const { return runs_; }

  // Generic axis: each option is a label plus a mutation of the config.
  SweepSpec& axis(std::string name,
                  std::vector<std::pair<std::string, Apply>> options);

  // Vary one config field across values (labels auto-formatted).
  template <typename T>
  SweepSpec& axis(std::string name, T harness::ScenarioConfig::*field,
                  const std::vector<T>& values) {
    std::vector<std::pair<std::string, Apply>> options;
    options.reserve(values.size());
    for (const T& v : values) {
      options.emplace_back(axis_label(v), [field, v](harness::ScenarioConfig& c) {
        c.*field = v;
      });
    }
    return axis(std::move(name), std::move(options));
  }

  // Vary one nested-spec field (deployment / workload sub-structs).
  template <typename S, typename T>
  SweepSpec& axis(std::string name, S harness::ScenarioConfig::*spec,
                  T S::*field, const std::vector<T>& values) {
    std::vector<std::pair<std::string, Apply>> options;
    options.reserve(values.size());
    for (const T& v : values) {
      options.emplace_back(axis_label(v),
                           [spec, field, v](harness::ScenarioConfig& c) {
                             c.*spec.*field = v;
                           });
    }
    return axis(std::move(name), std::move(options));
  }

  // Vary the power-management policy (labels are the registry keys; the
  // Protocol enum converts implicitly for the built-ins).
  SweepSpec& axis_protocol(const std::vector<harness::ProtocolKey>& protocols);

  // Vary the deployment shape, keeping the base spec's size/range knobs
  // (labels from topology_kind_name)...
  SweepSpec& axis_topology(const std::vector<net::TopologyKind>& kinds);
  // ...or sweep fully custom deployments, labelled by kind name (repeats
  // disambiguated as "kind#2", "kind#3", ...)...
  SweepSpec& axis_topology(const std::vector<net::DeploymentSpec>& deployments);
  // ...or with explicit labels.
  SweepSpec& axis_topology(
      const std::vector<std::pair<std::string, net::DeploymentSpec>>& deployments);

  // Vary the channel's link-loss model (labels from ChannelModelSpec::label,
  // repeats disambiguated as "kind#2", ...)...
  SweepSpec& axis_channel(const std::vector<net::ChannelModelSpec>& models);
  // ...or with explicit labels.
  SweepSpec& axis_channel(
      const std::vector<std::pair<std::string, net::ChannelModelSpec>>& models);

  // Vary the mobility model (labels from MobilitySpec::label, repeats
  // disambiguated as "kind#2", ...)...
  SweepSpec& axis_mobility(const std::vector<net::MobilitySpec>& specs);
  // ...or with explicit labels.
  SweepSpec& axis_mobility(
      const std::vector<std::pair<std::string, net::MobilitySpec>>& specs);

  // Vary the parent-selection policy (labels are the policy keys)...
  SweepSpec& axis_routing(const std::vector<routing::RoutingSpec>& specs);
  // ...or with explicit labels.
  SweepSpec& axis_routing(
      const std::vector<std::pair<std::string, routing::RoutingSpec>>& specs);

  // Vary the fault-injection spec (labels from FaultSpec::label, repeats
  // disambiguated as "kind#2", ...)...
  SweepSpec& axis_faults(const std::vector<fault::FaultSpec>& specs);
  // ...or with explicit labels.
  SweepSpec& axis_faults(
      const std::vector<std::pair<std::string, fault::FaultSpec>>& specs);

  // Vary the channel's SINR capture model (labels from SinrParams::label,
  // deduped). This is a nested ChannelParams field, so the axis rewrites
  // only channel_params.sinr and leaves the medium mechanics alone.
  SweepSpec& axis_sinr(const std::vector<net::SinrParams>& specs);
  // ...or with explicit labels.
  SweepSpec& axis_sinr(
      const std::vector<std::pair<std::string, net::SinrParams>>& specs);

  // Common workload/deployment axes, pre-labelled.
  SweepSpec& axis_rate(const std::vector<double>& rates_hz);
  SweepSpec& axis_queries(const std::vector<int>& queries_per_class);
  SweepSpec& axis_nodes(const std::vector<int>& num_nodes);

  const harness::ScenarioConfig& base() const { return base_; }
  std::size_t num_axes() const { return axes_.size(); }
  const std::vector<std::string>& axis_names() const { return axis_names_; }
  // Total grid size: the product of axis option counts (1 with no axes).
  std::size_t num_points() const;

  // Expands the grid, row-major over the axes in declaration order.
  std::vector<SweepPoint> points() const;

 private:
  struct Axis {
    std::vector<std::pair<std::string, Apply>> options;
  };

  static std::string axis_label(double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%g", v);
    return buf;
  }
  static std::string axis_label(int v) { return std::to_string(v); }
  static std::string axis_label(std::int64_t v) { return std::to_string(v); }
  static std::string axis_label(std::uint64_t v) { return std::to_string(v); }
  static std::string axis_label(bool v) { return v ? "true" : "false"; }
  static std::string axis_label(util::Time v) { return v.to_string(); }
  static std::string axis_label(harness::Protocol p) {
    return harness::protocol_name(p);
  }
  static std::string axis_label(const harness::ProtocolKey& p) { return p.name; }
  static std::string axis_label(net::TopologyKind k) {
    return net::topology_kind_name(k);
  }

  harness::ScenarioConfig base_;
  int runs_ = 5;
  std::vector<Axis> axes_;
  std::vector<std::string> axis_names_;
};

}  // namespace essat::exp
