#include "src/query/workload.h"

#include <stdexcept>

namespace essat::query {

util::Time class_period(const WorkloadParams& params, int cls) {
  if (cls < 0 || cls > 2) throw std::invalid_argument{"class_period: cls out of range"};
  if (params.base_rate_hz <= 0.0) {
    throw std::invalid_argument{"class_period: base rate must be positive"};
  }
  const double rate = params.base_rate_hz *
                      static_cast<double>(params.rate_ratio[static_cast<std::size_t>(cls)]) /
                      static_cast<double>(params.rate_ratio[0]);
  return util::Time::from_seconds(1.0 / rate);
}

std::vector<Query> make_workload(const WorkloadParams& params, util::Rng& rng) {
  std::vector<Query> out;
  out.reserve(static_cast<std::size_t>(params.queries_per_class) * 3);
  net::QueryId next_id = 0;
  for (int cls = 0; cls < 3; ++cls) {
    const util::Time period = class_period(params, cls);
    for (int i = 0; i < params.queries_per_class; ++i) {
      Query q;
      q.id = next_id++;
      q.period = period;
      q.query_class = cls;
      q.phase = params.start_window_begin +
                rng.uniform_time(util::Time::zero(), params.start_window_length);
      out.push_back(q);
    }
  }
  return out;
}

}  // namespace essat::query
