// Per-node query-service agent (§3): drives epoch generation at the leaves,
// in-network aggregation at interior nodes, aggregation timeouts, and late
// pass-through forwarding — delegating all timing decisions to the
// installed TrafficShaper.
//
// Epoch lifecycle at a node:
//   ensure_epoch(k)  -> leaf: schedule submission at shaper.plan_send();
//                       interior: wait for children until
//                       shaper.aggregation_deadline(k)
//   child report     -> shaper.on_report_received; aggregate; finalize when
//                       all children reported
//   deadline fires   -> shaper.on_child_timeout for the missing children
//                       ("a parent times out and sends the aggregated data
//                       reports based on the ones it has received", §4.3)
//   finalize         -> aggregate own reading (T_comp), submit at
//                       shaper.plan_send(); open epoch k+1
//
// Reports that arrive after their epoch was finalized are forwarded to the
// parent unaggregated (pass-through), so data is delayed but never silently
// dropped by the aggregation schedule.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "src/mac/csma.h"
#include "src/net/packet.h"
#include "src/query/query.h"
#include "src/query/traffic_shaper.h"
#include "src/routing/tree.h"
#include "src/sim/timer.h"
#include "src/util/small_vector.h"

namespace essat::snap {
class Serializer;
}  // namespace essat::snap

namespace essat::query {

struct QueryAgentParams {
  // Aggregation computation time T_comp (part of T_agg = T_collect + T_comp).
  util::Time t_comp = util::Time::from_milliseconds(5.0);
  bool enable_pass_through = true;
};

struct QueryAgentStats {
  std::uint64_t reports_sent = 0;
  std::uint64_t reports_received = 0;
  std::uint64_t pass_through_forwarded = 0;
  std::uint64_t send_failures = 0;
  std::uint64_t partial_finalizes = 0;   // finalized with missing children
  std::uint64_t child_timeouts = 0;      // individual missing-child events
  std::uint64_t phase_requests_sent = 0; // DTS resync requests (§4.3)
  std::uint64_t late_reports = 0;        // received after their epoch closed
};

class QueryAgent {
 public:
  // (query, epoch, arrival time, contributions) for every data report
  // reaching the root — the latency metric's raw stream.
  using RootArrivalHook =
      std::function<void(const Query&, std::int64_t, util::Time, int)>;
  // A unicast report exhausted its MAC retries toward `parent` (ok=false)
  // or was acknowledged (ok=true, clears consecutive-failure counters).
  using SendResultHook = std::function<void(net::NodeId parent, bool ok)>;
  // `child`'s epoch-`k` report missed the aggregation deadline.
  using ChildMissHook = std::function<void(net::NodeId child, std::int64_t k)>;
  // A (non-pass-through) report from `child` arrived — clears miss counters.
  using ChildHeardHook = std::function<void(net::NodeId child)>;

  QueryAgent(sim::Simulator& sim, mac::CsmaMac& mac, const routing::Tree& tree,
             net::NodeId self, TrafficShaper& shaper, QueryAgentParams params = {});

  // Query dissemination reached this node; starts the epoch chain.
  void register_query(const Query& q);

  // Restart path (fault engine): registers `q` on a freshly rebuilt agent
  // with the epoch chain starting at `first_epoch` instead of 0 — epochs
  // the node was dead for are treated as already finalized.
  void register_query_from(const Query& q, std::int64_t first_epoch);

  // Feed kData / kPhaseRequest packets addressed to this node.
  void handle_packet(const net::Packet& p);

  void set_root_arrival_hook(RootArrivalHook hook) { root_arrival_ = std::move(hook); }
  void set_send_result_hook(SendResultHook hook) { send_result_ = std::move(hook); }
  void set_child_miss_hook(ChildMissHook hook) { child_miss_ = std::move(hook); }
  void set_child_heard_hook(ChildHeardHook hook) { child_heard_ = std::move(hook); }

  // --- Maintenance entry points (§4.3) ----------------------------------
  // The routing layer removed `child` (persistent failure): purge it from
  // open epochs and the shaper/sleeper state.
  void child_removed(net::NodeId child);
  void child_added(net::NodeId child);
  // This node was re-attached to a new parent.
  void parent_changed();
  // This node's rank changed after a topology repair.
  void rank_changed();
  // Permanently stop (node death): cancels all timers.
  void halt();

  const QueryAgentStats& stats() const { return stats_; }
  bool is_leaf() const { return tree_.is_leaf(self_); }
  net::NodeId self() const { return self_; }

  // Snapshot hook: every open epoch (pending children, timers), watermarks,
  // dedup sequence maps, the provenance counter, pool high-water marks, and
  // counters. The upper-layer hooks are wiring, rebuilt by replay.
  void save_state(snap::Serializer& out) const;

 private:
  // Per-epoch record, pooled: the steady state of every node is "open
  // epoch k, close it, open k+1" at the query rate, and the legacy
  // std::map<k, {std::set children, 2x unique_ptr<Timer>}> paid four-plus
  // allocations per epoch for it. Records live in an agent-level free pool
  // (stable addresses — armed Timers must not move) and carry inline
  // SmallVector child sets, so epoch rollover touches the allocator only
  // on high-water growth.
  struct EpochState {
    explicit EpochState(sim::Simulator& sim) : deadline(sim), send(sim) {}
    std::int64_t k = 0;
    util::SmallVector<net::NodeId, 8> pending;  // children not yet reported
    int contributions = 0;
    bool finalizing = false;  // re-entrancy guard (hooks can call back in)
    sim::Timer deadline;
    sim::Timer send;
  };
  struct QueryState {
    Query q;
    // Open epochs, unordered (a handful at most: the current one plus any
    // straggling under pass-through). Scanned linearly by epoch number.
    util::SmallVector<EpochState*, 4> open;
    std::int64_t watermark = -1;  // highest finalized epoch
    std::map<net::NodeId, std::uint32_t> last_app_seq;
    std::uint32_t my_app_seq = 0;
  };

  EpochState* acquire_epoch_(QueryState& qs, std::int64_t k);
  void close_epoch_(QueryState& qs, EpochState* es);
  EpochState* find_epoch_(const QueryState& qs, std::int64_t k) const {
    for (EpochState* es : qs.open) {
      if (es->k == k) return es;
    }
    return nullptr;
  }

  void ensure_epoch_(QueryState& qs, std::int64_t k);
  void finalize_(QueryState& qs, std::int64_t k);
  void schedule_send_(QueryState& qs, std::int64_t k, EpochState& es,
                      int contributions, util::Time ready);
  void submit_report_(QueryState& qs, std::int64_t k, int contributions,
                      std::optional<util::Time> phase_update);
  void handle_data_(const net::Packet& p);
  void forward_pass_through_(const net::Packet& p);
  bool closed_(const QueryState& qs, std::int64_t k) const {
    return k <= qs.watermark && find_epoch_(qs, k) == nullptr;
  }

  sim::Simulator& sim_;
  mac::CsmaMac& mac_;
  const routing::Tree& tree_;
  net::NodeId self_;
  TrafficShaper& shaper_;
  QueryAgentParams params_;

  std::map<net::QueryId, QueryState> queries_;
  // Epoch-record pool: `records_` owns every EpochState ever created (their
  // addresses stay stable for the armed timers); `free_` lists the ones not
  // currently open anywhere. Bounded by the peak number of concurrently
  // open epochs, which is small and reached early.
  std::vector<std::unique_ptr<EpochState>> records_;
  std::vector<EpochState*> free_;
  bool halted_ = false;
  // Packet-lifecycle provenance: each submitted report gets
  // (self+1) << 32 | counter, unique across the run without coordination.
  std::uint64_t prov_seq_ = 0;

  RootArrivalHook root_arrival_;
  SendResultHook send_result_;
  ChildMissHook child_miss_;
  ChildHeardHook child_heard_;
  QueryAgentStats stats_;
};

}  // namespace essat::query
