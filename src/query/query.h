// Query model (§3): each source produces a data report every period P,
// starting at time φ; non-leaf nodes aggregate their children's reports with
// their own reading and forward one aggregated report per epoch.
#pragma once

#include <cstdint>

#include "src/net/types.h"
#include "src/util/time.h"

namespace essat::query {

struct Query {
  net::QueryId id = net::kNoQuery;
  util::Time period;      // P
  util::Time phase;       // φ: absolute time of epoch 0 at the sources
  int query_class = 0;    // 0..2, paper's Q1/Q2/Q3 (rate ratio 6:3:2)

  // Start of the k-th epoch: φ + k*P.
  util::Time epoch_start(std::int64_t k) const {
    return phase + period * k;
  }
};

}  // namespace essat::query
