#include "src/query/query_agent.h"

#include <algorithm>

#include "src/snap/serializer.h"
#include "src/snap/timer_codec.h"
#include "src/util/logging.h"

namespace essat::query {

QueryAgent::QueryAgent(sim::Simulator& sim, mac::CsmaMac& mac,
                       const routing::Tree& tree, net::NodeId self,
                       TrafficShaper& shaper, QueryAgentParams params)
    : sim_{sim}, mac_{mac}, tree_{tree}, self_{self}, shaper_{shaper}, params_{params} {}

void QueryAgent::register_query(const Query& q) {
  if (halted_ || !tree_.is_member(self_)) return;
  auto [it, inserted] = queries_.try_emplace(q.id);
  if (!inserted) return;  // duplicate dissemination
  it->second.q = q;
  shaper_.register_query(q);
  ensure_epoch_(it->second, 0);
}

void QueryAgent::register_query_from(const Query& q, std::int64_t first_epoch) {
  if (halted_ || !tree_.is_member(self_)) return;
  auto [it, inserted] = queries_.try_emplace(q.id);
  if (!inserted) return;
  it->second.q = q;
  // Epochs before the restart are water under the bridge: marking them
  // finalized keeps ensure_epoch_ (and late straggler data) from reopening
  // history this reborn node never participated in.
  it->second.watermark = first_epoch - 1;
  shaper_.register_query(q);
  ensure_epoch_(it->second, first_epoch);
}

QueryAgent::EpochState* QueryAgent::acquire_epoch_(QueryState& qs,
                                                   std::int64_t k) {
  EpochState* es;
  if (!free_.empty()) {
    es = free_.back();
    free_.pop_back();
  } else {
    records_.push_back(std::make_unique<EpochState>(sim_));
    es = records_.back().get();
  }
  es->k = k;
  es->pending.clear();
  es->contributions = 0;
  es->finalizing = false;
  qs.open.push_back(es);
  return es;
}

void QueryAgent::close_epoch_(QueryState& qs, EpochState* es) {
  es->deadline.cancel();
  es->send.cancel();
  es->pending.clear();
  for (std::size_t i = 0; i < qs.open.size(); ++i) {
    if (qs.open[i] == es) {
      qs.open[i] = qs.open.back();
      qs.open.pop_back();
      break;
    }
  }
  free_.push_back(es);
}

void QueryAgent::ensure_epoch_(QueryState& qs, std::int64_t k) {
  if (halted_) return;
  if (k <= qs.watermark || find_epoch_(qs, k) != nullptr) return;
  ESSAT_TRACE(sim_, obs::TraceType::kEpochStart, self_,
              static_cast<std::uint16_t>(qs.q.id), 0,
              static_cast<std::uint64_t>(k));
  EpochState& es = *acquire_epoch_(qs, k);
  for (net::NodeId c : tree_.children(self_)) es.pending.push_back(c);

  if (es.pending.empty()) {
    // Leaf (or childless interior node): its reading is available at the
    // epoch start; the shaper decides when the report actually goes out.
    schedule_send_(qs, k, es, /*contributions=*/1, qs.q.epoch_start(k));
    return;
  }
  es.deadline.arm_at(shaper_.aggregation_deadline(qs.q, k),
                     [this, &qs, k] { finalize_(qs, k); });
}

void QueryAgent::finalize_(QueryState& qs, std::int64_t k) {
  EpochState* es = find_epoch_(qs, k);
  if (es == nullptr || halted_) return;
  if (es->finalizing) return;  // hook re-entered us for the same epoch
  es->finalizing = true;
  es->deadline.cancel();

  // Detach the missing-children set before firing hooks: the child-miss
  // hook can trigger topology repair, which calls back into this agent
  // (child_removed / rank_changed) while we are still on the stack.
  // Sorted ascending — the order the legacy std::set iterated in, which
  // downstream repair hooks observe.
  std::vector<net::NodeId> missing(es->pending.begin(), es->pending.end());
  std::sort(missing.begin(), missing.end());
  es->pending.clear();
  if (!missing.empty()) {
    ++stats_.partial_finalizes;
    for (net::NodeId c : missing) {
      ++stats_.child_timeouts;
      shaper_.on_child_timeout(qs.q, k, c);
      if (child_miss_) child_miss_(c, k);
    }
  }

  // The hooks may have halted us or restructured the open-epoch list (the
  // record may even have been recycled); re-resolve by epoch number.
  if (halted_) return;
  es = find_epoch_(qs, k);
  if (es == nullptr) return;

  const int contributions = es->contributions + 1;  // fold in our own reading
  if (self_ == tree_.root()) {
    // The root is the sink: close the epoch and keep the chain alive.
    qs.watermark = std::max(qs.watermark, k);
    close_epoch_(qs, es);
    ensure_epoch_(qs, k + 1);
    return;
  }
  schedule_send_(qs, k, *es, contributions, sim_.now() + params_.t_comp);
}

void QueryAgent::schedule_send_(QueryState& qs, std::int64_t k, EpochState& es,
                                int contributions, util::Time ready) {
  const auto plan = shaper_.plan_send(qs.q, k, ready);
  es.send.arm_at(plan.send_at, [this, &qs, k, contributions,
                                update = plan.phase_update] {
    submit_report_(qs, k, contributions, update);
  });
}

void QueryAgent::submit_report_(QueryState& qs, std::int64_t k, int contributions,
                                std::optional<util::Time> phase_update) {
  if (halted_) return;
  shaper_.on_report_sent(qs.q, k, sim_.now());

  const net::NodeId parent = tree_.parent(self_);
  if (parent != net::kNoNode) {
    net::DataHeader h;
    h.query = qs.q.id;
    h.epoch = k;
    h.origin = self_;
    h.app_seq = ++qs.my_app_seq;
    h.contributions = contributions;
    h.phase_update = phase_update;
    net::Packet pkt = net::make_data_packet(self_, parent, h);
    pkt.prov = static_cast<std::uint64_t>(self_ + 1) << 32 | ++prov_seq_;
    ESSAT_TRACE(sim_, obs::TraceType::kReportSubmit, self_,
                static_cast<std::uint16_t>(qs.q.id), pkt.prov,
                static_cast<std::uint64_t>(k));
    mac_.send(std::move(pkt), [this, parent](bool ok) {
      if (!ok) ++stats_.send_failures;
      if (send_result_) send_result_(parent, ok);
    });
    ++stats_.reports_sent;
  }

  qs.watermark = std::max(qs.watermark, k);
  if (EpochState* es = find_epoch_(qs, k)) close_epoch_(qs, es);
  ensure_epoch_(qs, k + 1);
}

void QueryAgent::handle_packet(const net::Packet& p) {
  if (halted_) return;
  switch (p.type) {
    case net::PacketType::kData:
      handle_data_(p);
      break;
    case net::PacketType::kPhaseRequest:
      shaper_.on_phase_request(p.phase_request().query);
      break;
    default:
      break;
  }
}

void QueryAgent::handle_data_(const net::Packet& p) {
  const net::DataHeader& h = p.data();
  auto qit = queries_.find(h.query);
  if (qit == queries_.end()) return;  // query unknown here (not registered)
  QueryState& qs = qit->second;
  ++stats_.reports_received;

  const net::NodeId child = p.link_src;
  const bool from_current_child =
      std::find(tree_.children(self_).begin(), tree_.children(self_).end(), child) !=
      tree_.children(self_).end();

  if (!h.pass_through && from_current_child) {
    // Sequence-gap detection for DTS resynchronization (§4.3): a lost report
    // may have carried a phase update; if this one doesn't re-advertise,
    // ask for the phase explicitly.
    auto [sit, first] = qs.last_app_seq.try_emplace(child, h.app_seq);
    if (!first) {
      const bool gap = h.app_seq > sit->second + 1;
      sit->second = std::max(sit->second, h.app_seq);
      if (gap && !h.phase_update.has_value() &&
          shaper_.wants_phase_request_on_loss()) {
        ++stats_.phase_requests_sent;
        mac_.send(net::make_phase_request_packet(self_, child, h.query));
      }
    }
    shaper_.on_report_received(qs.q, h.epoch, child, h.phase_update);
    if (child_heard_) child_heard_(child);
  }

  if (self_ == tree_.root()) {
    ESSAT_TRACE(sim_, obs::TraceType::kRootDeliver, self_,
                static_cast<std::uint16_t>(h.contributions), p.prov,
                static_cast<std::uint64_t>(h.epoch));
    if (root_arrival_) root_arrival_(qs.q, h.epoch, sim_.now(), h.contributions);
  }

  if (h.pass_through || closed_(qs, h.epoch)) {
    // Too late for aggregation here; relay toward the root.
    if (!h.pass_through) ++stats_.late_reports;
    forward_pass_through_(p);
    return;
  }

  ensure_epoch_(qs, h.epoch);
  EpochState* esp = find_epoch_(qs, h.epoch);
  if (esp == nullptr) return;  // epoch closed by a racing finalize
  EpochState& es = *esp;
  bool was_pending = false;
  for (std::size_t i = 0; i < es.pending.size(); ++i) {
    if (es.pending[i] == child) {
      es.pending[i] = es.pending.back();
      es.pending.pop_back();
      was_pending = true;
      break;
    }
  }
  if (!was_pending) {
    // Duplicate or non-child source for an open epoch: forward, don't merge.
    forward_pass_through_(p);
    return;
  }
  // Aggregation boundary: this child report's provenance ends here and the
  // epoch's own kReportSubmit (same node/query/epoch) continues the chain.
  ESSAT_TRACE(sim_, obs::TraceType::kReportFold, self_,
              static_cast<std::uint16_t>(h.query), p.prov,
              static_cast<std::uint64_t>(h.epoch));
  es.contributions += h.contributions;
  if (es.pending.empty()) finalize_(qs, h.epoch);
}

void QueryAgent::forward_pass_through_(const net::Packet& p) {
  if (!params_.enable_pass_through) return;
  if (self_ == tree_.root()) return;  // already delivered via the hook
  const net::NodeId parent = tree_.parent(self_);
  if (parent == net::kNoNode) return;
  net::DataHeader h = p.data();
  h.pass_through = true;
  h.phase_update.reset();  // phase updates are hop-local
  ++stats_.pass_through_forwarded;
  net::Packet fwd = net::make_data_packet(self_, parent, h);
  fwd.prov = p.prov;  // same report, next hop: provenance rides along
  mac_.send(std::move(fwd));
}

void QueryAgent::child_removed(net::NodeId child) {
  for (auto& [qid, qs] : queries_) {
    shaper_.on_child_removed(qs.q, child);
    qs.last_app_seq.erase(child);
    // Collect epochs that become complete once the child stops being
    // awaited; finalize after the loop (finalize_ mutates qs.open), in
    // ascending epoch order — the order the legacy ordered map walked.
    std::vector<std::int64_t> ready;
    for (EpochState* es : qs.open) {
      bool erased = false;
      for (std::size_t i = 0; i < es->pending.size(); ++i) {
        if (es->pending[i] == child) {
          es->pending[i] = es->pending.back();
          es->pending.pop_back();
          erased = true;
          break;
        }
      }
      // A pending set only ever becomes non-empty at epoch open, so an
      // erase that drains it implies the aggregation deadline is armed.
      if (erased && es->pending.empty()) ready.push_back(es->k);
    }
    std::sort(ready.begin(), ready.end());
    for (std::int64_t k : ready) finalize_(qs, k);
  }
}

void QueryAgent::child_added(net::NodeId child) {
  for (auto& [qid, qs] : queries_) {
    shaper_.on_child_added(qs.q, child);
    // Open epochs keep their snapshot; the child joins from the next one.
  }
}

void QueryAgent::parent_changed() {
  for (auto& [qid, qs] : queries_) shaper_.on_parent_changed(qs.q);
}

void QueryAgent::rank_changed() {
  for (auto& [qid, qs] : queries_) shaper_.on_rank_changed(qs.q);
}

void QueryAgent::halt() {
  halted_ = true;
  for (auto& [qid, qs] : queries_) {
    for (EpochState* es : qs.open) {  // cancel all timers, recycle records
      es->deadline.cancel();
      es->send.cancel();
      es->pending.clear();
      free_.push_back(es);
    }
    qs.open.clear();
  }
}

void QueryAgent::save_state(snap::Serializer& out) const {
  out.begin("QAGT");
  out.u64(queries_.size());
  for (const auto& [qid, qs] : queries_) {  // std::map: key order
    out.i32(qid);
    out.i32(qs.q.id);
    out.time(qs.q.period);
    out.time(qs.q.phase);
    out.i32(qs.q.query_class);
    out.u64(qs.open.size());
    for (const EpochState* es : qs.open) {
      out.i64(es->k);
      out.u64(es->pending.size());
      for (net::NodeId c : es->pending) out.i32(c);
      out.i32(es->contributions);
      out.boolean(es->finalizing);
      snap::save_timer(out, es->deadline);
      snap::save_timer(out, es->send);
    }
    out.i64(qs.watermark);
    out.u64(qs.last_app_seq.size());
    for (const auto& [child, seq] : qs.last_app_seq) {
      out.i32(child);
      out.u32(seq);
    }
    out.u32(qs.my_app_seq);
  }
  out.u64(records_.size());
  out.u64(free_.size());
  out.boolean(halted_);
  out.u64(prov_seq_);
  out.u64(stats_.reports_sent);
  out.u64(stats_.reports_received);
  out.u64(stats_.pass_through_forwarded);
  out.u64(stats_.send_failures);
  out.u64(stats_.partial_finalizes);
  out.u64(stats_.child_timeouts);
  out.u64(stats_.phase_requests_sent);
  out.u64(stats_.late_reports);
  out.end();
}

}  // namespace essat::query
