// Workload generation following the paper's setup (§5): three query classes
// with rate ratio Q1:Q2:Q3 = 6:3:2; Q1's rate is the base rate. Each query
// starts at a random time within a start window.
#pragma once

#include <array>
#include <vector>

#include "src/query/query.h"
#include "src/util/rng.h"
#include "src/util/time.h"

namespace essat::query {

struct WorkloadParams {
  double base_rate_hz = 1.0;           // Q1's report rate
  int queries_per_class = 1;
  std::array<int, 3> rate_ratio = {6, 3, 2};
  // Query start times (φ) are drawn uniformly from
  // [start_window_begin, start_window_begin + start_window_length).
  util::Time start_window_begin = util::Time::zero();
  util::Time start_window_length = util::Time::seconds(10);
};

// Builds `3 * queries_per_class` queries with deterministic ids (class-major
// order) and randomized phases.
std::vector<Query> make_workload(const WorkloadParams& params, util::Rng& rng);

// Period of a query in class `cls` (0-based) at the given base rate:
// rate_cls = base * ratio[cls] / ratio[0].
util::Time class_period(const WorkloadParams& params, int cls);

}  // namespace essat::query
