// Traffic-shaper interface: the contract between the query service and an
// ESSAT traffic shaper (§4).
//
// The shaper owns the expected send time s(q,k) and the per-child expected
// reception times r(q,k,c) of data reports. It feeds them incrementally to
// the sleep scheduler through an ExpectedTimeSink (implemented by Safe
// Sleep): "Upon receiving a data report for query q from child c, the
// traffic shaping protocol computes r(q,c,k+1) while upon completing the
// sending of a data report the traffic shaper computes s(q,k+1)" (§4.1).
#pragma once

#include <cstdint>
#include <optional>

#include "src/net/types.h"
#include "src/query/query.h"
#include "src/routing/tree.h"
#include "src/util/time.h"

namespace essat::snap {
class Serializer;
}  // namespace essat::snap

namespace essat::query {

// Consumer of expected-time updates (core::SafeSleep). May be absent
// (baselines run the query service without sleep scheduling).
class ExpectedTimeSink {
 public:
  virtual ~ExpectedTimeSink() = default;
  // The node's next expected send time for query q (q.snext in the paper).
  virtual void update_next_send(net::QueryId q, util::Time t) = 0;
  // The next expected reception time of child c's report (q.rnext(c)).
  virtual void update_next_receive(net::QueryId q, net::NodeId child, util::Time t) = 0;
  // Drop stale state (failed child / deregistered query, §4.3).
  virtual void erase_child(net::QueryId q, net::NodeId child) = 0;
  virtual void erase_query(net::QueryId q) = 0;
};

struct ShaperContext {
  const routing::Tree* tree = nullptr;
  net::NodeId self = net::kNoNode;
  ExpectedTimeSink* sink = nullptr;  // may be null
};

class TrafficShaper {
 public:
  virtual ~TrafficShaper() = default;

  void set_context(const ShaperContext& ctx) { ctx_ = ctx; }
  virtual const char* name() const = 0;

  // A new query was disseminated to this node. The shaper initializes
  // s(q,0) / r(q,0,c) and pushes them to the sink.
  virtual void register_query(const Query& q) = 0;

  // The epoch-k report will be ready at `ready` (aggregation complete).
  // Returns when to submit it to the MAC and, for DTS, the phase update to
  // piggyback (the sender's s(k+1)) when a phase shift occurred or an
  // explicit advertisement was requested.
  struct SendPlan {
    util::Time send_at;
    std::optional<util::Time> phase_update;
  };
  virtual SendPlan plan_send(const Query& q, std::int64_t k, util::Time ready) = 0;

  // The epoch-k report was submitted to the MAC at `sent` (== plan.send_at).
  // The shaper computes s(q,k+1) and pushes it to the sink.
  virtual void on_report_sent(const Query& q, std::int64_t k, util::Time sent) = 0;

  // Child c's epoch-k report arrived (phase_update piggybacked if any).
  // The shaper computes r(q,k+1,c) and pushes it to the sink.
  virtual void on_report_received(const Query& q, std::int64_t k, net::NodeId child,
                                  const std::optional<util::Time>& phase_update) = 0;

  // Child c's epoch-k report never arrived (aggregation deadline fired).
  // The shaper advances r to epoch k+1 so the node does not wait forever.
  virtual void on_child_timeout(const Query& q, std::int64_t k, net::NodeId child) = 0;

  // Deadline by which the node stops waiting for children and sends the
  // aggregate it has (§4.3 "Selecting timeout values").
  virtual util::Time aggregation_deadline(const Query& q, std::int64_t k) const = 0;

  // Introspection (used by Safe Sleep bootstrap, tests and analysis).
  virtual util::Time expected_send(const Query& q, std::int64_t k) const = 0;
  virtual util::Time expected_receive(const Query& q, std::int64_t k,
                                      net::NodeId child) const = 0;

  // --- Maintenance hooks (§4.3) ----------------------------------------
  // Rank/parent changes (topology repair). Defaults: no-op; STS recomputes
  // its schedule, DTS forces a phase advertisement on its next send.
  virtual void on_rank_changed(const Query& /*q*/) {}
  virtual void on_parent_changed(const Query& /*q*/) {}
  virtual void on_child_added(const Query& /*q*/, net::NodeId /*child*/) {}
  virtual void on_child_removed(const Query& q, net::NodeId child) {
    if (ctx_.sink) ctx_.sink->erase_child(q.id, child);
  }
  // A neighbor asked us to re-advertise our phase (DTS resync after loss).
  virtual void on_phase_request(net::QueryId /*q*/) {}
  // Should the agent request a phase update from `child` after detecting a
  // sequence gap with no piggybacked update? Only DTS says yes.
  virtual bool wants_phase_request_on_loss() const { return false; }

  // Number of phase updates piggybacked so far (DTS overhead metric).
  virtual std::uint64_t phase_updates_sent() const { return 0; }

  // Snapshot hook. The default writes nothing: a shaper with no mutable
  // state (pure epoch formulas) has nothing to attest.
  virtual void save_state(snap::Serializer& /*out*/) const {}

 protected:
  const ShaperContext& ctx() const { return ctx_; }
  ShaperContext ctx_;
};

}  // namespace essat::query
