// Multi-run experiment driver: the paper averages each data point over five
// runs with varied node locations and query start times (§5), reporting 90%
// confidence intervals.
#pragma once

#include <functional>
#include <vector>

#include "src/harness/scenario.h"
#include "src/util/stats.h"

namespace essat::harness {

struct AveragedMetrics {
  util::RunningStat duty_cycle;           // fraction, not percent
  util::RunningStat latency_s;
  util::RunningStat p95_latency_s;
  util::RunningStat delivery_ratio;
  util::RunningStat phase_update_bits;
  util::RunningStat mac_send_failures;
  util::RunningStat channel_dropped;      // link-model drops per run
  util::RunningStat retx_no_ack;          // no-ACK retransmissions per run
  util::RunningStat cca_busy_defers;      // carrier-busy access defers per run
  // Fault injection (src/fault): all-zero when FaultSpec is disabled.
  util::RunningStat node_deaths;
  util::RunningStat downtime_s;
  util::RunningStat delivery_during_fault;
  std::vector<util::RunningStat> duty_by_rank;
  RunMetrics last_run;                    // histograms etc. from the final run

  double duty_ci90() const { return duty_cycle.ci_halfwidth(0.90); }
  double latency_ci90() const { return latency_s.ci_halfwidth(0.90); }
};

// Runs `config` with seeds config.seed, config.seed+1, ..., +runs-1 (each
// seed re-randomizes node placement and query phases, as in the paper).
AveragedMetrics run_repeated(ScenarioConfig config, int runs);

}  // namespace essat::harness
