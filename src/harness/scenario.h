// Scenario: assembles the full per-node stack (radio, CSMA MAC, routing
// tree, traffic shaper, Safe Sleep or baseline power management, query
// agent) for one protocol, runs the paper's experimental setup (§5), and
// returns the measured metrics.
//
// Defaults reproduce the paper: 80 nodes uniform in 500x500 m^2, 125 m
// range, 1 Mbps 802.11-style MAC, 52-byte reports, root nearest the centre,
// tree over nodes within 300 m of the root, three query classes with rate
// ratio 6:3:2 starting at random times in a 10 s window, 200 s measured.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "src/harness/metrics.h"
#include "src/mac/mac_params.h"
#include "src/net/types.h"
#include "src/query/query.h"
#include "src/util/time.h"

namespace essat::harness {

enum class Protocol { kNtsSs, kStsSs, kDtsSs, kSync, kPsm, kSpan };
const char* protocol_name(Protocol p);

struct ScenarioConfig {
  Protocol protocol = Protocol::kDtsSs;

  // Deployment (§5).
  int num_nodes = 80;
  double area_m = 500.0;
  double range_m = 125.0;
  double max_tree_dist_m = 300.0;

  // Workload (§5).
  double base_rate_hz = 1.0;
  int queries_per_class = 1;
  // Additional hand-crafted queries (phases are absolute sim times); used
  // by examples, e.g. a mid-run workload surge.
  std::vector<query::Query> extra_queries;

  // Phasing: setup slot, then query starts spread over the start window,
  // then the measurement window.
  util::Time setup_duration = util::Time::seconds(5);
  util::Time query_start_window = util::Time::seconds(10);
  util::Time measure_duration = util::Time::seconds(200);
  util::Time latency_grace = util::Time::seconds(5);

  // Radio / Safe Sleep. Transition latencies are t_be/2 each way, so the
  // break-even time equals t_be [Benini et al.].
  util::Time t_be = util::Time::from_milliseconds(2.5);

  // Shaper knobs.
  std::optional<util::Time> sts_deadline;  // Fig. 2 sweep; default: D = P
  util::Time dts_t_to = util::Time::from_milliseconds(100.0);
  util::Time t_comp = util::Time::from_milliseconds(5.0);

  // MAC parameters (802.11b at 1 Mbps by default).
  mac::MacParams mac_params;

  // Tree construction: central BFS (default, the paper's pre-built tree) or
  // the distributed flooding protocol during the setup slot.
  bool use_distributed_setup = false;

  // §4.3 failure handling: detection thresholds + repair. Off by default
  // (the paper's main experiments inject no failures).
  bool enable_maintenance = false;
  // Nodes killed at the given offsets after the setup slot ends.
  std::vector<std::pair<net::NodeId, util::Time>> failures;

  std::uint64_t seed = 1;
};

RunMetrics run_scenario(const ScenarioConfig& config);

}  // namespace essat::harness
