// Scenario: assembles the full per-node stack (radio, CSMA MAC, routing
// tree, query agent, and the power-management policy looked up in the
// StackRegistry) from a declarative config, runs the paper's experimental
// phasing (§5), and returns the measured metrics.
//
// Defaults reproduce the paper: 80 nodes uniform in 500x500 m^2, 125 m
// range, 1 Mbps 802.11-style MAC, 52-byte reports, root nearest the centre,
// tree over nodes within 300 m of the root, three query classes with rate
// ratio 6:3:2 starting at random times in a 10 s window, 200 s measured.
// The deployment (DeploymentSpec) and workload (WorkloadSpec) are open
// axes; the protocol is an open string key resolved by the registry.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/fault/fault_spec.h"
#include "src/harness/metrics.h"
#include "src/mac/mac_params.h"
#include "src/net/channel.h"
#include "src/net/link_model.h"
#include "src/net/mobility.h"
#include "src/net/topology.h"
#include "src/net/types.h"
#include "src/obs/tracer.h"
#include "src/query/query.h"
#include "src/routing/parent_policy.h"
#include "src/util/time.h"

namespace essat::snap {
struct TrialHookSpec;
}  // namespace essat::snap

namespace essat::harness {

// The paper's six protocols, for convenient enumeration; the open-ended
// form is ProtocolKey, which names any policy in the StackRegistry.
enum class Protocol { kNtsSs, kStsSs, kDtsSs, kSync, kPsm, kSpan };
// Registry key of a built-in protocol. Fails loudly: throws
// std::invalid_argument for out-of-range enum values.
const char* protocol_name(Protocol p);

// String key selecting the power-management policy. Implicitly converts
// from the Protocol enum and from string literals, so both
// `config.protocol = Protocol::kDtsSs` and `config.protocol = "MY-POLICY"`
// read naturally.
struct ProtocolKey {
  std::string name = "DTS-SS";

  ProtocolKey() = default;
  ProtocolKey(Protocol p) : name(protocol_name(p)) {}
  ProtocolKey(std::string n) : name(std::move(n)) {}
  ProtocolKey(const char* n) : name(n) {}

  const char* c_str() const { return name.c_str(); }

  friend bool operator==(const ProtocolKey& a, const ProtocolKey& b) {
    return a.name == b.name;
  }
  friend bool operator!=(const ProtocolKey& a, const ProtocolKey& b) {
    return !(a == b);
  }
};
std::ostream& operator<<(std::ostream& os, const ProtocolKey& key);

// Declarative workload: the paper's three query classes with rate ratio
// 6:3:2 (§5), scaled by base_rate_hz and replicated queries_per_class
// times, plus any hand-crafted extra queries.
struct WorkloadSpec {
  double base_rate_hz = 1.0;
  int queries_per_class = 1;
  // Query starts are spread uniformly over this window after setup.
  util::Time query_start_window = util::Time::seconds(10);
  // Additional hand-crafted queries (phases are absolute sim times); used
  // by examples, e.g. a mid-run workload surge.
  std::vector<query::Query> extra_queries;
};

struct ScenarioConfig {
  // Power-management policy, looked up in the StackRegistry.
  ProtocolKey protocol;

  // Deployment (§5 defaults: 80 nodes uniform random, 500 m square,
  // 125 m range, 300 m tree cap). See net::DeploymentSpec for the other
  // topology shapes (grid, line, clustered, corridor).
  net::DeploymentSpec deployment;

  // Workload (§5).
  WorkloadSpec workload;

  // Channel realism: the per-link loss model layered on the unit disc
  // (default: lossless unit disc, the paper's ns-2 radio). Sweepable via
  // exp::SweepSpec::axis_channel.
  net::ChannelModelSpec channel_model;

  // Medium mechanics: propagation delay, capture, arrival batching, and
  // the dense/sparse threshold for per-link statistics storage. Defaults
  // reproduce the paper's setup; the thresholds exist for the city-scale
  // benches and the dense-vs-sparse A/B equivalence tests.
  net::ChannelParams channel_params;

  // Mobility: the position source backing the topology (default: static,
  // the paper's frozen deployment — the exact legacy code path). Built per
  // trial from its own forked RNG stream; sweepable via
  // exp::SweepSpec::axis_mobility. Under mobility, pair with
  // enable_maintenance so broken links trigger tree repair.
  net::MobilitySpec mobility;

  // Parent selection for tree construction and repair: "min-hop" (default,
  // the paper's lowest-level rule), "etx" (link-quality-aware over the
  // channel's loss statistics), or any key registered in the
  // ParentPolicyRegistry. Sweepable via exp::SweepSpec::axis_routing.
  routing::RoutingSpec routing;

  // Phasing: setup slot, then query starts spread over the start window,
  // then the measurement window.
  util::Time setup_duration = util::Time::seconds(5);
  util::Time measure_duration = util::Time::seconds(200);
  util::Time latency_grace = util::Time::seconds(5);

  // Radio / Safe Sleep. Transition latencies are t_be/2 each way, so the
  // break-even time equals t_be [Benini et al.].
  util::Time t_be = util::Time::from_milliseconds(2.5);

  // Shaper knobs.
  std::optional<util::Time> sts_deadline;  // Fig. 2 sweep; default: D = P
  util::Time dts_t_to = util::Time::from_milliseconds(100.0);
  util::Time t_comp = util::Time::from_milliseconds(5.0);

  // MAC parameters (802.11b at 1 Mbps by default).
  mac::MacParams mac_params;

  // Tree construction: central BFS (default, the paper's pre-built tree) or
  // the distributed flooding protocol during the setup slot.
  bool use_distributed_setup = false;

  // §4.3 failure handling: detection thresholds + repair. Off by default
  // (the paper's main experiments inject no failures).
  bool enable_maintenance = false;
  // Nodes killed at the given offsets after the setup slot ends.
  std::vector<std::pair<net::NodeId, util::Time>> failures;

  // Unified fault injection (src/fault): churn with full stack teardown and
  // restart, finite battery budgets, per-node clock drift. Disabled by
  // default — the engine is then never constructed and the run executes the
  // exact legacy event stream. Enabling faults implies maintenance (crash
  // detection drives tree repair). Sweepable via exp::SweepSpec::axis_faults.
  fault::FaultSpec faults;

  // Observability (src/obs): when trace.active_for(seed), the run gets a
  // Tracer + optional per-node samplers and drives the configured exporters
  // after the run. Off by default — the disabled path costs one predictable
  // branch per instrumentation site.
  obs::TraceSpec trace;

  std::uint64_t seed = 1;
};

RunMetrics run_scenario(const ScenarioConfig& config);

// Checkpoint-hooked variant (src/snap): runs the identical event stream,
// pausing the event loop at hook.at to let the hook serialize the trial,
// mutate the not-yet-materialized workload fields, or abandon the run (the
// hook sets TrialCheckpoint::stop; the returned RunMetrics is then a
// discardable default). With hook.enabled == false this IS run_scenario —
// the single-run_until path and the split path execute the same events.
RunMetrics run_scenario(const ScenarioConfig& config,
                        const snap::TrialHookSpec& hook);

}  // namespace essat::harness
