// PowerManager: the pluggable power-management policy interface.
//
// A policy is everything that differs between the paper's protocols once
// the shared substrate (radio, CSMA MAC, routing tree, query agent) is in
// place: which traffic shaper each node runs, how the radio is put to
// sleep (Safe Sleep, duty schedules, always-on backbones), and any
// protocol-private control traffic. run_scenario assembles the common
// stack and delegates every policy decision here — it contains no
// per-protocol branching. New policies register with the StackRegistry
// (see stack_registry.h) and become sweepable by name without touching
// any harness code.
#pragma once

#include <memory>

#include "src/core/safe_sleep.h"
#include "src/energy/radio.h"
#include "src/mac/csma.h"
#include "src/net/packet.h"
#include "src/net/topology.h"
#include "src/net/types.h"
#include "src/query/traffic_shaper.h"
#include "src/routing/tree.h"
#include "src/sim/simulator.h"
#include "src/util/rng.h"
#include "src/util/time.h"

namespace essat::snap {
class Serializer;
}  // namespace essat::snap

namespace essat::harness {

struct ScenarioConfig;

// Everything a policy can see while assembling one run. References stay
// valid for the lifetime of the run (the PowerManager is destroyed first).
struct StackContext {
  sim::Simulator& sim;
  const net::Topology& topo;
  const routing::Tree& tree;
  net::NodeId root;
  const ScenarioConfig& config;
  util::Time setup_end;
  util::Rng& rng;  // policy-private stream (e.g. SPAN's election shuffle)
};

// Per-node substrate handles the policy may wire into.
struct NodeHandles {
  net::NodeId id;
  energy::Radio& radio;
  mac::CsmaMac& mac;
};

// One instance is created per scenario run from the StackRegistry; it owns
// whatever protocol-private state it allocates (SafeSleep schedulers,
// beacon nodes, elected backbones).
class PowerManager {
 public:
  virtual ~PowerManager() = default;

  // Invoked once when the routing tree is final (after the distributed
  // setup protocol, when enabled), before any per-node stack is built.
  // E.g. SPAN elects its coordinator backbone here.
  virtual void on_tree_ready(const StackContext& /*ctx*/) {}

  // The traffic shaper for one tree member (never null).
  virtual std::unique_ptr<query::TrafficShaper> make_shaper(
      const StackContext& ctx, const NodeHandles& node) = 0;

  // Wires radio power management for one tree member. Returns the node's
  // SafeSleep (which the shaper feeds expected times into), or nullptr
  // when the policy manages the radio some other way.
  virtual core::SafeSleep* attach_node(const StackContext& /*ctx*/,
                                       const NodeHandles& /*node*/) {
    return nullptr;
  }

  // Protocol-private packets (anything the core demux does not route, e.g.
  // PSM's ATIM announcements) received by node `id`.
  virtual void handle_packet(net::NodeId /*id*/, const net::Packet& /*packet*/) {}

  // Number of nodes the policy keeps always-on (RunMetrics::backbone_size).
  virtual int backbone_size() const { return 0; }

  // Snapshot hook covering all protocol-private state the policy allocated
  // (SafeSleep schedulers, beacon nodes, backbones). The default writes
  // nothing: a stateless policy has nothing to attest.
  virtual void save_state(snap::Serializer& /*out*/) const {}
};

}  // namespace essat::harness
