#include "src/harness/metrics.h"

#include <algorithm>

#include "src/snap/serializer.h"
#include "src/util/stats.h"

namespace essat::harness {

void LatencyCollector::on_root_arrival(const query::Query& q, std::int64_t epoch,
                                       util::Time arrival, int contributions) {
  auto [it, inserted] = epochs_.try_emplace({q.id, epoch});
  auto& rec = it->second;
  if (inserted) {
    rec.epoch_start = q.epoch_start(epoch);
    rec.last_arrival = arrival;
  } else {
    rec.last_arrival = std::max(rec.last_arrival, arrival);
  }
  rec.contributions += contributions;
}

LatencyCollector::Summary LatencyCollector::summarize(
    util::Time begin, util::Time end, util::Time grace,
    int expected_contributions) const {
  return summarize(begin, end, grace, expected_contributions, nullptr);
}

LatencyCollector::Summary LatencyCollector::summarize(
    util::Time begin, util::Time end, util::Time grace,
    int expected_contributions,
    const std::function<bool(util::Time)>& epoch_filter) const {
  Summary out;
  util::RunningStat latency;
  util::RunningStat delivery;
  std::vector<double> latencies;
  const util::Time cutoff = end - grace;
  for (const auto& [key, rec] : epochs_) {
    if (rec.epoch_start < begin || rec.epoch_start >= cutoff) continue;
    if (epoch_filter && !epoch_filter(rec.epoch_start)) continue;
    const double l = (rec.last_arrival - rec.epoch_start).to_seconds();
    latency.add(l);
    latencies.push_back(l);
    if (expected_contributions > 0) {
      delivery.add(std::min(1.0, static_cast<double>(rec.contributions) /
                                     static_cast<double>(expected_contributions)));
    }
  }
  out.avg_s = latency.mean();
  out.max_s = latency.max();
  out.p95_s = util::percentile(latencies, 95.0);
  out.delivery_ratio = delivery.mean();
  out.epochs = latency.count();
  return out;
}

void LatencyCollector::save_state(snap::Serializer& out) const {
  out.u64(epochs_.size());
  for (const auto& [key, rec] : epochs_) {
    out.i32(key.first);
    out.i64(key.second);
    out.time(rec.epoch_start);
    out.time(rec.last_arrival);
    out.i32(rec.contributions);
  }
}

void LatencyCollector::restore_state(snap::Deserializer& in) {
  epochs_.clear();
  const std::uint64_t n = in.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    const net::QueryId query = in.i32();
    const std::int64_t epoch = in.i64();
    EpochRecord rec;
    rec.epoch_start = in.time();
    rec.last_arrival = in.time();
    rec.contributions = in.i32();
    epochs_.emplace(std::make_pair(query, epoch), rec);
  }
}

}  // namespace essat::harness
