#include "src/harness/runner.h"

#include <utility>

#include "src/exp/sweep_runner.h"

namespace essat::harness {

AveragedMetrics run_repeated(ScenarioConfig config, int runs) {
  if (runs < 1) return {};  // historical behavior: no runs, empty stats
  // Thin wrapper over the parallel sweep engine: a single-point sweep.
  // The engine runs trial i with seed = base_seed + i (as documented
  // above) and folds the runs in repetition order, so the result is
  // bit-identical to the historical serial loop for any thread count.
  exp::SweepSpec spec(std::move(config));
  spec.runs(runs);
  exp::SweepRunner runner;
  std::vector<exp::PointResult> results = runner.run(spec);
  return std::move(results.front().metrics);
}

}  // namespace essat::harness
