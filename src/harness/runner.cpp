#include "src/harness/runner.h"

namespace essat::harness {

AveragedMetrics run_repeated(ScenarioConfig config, int runs) {
  AveragedMetrics out;
  for (int i = 0; i < runs; ++i) {
    config.seed = config.seed + (i == 0 ? 0 : 1);
    RunMetrics m = run_scenario(config);
    out.duty_cycle.add(m.avg_duty_cycle);
    out.latency_s.add(m.avg_latency_s);
    out.p95_latency_s.add(m.p95_latency_s);
    out.delivery_ratio.add(m.delivery_ratio);
    out.phase_update_bits.add(m.phase_update_bits_per_report);
    out.mac_send_failures.add(static_cast<double>(m.mac_send_failures));
    if (m.duty_by_rank.size() > out.duty_by_rank.size()) {
      out.duty_by_rank.resize(m.duty_by_rank.size());
    }
    for (std::size_t r = 0; r < m.duty_by_rank.size(); ++r) {
      out.duty_by_rank[r].add(m.duty_by_rank[r]);
    }
    out.last_run = std::move(m);
  }
  return out;
}

}  // namespace essat::harness
