#include "src/harness/scenario.h"

#include <fstream>
#include <memory>
#include <ostream>
#include <stdexcept>
#include <utility>

#include "src/core/maintenance.h"
#include "src/core/safe_sleep.h"
#include "src/energy/duty_cycle.h"
#include "src/fault/fault_engine.h"
#include "src/harness/power_manager.h"
#include "src/harness/stack_registry.h"
#include "src/mac/csma.h"
#include "src/net/channel.h"
#include "src/obs/sampler.h"
#include "src/obs/trace_export.h"
#include "src/query/query_agent.h"
#include "src/query/workload.h"
#include "src/routing/link_estimator.h"
#include "src/routing/repair.h"
#include "src/routing/tree.h"
#include "src/routing/tree_protocol.h"
#include "src/sim/simulator.h"
#include "src/snap/hook.h"
#include "src/snap/serializer.h"
#include "src/util/logging.h"
#include "src/util/rng.h"

namespace essat::harness {

const char* protocol_name(Protocol p) {
  switch (p) {
    case Protocol::kNtsSs: return "NTS-SS";
    case Protocol::kStsSs: return "STS-SS";
    case Protocol::kDtsSs: return "DTS-SS";
    case Protocol::kSync: return "SYNC";
    case Protocol::kPsm: return "PSM";
    case Protocol::kSpan: return "SPAN";
  }
  throw std::invalid_argument{"protocol_name: unknown Protocol enum value"};
}

std::ostream& operator<<(std::ostream& os, const ProtocolKey& key) {
  return os << key.name;
}

namespace {

// The policy-agnostic per-node substrate. Everything protocol-specific
// (SafeSleep schedulers, beacon/backbone machinery) is owned by the
// PowerManager the registry instantiated.
struct NodeStack {
  std::unique_ptr<energy::Radio> radio;
  std::unique_ptr<mac::CsmaMac> mac;
  std::unique_ptr<query::TrafficShaper> shaper;
  std::unique_ptr<query::QueryAgent> agent;
};

// "{seed}" substitution for TraceSpec export paths, so a sweep's one traced
// trial names its files after the trial.
std::string substitute_seed(std::string path, std::uint64_t seed) {
  const std::string token = "{seed}";
  for (std::size_t at = path.find(token); at != std::string::npos;
       at = path.find(token, at)) {
    path.replace(at, token.size(), std::to_string(seed));
  }
  return path;
}

}  // namespace

RunMetrics run_scenario(const ScenarioConfig& config) {
  return run_scenario(config, snap::TrialHookSpec{});
}

RunMetrics run_scenario(const ScenarioConfig& config_in,
                        const snap::TrialHookSpec& hook) {
  // The run's private mutable copy: a checkpoint hook may adjust the
  // lazily-materialized workload fields mid-run (forked sweep variants).
  ScenarioConfig config = config_in;

  util::Rng master{config.seed};
  util::Rng placement_rng = master.fork(1);
  util::Rng workload_rng = master.fork(2);
  util::Rng policy_rng = master.fork(3);
  util::Rng setup_rng = master.fork(4);

  net::Topology topo = config.deployment.build(placement_rng);
  // The mobility model (like the loss model below) draws from its own
  // forked stream, so installing it never perturbs placement/workload/MAC
  // randomness — and a static spec installs nothing at all.
  if (auto mobility_model = config.mobility.build(
          topo.positions(), config.deployment.extent().x,
          config.deployment.extent().y, master.fork(6))) {
    topo.set_mobility_model(std::move(mobility_model), config.mobility.epoch());
  }
  const net::NodeId root = topo.nearest(config.deployment.centre());

  sim::Simulator sim;
  // Per-run log context: lines emitted during this run carry the sim time.
  util::ScopedLogClock log_clock{[&sim] { return sim.now().ns(); }};
  // Pre-size the event queue for the expected concurrently-live event
  // population (a handful of timers and in-flight frames per node), so
  // steady-state scheduling never reallocates slot/heap storage mid-run.
  sim.reserve_events(topo.num_nodes() * 8 + 64);

  // --- Observability -------------------------------------------------------
  std::unique_ptr<obs::Tracer> tracer;
  std::unique_ptr<obs::NodeSampler> sampler;
  if (config.trace.active_for(config.seed)) {
    if (!obs::kTracingCompiledIn) {
      ESSAT_WARN(
          "TraceSpec.enabled but the library was built with "
          "-DESSAT_TRACING=OFF; the run proceeds untraced");
    } else {
      tracer = std::make_unique<obs::Tracer>(config.trace);
      sim.set_tracer(tracer.get());
    }
  }
  net::Channel channel{sim, topo, config.channel_params};
  // The loss model draws from its own forked stream, so installing (or
  // changing) it never perturbs placement/workload/MAC randomness.
  channel.set_link_model(config.channel_model.build(topo.range(), master.fork(5)));

  // Link-quality feedback for parent selection: the estimator reads the
  // channel's loss statistics (and the loss model's own curve as a prior),
  // the policy ranks candidate parents by it. A null policy (the "legacy"
  // sentinel) leaves every selection site on its original hardwired path.
  const routing::LinkEstimator link_estimator{channel, topo,
                                              config.routing.etx};
  std::unique_ptr<routing::ParentPolicy> parent_policy = config.routing.build(
      routing::PolicyContext{&topo, &link_estimator, config.routing.etx});
  // Per-link frame statistics only cost something when a policy reads them.
  channel.set_link_stats_enabled(parent_policy &&
                                 parent_policy->uses_link_estimator());

  // Radio: transitions t_be/2 each way so that break-even == t_be.
  energy::RadioParams radio_params;
  radio_params.t_off_on = config.t_be / 2;
  radio_params.t_on_off = config.t_be / 2;

  const std::size_t n = topo.num_nodes();
  std::vector<NodeStack> nodes(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto id = static_cast<net::NodeId>(i);
    nodes[i].radio = std::make_unique<energy::Radio>(sim, radio_params);
    nodes[i].radio->set_trace_id(id);
    nodes[i].mac = std::make_unique<mac::CsmaMac>(
        sim, channel, *nodes[i].radio, id, config.mac_params, master.fork(100 + i));
  }

  // Per-node time-series sampling (duty cycle, send-queue depth, radio
  // state) plus the run-global pending-event count. The sampler schedules
  // its own probe events, so it runs only when the trial is traced AND a
  // period was requested; untraced trials keep the exact legacy event
  // stream.
  if (tracer && config.trace.sample_period > util::Time::zero()) {
    sampler = std::make_unique<obs::NodeSampler>(config.trace.series_cap);
    sampler->add_channel("pending_events", -1,
                         [&sim] { return static_cast<double>(sim.pending_events()); });
    for (std::size_t i = 0; i < n; ++i) {
      const auto id = static_cast<std::int32_t>(i);
      energy::Radio* radio = nodes[i].radio.get();
      mac::CsmaMac* mac = nodes[i].mac.get();
      sampler->add_channel("duty_cycle", id,
                           [radio] { return radio->duty_cycle(); });
      sampler->add_channel("queue_depth", id, [mac] {
        return static_cast<double>(mac->queue_depth());
      });
      sampler->add_channel("radio_state", id, [radio] {
        return static_cast<double>(static_cast<int>(radio->state()));
      });
    }
    sampler->start(sim, config.trace.sample_period);
  }

  // --- Routing tree -------------------------------------------------------
  routing::Tree tree{n};
  std::unique_ptr<routing::TreeSetupProtocol> setup_protocol;
  if (config.use_distributed_setup) {
    setup_protocol = std::make_unique<routing::TreeSetupProtocol>(
        sim, topo, root,
        routing::TreeSetupParams{
            .finalize_after = config.setup_duration * 4 / 5,
            .max_dist_from_root = config.deployment.max_tree_dist_m},
        std::move(setup_rng), parent_policy.get());
    for (std::size_t i = 0; i < n; ++i) {
      setup_protocol->attach_mac(static_cast<net::NodeId>(i), nodes[i].mac.get());
    }
  } else {
    tree = routing::build_policy_tree(topo, root,
                                      config.deployment.max_tree_dist_m,
                                      parent_policy.get());
  }

  // --- Phasing constants ---------------------------------------------------
  const util::Time setup_end = config.setup_duration;
  // Measurement window: after all queries have started.
  const util::Time measure_start =
      setup_end + util::Time::seconds(1) + config.workload.query_start_window +
      util::Time::seconds(1);
  const util::Time measure_end = measure_start + config.measure_duration;

  // --- Fault engine --------------------------------------------------------
  // Constructed (and its RNG stream forked) only when faults are configured:
  // Rng::fork is pure, so the conditional fork leaves every other stream's
  // draws untouched and a disabled FaultSpec reproduces the legacy run byte
  // for byte.
  std::unique_ptr<fault::FaultEngine> fault_engine;
  if (config.faults.enabled()) {
    fault_engine = std::make_unique<fault::FaultEngine>(
        sim,
        fault::FaultEngineParams{config.faults, n, root, setup_end,
                                 measure_start, measure_end},
        master.fork(7));
  }

  // --- Power-management policy -------------------------------------------
  // Declared after `nodes` so the policy (and everything it owns, e.g.
  // SafeSleep instances referencing the radios/MACs) is destroyed first.
  std::unique_ptr<PowerManager> policy =
      StackRegistry::instance().create(config.protocol.name, config);
  const StackContext stack_ctx{sim,    topo,      tree,      root,
                               config, setup_end, policy_rng};

  LatencyCollector latency;
  // The active SafeSleep per node (nullptr for policies without one); a
  // crash deactivates it, a restart replaces it.
  std::vector<core::SafeSleep*> sleepers(n, nullptr);
  // The materialized workload, kept for restarts: a revived node re-registers
  // every query with the epoch chain resuming after its outage.
  std::vector<query::Query> active_queries;

  auto build_one_stack = [&](net::NodeId id) {
    auto& node = nodes[static_cast<std::size_t>(id)];
    const NodeHandles handles{id, *node.radio, *node.mac};

    node.shaper = policy->make_shaper(stack_ctx, handles);
    core::SafeSleep* sleeper = policy->attach_node(stack_ctx, handles);
    sleepers[static_cast<std::size_t>(id)] = sleeper;
    if (sleeper != nullptr && fault_engine && fault_engine->has_drift()) {
      sleeper->set_wake_adjust([engine = fault_engine.get(), id](util::Time t) {
        return engine->adjust_wake(id, t);
      });
    }

    node.shaper->set_context(query::ShaperContext{&tree, id, sleeper});
    node.agent = std::make_unique<query::QueryAgent>(
        sim, *node.mac, tree, id, *node.shaper,
        query::QueryAgentParams{.t_comp = config.t_comp});
    if (id == root) {
      node.agent->set_root_arrival_hook(
          [&latency](const query::Query& q, std::int64_t k, util::Time t, int c) {
            latency.on_root_arrival(q, k, t, c);
          });
    }
  };

  auto build_stacks = [&] {
    policy->on_tree_ready(stack_ctx);
    for (net::NodeId id : tree.members()) build_one_stack(id);
  };

  // Receive demultiplexing: core packet types go to their substrate
  // handlers; everything else is the policy's private control traffic.
  for (std::size_t i = 0; i < n; ++i) {
    const auto id = static_cast<net::NodeId>(i);
    nodes[i].mac->set_rx_handler(
        [&nodes, &setup_protocol, policy = policy.get(), id](const net::Packet& p) {
          const util::ScopedNodeContext log_node{id};
          auto& node = nodes[static_cast<std::size_t>(id)];
          switch (p.type) {
            case net::PacketType::kData:
            case net::PacketType::kPhaseRequest:
              if (node.agent) node.agent->handle_packet(p);
              break;
            case net::PacketType::kSetup:
            case net::PacketType::kJoin:
            case net::PacketType::kRankReport:
              if (setup_protocol) setup_protocol->handle_packet(id, p);
              break;
            default:
              policy->handle_packet(id, p);
              break;
          }
        });
  }

  // --- Maintenance / repair ----------------------------------------------
  routing::RepairService repair{topo, tree, {}};
  repair.set_policy(parent_policy.get());
  repair.set_tracer(&sim);
  std::unique_ptr<core::MaintenanceService> maintenance;
  // Churn and battery faults imply maintenance: without detection, a dead
  // interior node would silently black-hole its subtree forever.
  const bool maintenance_on = config.enable_maintenance ||
                              config.faults.churn.enabled() ||
                              config.faults.battery.enabled();
  auto wire_maintenance = [&] {
    if (!maintenance_on) return;
    maintenance = std::make_unique<core::MaintenanceService>(repair,
                                                             core::MaintenanceParams{});
    maintenance->set_alive_predicate([&nodes](net::NodeId m) {
      return !nodes[static_cast<std::size_t>(m)].radio->failed();
    });
    for (net::NodeId id : tree.members()) {
      maintenance->attach_agent(id, nodes[static_cast<std::size_t>(id)].agent.get());
    }
    repair.set_hooks(maintenance->make_repair_hooks());
  };

  // --- Workload ------------------------------------------------------------
  // Materialized lazily, when the setup-boundary event fires: a checkpoint
  // hook pausing just before setup_end may still change base_rate_hz /
  // queries_per_class / extra_queries (forked sweep variants draw their own
  // workloads from the shared prefix). workload_rng is a private forked
  // stream consumed nowhere else, so drawing from it here instead of at
  // construction is bit-identical. query_start_window is the exception:
  // the measurement schedule below bakes it in, so hooks must not touch it.
  auto register_queries = [&] {
    query::WorkloadParams wl;
    wl.base_rate_hz = config.workload.base_rate_hz;
    wl.queries_per_class = config.workload.queries_per_class;
    wl.start_window_begin = setup_end + util::Time::seconds(1);
    wl.start_window_length = config.workload.query_start_window;
    active_queries = query::make_workload(wl, workload_rng);
    for (query::Query q : config.workload.extra_queries) {
      q.id = static_cast<net::QueryId>(active_queries.size());
      active_queries.push_back(q);
    }
    for (net::NodeId id : tree.members()) {
      auto& node = nodes[static_cast<std::size_t>(id)];
      if (!node.agent) continue;  // crashed before the workload started
      for (const auto& q : active_queries) node.agent->register_query(q);
    }
  };

  // --- Fault mechanics -----------------------------------------------------
  // Crash: tear the node's stack down in dependency order — the MAC first
  // (cancels its timers and drops the queue without firing callbacks), then
  // the radio (fail + clear the activity latches), then the policy sleeper
  // and the query agent. Maintenance forgets the node's counters; neighbors
  // detect the death organically via child misses / send failures (§4.3).
  std::vector<char> awaiting_rejoin(n, 0);
  auto teardown_node = [&](net::NodeId id) {
    const auto i = static_cast<std::size_t>(id);
    auto& node = nodes[i];
    node.mac->crash_reset();
    node.radio->crash();
    if (sleepers[i] != nullptr) {
      sleepers[i]->deactivate();
      sleepers[i] = nullptr;
    }
    if (node.agent) node.agent->halt();
    if (maintenance) maintenance->detach_agent(id);
    node.agent.reset();
    node.shaper.reset();
  };
  // First epoch of q starting strictly after `now` — a restarted node treats
  // the epochs it was dead for as already finalized.
  auto first_epoch_after = [](const query::Query& q, util::Time now) {
    if (now < q.phase) return std::int64_t{0};
    return (now - q.phase).ns() / q.period.ns() + 1;
  };
  auto complete_restart = [&](net::NodeId id) {
    auto& node = nodes[static_cast<std::size_t>(id)];
    build_one_stack(id);
    for (const query::Query& q : active_queries) {
      node.agent->register_query_from(q, first_epoch_after(q, sim.now()));
    }
    if (maintenance) maintenance->attach_agent(id, node.agent.get());
  };
  auto restart_node = [&](net::NodeId id) {
    auto& node = nodes[static_cast<std::size_t>(id)];
    node.radio->restore();
    node.radio->turn_on();
    if (tree.is_member(id)) {
      // The outage was short enough that maintenance never removed the
      // node; its stack resumes on the existing tree position.
      complete_restart(id);
    } else {
      awaiting_rejoin[static_cast<std::size_t>(id)] = 1;
      repair.request_rejoin(id);
    }
  };
  if (fault_engine) {
    fault_engine->set_crash_callback(teardown_node);
    fault_engine->set_restart_callback(restart_node);
    fault_engine->set_energy_probe([&nodes](net::NodeId id) {
      return nodes[static_cast<std::size_t>(id)].radio->lifetime_energy_mj();
    });
    // Rejoin retries ride a bounded exponential backoff with deterministic
    // jitter from stream 8 (forked only here — see the engine note above).
    repair.enable_retries(
        sim, master.fork(8), routing::RepairService::RetryParams{},
        [&nodes](net::NodeId m) {
          return !nodes[static_cast<std::size_t>(m)].radio->failed();
        });
    repair.set_rejoin_callback([&](net::NodeId id) {
      if (!awaiting_rejoin[static_cast<std::size_t>(id)]) return;
      awaiting_rejoin[static_cast<std::size_t>(id)] = 0;
      complete_restart(id);
    });
  }

  // --- Snapshot hook --------------------------------------------------------
  // Serializes every live component into one "TRST" section — the byte
  // layout the capture and restore-attestation paths diff. Pure reads.
  auto serialize_components = [&]() -> std::vector<std::uint8_t> {
    snap::Serializer out;
    out.begin("TRST");
    sim.save_state(out);
    out.begin("RNGS");
    master.save_state(out);
    placement_rng.save_state(out);
    workload_rng.save_state(out);
    policy_rng.save_state(out);
    out.end();
    topo.save_state(out);
    channel.save_state(out);
    tree.save_state(out);
    out.boolean(setup_protocol != nullptr);
    if (setup_protocol) setup_protocol->save_state(out);
    link_estimator.save_state(out);
    out.u64(n);
    for (std::size_t i = 0; i < n; ++i) {
      nodes[i].radio->save_state(out);
      nodes[i].mac->save_state(out);
      out.boolean(nodes[i].shaper != nullptr);
      if (nodes[i].shaper) nodes[i].shaper->save_state(out);
      out.boolean(nodes[i].agent != nullptr);
      if (nodes[i].agent) nodes[i].agent->save_state(out);
    }
    policy->save_state(out);
    latency.save_state(out);
    out.boolean(fault_engine != nullptr);
    if (fault_engine) fault_engine->save_state(out);
    out.end();
    return out.take();
  };

  // --- Phase plan -----------------------------------------------------------
  if (config.use_distributed_setup) {
    setup_protocol->start([&](routing::Tree built) {
      tree = std::move(built);
      tree.recompute_ranks();
    });
    sim.schedule_at(setup_end, [&] {
      build_stacks();
      wire_maintenance();
      register_queries();
    });
  } else {
    build_stacks();
    wire_maintenance();
    sim.schedule_at(setup_end, [&] { register_queries(); });
  }

  // Mobility epoch ticks: re-sample the position source and rebuild the
  // neighbor sets once per epoch. Link PRRs then drift through geometry;
  // broken parent links surface as MAC send failures, which maintenance
  // (when enabled) turns into policy-driven reparenting.
  std::function<void()> mobility_tick;
  if (topo.time_varying()) {
    mobility_tick = [&] {
      topo.advance_to(sim.now());
      sim.schedule_in(topo.mobility_epoch(), mobility_tick);
    };
    sim.schedule_in(topo.mobility_epoch(), mobility_tick);
  }

  sim.schedule_at(measure_start, [&] {
    for (auto& node : nodes) node.radio->begin_measurement();
  });

  // Failure injection.
  for (const auto& [victim, offset] : config.failures) {
    sim.schedule_at(setup_end + offset, [&nodes, victim = victim] {
      auto& node = nodes[static_cast<std::size_t>(victim)];
      node.radio->fail();
      if (node.agent) node.agent->halt();
    });
  }

  // Fault schedule: started last, so a same-time churn event (offset zero)
  // fires after the setup-boundary stack build it tears down.
  if (fault_engine) fault_engine->start();

  if (hook.enabled) {
    // Split run: execute every event with time <= hook.at, pause (no event
    // is injected, so the stream is identical to the unhooked run), hand
    // control to the hook, then run out the remainder.
    sim.run_until(hook.at);
    snap::TrialCheckpoint cp{sim, config, serialize_components};
    hook.hook(cp);
    if (cp.stop) return RunMetrics{};
    sim.run_until(measure_end);
  } else {
    sim.run_until(measure_end);
  }

  // --- Export traces -------------------------------------------------------
  if (tracer) {
    if (!config.trace.perfetto_path.empty()) {
      const std::string path =
          substitute_seed(config.trace.perfetto_path, config.seed);
      std::ofstream f{path};
      if (f) {
        obs::export_perfetto_json(*tracer, sampler.get(), f);
      } else {
        ESSAT_WARN("trace export: cannot open %s", path.c_str());
      }
    }
    if (!config.trace.jsonl_path.empty()) {
      const std::string path =
          substitute_seed(config.trace.jsonl_path, config.seed);
      std::ofstream f{path};
      if (f) {
        obs::export_jsonl(*tracer, f);
      } else {
        ESSAT_WARN("trace export: cannot open %s", path.c_str());
      }
    }
    if (config.trace.sink) config.trace.sink(*tracer);
    sim.set_tracer(nullptr);  // teardown events stay out of the snapshot
  }

  // --- Collect metrics -------------------------------------------------------
  RunMetrics out;
  const auto members = tree.members();
  out.tree_members = static_cast<int>(members.size());
  out.max_rank = tree.max_rank();
  out.backbone_size = policy->backbone_size();

  std::vector<const energy::Radio*> radios;
  std::vector<int> rank_of;
  int live_members = 0;
  for (net::NodeId id : members) {
    const auto& node = nodes[static_cast<std::size_t>(id)];
    if (node.radio->failed()) continue;
    radios.push_back(node.radio.get());
    rank_of.push_back(tree.rank(id));
    ++live_members;
  }
  const auto duty = energy::summarize_duty_cycles(radios);
  out.avg_duty_cycle = duty.average;
  out.duty_by_rank =
      energy::duty_cycle_by_group(radios, rank_of, tree.max_rank() + 1);

  const auto lat = latency.summarize(measure_start, measure_end,
                                     config.latency_grace, live_members - 1);
  out.avg_latency_s = lat.avg_s;
  out.p95_latency_s = lat.p95_s;
  out.max_latency_s = lat.max_s;
  out.delivery_ratio = lat.delivery_ratio;
  out.epochs_measured = lat.epochs;

  for (const energy::Radio* r : radios) {
    for (double s : r->sleep_intervals_s()) {
      out.sleep_hist.add(s);
      ++out.sleep_intervals;
    }
  }
  out.frac_sleep_below_2_5ms = out.sleep_hist.fraction_below(0.0025);

  for (net::NodeId id : members) {
    const auto& node = nodes[static_cast<std::size_t>(id)];
    RunMetrics::NodeDiag diag;
    diag.id = id;
    diag.rank = tree.rank(id);
    diag.level = tree.level(id);
    diag.leaf = tree.is_leaf(id);
    diag.duty_cycle = node.radio->duty_cycle();
    if (node.agent) {
      diag.reports_sent = node.agent->stats().reports_sent;
      diag.send_failures = node.agent->stats().send_failures;
      diag.pass_through = node.agent->stats().pass_through_forwarded;
      diag.child_timeouts = node.agent->stats().child_timeouts;
    }
    diag.retx_no_ack = node.mac->stats().retries;
    diag.cca_busy_defers = node.mac->stats().cca_busy_defers;
    diag.repair_attempts = repair.repair_attempts(id);
    out.mac_retx_no_ack += diag.retx_no_ack;
    out.mac_cca_busy_defers += diag.cca_busy_defers;
    out.per_node.push_back(diag);
  }

  std::uint64_t phase_updates = 0;
  for (net::NodeId id : members) {
    const auto& node = nodes[static_cast<std::size_t>(id)];
    if (node.shaper) phase_updates += node.shaper->phase_updates_sent();
    if (node.agent) {
      out.reports_sent += node.agent->stats().reports_sent;
      out.mac_send_failures += node.agent->stats().send_failures;
      out.pass_through_forwarded += node.agent->stats().pass_through_forwarded;
    }
  }
  out.phase_updates = phase_updates;
  if (out.reports_sent > 0) {
    // A phase update is a 16-bit time offset field.
    out.phase_update_bits_per_report =
        static_cast<double>(phase_updates) * 16.0 /
        static_cast<double>(out.reports_sent);
  }
  out.mac_transmissions = channel.transmissions();
  out.channel_collisions = channel.collisions();
  out.channel_delivered = channel.delivered();
  out.channel_dropped_by_model = channel.dropped_by_model();
  out.sim_events = sim.executed_events();
  out.peak_pending_events = sim.peak_pending_events();

  if (fault_engine) {
    out.node_deaths = fault_engine->node_deaths();
    out.downtime_s = fault_engine->downtime_s();
    const auto fault_lat = latency.summarize(
        measure_start, measure_end, config.latency_grace, live_members - 1,
        [&](util::Time t) { return fault_engine->any_down_at(t); });
    out.delivery_during_fault = fault_lat.delivery_ratio;
  }
  return out;
}

}  // namespace essat::harness
