// ASCII table / series printing for the bench binaries that regenerate the
// paper's figures.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace essat::harness {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);
  void add_row(std::vector<std::string> cells);
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats a double with the given precision (trailing-zero trimmed).
std::string fmt(double value, int precision = 3);
// "12.3 ± 0.4"-style value with confidence interval.
std::string fmt_ci(double value, double ci, int precision = 3);
// Percentage with one decimal, e.g. 0.1234 -> "12.3".
std::string fmt_pct(double fraction, int precision = 1);

}  // namespace essat::harness
