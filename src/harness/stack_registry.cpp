#include "src/harness/stack_registry.h"

#include <algorithm>
#include <mutex>
#include <stdexcept>

// Built-in policy registration hooks, defined next to the protocol
// implementations. Referencing them here keeps their translation units in
// the link when essat is consumed as a static library.
namespace essat::core {
void register_essat_power_managers();
}  // namespace essat::core
namespace essat::baselines {
void register_sync_power_manager();
void register_psm_power_manager();
void register_span_power_manager();
}  // namespace essat::baselines

namespace essat::harness {

StackRegistry& StackRegistry::instance() {
  static StackRegistry registry;
  return registry;
}

void StackRegistry::ensure_builtins_() {
  // The builtin hooks register through add(), which calls back into this
  // function; the thread-local flag turns that re-entry into a no-op
  // instead of deadlocking the once-initialization.
  static thread_local bool in_progress = false;
  if (in_progress) return;
  static std::once_flag once;
  std::call_once(once, [] {
    in_progress = true;
    core::register_essat_power_managers();
    baselines::register_sync_power_manager();
    baselines::register_psm_power_manager();
    baselines::register_span_power_manager();
    in_progress = false;
  });
}

void StackRegistry::add(std::string name, Factory factory) {
  // Built-ins go in first so a colliding external registration is reported
  // here, at the offending add() call, not at some later lookup.
  ensure_builtins_();
  if (name.empty()) {
    throw std::invalid_argument{"StackRegistry::add: empty policy name"};
  }
  if (!factory) {
    throw std::invalid_argument{"StackRegistry::add: null factory for \"" +
                                name + "\""};
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [existing, _] : entries_) {
    if (existing == name) {
      throw std::invalid_argument{"StackRegistry::add: duplicate policy \"" +
                                  name + "\""};
    }
  }
  entries_.emplace_back(std::move(name), std::move(factory));
}

bool StackRegistry::contains(const std::string& name) const {
  ensure_builtins_();
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [existing, _] : entries_) {
    if (existing == name) return true;
  }
  return false;
}

std::vector<std::string> StackRegistry::names() const {
  ensure_builtins_();
  std::vector<std::string> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.reserve(entries_.size());
    for (const auto& [name, _] : entries_) out.push_back(name);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::unique_ptr<PowerManager> StackRegistry::create(
    const std::string& name, const ScenarioConfig& config) const {
  ensure_builtins_();
  Factory factory;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [existing, f] : entries_) {
      if (existing == name) {
        factory = f;
        break;
      }
    }
  }
  if (!factory) {
    std::string known;
    for (const std::string& n : names()) {
      known += known.empty() ? n : ", " + n;
    }
    throw std::invalid_argument{"StackRegistry: unknown power-management policy \"" +
                                name + "\" (registered: " + known + ")"};
  }
  return factory(config);
}

StackRegistrar::StackRegistrar(std::string name, StackRegistry::Factory factory) {
  StackRegistry::instance().add(std::move(name), std::move(factory));
}

}  // namespace essat::harness
