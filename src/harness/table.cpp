#include "src/harness/table.h"

#include <algorithm>
#include <cstdio>

namespace essat::harness {

Table::Table(std::vector<std::string> headers) : headers_{std::move(headers)} {}

void Table::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      os << (c == 0 ? "" : "  ") << cell
         << std::string(widths[c] - std::min(widths[c], cell.size()), ' ');
    }
    os << '\n';
  };
  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) total += widths[c] + (c ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

std::string fmt_ci(double value, double ci, int precision) {
  return fmt(value, precision) + " +/- " + fmt(ci, precision);
}

std::string fmt_pct(double fraction, int precision) {
  return fmt(fraction * 100.0, precision);
}

}  // namespace essat::harness
