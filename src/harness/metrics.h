// Experiment metrics: the quantities the paper's evaluation (§5) plots.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "src/net/types.h"
#include "src/query/query.h"
#include "src/util/histogram.h"
#include "src/util/time.h"

namespace essat::snap {
class Serializer;
class Deserializer;
}  // namespace essat::snap

namespace essat::harness {

// Per-run results.
struct RunMetrics {
  // Energy efficiency (§5.1): duty cycle averaged over tree members.
  double avg_duty_cycle = 0.0;
  std::vector<double> duty_by_rank;  // index = rank (Fig. 5)

  // Query performance (§5.2): per-epoch latency = (last report arrival at
  // the root) - (epoch start), averaged over epochs and queries.
  double avg_latency_s = 0.0;
  double p95_latency_s = 0.0;
  double max_latency_s = 0.0;
  // Fraction of source readings that reached the root per epoch.
  double delivery_ratio = 0.0;
  std::uint64_t epochs_measured = 0;

  // Break-even-time analysis (§5.3): completed sleep-interval lengths.
  util::Histogram sleep_hist{0.0, 0.025, 8};  // 25 ms bins to 200 ms (Fig. 8)
  double frac_sleep_below_2_5ms = 0.0;
  std::uint64_t sleep_intervals = 0;

  // DTS synchronization overhead (§4.2.3): piggybacked phase-update bits
  // per data report (the paper reports < 1 bit/report).
  double phase_update_bits_per_report = 0.0;
  std::uint64_t phase_updates = 0;

  // Per-node diagnostics (rank, duty, failure breakdown).
  struct NodeDiag {
    net::NodeId id = net::kNoNode;
    int rank = -1;
    int level = -1;
    bool leaf = false;
    double duty_cycle = 0.0;
    std::uint64_t reports_sent = 0;
    std::uint64_t send_failures = 0;
    std::uint64_t pass_through = 0;
    std::uint64_t child_timeouts = 0;
    // MAC retry attribution (see mac::MacStats): retransmissions after a
    // missing ACK vs carrier-busy access defers (which retransmit nothing).
    std::uint64_t retx_no_ack = 0;
    std::uint64_t cca_busy_defers = 0;
    // Tree-repair attempts (reparents, orphan re-attaches, rejoin retries)
    // made on this node's behalf (routing::RepairService).
    std::uint64_t repair_attempts = 0;
  };
  std::vector<NodeDiag> per_node;

  // Substrate counters.
  std::uint64_t reports_sent = 0;
  std::uint64_t mac_transmissions = 0;
  std::uint64_t mac_send_failures = 0;
  // Totals of the per-node retry attribution over tree members.
  std::uint64_t mac_retx_no_ack = 0;
  std::uint64_t mac_cca_busy_defers = 0;
  std::uint64_t channel_collisions = 0;
  std::uint64_t channel_delivered = 0;
  // Frames the link model declared undecodable (0 under the unit disc).
  std::uint64_t channel_dropped_by_model = 0;
  std::uint64_t pass_through_forwarded = 0;
  int tree_members = 0;
  int max_rank = 0;
  int backbone_size = 0;  // SPAN coordinators

  // Simulation-core counters (the perf-report harness turns these plus
  // wall time into events/sec and ns/event; see bench/perf_report.cpp).
  std::uint64_t sim_events = 0;            // events executed by this run
  std::uint64_t peak_pending_events = 0;   // event-queue high-water mark

  // Fault injection (src/fault). All zero when FaultSpec is disabled.
  std::uint64_t node_deaths = 0;        // churn + battery deaths
  double downtime_s = 0.0;              // node-seconds down in the window
  // Delivery ratio over the epochs that started while >= 1 node was down
  // (0 when no epoch overlapped an outage).
  double delivery_during_fault = 0.0;
};

// Accumulates data-report arrivals at the root and turns them into the
// paper's query-latency metric.
class LatencyCollector {
 public:
  // Record one report reaching the root.
  void on_root_arrival(const query::Query& q, std::int64_t epoch,
                       util::Time arrival, int contributions);

  struct Summary {
    double avg_s = 0.0;
    double p95_s = 0.0;
    double max_s = 0.0;
    double delivery_ratio = 0.0;
    std::uint64_t epochs = 0;
  };
  // Latency over epochs whose start lies in [begin, end - grace); epochs
  // still in flight near the end are excluded. `expected_contributions` is
  // the number of source readings per epoch (tree members minus the root).
  Summary summarize(util::Time begin, util::Time end, util::Time grace,
                    int expected_contributions) const;
  // As above, restricted to epochs whose start also satisfies the filter
  // (fault engine: epochs that began during an outage).
  Summary summarize(util::Time begin, util::Time end, util::Time grace,
                    int expected_contributions,
                    const std::function<bool(util::Time)>& epoch_filter) const;

  // Snapshot hooks. epochs_ is an ordered map, so serialization order is
  // deterministic and a restored collector summarizes identically.
  void save_state(snap::Serializer& out) const;
  void restore_state(snap::Deserializer& in);

 private:
  struct EpochRecord {
    util::Time epoch_start;
    util::Time last_arrival;
    int contributions = 0;
  };
  std::map<std::pair<net::QueryId, std::int64_t>, EpochRecord> epochs_;
};

}  // namespace essat::harness
