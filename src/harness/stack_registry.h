// String-keyed factory registry of power-management policies.
//
// Each policy registers a factory under its protocol name ("DTS-SS",
// "PSM", ...); run_scenario instantiates whatever ScenarioConfig::protocol
// names. The six built-in wirings self-register from translation units
// living next to their implementations (src/core/essat_stack.cpp,
// src/baselines/*_stack.cpp) — adding a seventh policy means adding one
// such file and touches no harness code. External programs can register
// additional policies at static-initialization time with StackRegistrar,
// or directly through StackRegistry::instance().add().
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/harness/power_manager.h"

namespace essat::harness {

class StackRegistry {
 public:
  using Factory =
      std::function<std::unique_ptr<PowerManager>(const ScenarioConfig&)>;

  static StackRegistry& instance();

  // Registers a policy under `name`. Throws std::invalid_argument on a
  // duplicate name — silently shadowing a policy would corrupt sweeps.
  void add(std::string name, Factory factory);

  bool contains(const std::string& name) const;
  // Registered names, sorted (stable sweep-axis ordering).
  std::vector<std::string> names() const;

  // Instantiates the policy for one run. Fails loudly: throws
  // std::invalid_argument on an unknown key, listing the known names.
  std::unique_ptr<PowerManager> create(const std::string& name,
                                       const ScenarioConfig& config) const;

 private:
  StackRegistry() = default;
  // Pulls in the built-in policy TUs (a static library drops translation
  // units nothing references, so self-registration alone is not enough for
  // the built-ins; external code linking its own registrar TU is).
  static void ensure_builtins_();

  mutable std::mutex mu_;
  std::vector<std::pair<std::string, Factory>> entries_;
};

// Registers a factory at static-initialization time:
//   static const essat::harness::StackRegistrar kReg{
//       "MY-POLICY", [](const essat::harness::ScenarioConfig& c) { ... }};
struct StackRegistrar {
  StackRegistrar(std::string name, StackRegistry::Factory factory);
};

}  // namespace essat::harness
