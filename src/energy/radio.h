// Radio power-state machine with per-state time/energy accounting.
//
// States: OFF <-> (transitions) <-> ON. Transitions take t_OFF_ON / t_ON_OFF
// (MICA2: ~1.25 ms each way, giving the paper's typical break-even time of
// 2.5 ms). Duty cycle counts every non-OFF nanosecond as active, transitions
// included, matching the paper's definition ("percentage of time a node
// remains active").
//
// Safe Sleep's correctness argument (§4.1) rests on two properties exposed
// here: turn_on() completes exactly t_OFF_ON after it is called, and
// completed OFF intervals are recorded for the paper's Fig. 8 histogram.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "src/sim/timer.h"
#include "src/util/time.h"

namespace essat::snap {
class Serializer;
}  // namespace essat::snap

namespace essat::energy {

enum class RadioState : std::uint8_t { kOff, kTurningOn, kOn, kTurningOff };

struct RadioParams {
  util::Time t_off_on = util::Time::from_milliseconds(1.25);
  util::Time t_on_off = util::Time::from_milliseconds(1.25);
  // Power draw in milliwatts, loosely CC1000/MICA2-class. Used for the
  // optional energy-in-millijoules metric; duty cycle does not depend on it.
  double p_idle_mw = 24.0;
  double p_rx_mw = 29.0;
  double p_tx_mw = 42.0;
  double p_off_mw = 0.003;
  double p_transition_mw = 24.0;

  // Break-even time: minimum free interval worth sleeping through (§4.1).
  // When the transition power is no higher than the active power this equals
  // t_on_off + t_off_on [Benini et al.]; callers may override (Fig. 9 sweeps
  // T_BE independently of the transition latencies).
  util::Time break_even() const { return t_off_on + t_on_off; }
};

class Radio {
 public:
  Radio(sim::Simulator& sim, RadioParams params);

  RadioState state() const { return state_; }
  bool is_on() const { return state_ == RadioState::kOn; }
  bool is_off() const { return state_ == RadioState::kOff; }
  bool failed() const { return failed_; }
  const RadioParams& params() const { return params_; }

  // Begins the OFF -> ON transition; completes after t_off_on. If called
  // while turning off, the turn-on is queued to start when OFF is reached;
  // if called while turning on, any queued turn-off is cancelled (the
  // latest intent wins). No-op when already on, or failed.
  void turn_on();
  // Begins the ON -> OFF transition; completes after t_on_off. If called
  // while turning on, the turn-off is queued to start when ON is reached
  // (a transition is never aborted mid-flight); if called while turning
  // off, any queued turn-on is cancelled. No-op when already off, or
  // failed.
  void turn_off();
  // Permanent node death (failure injection): radio drops to OFF and ignores
  // all future turn_on() calls.
  void fail();
  // Churn-style crash: fail() plus clearing the MAC activity latches. The
  // MAC's tx-end timer dies with the node, so nothing else would ever clear
  // note_tx/note_rx and the radio would bill TX power across the outage.
  void crash();
  // Revives a crashed radio (node restart). The radio stays OFF; callers
  // turn_on() it as part of rebuilding the node's stack.
  void restore();

  // Observer invoked on every completed state change (new state passed).
  // Multiple observers are supported (Safe Sleep, MAC, protocols).
  void add_state_observer(std::function<void(RadioState)> observer);

  // Node id stamped on kRadioState trace records. The radio itself is
  // node-agnostic; the harness labels it at assembly time (-1 = unlabelled).
  void set_trace_id(std::int32_t node) { trace_id_ = node; }

  // Energy-accounting hints from the MAC: while flagged, ON time is charged
  // at TX/RX power instead of idle-listen power.
  void note_tx(bool active);
  void note_rx(bool active);

  // --- Accounting -------------------------------------------------------
  // Restarts the measurement window at the current simulation time.
  void begin_measurement();
  // Time in the window the radio was not OFF (transitions count as active).
  util::Time active_time() const;
  // Time in the window the radio was OFF.
  util::Time off_time() const;
  // active / (active + off); 0 if the window is empty.
  double duty_cycle() const;
  // Energy spent in the window, in millijoules.
  double energy_mj() const;
  // Energy spent since construction, in millijoules — unlike energy_mj()
  // this survives begin_measurement(), so battery budgets (fault engine)
  // drain across the whole run including setup.
  double lifetime_energy_mj() const;
  // Completed OFF intervals (entering OFF to leaving OFF), seconds, recorded
  // within the measurement window. Paper Fig. 8.
  const std::vector<double>& sleep_intervals_s() const { return sleep_intervals_; }

  // Snapshot hook: the full state machine plus accounting, with the
  // transition timer as (armed, fire time) — observers are wiring, rebuilt
  // by replay.
  void save_state(snap::Serializer& out) const;

 private:
  void enter_(RadioState next);
  void account_to_now_();
  double current_power_mw_() const;

  sim::Simulator& sim_;
  RadioParams params_;
  std::int32_t trace_id_ = -1;
  RadioState state_ = RadioState::kOn;
  bool failed_ = false;
  bool pending_on_ = false;   // turn_on() arrived while turning off
  bool pending_off_ = false;  // turn_off() arrived while turning on
  bool tx_active_ = false;
  bool rx_active_ = false;
  sim::Timer transition_timer_;
  std::vector<std::function<void(RadioState)>> observers_;

  // Accounting state.
  util::Time window_start_;
  util::Time segment_start_;       // start of the current (state, tx/rx) segment
  util::Time off_accum_;
  util::Time on_accum_;            // everything non-OFF
  double energy_mj_ = 0.0;
  double lifetime_energy_mj_ = 0.0;  // never reset (battery budgets)
  util::Time off_enter_time_;      // for sleep-interval recording
  bool in_off_interval_ = false;
  std::vector<double> sleep_intervals_;
};

}  // namespace essat::energy
