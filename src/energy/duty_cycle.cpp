#include "src/energy/duty_cycle.h"

#include <stdexcept>

namespace essat::energy {

DutyCycleSummary summarize_duty_cycles(const std::vector<const Radio*>& radios) {
  DutyCycleSummary out;
  util::RunningStat stat;
  out.per_radio.reserve(radios.size());
  for (const Radio* r : radios) {
    const double d = r->duty_cycle();
    out.per_radio.push_back(d);
    stat.add(d);
  }
  out.average = stat.mean();
  out.min = stat.min();
  out.max = stat.max();
  return out;
}

std::vector<double> duty_cycle_by_group(const std::vector<const Radio*>& radios,
                                        const std::vector<int>& group_of,
                                        int num_groups) {
  if (radios.size() != group_of.size()) {
    throw std::invalid_argument{"duty_cycle_by_group: size mismatch"};
  }
  std::vector<util::RunningStat> stats(static_cast<std::size_t>(num_groups));
  for (std::size_t i = 0; i < radios.size(); ++i) {
    const int g = group_of[i];
    if (g < 0 || g >= num_groups) continue;
    stats[static_cast<std::size_t>(g)].add(radios[i]->duty_cycle());
  }
  std::vector<double> out;
  out.reserve(stats.size());
  for (const auto& s : stats) out.push_back(s.mean());
  return out;
}

}  // namespace essat::energy
