#include "src/energy/radio.h"

#include "src/snap/timer_codec.h"

namespace essat::energy {

Radio::Radio(sim::Simulator& sim, RadioParams params)
    : sim_{sim},
      params_{params},
      transition_timer_{sim},
      window_start_{sim.now()},
      segment_start_{sim.now()} {}

void Radio::add_state_observer(std::function<void(RadioState)> observer) {
  observers_.push_back(std::move(observer));
}

double Radio::current_power_mw_() const {
  switch (state_) {
    case RadioState::kOff:
      return params_.p_off_mw;
    case RadioState::kTurningOn:
    case RadioState::kTurningOff:
      return params_.p_transition_mw;
    case RadioState::kOn:
      if (tx_active_) return params_.p_tx_mw;
      if (rx_active_) return params_.p_rx_mw;
      return params_.p_idle_mw;
  }
  return 0.0;
}

void Radio::account_to_now_() {
  const util::Time now = sim_.now();
  const util::Time dt = now - segment_start_;
  if (dt > util::Time::zero()) {
    if (state_ == RadioState::kOff) {
      off_accum_ += dt;
    } else {
      on_accum_ += dt;
    }
    const double spent_mj = current_power_mw_() * dt.to_seconds();
    energy_mj_ += spent_mj;
    lifetime_energy_mj_ += spent_mj;
  }
  segment_start_ = now;
}

void Radio::enter_(RadioState next) {
  account_to_now_();
  const RadioState prev = state_;
  state_ = next;
  ESSAT_TRACE(sim_, obs::TraceType::kRadioState, trace_id_,
              static_cast<std::uint16_t>(static_cast<std::uint16_t>(prev) << 8 |
                                         static_cast<std::uint16_t>(next)),
              0, 0);

  // Sleep-interval bookkeeping: an OFF interval spans entering OFF to
  // leaving OFF.
  if (next == RadioState::kOff) {
    off_enter_time_ = sim_.now();
    in_off_interval_ = true;
  } else if (prev == RadioState::kOff && in_off_interval_) {
    if (off_enter_time_ >= window_start_) {
      sleep_intervals_.push_back((sim_.now() - off_enter_time_).to_seconds());
    }
    in_off_interval_ = false;
  }

  for (const auto& obs : observers_) obs(next);
}

void Radio::turn_on() {
  if (failed_) return;
  switch (state_) {
    case RadioState::kOn:
      return;
    case RadioState::kTurningOn:
      pending_off_ = false;  // the latest intent wins
      return;
    case RadioState::kTurningOff:
      pending_on_ = true;
      return;
    case RadioState::kOff:
      enter_(RadioState::kTurningOn);
      transition_timer_.arm_in(params_.t_off_on, [this] {
        if (failed_) return;
        enter_(RadioState::kOn);
        if (pending_off_) {
          pending_off_ = false;
          turn_off();
        }
      });
      return;
  }
}

void Radio::turn_off() {
  if (failed_) return;
  switch (state_) {
    case RadioState::kOff:
      return;
    case RadioState::kTurningOff:
      pending_on_ = false;  // the latest intent wins
      return;
    case RadioState::kTurningOn:
      // Mirror of turn_on() during kTurningOff: latch and complete the
      // in-flight transition first. Dropping the request here left the
      // radio stuck ON whenever a policy decided to sleep mid-turn-on.
      pending_off_ = true;
      return;
    case RadioState::kOn:
      enter_(RadioState::kTurningOff);
      transition_timer_.arm_in(params_.t_on_off, [this] {
        if (failed_) return;
        enter_(RadioState::kOff);
        if (pending_on_) {
          pending_on_ = false;
          turn_on();
        }
      });
      return;
  }
}

void Radio::fail() {
  if (failed_) return;
  transition_timer_.cancel();
  pending_on_ = false;
  pending_off_ = false;
  enter_(RadioState::kOff);
  failed_ = true;
  in_off_interval_ = false;  // dead time is not a sleep interval
}

void Radio::crash() {
  fail();  // no-op if already failed; the latch clears below still apply
  tx_active_ = false;
  rx_active_ = false;
}

void Radio::restore() {
  if (!failed_) return;
  account_to_now_();  // close the outage segment at p_off power
  failed_ = false;
}

void Radio::note_tx(bool active) {
  account_to_now_();
  tx_active_ = active;
}

void Radio::note_rx(bool active) {
  account_to_now_();
  rx_active_ = active;
}

void Radio::begin_measurement() {
  account_to_now_();
  window_start_ = sim_.now();
  off_accum_ = util::Time::zero();
  on_accum_ = util::Time::zero();
  energy_mj_ = 0.0;
  sleep_intervals_.clear();
  // A sleep interval straddling the window start is counted from the window
  // start.
  if (in_off_interval_) off_enter_time_ = sim_.now();
}

util::Time Radio::active_time() const {
  const_cast<Radio*>(this)->account_to_now_();
  return on_accum_;
}

util::Time Radio::off_time() const {
  const_cast<Radio*>(this)->account_to_now_();
  return off_accum_;
}

double Radio::duty_cycle() const {
  const util::Time active = active_time();
  const util::Time total = active + off_time();
  if (total <= util::Time::zero()) return 0.0;
  return active / total;
}

double Radio::energy_mj() const {
  const_cast<Radio*>(this)->account_to_now_();
  return energy_mj_;
}

double Radio::lifetime_energy_mj() const {
  const_cast<Radio*>(this)->account_to_now_();
  return lifetime_energy_mj_;
}

void Radio::save_state(snap::Serializer& out) const {
  out.begin("RADI");
  out.u8(static_cast<std::uint8_t>(state_));
  out.boolean(failed_);
  out.boolean(pending_on_);
  out.boolean(pending_off_);
  out.boolean(tx_active_);
  out.boolean(rx_active_);
  snap::save_timer(out, transition_timer_);
  out.time(window_start_);
  out.time(segment_start_);
  out.time(off_accum_);
  out.time(on_accum_);
  out.f64(energy_mj_);
  out.f64(lifetime_energy_mj_);
  out.time(off_enter_time_);
  out.boolean(in_off_interval_);
  out.u64(sleep_intervals_.size());
  for (double s : sleep_intervals_) out.f64(s);
  out.end();
}

}  // namespace essat::energy
