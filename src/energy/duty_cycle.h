// Aggregation helpers over many radios' duty cycles.
#pragma once

#include <vector>

#include "src/energy/radio.h"
#include "src/util/stats.h"

namespace essat::energy {

struct DutyCycleSummary {
  double average = 0.0;           // mean over the given radios
  double min = 0.0;
  double max = 0.0;
  std::vector<double> per_radio;  // same order as input
};

// Summarizes duty cycles of the given radios (typically the routing-tree
// members; the paper averages over nodes participating in queries).
DutyCycleSummary summarize_duty_cycles(const std::vector<const Radio*>& radios);

// Mean duty cycle per group (e.g. per tree rank, Fig. 5). `group_of[i]` is
// the group index of radios[i]; result[g] is the mean of group g (0 when the
// group is empty).
std::vector<double> duty_cycle_by_group(const std::vector<const Radio*>& radios,
                                        const std::vector<int>& group_of,
                                        int num_groups);

}  // namespace essat::energy
