// Simulation time: a strong integer-nanosecond type.
//
// All protocol timing in this library (query periods, MAC backoff slots,
// radio transition delays, break-even times) is expressed in `Time`.
// Integer nanoseconds give exact arithmetic — essential for a discrete-event
// simulator where equality of timestamps is meaningful (e.g. Safe Sleep's
// "wake exactly at t_wakeup - t_OFF_ON").
#pragma once

#include <cstdint>
#include <cstdio>
#include <limits>
#include <string>

namespace essat::util {

class Time {
 public:
  constexpr Time() = default;

  // Named constructors. Fractional inputs are rounded to the nearest ns.
  static constexpr Time nanoseconds(std::int64_t ns) { return Time{ns}; }
  static constexpr Time microseconds(std::int64_t us) { return Time{us * 1000}; }
  static constexpr Time milliseconds(std::int64_t ms) { return Time{ms * 1'000'000}; }
  static constexpr Time seconds(std::int64_t s) { return Time{s * 1'000'000'000}; }
  static constexpr Time from_seconds(double s) {
    return Time{static_cast<std::int64_t>(s * 1e9 + (s >= 0 ? 0.5 : -0.5))};
  }
  static constexpr Time from_milliseconds(double ms) { return from_seconds(ms * 1e-3); }
  static constexpr Time zero() { return Time{0}; }
  static constexpr Time max() { return Time{std::numeric_limits<std::int64_t>::max()}; }
  static constexpr Time min() { return Time{std::numeric_limits<std::int64_t>::min()}; }

  constexpr std::int64_t ns() const { return ns_; }
  constexpr double to_seconds() const { return static_cast<double>(ns_) * 1e-9; }
  constexpr double to_milliseconds() const { return static_cast<double>(ns_) * 1e-6; }

  constexpr bool is_zero() const { return ns_ == 0; }
  constexpr bool is_negative() const { return ns_ < 0; }

  friend constexpr Time operator+(Time a, Time b) { return Time{a.ns_ + b.ns_}; }
  friend constexpr Time operator-(Time a, Time b) { return Time{a.ns_ - b.ns_}; }
  constexpr Time operator-() const { return Time{-ns_}; }
  friend constexpr Time operator*(Time a, std::int64_t k) { return Time{a.ns_ * k}; }
  friend constexpr Time operator*(std::int64_t k, Time a) { return Time{a.ns_ * k}; }
  friend constexpr Time operator*(Time a, int k) { return Time{a.ns_ * k}; }
  friend constexpr Time operator*(int k, Time a) { return Time{a.ns_ * k}; }
  friend constexpr Time operator*(Time a, double k) {
    return from_seconds(a.to_seconds() * k);
  }
  friend constexpr Time operator/(Time a, std::int64_t k) { return Time{a.ns_ / k}; }
  // Ratio of two durations (e.g. duty cycle = active / window).
  friend constexpr double operator/(Time a, Time b) {
    return static_cast<double>(a.ns_) / static_cast<double>(b.ns_);
  }
  Time& operator+=(Time b) { ns_ += b.ns_; return *this; }
  Time& operator-=(Time b) { ns_ -= b.ns_; return *this; }

  friend constexpr bool operator==(Time a, Time b) { return a.ns_ == b.ns_; }
  friend constexpr bool operator!=(Time a, Time b) { return a.ns_ != b.ns_; }
  friend constexpr bool operator<(Time a, Time b) { return a.ns_ < b.ns_; }
  friend constexpr bool operator<=(Time a, Time b) { return a.ns_ <= b.ns_; }
  friend constexpr bool operator>(Time a, Time b) { return a.ns_ > b.ns_; }
  friend constexpr bool operator>=(Time a, Time b) { return a.ns_ >= b.ns_; }

  std::string to_string() const {
    // Human-readable with the most natural unit.
    const double s = to_seconds();
    char buf[64];
    if (ns_ == 0) return "0s";
    if (s >= 1.0 || s <= -1.0) {
      std::snprintf(buf, sizeof buf, "%.6gs", s);
    } else if (s >= 1e-3 || s <= -1e-3) {
      std::snprintf(buf, sizeof buf, "%.6gms", s * 1e3);
    } else {
      std::snprintf(buf, sizeof buf, "%.6gus", s * 1e6);
    }
    return buf;
  }

 private:
  constexpr explicit Time(std::int64_t ns) : ns_{ns} {}
  std::int64_t ns_ = 0;
};

namespace time_literals {
constexpr Time operator""_sec(unsigned long long v) { return Time::seconds(static_cast<std::int64_t>(v)); }
constexpr Time operator""_sec(long double v) { return Time::from_seconds(static_cast<double>(v)); }
constexpr Time operator""_ms(unsigned long long v) { return Time::milliseconds(static_cast<std::int64_t>(v)); }
constexpr Time operator""_ms(long double v) { return Time::from_seconds(static_cast<double>(v) * 1e-3); }
constexpr Time operator""_us(unsigned long long v) { return Time::microseconds(static_cast<std::int64_t>(v)); }
constexpr Time operator""_ns(unsigned long long v) { return Time::nanoseconds(static_cast<std::int64_t>(v)); }
}  // namespace time_literals

}  // namespace essat::util
