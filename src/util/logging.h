// Minimal leveled logging. Disabled (kWarn) by default so simulation hot
// paths stay quiet; tests and examples can raise verbosity.
#pragma once

#include <cstdio>
#include <string>

namespace essat::util {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

// Global threshold: messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

// Emits `msg` to stderr if `level` >= the global threshold.
void log(LogLevel level, const std::string& msg);

#define ESSAT_LOG(level, ...)                                           \
  do {                                                                  \
    if ((level) >= ::essat::util::log_level()) {                        \
      char _essat_buf[512];                                             \
      std::snprintf(_essat_buf, sizeof _essat_buf, __VA_ARGS__);        \
      ::essat::util::log((level), _essat_buf);                          \
    }                                                                   \
  } while (0)

#define ESSAT_DEBUG(...) ESSAT_LOG(::essat::util::LogLevel::kDebug, __VA_ARGS__)
#define ESSAT_INFO(...) ESSAT_LOG(::essat::util::LogLevel::kInfo, __VA_ARGS__)
#define ESSAT_WARN(...) ESSAT_LOG(::essat::util::LogLevel::kWarn, __VA_ARGS__)

}  // namespace essat::util
