// Minimal leveled logging. Disabled (kWarn) by default so simulation hot
// paths stay quiet; tests and examples can raise verbosity.
//
// Context prefixes: a per-thread simulation clock (ScopedLogClock, installed
// by the harness for the duration of a run) and a per-thread node id
// (ScopedNodeContext, set around per-node dispatch). When present they
// prefix every line — `[INFO] [t=12.0035s] [n42] ...` — so interleaved
// multi-trial sweep output stays attributable. Both are thread-local, so
// parallel sweep workers never see each other's context.
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>

namespace essat::util {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

// Global threshold: messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

// Emits `msg` to stderr if `level` >= the global threshold, with any
// active sim-time / node-id prefixes.
void log(LogLevel level, const std::string& msg);

// Installs a simulation-time probe for the calling thread; lines logged
// while the guard lives carry a [t=...] prefix. Nests (restores the
// previous probe on destruction).
class ScopedLogClock {
 public:
  explicit ScopedLogClock(std::function<std::int64_t()> now_ns);
  ~ScopedLogClock();
  ScopedLogClock(const ScopedLogClock&) = delete;
  ScopedLogClock& operator=(const ScopedLogClock&) = delete;

 private:
  std::function<std::int64_t()> prev_;
};

// Tags the calling thread's log lines with a node id ([nID] prefix) until
// destruction. Nests.
class ScopedNodeContext {
 public:
  explicit ScopedNodeContext(std::int32_t node);
  ~ScopedNodeContext();
  ScopedNodeContext(const ScopedNodeContext&) = delete;
  ScopedNodeContext& operator=(const ScopedNodeContext&) = delete;

 private:
  std::int32_t prev_;
};

// Node id active on this thread, or -1.
std::int32_t current_log_node();

// Overwrites the tail of a full formatting buffer with a "…" marker so
// truncation is visible instead of silent. Used by ESSAT_LOG.
void mark_truncated(char* buf, std::size_t cap);

#define ESSAT_LOG(level, ...)                                            \
  do {                                                                   \
    if ((level) >= ::essat::util::log_level()) {                         \
      char _essat_buf[512];                                              \
      const int _essat_len =                                             \
          std::snprintf(_essat_buf, sizeof _essat_buf, __VA_ARGS__);     \
      if (_essat_len >= static_cast<int>(sizeof _essat_buf)) {           \
        ::essat::util::mark_truncated(_essat_buf, sizeof _essat_buf);    \
      }                                                                  \
      ::essat::util::log((level), _essat_buf);                           \
    }                                                                    \
  } while (0)

#define ESSAT_DEBUG(...) ESSAT_LOG(::essat::util::LogLevel::kDebug, __VA_ARGS__)
#define ESSAT_INFO(...) ESSAT_LOG(::essat::util::LogLevel::kInfo, __VA_ARGS__)
#define ESSAT_WARN(...) ESSAT_LOG(::essat::util::LogLevel::kWarn, __VA_ARGS__)

}  // namespace essat::util
