// Minimal small-size-optimized vector for hot-path value lists.
//
// The first N elements live inline in the object; only growth past N heap-
// allocates. Designed for the packet headers and MAC bookkeeping where the
// common case is "a handful of NodeIds" (e.g. AtimHeader::destinations):
// with inline storage those packets copy, move, and destroy without
// touching the allocator, which keeps them eligible for the zero-copy
// delivery path and the event queue's inline captures.
//
// Deliberately minimal: trivially-copyable element types only (NodeIds,
// PODs). That keeps relocation a memcpy and the move constructor noexcept
// — a requirement for callables stored in sim::InlineCallback.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstring>
#include <initializer_list>
#include <type_traits>

namespace essat::util {

template <typename T, std::size_t N>
class SmallVector {
  static_assert(std::is_trivially_copyable_v<T>,
                "SmallVector is restricted to trivially copyable elements");
  static_assert(N > 0, "inline capacity must be at least 1");

 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  SmallVector() = default;
  SmallVector(std::initializer_list<T> init) { assign_(init.begin(), init.size()); }
  template <typename InputIt>
  SmallVector(InputIt first, InputIt last) {
    for (; first != last; ++first) push_back(*first);
  }

  SmallVector(const SmallVector& other) { assign_(other.data(), other.size_); }
  SmallVector& operator=(const SmallVector& other) {
    if (this != &other) {
      clear_storage_();
      assign_(other.data(), other.size_);
    }
    return *this;
  }

  SmallVector(SmallVector&& other) noexcept { steal_(other); }
  SmallVector& operator=(SmallVector&& other) noexcept {
    if (this != &other) {
      clear_storage_();
      steal_(other);
    }
    return *this;
  }

  ~SmallVector() { clear_storage_(); }

  // By value: T is trivially copyable and small, and taking a copy first
  // makes `sv.push_back(sv[0])` safe across the reallocation in grow_()
  // (the std::vector guarantee callers assume).
  void push_back(T v) {
    if (size_ == capacity_) grow_(capacity_ * 2);
    data()[size_++] = v;
  }
  void pop_back() {
    assert(size_ > 0);
    --size_;
  }
  void clear() { size_ = 0; }  // keeps capacity, like std::vector

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  static constexpr std::size_t inline_capacity() { return N; }
  std::size_t capacity() const { return capacity_; }

  T* data() { return heap_ != nullptr ? heap_ : inline_; }
  const T* data() const { return heap_ != nullptr ? heap_ : inline_; }

  T& operator[](std::size_t i) {
    assert(i < size_);
    return data()[i];
  }
  const T& operator[](std::size_t i) const {
    assert(i < size_);
    return data()[i];
  }
  T& back() { return (*this)[size_ - 1]; }
  const T& back() const { return (*this)[size_ - 1]; }

  iterator begin() { return data(); }
  iterator end() { return data() + size_; }
  const_iterator begin() const { return data(); }
  const_iterator end() const { return data() + size_; }

  friend bool operator==(const SmallVector& a, const SmallVector& b) {
    return a.size_ == b.size_ &&
           std::equal(a.begin(), a.end(), b.begin());
  }
  friend bool operator!=(const SmallVector& a, const SmallVector& b) {
    return !(a == b);
  }

 private:
  void assign_(const T* src, std::size_t n) {
    if (n > capacity_) grow_(n);
    std::memcpy(data(), src, n * sizeof(T));
    size_ = n;
  }

  void grow_(std::size_t at_least) {
    const std::size_t new_cap = std::max(at_least, capacity_ * 2);
    T* fresh = new T[new_cap];
    std::memcpy(fresh, data(), size_ * sizeof(T));
    delete[] heap_;
    heap_ = fresh;
    capacity_ = new_cap;
  }

  void clear_storage_() {
    delete[] heap_;
    heap_ = nullptr;
    capacity_ = N;
    size_ = 0;
  }

  // Move: spilled storage changes hands; inline storage is memcpy'd. The
  // source is left empty (inline) either way.
  void steal_(SmallVector& other) noexcept {
    if (other.heap_ != nullptr) {
      heap_ = other.heap_;
      capacity_ = other.capacity_;
      size_ = other.size_;
      other.heap_ = nullptr;
    } else {
      std::memcpy(inline_, other.inline_, other.size_ * sizeof(T));
      size_ = other.size_;
    }
    other.capacity_ = N;
    other.size_ = 0;
  }

  T inline_[N];
  T* heap_ = nullptr;
  std::size_t size_ = 0;
  std::size_t capacity_ = N;
};

}  // namespace essat::util
