// Vector-backed ring buffer replacing std::deque on MAC hot paths.
//
// std::deque cycles fixed-size chunks through the allocator: a queue that
// oscillates between empty and one element (the steady state of every MAC
// send queue) keeps allocating and freeing chunks. This ring keeps one
// power-of-two buffer that only grows, so steady-state push/pop is
// allocation-free — and the buffer starts empty (no heap touch at all for
// nodes that never enqueue, which matters when there are a million of them).
//
// Supports the exact operations CsmaMac needs: push_back, pop_front,
// indexed access from the front, and erase-at-index (the tx-filter path
// pulls admitted frames out of the middle). Elements are moved, not
// required to be trivially copyable.
#pragma once

#include <cassert>
#include <cstddef>
#include <memory>
#include <utility>

namespace essat::util {

template <typename T>
class RingQueue {
 public:
  RingQueue() = default;
  RingQueue(RingQueue&&) = default;
  RingQueue& operator=(RingQueue&&) = default;
  RingQueue(const RingQueue&) = delete;
  RingQueue& operator=(const RingQueue&) = delete;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t capacity() const { return cap_; }
  // Heap footprint, for the memory-budget benches.
  std::size_t capacity_bytes() const { return cap_ * sizeof(T); }

  T& operator[](std::size_t i) {
    assert(i < size_);
    return buf_[(head_ + i) & (cap_ - 1)];
  }
  const T& operator[](std::size_t i) const {
    return const_cast<RingQueue*>(this)->operator[](i);
  }
  T& front() { return (*this)[0]; }
  T& back() { return (*this)[size_ - 1]; }

  void push_back(T v) {
    if (size_ == cap_) grow_();
    buf_[(head_ + size_) & (cap_ - 1)] = std::move(v);
    ++size_;
  }

  T pop_front() {
    assert(size_ > 0);
    T out = std::move(buf_[head_]);
    head_ = (head_ + 1) & (cap_ - 1);
    --size_;
    return out;
  }

  // Removes and returns the element at index `i` (from the front),
  // preserving the relative order of the rest. Shifts whichever side is
  // shorter, so popping near the head or the tail stays O(1)-ish.
  T take_at(std::size_t i) {
    assert(i < size_);
    T out = std::move((*this)[i]);
    if (i < size_ - i - 1) {
      for (std::size_t j = i; j > 0; --j) (*this)[j] = std::move((*this)[j - 1]);
      head_ = (head_ + 1) & (cap_ - 1);
    } else {
      for (std::size_t j = i; j + 1 < size_; ++j) {
        (*this)[j] = std::move((*this)[j + 1]);
      }
    }
    --size_;
    return out;
  }

  void clear() {
    while (size_ > 0) (void)pop_front();
  }

  // Snapshot hooks. Capacity and the head offset are serialized alongside
  // the live elements so a restored queue has identical wrap-around behavior
  // and capacity_bytes() — future growth happens at the same push as in the
  // original run. `save_elem`/`load_elem` handle the element payload.
  template <typename Ser, typename SaveElem>
  void save_state(Ser& out, SaveElem&& save_elem) const {
    out.u64(static_cast<std::uint64_t>(cap_));
    out.u64(static_cast<std::uint64_t>(head_));
    out.u64(static_cast<std::uint64_t>(size_));
    for (std::size_t i = 0; i < size_; ++i) save_elem(out, (*this)[i]);
  }

  template <typename De, typename LoadElem>
  void restore_state(De& in, LoadElem&& load_elem) {
    cap_ = static_cast<std::size_t>(in.u64());
    head_ = static_cast<std::size_t>(in.u64());
    size_ = static_cast<std::size_t>(in.u64());
    buf_ = cap_ > 0 ? std::unique_ptr<T[]>(new T[cap_]) : nullptr;
    assert(cap_ == 0 || (size_ <= cap_ && head_ < cap_));
    for (std::size_t i = 0; i < size_; ++i) {
      load_elem(in, buf_[(head_ + i) & (cap_ - 1)]);
    }
  }

 private:
  void grow_() {
    const std::size_t new_cap = cap_ == 0 ? 4 : cap_ * 2;
    std::unique_ptr<T[]> fresh(new T[new_cap]);
    for (std::size_t i = 0; i < size_; ++i) {
      fresh[i] = std::move(buf_[(head_ + i) & (cap_ - 1)]);
    }
    buf_ = std::move(fresh);
    cap_ = new_cap;
    head_ = 0;
  }

  std::unique_ptr<T[]> buf_;
  std::size_t cap_ = 0;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace essat::util
