// Deterministic random number generation for reproducible simulation runs.
//
// Every simulation run is parameterized by a single 64-bit seed; independent
// streams (node placement, query phases, MAC backoff per node, ...) are
// derived with `fork`, so adding a consumer never perturbs other streams.
#pragma once

#include <cstdint>
#include <random>

#include "src/util/time.h"

namespace essat::snap {
class Serializer;
class Deserializer;
}  // namespace essat::snap

namespace essat::util {

class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  // Move-only: a copied generator silently replays the same random sequence
  // in two places, which breaks run reproducibility in ways no test sees
  // directly. Components own their stream (constructed from `fork`) and
  // everything else takes `Rng&` — the essat-rng-by-ref lint check enforces
  // the signatures, this enforces the call sites.
  Rng(const Rng&) = delete;
  Rng& operator=(const Rng&) = delete;
  Rng(Rng&&) = default;
  Rng& operator=(Rng&&) = default;

  // Derives an independent generator; deterministic in (seed, stream).
  Rng fork(std::uint64_t stream) const;

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  // Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  // Uniform Time in [lo, hi).
  Time uniform_time(Time lo, Time hi);
  // Exponential with the given mean (> 0).
  double exponential(double mean);
  // Gaussian with the given mean and standard deviation.
  double normal(double mean, double stddev);
  bool bernoulli(double p);

  std::uint64_t seed() const { return seed_; }

  // Snapshot hooks. std::mt19937_64's stream insertion/extraction round-trip
  // is exact per the standard, and every distribution above is constructed
  // fresh per call, so (seed_, engine state) is the complete stream state.
  void save_state(snap::Serializer& out) const;
  void restore_state(snap::Deserializer& in);

 private:
  std::uint64_t seed_;
  std::mt19937_64 gen_;
};

}  // namespace essat::util
