#include "src/util/histogram.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/snap/serializer.h"

namespace essat::util {

Histogram::Histogram(double lo, double bin_width, std::size_t num_bins)
    : lo_{lo}, bin_width_{bin_width}, counts_(num_bins, 0) {
  if (bin_width <= 0.0 || num_bins == 0) {
    throw std::invalid_argument{"Histogram: bin_width and num_bins must be positive"};
  }
}

void Histogram::add(double value) {
  raw_.push_back(value);
  if (value < lo_) {
    ++underflow_;
    return;
  }
  const auto bin = static_cast<std::size_t>((value - lo_) / bin_width_);
  if (bin >= counts_.size()) {
    ++overflow_;
    return;
  }
  ++counts_[bin];
}

void Histogram::merge(const Histogram& other) {
  if (other.counts_.size() != counts_.size() || other.lo_ != lo_ ||
      other.bin_width_ != bin_width_) {
    throw std::invalid_argument{"Histogram::merge: incompatible layout"};
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  raw_.insert(raw_.end(), other.raw_.begin(), other.raw_.end());
}

std::uint64_t Histogram::total() const {
  std::uint64_t t = underflow_ + overflow_;
  for (auto c : counts_) t += c;
  return t;
}

double Histogram::bin_upper_edge(std::size_t bin) const {
  return lo_ + bin_width_ * static_cast<double>(bin + 1);
}

void Histogram::save_state(snap::Serializer& out) const {
  out.f64(lo_);
  out.f64(bin_width_);
  out.u64(counts_.size());
  for (std::uint64_t c : counts_) out.u64(c);
  out.u64(underflow_);
  out.u64(overflow_);
  out.u64(raw_.size());
  for (double v : raw_) out.f64(v);
}

void Histogram::restore_state(snap::Deserializer& in) {
  lo_ = in.f64();
  bin_width_ = in.f64();
  counts_.resize(static_cast<std::size_t>(in.u64()));
  for (std::uint64_t& c : counts_) c = in.u64();
  underflow_ = in.u64();
  overflow_ = in.u64();
  raw_.resize(static_cast<std::size_t>(in.u64()));
  for (double& v : raw_) v = in.f64();
}

double Histogram::frac_below_(double threshold) const {
  if (raw_.empty()) return 0.0;
  const auto below = std::count_if(raw_.begin(), raw_.end(),
                                   [&](double v) { return v < threshold; });
  return static_cast<double>(below) / static_cast<double>(raw_.size());
}

}  // namespace essat::util
