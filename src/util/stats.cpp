#include "src/util/stats.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "src/snap/serializer.h"

namespace essat::util {

void RunningStat::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStat::merge(const RunningStat& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStat::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double RunningStat::ci_halfwidth(double level) const {
  if (n_ < 2) return 0.0;
  return t_critical(n_, level) * stddev() / std::sqrt(static_cast<double>(n_));
}

double t_critical(std::size_t n, double level) {
  if (n < 2) return 0.0;
  const std::size_t df = std::min<std::size_t>(n - 1, 30);
  // Two-sided critical values for df = 1..30.
  static constexpr std::array<double, 30> t90 = {
      6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860, 1.833, 1.812,
      1.796, 1.782, 1.771, 1.761, 1.753, 1.746, 1.740, 1.734, 1.729, 1.725,
      1.721, 1.717, 1.714, 1.711, 1.708, 1.706, 1.703, 1.701, 1.699, 1.697};
  static constexpr std::array<double, 30> t95 = {
      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
      2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
      2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};
  static constexpr std::array<double, 30> t99 = {
      63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499, 3.355, 3.250, 3.169,
      3.106,  3.055, 3.012, 2.977, 2.947, 2.921, 2.898, 2.878, 2.861, 2.845,
      2.831,  2.819, 2.807, 2.797, 2.787, 2.779, 2.771, 2.763, 2.756, 2.750};
  if (n > 31) {
    if (level >= 0.99) return 2.576;
    if (level >= 0.95) return 1.960;
    return 1.645;
  }
  if (level >= 0.99) return t99[df - 1];
  if (level >= 0.95) return t95[df - 1];
  return t90[df - 1];
}

void RunningStat::save_state(snap::Serializer& out) const {
  out.u64(n_);
  out.f64(mean_);
  out.f64(m2_);
  out.f64(min_);
  out.f64(max_);
}

void RunningStat::restore_state(snap::Deserializer& in) {
  n_ = static_cast<std::size_t>(in.u64());
  mean_ = in.f64();
  m2_ = in.f64();
  min_ = in.f64();
  max_ = in.f64();
}

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values.front();
  const double rank = std::clamp(p, 0.0, 100.0) / 100.0 *
                      static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= values.size()) return values.back();
  return values[lo] * (1.0 - frac) + values[lo + 1] * frac;
}

}  // namespace essat::util
