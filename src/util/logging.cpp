#include "src/util/logging.h"

#include <cstring>
#include <utility>

namespace essat::util {
namespace {

LogLevel g_level = LogLevel::kWarn;

thread_local std::function<std::int64_t()> tl_clock;
thread_local std::int32_t tl_node = -1;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level = level; }

LogLevel log_level() { return g_level; }

ScopedLogClock::ScopedLogClock(std::function<std::int64_t()> now_ns)
    : prev_(std::move(tl_clock)) {
  tl_clock = std::move(now_ns);
}

ScopedLogClock::~ScopedLogClock() { tl_clock = std::move(prev_); }

ScopedNodeContext::ScopedNodeContext(std::int32_t node) : prev_(tl_node) {
  tl_node = node;
}

ScopedNodeContext::~ScopedNodeContext() { tl_node = prev_; }

std::int32_t current_log_node() { return tl_node; }

void mark_truncated(char* buf, std::size_t cap) {
  // "…" is 3 bytes of UTF-8; keep the terminating NUL inside the buffer.
  static constexpr char kMarker[] = "…";
  if (cap < sizeof kMarker) return;
  std::memcpy(buf + cap - sizeof kMarker, kMarker, sizeof kMarker);
}

void log(LogLevel level, const std::string& msg) {
  if (level < g_level) return;
  char prefix[64];
  prefix[0] = '\0';
  std::size_t off = 0;
  if (tl_clock) {
    const double t_s = static_cast<double>(tl_clock()) * 1e-9;
    off += static_cast<std::size_t>(std::snprintf(
        prefix + off, sizeof prefix - off, "[t=%.6fs] ", t_s));
  }
  if (tl_node >= 0 && off < sizeof prefix) {
    std::snprintf(prefix + off, sizeof prefix - off, "[n%d] ", tl_node);
  }
  std::fprintf(stderr, "[%s] %s%s\n", level_name(level), prefix, msg.c_str());
}

}  // namespace essat::util
